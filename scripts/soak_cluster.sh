#!/bin/sh
# Cluster chaos-soak gate (DESIGN.md §17): build bgqd and bgqload, spawn
# THREE clustered replicas on Unix sockets — each with -replica-id and
# the other two as gossip -peers — and drive the fleet through bgqload's
# ring mode: every request routed by the consistent-hash ring, a seeded
# fault event posted alongside every Nth request (rotating across
# replicas, so origination and gossip dissemination are exercised
# everywhere), and the report broken down per replica.
#
# Chaos: at one third of the run, one replica is kill -9'd — no drain,
# no goodbye. The ring client fails its keys over to the successors; the
# fleet keeps serving. At two thirds, the replica is restarted on the
# same socket with an empty fault log: its anti-entropy pull repairs the
# missed epochs from the peers, and the min-vector check 503s (rather
# than serves stale) any plan that arrives before it has caught up.
#
# Gates (enforced by bgqload ring mode, exit 1 when violated):
#   - zero stale plans: any response whose fault-epoch vector does not
#     dominate the client's demanded min vector fails the run — the
#     headline consistency gate, checked client-side against the oracle;
#   - zero 5xx and zero transport errors beyond the shed budget (shed
#     rate capped at 0.5; 429s are not retried, so the count is exact);
#   - p99 within 5x the checked-in single-daemon baseline
#     (scripts/soak_baseline.json) — failover is allowed to cost, but
#     not an order of magnitude;
#   - no hot shard: no single replica answers more than 80% of the
#     replica-attributed requests;
#   - coalescing/caching observed somewhere in the fleet (the summed
#     counters), despite the fault posts invalidating as they land.
#
# The full report — per-replica latency/shed breakdown, fault-post
# counts, stale counters, summed server metrics — is archived as
# CLUSTER_<date>.json.
#
# Environment knobs: SOAK_DURATION (default 30s), SOAK_RPS (default
# 400), SOAK_SEED (default 7), SOAK_FAULT_EVERY (default 50).
# SOAK_SHORT=1 shrinks the run (9s) for `make verify`.
set -eu

cd "$(dirname "$0")/.."

duration="${SOAK_DURATION:-30s}"
rps="${SOAK_RPS:-400}"
seed="${SOAK_SEED:-7}"
fault_every="${SOAK_FAULT_EVERY:-50}"
if [ "${SOAK_SHORT:-0}" = "1" ]; then
    duration=9s
fi
# Chaos points: kill at 1/3 of the run, restart at 2/3.
dur_secs=$(printf '%s' "$duration" | sed 's/s$//')
kill_after=$((dur_secs / 3))
restart_after=$((dur_secs / 3))
out="CLUSTER_$(date +%Y%m%d).json"

bindir=$(mktemp -d)
r0_pid=""; r1_pid=""; r2_pid=""
trap 'kill "$r0_pid" "$r1_pid" "$r2_pid" 2>/dev/null || true; rm -rf "$bindir"' EXIT INT TERM

go build -o "$bindir/bgqd" ./cmd/bgqd
go build -o "$bindir/bgqload" ./cmd/bgqload

s0="$bindir/r0.sock"; s1="$bindir/r1.sock"; s2="$bindir/r2.sock"

# start_replica <id> <own-socket> <peer-socket> <peer-socket> <seed>
start_replica() {
    "$bindir/bgqd" -socket "$2" \
        -replica-id "$1" -peers "unix://$3,unix://$4" \
        -gossip-interval 50ms -gossip-seed "$5" &
}

wait_sock() {
    i=0
    while [ ! -S "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "soak-cluster: bgqd never bound $1" >&2
            exit 1
        fi
        sleep 0.05
    done
}

start_replica r0 "$s0" "$s1" "$s2" 1; r0_pid=$!
start_replica r1 "$s1" "$s0" "$s2" 2; r1_pid=$!
start_replica r2 "$s2" "$s0" "$s1" 3; r2_pid=$!
wait_sock "$s0"; wait_sock "$s1"; wait_sock "$s2"

"$bindir/bgqload" \
    -addrs "r0=unix://$s0,r1=unix://$s1,r2=unix://$s2" \
    -duration "$duration" -mode open -rps "$rps" -seed "$seed" \
    -fault-every "$fault_every" -agg-every 16 \
    -require-coalesce -max-shed-rate 0.5 -max-replica-share 0.8 \
    -baseline scripts/soak_baseline.json -p99-ratio 5 \
    -json "$out" &
load_pid=$!

# The chaos: kill -9 one replica mid-run (no drain — this is the
# crash case, not the restart case soak_sessions covers), then bring it
# back later with an empty fault log so the anti-entropy pull has real
# repair work to do.
sleep "$kill_after"
echo "soak-cluster: kill -9 replica r2"
kill -9 "$r2_pid" 2>/dev/null || true
wait "$r2_pid" 2>/dev/null || true
r2_pid=""

sleep "$restart_after"
echo "soak-cluster: restarting replica r2"
start_replica r2 "$s2" "$s0" "$s1" 4; r2_pid=$!
wait_sock "$s2"

status=0
wait "$load_pid" || status=$?

kill "$r0_pid" "$r1_pid" "$r2_pid" 2>/dev/null || true
wait "$r0_pid" "$r1_pid" "$r2_pid" 2>/dev/null || true

if [ "$status" -eq 0 ]; then
    echo "soak-cluster: passed; report archived as $out"
else
    echo "soak-cluster: FAILED (exit $status); report (if written): $out" >&2
fi
exit "$status"
