#!/bin/sh
# Chaos-soak gate for resilient transfer sessions: build bgqd and
# bgqload, spawn a real daemon on a Unix socket, and run many concurrent
# paced sessions against it while the driver posts fault events, forces
# client disconnects, and gives some sessions seeded fault campaigns.
# Mid-run the daemon is SIGTERM'd — in-flight sessions drain or abort at
# the -drain-timeout — and a replacement daemon comes up on the same
# socket; aborted clients re-arm their sessions against it. Gates
# (enforced by bgqload -sessions): zero lost, zero duplicated, zero
# mismatched sessions — every report byte-identical to a direct
# MoveResilient replay — plus at least one stream resume and one pushed
# mid-session fault. The session report is archived as
# SESSIONS_<date>.json.
#
# Environment knobs: SOAK_SESSIONS (default 1000), SOAK_SEED (default
# 7), SOAK_PACE_US (default 20000), SOAK_RESTART_AFTER (seconds before
# the SIGTERM, default 2). SOAK_SHORT=1 shrinks the run (64 sessions,
# restart after 1s) for `make verify`.
set -eu

cd "$(dirname "$0")/.."

sessions="${SOAK_SESSIONS:-1000}"
seed="${SOAK_SEED:-7}"
pace="${SOAK_PACE_US:-20000}"
restart_after="${SOAK_RESTART_AFTER:-2}"
if [ "${SOAK_SHORT:-0}" = "1" ]; then
    sessions=64
    restart_after=1
fi
out="SESSIONS_$(date +%Y%m%d).json"

bindir=$(mktemp -d)
sock="$bindir/bgqd.sock"
daemon_pid=""
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$bindir"' EXIT INT TERM

go build -o "$bindir/bgqd" ./cmd/bgqd
go build -o "$bindir/bgqload" ./cmd/bgqload

start_daemon() {
    "$bindir/bgqd" -socket "$sock" -drain-timeout 2s -batch-window 25ms &
    daemon_pid=$!
    i=0
    while [ ! -S "$sock" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "soak-sessions: bgqd never bound $sock" >&2
            exit 1
        fi
        sleep 0.05
    done
}

start_daemon

"$bindir/bgqload" \
    -addr "unix://$sock" -sessions "$sessions" -seed "$seed" \
    -pace-us "$pace" -campaign-every 5 -batch-every 3 -drop-every 4 \
    -fault-events 8 -min-resumes 1 -min-pushed-faults 1 \
    -json "$out" &
load_pid=$!

# The replica restart: SIGTERM the daemon while sessions are in flight.
# Sessions that finish inside the drain deadline complete normally;
# the rest are aborted (the daemon exits 1 by design — tolerated here)
# and their clients re-arm against the replacement daemon.
sleep "$restart_after"
kill -TERM "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
start_daemon

status=0
wait "$load_pid" || status=$?

kill "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true

if [ "$status" -eq 0 ]; then
    echo "soak-sessions: passed; report archived as $out"
else
    echo "soak-sessions: FAILED (exit $status); report (if written): $out" >&2
fi
exit "$status"
