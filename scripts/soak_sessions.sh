#!/bin/sh
# Chaos-soak gate for resilient transfer sessions: build bgqd and
# bgqload, spawn a real daemon on a Unix socket, and run many concurrent
# paced sessions against it while the driver posts fault events, forces
# client disconnects, and gives some sessions seeded fault campaigns.
# Mid-run the daemon is SIGTERM'd — in-flight sessions drain or abort at
# the -drain-timeout — and a replacement daemon comes up on the same
# socket; aborted clients re-arm their sessions against it. Gates
# (enforced by bgqload -sessions): zero lost, zero duplicated, zero
# mismatched sessions — every report byte-identical to a direct
# MoveResilient replay — plus at least one stream resume and one pushed
# mid-session fault. The session report is archived as
# SESSIONS_<date>.json.
#
# Telemetry runs throughout: the daemon keeps a wall-clock trace ring
# and a live SLO on the windowed session shed ratio (under 0.9).
# Deliberately NOT gated here: resume success — the restart makes the
# replacement daemon 404 every orphaned resume, so its first window is
# all misses by design and a zero-breach gate on it would fail every
# chaos run (the resume-success objective is gated against a stable
# daemon by the `make verify` selftest instead). bgqload -require-slo
# fails the run on any breach; the verdict snapshot lands in
# SLO_SESSIONS_<date>.json and the merged client+daemon+engine Perfetto
# trace — one trace ID per session across every disconnect and resume —
# in TRACE_SESSIONS_<date>.json (open in ui.perfetto.dev). The first
# daemon's trace ring would die with the SIGTERM, so right before the
# kill we snapshot it with `bgqload -dump-trace` and merge the dump into
# the final artifact via -trace-extra: the archive then carries server
# spans from BOTH daemon incarnations, and a sampled session shows its
# client attempts, pre-restart server spans, pushed-fault instants, and
# post-restart resume under one trace ID.
#
# Environment knobs: SOAK_SESSIONS (default 1000), SOAK_SEED (default
# 7), SOAK_PACE_US (default 20000), SOAK_RESTART_AFTER (seconds before
# the SIGTERM, default 2). SOAK_SHORT=1 shrinks the run (64 sessions,
# restart after 1s) for `make verify`.
set -eu

cd "$(dirname "$0")/.."

sessions="${SOAK_SESSIONS:-1000}"
seed="${SOAK_SEED:-7}"
pace="${SOAK_PACE_US:-20000}"
restart_after="${SOAK_RESTART_AFTER:-2}"
if [ "${SOAK_SHORT:-0}" = "1" ]; then
    sessions=64
    restart_after=1
fi
out="SESSIONS_$(date +%Y%m%d).json"
slo_out="SLO_SESSIONS_$(date +%Y%m%d).json"
trace_out="TRACE_SESSIONS_$(date +%Y%m%d).json"

bindir=$(mktemp -d)
sock="$bindir/bgqd.sock"
trace_pre="$bindir/trace_pre_restart.json"
daemon_pid=""
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$bindir"' EXIT INT TERM

go build -o "$bindir/bgqd" ./cmd/bgqd
go build -o "$bindir/bgqload" ./cmd/bgqload

start_daemon() {
    "$bindir/bgqd" -socket "$sock" -drain-timeout 2s -batch-window 25ms \
        -trace-events 65536 -stats-window 10s -slo-shed-ratio 0.9 &
    daemon_pid=$!
    i=0
    while [ ! -S "$sock" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "soak-sessions: bgqd never bound $sock" >&2
            exit 1
        fi
        sleep 0.05
    done
}

start_daemon

"$bindir/bgqload" \
    -addr "unix://$sock" -sessions "$sessions" -seed "$seed" \
    -pace-us "$pace" -campaign-every 5 -batch-every 3 -drop-every 4 \
    -fault-events 8 -min-resumes 1 -min-pushed-faults 1 \
    -require-slo -slo-out "$slo_out" \
    -trace-out "$trace_out" -trace-extra "$trace_pre" \
    -json "$out" &
load_pid=$!

# The replica restart: SIGTERM the daemon while sessions are in flight.
# Sessions that finish inside the drain deadline complete normally;
# the rest are aborted (the daemon exits 1 by design — tolerated here)
# and their clients re-arm against the replacement daemon. Snapshot the
# doomed daemon's trace ring first so its server spans survive into the
# merged artifact (best effort — a failed dump only thins the trace).
sleep "$restart_after"
"$bindir/bgqload" -dump-trace -addr "unix://$sock" -trace-out "$trace_pre" || true
kill -TERM "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
start_daemon

status=0
wait "$load_pid" || status=$?

kill "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true

if [ "$status" -eq 0 ]; then
    echo "soak-sessions: passed; report archived as $out, SLO verdicts as $slo_out, trace as $trace_out"
else
    echo "soak-sessions: FAILED (exit $status); report (if written): $out" >&2
fi
exit "$status"
