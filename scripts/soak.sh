#!/bin/sh
# Load/soak gate for the bgqd plan-serving daemon: build bgqd and
# bgqload, spawn a real daemon on a Unix socket, drive it for 30 seconds
# at a fixed open-loop request rate with a seeded deterministic mix, and
# fail the run on any 5xx or transport error, a shed rate above 50%, a
# p99 latency above the checked-in baseline's p99 x 5
# (scripts/soak_baseline.json), or a server that never coalesced or
# cache-hit a request. The full report — client-side latency and status
# counts plus the daemon's /metrics snapshot — is archived as
# LOAD_<date>.json.
#
# The daemon also runs with live SLOs derived from the same baseline:
# the rolling-window plan p99 must stay under baseline x 5 and the
# windowed shed ratio under 0.5, evaluated continuously over the
# daemon's stats window — so a mid-run latency excursion that a
# whole-run percentile would average away still burns a breach counter.
# bgqload -require-slo turns any breach into a hard failure, and the
# verdict snapshot is archived as SLO_<date>.json next to the load
# report.
#
# Environment knobs: SOAK_DURATION (default 30s), SOAK_RPS (default
# 500), SOAK_SEED (default 7).
set -eu

cd "$(dirname "$0")/.."

duration="${SOAK_DURATION:-30s}"
rps="${SOAK_RPS:-500}"
seed="${SOAK_SEED:-7}"
out="LOAD_$(date +%Y%m%d).json"
slo_out="SLO_$(date +%Y%m%d).json"

# The SLO threshold mirrors the report-level gate: baseline p99 x 5,
# read from the checked-in baseline (latency.p99_ms).
base_p99=$(awk -F: '/"p99_ms"/ { gsub(/[ ,]/, "", $2); print $2; exit }' scripts/soak_baseline.json)
if [ -z "$base_p99" ]; then
    echo "soak: cannot read p99_ms from scripts/soak_baseline.json" >&2
    exit 1
fi
slo_p99=$(awk "BEGIN { printf \"%.3fms\", $base_p99 * 5 }")

bindir=$(mktemp -d)
sock="$bindir/bgqd.sock"
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$bindir"' EXIT INT TERM

go build -o "$bindir/bgqd" ./cmd/bgqd
go build -o "$bindir/bgqload" ./cmd/bgqload

"$bindir/bgqd" -socket "$sock" \
    -stats-window 10s -slo-plan-p99 "$slo_p99" -slo-shed-ratio 0.5 &
daemon_pid=$!

# Wait for the daemon to bind its socket.
i=0
while [ ! -S "$sock" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "soak: bgqd never bound $sock" >&2
        exit 1
    fi
    sleep 0.05
done

status=0
"$bindir/bgqload" \
    -addr "unix://$sock" \
    -duration "$duration" -mode open -rps "$rps" -seed "$seed" \
    -agg-every 16 -require-coalesce -max-shed-rate 0.5 \
    -baseline scripts/soak_baseline.json -p99-ratio 5 \
    -require-slo -slo-out "$slo_out" \
    -json "$out" || status=$?

kill "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true

if [ "$status" -eq 0 ]; then
    echo "soak: passed; report archived as $out, SLO verdicts as $slo_out"
else
    echo "soak: FAILED (exit $status); report (if written): $out" >&2
fi
exit "$status"
