#!/bin/sh
# Benchmark entry points.
#
# Default (`make bench`): runs the quick bgqbench sweep, writes
# BENCH_<date>.json plus the observability metrics snapshot
# METRICS_<date>.json next to it, and prints a one-line wall-time
# comparison against the most recent previous BENCH_*.json so the
# performance trajectory is visible run over run.
#
# `scripts/bench.sh topo` (`make check-topo` archives it): runs the
# cross-topology comparison sweep (torus vs dragonfly vs fat-tree,
# bgqbench -run topo) and archives it as BENCH_TOPO_<date>.json — the
# trajectory file for the pluggable-topology plane.
#
# `scripts/bench.sh scale` (`make bench-scale`): runs the full-machine
# tentpole scenario (DESIGN.md §13 — 48K nodes, 131,072 ranks, the
# incremental waterfill's headline number), archives it as
# BENCH_SCALE_<date>.json, and FAILS if wall-clock regressed more than
# 2x against the most recent committed BENCH_SCALE_*.json baseline.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-quick}"

# total_wall_ms extracts the total from a bgqbench -json report without
# depending on jq.
total_wall_ms() {
    sed -n 's/.*"total_wall_ms":[[:space:]]*\([0-9.]*\).*/\1/p' "$1" | head -1
}

case "$mode" in
quick)
    out="BENCH_$(date +%Y%m%d).json"
    metrics="METRICS_$(date +%Y%m%d).json"
    prev=$(ls BENCH_*.json 2>/dev/null | grep -v '^BENCH_SCALE_' | grep -v "^$out\$" | sort | tail -1 || true)

    if [ -n "$prev" ]; then
        go run ./cmd/bgqbench -quick -run all -json "$out" -metrics "$metrics" -compare "$prev" | tail -1
    else
        go run ./cmd/bgqbench -quick -run all -json "$out" -metrics "$metrics" > /dev/null
        echo "bench: wrote $out (no previous BENCH_*.json to compare against)"
    fi
    ;;
topo)
    out="BENCH_TOPO_$(date +%Y%m%d).json"
    prev=$(ls BENCH_TOPO_*.json 2>/dev/null | grep -v "^$out\$" | sort | tail -1 || true)

    go run ./cmd/bgqbench -run topo -json "$out" | grep -v '^\[' || true
    now=$(total_wall_ms "$out")
    if [ -n "$prev" ]; then
        echo "bench-topo: wrote $out (${now} ms; previous $prev)"
    else
        echo "bench-topo: wrote $out (${now} ms; first cross-topology bench point)"
    fi
    ;;
scale)
    out="BENCH_SCALE_$(date +%Y%m%d).json"
    prev=$(ls BENCH_SCALE_*.json 2>/dev/null | grep -v "^$out\$" | sort | tail -1 || true)

    go run ./cmd/bgqbench -run scale -json "$out" | grep -v '^\[' || true
    now=$(total_wall_ms "$out")
    if [ -z "$now" ]; then
        echo "bench-scale: no total_wall_ms in $out" >&2
        exit 1
    fi
    if [ -n "$prev" ]; then
        base=$(total_wall_ms "$prev")
        echo "bench-scale: wrote $out (${now} ms; baseline $prev at ${base} ms)"
        # Fail on a >2x wall-clock regression against the committed
        # baseline: the incremental engine's payoff is the number under
        # test here, so losing it should break the build.
        if awk -v n="$now" -v b="$base" 'BEGIN { exit !(n > 2 * b) }'; then
            echo "bench-scale: FAIL — ${now} ms is more than 2x the committed baseline ${base} ms" >&2
            exit 1
        fi
    else
        echo "bench-scale: wrote $out (${now} ms; no previous BENCH_SCALE_*.json to gate against)"
    fi
    ;;
*)
    echo "usage: scripts/bench.sh [quick|topo|scale]" >&2
    exit 2
    ;;
esac
