#!/bin/sh
# Runs the quick bgqbench sweep, writes BENCH_<date>.json plus the
# observability metrics snapshot METRICS_<date>.json next to it, and
# prints a one-line wall-time comparison against the most recent previous
# BENCH_*.json so the performance trajectory is visible run over run.
set -eu

cd "$(dirname "$0")/.."

out="BENCH_$(date +%Y%m%d).json"
metrics="METRICS_$(date +%Y%m%d).json"
prev=$(ls BENCH_*.json 2>/dev/null | grep -v "^$out\$" | sort | tail -1 || true)

if [ -n "$prev" ]; then
    go run ./cmd/bgqbench -quick -run all -json "$out" -metrics "$metrics" -compare "$prev" | tail -1
else
    go run ./cmd/bgqbench -quick -run all -json "$out" -metrics "$metrics" > /dev/null
    echo "bench: wrote $out (no previous BENCH_*.json to compare against)"
fi
