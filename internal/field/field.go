// Package field is the in-situ analysis substrate the paper's
// introduction motivates: a simulation holds a distributed 3-D scalar
// field (think vorticity magnitude), an in-situ analysis thresholds it
// to find regions of interest, and only the cells above the threshold
// are written out. Because interesting structures are spatially
// concentrated, the per-rank output sizes are naturally sparse and
// heavy-tailed — the organic origin of the paper's Pattern 2.
//
// The field is synthesized as a sum of Gaussian blobs over a periodic
// unit cube plus a small deterministic ripple, decomposed into per-rank
// bricks by a 3-D rank grid.
package field

import (
	"fmt"
	"math"
	"math/rand"
)

// Grid describes the global cell grid and its decomposition onto ranks.
type Grid struct {
	// Cells per global axis.
	NX, NY, NZ int
	// Ranks per axis; rank (i,j,k) owns the brick at that position.
	PX, PY, PZ int
}

// NewGrid validates a decomposition: the rank grid must divide the cell
// grid exactly.
func NewGrid(nx, ny, nz, px, py, pz int) (Grid, error) {
	g := Grid{nx, ny, nz, px, py, pz}
	if nx < 1 || ny < 1 || nz < 1 || px < 1 || py < 1 || pz < 1 {
		return g, fmt.Errorf("field: non-positive grid %+v", g)
	}
	if nx%px != 0 || ny%py != 0 || nz%pz != 0 {
		return g, fmt.Errorf("field: rank grid %dx%dx%d does not divide cell grid %dx%dx%d",
			px, py, pz, nx, ny, nz)
	}
	return g, nil
}

// NumRanks returns the rank count of the decomposition.
func (g Grid) NumRanks() int { return g.PX * g.PY * g.PZ }

// CellsPerRank returns the cells in one brick.
func (g Grid) CellsPerRank() int {
	return (g.NX / g.PX) * (g.NY / g.PY) * (g.NZ / g.PZ)
}

// brickOrigin returns rank r's brick origin in cells.
func (g Grid) brickOrigin(r int) (x0, y0, z0 int) {
	bx, by, bz := g.NX/g.PX, g.NY/g.PY, g.NZ/g.PZ
	k := r % g.PZ
	j := (r / g.PZ) % g.PY
	i := r / (g.PZ * g.PY)
	return i * bx, j * by, k * bz
}

// Blob is one Gaussian structure in the unit cube.
type Blob struct {
	CX, CY, CZ float64 // center
	Sigma      float64 // width
	Amp        float64 // peak amplitude
}

// Field is a synthesized scalar field.
type Field struct {
	Grid  Grid
	Blobs []Blob
}

// Synthesize builds a field with nBlobs random Gaussian structures,
// deterministically in the seed.
func Synthesize(g Grid, nBlobs int, seed int64) (*Field, error) {
	if nBlobs < 0 {
		return nil, fmt.Errorf("field: negative blob count")
	}
	rng := rand.New(rand.NewSource(seed))
	f := &Field{Grid: g}
	for i := 0; i < nBlobs; i++ {
		f.Blobs = append(f.Blobs, Blob{
			CX:    rng.Float64(),
			CY:    rng.Float64(),
			CZ:    rng.Float64(),
			Sigma: 0.02 + 0.06*rng.Float64(),
			Amp:   0.5 + rng.Float64(),
		})
	}
	return f, nil
}

// At evaluates the field at a point of the periodic unit cube.
func (f *Field) At(x, y, z float64) float64 {
	v := 0.02 * (math.Sin(9*2*math.Pi*x) * math.Sin(7*2*math.Pi*y) * math.Sin(5*2*math.Pi*z))
	for _, b := range f.Blobs {
		dx := periodicDist(x, b.CX)
		dy := periodicDist(y, b.CY)
		dz := periodicDist(z, b.CZ)
		r2 := dx*dx + dy*dy + dz*dz
		v += b.Amp * math.Exp(-r2/(2*b.Sigma*b.Sigma))
	}
	return v
}

func periodicDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// CountAbove counts cells in rank r's brick whose field value exceeds
// the threshold, evaluating at cell centers.
func (f *Field) CountAbove(r int, threshold float64) int {
	g := f.Grid
	if r < 0 || r >= g.NumRanks() {
		panic(fmt.Sprintf("field: rank %d outside grid of %d ranks", r, g.NumRanks()))
	}
	bx, by, bz := g.NX/g.PX, g.NY/g.PY, g.NZ/g.PZ
	x0, y0, z0 := g.brickOrigin(r)
	count := 0
	for i := 0; i < bx; i++ {
		x := (float64(x0+i) + 0.5) / float64(g.NX)
		for j := 0; j < by; j++ {
			y := (float64(y0+j) + 0.5) / float64(g.NY)
			for k := 0; k < bz; k++ {
				z := (float64(z0+k) + 0.5) / float64(g.NZ)
				if f.At(x, y, z) > threshold {
					count++
				}
			}
		}
	}
	return count
}

// ExtractSizes runs the in-situ threshold analysis on every rank's brick
// and returns the per-rank output sizes: cells above the threshold times
// bytesPerCell (value + location encoding). This slice feeds directly
// into the aggregation planners.
func (f *Field) ExtractSizes(threshold float64, bytesPerCell int) []int64 {
	if bytesPerCell < 1 {
		panic("field: bytesPerCell must be positive")
	}
	out := make([]int64, f.Grid.NumRanks())
	for r := range out {
		out[r] = int64(f.CountAbove(r, threshold)) * int64(bytesPerCell)
	}
	return out
}

// Sparsity summarizes an extraction: the fraction of ranks with any
// output and the output fraction of the dense field.
func Sparsity(sizes []int64, cellsPerRank int, bytesPerCell int) (ranksWithData, volumeFraction float64) {
	if len(sizes) == 0 {
		return 0, 0
	}
	n := 0
	var total int64
	for _, s := range sizes {
		if s > 0 {
			n++
		}
		total += s
	}
	dense := int64(len(sizes)) * int64(cellsPerRank) * int64(bytesPerCell)
	return float64(n) / float64(len(sizes)), float64(total) / float64(dense)
}
