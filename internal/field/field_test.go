package field

import (
	"math"
	"testing"
	"testing/quick"
)

func grid(t *testing.T) Grid {
	t.Helper()
	g, err := NewGrid(64, 64, 64, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(64, 64, 64, 7, 8, 8); err == nil {
		t.Error("non-dividing rank grid accepted")
	}
	if _, err := NewGrid(0, 64, 64, 1, 1, 1); err == nil {
		t.Error("zero cells accepted")
	}
	if _, err := NewGrid(64, 64, 64, 1, 0, 1); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestGridCounts(t *testing.T) {
	g := grid(t)
	if g.NumRanks() != 512 {
		t.Fatalf("NumRanks = %d", g.NumRanks())
	}
	if g.CellsPerRank() != 512 {
		t.Fatalf("CellsPerRank = %d", g.CellsPerRank())
	}
}

func TestBrickOriginsTile(t *testing.T) {
	g := grid(t)
	seen := map[[3]int]bool{}
	for r := 0; r < g.NumRanks(); r++ {
		x, y, z := g.brickOrigin(r)
		key := [3]int{x, y, z}
		if seen[key] {
			t.Fatalf("brick origin %v duplicated", key)
		}
		seen[key] = true
		if x%8 != 0 || y%8 != 0 || z%8 != 0 || x >= 64 || y >= 64 || z >= 64 {
			t.Fatalf("bad origin %v", key)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	g := grid(t)
	a, _ := Synthesize(g, 5, 42)
	b, _ := Synthesize(g, 5, 42)
	for i := range a.Blobs {
		if a.Blobs[i] != b.Blobs[i] {
			t.Fatal("same seed gave different blobs")
		}
	}
	if _, err := Synthesize(g, -1, 0); err == nil {
		t.Fatal("negative blobs accepted")
	}
}

func TestFieldPeaksAtBlobCenters(t *testing.T) {
	g := grid(t)
	f := &Field{Grid: g, Blobs: []Blob{{CX: 0.5, CY: 0.5, CZ: 0.5, Sigma: 0.05, Amp: 1}}}
	center := f.At(0.5, 0.5, 0.5)
	far := f.At(0.0, 0.0, 0.0)
	if center <= far {
		t.Fatalf("field at blob center %g not above far point %g", center, far)
	}
	if center < 0.9 {
		t.Fatalf("blob peak %g, want ~1", center)
	}
}

func TestPeriodicDist(t *testing.T) {
	if d := periodicDist(0.1, 0.9); math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("wrap distance %g, want 0.2", d)
	}
	if d := periodicDist(0.3, 0.4); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("distance %g, want 0.1", d)
	}
}

func TestExtractSizesSparse(t *testing.T) {
	g := grid(t)
	f, _ := Synthesize(g, 4, 7)
	sizes := f.ExtractSizes(0.4, 16)
	ranksWithData, volume := Sparsity(sizes, g.CellsPerRank(), 16)
	if ranksWithData <= 0 || ranksWithData > 0.6 {
		t.Fatalf("ranks with data %.2f, want sparse (blobs are concentrated)", ranksWithData)
	}
	if volume <= 0 || volume > 0.4 {
		t.Fatalf("volume fraction %.3f, want well below dense", volume)
	}
}

func TestExtractSizesThresholdMonotone(t *testing.T) {
	g := grid(t)
	f, _ := Synthesize(g, 4, 9)
	low := f.ExtractSizes(0.2, 1)
	high := f.ExtractSizes(0.8, 1)
	var lowTotal, highTotal int64
	for r := range low {
		if high[r] > low[r] {
			t.Fatalf("rank %d: raising the threshold increased output", r)
		}
		lowTotal += low[r]
		highTotal += high[r]
	}
	if highTotal >= lowTotal {
		t.Fatal("raising the threshold should shrink the burst")
	}
}

func TestCountAboveBounds(t *testing.T) {
	g := grid(t)
	f, _ := Synthesize(g, 3, 1)
	for r := 0; r < g.NumRanks(); r += 37 {
		c := f.CountAbove(r, 0.3)
		if c < 0 || c > g.CellsPerRank() {
			t.Fatalf("rank %d count %d outside [0,%d]", r, c, g.CellsPerRank())
		}
	}
}

func TestCountAbovePanicsOutOfRange(t *testing.T) {
	g := grid(t)
	f, _ := Synthesize(g, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.CountAbove(g.NumRanks(), 0.5)
}

func TestSparsityEmpty(t *testing.T) {
	r, v := Sparsity(nil, 1, 1)
	if r != 0 || v != 0 {
		t.Fatal("empty sparsity should be zero")
	}
}

// Property: total extracted cells equal the sum over ranks of per-brick
// counts (no cell lost or double counted across the decomposition).
func TestPropertyExtractConsistent(t *testing.T) {
	g, err := NewGrid(16, 16, 16, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	f0, _ := Synthesize(g, 2, 3)
	check := func(thRaw uint8) bool {
		th := float64(thRaw) / 255
		sizes := f0.ExtractSizes(th, 1)
		var fromRanks int64
		for _, s := range sizes {
			fromRanks += s
		}
		// Count globally by walking every cell.
		var global int64
		for i := 0; i < g.NX; i++ {
			for j := 0; j < g.NY; j++ {
				for k := 0; k < g.NZ; k++ {
					x := (float64(i) + 0.5) / float64(g.NX)
					y := (float64(j) + 0.5) / float64(g.NY)
					z := (float64(k) + 0.5) / float64(g.NZ)
					if f0.At(x, y, z) > th {
						global++
					}
				}
			}
		}
		return fromRanks == global
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
