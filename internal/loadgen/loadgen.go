// Package loadgen drives a bgqd planning daemon with a seeded,
// deterministic request mix and reports latency/throughput/shed
// statistics. It is both the bgqload CLI's engine and the soak/stress
// test driver: the same Options always produce the same request
// stream, so a soak run is reproducible and comparable against a
// checked-in baseline report.
//
// Two load modes:
//
//   - open loop: requests arrive on a fixed-rate clock regardless of
//     completions (the "millions of independent users" shape; queueing
//     delay shows up as latency, overload as shedding);
//   - closed loop: a fixed number of workers issue the next request as
//     soon as the previous one completes (the saturation-throughput
//     shape).
//
// The request mix walks a precomputed ring of requests drawn from the
// sparse pair patterns in internal/workload (uniform / neighbor /
// shift / sparse), with message sizes tied deterministically to the
// endpoint pair — so hot pairs repeat as *identical* requests, which is
// exactly what the daemon's plan cache and request coalescing exploit.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bgqflow/internal/obs"
	"bgqflow/internal/scenario"
	"bgqflow/internal/serve"
	"bgqflow/internal/stats"
	"bgqflow/internal/torus"
	"bgqflow/internal/workload"
)

// Planner is the client surface a load run drives: a single-daemon
// *serve.Client or a cluster-routing *serve.RingClient. Run only needs
// the plan calls, fault posting (for FaultEvery), and retry-policy
// control; richer surfaces (metrics, SLO snapshots, stale accounting)
// are reached by type assertion after the run.
type Planner interface {
	SetRetryPolicy(serve.RetryPolicy)
	PlanPair(context.Context, serve.PairRequest) (serve.PlanResult, error)
	PlanAgg(context.Context, serve.AggRequest) (serve.PlanResult, error)
	Fault(context.Context, serve.FaultEvent) (uint64, error)
}

var (
	_ Planner = (*serve.Client)(nil)
	_ Planner = (*serve.RingClient)(nil)
)

// Options configures one load run.
type Options struct {
	// Mode is "open" (fixed-RPS arrivals) or "closed" (fixed workers).
	Mode string
	// Duration is the run length.
	Duration time.Duration
	// RPS is the open-loop arrival rate.
	RPS float64
	// Concurrency is the closed-loop worker count; 0 means 8.
	Concurrency int
	// Seed fixes the request mix.
	Seed int64
	// Shape is the torus geometry requests plan on; "" means
	// "2x2x4x4x2" (the paper's 128-node partition).
	Shape string
	// Patterns selects the pair patterns in the mix; nil means all of
	// workload.PairPatterns.
	Patterns []string
	// AggEvery makes every Nth ring slot an aggregation request instead
	// of a pair plan (0 disables). Aggregation plans are much heavier
	// than pair plans, so small values stress the queue.
	AggEvery int
	// MixSize is the request-ring length; 0 means 256. Smaller rings
	// repeat requests sooner (more cache hits), larger rings stress
	// plan computation.
	MixSize int
	// FaultEvery posts a seeded fault event alongside every Nth fired
	// request (0 disables). The poster alternates failing one random
	// link with clearing the whole set once three links are down, so
	// the effective fault set stays small enough to keep plans cheap.
	// Against a cluster the posts rotate across replicas, exercising
	// gossip dissemination and the epoch staleness gate under load.
	FaultEvery int
}

func (o Options) withDefaults() (Options, error) {
	switch o.Mode {
	case "":
		o.Mode = "open"
	case "open", "closed":
	default:
		return o, fmt.Errorf("loadgen: unknown mode %q (want open or closed)", o.Mode)
	}
	if o.Duration <= 0 {
		return o, fmt.Errorf("loadgen: duration %v must be positive", o.Duration)
	}
	if o.Mode == "open" && o.RPS <= 0 {
		return o, fmt.Errorf("loadgen: open-loop mode needs rps > 0")
	}
	if o.Concurrency == 0 {
		o.Concurrency = 8
	}
	if o.Concurrency < 0 {
		return o, fmt.Errorf("loadgen: concurrency %d", o.Concurrency)
	}
	if o.Shape == "" {
		o.Shape = "2x2x4x4x2"
	}
	if _, err := torus.ParseShape(o.Shape); err != nil {
		return o, err
	}
	if len(o.Patterns) == 0 {
		o.Patterns = append([]string(nil), workload.PairPatterns...)
	}
	for _, p := range o.Patterns {
		ok := false
		for _, k := range workload.PairPatterns {
			if p == k {
				ok = true
				break
			}
		}
		if !ok {
			return o, fmt.Errorf("loadgen: unknown pair pattern %q", p)
		}
	}
	if o.MixSize == 0 {
		o.MixSize = 256
	}
	if o.MixSize < 1 {
		return o, fmt.Errorf("loadgen: mixSize %d", o.MixSize)
	}
	if o.AggEvery < 0 {
		return o, fmt.Errorf("loadgen: aggEvery %d", o.AggEvery)
	}
	if o.FaultEvery < 0 {
		return o, fmt.Errorf("loadgen: faultEvery %d", o.FaultEvery)
	}
	return o, nil
}

// request is one ring slot.
type request struct {
	pattern string
	pair    *serve.PairRequest
	agg     *serve.AggRequest
}

// sizeLadder is the fixed set of message sizes; each endpoint pair maps
// deterministically onto one rung so repeated pairs repeat identically.
var sizeLadder = []int64{256 << 10, 1 << 20, 4 << 20, 8 << 20}

func sizeFor(p workload.Pair) int64 {
	h := fnv.New32a()
	fmt.Fprintf(h, "%d/%d", p.Src, p.Dst)
	return sizeLadder[int(h.Sum32())%len(sizeLadder)]
}

// BuildMix precomputes the request ring for the options. Exported so
// tests can assert determinism and inspect the mix.
func BuildMix(o Options) ([]request, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	shape, _ := torus.ParseShape(o.Shape)
	nodes := 1
	for _, ext := range shape {
		nodes *= ext
	}
	perPattern := o.MixSize/len(o.Patterns) + 1
	streams := make(map[string][]workload.Pair, len(o.Patterns))
	for i, name := range o.Patterns {
		ps, err := workload.Pairs(name, perPattern, nodes, o.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		streams[name] = ps
	}
	rng := rand.New(rand.NewSource(o.Seed))
	ring := make([]request, o.MixSize)
	used := make(map[string]int, len(o.Patterns))
	for i := range ring {
		if o.AggEvery > 0 && i%o.AggEvery == o.AggEvery-1 {
			ring[i] = request{pattern: "agg", agg: &serve.AggRequest{
				Shape:    o.Shape,
				Workload: "pattern2",
				Seed:     o.Seed + int64(rng.Intn(4)), // few distinct bursts: cacheable
			}}
			continue
		}
		name := o.Patterns[rng.Intn(len(o.Patterns))]
		p := streams[name][used[name]%perPattern]
		used[name]++
		ring[i] = request{pattern: name, pair: &serve.PairRequest{
			Shape: o.Shape,
			Src:   p.Src,
			Dst:   p.Dst,
			Bytes: sizeFor(p),
		}}
	}
	return ring, nil
}

// LatencySummary condenses the latency sample.
type LatencySummary struct {
	N      int     `json:"n"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Report is one load run's outcome, JSON-serializable for LOAD_<date>
// archives and baseline comparison.
type Report struct {
	Mode        string  `json:"mode"`
	Seed        int64   `json:"seed"`
	Shape       string  `json:"shape"`
	DurationSec float64 `json:"duration_sec"`
	TargetRPS   float64 `json:"target_rps,omitempty"`
	Concurrency int     `json:"concurrency,omitempty"`

	Requests        int     `json:"requests"`
	OK              int     `json:"ok"`
	Shed            int     `json:"shed"`
	Status4xx       int     `json:"status_4xx"`
	Status5xx       int     `json:"status_5xx"`
	TransportErrors int     `json:"transport_errors"`
	AchievedRPS     float64 `json:"achieved_rps"`
	ShedRate        float64 `json:"shed_rate"`

	Latency LatencySummary `json:"latency"`

	// Phases breaks successful-request latency into connect / queue /
	// compute / stream. Connect is the client's TCP dial (0 on pooled
	// connections); queue and compute come from the daemon's
	// X-Bgq-Queue-Ms / X-Bgq-Compute-Ms headers (0 on cache hits and
	// coalesced requests — the interesting split is how much of a
	// *computed* plan's latency was queue wait); stream is response
	// decode. The residual vs. total latency is network + HTTP overhead.
	Phases map[string]LatencySummary `json:"phases,omitempty"`

	// ByPattern counts requests per mix pattern.
	ByPattern map[string]int `json:"by_pattern,omitempty"`

	// ByReplica breaks the client-side view down by serving replica
	// (from the X-Bgq-Replica response header) — the hot-shard detector
	// for cluster soaks. Empty against a standalone daemon, which sends
	// no replica header.
	ByReplica map[string]*ReplicaStats `json:"by_replica,omitempty"`

	// StaleServed counts ring responses whose fault-epoch vector did
	// not dominate the vector the client demanded (ring runs only). The
	// server-side min-vector check makes this impossible, so Check
	// fails on any nonzero count.
	StaleServed int64 `json:"stale_served,omitempty"`

	// FaultsPosted / FaultErrors count the FaultEvery poster's acked
	// and failed fault events.
	FaultsPosted int `json:"faults_posted,omitempty"`
	FaultErrors  int `json:"fault_errors,omitempty"`

	// Server-side view, from /metrics after the run.
	CacheHits     int64                `json:"cache_hits"`
	Coalesced     int64                `json:"coalesced"`
	PlansComputed int64                `json:"plans_computed"`
	CoalesceRate  float64              `json:"coalesce_rate"`
	Metrics       *obs.MetricsSnapshot `json:"metrics,omitempty"`

	// SLO is the daemon's verdict snapshot after the run, when the
	// daemon has objectives configured (nil otherwise). Criteria's
	// RequireSLO gates on it.
	SLO *obs.SLOSnapshot `json:"slo,omitempty"`
}

// ReplicaStats is one replica's slice of a load run, as the client saw
// it: how many requests the replica answered, how they fared, and the
// latency of its successful plans. Share is the replica's fraction of
// all replica-attributed requests — the number the hot-shard gate
// reads.
type ReplicaStats struct {
	Requests int            `json:"requests"`
	OK       int            `json:"ok"`
	Shed     int            `json:"shed"`
	Errors   int            `json:"errors"`
	Share    float64        `json:"share"`
	Latency  LatencySummary `json:"latency"`
}

// Run executes the load against the daemon (or daemon cluster) behind
// client.
func Run(ctx context.Context, client Planner, o Options) (Report, error) {
	o, err := o.withDefaults()
	if err != nil {
		return Report{}, err
	}
	ring, err := BuildMix(o)
	if err != nil {
		return Report{}, err
	}
	// Shed accounting must be exact: every 429 the daemon sends is one
	// shed in the report, so the client must not quietly retry them.
	// Against a ring, 503s still retry in place — a clustered 503 means
	// "replica behind the demanded fault vector", which resolves by
	// waiting out the gossip window, not a shed.
	pol := serve.NoRetryPolicy()
	if _, isRing := client.(*serve.RingClient); isRing {
		pol = serve.DefaultRetryPolicy()
		pol.NoShedRetry = true
	}
	client.SetRetryPolicy(pol)
	rep := Report{
		Mode:        o.Mode,
		Seed:        o.Seed,
		Shape:       o.Shape,
		DurationSec: o.Duration.Seconds(),
		Concurrency: o.Concurrency,
		ByPattern:   make(map[string]int),
	}
	if o.Mode == "open" {
		rep.TargetRPS = o.RPS
	}

	var (
		mu         sync.Mutex
		latencies  []float64
		phases     = map[string][]float64{}
		replicaLat = map[string][]float64{}
		next       atomic.Int64
	)
	record := func(pattern string, res serve.PlanResult, err error, lat time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		rep.Requests++
		rep.ByPattern[pattern]++
		if err != nil {
			rep.TransportErrors++
			return
		}
		var rs *ReplicaStats
		if res.Replica != "" {
			if rep.ByReplica == nil {
				rep.ByReplica = make(map[string]*ReplicaStats)
			}
			rs = rep.ByReplica[res.Replica]
			if rs == nil {
				rs = &ReplicaStats{}
				rep.ByReplica[res.Replica] = rs
			}
			rs.Requests++
		}
		switch {
		case res.OK():
			rep.OK++
			latencies = append(latencies, float64(lat)/1e6)
			phases["connect"] = append(phases["connect"], res.ConnectMS)
			phases["queue"] = append(phases["queue"], res.QueueMS)
			phases["compute"] = append(phases["compute"], res.ComputeMS)
			phases["stream"] = append(phases["stream"], res.StreamMS)
			if rs != nil {
				rs.OK++
				replicaLat[res.Replica] = append(replicaLat[res.Replica], float64(lat)/1e6)
			}
		case res.Shed():
			rep.Shed++
			if rs != nil {
				rs.Shed++
			}
		case res.Status >= 500:
			rep.Status5xx++
			if rs != nil {
				rs.Errors++
			}
		case res.Status >= 400:
			rep.Status4xx++
			if rs != nil {
				rs.Errors++
			}
		}
	}

	// Seeded fault poster for FaultEvery: one random link failure per
	// event, cleared wholesale once three are down. Same seed, same
	// event sequence — the chaos half of a soak is as reproducible as
	// its request mix.
	shape, _ := torus.ParseShape(o.Shape)
	nodes := 1
	for _, ext := range shape {
		nodes *= ext
	}
	var (
		faultMu  sync.Mutex
		faultRNG = rand.New(rand.NewSource(o.Seed ^ 0x5eedfa))
		active   int
	)
	postFault := func(ctx context.Context) {
		faultMu.Lock()
		var ev serve.FaultEvent
		if active >= 3 {
			ev.Clear = true
			active = 0
		} else {
			ev.Links = []scenario.FailLink{{
				Node: faultRNG.Intn(nodes),
				Dim:  faultRNG.Intn(len(shape)),
				Dir:  1,
			}}
			active++
		}
		faultMu.Unlock()
		_, ferr := client.Fault(ctx, ev)
		mu.Lock()
		if ferr != nil {
			rep.FaultErrors++
		} else {
			rep.FaultsPosted++
		}
		mu.Unlock()
	}

	fire := func(ctx context.Context) {
		slot := int(next.Add(1) - 1)
		if o.FaultEvery > 0 && slot%o.FaultEvery == o.FaultEvery-1 {
			postFault(ctx)
		}
		req := ring[slot%len(ring)]
		t0 := time.Now()
		var res serve.PlanResult
		var err error
		if req.agg != nil {
			res, err = client.PlanAgg(ctx, *req.agg)
		} else {
			res, err = client.PlanPair(ctx, *req.pair)
		}
		record(req.pattern, res, err, time.Since(t0))
	}

	runCtx, cancel := context.WithTimeout(ctx, o.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	switch o.Mode {
	case "closed":
		wg.Add(o.Concurrency)
		for w := 0; w < o.Concurrency; w++ {
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					fire(ctx)
				}
			}()
		}
	case "open":
		interval := time.Duration(float64(time.Second) / o.RPS)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
	loop:
		for {
			select {
			case <-runCtx.Done():
				break loop
			case <-ticker.C:
				wg.Add(1)
				go func() {
					defer wg.Done()
					fire(ctx)
				}()
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.Requests) / elapsed
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	}
	s := stats.Summarize(latencies)
	rep.Latency = LatencySummary{N: s.N, MeanMS: s.Mean, MaxMS: s.Max}
	if s.N > 0 {
		rep.Latency.P50MS = stats.Percentile(latencies, 50)
		rep.Latency.P90MS = stats.Percentile(latencies, 90)
		rep.Latency.P99MS = stats.Percentile(latencies, 99)
		rep.Phases = make(map[string]LatencySummary, len(phases))
		for name, xs := range phases {
			ps := stats.Summarize(xs)
			sum := LatencySummary{N: ps.N, MeanMS: ps.Mean, MaxMS: ps.Max}
			sum.P50MS = stats.Percentile(xs, 50)
			sum.P90MS = stats.Percentile(xs, 90)
			sum.P99MS = stats.Percentile(xs, 99)
			rep.Phases[name] = sum
		}
	}

	// Per-replica shares and latency summaries from the client-side
	// attribution (X-Bgq-Replica).
	attributed := 0
	for _, rs := range rep.ByReplica {
		attributed += rs.Requests
	}
	for id, rs := range rep.ByReplica {
		if attributed > 0 {
			rs.Share = float64(rs.Requests) / float64(attributed)
		}
		xs := replicaLat[id]
		ps := stats.Summarize(xs)
		rs.Latency = LatencySummary{N: ps.N, MeanMS: ps.Mean, MaxMS: ps.Max}
		if ps.N > 0 {
			rs.Latency.P50MS = stats.Percentile(xs, 50)
			rs.Latency.P90MS = stats.Percentile(xs, 90)
			rs.Latency.P99MS = stats.Percentile(xs, 99)
		}
	}

	// Server-side counters after the run; a load run against a dead or
	// unreachable daemon still returns its client-side half. A ring sums
	// the fleet's counters (the aggregate cache is the interesting one)
	// and carries over the client-side staleness oracle.
	switch c := client.(type) {
	case *serve.Client:
		if snap, merr := c.Metrics(ctx); merr == nil {
			rep.Metrics = &snap
			rep.CacheHits = snap.Counters["serve/cache_hits"]
			rep.Coalesced = snap.Counters["serve/coalesced"]
			rep.PlansComputed = snap.Counters["serve/plans_computed"]
			if served := snap.Counters["serve/requests"]; served > 0 {
				rep.CoalesceRate = float64(rep.CacheHits+rep.Coalesced) / float64(served)
			}
		}
		// SLO verdicts, when the daemon has objectives configured. Best
		// effort like /metrics — but RequireSLO fails a run that could not
		// produce a snapshot, so a soak cannot silently skip its gate.
		if slo, serr := c.SLO(ctx); serr == nil && slo.Enabled {
			rep.SLO = &slo
		}
	case *serve.RingClient:
		rep.StaleServed = c.StaleServed()
		var served int64
		for _, snap := range c.MetricsAll(ctx) {
			rep.CacheHits += snap.Counters["serve/cache_hits"]
			rep.Coalesced += snap.Counters["serve/coalesced"]
			rep.PlansComputed += snap.Counters["serve/plans_computed"]
			served += snap.Counters["serve/requests"]
		}
		if served > 0 {
			rep.CoalesceRate = float64(rep.CacheHits+rep.Coalesced) / float64(served)
		}
	}
	return rep, nil
}

// Criteria are the pass/fail gates a soak run applies to its report.
type Criteria struct {
	// MaxShedRate fails the run when shed/requests exceeds it.
	MaxShedRate float64
	// Max5xx fails the run when more than this many 5xx were seen
	// (soak demands zero).
	Max5xx int
	// RequireCoalesce fails the run when the server reports no cache
	// hits and no coalesced requests at all.
	RequireCoalesce bool
	// MaxP99MS, when positive, fails the run when the measured p99
	// exceeds it (set from a baseline: base.p99 * ratio).
	MaxP99MS float64
	// MinRequests guards against a vacuous pass.
	MinRequests int
	// MaxReplicaShare, when positive, fails the run when any single
	// replica answered more than this fraction of replica-attributed
	// requests — the hot-shard gate for cluster soaks. Ring routing
	// should spread the mix; one replica soaking it all up means the
	// ring (or the mix) is degenerate.
	MaxReplicaShare float64
	// RequireSLO fails the run unless the daemon served an SLO snapshot
	// with objectives enabled and zero cumulative breaches.
	RequireSLO bool
}

// checkSLO is the shared SLO gate for plan and session soaks.
func checkSLO(slo *obs.SLOSnapshot, fails []string) []string {
	if slo == nil {
		return append(fails, "no SLO snapshot (daemon has no objectives configured?)")
	}
	for _, v := range slo.Verdicts {
		if v.Breaches > 0 {
			fails = append(fails, fmt.Sprintf("SLO %s breached %d/%d evals (value %.4g, threshold %.4g)",
				v.Name, v.Breaches, v.Evals, v.Value, v.Threshold))
		}
	}
	return fails
}

// Check applies the criteria; the returned error names every violated
// gate.
func (r Report) Check(c Criteria) error {
	var fails []string
	if r.Status5xx > c.Max5xx {
		fails = append(fails, fmt.Sprintf("%d 5xx responses (max %d)", r.Status5xx, c.Max5xx))
	}
	if r.TransportErrors > 0 {
		fails = append(fails, fmt.Sprintf("%d transport errors", r.TransportErrors))
	}
	if c.MaxShedRate > 0 && r.ShedRate > c.MaxShedRate {
		fails = append(fails, fmt.Sprintf("shed rate %.2f (max %.2f)", r.ShedRate, c.MaxShedRate))
	}
	if c.RequireCoalesce && r.CacheHits+r.Coalesced == 0 {
		fails = append(fails, "no cache hits or coalesced requests")
	}
	if c.MaxP99MS > 0 && r.Latency.P99MS > c.MaxP99MS {
		fails = append(fails, fmt.Sprintf("p99 %.1fms exceeds %.1fms", r.Latency.P99MS, c.MaxP99MS))
	}
	if c.MinRequests > 0 && r.Requests < c.MinRequests {
		fails = append(fails, fmt.Sprintf("only %d requests issued (min %d)", r.Requests, c.MinRequests))
	}
	// Staleness is gated unconditionally: the server-side min-vector
	// check makes a stale response impossible, so any count at all is a
	// cluster-consistency bug, never an acceptable operating point.
	if r.StaleServed > 0 {
		fails = append(fails, fmt.Sprintf("%d stale responses served (fault-epoch vector regression)", r.StaleServed))
	}
	if c.MaxReplicaShare > 0 {
		for id, rs := range r.ByReplica {
			if rs.Share > c.MaxReplicaShare {
				fails = append(fails, fmt.Sprintf("hot shard: replica %s answered %.0f%% of requests (max %.0f%%)",
					id, rs.Share*100, c.MaxReplicaShare*100))
			}
		}
	}
	if c.RequireSLO {
		fails = checkSLO(r.SLO, fails)
	}
	if len(fails) > 0 {
		return fmt.Errorf("loadgen: soak gates failed: %s", joinAnd(fails))
	}
	return nil
}

func joinAnd(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "; "
		}
		out += p
	}
	return out
}

// WriteJSON serializes the report, indented, with a trailing newline.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a previously written report (e.g. the soak
// baseline).
func ReadReport(rd io.Reader) (Report, error) {
	var r Report
	err := json.NewDecoder(rd).Decode(&r)
	return r, err
}
