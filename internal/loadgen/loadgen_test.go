package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"bgqflow/internal/cluster"
	"bgqflow/internal/serve"
)

func TestBuildMixDeterministic(t *testing.T) {
	opts := Options{Mode: "closed", Duration: time.Second, Seed: 42, AggEvery: 10, MixSize: 64}
	a, err := BuildMix(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildMix(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same options produced different request mixes")
	}
	opts.Seed = 43
	c, err := BuildMix(opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical mixes")
	}
	aggs := 0
	for i, r := range a {
		if r.agg != nil {
			aggs++
			if (i+1)%10 != 0 {
				t.Fatalf("agg request at slot %d, want every 10th", i)
			}
		} else if r.pair == nil {
			t.Fatalf("slot %d has neither pair nor agg", i)
		} else if r.pair.Src == r.pair.Dst {
			t.Fatalf("slot %d is a self-pair", i)
		}
	}
	if aggs != 6 {
		t.Fatalf("%d agg slots in 64, want 6", aggs)
	}
}

func TestMixSizesTiedToPair(t *testing.T) {
	// Identical pairs must request identical sizes, or hot pairs would
	// never repeat as identical requests and the daemon's cache would be
	// useless against sparse traffic.
	ring, err := BuildMix(Options{Mode: "closed", Duration: time.Second, Seed: 7,
		Patterns: []string{"sparse"}, MixSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]int64{}
	repeats := 0
	for _, r := range ring {
		k := [2]int{r.pair.Src, r.pair.Dst}
		if prev, ok := seen[k]; ok {
			repeats++
			if prev != r.pair.Bytes {
				t.Fatalf("pair %v requested %d then %d bytes", k, prev, r.pair.Bytes)
			}
		}
		seen[k] = r.pair.Bytes
	}
	if repeats == 0 {
		t.Fatal("sparse mix of 256 requests has no repeated pair")
	}
}

func TestOptionsValidation(t *testing.T) {
	base := Options{Mode: "closed", Duration: time.Second}
	for name, mutate := range map[string]func(*Options){
		"bad mode":     func(o *Options) { o.Mode = "sideways" },
		"zero rps":     func(o *Options) { o.Mode = "open"; o.RPS = 0 },
		"bad duration": func(o *Options) { o.Duration = 0 },
		"bad shape":    func(o *Options) { o.Shape = "nope" },
		"bad pattern":  func(o *Options) { o.Patterns = []string{"bogus"} },
		"neg agg":      func(o *Options) { o.AggEvery = -1 },
	} {
		o := base
		mutate(&o)
		if _, err := BuildMix(o); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestRunClosedLoop(t *testing.T) {
	srv := serve.New(serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer func() { hs.Close(); srv.Close() }()
	client, err := serve.NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), client, Options{
		Mode:        "closed",
		Duration:    500 * time.Millisecond,
		Concurrency: 4,
		Seed:        1,
		MixSize:     16, // small ring: repeats guarantee cache traffic
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.OK == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Status5xx != 0 || rep.TransportErrors != 0 {
		t.Fatalf("errors: %+v", rep)
	}
	if rep.CacheHits+rep.Coalesced == 0 {
		t.Error("16-slot ring produced no cache hits or coalescing")
	}
	if rep.Latency.N == 0 || rep.Latency.P99MS < rep.Latency.P50MS {
		t.Errorf("bad latency summary: %+v", rep.Latency)
	}
	if err := rep.Check(Criteria{MaxShedRate: 0.5, RequireCoalesce: true, MinRequests: 1}); err != nil {
		t.Errorf("gates: %v", err)
	}
}

// startRingCluster spins n clustered in-process daemons wired as gossip
// peers and returns a ring client over them. Listeners are bound before
// any daemon starts so every peer URL exists up front.
func startRingCluster(t *testing.T, n int) *serve.RingClient {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	members := make([]cluster.Member, n)
	for i := range lns {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		srv := serve.New(serve.Config{
			ReplicaID:      fmt.Sprintf("r%d", i),
			Peers:          peers,
			GossipInterval: 25 * time.Millisecond,
			GossipSeed:     int64(i + 1),
		})
		hs := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: srv.Handler()}}
		hs.Start()
		t.Cleanup(func() { hs.Close(); srv.Close() })
		members[i] = cluster.Member{ID: fmt.Sprintf("r%d", i), Addr: addrs[i]}
	}
	rc, err := serve.NewRingClient(members)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func TestRunRingMode(t *testing.T) {
	rc := startRingCluster(t, 3)
	rep, err := Run(context.Background(), rc, Options{
		Mode:        "closed",
		Duration:    700 * time.Millisecond,
		Concurrency: 4,
		Seed:        1,
		MixSize:     32,
		FaultEvery:  25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.OK == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Status5xx != 0 || rep.TransportErrors != 0 {
		t.Fatalf("errors: 5xx=%d transport=%d", rep.Status5xx, rep.TransportErrors)
	}
	if rep.StaleServed != 0 {
		t.Fatalf("%d stale responses served — the min-vector discipline is broken", rep.StaleServed)
	}
	if rep.FaultsPosted == 0 {
		t.Error("FaultEvery=25 posted no fault events")
	}
	if rep.FaultErrors != 0 {
		t.Errorf("%d fault posts failed against a healthy cluster", rep.FaultErrors)
	}
	// 32 distinct keys over a 3-replica ring must attribute traffic to
	// more than one replica, shares must account for every attributed
	// request, and per-replica OKs must sum to the total.
	if len(rep.ByReplica) < 2 {
		t.Fatalf("ByReplica has %d replicas, want >= 2: %+v", len(rep.ByReplica), rep.ByReplica)
	}
	attributed, oks, share := 0, 0, 0.0
	for id, rs := range rep.ByReplica {
		attributed += rs.Requests
		oks += rs.OK
		share += rs.Share
		if rs.OK > 0 && rs.Latency.N != rs.OK {
			t.Errorf("replica %s: latency N %d != OK %d", id, rs.Latency.N, rs.OK)
		}
	}
	if oks != rep.OK {
		t.Errorf("per-replica OK sums to %d, report says %d", oks, rep.OK)
	}
	if attributed > rep.Requests {
		t.Errorf("attributed %d > total %d", attributed, rep.Requests)
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("replica shares sum to %.4f, want 1", share)
	}
	if err := rep.Check(Criteria{MaxShedRate: 0.9, MinRequests: 1, MaxReplicaShare: 0.95}); err != nil {
		t.Errorf("gates: %v", err)
	}
}

func TestRingGates(t *testing.T) {
	stale := Report{Requests: 10, OK: 10, StaleServed: 2}
	if err := stale.Check(Criteria{}); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Errorf("stale gate: err %v, want mention of stale", err)
	}
	hot := Report{Requests: 10, OK: 10, ByReplica: map[string]*ReplicaStats{
		"r0": {Requests: 9, Share: 0.9},
		"r1": {Requests: 1, Share: 0.1},
	}}
	if err := hot.Check(Criteria{MaxReplicaShare: 0.8}); err == nil || !strings.Contains(err.Error(), "hot shard") {
		t.Errorf("hot-shard gate: err %v, want mention of hot shard", err)
	}
	if err := hot.Check(Criteria{MaxReplicaShare: 0.95}); err != nil {
		t.Errorf("share under the cap failed: %v", err)
	}
}

func TestReportRoundTripAndGates(t *testing.T) {
	rep := Report{Mode: "open", Seed: 3, Requests: 100, OK: 90, Shed: 10, ShedRate: 0.1,
		Latency: LatencySummary{N: 90, P50MS: 1, P99MS: 8}}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Requests != 100 || back.Latency.P99MS != 8 {
		t.Fatalf("round trip lost data: %+v", back)
	}

	for name, c := range map[string]struct {
		rep  Report
		crit Criteria
		want string
	}{
		"5xx":       {Report{Status5xx: 1}, Criteria{}, "5xx"},
		"transport": {Report{TransportErrors: 2}, Criteria{}, "transport"},
		"shed":      {Report{Requests: 10, Shed: 9, ShedRate: 0.9}, Criteria{MaxShedRate: 0.5}, "shed rate"},
		"coalesce":  {Report{}, Criteria{RequireCoalesce: true}, "no cache hits"},
		"p99":       {Report{Latency: LatencySummary{P99MS: 100}}, Criteria{MaxP99MS: 10}, "p99"},
		"vacuous":   {Report{}, Criteria{MinRequests: 1}, "requests issued"},
	} {
		err := c.rep.Check(c.crit)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want mention of %q", name, err, c.want)
		}
	}
	if err := (Report{Requests: 5, OK: 5}).Check(Criteria{MaxShedRate: 0.5}); err != nil {
		t.Errorf("clean report failed gates: %v", err)
	}
}
