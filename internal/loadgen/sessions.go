package loadgen

// Session chaos soak: drive many concurrent resilient transfer sessions
// through a bgqd daemon and verify, per session, the full resilience
// contract — every session either completes with a report that is
// byte-identical to a direct MoveResilient replay of its recorded
// timeline (fault snapshot + pushed-fault instants), or it is counted
// lost. The driver deliberately misbehaves (forced disconnects) and
// deliberately destabilizes the daemon (fault events mid-run); the soak
// script adds a SIGTERM/restart on top. The gates demand zero lost,
// zero duplicated, zero mismatched sessions.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bgqflow/internal/core"
	"bgqflow/internal/obs"
	"bgqflow/internal/scenario"
	"bgqflow/internal/serve"
	"bgqflow/internal/torus"
	"bgqflow/internal/workload"
)

// SessionOptions configures one session soak run.
type SessionOptions struct {
	// Sessions is the total session count; 0 means 64.
	Sessions int
	// Concurrency bounds sessions in flight at once; 0 means Sessions
	// (everything at once — the peak-concurrency shape the soak wants).
	Concurrency int
	// Seed fixes endpoints, sizes, campaigns, and session IDs.
	Seed int64
	// Shape is the torus geometry; "" means "2x2x4x4x2".
	Shape string
	// Pattern picks the endpoint stream; "" means "burst" (runs of
	// repeated pairs — the message-combining shape).
	Pattern string
	// PaceUS stretches each session's wall-clock (per safe point) so
	// faults, disconnects, and restarts land mid-flight. 0 means none.
	PaceUS int
	// CampaignEvery gives every Nth session a seeded client fault
	// campaign (0 disables).
	CampaignEvery int
	// BatchEvery marks every Nth session combinable (0 disables). Takes
	// effect only when the daemon runs with a batch window.
	BatchEvery int
	// DropEvery forces a client disconnect every N frames on every third
	// session, exercising resume (0 disables).
	DropEvery int
	// FaultEvents is how many server-side fault events the driver posts
	// while sessions run (0 disables).
	FaultEvents int
	// Verify replays every session's timeline through a direct
	// MoveResilient run and compares reports byte for byte.
	Verify bool
	// Timeout is the per-session budget; 0 means 2m.
	Timeout time.Duration
}

func (o SessionOptions) withDefaults() (SessionOptions, error) {
	if o.Sessions == 0 {
		o.Sessions = 64
	}
	if o.Sessions < 1 {
		return o, fmt.Errorf("loadgen: sessions %d", o.Sessions)
	}
	if o.Concurrency == 0 {
		o.Concurrency = o.Sessions
	}
	if o.Concurrency < 1 {
		return o, fmt.Errorf("loadgen: session concurrency %d", o.Concurrency)
	}
	if o.Shape == "" {
		o.Shape = "2x2x4x4x2"
	}
	if _, err := torus.ParseShape(o.Shape); err != nil {
		return o, err
	}
	if o.Pattern == "" {
		o.Pattern = "burst"
	}
	known := false
	for _, k := range workload.PairPatterns {
		if o.Pattern == k {
			known = true
			break
		}
	}
	if !known {
		return o, fmt.Errorf("loadgen: unknown pair pattern %q", o.Pattern)
	}
	if o.CampaignEvery < 0 || o.BatchEvery < 0 || o.DropEvery < 0 || o.FaultEvents < 0 || o.PaceUS < 0 {
		return o, fmt.Errorf("loadgen: negative session option")
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	return o, nil
}

// ValidateSessionOptions checks o without running anything, so CLI
// layers can reject bad flags up front (exit 2) before a long soak.
func ValidateSessionOptions(o SessionOptions) error {
	_, err := o.withDefaults()
	return err
}

// SessionID names session i of a run deterministically, so a re-run
// with the same seed re-arms the same sessions.
func SessionID(seed int64, i int) string { return fmt.Sprintf("bgqload-%d-%d", seed, i) }

// SessionReport is one session soak's outcome.
type SessionReport struct {
	Sessions    int     `json:"sessions"`
	Seed        int64   `json:"seed"`
	Shape       string  `json:"shape"`
	Pattern     string  `json:"pattern"`
	Concurrency int     `json:"concurrency"`
	WallSec     float64 `json:"wall_sec"`

	// Completed sessions delivered a non-aborted report with no run
	// error; Failed delivered a terminal report carrying a deterministic
	// run error (e.g. the fault load cut the pair off or exhausted the
	// replan budget) — still byte-verified against the oracle; Lost ran
	// out of retry/context budget; Mismatched failed the byte-exact
	// replay check. The soak gates demand Lost == Mismatched == 0.
	Completed  int  `json:"completed"`
	Failed     int  `json:"failed"`
	Lost       int  `json:"lost"`
	Mismatched int  `json:"mismatched"`
	Verified   bool `json:"verified"`

	// Duplicated is the double-start count from the daemon's own
	// counters: every run the daemon launches is announced as exactly one
	// "started" or "rearmed" verdict, so executed > started + rearmed
	// means an idempotency violation. Counted on the daemon that served
	// the end of the run.
	Duplicated int64 `json:"duplicated"`

	// Resilience traffic actually exercised.
	Resumes        int `json:"resumes"`
	Restarts       int `json:"restarts"`
	PushedFaults   int `json:"pushed_faults"`
	BatchedMembers int `json:"batched_members"`
	PeakConcurrent int `json:"peak_concurrent"`
	FaultsPosted   int `json:"faults_posted"`

	// Server-side view, from /metrics after the run.
	ServerExecuted  int64                `json:"server_executed"`
	ServerStarted   int64                `json:"server_started"`
	ServerRearmed   int64                `json:"server_rearmed"`
	ServerCompleted int64                `json:"server_completed"`
	ServerAborted   int64                `json:"server_aborted"`
	Metrics         *obs.MetricsSnapshot `json:"metrics,omitempty"`

	// SLO is the daemon's verdict snapshot after the soak, when the
	// daemon has objectives configured (nil otherwise).
	SLO *obs.SLOSnapshot `json:"slo,omitempty"`
}

// RunSessions executes the session soak against the daemon behind
// client.
func RunSessions(ctx context.Context, client *serve.Client, o SessionOptions) (SessionReport, error) {
	o, err := o.withDefaults()
	if err != nil {
		return SessionReport{}, err
	}
	shape, _ := torus.ParseShape(o.Shape)
	nodes := 1
	for _, ext := range shape {
		nodes *= ext
	}
	pairs, err := workload.Pairs(o.Pattern, o.Sessions, nodes, o.Seed)
	if err != nil {
		return SessionReport{}, err
	}
	rep := SessionReport{
		Sessions:    o.Sessions,
		Verified:    o.Verify,
		Seed:        o.Seed,
		Shape:       o.Shape,
		Pattern:     o.Pattern,
		Concurrency: o.Concurrency,
	}

	var (
		mu      sync.Mutex
		active  atomic.Int64
		peak    atomic.Int64
		workers sync.WaitGroup
		sem     = make(chan struct{}, o.Concurrency)
	)
	// The session client survives everything: unlimited attempts inside
	// the per-session budget, transport retries for the restart window.
	policy := serve.RetryPolicy{
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  500 * time.Millisecond,
		Jitter:      0.25,
		RetryConn:   true,
	}

	runOne := func(i int) {
		defer workers.Done()
		sem <- struct{}{}
		defer func() { <-sem }()
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer active.Add(-1)

		req := serve.TransferRequest{
			ID:     SessionID(o.Seed, i),
			Shape:  o.Shape,
			Src:    pairs[i].Src,
			Dst:    pairs[i].Dst,
			Bytes:  sizeFor(pairs[i]),
			PaceUS: o.PaceUS,
		}
		if o.CampaignEvery > 0 && i%o.CampaignEvery == 0 {
			req.Campaign = &scenario.FaultCampaignConfig{
				Kind: "uniform", Count: 2, Seed: o.Seed + int64(i), WindowMS: 2,
			}
		} else if o.BatchEvery > 0 && i%o.BatchEvery == 0 {
			req.Batch = true
		}
		opts := serve.TransferOpts{Backoff: policy}
		if o.DropEvery > 0 && i%3 == 0 {
			opts.DropEvery = o.DropEvery
		}
		sctx, cancel := context.WithTimeout(ctx, o.Timeout)
		defer cancel()
		out, terr := client.Transfer(sctx, req, opts)

		mu.Lock()
		defer mu.Unlock()
		if terr != nil || len(out.Report) == 0 {
			rep.Lost++
			return
		}
		// A terminal report with a run error is a deterministic transfer
		// failure (pair cut off, replan budget exhausted), not a lost
		// session: the stream delivered it and the oracle must reproduce
		// both the partial report and the error below.
		failed := out.Err != ""
		if failed {
			rep.Failed++
		} else {
			rep.Completed++
		}
		rep.Resumes += out.Resumes
		rep.Restarts += out.Restarts
		rep.PushedFaults += len(out.Pushed)
		if len(out.Members) > 1 {
			rep.BatchedMembers++
		}
		if !o.Verify {
			return
		}
		var got core.TransferReport
		if jerr := json.Unmarshal(out.Report, &got); jerr != nil {
			rep.Mismatched++
			return
		}
		if !failed && !got.Complete {
			rep.Mismatched++
			return
		}
		oreq := req
		oreq.PaceUS = 0
		if len(out.Members) > 1 {
			// Combined session: the oracle runs at the combined size the
			// report declares; everything else must match byte for byte.
			oreq.Bytes = got.Bytes
		}
		want, derr := serve.RunTransfer(oreq, out.Faults, serve.TransferHooks{
			Interject: serve.PushedInterject(out.Pushed),
		})
		if failed {
			if derr == nil || derr.Error() != out.Err {
				rep.Mismatched++
				return
			}
		} else if derr != nil {
			rep.Mismatched++
			return
		}
		wantJSON, _ := json.Marshal(want)
		if !bytes.Equal(out.Report, wantJSON) {
			rep.Mismatched++
		}
	}

	start := time.Now()
	workers.Add(o.Sessions)
	for i := 0; i < o.Sessions; i++ {
		go runOne(i)
	}

	// The fault campaign against the daemon itself: seeded link failures
	// posted while sessions are in flight, pushed into every running
	// session.
	faultsDone := make(chan struct{})
	allDone := make(chan struct{})
	go func() { workers.Wait(); close(allDone) }()
	go func() {
		defer close(faultsDone)
		if o.FaultEvents <= 0 {
			return
		}
		rng := rand.New(rand.NewSource(o.Seed ^ 0x5eed))
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for posted := 0; posted < o.FaultEvents; {
			select {
			case <-allDone:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			fl := scenario.FailLink{
				Node: rng.Intn(nodes),
				Dim:  rng.Intn(len(shape)),
				Dir:  1 - 2*rng.Intn(2),
			}
			if _, ferr := client.Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}}); ferr == nil {
				posted++
				mu.Lock()
				rep.FaultsPosted++
				mu.Unlock()
			}
		}
	}()
	<-allDone
	<-faultsDone
	rep.WallSec = time.Since(start).Seconds()
	rep.PeakConcurrent = int(peak.Load())

	// Server-side counters; best effort (the run may have outlived the
	// daemon it started against).
	if snap, merr := client.Metrics(ctx); merr == nil {
		rep.Metrics = &snap
		rep.ServerExecuted = snap.Counters["serve/sessions_executed"]
		rep.ServerStarted = snap.Counters["serve/sessions_started"]
		rep.ServerRearmed = snap.Counters["serve/sessions_rearmed"]
		rep.ServerCompleted = snap.Counters["serve/sessions_completed"]
		rep.ServerAborted = snap.Counters["serve/sessions_aborted"]
		rep.Duplicated = rep.ServerExecuted - rep.ServerStarted - rep.ServerRearmed
	}
	if slo, serr := client.SLO(ctx); serr == nil && slo.Enabled {
		rep.SLO = &slo
	}
	return rep, nil
}

// SessionCriteria are the chaos-soak gates.
type SessionCriteria struct {
	// MinCompleted is the terminal-report floor (completed + verified
	// deterministic failures); it guards against a vacuous pass.
	MinCompleted int
	// MinResumes demands the replay buffer was actually exercised.
	MinResumes int
	// MinPushedFaults demands fault events actually landed mid-session.
	MinPushedFaults int
	// MinPeakConcurrent demands genuine concurrency.
	MinPeakConcurrent int
	// RequireVerified fails the run when verification was off.
	RequireVerified bool
	// RequireSLO fails the run unless the daemon served an SLO snapshot
	// with objectives enabled and zero cumulative breaches.
	RequireSLO bool
}

// Check applies the gates: zero lost, zero duplicated, zero mismatched,
// plus the activity floors. The returned error names every violation.
func (r SessionReport) Check(c SessionCriteria) error {
	var fails []string
	if r.Lost > 0 {
		fails = append(fails, fmt.Sprintf("%d sessions lost", r.Lost))
	}
	if r.Duplicated != 0 {
		fails = append(fails, fmt.Sprintf("%d duplicated session executions", r.Duplicated))
	}
	if r.Mismatched > 0 {
		fails = append(fails, fmt.Sprintf("%d reports diverged from the direct-run oracle", r.Mismatched))
	}
	if r.Completed+r.Failed < c.MinCompleted {
		fails = append(fails, fmt.Sprintf("only %d sessions completed (%d + %d deterministic failures, min %d)",
			r.Completed+r.Failed, r.Completed, r.Failed, c.MinCompleted))
	}
	if c.MinResumes > 0 && r.Resumes < c.MinResumes {
		fails = append(fails, fmt.Sprintf("only %d resumes (min %d): replay buffer unexercised", r.Resumes, c.MinResumes))
	}
	if c.MinPushedFaults > 0 && r.PushedFaults < c.MinPushedFaults {
		fails = append(fails, fmt.Sprintf("only %d pushed faults (min %d)", r.PushedFaults, c.MinPushedFaults))
	}
	if c.MinPeakConcurrent > 0 && r.PeakConcurrent < c.MinPeakConcurrent {
		fails = append(fails, fmt.Sprintf("peak concurrency %d (min %d)", r.PeakConcurrent, c.MinPeakConcurrent))
	}
	if c.RequireVerified && !r.Verified {
		fails = append(fails, "reports were not verified against the oracle")
	}
	if c.RequireSLO {
		fails = checkSLO(r.SLO, fails)
	}
	if len(fails) > 0 {
		return fmt.Errorf("loadgen: session soak gates failed: %s", joinAnd(fails))
	}
	return nil
}

// WriteJSON serializes the report, indented, with a trailing newline
// (the SESSIONS_<date>.json archive format).
func (r SessionReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadSessionReport parses a previously written session report.
func ReadSessionReport(rd io.Reader) (SessionReport, error) {
	var r SessionReport
	err := json.NewDecoder(rd).Decode(&r)
	return r, err
}
