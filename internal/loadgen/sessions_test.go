package loadgen

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bgqflow/internal/serve"
)

func newSessionDaemon(t *testing.T, cfg serve.Config) *serve.Client {
	t.Helper()
	srv := serve.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	client, err := serve.NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// TestRunSessionsVerifiedChaos is the in-process miniature of the chaos
// soak: concurrent sessions with client campaigns, forced disconnects,
// server-side fault events, and combining — all gates green, every
// report byte-verified against the direct-run oracle.
func TestRunSessionsVerifiedChaos(t *testing.T) {
	client := newSessionDaemon(t, serve.Config{BatchWindow: 50 * time.Millisecond})
	opts := SessionOptions{
		Sessions:      24,
		Seed:          7,
		PaceUS:        500,
		CampaignEvery: 5,
		BatchEvery:    1, // every non-campaign session is combinable; the
		// burst pattern supplies the same-pair runs that actually combine
		DropEvery:   4,
		FaultEvents: 2,
		Verify:      true,
		Timeout:     time.Minute,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := RunSessions(ctx, client, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(SessionCriteria{
		MinCompleted:      24,
		MinResumes:        1,
		MinPeakConcurrent: 8,
		RequireVerified:   true,
	}); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 24 || rep.Lost != 0 || rep.Mismatched != 0 || rep.Duplicated != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.FaultsPosted == 0 {
		t.Error("no server-side fault events posted")
	}
	if rep.BatchedMembers == 0 {
		t.Error("no session was combined despite a batch window and the burst pattern")
	}
	// Round-trip the archive format.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSessionReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Completed != rep.Completed || back.Seed != rep.Seed {
		t.Fatalf("archive round-trip mangled the report: %+v", back)
	}
}

// TestRunSessionsOptionValidation covers the option guards.
func TestRunSessionsOptionValidation(t *testing.T) {
	client := newSessionDaemon(t, serve.Config{})
	ctx := context.Background()
	for _, o := range []SessionOptions{
		{Sessions: -1},
		{Shape: "bogus"},
		{Pattern: "nonsense"},
		{DropEvery: -1},
	} {
		if _, err := RunSessions(ctx, client, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
}

// TestSessionCriteriaGates exercises every gate message.
func TestSessionCriteriaGates(t *testing.T) {
	rep := SessionReport{Completed: 5, Lost: 1, Mismatched: 2, Duplicated: 3}
	err := rep.Check(SessionCriteria{MinCompleted: 10, MinResumes: 1, MinPushedFaults: 1, MinPeakConcurrent: 4})
	if err == nil {
		t.Fatal("bad report passed the gates")
	}
	for _, want := range []string{"lost", "duplicated", "diverged", "completed", "resumes", "pushed faults", "concurrency"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error %q missing %q", err, want)
		}
	}
	clean := SessionReport{Completed: 10, Resumes: 2, PushedFaults: 2, PeakConcurrent: 8}
	if err := clean.Check(SessionCriteria{MinCompleted: 10, MinResumes: 1, MinPushedFaults: 1, MinPeakConcurrent: 4}); err != nil {
		t.Fatalf("clean report failed: %v", err)
	}
}
