package hacc

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal checks the record codec is total on 38-byte inputs and
// bit-stable through a marshal round trip.
func FuzzUnmarshal(f *testing.F) {
	seed := make([]byte, RecordBytes)
	f.Add(seed)
	f.Add(bytes.Repeat([]byte{0xFF}, RecordBytes))
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := Unmarshal(raw)
		if err != nil {
			if len(raw) >= RecordBytes {
				t.Fatal("long buffer rejected")
			}
			return
		}
		buf := make([]byte, RecordBytes)
		p.MarshalTo(buf)
		if !bytes.Equal(buf, raw[:RecordBytes]) {
			t.Fatal("record not bit-stable through round trip")
		}
	})
}
