// Package hacc is a miniature stand-in for the HACC (Hardware/Hybrid
// Accelerated Cosmology Code) workload the paper uses as its application
// benchmark. It evolves particles in a periodic box with a leapfrog
// integrator under a cheap self-attraction approximation and serializes
// checkpoints in HACC I/O's record layout: per particle three positions,
// three velocities and the potential as float32, a 64-bit particle ID
// and a 16-bit mask — 38 bytes per record.
//
// Physics fidelity is irrelevant to the paper (HACC I/O itself is "an
// I/O benchmark written to evaluate performance of the I/O system for
// HACC"); what matters is producing the right volume of realistically
// structured bytes at checkpoint time, which this package does.
package hacc

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// RecordBytes is the serialized size of one particle record:
// 7 float32 + uint64 + uint16.
const RecordBytes = 7*4 + 8 + 2

// Particle is one tracer particle.
type Particle struct {
	X, Y, Z    float32
	VX, VY, VZ float32
	Phi        float32
	ID         uint64
	Mask       uint16
}

// MarshalTo writes the particle's 38-byte record into buf.
func (p Particle) MarshalTo(buf []byte) {
	if len(buf) < RecordBytes {
		panic(fmt.Sprintf("hacc: buffer %d too small for a %d-byte record", len(buf), RecordBytes))
	}
	le := binary.LittleEndian
	le.PutUint32(buf[0:], math.Float32bits(p.X))
	le.PutUint32(buf[4:], math.Float32bits(p.Y))
	le.PutUint32(buf[8:], math.Float32bits(p.Z))
	le.PutUint32(buf[12:], math.Float32bits(p.VX))
	le.PutUint32(buf[16:], math.Float32bits(p.VY))
	le.PutUint32(buf[20:], math.Float32bits(p.VZ))
	le.PutUint32(buf[24:], math.Float32bits(p.Phi))
	le.PutUint64(buf[28:], p.ID)
	le.PutUint16(buf[36:], p.Mask)
}

// Unmarshal reads a particle record from buf.
func Unmarshal(buf []byte) (Particle, error) {
	if len(buf) < RecordBytes {
		return Particle{}, fmt.Errorf("hacc: record truncated at %d bytes", len(buf))
	}
	le := binary.LittleEndian
	return Particle{
		X:    math.Float32frombits(le.Uint32(buf[0:])),
		Y:    math.Float32frombits(le.Uint32(buf[4:])),
		Z:    math.Float32frombits(le.Uint32(buf[8:])),
		VX:   math.Float32frombits(le.Uint32(buf[12:])),
		VY:   math.Float32frombits(le.Uint32(buf[16:])),
		VZ:   math.Float32frombits(le.Uint32(buf[20:])),
		Phi:  math.Float32frombits(le.Uint32(buf[24:])),
		ID:   le.Uint64(buf[28:]),
		Mask: le.Uint16(buf[36:]),
	}, nil
}

// Sim is one rank's particle population.
type Sim struct {
	BoxSize   float32
	particles []Particle
	step      int
}

// NewSim creates n particles uniformly placed in a periodic box with
// small random velocities, deterministically in the seed. IDs are
// globally unique when each rank passes a distinct idBase.
func NewSim(n int, boxSize float32, idBase uint64, seed int64) (*Sim, error) {
	if n < 0 || boxSize <= 0 {
		return nil, fmt.Errorf("hacc: invalid n=%d boxSize=%g", n, boxSize)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Sim{BoxSize: boxSize, particles: make([]Particle, n)}
	for i := range s.particles {
		s.particles[i] = Particle{
			X:  rng.Float32() * boxSize,
			Y:  rng.Float32() * boxSize,
			Z:  rng.Float32() * boxSize,
			VX: (rng.Float32() - 0.5) * 0.01 * boxSize,
			VY: (rng.Float32() - 0.5) * 0.01 * boxSize,
			VZ: (rng.Float32() - 0.5) * 0.01 * boxSize,
			ID: idBase + uint64(i),
		}
	}
	return s, nil
}

// NumParticles returns the population size.
func (s *Sim) NumParticles() int { return len(s.particles) }

// Step advances the population one leapfrog step: a kick toward the box
// center scaled by 1/r (a crude bound-structure proxy) and a periodic
// drift. It also refreshes each particle's potential field.
func (s *Sim) Step(dt float32) {
	s.step++
	c := s.BoxSize / 2
	for i := range s.particles {
		p := &s.particles[i]
		dx, dy, dz := c-p.X, c-p.Y, c-p.Z
		r2 := dx*dx + dy*dy + dz*dz + 1e-3*s.BoxSize*s.BoxSize
		inv := float32(1) / r2
		p.VX += dx * inv * dt
		p.VY += dy * inv * dt
		p.VZ += dz * inv * dt
		p.X = wrap(p.X+p.VX*dt, s.BoxSize)
		p.Y = wrap(p.Y+p.VY*dt, s.BoxSize)
		p.Z = wrap(p.Z+p.VZ*dt, s.BoxSize)
		p.Phi = -inv
	}
}

func wrap(x, box float32) float32 {
	for x < 0 {
		x += box
	}
	for x >= box {
		x -= box
	}
	return x
}

// CheckpointBytes returns the serialized size of a checkpoint.
func (s *Sim) CheckpointBytes() int64 {
	return int64(len(s.particles)) * RecordBytes
}

// Checkpoint serializes every particle record to w and returns the byte
// count. Writing to io.Discard reproduces the paper's /dev/null setup.
func (s *Sim) Checkpoint(w io.Writer) (int64, error) {
	buf := make([]byte, RecordBytes)
	var total int64
	for _, p := range s.particles {
		p.MarshalTo(buf)
		n, err := w.Write(buf)
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("hacc: checkpoint write: %w", err)
		}
	}
	return total, nil
}

// ReadCheckpoint parses records back from r until EOF.
func ReadCheckpoint(r io.Reader) ([]Particle, error) {
	var out []Particle
	buf := make([]byte, RecordBytes)
	for {
		_, err := io.ReadFull(r, buf)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("hacc: checkpoint read: %w", err)
		}
		p, err := Unmarshal(buf)
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// Bounds reports whether every particle sits inside the periodic box —
// an integrator invariant.
func (s *Sim) Bounds() bool {
	for _, p := range s.particles {
		if p.X < 0 || p.X >= s.BoxSize || p.Y < 0 || p.Y >= s.BoxSize || p.Z < 0 || p.Z >= s.BoxSize {
			return false
		}
	}
	return true
}
