package hacc

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"bgqflow/internal/workload"
)

func TestRecordBytesMatchesWorkloadConstant(t *testing.T) {
	if RecordBytes != workload.HACCRecordBytes {
		t.Fatalf("hacc.RecordBytes %d != workload.HACCRecordBytes %d", RecordBytes, workload.HACCRecordBytes)
	}
	if RecordBytes != 38 {
		t.Fatalf("RecordBytes = %d, want 38", RecordBytes)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := Particle{X: 1.5, Y: -2.25, Z: 0.001, VX: 9, VY: -8, VZ: 7, Phi: -0.5, ID: 123456789012345, Mask: 0xBEEF}
	buf := make([]byte, RecordBytes)
	p.MarshalTo(buf)
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip: got %+v want %+v", got, p)
	}
}

func TestMarshalShortBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Particle{}.MarshalTo(make([]byte, 10))
}

func TestUnmarshalShortBuffer(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(-1, 1, 0, 0); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewSim(10, 0, 0, 0); err == nil {
		t.Error("zero box accepted")
	}
}

func TestNewSimDeterministic(t *testing.T) {
	a, _ := NewSim(100, 64, 0, 42)
	b, _ := NewSim(100, 64, 0, 42)
	var bufA, bufB bytes.Buffer
	if _, err := a.Checkpoint(&bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Checkpoint(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same seed produced different populations")
	}
}

func TestCheckpointSizeAndContent(t *testing.T) {
	s, _ := NewSim(321, 64, 1000, 7)
	if s.CheckpointBytes() != 321*RecordBytes {
		t.Fatalf("CheckpointBytes = %d", s.CheckpointBytes())
	}
	var buf bytes.Buffer
	n, err := s.Checkpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != s.CheckpointBytes() || int64(buf.Len()) != n {
		t.Fatalf("wrote %d bytes, want %d", n, s.CheckpointBytes())
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 321 {
		t.Fatalf("read back %d particles", len(back))
	}
	if back[0].ID != 1000 || back[320].ID != 1320 {
		t.Fatalf("IDs not preserved: %d..%d", back[0].ID, back[320].ID)
	}
}

func TestCheckpointToDiscard(t *testing.T) {
	s, _ := NewSim(1000, 64, 0, 3)
	n, err := s.Checkpoint(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000*RecordBytes {
		t.Fatalf("wrote %d", n)
	}
}

func TestStepKeepsParticlesInBox(t *testing.T) {
	s, _ := NewSim(500, 32, 0, 11)
	for i := 0; i < 50; i++ {
		s.Step(0.1)
		if !s.Bounds() {
			t.Fatalf("particle escaped the box at step %d", i)
		}
	}
	if s.NumParticles() != 500 {
		t.Fatal("particle count changed")
	}
}

func TestStepChangesState(t *testing.T) {
	s, _ := NewSim(10, 32, 0, 5)
	var before, after bytes.Buffer
	s.Checkpoint(&before)
	s.Step(0.1)
	s.Checkpoint(&after)
	if bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("Step left the population unchanged")
	}
}

// Property: marshal/unmarshal round trips for arbitrary field values.
func TestPropertyRecordRoundTrip(t *testing.T) {
	f := func(x, y, z, vx, vy, vz, phi float32, id uint64, mask uint16) bool {
		p := Particle{X: x, Y: y, Z: z, VX: vx, VY: vy, VZ: vz, Phi: phi, ID: id, Mask: mask}
		buf := make([]byte, RecordBytes)
		p.MarshalTo(buf)
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		// NaN != NaN, so compare bit patterns via re-marshal.
		buf2 := make([]byte, RecordBytes)
		got.MarshalTo(buf2)
		return bytes.Equal(buf, buf2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCheckpoint(b *testing.B) {
	s, _ := NewSim(100000, 64, 0, 1)
	b.SetBytes(s.CheckpointBytes())
	for i := 0; i < b.N; i++ {
		if _, err := s.Checkpoint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
