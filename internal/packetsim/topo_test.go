package packetsim

import (
	"testing"

	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
)

// TestNewSimTopoTorusDelegates: a torus topology takes the exact New
// path, zone router included (byte-identical-default rule).
func TestNewSimTopoTorusDelegates(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4})
	tp := topo.NewTorus(tor)
	s, err := NewSimTopo(tp, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.tor == nil {
		t.Fatal("torus delegation lost the zone-router path")
	}
	a, err := New(tor, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	idA := a.Submit(MessageSpec{Src: 0, Dst: 9, Bytes: 1 << 20})
	idB := s.Submit(MessageSpec{Src: 0, Dst: 9, Bytes: 1 << 20})
	mkA, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	mkB, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mkA != mkB || a.Result(idA) != s.Result(idB) {
		t.Fatalf("torus delegation diverged: %v vs %v", mkA, mkB)
	}
}

// TestPacketSimOnDragonfly: packets follow the topology's deterministic
// route oracle and land only on that route's links.
func TestPacketSimOnDragonfly(t *testing.T) {
	tp, err := topo.Parse("dragonfly:4x4x1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimTopo(tp, DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := torus.NodeID(1), torus.NodeID(9)
	id := s.Submit(MessageSpec{Src: src, Dst: dst, Bytes: 256 << 10})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Result(id).Done {
		t.Fatal("message never delivered")
	}
	route := map[int]bool{}
	for _, l := range tp.Route(src, dst) {
		route[l] = true
	}
	if len(route) == 0 {
		t.Fatal("oracle returned an empty route for distinct endpoints")
	}
	for l := 0; l < tp.NumLinks(); l++ {
		if b := s.LinkPayloadBytes(l); (b > 0) != route[l] {
			t.Errorf("link %d (%s): %g payload bytes, on-route=%v", l, tp.LinkString(l), b, route[l])
		} else if route[l] && b != float64(256<<10) {
			t.Errorf("link %d carried %g bytes, want full message", l, b)
		}
	}
}

// TestPacketSimMultiRailFaster: doubling the rails on every link must
// shorten the packet-level makespan of a link-bound transfer.
func TestPacketSimMultiRailFaster(t *testing.T) {
	run := func(spec string) float64 {
		tp, err := topo.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSimTopo(tp, DefaultParams(), 1)
		if err != nil {
			t.Fatal(err)
		}
		s.Submit(MessageSpec{Src: 0, Dst: 5, Bytes: 4 << 20})
		mk, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return float64(mk)
	}
	one := run("fattree:8x4x1")
	two := run("fattree:8x4x2")
	if two >= one {
		t.Fatalf("2-rail makespan %g not faster than 1-rail %g", two, one)
	}
	if ratio := one / two; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("rail speedup %g, want ~2 on a link-bound transfer", ratio)
	}
}
