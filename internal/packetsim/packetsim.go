// Package packetsim is a packet-level simulator of the BG/Q torus
// network, complementing the flow-level model in package netsim. It
// models what the paper's Section III describes at the hardware level:
// messages are split into packets (up to 512 bytes of user data plus a
// 32-byte header), the Messaging Unit injects packets into per-link
// injection FIFOs, every directed link serves its output queue at the
// wire rate, and packets advance hop by hop under dimension-ordered
// (optionally zone-randomized) routing with per-hop router latency.
//
// The packet simulator is orders of magnitude more expensive than the
// flow-level one, so the experiments use netsim; packetsim's role is
// validation — the cross-checks in this package's tests and the
// flow-vs-packet comparison in internal/experiments show the two models
// agree on throughput to within a few percent on the microbenchmark
// geometries, which is the evidence that the cheaper model is trustworthy
// at scale.
//
// Buffers are unbounded (the BG/Q's link-level flow control rarely backs
// up under the bulk-transfer patterns studied here), and arbitration at
// each output link is FIFO.
package packetsim

import (
	"fmt"

	"bgqflow/internal/routing"
	"bgqflow/internal/sim"
	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
)

// Params holds the packet-level machine constants.
type Params struct {
	// PayloadBytes is the user data per packet (BG/Q: up to 512).
	PayloadBytes int
	// HeaderBytes is the per-packet header (BG/Q: 32).
	HeaderBytes int
	// WireBandwidth is the raw per-direction link rate in bytes/second
	// applied to payload+header (BG/Q: 1.8e9 usable of 2e9 raw).
	WireBandwidth float64
	// HopLatency is the per-hop router+wire latency.
	HopLatency sim.Duration
	// SenderOverhead and ReceiverOverhead are the per-message software
	// costs, as in netsim.
	SenderOverhead   sim.Duration
	ReceiverOverhead sim.Duration
	// MaxPackets guards against accidentally enormous simulations.
	MaxPackets int
}

// DefaultParams mirrors netsim.DefaultParams at packet granularity. With
// 512-byte payloads and 32-byte headers the payload throughput of one
// link is 1.8e9 * 512/544 ≈ 1.69 GB/s — the same single-path peak the
// flow model expresses with its per-flow cap.
func DefaultParams() Params {
	return Params{
		PayloadBytes:     512,
		HeaderBytes:      32,
		WireBandwidth:    1.8e9,
		HopLatency:       40e-9,
		SenderOverhead:   15e-6,
		ReceiverOverhead: 15e-6,
		MaxPackets:       8 << 20,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.PayloadBytes < 1 || p.HeaderBytes < 0 || p.WireBandwidth <= 0 || p.MaxPackets < 1 {
		return fmt.Errorf("packetsim: invalid params %+v", p)
	}
	if p.HopLatency < 0 || p.SenderOverhead < 0 || p.ReceiverOverhead < 0 {
		return fmt.Errorf("packetsim: negative latencies")
	}
	return nil
}

// packetTime is the wire occupancy of one full packet.
func (p Params) packetTime(payload int) sim.Duration {
	return sim.Duration(float64(payload+p.HeaderBytes) / p.WireBandwidth)
}

// MessageID identifies a submitted message.
type MessageID int

// MessageSpec describes one message.
type MessageSpec struct {
	Src, Dst torus.NodeID
	Bytes    int64
	// Zone selects the routing zone; the deterministic zone is the
	// default. Zones 0 and 1 randomize the dimension order per packet,
	// which is the hardware's own way of spreading load.
	Zone routing.Zone
	// Links, when non-nil, fixes the route of every packet explicitly
	// (used for proxy legs planned in user space).
	Links []int
	// DependsOn lists messages that must be fully delivered before this
	// message is injected (store-and-forward legs).
	DependsOn []MessageID
	// ExtraDelay is charged at release, like netsim's.
	ExtraDelay sim.Duration
}

// MessageResult reports message timing.
type MessageResult struct {
	Released  sim.Time
	Injected  sim.Time // first packet handed to the MU
	Delivered sim.Time // last packet stored at the receiver
	Done      bool
}

type packet struct {
	msg   *message
	route []int // remaining links
	last  bool
}

type message struct {
	id         MessageID
	spec       MessageSpec
	unmetDeps  int
	dependents []MessageID
	remaining  int // packets in flight or queued
	res        MessageResult
	released   bool
	done       bool
}

type link struct {
	queue   []packet
	serving bool
	bytes   float64 // payload bytes carried
}

// Sim is a packet-level simulation run. Submit messages, then Run once.
type Sim struct {
	tor    *torus.Torus // nil on non-torus fabrics
	tp     topo.Topology
	p      Params
	clock  *sim.Engine
	msgs   []*message
	links  []link
	active int
	ran    bool
	seed   int64

	packetsBudget int
}

// New creates a packet simulation over tor. seed feeds the zone router.
func New(tor *torus.Torus, p Params, zoneSeed int64) (*Sim, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Sim{
		tor:           tor,
		tp:            topo.NewTorus(tor),
		p:             p,
		clock:         sim.NewEngine(),
		links:         make([]link, tor.NumTorusLinks()),
		seed:          zoneSeed,
		packetsBudget: p.MaxPackets,
	}, nil
}

// NewSimTopo creates a packet simulation over an arbitrary fabric. A
// torus topology delegates to New, keeping the zone-randomized routing
// machinery byte-identical; on other fabrics the topology's
// deterministic route oracle replaces the zone router (zone selection
// is a torus hardware construct, so MessageSpec.Zone is ignored there —
// use MessageSpec.Links to pin an explicit path).
func NewSimTopo(tp topo.Topology, p Params, zoneSeed int64) (*Sim, error) {
	if tt, ok := tp.(*topo.TorusTopo); ok {
		return New(tt.Torus(), p, zoneSeed)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Sim{
		tp:            tp,
		p:             p,
		clock:         sim.NewEngine(),
		links:         make([]link, tp.NumLinks()),
		seed:          zoneSeed,
		packetsBudget: p.MaxPackets,
	}, nil
}

// Submit registers a message; dependencies must already be submitted.
func (s *Sim) Submit(spec MessageSpec) MessageID {
	if s.ran {
		panic("packetsim: Submit after Run")
	}
	if spec.Bytes < 0 {
		panic("packetsim: negative message size")
	}
	id := MessageID(len(s.msgs))
	m := &message{id: id, spec: spec}
	for _, dep := range spec.DependsOn {
		if int(dep) < 0 || int(dep) >= len(s.msgs) {
			panic(fmt.Sprintf("packetsim: message %d depends on unknown %d", id, dep))
		}
		s.msgs[dep].dependents = append(s.msgs[dep].dependents, id)
		m.unmetDeps++
	}
	s.msgs = append(s.msgs, m)
	s.active++
	return id
}

// Run executes all messages and returns the makespan.
func (s *Sim) Run() (sim.Duration, error) {
	if s.ran {
		panic("packetsim: Run called twice")
	}
	s.ran = true
	for _, m := range s.msgs {
		if m.unmetDeps == 0 {
			s.release(m)
		}
	}
	end := s.clock.Run()
	if s.active > 0 {
		return 0, fmt.Errorf("packetsim: %d messages never delivered", s.active)
	}
	return sim.Duration(end), nil
}

// Result returns a message's timing after Run.
func (s *Sim) Result(id MessageID) MessageResult { return s.msgs[id].res }

// LinkPayloadBytes returns the payload bytes carried by a link.
func (s *Sim) LinkPayloadBytes(l int) float64 { return s.links[l].bytes }

func (s *Sim) release(m *message) {
	m.released = true
	m.res.Released = s.clock.Now()
	s.clock.After(s.p.SenderOverhead+m.spec.ExtraDelay, func(*sim.Engine) { s.inject(m) })
}

// inject splits the message into packets and enqueues them on their
// first links. Per-packet routes are computed here, so zone-randomized
// routing spreads packets of one message over several paths.
func (s *Sim) inject(m *message) {
	m.res.Injected = s.clock.Now()
	if m.spec.Bytes == 0 || (m.spec.Src == m.spec.Dst && m.spec.Links == nil) {
		s.deliver(m)
		return
	}
	nPackets := int((m.spec.Bytes + int64(s.p.PayloadBytes) - 1) / int64(s.p.PayloadBytes))
	s.packetsBudget -= nPackets
	if s.packetsBudget < 0 {
		panic(fmt.Sprintf("packetsim: packet budget exhausted (MaxPackets=%d)", s.p.MaxPackets))
	}
	var router *routing.Router
	if m.spec.Links == nil && s.tor != nil {
		r, err := routing.NewRouter(s.tor, m.spec.Zone, s.seed+int64(m.id)*7919+13)
		if err != nil {
			panic(err)
		}
		router = r
	}
	m.remaining = nPackets
	for i := 0; i < nPackets; i++ {
		var route []int
		switch {
		case m.spec.Links != nil:
			route = m.spec.Links
		case router != nil:
			route = router.Route(m.spec.Src, m.spec.Dst).Links
		default:
			route = s.tp.Route(m.spec.Src, m.spec.Dst)
		}
		if len(route) == 0 {
			// Node-local packet: deliver immediately.
			s.packetStored(m)
			continue
		}
		s.enqueue(route[0], packet{msg: m, route: route, last: i == nPackets-1})
	}
}

// enqueue puts a packet on a link's output queue and starts service if
// the link is idle.
func (s *Sim) enqueue(l int, pk packet) {
	lk := &s.links[l]
	lk.queue = append(lk.queue, pk)
	if !lk.serving {
		s.serve(l)
	}
}

// serve transmits the head packet of a link queue.
func (s *Sim) serve(l int) {
	lk := &s.links[l]
	if len(lk.queue) == 0 {
		lk.serving = false
		return
	}
	lk.serving = true
	pk := lk.queue[0]
	lk.queue = lk.queue[1:]
	payload := s.payloadOf(pk)
	lk.bytes += float64(payload)
	occupancy := s.p.packetTime(payload)
	// Multi-rail links drain their queue proportionally faster. Torus
	// links report capacity 1.0, leaving the BG/Q arithmetic untouched.
	if c := s.tp.LinkCapacity(l); c != 1 {
		occupancy = sim.Duration(float64(occupancy) / c)
	}
	s.clock.After(occupancy, func(*sim.Engine) {
		// Head-of-line done: the link can start the next packet while
		// this one finishes its hop latency.
		s.clock.After(s.p.HopLatency, func(*sim.Engine) { s.arrive(pk) })
		s.serve(l)
	})
}

// payloadOf sizes a packet: all packets are full except possibly the
// message's last.
func (s *Sim) payloadOf(pk packet) int {
	if !pk.last {
		return s.p.PayloadBytes
	}
	rem := int(pk.msg.spec.Bytes % int64(s.p.PayloadBytes))
	if rem == 0 {
		return s.p.PayloadBytes
	}
	return rem
}

// arrive advances a packet one hop.
func (s *Sim) arrive(pk packet) {
	pk.route = pk.route[1:]
	if len(pk.route) == 0 {
		s.packetStored(pk.msg)
		return
	}
	s.enqueue(pk.route[0], pk)
}

// packetStored counts a delivered packet; the message completes when all
// its packets are stored and the receiver overhead is paid.
func (s *Sim) packetStored(m *message) {
	m.remaining--
	if m.remaining > 0 {
		return
	}
	s.clock.After(s.p.ReceiverOverhead, func(*sim.Engine) { s.deliver(m) })
}

func (s *Sim) deliver(m *message) {
	if m.done {
		return
	}
	m.done = true
	m.res.Delivered = s.clock.Now()
	m.res.Done = true
	s.active--
	for _, dep := range m.dependents {
		d := s.msgs[dep]
		d.unmetDeps--
		if d.unmetDeps == 0 && !d.released {
			s.release(d)
		}
	}
}

// Throughput converts a message's bytes and duration to bytes/second.
func Throughput(bytes int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / float64(d)
}
