package packetsim

import (
	"math"
	"testing"

	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

func mira128() *torus.Torus { return torus.MustNew(torus.Shape{2, 2, 4, 4, 2}) }

func TestParamsValidate(t *testing.T) {
	bad := DefaultParams()
	bad.PayloadBytes = 0
	if bad.Validate() == nil {
		t.Error("zero payload accepted")
	}
	bad = DefaultParams()
	bad.WireBandwidth = 0
	if bad.Validate() == nil {
		t.Error("zero wire bandwidth accepted")
	}
	bad = DefaultParams()
	bad.SenderOverhead = -1
	if bad.Validate() == nil {
		t.Error("negative overhead accepted")
	}
}

func TestSingleMessageThroughputMatchesWireRate(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	p.SenderOverhead, p.ReceiverOverhead = 0, 0
	s, err := New(tor, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 8 << 20
	id := s.Submit(MessageSpec{Src: 0, Dst: torus.NodeID(tor.Size() - 1), Bytes: bytes, Zone: routing.ZoneDeterministic})
	mk, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Result(id).Done {
		t.Fatal("message not delivered")
	}
	got := Throughput(bytes, mk)
	want := p.WireBandwidth * 512 / 544 // payload share of the wire
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("single-path throughput %.3g, want ~%.3g", got, want)
	}
}

func TestTwoMessagesShareALink(t *testing.T) {
	tor := torus.MustNew(torus.Shape{8})
	p := DefaultParams()
	p.SenderOverhead, p.ReceiverOverhead = 0, 0
	s, _ := New(tor, p, 1)
	const bytes = 4 << 20
	// Both cross link 0->1.
	s.Submit(MessageSpec{Src: 0, Dst: 1, Bytes: bytes, Zone: routing.ZoneDeterministic})
	s.Submit(MessageSpec{Src: 0, Dst: 2, Bytes: bytes, Zone: routing.ZoneDeterministic})
	mk, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The shared link carries 2*bytes of payload: lower bound on time.
	minTime := 2 * bytes * 544 / 512 / p.WireBandwidth
	if float64(mk) < minTime*0.99 {
		t.Fatalf("makespan %.3g below shared-link bound %.3g", float64(mk), minTime)
	}
}

func TestDependentMessageWaits(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	s, _ := New(tor, p, 1)
	first := s.Submit(MessageSpec{Src: 0, Dst: 8, Bytes: 1 << 20, Zone: routing.ZoneDeterministic})
	second := s.Submit(MessageSpec{Src: 8, Dst: 16, Bytes: 1 << 20, Zone: routing.ZoneDeterministic,
		DependsOn: []MessageID{first}, ExtraDelay: 25e-6})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	r1, r2 := s.Result(first), s.Result(second)
	if r2.Released != r1.Delivered {
		t.Fatalf("dependent released at %v, dependency delivered at %v", r2.Released, r1.Delivered)
	}
	if r2.Injected < r2.Released+15e-6+25e-6-1e-12 {
		t.Fatal("dependent did not pay sender+forward overheads")
	}
}

func TestZeroByteMessage(t *testing.T) {
	tor := mira128()
	s, _ := New(tor, DefaultParams(), 1)
	id := s.Submit(MessageSpec{Src: 0, Dst: 5, Bytes: 0})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Result(id).Done {
		t.Fatal("zero-byte message not delivered")
	}
}

func TestExplicitRouteUsed(t *testing.T) {
	tor := torus.MustNew(torus.Shape{8})
	p := DefaultParams()
	s, _ := New(tor, p, 1)
	// Force the long way around: 0 -> 7 going + (7 hops instead of 1).
	var links []int
	for i := 0; i < 7; i++ {
		links = append(links, tor.LinkID(torus.NodeID(i), 0, torus.Plus))
	}
	s.Submit(MessageSpec{Src: 0, Dst: 7, Bytes: 1 << 20, Links: links})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, l := range links {
		if s.LinkPayloadBytes(l) < 1<<20 {
			t.Fatalf("forced link %d carried %g payload bytes", l, s.LinkPayloadBytes(l))
		}
	}
}

func TestPacketBudgetGuard(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	p.MaxPackets = 10
	s, _ := New(tor, p, 1)
	s.Submit(MessageSpec{Src: 0, Dst: 1, Bytes: 1 << 20, Zone: routing.ZoneDeterministic})
	defer func() {
		if recover() == nil {
			t.Fatal("packet budget exhaustion did not panic")
		}
	}()
	_, _ = s.Run()
}

func TestLinkPayloadConservation(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	s, _ := New(tor, p, 1)
	src, dst := torus.NodeID(0), torus.NodeID(9)
	const bytes = 3<<20 + 123 // non-multiple of packet size
	s.Submit(MessageSpec{Src: src, Dst: dst, Bytes: bytes, Zone: routing.ZoneDeterministic})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	hops := tor.HopDistance(src, dst)
	var total float64
	for l := 0; l < tor.NumTorusLinks(); l++ {
		total += s.LinkPayloadBytes(l)
	}
	want := float64(bytes) * float64(hops)
	if math.Abs(total-want)/want > 1e-9 {
		t.Fatalf("links carried %g payload bytes, want %g", total, want)
	}
}

// Zone-randomized routing spreads one message's packets across several
// paths, improving throughput between far nodes — the hardware-level
// counterpart of the paper's user-space multipath.
func TestZoneRoutingSpreadsPackets(t *testing.T) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	p := DefaultParams()
	p.SenderOverhead, p.ReceiverOverhead = 0, 0
	run := func(zone routing.Zone) float64 {
		s, _ := New(tor, p, 99)
		const bytes = 4 << 20
		src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
		dst := tor.ID(torus.Coord{2, 2, 2, 2, 1})
		s.Submit(MessageSpec{Src: src, Dst: dst, Bytes: bytes, Zone: zone})
		mk, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return Throughput(bytes, mk)
	}
	det := run(routing.ZoneDeterministic)
	unr := run(routing.ZoneUnrestricted)
	if unr <= det*1.5 {
		t.Fatalf("zone 1 (%.3g) should spread a single message well beyond zone 2 (%.3g)", unr, det)
	}
}

// Cross-validation: the packet model and the flow model agree on the
// paper's Fig. 5 scenario — direct and 4-proxy transfers — within a few
// percent.
func TestCrossValidationAgainstFlowModel(t *testing.T) {
	tor := mira128()
	const bytes = 8 << 20
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	cfg := core.DefaultProxyConfig()
	cfg.Threshold = 0
	cfg.MinProxies = 1
	cfg.MaxProxies = 4
	pl, err := core.NewPairPlanner(tor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	proxies := pl.SelectProxies(src, dst)
	if len(proxies) != 4 {
		t.Fatalf("expected 4 proxies, got %d", len(proxies))
	}

	// Flow model.
	flowP := netsim.DefaultParams()
	runFlow := func(proxied bool) float64 {
		e, err := netsim.NewEngine(netsim.NewNetwork(tor, flowP.LinkBandwidth), flowP)
		if err != nil {
			t.Fatal(err)
		}
		if !proxied {
			e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytes})
		} else {
			per := int64(bytes / 4)
			for _, pr := range proxies {
				l1 := e.Submit(netsim.FlowSpec{Src: src, Dst: pr.Proxy, Bytes: per, Links: pr.Leg1.Links})
				e.Submit(netsim.FlowSpec{Src: pr.Proxy, Dst: dst, Bytes: per, Links: pr.Leg2.Links,
					DependsOn: []netsim.FlowID{l1}, ExtraDelay: flowP.ProxyForwardOverhead})
			}
		}
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return netsim.Throughput(bytes, mk)
	}

	// Packet model.
	pktP := DefaultParams()
	runPacket := func(proxied bool) float64 {
		s, err := New(tor, pktP, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !proxied {
			s.Submit(MessageSpec{Src: src, Dst: dst, Bytes: bytes, Zone: routing.ZoneDeterministic})
		} else {
			per := int64(bytes / 4)
			for _, pr := range proxies {
				l1 := s.Submit(MessageSpec{Src: src, Dst: pr.Proxy, Bytes: per, Links: pr.Leg1.Links})
				s.Submit(MessageSpec{Src: pr.Proxy, Dst: dst, Bytes: per, Links: pr.Leg2.Links,
					DependsOn: []MessageID{l1}, ExtraDelay: pktP.SenderOverhead + 10e-6})
			}
		}
		mk, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return Throughput(bytes, mk)
	}

	for _, proxied := range []bool{false, true} {
		f := runFlow(proxied)
		pk := runPacket(proxied)
		diff := math.Abs(f-pk) / f
		if diff > 0.08 {
			t.Fatalf("proxied=%v: flow %.4g vs packet %.4g (%.1f%% apart)", proxied, f, pk, diff*100)
		}
	}
}

func BenchmarkPacketSim8MB(b *testing.B) {
	tor := mira128()
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		s, _ := New(tor, p, 1)
		s.Submit(MessageSpec{Src: 0, Dst: torus.NodeID(tor.Size() - 1), Bytes: 8 << 20, Zone: routing.ZoneDeterministic})
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
