// Package collio models the default MPI collective I/O path on the Blue
// Gene/Q — the baseline the paper compares its topology-aware aggregation
// against. It is a two-phase (ROMIO-style) collective write with the
// BG/Q-specific aggregator placement the paper criticizes:
//
//   - A fixed number of aggregators per pset (cb_nodes), chosen as the
//     lowest-ranked nodes of the pset. In rank (row-major) order those
//     nodes cluster in one corner of the pset, so they are neither
//     uniformly distributed over the torus (exchange traffic funnels into
//     a small region) nor balanced across the pset's bridge nodes (corner
//     nodes share a default bridge, so typically only one of the two 11th
//     links carries the write traffic).
//
//   - File domains are contiguous, equal byte ranges of the file,
//     assigned to aggregators in order; each rank ships every byte range
//     to the owning aggregator, regardless of topology.
//
//   - The two phases proceed in rounds of cb_buffer_size bytes per
//     aggregator. Within a round the aggregator's write begins only after
//     the whole exchange for that round arrives, rounds are separated by
//     a collective synchronization, and the buffer is reused — so
//     exchange and write time add up instead of overlapping.
//
// The planner emits the same kind of netsim flow DAG as package core, so
// the two mechanisms are compared on identical ground.
package collio

import (
	"fmt"
	"sort"

	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// Config mirrors the BG/Q MPI-IO collective-buffering knobs.
type Config struct {
	// AggregatorsPerPset is cb_nodes per pset; BG/Q default 8.
	AggregatorsPerPset int
	// BufferBytes is cb_buffer_size, the per-aggregator round size;
	// default 16 MB.
	BufferBytes int64
	// RoundSync inserts a collective synchronization between rounds
	// (the default two-phase behaviour). Disabling it is an ablation.
	RoundSync bool
}

// DefaultConfig returns the BG/Q defaults.
func DefaultConfig() Config {
	return Config{AggregatorsPerPset: 8, BufferBytes: 16 << 20, RoundSync: true}
}

// Planner plans default collective writes.
type Planner struct {
	ios  *ionet.System
	job  *mpisim.Job
	cfg  Config
	coll *mpisim.CollectiveModel

	aggNodes []torus.NodeID // fixed for the job, like cb_nodes
}

// NewPlanner selects the job's fixed aggregator set.
func NewPlanner(ios *ionet.System, job *mpisim.Job, params netsim.Params, cfg Config) (*Planner, error) {
	if cfg.AggregatorsPerPset < 1 {
		return nil, fmt.Errorf("collio: AggregatorsPerPset must be positive")
	}
	if cfg.AggregatorsPerPset > ios.Pset(0).Box.Size() {
		return nil, fmt.Errorf("collio: %d aggregators exceed pset size %d",
			cfg.AggregatorsPerPset, ios.Pset(0).Box.Size())
	}
	if cfg.BufferBytes < 1 {
		return nil, fmt.Errorf("collio: BufferBytes must be positive")
	}
	p := &Planner{ios: ios, job: job, cfg: cfg, coll: mpisim.NewCollectiveModel(job, params)}
	tor := job.Torus()
	// cb_nodes: the lowest-ranked nodes of each pset. Node IDs are
	// row-major, so "lowest-ranked in the pset" is the box node order.
	for pi := 0; pi < ios.NumPsets(); pi++ {
		nodes := ios.Pset(pi).Box.Nodes(tor)
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		p.aggNodes = append(p.aggNodes, nodes[:cfg.AggregatorsPerPset]...)
	}
	return p, nil
}

// Aggregators returns the fixed aggregator nodes, for inspection.
func (p *Planner) Aggregators() []torus.NodeID {
	return append([]torus.NodeID(nil), p.aggNodes...)
}

// Plan records what a collective write submitted.
type Plan struct {
	TotalBytes     int64
	NumAggregators int
	Rounds         int
	// Metadata prices the collective open and offset exchange.
	Metadata sim.Duration
	// Final holds the flows that land data on the I/O nodes.
	Final []netsim.FlowID
}

type pendingExchange struct {
	src   torus.NodeID
	bytes int64
}

// Plan submits the flow DAG for one collective write to the paper's
// /dev/null sink (the path ends at the I/O node).
func (p *Planner) Plan(e *netsim.Engine, data []int64) (Plan, error) {
	return p.PlanWithSink(e, data, ionet.DevNull{S: p.ios, ForwardDelay: e.Params().ProxyForwardOverhead})
}

// PlanWithSink submits the flow DAG for one collective write of data[r]
// bytes per world rank, laid out in the file in rank order, ending at an
// explicit sink. Per-rank buffers on one node are coalesced into
// per-node messages (the node is the network endpoint).
func (p *Planner) PlanWithSink(e *netsim.Engine, data []int64, sink ionet.Sink) (Plan, error) {
	if len(data) != p.job.NumRanks() {
		return Plan{}, fmt.Errorf("collio: data for %d ranks, job has %d", len(data), p.job.NumRanks())
	}
	// Per-node contiguous file ranges from the rank-order layout.
	nNodes := p.job.Torus().Size()
	nodeStart := make([]int64, nNodes)
	nodeBytes := make([]int64, nNodes)
	var total int64
	for r, d := range data {
		if d < 0 {
			return Plan{}, fmt.Errorf("collio: rank %d has negative data", r)
		}
		n := p.job.NodeOf(r)
		if nodeBytes[n] == 0 {
			nodeStart[n] = total
		}
		nodeBytes[n] += d
		total += d
	}
	plan := Plan{TotalBytes: total, NumAggregators: len(p.aggNodes)}
	world := p.job.World()
	plan.Metadata = p.coll.AllreduceTime(world, 8) + p.coll.AllgatherTime(world, 16)
	if total == 0 {
		return plan, nil
	}

	// Equal contiguous file domains; rounds of BufferBytes inside each.
	nAgg := int64(len(p.aggNodes))
	domain := (total + nAgg - 1) / nAgg
	rounds := int((domain + p.cfg.BufferBytes - 1) / p.cfg.BufferBytes)
	plan.Rounds = rounds

	// exchanges[a][k] lists the per-node shipments into aggregator a's
	// round-k window.
	exchanges := make([][][]pendingExchange, nAgg)
	for a := range exchanges {
		exchanges[a] = make([][]pendingExchange, rounds)
	}
	for n := 0; n < nNodes; n++ {
		if nodeBytes[n] == 0 {
			continue
		}
		lo, hi := nodeStart[n], nodeStart[n]+nodeBytes[n]
		for a := lo / domain; a < nAgg && a*domain < hi; a++ {
			dLo := a * domain
			dHi := minI64(dLo+domain, total)
			oLo, oHi := maxI64(lo, dLo), minI64(hi, dHi)
			if oLo >= oHi {
				continue
			}
			for k := (oLo - dLo) / p.cfg.BufferBytes; ; k++ {
				wLo := dLo + k*p.cfg.BufferBytes
				if wLo >= oHi {
					break
				}
				wHi := minI64(wLo+p.cfg.BufferBytes, dHi)
				sLo, sHi := maxI64(oLo, wLo), minI64(oHi, wHi)
				if sLo < sHi {
					exchanges[a][k] = append(exchanges[a][k],
						pendingExchange{src: torus.NodeID(n), bytes: sHi - sLo})
				}
			}
		}
	}

	// Submit round by round. Within a round, each aggregator's write
	// depends on all of its exchanges; the next round starts after the
	// collective sync (a zero-byte barrier flow) or, without RoundSync,
	// after the same aggregator's previous write (buffer reuse).
	barrierCost := p.coll.BarrierTime(world)
	prevWrite := make([]netsim.FlowID, nAgg)
	for a := range prevWrite {
		prevWrite[a] = -1
	}
	var prevBarrier netsim.FlowID = -1
	for k := 0; k < rounds; k++ {
		var roundWrites []netsim.FlowID
		for a := int64(0); a < nAgg; a++ {
			pend := exchanges[a][k]
			if len(pend) == 0 {
				continue
			}
			aggNode := p.aggNodes[a]
			var deps []netsim.FlowID
			if p.cfg.RoundSync && prevBarrier >= 0 {
				deps = []netsim.FlowID{prevBarrier}
			} else if !p.cfg.RoundSync && prevWrite[a] >= 0 {
				deps = []netsim.FlowID{prevWrite[a]}
			}
			var exIDs []netsim.FlowID
			var wbytes int64
			for _, pe := range pend {
				id := e.Submit(netsim.FlowSpec{
					Src: pe.src, Dst: aggNode, Bytes: pe.bytes,
					DependsOn: deps,
					Label:     fmt.Sprintf("ex/a%d/r%d/n%d", a, k, pe.src),
				})
				exIDs = append(exIDs, id)
				wbytes += pe.bytes
			}
			// The write leaves through the aggregator's default path at
			// the window's file offset.
			pi, bi := p.ios.DefaultPath(aggNode)
			fabric, conts := sink.WriteFlows(aggNode, pi, bi, a*domain+int64(k)*p.cfg.BufferBytes, wbytes)
			fabric.DependsOn = exIDs
			fabric.Label = fmt.Sprintf("wr/a%d/r%d", a, k)
			w := e.Submit(fabric)
			last := w
			for ci, cont := range conts {
				cont.DependsOn = []netsim.FlowID{w}
				cont.Label = fmt.Sprintf("wr/a%d/r%d/sink%d", a, k, ci)
				last = e.Submit(cont)
				plan.Final = append(plan.Final, last)
			}
			if len(conts) == 0 {
				plan.Final = append(plan.Final, w)
			}
			prevWrite[a] = w
			roundWrites = append(roundWrites, w)
		}
		if p.cfg.RoundSync && len(roundWrites) > 0 && k < rounds-1 {
			prevBarrier = e.Submit(netsim.FlowSpec{
				Src: 0, Dst: 0, Bytes: 0,
				DependsOn:  roundWrites,
				ExtraDelay: barrierCost,
				Label:      fmt.Sprintf("barrier/r%d", k),
			})
		}
	}
	return plan, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
