package collio

import (
	"testing"

	"bgqflow/internal/core"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
	"bgqflow/internal/workload"
)

type rig struct {
	tor *torus.Torus
	net *netsim.Network
	ios *ionet.System
	job *mpisim.Job
	p   netsim.Params
}

func newRig(t *testing.T, shape torus.Shape, ranksPerNode int) *rig {
	t.Helper()
	tor := torus.MustNew(shape)
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	job, err := mpisim.NewJob(tor, ranksPerNode)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{tor: tor, net: net, ios: ios, job: job, p: p}
}

func (r *rig) engine(t *testing.T) *netsim.Engine {
	t.Helper()
	e, err := netsim.NewEngine(r.net, r.p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewPlannerValidation(t *testing.T) {
	r := newRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	if _, err := NewPlanner(r.ios, r.job, r.p, Config{AggregatorsPerPset: 0, BufferBytes: 1}); err == nil {
		t.Error("zero aggregators accepted")
	}
	if _, err := NewPlanner(r.ios, r.job, r.p, Config{AggregatorsPerPset: 8, BufferBytes: 0}); err == nil {
		t.Error("zero buffer accepted")
	}
	if _, err := NewPlanner(r.ios, r.job, r.p, Config{AggregatorsPerPset: 1000, BufferBytes: 1}); err == nil {
		t.Error("oversized aggregator count accepted")
	}
}

func TestAggregatorsAreClusteredLowNodes(t *testing.T) {
	r := newRig(t, torus.Shape{4, 4, 4, 16, 2}, 16)
	pl, err := NewPlanner(r.ios, r.job, r.p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	aggs := pl.Aggregators()
	if len(aggs) != 8*r.ios.NumPsets() {
		t.Fatalf("%d aggregators, want %d", len(aggs), 8*r.ios.NumPsets())
	}
	// Per pset they are the lowest node IDs, i.e. clustered in one
	// corner — the inefficiency the paper calls out.
	for pi := 0; pi < r.ios.NumPsets(); pi++ {
		nodes := r.ios.Pset(pi).Box.Nodes(r.tor)
		min := nodes[0]
		for _, n := range nodes {
			if n < min {
				min = n
			}
		}
		found := false
		for _, a := range aggs {
			if a == min {
				found = true
			}
		}
		if !found {
			t.Fatalf("pset %d: lowest node %d not an aggregator", pi, min)
		}
	}
}

func TestPlanDeliversAllBytes(t *testing.T) {
	r := newRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	pl, _ := NewPlanner(r.ios, r.job, r.p, DefaultConfig())
	e := r.engine(t)
	data := workload.Uniform(r.job.NumRanks(), 1<<20, 5)
	plan, err := pl.Plan(e, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var written int64
	for _, id := range plan.Final {
		written += e.Result(id).Bytes
	}
	if written != plan.TotalBytes {
		t.Fatalf("wrote %d of %d bytes", written, plan.TotalBytes)
	}
	if plan.Rounds < 1 {
		t.Fatalf("rounds = %d", plan.Rounds)
	}
}

func TestRoundsScaleWithData(t *testing.T) {
	r := newRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	pl, _ := NewPlanner(r.ios, r.job, r.p, DefaultConfig())
	eSmall := r.engine(t)
	small, err := pl.Plan(eSmall, workload.Dense(r.job.NumRanks(), 16<<10))
	if err != nil {
		t.Fatal(err)
	}
	eBig := r.engine(t)
	big, err := pl.Plan(eBig, workload.Dense(r.job.NumRanks(), 4<<20))
	if err != nil {
		t.Fatal(err)
	}
	if big.Rounds <= small.Rounds {
		t.Fatalf("rounds small=%d big=%d", small.Rounds, big.Rounds)
	}
}

func TestEmptyBurst(t *testing.T) {
	r := newRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	pl, _ := NewPlanner(r.ios, r.job, r.p, DefaultConfig())
	e := r.engine(t)
	plan, err := pl.Plan(e, make([]int64, r.job.NumRanks()))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Final) != 0 {
		t.Fatal("empty burst produced flows")
	}
}

func TestNegativeDataRejected(t *testing.T) {
	r := newRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	pl, _ := NewPlanner(r.ios, r.job, r.p, DefaultConfig())
	e := r.engine(t)
	bad := make([]int64, r.job.NumRanks())
	bad[0] = -1
	if _, err := pl.Plan(e, bad); err == nil {
		t.Fatal("negative data accepted")
	}
}

func TestDefaultWritesFavorOneBridge(t *testing.T) {
	// The clustered default aggregators mostly share a single default
	// bridge per pset, leaving the other 11th link underused — one of
	// the two inefficiencies behind Fig. 10.
	r := newRig(t, torus.Shape{4, 4, 4, 16, 2}, 16)
	pl, _ := NewPlanner(r.ios, r.job, r.p, DefaultConfig())
	e := r.engine(t)
	if _, err := pl.Plan(e, workload.Dense(r.job.NumRanks(), 1<<20)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	lb := e.LinkBytes()
	var heavy, light float64
	for pi := 0; pi < r.ios.NumPsets(); pi++ {
		a := lb[r.ios.Pset(pi).Uplink(0)]
		b := lb[r.ios.Pset(pi).Uplink(1)]
		if a < b {
			a, b = b, a
		}
		heavy += a
		light += b
	}
	if heavy < 2*light {
		t.Fatalf("default bridges not imbalanced: heavy %g light %g", heavy, light)
	}
}

// The Fig. 10 core comparison at reduced scale: topology-aware dynamic
// aggregation beats default collective I/O on both sparse patterns.
func TestTopologyAwareBeatsDefault(t *testing.T) {
	r := newRig(t, torus.Shape{4, 4, 4, 16, 2}, 16)

	throughput := func(data []int64, ours bool) float64 {
		e := r.engine(t)
		var total int64
		var final []netsim.FlowID
		var meta float64
		if ours {
			pl, err := core.NewAggPlanner(r.ios, r.job, r.p, core.DefaultAggConfig())
			if err != nil {
				t.Fatal(err)
			}
			plan, err := pl.Plan(e, data)
			if err != nil {
				t.Fatal(err)
			}
			total, final, meta = plan.TotalBytes, plan.Final, float64(plan.Metadata)
		} else {
			pl, err := NewPlanner(r.ios, r.job, r.p, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			plan, err := pl.Plan(e, data)
			if err != nil {
				t.Fatal(err)
			}
			total, final, meta = plan.TotalBytes, plan.Final, float64(plan.Metadata)
		}
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		_ = final
		return float64(total) / (float64(mk) + meta)
	}

	p1 := workload.Uniform(r.job.NumRanks(), 8<<20, 21)
	gain1 := throughput(p1, true) / throughput(p1, false)
	if gain1 < 1.4 {
		t.Fatalf("Pattern 1 gain %.2fx, want >= 1.4x (paper: 2-3x)", gain1)
	}

	p2 := workload.Pattern2(r.job.NumRanks(), 8<<20, 22)
	gain2 := throughput(p2, true) / throughput(p2, false)
	if gain2 < 1.2 {
		t.Fatalf("Pattern 2 gain %.2fx, want >= 1.2x (paper: 1.5-2x)", gain2)
	}
	t.Logf("gains: pattern1 %.2fx, pattern2 %.2fx", gain1, gain2)
}

func TestFileDomainBoundaryCrossing(t *testing.T) {
	// Craft sizes so node ranges straddle domain and round-window
	// boundaries; every byte must still arrive exactly once.
	r := newRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	cfg := DefaultConfig()
	cfg.AggregatorsPerPset = 4
	cfg.BufferBytes = 300_000 // deliberately not a power of two
	pl, err := NewPlanner(r.ios, r.job, r.p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, r.job.NumRanks())
	for i := range data {
		// Irregular sizes, some zero.
		switch i % 5 {
		case 0:
			data[i] = 0
		case 1:
			data[i] = 777
		case 2:
			data[i] = 123_457
		case 3:
			data[i] = 1 << 20
		case 4:
			data[i] = 54_321
		}
	}
	e := r.engine(t)
	plan, err := pl.Plan(e, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var written int64
	for _, id := range plan.Final {
		written += e.Result(id).Bytes
	}
	if written != plan.TotalBytes {
		t.Fatalf("wrote %d of %d bytes across domain boundaries", written, plan.TotalBytes)
	}
}

func TestRoundSyncOffStillDeliversAll(t *testing.T) {
	r := newRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	cfg := DefaultConfig()
	cfg.RoundSync = false
	pl, err := NewPlanner(r.ios, r.job, r.p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := workload.Uniform(r.job.NumRanks(), 2<<20, 77)
	e := r.engine(t)
	plan, err := pl.Plan(e, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var written int64
	for _, id := range plan.Final {
		written += e.Result(id).Bytes
	}
	if written != plan.TotalBytes {
		t.Fatalf("wrote %d of %d", written, plan.TotalBytes)
	}
}

func TestSingleRankBurst(t *testing.T) {
	// One rank holds everything: the degenerate sparse extreme.
	r := newRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	pl, _ := NewPlanner(r.ios, r.job, r.p, DefaultConfig())
	data := make([]int64, r.job.NumRanks())
	data[1234] = 64 << 20
	e := r.engine(t)
	plan, err := pl.Plan(e, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var written int64
	for _, id := range plan.Final {
		written += e.Result(id).Bytes
	}
	if written != 64<<20 {
		t.Fatalf("wrote %d", written)
	}
}
