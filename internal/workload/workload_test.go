package workload

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

const eightMB = 8 << 20

func TestUniformRangeAndMean(t *testing.T) {
	data := Uniform(100000, eightMB, 1)
	var sum float64
	for _, d := range data {
		if d < 0 || d > eightMB {
			t.Fatalf("sample %d outside [0, 8MB]", d)
		}
		sum += float64(d)
	}
	mean := sum / float64(len(data))
	if math.Abs(mean-eightMB/2)/(eightMB/2) > 0.02 {
		t.Fatalf("uniform mean %.0f, want ~%d", mean, eightMB/2)
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(1000, eightMB, 42)
	b := Uniform(1000, eightMB, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := Uniform(1000, eightMB, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestUniformTotalsHalfOfDense(t *testing.T) {
	data := Uniform(50000, eightMB, 7)
	f := FractionOfDense(data, eightMB)
	if f < 0.47 || f > 0.53 {
		t.Fatalf("Pattern 1 totals %.2f of dense, want ~0.5", f)
	}
}

func TestPattern2TotalsAboutTwentyPercent(t *testing.T) {
	data := Pattern2(50000, eightMB, 7)
	f := FractionOfDense(data, eightMB)
	if f < 0.12 || f > 0.30 {
		t.Fatalf("Pattern 2 totals %.2f of dense, want ~0.2", f)
	}
}

func TestPattern2Shape(t *testing.T) {
	data := Pattern2(100000, eightMB, 3)
	h := NewHistogram(data, 16, eightMB)
	// Heavy head: the first bucket dominates.
	if h.Counts[0] < 4*h.Counts[1] {
		t.Fatalf("Pareto head not heavy: bucket0=%d bucket1=%d", h.Counts[0], h.Counts[1])
	}
	// Long tail: some ranks at or near max.
	tail := h.Counts[len(h.Counts)-1]
	if tail == 0 {
		t.Fatal("Pareto tail empty: no ranks near 8MB")
	}
	// Monotone-ish decline through the middle buckets.
	if h.Counts[2] > h.Counts[0] {
		t.Fatal("histogram not declining")
	}
}

func TestParetoValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pareto(alpha=%g, lambda=%g) accepted", bad[0], bad[1])
				}
			}()
			Pareto(10, eightMB, bad[0], bad[1], 1)
		}()
	}
}

func TestDense(t *testing.T) {
	data := Dense(100, 1<<20)
	if Total(data) != 100<<20 {
		t.Fatalf("dense total %d", Total(data))
	}
	if FractionOfDense(data, 1<<20) != 1 {
		t.Fatal("dense fraction should be 1")
	}
}

func TestHACCWindow(t *testing.T) {
	const n = 1000
	data := HACC(n, 100)
	writers := 0
	for r, d := range data {
		if d > 0 {
			writers++
			if r < 400 || r >= 500 {
				t.Fatalf("rank %d writes outside the [0.4N,0.5N) window", r)
			}
			if d != 100*HACCRecordBytes {
				t.Fatalf("rank %d writes %d bytes", r, d)
			}
		}
	}
	if writers != 100 {
		t.Fatalf("%d writers, want 100", writers)
	}
}

func TestHACCScaleMatchesPaper(t *testing.T) {
	// At 131,072 ranks the paper writes ~85 GB from the window.
	const n = 131072
	const particles = 180_000
	data := HACC(n, particles)
	total := Total(data)
	gb := float64(total) / 1e9
	if gb < 60 || gb > 110 {
		t.Fatalf("HACC burst at 131072 ranks = %.0f GB, want ~85 GB", gb)
	}
}

func TestCountZero(t *testing.T) {
	if got := CountZero([]int64{0, 1, 0, 5}); got != 2 {
		t.Fatalf("CountZero = %d", got)
	}
}

func TestHistogramMassConservation(t *testing.T) {
	data := Uniform(4321, eightMB, 9)
	h := NewHistogram(data, 32, eightMB)
	if h.TotalCount() != len(data) {
		t.Fatalf("histogram holds %d samples, want %d", h.TotalCount(), len(data))
	}
}

func TestHistogramUniformIsFlat(t *testing.T) {
	data := Uniform(160000, eightMB, 11)
	h := NewHistogram(data, 16, eightMB)
	expected := len(data) / len(h.Counts)
	for i, c := range h.Counts {
		if math.Abs(float64(c-expected)) > 0.12*float64(expected) {
			t.Fatalf("bucket %d has %d samples, expected ~%d (uniform should be flat)", i, c, expected)
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram accepted")
		}
	}()
	NewHistogram(nil, 0, eightMB)
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram([]int64{0, 1 << 20, 8 << 20}, 8, eightMB)
	if h.String() == "" {
		t.Fatal("empty rendering")
	}
}

// Property: every histogram bucket index is within range for arbitrary
// data, and mass is conserved.
func TestPropertyHistogram(t *testing.T) {
	f := func(raw []uint32, binsRaw uint8) bool {
		bins := int(binsRaw%30) + 1
		data := make([]int64, len(raw))
		for i, r := range raw {
			data[i] = int64(r)
		}
		h := NewHistogram(data, bins, eightMB)
		return h.TotalCount() == len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPattern2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Pattern2(131072, eightMB, int64(i))
	}
}

func TestBurstRoundTripAndFit(t *testing.T) {
	b := Burst{Description: "test", Sizes: []int64{0, 5, 10}}
	var buf bytes.Buffer
	if err := WriteBurst(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBurst(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Description != "test" || len(back.Sizes) != 3 {
		t.Fatalf("round trip %+v", back)
	}
	fitted := back.FitToRanks(7)
	want := []int64{0, 5, 10, 0, 5, 10, 0}
	for i := range want {
		if fitted[i] != want[i] {
			t.Fatalf("fitted %v", fitted)
		}
	}
	if got := back.FitToRanks(2); len(got) != 2 || got[1] != 5 {
		t.Fatalf("truncation %v", got)
	}
}

func TestReadBurstValidation(t *testing.T) {
	cases := []string{
		`{"sizes": []}`,
		`{"sizes": [1, -2]}`,
		`{"sizes": [1], "bogus": 1}`,
		`nope`,
	}
	for _, raw := range cases {
		if _, err := ReadBurst(bytes.NewBufferString(raw)); err == nil {
			t.Errorf("ReadBurst accepted %q", raw)
		}
	}
}
