package workload

import (
	"fmt"
	"math/rand"
)

// Pair is one (source, destination) transfer endpoint pair, by node ID.
// The pair-pattern generators below describe the *communication
// structure* of a request stream the way Uniform/Pareto/Pattern2
// describe its per-rank sizes: who talks to whom when many sparse
// point-to-point transfers are in flight at once. They drive the bgqload
// request mix and any study that needs a reproducible stream of
// endpoints.
type Pair struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// UniformPairs draws n pairs with both endpoints uniform over
// [0, nodes), src != dst — the unstructured all-to-all-ish background
// traffic case. Deterministic in seed.
func UniformPairs(n, nodes int, seed int64) []Pair {
	if n < 0 || nodes < 2 {
		panic(fmt.Sprintf("workload: UniformPairs(n=%d, nodes=%d)", n, nodes))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pair, n)
	for i := range out {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes - 1)
		if dst >= src {
			dst++
		}
		out[i] = Pair{src, dst}
	}
	return out
}

// NeighborPairs draws n pairs whose destination is the node ID adjacent
// to the source (src±1 mod nodes, direction chosen per draw) — the
// nearest-neighbor halo-exchange shape where transfers are short and
// plentiful. Deterministic in seed.
func NeighborPairs(n, nodes int, seed int64) []Pair {
	if n < 0 || nodes < 2 {
		panic(fmt.Sprintf("workload: NeighborPairs(n=%d, nodes=%d)", n, nodes))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pair, n)
	for i := range out {
		src := rng.Intn(nodes)
		step := 1
		if rng.Intn(2) == 1 {
			step = nodes - 1 // -1 mod nodes
		}
		out[i] = Pair{src, (src + step) % nodes}
	}
	return out
}

// ShiftPairs draws n pairs with dst = (src + shift) mod nodes for a
// fixed shift — the ring/transpose permutation traffic of FFTs and
// redistributions, where every pair is distinct but the displacement is
// shared. shift is normalized into [1, nodes). Deterministic in seed.
func ShiftPairs(n, nodes, shift int, seed int64) []Pair {
	if n < 0 || nodes < 2 {
		panic(fmt.Sprintf("workload: ShiftPairs(n=%d, nodes=%d)", n, nodes))
	}
	shift %= nodes
	if shift < 0 {
		shift += nodes
	}
	if shift == 0 {
		shift = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pair, n)
	for i := range out {
		src := rng.Intn(nodes)
		out[i] = Pair{src, (src + shift) % nodes}
	}
	return out
}

// SparsePairHotFraction is the share of SparsePairs draws taken from the
// hot set; the rest are uniform background pairs.
const SparsePairHotFraction = 0.9

// SparsePairs draws n pairs from a sparse skewed pattern: a seeded hot
// set of `hot` distinct pairs carries SparsePairHotFraction of the
// draws (earlier hot pairs weighted harder, Zipf-style s=1), and the
// remainder is uniform background. This is the Pattern-2 analogue for
// endpoints: a few (src, dst) couples dominate the stream — exactly the
// case request coalescing and plan caching exploit. Deterministic in
// seed.
func SparsePairs(n, nodes, hot int, seed int64) []Pair {
	if n < 0 || nodes < 2 || hot < 1 {
		panic(fmt.Sprintf("workload: SparsePairs(n=%d, nodes=%d, hot=%d)", n, nodes, hot))
	}
	rng := rand.New(rand.NewSource(seed))
	// Build the hot set: distinct pairs, capped by the number of
	// distinct ordered pairs available.
	if max := nodes * (nodes - 1); hot > max {
		hot = max
	}
	hotSet := make([]Pair, 0, hot)
	seen := make(map[Pair]struct{}, hot)
	for len(hotSet) < hot {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes - 1)
		if dst >= src {
			dst++
		}
		p := Pair{src, dst}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		hotSet = append(hotSet, p)
	}
	// Zipf(s=1) cumulative weights over the hot set: weight(i) = 1/(i+1).
	cum := make([]float64, len(hotSet))
	total := 0.0
	for i := range cum {
		total += 1 / float64(i+1)
		cum[i] = total
	}
	out := make([]Pair, n)
	for i := range out {
		if rng.Float64() < SparsePairHotFraction {
			x := rng.Float64() * total
			k := 0
			for k < len(cum)-1 && cum[k] < x {
				k++
			}
			out[i] = hotSet[k]
			continue
		}
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes - 1)
		if dst >= src {
			dst++
		}
		out[i] = Pair{src, dst}
	}
	return out
}

// BurstPairs draws n pairs as runs of repeated identical couples: a
// uniform (src, dst) pair arrives 1..burst times in a row before the
// stream moves on to a fresh pair — the arrival shape of a rank
// flushing many small messages to one peer back to back. This is the
// pattern Träff-style message combining (the session batch window)
// exploits: consecutive same-pair transfers can ride one combined
// session. Deterministic in seed.
func BurstPairs(n, nodes, burst int, seed int64) []Pair {
	if n < 0 || nodes < 2 || burst < 1 {
		panic(fmt.Sprintf("workload: BurstPairs(n=%d, nodes=%d, burst=%d)", n, nodes, burst))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pair, 0, n)
	for len(out) < n {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes - 1)
		if dst >= src {
			dst++
		}
		run := 1 + rng.Intn(burst)
		for j := 0; j < run && len(out) < n; j++ {
			out = append(out, Pair{src, dst})
		}
	}
	return out
}

// PairPatterns lists the pattern names Pairs accepts, in canonical
// order. bgqload's -patterns flag and the serve docs reference it.
var PairPatterns = []string{"uniform", "neighbor", "shift", "sparse", "burst"}

// Pairs dispatches by pattern name: "uniform", "neighbor", "shift"
// (shift = nodes/2), "sparse" (hot = 8), or "burst" (burst = 6).
// Unknown names return an error rather than panicking so CLI layers can
// report them.
func Pairs(pattern string, n, nodes int, seed int64) ([]Pair, error) {
	switch pattern {
	case "uniform":
		return UniformPairs(n, nodes, seed), nil
	case "neighbor":
		return NeighborPairs(n, nodes, seed), nil
	case "shift":
		return ShiftPairs(n, nodes, nodes/2, seed), nil
	case "sparse":
		return SparsePairs(n, nodes, 8, seed), nil
	case "burst":
		return BurstPairs(n, nodes, 6, seed), nil
	}
	return nil, fmt.Errorf("workload: unknown pair pattern %q (known: uniform, neighbor, shift, sparse, burst)", pattern)
}

// DistinctPairs counts the distinct (src, dst) pairs in a stream — the
// working-set size a plan cache sees.
func DistinctPairs(pairs []Pair) int {
	seen := make(map[Pair]struct{}, len(pairs))
	for _, p := range pairs {
		seen[p] = struct{}{}
	}
	return len(seen)
}
