// Package workload generates the sparse per-rank data-size patterns the
// paper evaluates, plus the HACC-like application write burst.
//
// Pattern 1 ("uniform"): every rank draws a size uniformly from [0, max];
// the burst totals about 50% of the dense pattern (every rank writing
// max). Seen when different regions are analyzed at different
// resolutions.
//
// Pattern 2 ("Pareto"): many ranks have zero or tiny sizes and a few have
// sizes at or near max; the burst totals about 20% of dense. Seen when a
// region of interest dominates the output.
//
// All generators are deterministic in their seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Uniform draws n per-rank sizes uniformly from [0, max]. The expected
// total is n*max/2 — the paper's "about 50% of the dense data".
func Uniform(n int, max int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(max + 1)
	}
	return out
}

// Pareto draws n per-rank sizes from a Lomax (Pareto type II) law with
// shape alpha and scale lambda, truncated to [0, max]; draws above max
// clip to max, producing the paper's "few ranks with 8 MB or close".
// With alpha=1.5 and lambda=max/10 the expected total is roughly 20% of
// dense, matching Pattern 2.
func Pareto(n int, max int64, alpha, lambda float64, seed int64) []int64 {
	if alpha <= 0 || lambda <= 0 {
		panic(fmt.Sprintf("workload: invalid Pareto parameters alpha=%g lambda=%g", alpha, lambda))
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		u := rng.Float64()
		x := lambda * (math.Pow(1-u, -1/alpha) - 1) // inverse CDF of Lomax
		if x > float64(max) {
			x = float64(max)
		}
		out[i] = int64(x)
	}
	return out
}

// Pattern 2 operating point: a zero-inflated Lomax. The paper's Fig. 9
// shows many ranks with exactly 0 bytes, a declining body, and a few
// ranks at or near 8 MB; with these constants the burst totals ~20% of
// dense.
const (
	DefaultParetoAlpha          = 1.5
	DefaultParetoLambdaFraction = 0.275 // lambda = max * fraction
	DefaultZeroFraction         = 0.35
)

// Pattern2 draws Pattern 2: with probability DefaultZeroFraction a rank
// has no data at all; otherwise its size is Lomax-distributed, clipped to
// max.
func Pattern2(n int, max int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	lambda := float64(max) * DefaultParetoLambdaFraction
	out := make([]int64, n)
	for i := range out {
		if rng.Float64() < DefaultZeroFraction {
			continue
		}
		u := rng.Float64()
		x := lambda * (math.Pow(1-u, -1/DefaultParetoAlpha) - 1)
		if x > float64(max) {
			x = float64(max)
		}
		out[i] = int64(x)
	}
	return out
}

// Dense gives every rank exactly size bytes.
func Dense(n int, size int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = size
	}
	return out
}

// HACCRecordBytes is the size of one HACC particle record: three
// positions, three velocities, potential (float32 each), a 64-bit
// particle ID and a 16-bit mask.
const HACCRecordBytes = 38

// HACC builds the application benchmark burst: the ranks in the window
// [4N/10, 5N/10) each write particlesPerRank records; every other rank
// writes nothing. This is the "write 10% of the generated data from the
// middle decile of ranks" setup of the paper's Section VI.
func HACC(nRanks int, particlesPerRank int64) []int64 {
	out := make([]int64, nRanks)
	lo := 4 * nRanks / 10
	hi := 5 * nRanks / 10
	for r := lo; r < hi; r++ {
		out[r] = particlesPerRank * HACCRecordBytes
	}
	return out
}

// Total sums a burst.
func Total(data []int64) int64 {
	var t int64
	for _, d := range data {
		t += d
	}
	return t
}

// FractionOfDense reports the burst total as a fraction of every rank
// writing max.
func FractionOfDense(data []int64, max int64) float64 {
	if len(data) == 0 || max == 0 {
		return 0
	}
	return float64(Total(data)) / (float64(max) * float64(len(data)))
}

// CountZero reports how many ranks have no data.
func CountZero(data []int64) int {
	n := 0
	for _, d := range data {
		if d == 0 {
			n++
		}
	}
	return n
}

// Histogram bins per-rank sizes over [0, max] — the content of the
// paper's Figs. 8 and 9.
type Histogram struct {
	Max    int64
	Counts []int
}

// NewHistogram bins data into bins equal-width buckets over [0, max].
// Values above max land in the last bucket.
func NewHistogram(data []int64, bins int, max int64) Histogram {
	if bins < 1 || max < 1 {
		panic(fmt.Sprintf("workload: invalid histogram bins=%d max=%d", bins, max))
	}
	h := Histogram{Max: max, Counts: make([]int, bins)}
	for _, d := range data {
		b := int(d * int64(bins) / (max + 1))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h
}

// BinWidth returns the bucket width in bytes.
func (h Histogram) BinWidth() int64 { return (h.Max + 1) / int64(len(h.Counts)) }

// TotalCount returns the number of binned samples.
func (h Histogram) TotalCount() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// String renders the histogram as an ASCII bar chart, one row per bucket.
func (h Histogram) String() string {
	var b strings.Builder
	maxCount := 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	width := h.BinWidth()
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*50/maxCount)
		fmt.Fprintf(&b, "%6.2f..%-6.2f MB %6d %s\n",
			float64(int64(i)*width)/(1<<20), float64(int64(i+1)*width)/(1<<20), c, bar)
	}
	return b.String()
}
