package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// Burst is the serialized form of a write burst: per-rank byte counts.
// It lets users replay recorded application bursts through the scenario
// runner instead of the synthetic patterns.
type Burst struct {
	// Description is free-form provenance (application, timestep, ...).
	Description string `json:"description,omitempty"`
	// Sizes is bytes per world rank.
	Sizes []int64 `json:"sizes"`
}

// WriteBurst serializes a burst as JSON.
func WriteBurst(w io.Writer, b Burst) error {
	enc := json.NewEncoder(w)
	return enc.Encode(b)
}

// ReadBurst parses a burst and validates it.
func ReadBurst(r io.Reader) (Burst, error) {
	var b Burst
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return b, fmt.Errorf("workload: parse burst: %w", err)
	}
	if len(b.Sizes) == 0 {
		return b, fmt.Errorf("workload: burst has no sizes")
	}
	for i, s := range b.Sizes {
		if s < 0 {
			return b, fmt.Errorf("workload: rank %d has negative size %d", i, s)
		}
	}
	return b, nil
}

// FitToRanks adapts a recorded burst to a job with n ranks: truncating a
// longer recording, or tiling a shorter one (the usual ways a trace from
// one scale is replayed at another). The result is a fresh slice.
func (b Burst) FitToRanks(n int) []int64 {
	if n < 0 {
		panic(fmt.Sprintf("workload: FitToRanks(%d)", n))
	}
	out := make([]int64, n)
	if len(b.Sizes) == 0 {
		return out
	}
	for i := range out {
		out[i] = b.Sizes[i%len(b.Sizes)]
	}
	return out
}
