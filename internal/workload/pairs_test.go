package workload

import (
	"reflect"
	"sort"
	"testing"
)

func TestUniformPairsDeterministicAndValid(t *testing.T) {
	a := UniformPairs(500, 128, 7)
	b := UniformPairs(500, 128, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different pair streams")
	}
	c := UniformPairs(500, 128, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical pair streams")
	}
	for _, p := range a {
		if p.Src < 0 || p.Src >= 128 || p.Dst < 0 || p.Dst >= 128 {
			t.Fatalf("pair %+v outside [0,128)", p)
		}
		if p.Src == p.Dst {
			t.Fatalf("self pair %+v", p)
		}
	}
	// Unstructured: the working set should be large.
	if d := DistinctPairs(a); d < 400 {
		t.Fatalf("uniform pairs working set %d, want near 500", d)
	}
}

func TestNeighborPairsAdjacent(t *testing.T) {
	pairs := NeighborPairs(300, 64, 3)
	for _, p := range pairs {
		fwd := (p.Src + 1) % 64
		back := (p.Src + 63) % 64
		if p.Dst != fwd && p.Dst != back {
			t.Fatalf("pair %+v is not a ±1 neighbor", p)
		}
	}
	if !reflect.DeepEqual(pairs, NeighborPairs(300, 64, 3)) {
		t.Fatal("not deterministic")
	}
}

func TestShiftPairsFixedDisplacement(t *testing.T) {
	pairs := ShiftPairs(200, 128, 64, 5)
	for _, p := range pairs {
		if p.Dst != (p.Src+64)%128 {
			t.Fatalf("pair %+v does not respect shift 64", p)
		}
	}
	// Zero and negative shifts normalize to a valid non-identity shift.
	for _, p := range ShiftPairs(50, 16, 0, 1) {
		if p.Src == p.Dst {
			t.Fatalf("zero shift produced self pair %+v", p)
		}
	}
	for _, p := range ShiftPairs(50, 16, -3, 1) {
		if p.Dst != (p.Src+13)%16 {
			t.Fatalf("negative shift not normalized: %+v", p)
		}
	}
}

func TestSparsePairsSkew(t *testing.T) {
	pairs := SparsePairs(2000, 128, 8, 11)
	if !reflect.DeepEqual(pairs, SparsePairs(2000, 128, 8, 11)) {
		t.Fatal("not deterministic")
	}
	counts := make(map[Pair]int)
	for _, p := range pairs {
		if p.Src == p.Dst {
			t.Fatalf("self pair %+v", p)
		}
		counts[p]++
	}
	// The hot set dominates: the top-8 pairs should carry most of the
	// stream (hot fraction 0.9 split Zipf-style over 8 pairs).
	var all []int
	for _, n := range counts {
		all = append(all, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	top := 0
	for i := 0; i < 8 && i < len(all); i++ {
		top += all[i]
	}
	if frac := float64(top) / float64(len(pairs)); frac < 0.75 {
		t.Fatalf("top-8 pairs carry %.2f of the stream, want >= 0.75", frac)
	}
	// Background draws keep the tail non-empty.
	if len(counts) <= 8 {
		t.Fatalf("no background pairs at all: %d distinct", len(counts))
	}
}

func TestSparsePairsHotCap(t *testing.T) {
	// hot larger than the number of distinct ordered pairs must not hang.
	pairs := SparsePairs(100, 3, 100, 2)
	if len(pairs) != 100 {
		t.Fatalf("got %d pairs", len(pairs))
	}
}

func TestBurstPairsRuns(t *testing.T) {
	pairs := BurstPairs(400, 128, 6, 9)
	if len(pairs) != 400 {
		t.Fatalf("got %d pairs, want 400", len(pairs))
	}
	if !reflect.DeepEqual(pairs, BurstPairs(400, 128, 6, 9)) {
		t.Fatal("not deterministic")
	}
	runs := 0
	maxRun := 0
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j] == pairs[i] {
			j++
		}
		if run := j - i; run > maxRun {
			maxRun = run
		}
		runs++
		i = j
	}
	// Bursty by construction: far fewer runs than draws, and at least one
	// genuine multi-arrival run. (Adjacent runs can collide on the same
	// pair, so maxRun may exceed the nominal cap; that only makes the
	// stream burstier.)
	if runs >= 400 {
		t.Fatalf("%d runs over 400 draws: stream is not bursty", runs)
	}
	if maxRun < 2 {
		t.Fatal("no run longer than 1: combining has nothing to combine")
	}
	for _, p := range pairs {
		if p.Src == p.Dst || p.Src < 0 || p.Src >= 128 || p.Dst < 0 || p.Dst >= 128 {
			t.Fatalf("invalid pair %+v", p)
		}
	}
	// burst=1 degenerates to uniform singles and must not hang.
	if got := BurstPairs(50, 16, 1, 3); len(got) != 50 {
		t.Fatalf("burst=1: got %d pairs", len(got))
	}
}

func TestPairsDispatch(t *testing.T) {
	for _, name := range PairPatterns {
		ps, err := Pairs(name, 10, 32, 1)
		if err != nil || len(ps) != 10 {
			t.Fatalf("Pairs(%q): %v, %d pairs", name, err, len(ps))
		}
	}
	if _, err := Pairs("nonsense", 10, 32, 1); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}
