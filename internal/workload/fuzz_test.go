package workload

import (
	"bytes"
	"testing"
)

// FuzzReadBurst checks the burst parser never panics and accepts only
// well-formed recordings.
func FuzzReadBurst(f *testing.F) {
	f.Add([]byte(`{"sizes": [1, 2, 3]}`))
	f.Add([]byte(`{"description": "x", "sizes": [0]}`))
	f.Add([]byte(`{"sizes": []}`))
	f.Add([]byte(`{"sizes": [-1]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, raw []byte) {
		b, err := ReadBurst(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if len(b.Sizes) == 0 {
			t.Fatal("accepted burst with no sizes")
		}
		for _, s := range b.Sizes {
			if s < 0 {
				t.Fatal("accepted negative size")
			}
		}
		// FitToRanks must be total on accepted bursts.
		if got := b.FitToRanks(7); len(got) != 7 {
			t.Fatal("FitToRanks wrong length")
		}
	})
}
