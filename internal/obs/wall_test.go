package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace IDs %q %q, want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two trace IDs collided: %q", a)
	}
}

func TestWallRecorderSpansAndInstants(t *testing.T) {
	clk := newFakeClock()
	r := NewWallRecorder(64)
	r.SetClock(clk.now)

	id := r.SpanBegin("t1", "bgqd/plan", "pair")
	if id == 0 {
		t.Fatal("SpanBegin returned 0 on a live recorder")
	}
	clk.advance(3 * time.Millisecond)
	r.Instant("t1", "bgqd/plan", "cache-miss")
	clk.advance(2 * time.Millisecond)
	r.SpanEnd(id)
	r.SpanEnd(id) // double-close is ignored

	ab := r.SpanBegin("t2", "bgqd/sessions", "session x")
	clk.advance(time.Millisecond)
	r.SpanAbort(ab)
	r.InstantV("t2", "bgqd/sessions", "replan", 0.25)

	if got := r.OpenSpans(); got != 0 {
		t.Fatalf("OpenSpans = %d, want 0", got)
	}
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v, want 2", spans)
	}
	if spans[0].Trace != "t1" || spans[0].Name != "pair" ||
		spans[0].End.Sub(spans[0].Begin) != 5*time.Millisecond {
		t.Fatalf("span[0] = %+v", spans[0])
	}
	if !spans[1].Aborted {
		t.Fatalf("span[1] = %+v, want aborted", spans[1])
	}
}

func TestWallRingEvicts(t *testing.T) {
	r := NewWallRecorder(64)
	base := time.Now()
	for i := 0; i < 100; i++ {
		r.Span("t", "k", "s", base.Add(time.Duration(i)*time.Millisecond),
			base.Add(time.Duration(i+1)*time.Millisecond))
	}
	if got := len(r.Spans()); got != 64 {
		t.Fatalf("retained %d spans, want 64 (ring capacity)", got)
	}
	if got := r.Dropped(); got != 36 {
		t.Fatalf("Dropped = %d, want 36", got)
	}
	// Oldest-first: the survivor set is the most recent 64.
	first := r.Spans()[0]
	if first.Begin.Sub(base) != 36*time.Millisecond {
		t.Fatalf("oldest survivor begins at %v, want 36ms", first.Begin.Sub(base))
	}
}

// decodeTrace parses an exported Chrome trace for assertions.
func decodeTrace(t *testing.T, raw []byte) chromeTrace {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	return tr
}

func TestWallChromeTraceExport(t *testing.T) {
	clk := newFakeClock()
	r := NewWallRecorder(64)
	r.SetClock(clk.now)

	id := r.SpanBegin("trace-a", "bgqd/plan", "pair")
	clk.advance(5 * time.Millisecond)
	r.SpanEnd(id)
	r.InstantV("trace-a", "bgqd/sessions", "fault pushed", 0.5)
	open := r.SpanBegin("trace-b", "bgqd/sessions", "session y")
	_ = open // left open deliberately
	clk.advance(time.Millisecond)

	// Sim plane: a private engine recorder merged in under trace-a.
	rec := NewRecorder()
	rec.Span("engine/s1", "wave 0", 0, 0.0002)
	rec.Instant("engine/s1", "replan", 0.0001)
	r.MergeSim("trace-a", rec)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, buf.Bytes())
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}

	var (
		procs          = map[int]string{}
		wallSpan       *chromeEvent
		openSpan       *chromeEvent
		simSpan        *chromeEvent
		wallInstant    *chromeEvent
		simInstantSeen bool
	)
	for i := range tr.TraceEvents {
		ev := tr.TraceEvents[i]
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procs[ev.Pid], _ = ev.Args["name"].(string)
		case ev.Ph == "X" && ev.Pid == 1 && ev.Name == "pair":
			wallSpan = &tr.TraceEvents[i]
		case ev.Ph == "X" && ev.Pid == 1 && ev.Name == "session y":
			openSpan = &tr.TraceEvents[i]
		case ev.Ph == "X" && ev.Pid == 2:
			simSpan = &tr.TraceEvents[i]
		case ev.Ph == "i" && ev.Pid == 1:
			wallInstant = &tr.TraceEvents[i]
		case ev.Ph == "i" && ev.Pid == 2:
			simInstantSeen = true
		}
	}
	if procs[1] != "bgqd (wall clock)" || procs[2] != "engine (sim clock)" {
		t.Fatalf("process names = %v", procs)
	}
	if wallSpan == nil || wallSpan.Dur != 5000 || wallSpan.Args["trace"] != "trace-a" {
		t.Fatalf("wall span = %+v, want 5000µs tagged trace-a", wallSpan)
	}
	if openSpan == nil || openSpan.Args["open"] != true {
		t.Fatalf("open span = %+v, want args.open=true", openSpan)
	}
	if simSpan == nil || simSpan.Dur != 200 || simSpan.Args["trace"] != "trace-a" {
		t.Fatalf("sim span = %+v, want 200µs virtual tagged trace-a", simSpan)
	}
	if wallInstant == nil || wallInstant.Args["vtime"] != 0.5 {
		t.Fatalf("wall instant = %+v, want args.vtime=0.5", wallInstant)
	}
	if !simInstantSeen {
		t.Fatal("merged sim instant missing from pid 2")
	}
}

// Overlapping wall spans on one track must spread across lanes, same as
// the sim exporter.
func TestWallLaneAssignment(t *testing.T) {
	clk := newFakeClock()
	r := NewWallRecorder(64)
	r.SetClock(clk.now)
	base := clk.now()
	r.Span("t", "bgqd/plan", "a", base, base.Add(10*time.Millisecond))
	r.Span("t", "bgqd/plan", "b", base.Add(2*time.Millisecond), base.Add(4*time.Millisecond))
	r.Span("t", "bgqd/plan", "c", base.Add(11*time.Millisecond), base.Add(12*time.Millisecond))

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, buf.Bytes())
	tids := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.Name] = ev.Tid
		}
	}
	if tids["a"] == tids["b"] {
		t.Fatalf("overlapping spans share tid %d", tids["a"])
	}
	if tids["a"] != tids["c"] {
		t.Fatalf("non-overlapping span c should reuse lane 0: %v", tids)
	}
}

func TestWallNilRecorderExportErrors(t *testing.T) {
	var r *WallRecorder
	if err := r.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil recorder export must error")
	}
	if r.Spans() != nil || r.SimSpans() != nil || r.OpenSpans() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder accessors must return empties")
	}
}

func TestMergeChromeTraces(t *testing.T) {
	mk := func(proc string) []byte {
		r := NewWallRecorder(64)
		id := r.SpanBegin("t", proc, proc)
		r.SpanEnd(id)
		var buf bytes.Buffer
		if err := r.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	client, server := mk("client"), mk("server")

	var out bytes.Buffer
	if err := MergeChromeTraces(&out, client, server); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, out.Bytes())
	pids := map[int]bool{}
	names := 0
	for _, ev := range tr.TraceEvents {
		pids[ev.Pid] = true
		if ev.Ph == "X" {
			names++
		}
	}
	// First input keeps pid 1; second is offset past it — no collision.
	if !pids[1] || !pids[2] || names != 2 {
		t.Fatalf("merged pids = %v, spans = %d", pids, names)
	}
	if err := MergeChromeTraces(&out, []byte("{not json")); err == nil ||
		!strings.Contains(err.Error(), "merge trace 0") {
		t.Fatalf("bad input error = %v", err)
	}
}

// The disabled trace plane — a nil *WallRecorder — must cost zero
// allocations on the hot path. This is the tracing analogue of the PR 3
// nil-sink discipline.
func TestWallDisabledZeroAlloc(t *testing.T) {
	var r *WallRecorder
	allocs := testing.AllocsPerRun(1000, func() {
		id := r.SpanBegin("t", "bgqd/plan", "pair")
		r.Instant("t", "bgqd/plan", "hit")
		r.InstantV("t", "bgqd/plan", "replan", 0.1)
		r.SpanEnd(id)
		r.SpanAbort(id)
	})
	if allocs != 0 {
		t.Fatalf("disabled wall recorder allocates %v per op, want 0", allocs)
	}
}

// Paired benchmarks: the cost of the trace plane when on, and proof it
// vanishes when off.
//
//	go test ./internal/obs -bench 'WallSpan' -benchmem
func BenchmarkWallSpanDisabled(b *testing.B) {
	var r *WallRecorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := r.SpanBegin("t", "bgqd/plan", "pair")
		r.SpanEnd(id)
	}
}

func BenchmarkWallSpanEnabled(b *testing.B) {
	r := NewWallRecorder(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := r.SpanBegin("t", "bgqd/plan", "pair")
		r.SpanEnd(id)
	}
}

func BenchmarkWindowHistogramObserve(b *testing.B) {
	h := NewWindowHistogram(30 * time.Second)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 100))
	}
}
