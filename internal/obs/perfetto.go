package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"bgqflow/internal/sim"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the legacy format ui.perfetto.dev and chrome://tracing both load.
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const tracePid = 1

func usec(t sim.Time) float64 { return float64(t) * 1e6 }

// WriteChromeTrace exports the recorder's spans, instants, and counter
// samples as Chrome trace-event JSON. Each track becomes a named thread;
// overlapping spans on one track are spread across lanes (extra threads
// named "track #n") so concurrent flows render side by side instead of
// nesting incorrectly. Aborted spans carry an args marker.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	instants := r.Instants()
	counters := r.CounterSamples()

	// Collect track names: spans and instants share the thread table.
	trackSet := make(map[string]struct{})
	for _, s := range spans {
		trackSet[s.Track] = struct{}{}
	}
	for _, i := range instants {
		trackSet[i.Track] = struct{}{}
	}
	tracks := make([]string, 0, len(trackSet))
	for t := range trackSet {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)

	var events []chromeEvent
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "bgqflow"},
	})

	// Lane assignment: greedy first-fit over spans sorted by begin time
	// (Spans already sorts). laneEnd[track][lane] is the lane's last end.
	nextTid := 1
	trackTid := make(map[string]int, len(tracks)) // lane-0 tid per track
	laneEnd := make(map[string][]sim.Time)
	laneTid := make(map[string][]int)
	threadName := func(track string, lane int) chromeEvent {
		name := track
		if lane > 0 {
			name = track + " #" + strconv.Itoa(lane)
		}
		return chromeEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: laneTid[track][lane],
			Args: map[string]any{"name": name},
		}
	}
	openLane := func(track string) int {
		lane := len(laneTid[track])
		laneTid[track] = append(laneTid[track], nextTid)
		laneEnd[track] = append(laneEnd[track], 0)
		if lane == 0 {
			trackTid[track] = nextTid
		}
		nextTid++
		return lane
	}
	for _, track := range tracks {
		openLane(track)
		events = append(events, threadName(track, 0))
	}

	for _, s := range spans {
		lane := -1
		for i, end := range laneEnd[s.Track] {
			if end <= s.Begin {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = openLane(s.Track)
			events = append(events, threadName(s.Track, lane))
		}
		laneEnd[s.Track][lane] = s.End
		ev := chromeEvent{
			Name: s.Name, Ph: "X", Ts: usec(s.Begin), Dur: usec(s.End - s.Begin),
			Pid: tracePid, Tid: laneTid[s.Track][lane],
		}
		if s.Aborted {
			ev.Args = map[string]any{"aborted": true}
		}
		events = append(events, ev)
	}

	for _, i := range instants {
		events = append(events, chromeEvent{
			Name: i.Name, Ph: "i", Ts: usec(i.At),
			Pid: tracePid, Tid: trackTid[i.Track], S: "t",
		})
	}

	// Counter tracks are keyed by (pid, name); no thread table needed.
	for _, c := range counters {
		events = append(events, chromeEvent{
			Name: c.Track, Ph: "C", Ts: usec(c.At), Pid: tracePid,
			Args: map[string]any{"value": c.Value},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
