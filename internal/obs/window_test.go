package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestWindowCounterRollsOff(t *testing.T) {
	clk := newFakeClock()
	c := NewWindowCounter(16 * time.Second) // slot = 1s
	c.SetClock(clk.now)

	c.Add(10)
	clk.advance(8 * time.Second)
	c.Add(5)
	if got := c.Total(); got != 15 {
		t.Fatalf("Total = %d, want 15 (both bursts in window)", got)
	}
	// Advance past the first burst's slot but not the second's.
	clk.advance(10 * time.Second)
	if got := c.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5 (first burst rolled off)", got)
	}
	clk.advance(16 * time.Second)
	if got := c.Total(); got != 0 {
		t.Fatalf("Total = %d, want 0 (everything rolled off)", got)
	}
	// Rate uses the window length.
	c.Add(32)
	if got := c.Rate(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("Rate = %g, want 2/s (32 over 16s)", got)
	}
	s := c.Summary()
	if s.Total != 32 || s.WindowSec != 16 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestWindowCounterSlotReuseClears(t *testing.T) {
	clk := newFakeClock()
	c := NewWindowCounter(16 * time.Second)
	c.SetClock(clk.now)
	c.Add(7)
	// A full ring revolution later the same slot index must not resurrect
	// the old count.
	clk.advance(16 * time.Second)
	c.Add(1)
	if got := c.Total(); got != 1 {
		t.Fatalf("Total = %d, want 1 (stale slot must be cleared on reuse)", got)
	}
}

func TestWindowHistogramSummaryAndRolloff(t *testing.T) {
	clk := newFakeClock()
	h := NewWindowHistogram(16 * time.Second)
	h.SetClock(clk.now)

	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	h.Observe(math.NaN())
	h.Observe(math.Inf(-1))
	s := h.Summary()
	if s.N != 100 || s.Dropped != 2 {
		t.Fatalf("N=%d Dropped=%d, want 100 and 2", s.N, s.Dropped)
	}
	if s.P99 < 99 || s.P99 > 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Rate-100.0/16) > 1e-9 {
		t.Fatalf("Rate = %g, want %g", s.Rate, 100.0/16)
	}

	clk.advance(time.Minute)
	if s := h.Summary(); s.N != 0 || s.Dropped != 0 {
		t.Fatalf("after window: %+v, want empty", s)
	}
	// New samples after the roll-off summarize cleanly.
	h.Observe(42)
	if s := h.Summary(); s.N != 1 || s.P50 != 42 {
		t.Fatalf("post-rolloff summary = %+v", s)
	}
}

func TestRegistryWindowMetricsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	wc := r.WindowCounter("w/c", 10*time.Second)
	if r.WindowCounter("w/c", 99*time.Second) != wc {
		t.Fatal("WindowCounter(name) must return the same instance (first window wins)")
	}
	wc.Add(3)
	r.WindowHistogram("w/h", 10*time.Second).Observe(1.5)

	snap := r.Snapshot()
	if snap.WindowCounters["w/c"].Total != 3 {
		t.Fatalf("snapshot window counter = %+v", snap.WindowCounters)
	}
	if snap.WindowHistograms["w/h"].N != 1 {
		t.Fatalf("snapshot window histogram = %+v", snap.WindowHistograms)
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMetricsSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.WindowCounters["w/c"].Total != 3 || got.WindowHistograms["w/h"].N != 1 {
		t.Fatalf("JSON round trip = %+v", got)
	}
}

// A name registered under two kinds used to be silent (two metrics, one
// name, ambiguous exports); now it panics with a typed error naming both
// call sites.
func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve/requests")
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("cross-kind reuse must panic")
		}
		ke, ok := v.(*MetricKindError)
		if !ok {
			t.Fatalf("panic value %T, want *MetricKindError", v)
		}
		if ke.Name != "serve/requests" || ke.Kind != "counter" || ke.NewKind != "gauge" {
			t.Fatalf("error = %+v", ke)
		}
		msg := ke.Error()
		if !strings.Contains(msg, "window_test.go") {
			t.Fatalf("error must name both call sites, got %q", msg)
		}
		if !strings.Contains(msg, "counter") || !strings.Contains(msg, "gauge") {
			t.Fatalf("error must name both kinds, got %q", msg)
		}
	}()
	r.Gauge("serve/requests")
}

// Same-kind re-registration stays the get-or-create fast path.
func TestRegistrySameKindNoPanic(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	if r.Counter("x") != a {
		t.Fatal("same-kind reuse must return the same instance")
	}
	r.WindowHistogram("y", time.Second)
	r.WindowHistogram("y", time.Second)
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve/requests").Add(1234)
	r.Gauge("serve/queue_depth").Set(7.5)
	for i := 1; i <= 100; i++ {
		r.Histogram("serve/latency_ms/pair").Observe(float64(i))
		r.WindowHistogram("serve/window/plan_latency_ms", 30*time.Second).Observe(float64(i))
	}
	r.WindowCounter("serve/window/shed", 30*time.Second).Add(9)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	scrape, err := ParsePrometheusText(strings.NewReader(page))
	if err != nil {
		t.Fatalf("parse back failed: %v\npage:\n%s", err, page)
	}

	if got := scrape.Types["serve_requests"]; got != "counter" {
		t.Fatalf("serve_requests TYPE = %q, want counter", got)
	}
	if v, ok := scrape.Value("serve_requests", ""); !ok || v != 1234 {
		t.Fatalf("serve_requests = %g ok=%v", v, ok)
	}
	if v, ok := scrape.Value("serve_queue_depth", ""); !ok || v != 7.5 {
		t.Fatalf("serve_queue_depth = %g ok=%v", v, ok)
	}
	if v, ok := scrape.Value("serve_latency_ms_pair", `{quantile="0.99"}`); !ok || v < 99 || v > 100 {
		t.Fatalf("cumulative p99 = %g ok=%v", v, ok)
	}
	if v, ok := scrape.Value("serve_latency_ms_pair_count", ""); !ok || v != 100 {
		t.Fatalf("count = %g ok=%v", v, ok)
	}
	// The windowed p99 — the sample a live dashboard cares about.
	if v, ok := scrape.Value("serve_window_plan_latency_ms_window", `{quantile="0.99",window="30s"}`); !ok || v < 99 || v > 100 {
		t.Fatalf("windowed p99 = %g ok=%v\npage:\n%s", v, ok, page)
	}
	if v, ok := scrape.Value("serve_window_shed_window_total", `{window="30s"}`); !ok || v != 9 {
		t.Fatalf("window shed total = %g ok=%v", v, ok)
	}
	if got := scrape.Types["serve_window_shed_window_total"]; got != "gauge" {
		t.Fatalf("window total TYPE = %q, want gauge", got)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"serve/latency_ms/pair": "serve_latency_ms_pair",
		"a-b.c":                 "a_b_c",
		"9lives":                "_9lives",
		"ok_name:x":             "ok_name:x",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Fatalf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSLOTrackerEvaluate(t *testing.T) {
	clk := newFakeClock()
	reg := NewRegistry()
	lat := reg.WindowHistogram("w/latency", 16*time.Second)
	lat.SetClock(clk.now)
	shed := reg.WindowCounter("w/shed", 16*time.Second)
	shed.SetClock(clk.now)
	reqs := reg.WindowCounter("w/requests", 16*time.Second)
	reqs.SetClock(clk.now)

	tr, err := NewSLOTracker(reg, []SLOSpec{
		{Name: "plan_p99", Kind: SLOLatencyP99, Metric: "w/latency", Threshold: 5},
		{Name: "shed_ratio", Kind: SLORatioMax, Metric: "w/shed", Denominator: "w/requests", Threshold: 0.5},
		{Name: "hit_ratio", Kind: SLORatioMin, Metric: "w/shed", Denominator: "w/requests", Threshold: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Empty windows: every objective is vacuous, nothing breaches.
	for _, v := range tr.Evaluate() {
		if !v.Vacuous || v.Breached {
			t.Fatalf("empty-window verdict = %+v, want vacuous", v)
		}
	}

	// Healthy traffic: under p99 threshold, shed ratio 0.2 (between the
	// ratio_max bound and the ratio_min floor).
	for i := 0; i < 10; i++ {
		lat.Observe(1)
	}
	reqs.Add(10)
	shed.Add(2)
	for _, v := range tr.Evaluate() {
		if v.Breached || v.Vacuous {
			t.Fatalf("healthy verdict = %+v", v)
		}
		if v.Breaches != 0 || v.Evals != 2 {
			t.Fatalf("burn counters = %+v", v)
		}
	}

	// Degraded: slow tail + shed storm.
	lat.Observe(50)
	shed.Add(20)
	vs := tr.Evaluate()
	if !vs[0].Breached {
		t.Fatalf("p99 verdict = %+v, want breached (p99 %g > 5)", vs[0], vs[0].Value)
	}
	if !vs[1].Breached || vs[1].Value <= 0.5 {
		t.Fatalf("shed verdict = %+v, want breached", vs[1])
	}
	if vs[1].Breaches != 1 || vs[1].BurnRate <= 0 {
		t.Fatalf("burn = %+v", vs[1])
	}
	// ratio_min: 22/10 > 0.1 — not breached.
	if vs[2].Breached {
		t.Fatalf("ratio_min verdict = %+v", vs[2])
	}

	// Burn counters are mirrored into the registry.
	if reg.Counter("slo/plan_p99/evals").Value() != 3 {
		t.Fatalf("mirrored evals = %d, want 3", reg.Counter("slo/plan_p99/evals").Value())
	}
	if reg.Counter("slo/shed_ratio/breaches").Value() != 1 {
		t.Fatalf("mirrored breaches = %d, want 1", reg.Counter("slo/shed_ratio/breaches").Value())
	}

	// Recovery: the window rolls off and verdicts go vacuous again, but
	// the cumulative burn counters keep the history for the soak gate.
	clk.advance(time.Minute)
	vs = tr.Evaluate()
	if !vs[0].Vacuous || vs[0].Breaches != 1 {
		t.Fatalf("post-recovery verdict = %+v", vs[0])
	}

	snap := SLOSnapshot{Enabled: true, WindowSec: 16, Verdicts: vs}
	if !snap.Breached() {
		t.Fatal("snapshot with historical breaches must report Breached")
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSLOSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Enabled || len(got.Verdicts) != 3 || got.Verdicts[0].Name != "plan_p99" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestSLOSpecValidate(t *testing.T) {
	bad := []SLOSpec{
		{},
		{Name: "x"},
		{Name: "x", Metric: "m", Kind: "nope"},
		{Name: "x", Metric: "m", Kind: SLOLatencyP99, Threshold: 0},
		{Name: "x", Metric: "m", Kind: SLORatioMax, Threshold: 0.5},
		{Name: "x", Metric: "m", Kind: SLORatioMax, Denominator: "d", Threshold: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %d (%+v) must not validate", i, s)
		}
	}
	ok := SLOSpec{Name: "x", Metric: "m", Kind: SLORatioMin, Denominator: "d", Threshold: 0.99}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSLOTracker(NewRegistry(), []SLOSpec{{Name: "bad"}}); err == nil {
		t.Fatal("NewSLOTracker must reject invalid specs")
	}
}

// An SLO spec naming a metric nobody registered evaluates vacuous
// forever instead of inventing the metric or panicking.
func TestSLOUnknownMetricVacuous(t *testing.T) {
	reg := NewRegistry()
	tr, err := NewSLOTracker(reg, []SLOSpec{
		{Name: "ghost", Kind: SLOLatencyP99, Metric: "no/such", Threshold: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := tr.Evaluate()[0]
	if !v.Vacuous || v.Breached {
		t.Fatalf("verdict = %+v, want vacuous", v)
	}
	if _, ok := reg.findWindowHistogram("no/such"); ok {
		t.Fatal("evaluation must not create the metric")
	}
}

// TestWindowSlotRoundsUp pins the slot derivation (regression: the slot
// was truncated, so any window not divisible by windowSlots retained
// strictly less than requested while Rate divided by the full value).
// The effective window is rounded up to the next windowSlots multiple
// and slot*windowSlots == Window() always holds.
func TestWindowSlotRoundsUp(t *testing.T) {
	for _, tc := range []struct {
		window time.Duration
		slot   time.Duration
	}{
		{16 * time.Second, time.Second},                         // divides evenly: unchanged
		{time.Second + 100*time.Nanosecond, 62500007},           // 1s+100ns / 16 rounds up
		{15 * time.Second, 937500000},                           // divides evenly
		{17*time.Second + 5*time.Nanosecond, 1062500001},        // awkward remainder
		{500 * time.Millisecond, 62500000},                      // below 1s floor → 1s
		{windowSlots*time.Second + time.Nanosecond, 1000000001}, // remainder of exactly 1ns
	} {
		c := NewWindowCounter(tc.window)
		if c.slot != tc.slot {
			t.Errorf("counter window %v: slot = %v, want %v", tc.window, c.slot, tc.slot)
		}
		if c.window != c.slot*windowSlots {
			t.Errorf("counter window %v: effective window %v != slot*%d = %v",
				tc.window, c.window, windowSlots, c.slot*windowSlots)
		}
		if c.window < tc.window && tc.window >= time.Second {
			t.Errorf("counter window %v: effective window %v shrank below request", tc.window, c.window)
		}
		h := NewWindowHistogram(tc.window)
		if h.slot != tc.slot || h.window != h.slot*windowSlots {
			t.Errorf("histogram window %v: slot %v window %v, want slot %v and slot*%d",
				tc.window, h.slot, h.window, tc.slot, windowSlots)
		}
	}
}

// TestWindowCounterRetainsFullWindow is the behavioral regression for
// the truncated slot: with a 1s+100ns window the old code kept 16 slots
// of 62500006ns = 999999...ns total, so a sample was forgotten just
// before the configured window elapsed. Post-fix the sample must still
// be visible at Window() - 1ns after a slot-aligned write.
func TestWindowCounterRetainsFullWindow(t *testing.T) {
	clk := newFakeClock()
	c := NewWindowCounter(time.Second + 100*time.Nanosecond)
	c.SetClock(clk.now)
	// Align the write to a slot boundary so retention is exactly the
	// ring's span, not shortened by mid-slot placement.
	align := time.Duration(int64(c.slot) - clk.t.UnixNano()%int64(c.slot))
	clk.advance(align)
	c.Inc()
	clk.advance(c.Window() - time.Nanosecond)
	if got := c.Total(); got != 1 {
		t.Fatalf("sample forgotten %v before the window elapsed: Total = %d, want 1", time.Nanosecond, got)
	}
	clk.advance(2 * time.Nanosecond)
	if got := c.Total(); got != 0 {
		t.Fatalf("sample retained past the window: Total = %d, want 0", got)
	}
}

// TestWindowRateUsesEffectiveWindow: Rate and Summary must divide by
// the window the ring actually covers, not the requested one.
func TestWindowRateUsesEffectiveWindow(t *testing.T) {
	clk := newFakeClock()
	c := NewWindowCounter(17 * time.Second) // rounds up to 17.000000008s
	c.SetClock(clk.now)
	c.Add(34)
	want := 34 / c.Window().Seconds()
	if got := c.Rate(); got != want {
		t.Errorf("Rate = %v, want %v (effective window %v)", got, want, c.Window())
	}
	if s := c.Summary(); s.WindowSec != c.Window().Seconds() || s.Rate != want {
		t.Errorf("Summary = %+v, want rate %v over %v", s, want, c.Window())
	}
}
