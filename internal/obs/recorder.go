package obs

import (
	"fmt"
	"sort"
	"sync"

	"bgqflow/internal/sim"
)

// Span is one named interval on a track, in virtual time.
type Span struct {
	Track   string
	Name    string
	Begin   sim.Time
	End     sim.Time
	Aborted bool // rendered distinctly by the Perfetto exporter
	open    bool
}

// Instant is one zero-duration event on a track.
type Instant struct {
	Track string
	Name  string
	At    sim.Time
}

// CounterSample is one sample of a named counter track.
type CounterSample struct {
	Track string
	At    sim.Time
	Value float64
}

// Recorder collects simulation-clock telemetry — spans, instants,
// counter samples — plus a metrics Registry, and exports them as
// Chrome/Perfetto trace-event JSON or a flat metrics snapshot. One
// Recorder may serve many engines and planners concurrently; every
// method is mutex-protected (observability is off the hot path by
// construction: a nil Recorder/Sink costs one branch).
type Recorder struct {
	mu       sync.Mutex
	reg      *Registry
	spans    []Span
	instants []Instant
	counters []CounterSample
	open     map[SpanID]int // open span id -> index into spans
	nextSpan SpanID
}

// NewRecorder returns an empty recorder with a fresh metrics registry.
func NewRecorder() *Recorder {
	return &Recorder{reg: NewRegistry(), open: make(map[SpanID]int)}
}

// Registry returns the recorder's metrics registry.
func (r *Recorder) Registry() *Registry { return r.reg }

// Span records a complete interval [begin, end] on a track.
func (r *Recorder) Span(track, name string, begin, end sim.Time) {
	r.spanFull(track, name, begin, end, false)
}

// SpanAborted records a complete interval that ended in an abort; the
// exporter marks it so cut transfers are visually distinct.
func (r *Recorder) SpanAborted(track, name string, begin, end sim.Time) {
	r.spanFull(track, name, begin, end, true)
}

func (r *Recorder) spanFull(track, name string, begin, end sim.Time, aborted bool) {
	if end < begin {
		end = begin
	}
	r.mu.Lock()
	r.spans = append(r.spans, Span{Track: track, Name: name, Begin: begin, End: end, Aborted: aborted})
	r.mu.Unlock()
}

// SpanBegin opens a span at the given instant and returns its id.
func (r *Recorder) SpanBegin(track, name string, at sim.Time) SpanID {
	r.mu.Lock()
	r.nextSpan++
	id := r.nextSpan
	r.open[id] = len(r.spans)
	r.spans = append(r.spans, Span{Track: track, Name: name, Begin: at, End: at, open: true})
	r.mu.Unlock()
	return id
}

// SpanEnd closes a span opened with SpanBegin. Unknown or already-closed
// ids are ignored (a span must not be closable twice).
func (r *Recorder) SpanEnd(id SpanID, at sim.Time) {
	r.mu.Lock()
	if i, ok := r.open[id]; ok {
		delete(r.open, id)
		r.spans[i].open = false
		if at > r.spans[i].Begin {
			r.spans[i].End = at
		}
	}
	r.mu.Unlock()
}

// Instant records a zero-duration event.
func (r *Recorder) Instant(track, name string, at sim.Time) {
	r.mu.Lock()
	r.instants = append(r.instants, Instant{Track: track, Name: name, At: at})
	r.mu.Unlock()
}

// CounterSample records one sample of a counter track (rendered as a
// counter plot by the Perfetto exporter).
func (r *Recorder) CounterSample(track string, at sim.Time, v float64) {
	r.mu.Lock()
	r.counters = append(r.counters, CounterSample{Track: track, At: at, Value: v})
	r.mu.Unlock()
}

// Spans returns the recorded spans sorted by (Begin, End, Track, Name).
// Still-open spans are included with End == Begin.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Begin != out[j].Begin {
			return out[i].Begin < out[j].Begin
		}
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Instants returns the recorded instants sorted by (At, Track, Name).
func (r *Recorder) Instants() []Instant {
	r.mu.Lock()
	out := append([]Instant(nil), r.instants...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CounterSamples returns the recorded counter samples in recording order.
func (r *Recorder) CounterSamples() []CounterSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]CounterSample(nil), r.counters...)
}

// TimelineCounters renders a link timeline as per-link counter tracks
// (one sample per bucket midpoint), so ui.perfetto.dev plots utilization
// alongside the spans. name maps a link id to its track label; capacity
// maps it to bytes/second (utilization denominator).
func (r *Recorder) TimelineCounters(tl *LinkTimeline, name func(link int) string, capacity func(link int) float64) {
	half := sim.Time(tl.Bucket()) / 2
	for _, l := range tl.Links() {
		util := tl.Utilization(l, capacity(l))
		track := name(l)
		for i, u := range util {
			r.CounterSample(track, sim.Time(i)*sim.Time(tl.Bucket())+half, u)
		}
	}
}

// EngineSink adapts the recorder into the Sink interface the flow engine
// calls, filing everything under a track prefix so several engines can
// share one recorder. tl, when non-nil, receives the engine's per-link
// byte windows (the time-bucketed utilization timeline).
//
// Tracks emitted under the prefix: "<prefix>/flows" (one span per flow's
// wire occupancy, labeled with the flow label), "<prefix>/failures"
// (instants), and "<prefix>/active flows" (counter). Registry metrics:
// netsim/sweeps, netsim/failures, netsim/flows_done, netsim/flows_aborted
// counters and the netsim/sweep_flows histogram (component sizes).
func (r *Recorder) EngineSink(prefix string, tl *LinkTimeline) *EngineSink {
	return &EngineSink{rec: r, prefix: prefix, tl: tl}
}

// EngineSink implements Sink on top of a Recorder; see
// Recorder.EngineSink. One EngineSink serves one engine.
type EngineSink struct {
	rec    *Recorder
	prefix string
	tl     *LinkTimeline
	active int
}

var _ Sink = (*EngineSink)(nil)

// Timeline returns the sink's attached timeline (nil when none).
func (s *EngineSink) Timeline() *LinkTimeline { return s.tl }

// FlowActivated implements Sink: it samples the active-flow counter.
func (s *EngineSink) FlowActivated(now sim.Time, id int, label string) {
	s.active++
	s.rec.CounterSample(s.prefix+"/active flows", now, float64(s.active))
}

// FlowEnded implements Sink: it emits the flow's wire-occupancy span and
// closes the active-flow counter sample.
func (s *EngineSink) FlowEnded(now, activated sim.Time, id int, label string, bytes int64, aborted bool) {
	s.active--
	s.rec.CounterSample(s.prefix+"/active flows", now, float64(s.active))
	if label == "" {
		label = fmt.Sprintf("flow%d", id)
	}
	if aborted {
		s.rec.SpanAborted(s.prefix+"/flows", label+" (aborted)", activated, now)
		s.rec.reg.Counter("netsim/flows_aborted").Inc()
	} else {
		s.rec.Span(s.prefix+"/flows", label, activated, now)
		s.rec.reg.Counter("netsim/flows_done").Inc()
	}
}

// SweepDone implements Sink: total and per-mode sweep counts, the
// region-size histograms that make the incremental cutoff's
// effectiveness visible in -metrics snapshots (netsim/dirty_links is the
// number of links an incremental sweep actually re-leveled).
func (s *EngineSink) SweepDone(now sim.Time, flows, links int, full bool) {
	s.rec.reg.Counter("netsim/sweeps").Inc()
	if full {
		s.rec.reg.Counter("netsim/sweeps_full").Inc()
	} else {
		s.rec.reg.Counter("netsim/sweeps_incremental").Inc()
		s.rec.reg.Histogram("netsim/dirty_links").Observe(float64(links))
	}
	s.rec.reg.Histogram("netsim/sweep_flows").Observe(float64(flows))
}

// FailureApplied implements Sink: an instant on the failures track.
func (s *EngineSink) FailureApplied(now sim.Time, node int, isNode bool, links int) {
	name := fmt.Sprintf("link failure (%d links)", links)
	if isNode {
		name = fmt.Sprintf("node %d failure (%d links)", node, links)
	}
	s.rec.Instant(s.prefix+"/failures", name, now)
	s.rec.reg.Counter("netsim/failures").Inc()
}

// LinkWindow implements Sink: it feeds the attached timeline, if any.
func (s *EngineSink) LinkWindow(link int, from, to sim.Time, bytes float64) {
	if s.tl != nil {
		s.tl.Add(link, from, to, bytes)
	}
}
