package obs

import (
	"math"
	"testing"

	"bgqflow/internal/sim"
)

func TestHistogramDropsNonFinite(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(math.NaN())
	h.Observe(2)
	h.Observe(math.Inf(1))
	h.Observe(3)
	if got := h.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	s := h.Summary()
	if s.N != 3 || s.Dropped != 2 {
		t.Fatalf("N=%d Dropped=%d, want 3 and 2", s.N, s.Dropped)
	}
	if s.P50 != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("P50=%g Min=%g Max=%g, want 2, 1, 3", s.P50, s.Min, s.Max)
	}
	if math.IsNaN(s.Mean) || math.IsNaN(s.P99) {
		t.Fatal("summary poisoned by non-finite samples")
	}
}

// The timeline used to silently ignore pre-t0 and inverted windows,
// making a conservation deficit indistinguishable from "no traffic".
// Pre-t0 windows are now clamped (all bytes kept), garbage windows are
// dropped, and both cases are counted — locally and, when a registry is
// attached, as obs/timeline counters.
func TestTimelineClampsAndCountsBadWindows(t *testing.T) {
	reg := NewRegistry()
	tl := NewLinkTimeline(1.0)
	tl.SetRegistry(reg)

	tl.Add(0, -0.5, 0.5, 10) // clamped: all 10 bytes land in bucket 0
	if got := tl.TotalBytes(0); got != 10 {
		t.Fatalf("clamped window kept %g bytes, want 10", got)
	}
	if got := tl.Series(0); len(got) != 1 || got[0] != 10 {
		t.Fatalf("clamped window series %v, want [10]", got)
	}

	tl.Add(0, 2, 1, 5)                     // inverted
	tl.Add(0, 0, 1, 0)                     // no bytes
	tl.Add(0, 0, 1, -3)                    // negative bytes
	tl.Add(0, 0, 1, math.NaN())            // NaN bytes
	tl.Add(0, -2, -1, 5)                   // entirely before t=0
	tl.Add(0, 0, sim.Time(math.Inf(1)), 5) // unbounded window
	tl.Add(0, sim.Time(math.NaN()), 1, 5)  // NaN start
	if got := tl.TotalBytes(0); got != 10 {
		t.Fatalf("garbage windows changed the series: %g bytes", got)
	}
	if got := tl.ClampedWindows(); got != 1 {
		t.Fatalf("ClampedWindows = %d, want 1", got)
	}
	if got := tl.DroppedWindows(); got != 7 {
		t.Fatalf("DroppedWindows = %d, want 7", got)
	}
	if got := reg.Counter("obs/timeline/windows_clamped").Value(); got != 1 {
		t.Fatalf("registry clamped counter = %d, want 1", got)
	}
	if got := reg.Counter("obs/timeline/windows_dropped").Value(); got != 7 {
		t.Fatalf("registry dropped counter = %d, want 7", got)
	}
}

// Valid windows must not be counted as dropped or clamped.
func TestTimelineCleanWindowsUncounted(t *testing.T) {
	tl := NewLinkTimeline(1.0)
	tl.Add(0, 0, 2, 20)
	tl.Add(1, 0.5, 0.5, 5) // zero-width is valid
	if tl.DroppedWindows() != 0 || tl.ClampedWindows() != 0 {
		t.Fatalf("clean windows counted: dropped=%d clamped=%d", tl.DroppedWindows(), tl.ClampedWindows())
	}
}
