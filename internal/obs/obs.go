// Package obs is the unified observability layer: a metrics registry
// (counters, gauges, histograms), a simulation-clock event recorder
// (named spans, instant events, counter tracks), and exporters —
// Chrome/Perfetto trace-event JSON loadable in ui.perfetto.dev, a flat
// metrics JSON snapshot, and time-bucketed per-link utilization
// timelines fed by the flow engine's progress charges.
//
// The layer is strictly pay-for-what-you-use. Components hold a Sink (or
// a *Recorder) that is nil when observability is off, and every
// instrumentation site is guarded by a single nil check, so the netsim
// hot path keeps its zero-allocation steady state (guarded by
// TestSubmitReleaseZeroAlloc and the sink-on/off benchmark pair in
// internal/netsim). The package depends only on the stdlib plus the
// repo's sim and stats packages; it must never import netsim or the
// planning layers (they import it).
//
// All timestamps are virtual (sim.Time, seconds since the start of the
// run); the Perfetto exporter renders them as microseconds.
package obs

import "bgqflow/internal/sim"

// SpanID identifies a span opened with SpanBegin so it can be closed.
// The zero value is never issued.
type SpanID uint64

// Sink is the engine-facing telemetry interface: the generalized form of
// netsim's single-purpose sweepObserver/failureObserver hooks. The flow
// engine calls it at every lifecycle edge; *Recorder.EngineSink adapts a
// Recorder into one with every event filed under a track prefix, so
// several engines (e.g. the parallel experiment runner's sweep points)
// can share one Recorder without colliding.
//
// Implementations must be safe for use from the single goroutine driving
// one engine; a Recorder-backed sink is additionally safe for many
// engines on many goroutines. Callers installing a Sink must pass a
// genuinely nil interface — not a typed nil pointer — to disable it.
type Sink interface {
	// FlowActivated fires when a flow's transfer starts (sender overhead
	// paid, links claimed).
	FlowActivated(now sim.Time, id int, label string)

	// FlowEnded fires when a flow's wire occupancy ends: at transfer end
	// (last byte left the wire; aborted=false) or at a failure instant
	// that cut the flow mid-flight (aborted=true). activated is the time
	// FlowActivated fired; [activated, now] is the wire span.
	FlowEnded(now, activated sim.Time, id int, label string, bytes int64, aborted bool)

	// SweepDone fires after each rate-reallocation sweep with the number
	// of flows and links that were rebalanced. full distinguishes a
	// whole-component sweep (global mode, or an incremental fallback)
	// from an incremental dirty-region sweep, where flows/links count
	// only the re-leveled region.
	SweepDone(now sim.Time, flows, links int, full bool)

	// FailureApplied fires after a scheduled failure event has been
	// applied and its victims aborted. node is meaningful when isNode.
	FailureApplied(now sim.Time, node int, isNode bool, links int)

	// LinkWindow attributes bytes carried by a link to the window
	// [from, to]. The engine calls it whenever it charges transfer
	// progress (waterfill sweeps, transfer end, aborts), so integrating
	// the windows reproduces the engine's cumulative link byte counters
	// with a time dimension.
	LinkWindow(link int, from, to sim.Time, bytes float64)
}
