package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"bgqflow/internal/sim"
)

// Wall-clock tracing. The Recorder type records *simulation* time — one
// deterministic engine's virtual timeline. A daemon serving live traffic
// also needs the other clock: when did the request arrive, how long did
// it sit in the dispatcher queue, how long did the session run. The
// WallRecorder records that plane into bounded rings and exports both
// planes into one Chrome/Perfetto file on aligned tracks:
//
//   - pid 1 "bgqd (wall clock)": wall spans/instants, timestamps are
//     microseconds since the recorder started.
//   - pid 2 "engine (sim clock)": sim spans/instants merged in with
//     MergeSim, timestamps are microseconds of virtual time since each
//     run's t=0.
//
// The two clocks are deliberately NOT stretched onto each other — a
// paced session's 2s wall run may cover 300µs of virtual time, and
// rescaling one to the other would destroy the readability of both.
// Correlation is by trace ID: every span and instant carries its
// request's trace in args, and engine instants additionally carry their
// virtual time (args.vtime) so a wall-plane event can be matched to the
// exact sim-plane instant. DESIGN.md §15 documents the alignment rule.
//
// Every method is nil-receiver-safe: a disabled trace plane is a nil
// *WallRecorder and costs one branch per site, preserving the PR 3
// zero-allocation discipline on hot paths (guarded by
// TestWallDisabledZeroAlloc and the paired benchmarks in wall_test.go).

const (
	wallPid = 1 // wall-clock process in the merged export
	simPid  = 2 // sim-clock process in the merged export
)

// NewTraceID returns a fresh 16-hex-char trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("obs: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// WallSpan is one wall-clock interval on a track, tagged with the trace
// it belongs to.
type WallSpan struct {
	Trace   string
	Track   string
	Name    string
	Begin   time.Time
	End     time.Time
	Aborted bool
	Open    bool // still open at snapshot time
}

// WallInstant is one wall-clock point event. VTime, when HasVTime, is
// the correlated virtual-time instant (seconds) — the clock-alignment
// breadcrumb between the wall and sim planes.
type WallInstant struct {
	Trace    string
	Track    string
	Name     string
	At       time.Time
	VTime    float64
	HasVTime bool
}

// SimSpan is a sim-clock span merged into the wall recorder (a copy of a
// Recorder span plus the owning trace).
type SimSpan struct {
	Trace   string
	Track   string
	Name    string
	Begin   sim.Time
	End     sim.Time
	Aborted bool
}

// SimInstant is a merged sim-clock instant.
type SimInstant struct {
	Trace string
	Track string
	Name  string
	At    sim.Time
}

// wallRing is a bounded FIFO: once full, pushing evicts the oldest entry
// and counts the drop. Long-running daemons keep the most recent
// capacity-many events — exactly what GET /v1/trace wants.
type wallRing[T any] struct {
	cap     int
	buf     []T
	head    int
	dropped int64
}

func (r *wallRing[T]) push(v T) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % r.cap
	r.dropped++
}

// items returns the ring oldest-first.
func (r *wallRing[T]) items() []T {
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// WallRecorder collects wall-clock spans and instants (plus merged
// sim-clock spans) into bounded rings. Create with NewWallRecorder; a
// nil recorder is a disabled trace plane and every method is a no-op.
// Safe for concurrent use.
type WallRecorder struct {
	mu          sync.Mutex
	now         func() time.Time
	origin      time.Time
	procName    string
	spans       wallRing[WallSpan]
	instants    wallRing[WallInstant]
	simSpans    wallRing[SimSpan]
	simInstants wallRing[SimInstant]
	open        map[SpanID]WallSpan
	nextSpan    SpanID
}

// NewWallRecorder builds a recorder whose rings hold capacity entries
// each (min 64).
func NewWallRecorder(capacity int) *WallRecorder {
	if capacity < 64 {
		capacity = 64
	}
	r := &WallRecorder{now: time.Now, open: make(map[SpanID]WallSpan)}
	r.origin = r.now()
	r.spans.cap = capacity
	r.instants.cap = capacity
	r.simSpans.cap = capacity
	r.simInstants.cap = capacity
	return r
}

// SetClock replaces the clock and resets the origin (tests); not safe
// concurrently with recording.
func (r *WallRecorder) SetClock(now func() time.Time) {
	r.now = now
	r.origin = now()
}

// SetProcessName overrides the wall plane's process label in the
// Chrome-trace export (default "bgqd (wall clock)"). A client-side
// recorder sets its own name so a merged client+daemon trace reads as
// two distinct processes. Configure before recording.
func (r *WallRecorder) SetProcessName(name string) {
	if r == nil {
		return
	}
	r.procName = name
}

// Span records a complete wall interval.
func (r *WallRecorder) Span(trace, track, name string, begin, end time.Time) {
	if r == nil {
		return
	}
	if end.Before(begin) {
		end = begin
	}
	r.mu.Lock()
	r.spans.push(WallSpan{Trace: trace, Track: track, Name: name, Begin: begin, End: end})
	r.mu.Unlock()
}

// SpanBegin opens a span now and returns its id. Open spans live outside
// the ring (they cannot be evicted) until closed.
func (r *WallRecorder) SpanBegin(trace, track, name string) SpanID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.nextSpan++
	id := r.nextSpan
	r.open[id] = WallSpan{Trace: trace, Track: track, Name: name, Begin: r.now(), Open: true}
	r.mu.Unlock()
	return id
}

// SpanEnd closes a span opened with SpanBegin; unknown or already-closed
// ids are ignored.
func (r *WallRecorder) SpanEnd(id SpanID) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	if s, ok := r.open[id]; ok {
		delete(r.open, id)
		s.End = r.now()
		s.Open = false
		r.spans.push(s)
	}
	r.mu.Unlock()
}

// SpanAbort closes an open span and marks it aborted.
func (r *WallRecorder) SpanAbort(id SpanID) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	if s, ok := r.open[id]; ok {
		delete(r.open, id)
		s.End = r.now()
		s.Open = false
		s.Aborted = true
		r.spans.push(s)
	}
	r.mu.Unlock()
}

// Instant records a wall-clock point event now.
func (r *WallRecorder) Instant(trace, track, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.instants.push(WallInstant{Trace: trace, Track: track, Name: name, At: r.now()})
	r.mu.Unlock()
}

// InstantV records a wall-clock point event correlated with a
// virtual-time instant (seconds) — used for engine events (replans,
// pushed faults) that exist on both clocks.
func (r *WallRecorder) InstantV(trace, track, name string, vtime float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.instants.push(WallInstant{Trace: trace, Track: track, Name: name, At: r.now(),
		VTime: vtime, HasVTime: true})
	r.mu.Unlock()
}

// MergeSim copies a sim-clock Recorder's spans and instants into the
// wall recorder's sim rings under the given trace. Sessions record their
// engine timeline into a private Recorder and merge it here when the run
// finishes, so the daemon-wide trace file carries every session's
// sim-plane story without unbounded per-session state.
func (r *WallRecorder) MergeSim(trace string, rec *Recorder) {
	if r == nil || rec == nil {
		return
	}
	spans := rec.Spans()
	instants := rec.Instants()
	r.mu.Lock()
	for _, s := range spans {
		r.simSpans.push(SimSpan{Trace: trace, Track: s.Track, Name: s.Name,
			Begin: s.Begin, End: s.End, Aborted: s.Aborted})
	}
	for _, i := range instants {
		r.simInstants.push(SimInstant{Trace: trace, Track: i.Track, Name: i.Name, At: i.At})
	}
	r.mu.Unlock()
}

// OpenSpans reports how many spans are currently open — a trace export
// with zero open spans has no orphans.
func (r *WallRecorder) OpenSpans() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.open)
}

// Dropped reports how many events were evicted from full rings.
func (r *WallRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans.dropped + r.instants.dropped + r.simSpans.dropped + r.simInstants.dropped
}

// snapshot copies the recorder state for export.
func (r *WallRecorder) snapshot() (spans []WallSpan, instants []WallInstant, simSpans []SimSpan, simInstants []SimInstant, origin, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now = r.now()
	spans = r.spans.items()
	for _, s := range r.open {
		s.End = now
		spans = append(spans, s)
	}
	instants = r.instants.items()
	simSpans = r.simSpans.items()
	simInstants = r.simInstants.items()
	origin = r.origin
	return
}

// Spans returns the recorded wall spans (closed ring entries plus open
// spans, End set to now) sorted by Begin.
func (r *WallRecorder) Spans() []WallSpan {
	if r == nil {
		return nil
	}
	spans, _, _, _, _, _ := r.snapshot()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Begin.Before(spans[j].Begin) })
	return spans
}

// SimSpans returns the merged sim-clock spans sorted by (Begin, End,
// Track, Name).
func (r *WallRecorder) SimSpans() []SimSpan {
	if r == nil {
		return nil
	}
	_, _, simSpans, _, _, _ := r.snapshot()
	sortSimSpans(simSpans)
	return simSpans
}

func sortSimSpans(out []SimSpan) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Begin != out[j].Begin {
			return out[i].Begin < out[j].Begin
		}
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Name < out[j].Name
	})
}

// laneSpan/laneInstant are clock-agnostic export rows: timestamps are
// already microseconds on their process's clock.
type laneSpan struct {
	track string
	name  string
	ts    float64
	dur   float64
	args  map[string]any
}

type laneInstant struct {
	track string
	name  string
	ts    float64
	args  map[string]any
}

// laneEvents renders one process's spans and instants with the same
// greedy first-fit lane assignment the sim exporter uses: overlapping
// spans on one track spread across extra threads ("track #n"). spans
// must be sorted by ts. Returns the events and the next free tid.
func laneEvents(pid int, procName string, tidBase int, spans []laneSpan, instants []laneInstant) ([]chromeEvent, int) {
	trackSet := make(map[string]struct{})
	for _, s := range spans {
		trackSet[s.track] = struct{}{}
	}
	for _, i := range instants {
		trackSet[i.track] = struct{}{}
	}
	tracks := make([]string, 0, len(trackSet))
	for t := range trackSet {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)

	events := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": procName},
	}}

	nextTid := tidBase
	trackTid := make(map[string]int, len(tracks))
	laneEnd := make(map[string][]float64)
	laneTid := make(map[string][]int)
	threadName := func(track string, lane int) chromeEvent {
		name := track
		if lane > 0 {
			name = track + " #" + strconv.Itoa(lane)
		}
		return chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: laneTid[track][lane],
			Args: map[string]any{"name": name},
		}
	}
	openLane := func(track string) int {
		lane := len(laneTid[track])
		laneTid[track] = append(laneTid[track], nextTid)
		laneEnd[track] = append(laneEnd[track], -1)
		if lane == 0 {
			trackTid[track] = nextTid
		}
		nextTid++
		return lane
	}
	for _, track := range tracks {
		openLane(track)
		events = append(events, threadName(track, 0))
	}

	for _, s := range spans {
		lane := -1
		for i, end := range laneEnd[s.track] {
			if end <= s.ts {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = openLane(s.track)
			events = append(events, threadName(s.track, lane))
		}
		laneEnd[s.track][lane] = s.ts + s.dur
		events = append(events, chromeEvent{
			Name: s.name, Ph: "X", Ts: s.ts, Dur: s.dur,
			Pid: pid, Tid: laneTid[s.track][lane], Args: s.args,
		})
	}

	for _, i := range instants {
		events = append(events, chromeEvent{
			Name: i.name, Ph: "i", Ts: i.ts,
			Pid: pid, Tid: trackTid[i.track], S: "t", Args: i.args,
		})
	}
	return events, nextTid
}

func traceArgs(trace string, extra map[string]any) map[string]any {
	if trace == "" && extra == nil {
		return nil
	}
	args := make(map[string]any, 1+len(extra))
	if trace != "" {
		args["trace"] = trace
	}
	for k, v := range extra {
		args[k] = v
	}
	return args
}

// WriteChromeTrace exports the merged wall + sim planes as one
// Chrome/Perfetto trace-event file. Wall events land under pid 1 with
// timestamps in microseconds since the recorder's origin; merged sim
// events land under pid 2 in microseconds of virtual time. Every event
// carries its trace ID in args; still-open wall spans are exported up to
// "now" with args.open = true.
func (r *WallRecorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("obs: nil WallRecorder (tracing disabled)")
	}
	spans, instants, simSpans, simInstants, origin, _ := r.snapshot()
	procName := r.procName
	if procName == "" {
		procName = "bgqd (wall clock)"
	}

	usecSince := func(t time.Time) float64 {
		d := t.Sub(origin)
		if d < 0 {
			d = 0
		}
		return float64(d) / float64(time.Microsecond)
	}

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Begin.Before(spans[j].Begin) })
	wallSpans := make([]laneSpan, 0, len(spans))
	for _, s := range spans {
		var extra map[string]any
		if s.Open {
			extra = map[string]any{"open": true}
		}
		if s.Aborted {
			if extra == nil {
				extra = map[string]any{}
			}
			extra["aborted"] = true
		}
		ts := usecSince(s.Begin)
		wallSpans = append(wallSpans, laneSpan{
			track: s.Track, name: s.Name, ts: ts, dur: usecSince(s.End) - ts,
			args: traceArgs(s.Trace, extra),
		})
	}
	sort.SliceStable(instants, func(i, j int) bool { return instants[i].At.Before(instants[j].At) })
	wallInstants := make([]laneInstant, 0, len(instants))
	for _, i := range instants {
		var extra map[string]any
		if i.HasVTime {
			extra = map[string]any{"vtime": i.VTime}
		}
		wallInstants = append(wallInstants, laneInstant{
			track: i.Track, name: i.Name, ts: usecSince(i.At), args: traceArgs(i.Trace, extra),
		})
	}

	events, nextTid := laneEvents(wallPid, procName, 1, wallSpans, wallInstants)

	sortSimSpans(simSpans)
	simLane := make([]laneSpan, 0, len(simSpans))
	for _, s := range simSpans {
		var extra map[string]any
		if s.Aborted {
			extra = map[string]any{"aborted": true}
		}
		simLane = append(simLane, laneSpan{
			track: s.Track, name: s.Name, ts: usec(s.Begin), dur: usec(s.End - s.Begin),
			args: traceArgs(s.Trace, extra),
		})
	}
	sort.SliceStable(simInstants, func(i, j int) bool {
		if simInstants[i].At != simInstants[j].At {
			return simInstants[i].At < simInstants[j].At
		}
		return simInstants[i].Track < simInstants[j].Track
	})
	simLaneInstants := make([]laneInstant, 0, len(simInstants))
	for _, i := range simInstants {
		simLaneInstants = append(simLaneInstants, laneInstant{
			track: i.Track, name: i.Name, ts: usec(i.At),
			args: traceArgs(i.Trace, map[string]any{"vtime": float64(i.At)}),
		})
	}
	if len(simLane) > 0 || len(simLaneInstants) > 0 {
		simEvents, _ := laneEvents(simPid, "engine (sim clock)", nextTid, simLane, simLaneInstants)
		events = append(events, simEvents...)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// MergeChromeTraces concatenates several Chrome trace-event JSON files
// into one, re-keying process IDs so the inputs render as separate
// processes (bgqload uses it to merge its client-side trace with the
// daemon's GET /v1/trace snapshot into a single openable file).
func MergeChromeTraces(w io.Writer, traces ...[]byte) error {
	var merged chromeTrace
	merged.DisplayTimeUnit = "ms"
	pidOffset := 0
	for n, raw := range traces {
		var t chromeTrace
		if err := json.Unmarshal(raw, &t); err != nil {
			return fmt.Errorf("obs: merge trace %d: %w", n, err)
		}
		maxPid := 0
		for _, ev := range t.TraceEvents {
			if ev.Pid > maxPid {
				maxPid = ev.Pid
			}
		}
		for _, ev := range t.TraceEvents {
			ev.Pid += pidOffset
			merged.TraceEvents = append(merged.TraceEvents, ev)
		}
		pidOffset += maxPid
	}
	enc := json.NewEncoder(w)
	return enc.Encode(merged)
}
