package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"bgqflow/internal/sim"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if r.Counter("a") != c {
		t.Fatal("Counter(name) must return the same instance")
	}
	if got := r.Counter("a").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := r.Gauge("g").Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	h := r.Histogram("h")
	h.Observe(1)
	if r.Histogram("h") != h {
		t.Fatal("Histogram(name) must return the same instance")
	}
	want := []string{"a", "g", "h"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestHistogramSummary(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Summary()
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("mean = %g, want 50.5", s.Mean)
	}
	if s.P50 < 50 || s.P50 > 51 {
		t.Fatalf("p50 = %g, want ~50.5", s.P50)
	}
	if s.P99 < 99 || s.P99 > 100 {
		t.Fatalf("p99 = %g, want ~99", s.P99)
	}
	if (&Histogram{}).Summary() != (HistSummary{}) {
		t.Fatal("empty histogram must summarize to the zero value")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.5)
	r.Histogram("h").Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMetricsSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["c"] != 7 || got.Gauges["g"] != 1.5 || got.Histograms["h"].N != 1 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestRecorderSpans(t *testing.T) {
	r := NewRecorder()
	r.Span("t", "late", 2, 3)
	r.Span("t", "early", 0, 1)
	r.SpanAborted("t", "cut", 1, 2)
	id := r.SpanBegin("t", "open-close", 4)
	r.SpanEnd(id, 6)
	r.SpanEnd(id, 9) // second close ignored
	r.SpanEnd(SpanID(999), 9)

	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	order := []string{"early", "cut", "late", "open-close"}
	for i, want := range order {
		if spans[i].Name != want {
			t.Fatalf("span[%d] = %q, want %q (sorted by begin)", i, spans[i].Name, want)
		}
	}
	if !spans[1].Aborted {
		t.Fatal("aborted span lost its flag")
	}
	if spans[3].End != 6 {
		t.Fatalf("open-close end = %v, want 6 (second SpanEnd ignored)", spans[3].End)
	}
	// Inverted interval clamps to zero width rather than going negative.
	r2 := NewRecorder()
	r2.Span("t", "inv", 5, 3)
	if s := r2.Spans()[0]; s.End != s.Begin {
		t.Fatalf("inverted span = [%v,%v], want clamped", s.Begin, s.End)
	}
}

func TestTimelineProportionalSpread(t *testing.T) {
	tl := NewLinkTimeline(1.0)
	// 30 bytes over [0.5, 3.5): 1/6 in bucket 0, 1/3 each in 1 and 2,
	// 1/6 in bucket 3.
	tl.Add(7, 0.5, 3.5, 30)
	s := tl.Series(7)
	want := []float64{5, 10, 10, 5}
	if len(s) != len(want) {
		t.Fatalf("series = %v, want %v", s, want)
	}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-9 {
			t.Fatalf("series = %v, want %v", s, want)
		}
	}
	if got := tl.TotalBytes(7); math.Abs(got-30) > 1e-9 {
		t.Fatalf("total = %g, want 30 (buckets must integrate to the charge)", got)
	}

	// Zero-width window lands whole in the containing bucket.
	tl.Add(8, 2.5, 2.5, 4)
	if s := tl.Series(8); s[2] != 4 {
		t.Fatalf("zero-width charge = %v, want bucket 2", s)
	}
	// Ignored inputs.
	tl.Add(9, 1, 0, 5)  // inverted
	tl.Add(9, 0, 1, -5) // negative
	if len(tl.Series(9)) != 0 {
		t.Fatal("invalid charges must be ignored")
	}
	// A window starting before t=0 is clamped, not dropped: the bytes stay.
	tl.Add(10, -1, 1, 5)
	if got := tl.TotalBytes(10); math.Abs(got-5) > 1e-9 {
		t.Fatalf("clamped charge kept %g bytes, want 5", got)
	}
	if links := tl.Links(); len(links) != 3 || links[0] != 7 || links[1] != 8 || links[2] != 10 {
		t.Fatalf("links = %v, want [7 8 10]", links)
	}
	util := tl.Utilization(7, 20) // capacity 20 B/s, bucket 1 s
	if math.Abs(util[1]-0.5) > 1e-9 {
		t.Fatalf("util = %v, want 0.5 in bucket 1", util)
	}
}

func TestTimelineBadBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLinkTimeline(0) must panic")
		}
	}()
	NewLinkTimeline(0)
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder()
	// Two overlapping spans on one track force a second lane.
	r.Span("flows", "a", 0, 10e-6)
	r.Span("flows", "b", 5e-6, 15e-6)
	r.SpanAborted("flows", "c", 20e-6, 30e-6)
	r.Instant("flows", "boom", 12e-6)
	r.CounterSample("active", 1e-6, 2)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	byName := make(map[string][]int)
	lanes := make(map[int]bool)
	for i, e := range trace.TraceEvents {
		byName[e.Name] = append(byName[e.Name], i)
		if e.Ph == "X" {
			lanes[e.Tid] = true
		}
	}
	for _, want := range []string{"a", "b", "c", "boom", "active", "process_name", "thread_name"} {
		if len(byName[want]) == 0 {
			t.Fatalf("trace is missing event %q", want)
		}
	}
	if len(lanes) != 2 {
		t.Fatalf("overlapping spans must land on 2 lanes, got %d", len(lanes))
	}
	a := trace.TraceEvents[byName["a"][0]]
	if a.Ph != "X" || a.Ts != 0 || math.Abs(a.Dur-10) > 1e-9 {
		t.Fatalf("span a = %+v, want complete event with 10us duration", a)
	}
	c := trace.TraceEvents[byName["c"][0]]
	if c.Args["aborted"] != true {
		t.Fatalf("aborted span c lost its marker: %+v", c)
	}
	boom := trace.TraceEvents[byName["boom"][0]]
	if boom.Ph != "i" || boom.S != "t" {
		t.Fatalf("instant = %+v", boom)
	}
	if !strings.Contains(buf.String(), `"displayTimeUnit":"ms"`) {
		t.Fatal("trace must set displayTimeUnit")
	}
}

func TestEngineSinkAdapts(t *testing.T) {
	r := NewRecorder()
	tl := NewLinkTimeline(1e-3)
	var s Sink = r.EngineSink("eng", tl)
	s.FlowActivated(0, 0, "f")
	s.LinkWindow(3, 0, 1e-3, 100)
	s.FlowEnded(2e-3, 0, 0, "f", 100, false)
	s.FlowActivated(2e-3, 1, "")
	s.FlowEnded(3e-3, 2e-3, 1, "", 50, true)
	s.SweepDone(3e-3, 2, 4, true)
	s.SweepDone(4e-3, 1, 3, false)
	s.FailureApplied(1e-3, 5, true, 10)

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "f" || spans[0].Track != "eng/flows" {
		t.Fatalf("span[0] = %+v", spans[0])
	}
	if spans[1].Name != "flow1 (aborted)" || !spans[1].Aborted {
		t.Fatalf("span[1] = %+v, want fallback label + abort flag", spans[1])
	}
	reg := r.Registry()
	if reg.Counter("netsim/flows_done").Value() != 1 ||
		reg.Counter("netsim/flows_aborted").Value() != 1 ||
		reg.Counter("netsim/sweeps").Value() != 2 ||
		reg.Counter("netsim/sweeps_full").Value() != 1 ||
		reg.Counter("netsim/sweeps_incremental").Value() != 1 ||
		reg.Counter("netsim/failures").Value() != 1 {
		t.Fatalf("counters = %v", reg.Snapshot().Counters)
	}
	if h := reg.Histogram("netsim/dirty_links").Summary(); h.N != 1 || h.Max != 3 {
		t.Fatalf("dirty_links histogram = %+v, want one sample of 3", h)
	}
	if got := tl.TotalBytes(3); got != 100 {
		t.Fatalf("timeline got %g bytes, want 100", got)
	}
	ins := r.Instants()
	if len(ins) != 1 || ins[0].Track != "eng/failures" || !strings.Contains(ins[0].Name, "node 5") {
		t.Fatalf("instants = %+v", ins)
	}
	if n := len(r.CounterSamples()); n != 4 {
		t.Fatalf("got %d counter samples, want 4 (two activations, two ends)", n)
	}
}

func TestTimelineCounters(t *testing.T) {
	r := NewRecorder()
	tl := NewLinkTimeline(1.0)
	tl.Add(0, 0, 2, 20)
	r.TimelineCounters(tl, func(l int) string { return "link" }, func(l int) float64 { return 10 })
	cs := r.CounterSamples()
	if len(cs) != 2 {
		t.Fatalf("got %d samples, want 2", len(cs))
	}
	if cs[0].At != sim.Time(0.5) || cs[0].Value != 1.0 {
		t.Fatalf("sample[0] = %+v, want bucket midpoint at full utilization", cs[0])
	}
}
