package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"bgqflow/internal/stats"
)

// Counter is a monotonically increasing integer metric. It is safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float metric. It is safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reports the last value set (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram collects a sample distribution; snapshots summarize it with
// the percentile math from internal/stats. Non-finite observations are
// dropped and counted — one stray NaN from an instrumentation site must
// not poison the percentile summaries of a whole -metrics snapshot. It
// is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	dropped int
}

// Observe records one sample; NaN and ±Inf are dropped and counted.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.dropped++
	} else {
		h.samples = append(h.samples, x)
	}
	h.mu.Unlock()
}

// Dropped reports how many non-finite observations were discarded.
func (h *Histogram) Dropped() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// HistSummary is a histogram's snapshot: descriptive statistics plus
// interpolated percentiles. Dropped counts discarded non-finite
// observations so a snapshot distinguishes "clean sample" from
// "summaries computed around bad data".
type HistSummary struct {
	N       int     `json:"n"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	Stddev  float64 `json:"stddev"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Dropped int     `json:"dropped,omitempty"`
}

// Summary computes the histogram's snapshot; an empty histogram returns
// the zero value.
func (h *Histogram) Summary() HistSummary {
	h.mu.Lock()
	xs := append([]float64(nil), h.samples...)
	dropped := h.dropped
	h.mu.Unlock()
	s := stats.Summarize(xs)
	out := HistSummary{N: s.N, Min: s.Min, Max: s.Max, Mean: s.Mean, Stddev: s.Stddev,
		Dropped: dropped + s.Dropped}
	if s.N > 0 {
		out.P50 = stats.Percentile(xs, 50)
		out.P90 = stats.Percentile(xs, 90)
		out.P99 = stats.Percentile(xs, 99)
	}
	return out
}

// Registry names and owns metrics. Components register (or re-find) a
// metric by name on first use; the registry hands back the same instance
// for the same name, so instrumentation sites need no shared setup. Safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MetricsSnapshot is a registry's flat point-in-time export.
type MetricsSnapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	snap := MetricsSnapshot{}
	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			snap.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges))
		for k, v := range gauges {
			snap.Gauges[k] = v.Value()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistSummary, len(hists))
		for k, v := range hists {
			snap.Histograms[k] = v.Summary()
		}
	}
	return snap
}

// Names reports every registered metric name, sorted, for diagnostics.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.hists {
		names = append(names, k)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// WriteJSON serializes the snapshot, indented, with a trailing newline.
func (s MetricsSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadMetricsSnapshot parses a previously written snapshot.
func ReadMetricsSnapshot(r io.Reader) (MetricsSnapshot, error) {
	var s MetricsSnapshot
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}
