package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bgqflow/internal/stats"
)

// Counter is a monotonically increasing integer metric. It is safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float metric. It is safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reports the last value set (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram collects a sample distribution; snapshots summarize it with
// the percentile math from internal/stats. Non-finite observations are
// dropped and counted — one stray NaN from an instrumentation site must
// not poison the percentile summaries of a whole -metrics snapshot. It
// is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	dropped int
}

// Observe records one sample; NaN and ±Inf are dropped and counted.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.dropped++
	} else {
		h.samples = append(h.samples, x)
	}
	h.mu.Unlock()
}

// Dropped reports how many non-finite observations were discarded.
func (h *Histogram) Dropped() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// HistSummary is a histogram's snapshot: descriptive statistics plus
// interpolated percentiles. Dropped counts discarded non-finite
// observations so a snapshot distinguishes "clean sample" from
// "summaries computed around bad data".
type HistSummary struct {
	N       int     `json:"n"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	Stddev  float64 `json:"stddev"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Dropped int     `json:"dropped,omitempty"`
}

// Summary computes the histogram's snapshot; an empty histogram returns
// the zero value.
func (h *Histogram) Summary() HistSummary {
	h.mu.Lock()
	xs := append([]float64(nil), h.samples...)
	dropped := h.dropped
	h.mu.Unlock()
	s := stats.Summarize(xs)
	out := HistSummary{N: s.N, Min: s.Min, Max: s.Max, Mean: s.Mean, Stddev: s.Stddev,
		Dropped: dropped + s.Dropped}
	if s.N > 0 {
		out.P50 = stats.Percentile(xs, 50)
		out.P90 = stats.Percentile(xs, 90)
		out.P99 = stats.Percentile(xs, 99)
	}
	return out
}

// MetricKindError reports a metric name registered under two different
// kinds — e.g. obs.Counter("x") at one site and obs.Gauge("x") at
// another. Before this guard the collision was silent: the two sites got
// distinct metrics under one name and every flat export carried the
// ambiguity. It is delivered as a typed panic value naming both
// registration call sites, so the offending instrumentation lines are in
// the panic message itself.
type MetricKindError struct {
	Name    string // metric name
	Kind    string // kind of the existing registration
	Site    string // file:line of the existing registration
	NewKind string // kind of the conflicting registration
	NewSite string // file:line of the conflicting registration
}

func (e *MetricKindError) Error() string {
	return fmt.Sprintf("obs: metric %q registered as %s (at %s) and %s (at %s): one name, one kind",
		e.Name, e.Kind, e.Site, e.NewKind, e.NewSite)
}

// metricReg remembers how (and where) a name was first registered.
type metricReg struct {
	kind string
	site string
}

// callerSite formats the instrumentation call site for kind-collision
// diagnostics. skip counts frames above the exported Registry method.
func callerSite(skip int) string {
	if _, file, line, ok := runtime.Caller(skip); ok {
		return fmt.Sprintf("%s:%d", file, line)
	}
	return "unknown"
}

// Registry names and owns metrics. Components register (or re-find) a
// metric by name on first use; the registry hands back the same instance
// for the same name, so instrumentation sites need no shared setup. A
// name is bound to one metric kind: reusing it with a different kind
// panics with a *MetricKindError naming both call sites. Safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	wcounts  map[string]*WindowCounter
	whists   map[string]*WindowHistogram
	kinds    map[string]metricReg
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		wcounts:  make(map[string]*WindowCounter),
		whists:   make(map[string]*WindowHistogram),
		kinds:    make(map[string]metricReg),
	}
}

// bindKindLocked registers (or re-checks) a name's kind; a cross-kind
// reuse panics with a *MetricKindError. Caller holds r.mu.
func (r *Registry) bindKindLocked(name, kind string) {
	prev, ok := r.kinds[name]
	if !ok {
		r.kinds[name] = metricReg{kind: kind, site: callerSite(3)}
		return
	}
	if prev.kind != kind {
		panic(&MetricKindError{Name: name, Kind: prev.kind, Site: prev.site,
			NewKind: kind, NewSite: callerSite(3)})
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		r.bindKindLocked(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		r.bindKindLocked(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		r.bindKindLocked(name, "histogram")
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// WindowCounter returns the named rolling-window counter, creating it
// with the given window on first use (the first registration's window
// wins; later callers get the existing instance).
func (r *Registry) WindowCounter(name string, window time.Duration) *WindowCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.wcounts[name]
	if !ok {
		r.bindKindLocked(name, "window_counter")
		c = NewWindowCounter(window)
		r.wcounts[name] = c
	}
	return c
}

// WindowHistogram returns the named rolling-window histogram, creating
// it with the given window on first use (first registration's window
// wins).
func (r *Registry) WindowHistogram(name string, window time.Duration) *WindowHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.whists[name]
	if !ok {
		r.bindKindLocked(name, "window_histogram")
		h = NewWindowHistogram(window)
		r.whists[name] = h
	}
	return h
}

// findWindowCounter looks a window counter up without creating it (SLO
// evaluation must not invent metrics for misspelled spec names).
func (r *Registry) findWindowCounter(name string) (*WindowCounter, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.wcounts[name]
	return c, ok
}

// findWindowHistogram looks a window histogram up without creating it.
func (r *Registry) findWindowHistogram(name string) (*WindowHistogram, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.whists[name]
	return h, ok
}

// MetricsSnapshot is a registry's flat point-in-time export.
type MetricsSnapshot struct {
	Counters         map[string]int64                `json:"counters,omitempty"`
	Gauges           map[string]float64              `json:"gauges,omitempty"`
	Histograms       map[string]HistSummary          `json:"histograms,omitempty"`
	WindowCounters   map[string]WindowCounterSummary `json:"windowCounters,omitempty"`
	WindowHistograms map[string]WindowHistSummary    `json:"windowHistograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	wcounts := make(map[string]*WindowCounter, len(r.wcounts))
	for k, v := range r.wcounts {
		wcounts[k] = v
	}
	whists := make(map[string]*WindowHistogram, len(r.whists))
	for k, v := range r.whists {
		whists[k] = v
	}
	r.mu.Unlock()

	snap := MetricsSnapshot{}
	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			snap.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges))
		for k, v := range gauges {
			snap.Gauges[k] = v.Value()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistSummary, len(hists))
		for k, v := range hists {
			snap.Histograms[k] = v.Summary()
		}
	}
	if len(wcounts) > 0 {
		snap.WindowCounters = make(map[string]WindowCounterSummary, len(wcounts))
		for k, v := range wcounts {
			snap.WindowCounters[k] = v.Summary()
		}
	}
	if len(whists) > 0 {
		snap.WindowHistograms = make(map[string]WindowHistSummary, len(whists))
		for k, v := range whists {
			snap.WindowHistograms[k] = v.Summary()
		}
	}
	return snap
}

// Names reports every registered metric name, sorted, for diagnostics.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.kinds))
	for k := range r.kinds {
		names = append(names, k)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// WriteJSON serializes the snapshot, indented, with a trailing newline.
func (s MetricsSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadMetricsSnapshot parses a previously written snapshot.
func ReadMetricsSnapshot(r io.Reader) (MetricsSnapshot, error) {
	var s MetricsSnapshot
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}
