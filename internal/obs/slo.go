package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// SLO tracking over the rolling-window metrics: a spec names an
// objective ("p99 plan latency under 5ms", "shed ratio under 50%",
// "resume success over 99%"), the tracker evaluates every spec against
// the live windows and accumulates burn counters — how many evaluations
// have ever breached — so a soak script can gate on "zero breaches over
// the whole run" rather than one lucky final sample.

// SLO spec kinds.
const (
	// SLOLatencyP99 breaches when the window histogram's p99 exceeds
	// Threshold. Vacuous (never breaches) while the window is empty.
	SLOLatencyP99 = "latency_p99_max"
	// SLORatioMax breaches when Metric/Denominator exceeds Threshold.
	// Vacuous while the denominator window is empty.
	SLORatioMax = "ratio_max"
	// SLORatioMin breaches when Metric/Denominator falls below
	// Threshold. Vacuous while the denominator window is empty.
	SLORatioMin = "ratio_min"
)

// SLOSpec is one named objective over rolling-window metrics.
type SLOSpec struct {
	// Name labels the objective in verdicts and burn counters.
	Name string `json:"name"`
	// Kind is one of SLOLatencyP99, SLORatioMax, SLORatioMin.
	Kind string `json:"kind"`
	// Metric names the window histogram (latency kinds) or the numerator
	// window counter (ratio kinds).
	Metric string `json:"metric"`
	// Denominator names the ratio kinds' denominator window counter.
	Denominator string `json:"denominator,omitempty"`
	// Threshold is the objective's bound (same unit as the metric for
	// latency, a 0..1 fraction for ratios).
	Threshold float64 `json:"threshold"`
}

// Validate rejects malformed specs up front (bgqd flag parsing calls
// this so a typo exits 2 instead of silently never evaluating).
func (s SLOSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("obs: SLO spec needs a name")
	}
	if s.Metric == "" {
		return fmt.Errorf("obs: SLO %q needs a metric", s.Name)
	}
	switch s.Kind {
	case SLOLatencyP99:
		if s.Threshold <= 0 {
			return fmt.Errorf("obs: SLO %q threshold %g must be > 0", s.Name, s.Threshold)
		}
	case SLORatioMax, SLORatioMin:
		if s.Denominator == "" {
			return fmt.Errorf("obs: ratio SLO %q needs a denominator", s.Name)
		}
		if s.Threshold < 0 || s.Threshold > 1 {
			return fmt.Errorf("obs: ratio SLO %q threshold %g outside [0,1]", s.Name, s.Threshold)
		}
	default:
		return fmt.Errorf("obs: SLO %q has unknown kind %q", s.Name, s.Kind)
	}
	return nil
}

// SLOVerdict is one objective's evaluation.
type SLOVerdict struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Metric    string  `json:"metric"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Breached reports the current evaluation's outcome.
	Breached bool `json:"breached"`
	// Vacuous marks an evaluation with no data in the window (never a
	// breach: an idle daemon is not out of SLO).
	Vacuous bool `json:"vacuous,omitempty"`
	// Breaches and Evals are the tracker's cumulative burn counters;
	// BurnRate is their ratio. A soak gate wants Breaches == 0.
	Breaches int64   `json:"breaches"`
	Evals    int64   `json:"evals"`
	BurnRate float64 `json:"burnRate"`
}

// SLOTracker evaluates a fixed spec set against one registry's window
// metrics and accumulates per-objective burn counters. Burn counters are
// mirrored into the registry as slo/<name>/breaches and
// slo/<name>/evals, so they ride along in every metrics export. Safe for
// concurrent use.
type SLOTracker struct {
	reg   *Registry
	specs []SLOSpec

	mu       sync.Mutex
	breaches []int64
	evals    []int64
}

// NewSLOTracker builds a tracker; every spec must Validate.
func NewSLOTracker(reg *Registry, specs []SLOSpec) (*SLOTracker, error) {
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	return &SLOTracker{
		reg:      reg,
		specs:    append([]SLOSpec(nil), specs...),
		breaches: make([]int64, len(specs)),
		evals:    make([]int64, len(specs)),
	}, nil
}

// Specs returns the tracked objectives.
func (t *SLOTracker) Specs() []SLOSpec { return append([]SLOSpec(nil), t.specs...) }

// Evaluate runs every objective against the current windows, bumps the
// burn counters, and returns the verdicts in spec order.
func (t *SLOTracker) Evaluate() []SLOVerdict {
	out := make([]SLOVerdict, len(t.specs))
	for i, spec := range t.specs {
		v := SLOVerdict{Name: spec.Name, Kind: spec.Kind, Metric: spec.Metric, Threshold: spec.Threshold}
		switch spec.Kind {
		case SLOLatencyP99:
			h, ok := t.reg.findWindowHistogram(spec.Metric)
			if !ok {
				v.Vacuous = true
				break
			}
			sum := h.Summary()
			if sum.N == 0 {
				v.Vacuous = true
				break
			}
			v.Value = sum.P99
			v.Breached = v.Value > spec.Threshold
		case SLORatioMax, SLORatioMin:
			num, okN := t.reg.findWindowCounter(spec.Metric)
			den, okD := t.reg.findWindowCounter(spec.Denominator)
			if !okN || !okD {
				v.Vacuous = true
				break
			}
			d := den.Total()
			if d == 0 {
				v.Vacuous = true
				break
			}
			v.Value = float64(num.Total()) / float64(d)
			if spec.Kind == SLORatioMax {
				v.Breached = v.Value > spec.Threshold
			} else {
				v.Breached = v.Value < spec.Threshold
			}
		}
		out[i] = v
	}

	t.mu.Lock()
	for i := range out {
		t.evals[i]++
		if out[i].Breached {
			t.breaches[i]++
		}
		out[i].Evals = t.evals[i]
		out[i].Breaches = t.breaches[i]
		out[i].BurnRate = float64(out[i].Breaches) / float64(out[i].Evals)
	}
	t.mu.Unlock()

	for i, v := range out {
		t.reg.Counter("slo/" + t.specs[i].Name + "/evals").Inc()
		if v.Breached {
			t.reg.Counter("slo/" + t.specs[i].Name + "/breaches").Inc()
		}
	}
	return out
}

// SLOSnapshot is the wire form of a tracker evaluation (the GET /v1/slo
// body, and the -slo-out artifact bgqload archives).
type SLOSnapshot struct {
	Enabled   bool         `json:"enabled"`
	WindowSec float64      `json:"windowSec,omitempty"`
	Verdicts  []SLOVerdict `json:"verdicts,omitempty"`
}

// Breached reports whether any objective has ever breached (the soak
// gate condition).
func (s SLOSnapshot) Breached() bool {
	for _, v := range s.Verdicts {
		if v.Breaches > 0 {
			return true
		}
	}
	return false
}

// WriteJSON serializes the snapshot, indented, with a trailing newline.
func (s SLOSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSLOSnapshot parses a previously written snapshot.
func ReadSLOSnapshot(r io.Reader) (SLOSnapshot, error) {
	var s SLOSnapshot
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}
