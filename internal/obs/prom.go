package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for a MetricsSnapshot, plus
// a minimal parser for the same subset — enough for the round-trip test
// and for scrape-side tooling without importing a client library (the
// repo is dependency-free by policy).
//
// Mapping:
//   - counters    -> `# TYPE <name> counter`, one sample
//   - gauges      -> `# TYPE <name> gauge`, one sample
//   - histograms  -> `# TYPE <name> summary`: quantile-labeled samples
//     (0.5/0.9/0.99) plus <name>_sum / <name>_count
//   - window counters -> gauge pair <name>_window_total /
//     <name>_window_rate, labeled {window="30s"}
//   - window histograms -> summary labeled {window="30s"} (the windowed
//     p50/p90/p99 a live dashboard wants), plus _sum / _count
//
// Metric names are sanitized to the Prometheus charset: every character
// outside [a-zA-Z0-9_:] becomes '_' (so "serve/latency_ms/pair" exports
// as "serve_latency_ms_pair").

// PromName sanitizes a registry metric name into the Prometheus charset.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func windowLabel(sec float64) string {
	return fmt.Sprintf("{window=%q}", strconv.FormatFloat(sec, 'g', -1, 64)+"s")
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format, deterministically ordered by metric name.
func (s MetricsSnapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := PromName(k)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k])
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := PromName(k)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[k]))
	}

	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := PromName(k)
		h := s.Histograms[k]
		fmt.Fprintf(bw, "# TYPE %s summary\n", n)
		fmt.Fprintf(bw, "%s{quantile=\"0.5\"} %s\n", n, promFloat(h.P50))
		fmt.Fprintf(bw, "%s{quantile=\"0.9\"} %s\n", n, promFloat(h.P90))
		fmt.Fprintf(bw, "%s{quantile=\"0.99\"} %s\n", n, promFloat(h.P99))
		fmt.Fprintf(bw, "%s_sum %s\n", n, promFloat(h.Mean*float64(h.N)))
		fmt.Fprintf(bw, "%s_count %d\n", n, h.N)
	}

	names = names[:0]
	for k := range s.WindowCounters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := PromName(k)
		c := s.WindowCounters[k]
		lbl := windowLabel(c.WindowSec)
		fmt.Fprintf(bw, "# TYPE %s_window_total gauge\n%s_window_total%s %d\n", n, n, lbl, c.Total)
		fmt.Fprintf(bw, "# TYPE %s_window_rate gauge\n%s_window_rate%s %s\n", n, n, lbl, promFloat(c.Rate))
	}

	names = names[:0]
	for k := range s.WindowHistograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := PromName(k) + "_window"
		h := s.WindowHistograms[k]
		lbl := windowLabel(h.WindowSec)
		fmt.Fprintf(bw, "# TYPE %s summary\n", n)
		fmt.Fprintf(bw, "%s{quantile=\"0.5\",window=%q} %s\n", n, promFloat(h.WindowSec)+"s", promFloat(h.P50))
		fmt.Fprintf(bw, "%s{quantile=\"0.9\",window=%q} %s\n", n, promFloat(h.WindowSec)+"s", promFloat(h.P90))
		fmt.Fprintf(bw, "%s{quantile=\"0.99\",window=%q} %s\n", n, promFloat(h.WindowSec)+"s", promFloat(h.P99))
		fmt.Fprintf(bw, "%s_sum%s %s\n", n, lbl, promFloat(h.Mean*float64(h.N)))
		fmt.Fprintf(bw, "%s_count%s %d\n", n, lbl, h.N)
	}

	return bw.Flush()
}

// PromSample is one parsed exposition sample: the metric name, its label
// set in the exact serialized form (including braces, "" when bare), and
// the value.
type PromSample struct {
	Name   string
	Labels string
	Value  float64
}

// PromScrape is a parsed exposition page.
type PromScrape struct {
	// Types maps metric name -> declared TYPE.
	Types map[string]string
	// Samples holds every sample line in page order.
	Samples []PromSample
}

// Value finds a sample by name and serialized label set ("" for bare
// samples); ok is false when absent.
func (p PromScrape) Value(name, labels string) (float64, bool) {
	for _, s := range p.Samples {
		if s.Name == name && s.Labels == labels {
			return s.Value, true
		}
	}
	return 0, false
}

// ParsePrometheusText parses the subset of the text exposition format
// WritePrometheus emits: `# TYPE` comments, bare samples, and samples
// with a label set. Other comment lines are skipped; a malformed sample
// line is an error.
func ParsePrometheusText(r io.Reader) (PromScrape, error) {
	out := PromScrape{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				out.Types[fields[2]] = fields[3]
			}
			continue
		}
		// A sample: name[{labels}] value [timestamp].
		name := line
		labels := ""
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				return out, fmt.Errorf("obs: malformed prometheus sample %q", line)
			}
			name = line[:i]
			labels = line[i : j+1]
			rest = strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return out, fmt.Errorf("obs: malformed prometheus sample %q", line)
			}
			name = fields[0]
			rest = fields[1]
		}
		valStr := strings.Fields(rest)
		if len(valStr) == 0 {
			return out, fmt.Errorf("obs: prometheus sample %q has no value", line)
		}
		v, err := strconv.ParseFloat(valStr[0], 64)
		if err != nil {
			return out, fmt.Errorf("obs: prometheus sample %q: %w", line, err)
		}
		out.Samples = append(out.Samples, PromSample{Name: name, Labels: labels, Value: v})
	}
	return out, sc.Err()
}
