package obs

import (
	"math"
	"sort"
	"sync"

	"bgqflow/internal/sim"
)

// LinkTimeline accumulates per-link traffic into fixed-width time
// buckets. It is fed by the engine's LinkWindow charges (every byte the
// engine accounts to a link arrives here with the window it crossed the
// wire in), so the bucket series integrates to exactly the engine's
// cumulative link byte counters while adding the time dimension the
// end-of-run aggregates lack. Safe for concurrent use.
type LinkTimeline struct {
	mu      sync.Mutex
	bucket  sim.Duration
	bytes   map[int][]float64
	dropped int64 // windows discarded (non-positive bytes, inverted, non-finite)
	clamped int64 // windows with from < 0 clamped to start at 0
	reg     *Registry
}

// NewLinkTimeline returns a timeline with the given bucket width.
// Non-positive widths panic: a timeline without a time base is a bug.
func NewLinkTimeline(bucket sim.Duration) *LinkTimeline {
	if bucket <= 0 {
		panic("obs: non-positive timeline bucket")
	}
	return &LinkTimeline{bucket: bucket, bytes: make(map[int][]float64)}
}

// Bucket reports the bucket width.
func (t *LinkTimeline) Bucket() sim.Duration { return t.bucket }

// SetRegistry attaches a metrics registry: dropped and clamped window
// counts are mirrored into "obs/timeline/windows_dropped" and
// "obs/timeline/windows_clamped" as they occur, so a -metrics snapshot
// carries them alongside the series they taint. Pass nil to detach.
func (t *LinkTimeline) SetRegistry(reg *Registry) {
	t.mu.Lock()
	t.reg = reg
	t.mu.Unlock()
}

// DroppedWindows reports how many Add calls were discarded outright
// (non-positive or non-finite byte counts, inverted windows). A
// conservation check that sees DroppedWindows() == 0 knows a timeline
// deficit means "no traffic", not "discarded traffic".
func (t *LinkTimeline) DroppedWindows() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// ClampedWindows reports how many windows started before t=0 and were
// clamped to start at 0 (their bytes are all recorded, shifted into the
// valid range).
func (t *LinkTimeline) ClampedWindows() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clamped
}

// Add attributes b bytes carried by link across [from, to], spreading
// them over the buckets the window covers proportionally to overlap. A
// zero-width window charges the whole amount to the bucket containing
// to. Non-positive/non-finite amounts and inverted windows are dropped
// and counted; a window starting before t=0 is clamped to start at 0
// and counted — either way the counters distinguish "no traffic" from
// "discarded traffic" (see DroppedWindows).
func (t *LinkTimeline) Add(link int, from, to sim.Time, b float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !(b > 0) || math.IsInf(b, 0) || !(to >= from) || to < 0 || math.IsInf(float64(to), 0) {
		t.dropped++
		if t.reg != nil {
			t.reg.Counter("obs/timeline/windows_dropped").Inc()
		}
		return
	}
	if from < 0 {
		from = 0
		t.clamped++
		if t.reg != nil {
			t.reg.Counter("obs/timeline/windows_clamped").Inc()
		}
	}
	w := float64(t.bucket)
	last := int(float64(to) / w)
	// A window ending exactly on a bucket boundary contributes nothing to
	// the bucket that starts there; don't materialize it.
	if to > from && float64(last)*w == float64(to) {
		last--
	}
	series := t.grow(link, last)
	if to == from {
		series[last] += b
		return
	}
	first := int(float64(from) / w)
	span := float64(to - from)
	for i := first; i <= last; i++ {
		lo, hi := float64(i)*w, float64(i+1)*w
		if lo < float64(from) {
			lo = float64(from)
		}
		if hi > float64(to) {
			hi = float64(to)
		}
		if hi > lo {
			series[i] += b * (hi - lo) / span
		}
	}
}

// grow ensures link's series reaches bucket index i; callers hold mu.
func (t *LinkTimeline) grow(link, i int) []float64 {
	s := t.bytes[link]
	for len(s) <= i {
		s = append(s, 0)
	}
	t.bytes[link] = s
	return s
}

// Links reports the links with any recorded traffic, ascending.
func (t *LinkTimeline) Links() []int {
	t.mu.Lock()
	out := make([]int, 0, len(t.bytes))
	for l := range t.bytes {
		out = append(out, l)
	}
	t.mu.Unlock()
	sort.Ints(out)
	return out
}

// Series returns a copy of link's per-bucket byte counts (empty when the
// link carried nothing).
func (t *LinkTimeline) Series(link int) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]float64(nil), t.bytes[link]...)
}

// Utilization returns link's per-bucket utilization against the given
// capacity (bytes/second): bucketBytes / (capacity * bucketWidth).
func (t *LinkTimeline) Utilization(link int, capacity float64) []float64 {
	s := t.Series(link)
	denom := capacity * float64(t.bucket)
	if denom <= 0 {
		return s
	}
	for i := range s {
		s[i] /= denom
	}
	return s
}

// TimelineSink adapts a LinkTimeline into the Sink interface for callers
// that only want the time-bucketed utilization (no spans or metrics):
// every emission except LinkWindow is a no-op.
type TimelineSink struct {
	TL *LinkTimeline
}

var _ Sink = TimelineSink{}

// FlowActivated implements Sink as a no-op.
func (TimelineSink) FlowActivated(now sim.Time, id int, label string) {}

// FlowEnded implements Sink as a no-op.
func (TimelineSink) FlowEnded(now, activated sim.Time, id int, label string, bytes int64, aborted bool) {
}

// SweepDone implements Sink as a no-op.
func (TimelineSink) SweepDone(now sim.Time, flows, links int, full bool) {}

// FailureApplied implements Sink as a no-op.
func (TimelineSink) FailureApplied(now sim.Time, node int, isNode bool, links int) {}

// LinkWindow implements Sink: it feeds the timeline.
func (s TimelineSink) LinkWindow(link int, from, to sim.Time, bytes float64) {
	s.TL.Add(link, from, to, bytes)
}

// TotalBytes reports the sum over link's buckets — by construction equal
// (up to float rounding) to the engine's cumulative counter for the link.
func (t *LinkTimeline) TotalBytes(link int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum float64
	for _, b := range t.bytes[link] {
		sum += b
	}
	return sum
}
