package obs

import (
	"math"
	"sync"
	"time"

	"bgqflow/internal/stats"
)

// Rolling time-window metrics. The cumulative Counter/Histogram types
// answer "what happened since the daemon started"; these answer "what is
// happening right now", which is what SLO evaluation and live dashboards
// need. Both are slotted rings: the window is divided into windowSlots
// equal slots keyed by an absolute slot epoch, so advancing time lazily
// retires stale slots without a background goroutine, and reading is an
// O(slots) scan. All methods are safe for concurrent use.

// windowSlots is the ring resolution: a 30s window forgets samples in
// ~1.9s granularity steps.
const windowSlots = 16

// maxSlotSamples bounds per-slot histogram retention; observations past
// it overwrite earlier samples in the slot round-robin (percentiles are
// then computed on a uniform-ish tail sample, while N keeps the true
// observation count).
const maxSlotSamples = 4096

// WindowCounter counts events over a rolling window.
type WindowCounter struct {
	mu     sync.Mutex
	window time.Duration
	slot   time.Duration
	counts [windowSlots]int64
	epochs [windowSlots]int64
	now    func() time.Time
}

// NewWindowCounter builds a counter over the given rolling window (min
// 1s). A window that does not divide evenly into windowSlots is rounded
// up to the next multiple, never down: truncating the slot would retain
// strictly less than the requested window (16 truncated slots fall
// short by up to windowSlots-1 ns), so Rate and Summary would divide by
// a window the ring never actually covers. Window() reports the
// effective (rounded) value.
func NewWindowCounter(window time.Duration) *WindowCounter {
	slot, window := slotSize(window)
	return &WindowCounter{window: window, slot: slot, now: time.Now}
}

// slotSize derives the slot length for a requested window (min 1s),
// rounding the slot up and the effective window with it so slot *
// windowSlots == window always holds.
func slotSize(window time.Duration) (slot, effective time.Duration) {
	if window < time.Second {
		window = time.Second
	}
	slot = (window + windowSlots - 1) / windowSlots
	return slot, slot * windowSlots
}

// SetClock replaces the clock (tests); not safe concurrently with use.
func (c *WindowCounter) SetClock(now func() time.Time) { c.now = now }

// Window reports the configured window length.
func (c *WindowCounter) Window() time.Duration { return c.window }

// slotFor returns the ring index for the current instant, zeroing the
// slot if it belonged to an older epoch. Caller holds c.mu.
func (c *WindowCounter) slotFor() int {
	epoch := c.now().UnixNano() / int64(c.slot)
	i := int(epoch % windowSlots)
	if c.epochs[i] != epoch {
		c.epochs[i] = epoch
		c.counts[i] = 0
	}
	return i
}

// Add counts n events now.
func (c *WindowCounter) Add(n int64) {
	c.mu.Lock()
	c.counts[c.slotFor()] += n
	c.mu.Unlock()
}

// Inc counts one event now.
func (c *WindowCounter) Inc() { c.Add(1) }

// Total sums the events inside the window.
func (c *WindowCounter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	epoch := c.now().UnixNano() / int64(c.slot)
	var total int64
	for i := 0; i < windowSlots; i++ {
		if age := epoch - c.epochs[i]; age >= 0 && age < windowSlots {
			total += c.counts[i]
		}
	}
	return total
}

// Rate reports events per second over the window.
func (c *WindowCounter) Rate() float64 {
	return float64(c.Total()) / c.window.Seconds()
}

// WindowCounterSummary is a window counter's snapshot.
type WindowCounterSummary struct {
	Total     int64   `json:"total"`
	Rate      float64 `json:"ratePerSec"`
	WindowSec float64 `json:"windowSec"`
}

// Summary snapshots the counter.
func (c *WindowCounter) Summary() WindowCounterSummary {
	t := c.Total()
	return WindowCounterSummary{Total: t, Rate: float64(t) / c.window.Seconds(), WindowSec: c.window.Seconds()}
}

// WindowHistogram summarizes a sample distribution over a rolling
// window. NaN and ±Inf observations are dropped and counted, matching
// the cumulative Histogram's guard.
type WindowHistogram struct {
	mu      sync.Mutex
	window  time.Duration
	slot    time.Duration
	samples [windowSlots][]float64
	seen    [windowSlots]int64 // observations per slot incl. overwritten
	epochs  [windowSlots]int64
	dropped [windowSlots]int64
	now     func() time.Time
}

// NewWindowHistogram builds a histogram over the given rolling window
// (min 1s), rounded up to a windowSlots multiple exactly like
// NewWindowCounter.
func NewWindowHistogram(window time.Duration) *WindowHistogram {
	slot, window := slotSize(window)
	return &WindowHistogram{window: window, slot: slot, now: time.Now}
}

// SetClock replaces the clock (tests); not safe concurrently with use.
func (h *WindowHistogram) SetClock(now func() time.Time) { h.now = now }

// Window reports the configured window length.
func (h *WindowHistogram) Window() time.Duration { return h.window }

func (h *WindowHistogram) slotFor() int {
	epoch := h.now().UnixNano() / int64(h.slot)
	i := int(epoch % windowSlots)
	if h.epochs[i] != epoch {
		h.epochs[i] = epoch
		h.samples[i] = h.samples[i][:0]
		h.seen[i] = 0
		h.dropped[i] = 0
	}
	return i
}

// Observe records one sample now; non-finite values are dropped and
// counted.
func (h *WindowHistogram) Observe(x float64) {
	h.mu.Lock()
	i := h.slotFor()
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.dropped[i]++
	} else if len(h.samples[i]) < maxSlotSamples {
		h.samples[i] = append(h.samples[i], x)
		h.seen[i]++
	} else {
		h.samples[i][h.seen[i]%maxSlotSamples] = x
		h.seen[i]++
	}
	h.mu.Unlock()
}

// WindowHistSummary is a window histogram's snapshot: HistSummary
// percentiles computed over the live window, plus the observation rate.
type WindowHistSummary struct {
	HistSummary
	Rate      float64 `json:"ratePerSec"`
	WindowSec float64 `json:"windowSec"`
}

// Summary snapshots the window. N counts every in-window observation
// (including those rotated out of a full slot's retention buffer); the
// percentiles are computed over the retained samples.
func (h *WindowHistogram) Summary() WindowHistSummary {
	h.mu.Lock()
	epoch := h.now().UnixNano() / int64(h.slot)
	var xs []float64
	var seen, dropped int64
	for i := 0; i < windowSlots; i++ {
		if age := epoch - h.epochs[i]; age >= 0 && age < windowSlots {
			xs = append(xs, h.samples[i]...)
			seen += h.seen[i]
			dropped += h.dropped[i]
		}
	}
	h.mu.Unlock()

	s := stats.Summarize(xs)
	out := WindowHistSummary{
		HistSummary: HistSummary{N: int(seen), Min: s.Min, Max: s.Max, Mean: s.Mean,
			Stddev: s.Stddev, Dropped: int(dropped) + s.Dropped},
		Rate:      float64(seen) / h.window.Seconds(),
		WindowSec: h.window.Seconds(),
	}
	if s.N > 0 {
		out.P50 = stats.Percentile(xs, 50)
		out.P90 = stats.Percentile(xs, 90)
		out.P99 = stats.Percentile(xs, 99)
	}
	return out
}
