package check

import (
	"fmt"

	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

// CheckProxyDisjoint verifies Algorithm 1's structural guarantee on a
// selected proxy set: every leg starts and ends where the plan says it
// does, and all legs — both legs of one proxy and any legs of different
// proxies — are pairwise link-disjoint. Link-disjointness is the whole
// point of the multipath transfer (the paper's Section IV-B): two legs
// sharing a link would halve each other's bandwidth and void the k/2
// gain of Eq. 5.
func CheckProxyDisjoint(proxies []core.ProxyRoute) []Violation {
	var viols []Violation
	type leg struct {
		name  string
		route routing.Route
	}
	var legs []leg
	for i, pr := range proxies {
		if pr.Leg1.Dst != pr.Proxy || pr.Leg2.Src != pr.Proxy {
			viols = append(viols, Violation{
				Invariant: "proxy-disjoint",
				Detail:    fmt.Sprintf("proxy %d legs do not meet at node %d (leg1 %d->%d, leg2 %d->%d)", i, pr.Proxy, pr.Leg1.Src, pr.Leg1.Dst, pr.Leg2.Src, pr.Leg2.Dst),
			})
		}
		legs = append(legs,
			leg{fmt.Sprintf("proxy%d/leg1", i), pr.Leg1},
			leg{fmt.Sprintf("proxy%d/leg2", i), pr.Leg2},
		)
	}
	for i := range legs {
		for j := i + 1; j < len(legs); j++ {
			if routing.SharesLink(legs[i].route, legs[j].route) {
				viols = append(viols, Violation{
					Invariant: "proxy-disjoint",
					Detail:    fmt.Sprintf("%s and %s share a link", legs[i].name, legs[j].name),
				})
			}
		}
	}
	return viols
}

// IONBytesFromFlows recovers the per-I/O-node byte load of a planned
// aggregation burst from the engine's submitted flows, by the
// "agg%d->ion%d" labels Algorithm 2 stamps on every fabric flow.
func IONBytesFromFlows(e *netsim.Engine, numPsets int) []int64 {
	out := make([]int64, numPsets)
	for i := 0; i < e.NumFlows(); i++ {
		spec := e.Spec(netsim.FlowID(i))
		var agg, pset int
		if n, err := fmt.Sscanf(spec.Label, "agg%d->ion%d", &agg, &pset); err != nil || n != 2 {
			continue
		}
		if pset >= 0 && pset < numPsets {
			out[pset] += spec.Bytes
		}
	}
	return out
}

// CheckAggBalance verifies Algorithm 2's balance bound: with round-robin
// assignment over pset-interleaved aggregators, per-I/O-node sender
// counts differ by at most one, so per-I/O-node bytes differ by at most
// the largest single message. ionBytes is the per-pset load (e.g. from
// IONBytesFromFlows); maxMsg is the largest coalesced per-node message
// in the burst.
func CheckAggBalance(ionBytes []int64, maxMsg int64) []Violation {
	if len(ionBytes) == 0 {
		return nil
	}
	lo, hi := ionBytes[0], ionBytes[0]
	for _, b := range ionBytes[1:] {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	if hi-lo > maxMsg {
		return []Violation{{
			Invariant: "agg-balance",
			Detail:    fmt.Sprintf("I/O node byte spread %d exceeds largest message %d (loads %v)", hi-lo, maxMsg, ionBytes),
		}}
	}
	return nil
}

// CheckAggInterleave verifies the structural precondition the balance
// bound rests on: the global aggregator list cycles through the psets
// (aggs[i].Pset == i mod numPsets), so ANY prefix — which is all a burst
// with few senders uses — spreads evenly over I/O nodes, and each pset's
// aggregators alternate over its bridge nodes.
func CheckAggInterleave(aggs []core.Aggregator, numPsets, bridges int) []Violation {
	var viols []Violation
	for i, ag := range aggs {
		if ag.Pset != i%numPsets {
			viols = append(viols, Violation{
				Invariant: "agg-interleave",
				Detail:    fmt.Sprintf("aggs[%d] on pset %d, want %d", i, ag.Pset, i%numPsets),
			})
		}
		if want := (i / numPsets) % bridges; ag.Bridge != want {
			viols = append(viols, Violation{
				Invariant: "agg-interleave",
				Detail:    fmt.Sprintf("aggs[%d] on bridge %d, want %d", i, ag.Bridge, want),
			})
		}
	}
	return viols
}

// CheckRouteCache verifies that cached routes equal freshly computed
// ones for every given pair, across epochs splits with an Invalidate
// between each, and that the hit/miss counters account for every lookup
// (ISSUE: "cache-on vs cache-off route equality across Invalidate
// epochs"). ref computes the uncached route; nil means
// routing.DeterministicRoute, which is what the cache memoizes —
// mutation tests pass a different router to prove the check bites.
func CheckRouteCache(c *routing.Cache, pairs [][2]torus.NodeID, epochs int, ref func(src, dst torus.NodeID) routing.Route) []Violation {
	if ref == nil {
		ref = func(src, dst torus.NodeID) routing.Route {
			return routing.DeterministicRoute(c.Torus(), src, dst)
		}
	}
	var viols []Violation
	for ep := 0; ep < epochs; ep++ {
		// Counter accounting is per epoch: Invalidate cold-starts the
		// cache and zeroes hits/misses (they describe the current epoch).
		h0, m0, _ := c.Counts()
		lookups := uint64(0)
		for _, pr := range pairs {
			got := c.Route(pr[0], pr[1])
			lookups++
			want := ref(pr[0], pr[1])
			if len(got.Links) != len(want.Links) {
				viols = append(viols, Violation{
					Invariant: "route-cache",
					Detail:    fmt.Sprintf("epoch %d pair %d->%d: cached %d hops, fresh %d", ep, pr[0], pr[1], len(got.Links), len(want.Links)),
				})
				continue
			}
			for i := range got.Links {
				if got.Links[i] != want.Links[i] {
					viols = append(viols, Violation{
						Invariant: "route-cache",
						Detail:    fmt.Sprintf("epoch %d pair %d->%d: link %d is %d, fresh route says %d", ep, pr[0], pr[1], i, got.Links[i], want.Links[i]),
					})
					break
				}
			}
		}
		h1, m1, _ := c.Counts()
		if got := (h1 - h0) + (m1 - m0); got != lookups {
			viols = append(viols, Violation{
				Invariant: "route-cache",
				Detail:    fmt.Sprintf("epoch %d: hits+misses advanced by %d for %d lookups", ep, got, lookups),
			})
		}
		c.Invalidate()
		if h, m, _ := c.Counts(); h != 0 || m != 0 {
			viols = append(viols, Violation{
				Invariant: "route-cache",
				Detail:    fmt.Sprintf("epoch %d: counters (%d, %d) nonzero immediately after Invalidate", ep, h, m),
			})
		}
	}
	return viols
}

// CheckCostModel verifies the Eq. 1-5 structure of the cost model for
// one (k, hops) configuration: both curves monotone in message size, the
// gain approaching its k/2 asymptote from below within the model's fixed
// overheads, and the bisected threshold actually separating the loss and
// win regions.
func CheckCostModel(m *core.CostModel, k, hopsDirect, hops1, hops2 int) []Violation {
	var viols []Violation
	sizes := []int64{1, 1 << 10, 64 << 10, 1 << 20, 64 << 20, 1 << 30}
	for i := 1; i < len(sizes); i++ {
		if m.DirectTime(sizes[i], hopsDirect) < m.DirectTime(sizes[i-1], hopsDirect) {
			viols = append(viols, Violation{
				Invariant: "cost-model",
				Detail:    fmt.Sprintf("DirectTime not monotone: t(%d) < t(%d)", sizes[i], sizes[i-1]),
			})
		}
		if m.ProxyTime(sizes[i], k, hops1, hops2) < m.ProxyTime(sizes[i-1], k, hops1, hops2) {
			viols = append(viols, Violation{
				Invariant: "cost-model",
				Detail:    fmt.Sprintf("ProxyTime not monotone: t(%d) < t(%d)", sizes[i], sizes[i-1]),
			})
		}
	}
	// Eq. 5: gain approaches k/2 from below (the fixed overheads only
	// ever subtract from it).
	asym := float64(k) / 2
	if g := m.Gain(1<<40, k, hopsDirect, hops1, hops2); g > asym*(1+1e-9) {
		viols = append(viols, Violation{
			Invariant: "cost-model",
			Detail:    fmt.Sprintf("Gain(2^40, k=%d) = %g exceeds the k/2 asymptote %g", k, g, asym),
		})
	}
	th := m.Threshold(k, hopsDirect, hops1, hops2)
	switch {
	case k <= 2:
		if th != 0 {
			viols = append(viols, Violation{
				Invariant: "cost-model",
				Detail:    fmt.Sprintf("Threshold(k=%d) = %d, want 0 (Eq. 5: k<=2 never wins)", k, th),
			})
		}
	case th > 0:
		if g := m.Gain(th, k, hopsDirect, hops1, hops2); g <= 1 {
			viols = append(viols, Violation{
				Invariant: "cost-model",
				Detail:    fmt.Sprintf("Gain at threshold %d is %g, not > 1", th, g),
			})
		}
		if th > 1 {
			if g := m.Gain(th-1, k, hopsDirect, hops1, hops2); g > 1 {
				viols = append(viols, Violation{
					Invariant: "cost-model",
					Detail:    fmt.Sprintf("Gain just below threshold (%d) is %g, already > 1", th-1, g),
				})
			}
		}
	}
	return viols
}

// CheckPlanModelAgreement verifies Eq. 1-5 monotonicity at the planning
// layer: a proxied plan is only ever chosen when the configured
// threshold logic says proxies win — never when the model says direct
// wins (ISSUE: "proxy plan never chosen when the model says direct
// wins"). It recomputes the decision inputs exactly as PlanPair does.
func CheckPlanModelAgreement(tor *torus.Torus, p netsim.Params, cfg core.ProxyConfig, plan core.PairPlan, src, dst torus.NodeID, bytes int64) []Violation {
	if plan.Mode != core.Proxied {
		return nil
	}
	var viols []Violation
	threshold := cfg.Threshold
	if cfg.AutoThreshold && src != dst {
		m, err := core.NewCostModel(p)
		if err != nil {
			return []Violation{{Invariant: "plan-model", Detail: err.Error()}}
		}
		hopsDirect := tor.HopDistance(src, dst)
		k := cfg.MaxProxies
		if k == 0 {
			k = 2 * tor.Dims()
		}
		threshold = m.Threshold(k, hopsDirect, cfg.Offset, hopsDirect)
		if threshold == 0 {
			threshold = 1 << 62
		}
	}
	if src == dst || bytes < threshold {
		viols = append(viols, Violation{
			Invariant: "plan-model",
			Detail:    fmt.Sprintf("proxied plan for %d bytes %d->%d, but threshold %d says direct", bytes, src, dst, threshold),
		})
	}
	if len(plan.Proxies) < cfg.MinProxies {
		viols = append(viols, Violation{
			Invariant: "plan-model",
			Detail:    fmt.Sprintf("proxied plan with %d proxies, below MinProxies %d", len(plan.Proxies), cfg.MinProxies),
		})
	}
	viols = append(viols, CheckProxyDisjoint(plan.Proxies)...)
	return viols
}

// MaxCoalescedMessage reports the largest per-node coalesced message of
// a burst: per-rank data summed onto each sender node (CheckAggBalance's
// bound input). nodeOf maps rank to node.
func MaxCoalescedMessage(data []int64, nodeOf func(int) int, numNodes int) int64 {
	perNode := make([]int64, numNodes)
	for r, d := range data {
		perNode[nodeOf(r)] += d
	}
	var max int64
	for _, b := range perNode {
		if b > max {
			max = b
		}
	}
	return max
}
