package check

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDifferentialSeeds drives the generator's first 200 seeds through
// both engines (the ISSUE's >= 200 scenario floor for make check). Any
// divergence is an engine bug — archive the failing seed under
// testdata/divergences and fix it.
func TestDifferentialSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is seconds-long; skipped in -short")
	}
	for seed := int64(0); seed < 200; seed++ {
		sc := Generate(seed)
		if divs := RunDifferential(sc); len(divs) > 0 {
			for _, d := range divs {
				t.Errorf("seed %d: %s", seed, d)
			}
			t.Fatalf("seed %d: %d divergences (scenario: %d flows on %v, %d link / %d node failures)",
				seed, len(divs), len(sc.Flows), sc.Shape, len(sc.LinkFailures), len(sc.NodeFailures))
		}
	}
}

// TestDivergenceCorpus replays every archived divergence byte-
// identically: each file under testdata/divergences is a scenario that
// once split the engines (see its README for the bug each one caught)
// and must now agree forever.
func TestDivergenceCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "divergences", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no archived divergences; the corpus must hold at least one regression")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			sc, err := ReadScenario(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range RunDifferential(sc) {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestGenerateDeterministic pins the property the corpus depends on: the
// same seed always yields the same scenario.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, 1 << 40} {
		a, b := Generate(seed), Generate(seed)
		aj, bj := mustJSON(t, a), mustJSON(t, b)
		if aj != bj {
			t.Fatalf("seed %d: two Generate calls differ", seed)
		}
	}
}

func mustJSON(t *testing.T, sc Scenario) string {
	t.Helper()
	dir := t.TempDir()
	p := filepath.Join(dir, "sc.json")
	if err := WriteScenario(p, sc); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestScenarioRoundTrip pins JSON round-tripping: an archived scenario
// must replay the exact run that produced it.
func TestScenarioRoundTrip(t *testing.T) {
	sc := Generate(7)
	p := filepath.Join(t.TempDir(), "sc.json")
	if err := WriteScenario(p, sc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScenario(p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustJSON(t, sc), mustJSON(t, back)
	if a != b {
		t.Fatalf("scenario changed across a write/read cycle")
	}
}
