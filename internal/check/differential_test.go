package check

import (
	"os"
	"path/filepath"
	"testing"

	"bgqflow/internal/netsim"
)

// TestDifferentialSeeds drives the generator's first 200 seeds through
// both engines (the ISSUE's >= 200 scenario floor for make check). Any
// divergence is an engine bug — archive the failing seed under
// testdata/divergences and fix it.
func TestDifferentialSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is seconds-long; skipped in -short")
	}
	for seed := int64(0); seed < 200; seed++ {
		sc := Generate(seed)
		if divs := RunDifferential(sc); len(divs) > 0 {
			for _, d := range divs {
				t.Errorf("seed %d: %s", seed, d)
			}
			t.Fatalf("seed %d: %d divergences (scenario: %d flows on %v, %d link / %d node failures)",
				seed, len(divs), len(sc.Flows), sc.Shape, len(sc.LinkFailures), len(sc.NodeFailures))
		}
	}
}

// TestIncrementalVsGlobalSparseSeeds pins the incremental sweep against
// the global sweep on the larger sparse generator — the regime where the
// dirty-set cutoff actually prunes (the 200-seed suite above also runs
// both modes, but its scenarios are small enough that regions often span
// the whole component). The reference engine is skipped: at these sizes
// only the two netsim modes are tractable, and global mode is the
// oracle.
func TestIncrementalVsGlobalSparseSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("sparse differential sweep is seconds-long; skipped in -short")
	}
	for seed := int64(0); seed < 40; seed++ {
		sc := GenerateSparse(seed)
		inc, incErr := RunNetsimMode(sc, netsim.SweepIncremental, nil)
		glb, glbErr := RunNetsimMode(sc, netsim.SweepGlobal, nil)
		if (incErr != nil) != (glbErr != nil) {
			t.Fatalf("seed %d: incremental err=%v, global err=%v", seed, incErr, glbErr)
		}
		if incErr != nil {
			continue
		}
		if divs := CompareRuns(inc, glb); len(divs) > 0 {
			for _, d := range divs {
				t.Errorf("seed %d: %s", seed, d)
			}
			t.Fatalf("seed %d: %d divergences (%d flows on %v, %d link / %d node failures)",
				seed, len(divs), len(sc.Flows), sc.Shape, len(sc.LinkFailures), len(sc.NodeFailures))
		}
	}
}

// TestSparseSeedsExerciseCutoff guards the suite above against
// vacuousness: the sparse scenarios must actually take the incremental
// path (many incremental sweeps, few fallbacks), otherwise the
// comparison would only be re-testing the global engine.
func TestSparseSeedsExerciseCutoff(t *testing.T) {
	var full, inc int64
	for seed := int64(0); seed < 5; seed++ {
		var e *netsim.Engine
		if _, err := RunNetsim(GenerateSparse(seed), func(eng *netsim.Engine) { e = eng }); err != nil {
			t.Fatal(err)
		}
		f, i := e.SweepStats()
		full, inc = full+f, inc+i
	}
	if inc == 0 || inc < 10*full {
		t.Fatalf("sweeps: %d incremental vs %d full — sparse generator is not exercising the cutoff", inc, full)
	}
}

// TestDivergenceCorpus replays every archived divergence byte-
// identically: each file under testdata/divergences is a scenario that
// once split the engines (see its README for the bug each one caught)
// and must now agree forever.
func TestDivergenceCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "divergences", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no archived divergences; the corpus must hold at least one regression")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			sc, err := ReadScenario(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range RunDifferential(sc) {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestGenerateDeterministic pins the property the corpus depends on: the
// same seed always yields the same scenario.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, 1 << 40} {
		a, b := Generate(seed), Generate(seed)
		aj, bj := mustJSON(t, a), mustJSON(t, b)
		if aj != bj {
			t.Fatalf("seed %d: two Generate calls differ", seed)
		}
	}
}

func mustJSON(t *testing.T, sc Scenario) string {
	t.Helper()
	dir := t.TempDir()
	p := filepath.Join(dir, "sc.json")
	if err := WriteScenario(p, sc); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestScenarioRoundTrip pins JSON round-tripping: an archived scenario
// must replay the exact run that produced it.
func TestScenarioRoundTrip(t *testing.T) {
	sc := Generate(7)
	p := filepath.Join(t.TempDir(), "sc.json")
	if err := WriteScenario(p, sc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScenario(p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustJSON(t, sc), mustJSON(t, back)
	if a != b {
		t.Fatalf("scenario changed across a write/read cycle")
	}
}
