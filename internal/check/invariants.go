package check

import (
	"fmt"
	"math"

	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/sim"
)

// Violation is one invariant breach found by the Auditor or a standalone
// checker.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Auditor attaches to a live netsim engine and checks run-time
// invariants as the run unfolds:
//
//   - capacity: after a sampled subset of waterfill sweeps, the summed
//     rate over every link stays within its capacity, and no flow
//     exceeds its endpoint cap (ISSUE: "per-link capacity never
//     exceeded in any waterfill round");
//   - conservation: the per-link sum of LinkWindow charges equals the
//     engine's cumulative LinkBytes counters, and — on abort-free runs —
//     each link's bytes equal the sum of sizes of the completed flows
//     routed over it (delivered == submitted).
//
// It keeps only O(links) state (a running sum per link, never a full
// timeline), so it is safe to leave attached on 131k-core experiment
// runs under bgqbench -check. An Auditor claims the engine's Sink and
// sweep-observer slots; it cannot be combined with -obs-trace/-metrics.
type Auditor struct {
	e        *netsim.Engine
	sums     []float64
	sweeps   int
	audited  int
	capScale float64 // mutation-test hook: audit against capacity*capScale
	viols    []Violation
}

// capTol absorbs waterfill rounding: freezing k flows at a level adds k
// rounded contributions to a link's load.
const capTol = 1e-6

// NewAuditor builds an auditor for e and attaches it. The engine must
// not have a Sink installed (the auditor needs the LinkWindow stream).
func NewAuditor(e *netsim.Engine) *Auditor {
	a := &Auditor{
		e:        e,
		sums:     make([]float64, e.Network().NumLinks()),
		capScale: 1,
	}
	if e.Sink() != nil {
		panic("check: NewAuditor on an engine that already has a sink")
	}
	e.SetSink(auditSink{a})
	e.SetSweepObserver(a.afterSweep)
	return a
}

// afterSweep audits the allocation the waterfill just produced. Sweeps
// are sampled — the first 64 and then every 32nd — because a full audit
// is O(flows·links) and dense runs sweep millions of times; the sampled
// set still covers every early allocation shape plus a steady trickle.
func (a *Auditor) afterSweep(now sim.Time) {
	a.sweeps++
	if a.sweeps > 64 && a.sweeps%32 != 0 {
		return
	}
	a.audited++
	load := make([]float64, len(a.sums))
	for _, id := range a.e.ActiveFlowIDs() {
		rate, active := a.e.FlowRate(id)
		if !active {
			continue
		}
		if cap := a.e.FlowRateCap(id); rate > cap*(1+capTol) {
			a.viols = append(a.viols, Violation{
				Invariant: "capacity",
				Detail:    fmt.Sprintf("t=%g flow %d rate %g exceeds cap %g", float64(now), id, rate, cap),
			})
		}
		for _, l := range a.e.FlowRouteLinks(id) {
			load[l] += rate
		}
	}
	for l, ld := range load {
		if c := a.e.Network().Capacity(l) * a.capScale; ld > c*(1+capTol) {
			a.viols = append(a.viols, Violation{
				Invariant: "capacity",
				Detail:    fmt.Sprintf("t=%g link %d load %g exceeds capacity %g", float64(now), l, ld, c),
			})
		}
	}
}

// Finish runs the end-of-run conservation checks and returns every
// violation observed. Call it after Engine.Run returns.
func (a *Auditor) Finish() []Violation {
	linkBytes := a.e.LinkBytes()
	for l, sum := range a.sums {
		if !closeTo(sum, linkBytes[l], bytesRTol, bytesATol) {
			a.viols = append(a.viols, Violation{
				Invariant: "conservation",
				Detail:    fmt.Sprintf("link %d window charges sum to %g, counter says %g", l, sum, linkBytes[l]),
			})
		}
	}
	// delivered == submitted, checkable externally only when no flow was
	// cut mid-transfer (an aborted flow legitimately leaves partial bytes
	// on its links).
	anyAborted := false
	expect := make([]float64, len(linkBytes))
	for i := 0; i < a.e.NumFlows(); i++ {
		r := a.e.Result(netsim.FlowID(i))
		if r.Aborted {
			anyAborted = true
			break
		}
		if !r.Done {
			continue
		}
		for _, l := range a.e.FlowRouteLinks(netsim.FlowID(i)) {
			expect[l] += float64(a.e.Spec(netsim.FlowID(i)).Bytes)
		}
	}
	if !anyAborted {
		for l := range expect {
			if !closeTo(expect[l], linkBytes[l], bytesRTol, bytesATol) {
				a.viols = append(a.viols, Violation{
					Invariant: "conservation",
					Detail:    fmt.Sprintf("link %d carried %g bytes, completed flows submitted %g", l, linkBytes[l], expect[l]),
				})
			}
		}
	}
	return a.viols
}

// SweepsAudited reports how many sweeps the capacity audit sampled.
func (a *Auditor) SweepsAudited() int { return a.audited }

// auditSink feeds the auditor's per-link running sums; every emission
// except LinkWindow is a no-op.
type auditSink struct{ a *Auditor }

var _ obs.Sink = auditSink{}

func (auditSink) FlowActivated(now sim.Time, id int, label string) {}
func (auditSink) FlowEnded(now, activated sim.Time, id int, label string, bytes int64, aborted bool) {
}
func (auditSink) SweepDone(now sim.Time, flows, links int, full bool)           {}
func (auditSink) FailureApplied(now sim.Time, node int, isNode bool, links int) {}

func (s auditSink) LinkWindow(link int, from, to sim.Time, bytes float64) {
	if link >= 0 && link < len(s.a.sums) {
		s.a.sums[link] += bytes
	}
}

// CheckTimelineConservation verifies that a LinkTimeline integrates to
// the engine's cumulative per-link counters within a ULP-scaled
// tolerance (ISSUE: "LinkTimeline integrates to LinkBytes within 1 ULP-
// scaled tolerance"): bucket-spreading a window performs one add per
// bucket it covers, so the allowed error grows with the bucket count.
func CheckTimelineConservation(tl *obs.LinkTimeline, linkBytes []float64) []Violation {
	var viols []Violation
	for l, want := range linkBytes {
		got := tl.TotalBytes(l)
		n := len(tl.Series(l))
		tol := math.Max(1, float64(n)) * ulp(want)
		if math.Abs(got-want) > tol {
			viols = append(viols, Violation{
				Invariant: "timeline",
				Detail:    fmt.Sprintf("link %d timeline sums to %g, counter says %g (tol %g)", l, got, want, tol),
			})
		}
	}
	return viols
}

// ulp returns the spacing of float64 values at magnitude x.
func ulp(x float64) float64 {
	x = math.Abs(x)
	return math.Nextafter(x, math.Inf(1)) - x
}
