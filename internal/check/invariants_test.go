package check

import (
	"testing"

	"bgqflow/internal/core"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

// TestAuditorCleanRuns attaches the run-time auditor to generated
// scenarios: a correct engine must produce zero violations, and the
// sweep sampler must actually audit something.
func TestAuditorCleanRuns(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		var a *Auditor
		sc := Generate(seed)
		if _, err := RunNetsim(sc, func(e *netsim.Engine) { a = NewAuditor(e) }); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if viols := a.Finish(); len(viols) > 0 {
			for _, v := range viols {
				t.Errorf("seed %d: %s", seed, v)
			}
		}
		if a.SweepsAudited() == 0 {
			t.Errorf("seed %d: auditor sampled no sweeps", seed)
		}
	}
}

// TestAuditorRejectsOccupiedEngine pins the sink conflict: the auditor
// needs the LinkWindow stream, so attaching over an existing sink is a
// caller bug.
func TestAuditorRejectsOccupiedEngine(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 2})
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	e.SetSink(obs.TimelineSink{TL: obs.NewLinkTimeline(1e-6)})
	defer func() {
		if recover() == nil {
			t.Fatal("NewAuditor on an engine with a sink did not panic")
		}
	}()
	NewAuditor(e)
}

// TestTimelineConservation drives a real run with a timeline sink and
// checks the integral against the engine's counters.
func TestTimelineConservation(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	tl := obs.NewLinkTimeline(10e-6)
	e.SetSink(obs.TimelineSink{TL: tl})
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	for i := 0; i < 8; i++ {
		dst := torus.NodeID((int(src) + 3*i + 1) % tor.Size())
		e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: 1 << 18})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, v := range CheckTimelineConservation(tl, e.LinkBytes()) {
		t.Error(v)
	}
}

// TestCheckProxyDisjointOnRealSelection runs Algorithm 1's real
// selection and asserts the structural invariant holds.
func TestCheckProxyDisjointOnRealSelection(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	pl, err := core.NewPairPlanner(tor, core.DefaultProxyConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{1, 1, 3, 3, 1})
	proxies := pl.SelectProxies(src, dst)
	if len(proxies) < 3 {
		t.Fatalf("only %d proxies selected", len(proxies))
	}
	for _, v := range CheckProxyDisjoint(proxies) {
		t.Error(v)
	}
}

// TestCheckAggInvariantsOnRealPlan runs Algorithm 2 end to end and
// checks interleaving and the per-I/O-node balance bound.
func TestCheckAggInvariantsOnRealPlan(t *testing.T) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 16, 2})
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	job, err := mpisim.NewJob(tor, 16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAggPlanner(ios, job, p, core.DefaultAggConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, aggs := a.AggregatorsFor(1 << 36)
	for _, v := range CheckAggInterleave(aggs, ios.NumPsets(), ios.Config().BridgesPerPset) {
		t.Error(v)
	}

	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	// A concentrated burst: one rank in eight holds 1 MB.
	data := make([]int64, job.NumRanks())
	for r := 0; r < len(data); r += 8 {
		data[r] = 1 << 20
	}
	if _, err := a.Plan(e, data); err != nil {
		t.Fatal(err)
	}
	ion := IONBytesFromFlows(e, ios.NumPsets())
	var total int64
	for _, b := range ion {
		total += b
	}
	if total == 0 {
		t.Fatal("no fabric flows found by label")
	}
	maxMsg := MaxCoalescedMessage(data, func(r int) int { return int(job.NodeOf(r)) }, tor.Size())
	for _, v := range CheckAggBalance(ion, maxMsg) {
		t.Error(v)
	}
}

// TestCheckRouteCacheClean verifies cached == fresh across epochs on a
// real cache, with exact hit/miss accounting.
func TestCheckRouteCacheClean(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	c := routing.NewCache(tor)
	var pairs [][2]torus.NodeID
	for i := 0; i < 12; i++ {
		pairs = append(pairs, [2]torus.NodeID{
			torus.NodeID((i * 7) % tor.Size()),
			torus.NodeID((i*13 + 5) % tor.Size()),
		})
	}
	for _, v := range CheckRouteCache(c, pairs, 4, nil) {
		t.Error(v)
	}
}

// TestCheckCostModelClean checks the Eq. 1-5 structure across proxy
// counts and hop geometries.
func TestCheckCostModelClean(t *testing.T) {
	m, err := core.NewCostModel(netsim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 4, 10} {
		for _, hops := range []int{1, 4, 16} {
			for _, v := range CheckCostModel(m, k, hops, 1, hops) {
				t.Errorf("k=%d hops=%d: %s", k, hops, v)
			}
		}
	}
}

// TestCheckPlanModelAgreementOnRealPlans plans real transfers — below
// and above the threshold, fixed and model-derived — and asserts the
// planner never contradicts the decision inputs.
func TestCheckPlanModelAgreementOnRealPlans(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := netsim.DefaultParams()
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{1, 1, 3, 3, 1})
	for _, auto := range []bool{false, true} {
		cfg := core.DefaultProxyConfig()
		cfg.AutoThreshold = auto
		pl, err := core.NewPairPlanner(tor, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, bytes := range []int64{1 << 10, 256 << 10, 8 << 20} {
			net := netsim.NewNetwork(tor, p.LinkBandwidth)
			e, err := netsim.NewEngine(net, p)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := pl.PlanPair(e, src, dst, bytes)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range CheckPlanModelAgreement(tor, p, cfg, plan, src, dst, bytes) {
				t.Errorf("auto=%v bytes=%d: %s", auto, bytes, v)
			}
		}
	}
}
