// Package check is the repo's differential oracle (DESIGN.md §11): a
// deliberately naive reference simulator, an invariant suite over
// finished netsim runs and planner outputs, and a deterministic seeded
// scenario generator. The optimized engine earned its speed through
// arenas, scratch reuse, component-scoped sweeps, and a route cache;
// this package exists to prove none of that changed the physics.
package check

import (
	"fmt"
	"math"

	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
)

// RefParams mirrors the machine constants of the optimized engine as
// plain float64 seconds and bytes/second. The reference engine shares
// only the torus/topology and routing types with netsim — even the
// parameter struct is independent, so a unit mix-up in either engine
// surfaces as a differential failure instead of being definitionally
// identical.
type RefParams struct {
	LinkBandwidth      float64 `json:"link_bandwidth"`
	PerFlowBandwidth   float64 `json:"per_flow_bandwidth"`
	LocalCopyBandwidth float64 `json:"local_copy_bandwidth"`
	SenderOverhead     float64 `json:"sender_overhead"`
	ReceiverOverhead   float64 `json:"receiver_overhead"`
	HopLatency         float64 `json:"hop_latency"`
}

// RefFlowSpec describes one transfer for the reference engine. The
// fields mirror netsim.FlowSpec; HasLinks distinguishes an explicit
// empty route (a local copy over no links) from "compute the default
// deterministic route".
type RefFlowSpec struct {
	Src, Dst   torus.NodeID
	Bytes      int64
	Links      []int
	HasLinks   bool
	DependsOn  []int
	ExtraDelay float64
	Label      string
}

// RefResult is the reference engine's per-flow timeline, mirroring
// netsim.FlowResult.
type RefResult struct {
	Released    float64 `json:"released"`
	Activated   float64 `json:"activated"`
	TransferEnd float64 `json:"transfer_end"`
	Completed   float64 `json:"completed"`
	Done        bool    `json:"done"`
	Aborted     bool    `json:"aborted"`
	AbortTime   float64 `json:"abort_time"`
}

type refState uint8

const (
	refPending refState = iota
	refDelayed
	refActive
	refDraining
	refDone
	refAborted
)

type refFlow struct {
	spec       RefFlowSpec
	links      []int
	cap        float64
	unmet      int
	dependents []int
	state      refState
	timer      float64 // next transition instant (delayed/draining)
	remaining  float64
	rate       float64
	res        RefResult
}

type refFailure struct {
	at    float64
	links []int
	done  bool
}

// RefEngine is the naive reference simulator: the same fluid-flow
// physics as netsim — max-min fair waterfilling, sender/receiver
// overheads, hop latency tails, fail-stop aborts with dependency
// cascades — written for obviousness. Every event recomputes one global
// waterfill from scratch over every active flow and every link,
// O(flows² · links); nothing is cached, pooled, batched, or scoped to a
// component. It exists to be compared against, not to be fast.
type RefEngine struct {
	tp        topo.Topology
	cm        topo.CostModel // nil = uniform RefParams arithmetic
	p         RefParams
	caps      []float64
	failed    []bool
	extraFrom map[torus.NodeID][]int
	flows     []*refFlow
	linkBytes []float64
	failures  []refFailure
	now       float64
	resolved  int
}

// NewRefEngine builds a reference engine over the torus links of tor.
func NewRefEngine(tor *torus.Torus, p RefParams) *RefEngine {
	return NewRefEngineOn(topo.NewTorus(tor), p)
}

// NewRefEngineOn builds a reference engine over an arbitrary topology's
// base links: each link's capacity is LinkBandwidth times the topology's
// rail multiplier (exactly 1.0 on a torus, so NewRefEngine is the same
// engine it always was).
func NewRefEngineOn(tp topo.Topology, p RefParams) *RefEngine {
	caps := make([]float64, tp.NumLinks())
	for i := range caps {
		caps[i] = p.LinkBandwidth * tp.LinkCapacity(i)
	}
	return &RefEngine{
		tp:        tp,
		p:         p,
		caps:      caps,
		failed:    make([]bool, len(caps)),
		extraFrom: make(map[torus.NodeID][]int),
		linkBytes: make([]float64, len(caps)),
	}
}

// SetCostModel installs a per-node endpoint cost model mirroring
// netsim.Engine.SetCostModel: flow caps, sender/receiver overheads, and
// hop latency come from the model instead of the uniform RefParams. Must
// be called before any Submit; nil keeps the uniform arithmetic.
func (r *RefEngine) SetCostModel(cm topo.CostModel) {
	if len(r.flows) > 0 {
		panic("check: SetCostModel after Submit")
	}
	r.cm = cm
}

// AddLinkFrom registers an extra link owned by a torus node (the 11th
// link idiom) and returns its ID; node failure of the owner fails it.
func (r *RefEngine) AddLinkFrom(from torus.NodeID, capacity float64) int {
	if capacity <= 0 {
		panic(fmt.Sprintf("check: extra link capacity %g", capacity))
	}
	id := len(r.caps)
	r.caps = append(r.caps, capacity)
	r.failed = append(r.failed, false)
	r.linkBytes = append(r.linkBytes, 0)
	r.extraFrom[from] = append(r.extraFrom[from], id)
	return id
}

// Submit registers a flow and returns its index. Dependencies must name
// already-submitted flows.
func (r *RefEngine) Submit(spec RefFlowSpec) int {
	if spec.Bytes < 0 {
		panic(fmt.Sprintf("check: negative flow size %d", spec.Bytes))
	}
	f := &refFlow{spec: spec, cap: r.p.PerFlowBandwidth}
	if r.cm != nil {
		f.cap = r.cm.PerFlowRate(spec.Src, spec.Dst)
	}
	switch {
	case spec.HasLinks:
		// A flow occupies a set of links: a route listing a link twice
		// still claims it once and moves each byte across it once.
		f.links = dedupRefLinks(spec.Links)
		if len(f.links) == 0 {
			f.cap = r.localCopyRate(spec.Src)
		}
	case spec.Src == spec.Dst:
		f.cap = r.localCopyRate(spec.Src)
	default:
		f.links = r.tp.Route(spec.Src, spec.Dst)
	}
	for _, l := range f.links {
		if l < 0 || l >= len(r.caps) {
			panic(fmt.Sprintf("check: flow routed over unknown link %d", l))
		}
		if r.failed[l] {
			panic(fmt.Sprintf("check: flow routed over failed link %d", l))
		}
	}
	id := len(r.flows)
	for _, dep := range spec.DependsOn {
		if dep < 0 || dep >= id {
			panic(fmt.Sprintf("check: flow %d depends on unknown flow %d", id, dep))
		}
		r.flows[dep].dependents = append(r.flows[dep].dependents, id)
		f.unmet++
	}
	r.flows = append(r.flows, f)
	return id
}

// FailLinkAt schedules one link to fail at absolute time at.
func (r *RefEngine) FailLinkAt(link int, at float64) {
	if link < 0 || link >= len(r.caps) {
		panic(fmt.Sprintf("check: FailLinkAt(%d) outside link table", link))
	}
	r.failures = append(r.failures, refFailure{at: at, links: []int{link}})
}

// FailNodeAt schedules a whole-node failure: every base-fabric link
// that dies with the node plus its registered extra links.
func (r *RefEngine) FailNodeAt(n torus.NodeID, at float64) {
	var links []int
	add := func(l int) {
		for _, s := range links {
			if s == l {
				return
			}
		}
		links = append(links, l)
	}
	for _, l := range r.tp.NodeLinks(n) {
		add(l)
	}
	for _, l := range r.extraFrom[n] {
		add(l)
	}
	r.failures = append(r.failures, refFailure{at: at, links: links})
}

// Run executes all submitted flows to resolution (done or aborted). It
// errors when the dependency graph leaves flows unreleasable, or when
// the waterfill cannot make progress (both mirror netsim panics/errors).
func (r *RefEngine) Run() error {
	for _, f := range r.flows {
		if f.unmet == 0 {
			r.release(f, 0)
		}
	}
	for r.resolved < len(r.flows) {
		if err := r.assignRates(); err != nil {
			return err
		}
		// Next event: the earliest pending failure, flow timer, or active
		// transfer completion.
		t := math.Inf(1)
		for i := range r.failures {
			if !r.failures[i].done && r.failures[i].at < t {
				t = r.failures[i].at
			}
		}
		for _, f := range r.flows {
			switch f.state {
			case refDelayed, refDraining:
				if f.timer < t {
					t = f.timer
				}
			case refActive:
				if end := r.now + f.remaining/f.rate; end < t {
					t = end
				}
			}
		}
		if math.IsInf(t, 1) {
			return fmt.Errorf("check: reference engine stuck with %d unresolved flows (dependency cycle)", len(r.flows)-r.resolved)
		}
		// Charge progress over [now, t] at the current rates. A flow whose
		// completion lands exactly at t is charged its full remainder, as
		// the optimized engine does at transferEnd.
		for _, f := range r.flows {
			if f.state != refActive {
				continue
			}
			moved := f.rate * (t - r.now)
			if r.now+f.remaining/f.rate == t || moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			for _, l := range f.links {
				r.linkBytes[l] += moved
			}
		}
		r.now = t
		// Same-instant ordering mirrors the optimized engine's FIFO clock:
		// failure events were scheduled before Run and fire before any flow
		// timer queued during the run; transfer ends, finishes, and
		// activations at one instant all precede the single batched rate
		// sweep, so their relative order cannot affect rates.
		r.applyFailuresAt(t)
		for _, f := range r.flows {
			if f.state == refActive && f.remaining == 0 {
				r.transferEnd(f)
			}
		}
		for _, f := range r.flows {
			if f.state == refDraining && f.timer == t {
				r.finishFlow(f)
			}
		}
		for _, f := range r.flows {
			if f.state == refDelayed && f.timer == t {
				r.activate(f)
			}
		}
	}
	return nil
}

// Now reports the reference clock (the time of the last processed event).
func (r *RefEngine) Now() float64 { return r.now }

// NumFlows reports the number of submitted flows.
func (r *RefEngine) NumFlows() int { return len(r.flows) }

// Result returns a flow's timeline after Run.
func (r *RefEngine) Result(id int) RefResult { return r.flows[id].res }

// LinkBytes returns the cumulative bytes carried per link.
func (r *RefEngine) LinkBytes() []float64 {
	return append([]float64(nil), r.linkBytes...)
}

// localCopyRate is the node-local memcpy rate at n.
func (r *RefEngine) localCopyRate(n torus.NodeID) float64 {
	if r.cm != nil {
		return r.cm.LocalCopyRate(n)
	}
	return r.p.LocalCopyBandwidth
}

func (r *RefEngine) release(f *refFlow, t float64) {
	f.state = refDelayed
	f.res.Released = t
	if r.cm != nil {
		f.timer = t + r.cm.SenderOverhead(f.spec.Src) + f.spec.ExtraDelay
	} else {
		f.timer = t + r.p.SenderOverhead + f.spec.ExtraDelay
	}
}

func (r *RefEngine) activate(f *refFlow) {
	f.state = refActive
	f.res.Activated = r.now
	f.remaining = float64(f.spec.Bytes)
	f.rate = 0
	if f.spec.Bytes == 0 {
		r.transferEnd(f)
	}
}

func (r *RefEngine) transferEnd(f *refFlow) {
	f.state = refDraining
	f.res.TransferEnd = r.now
	f.rate = 0
	if r.cm != nil {
		f.timer = r.now + r.cm.ReceiverOverhead(f.spec.Dst) + r.cm.HopLatency()*float64(len(f.links))
	} else {
		f.timer = r.now + r.p.ReceiverOverhead + r.p.HopLatency*float64(len(f.links))
	}
}

func (r *RefEngine) finishFlow(f *refFlow) {
	f.state = refDone
	f.res.Completed = r.now
	f.res.Done = true
	r.resolved++
	for _, dep := range f.dependents {
		d := r.flows[dep]
		d.unmet--
		if d.unmet == 0 && d.state == refPending {
			r.release(d, r.now)
		}
	}
}

// applyFailuresAt fires every failure scheduled for instant t, in
// scheduling order: newly dead links are marked, and every flow whose
// route crosses one and whose transfer has not yet left the wire aborts,
// cascading to its dependents. Draining and done flows survive.
func (r *RefEngine) applyFailuresAt(t float64) {
	for i := range r.failures {
		fe := &r.failures[i]
		if fe.done || fe.at != t {
			continue
		}
		fe.done = true
		var newly []int
		for _, l := range fe.links {
			if !r.failed[l] {
				newly = append(newly, l)
				r.failed[l] = true
			}
		}
		if len(newly) == 0 {
			continue
		}
		for _, f := range r.flows {
			if f.state == refDone || f.state == refAborted || f.state == refDraining {
				continue
			}
		crossing:
			for _, l := range f.links {
				for _, dead := range newly {
					if l == dead {
						r.abort(f, t)
						break crossing
					}
				}
			}
		}
	}
}

func (r *RefEngine) abort(f *refFlow, t float64) {
	switch f.state {
	case refDone, refAborted, refDraining:
		return
	}
	f.state = refAborted
	f.rate = 0
	f.res.Aborted = true
	f.res.AbortTime = t
	r.resolved++
	for _, dep := range f.dependents {
		r.abort(r.flows[dep], t)
	}
}

// assignRates recomputes a global max-min fair allocation from scratch:
// the shared level of all unfrozen flows rises until a link saturates or
// a flow hits its endpoint cap; those flows freeze at the level; repeat.
// The slack arithmetic and the eps used to group near-tied constraints
// are the same expressions netsim's waterfill uses, so the two engines
// freeze the same flows at the same levels up to float noise.
func (r *RefEngine) assignRates() error {
	var active []*refFlow
	for _, f := range r.flows {
		if f.state == refActive {
			active = append(active, f)
		}
	}
	if len(active) == 0 {
		return nil
	}
	load := make([]float64, len(r.caps))
	unfrozen := make([]int, len(r.caps))
	for _, f := range active {
		for _, l := range f.links {
			unfrozen[l]++
		}
	}
	frozen := make([]bool, len(active))
	for left := len(active); left > 0; {
		level := math.Inf(1)
		for l := range r.caps {
			if unfrozen[l] > 0 {
				if s := (r.caps[l] - load[l]) / float64(unfrozen[l]); s < level {
					level = s
				}
			}
		}
		for i, f := range active {
			if !frozen[i] && f.cap < level {
				level = f.cap
			}
		}
		if level < 0 {
			level = 0
		}
		eps := level*1e-9 + 1e-15
		progress := false
		for i, f := range active {
			if frozen[i] {
				continue
			}
			bound := f.cap <= level+eps
			if !bound {
				for _, l := range f.links {
					if unfrozen[l] > 0 && (r.caps[l]-load[l])/float64(unfrozen[l]) <= level+eps {
						bound = true
						break
					}
				}
			}
			if !bound {
				continue
			}
			frozen[i] = true
			f.rate = level
			for _, l := range f.links {
				load[l] += level
				unfrozen[l]--
			}
			left--
			progress = true
		}
		if !progress {
			return fmt.Errorf("check: reference waterfill made no progress")
		}
	}
	for _, f := range active {
		if f.rate <= 0 {
			return fmt.Errorf("check: reference flow allocated zero rate")
		}
	}
	return nil
}

// dedupRefLinks returns links with duplicates removed, first-occurrence
// order preserved.
func dedupRefLinks(links []int) []int {
	out := make([]int, 0, len(links))
	for _, l := range links {
		dup := false
		for _, seen := range out {
			if seen == l {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return out
}
