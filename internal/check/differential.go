package check

import (
	"fmt"
	"math"

	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
)

// RunOutput is an engine-neutral record of one finished run: everything
// the differential comparison looks at, and nothing else (notably no
// makespan — the clocks stop at different final events by design).
type RunOutput struct {
	Flows     []RefResult `json:"flows"`
	LinkBytes []float64   `json:"link_bytes"`
}

// Divergence is one observed disagreement between two engines.
type Divergence struct {
	Kind string `json:"kind"` // "error", "outcome", "time", "link_bytes"
	Flow int    `json:"flow,omitempty"`
	Link int    `json:"link,omitempty"`
	// Pair names the engine pair that disagreed ("incremental vs ref",
	// "incremental vs global"); empty in records predating the
	// incremental engine and in direct CompareRuns use.
	Pair   string `json:"pair,omitempty"`
	Detail string `json:"detail"`
}

func (d Divergence) String() string {
	s := d.Kind
	if d.Kind == "link_bytes" {
		s += fmt.Sprintf(" link=%d", d.Link)
	} else if d.Kind != "error" {
		s += fmt.Sprintf(" flow=%d", d.Flow)
	}
	if d.Pair != "" {
		s += " [" + d.Pair + "]"
	}
	return s + ": " + d.Detail
}

// RunNetsim executes a scenario on the optimized engine in its default
// (incremental) sweep mode. hook, when non-nil, runs on the engine
// before any flow is submitted (bgqbench and the invariant tests attach
// an Auditor here).
func RunNetsim(sc Scenario, hook func(*netsim.Engine)) (RunOutput, error) {
	return RunNetsimMode(sc, netsim.SweepIncremental, hook)
}

// RunNetsimMode executes a scenario on the optimized engine with an
// explicit sweep mode — the handle the differential suite uses to pin
// the incremental engine against the global one.
func RunNetsimMode(sc Scenario, mode netsim.SweepMode, hook func(*netsim.Engine)) (RunOutput, error) {
	var net *netsim.Network
	if sc.Topology != "" {
		tp, err := topo.Parse(sc.Topology)
		if err != nil {
			return RunOutput{}, fmt.Errorf("check: scenario topology: %w", err)
		}
		net = netsim.NewNetworkTopo(tp, sc.Params.LinkBandwidth)
	} else {
		tor, err := torus.New(torus.Shape(sc.Shape))
		if err != nil {
			return RunOutput{}, fmt.Errorf("check: scenario shape %v: %w", sc.Shape, err)
		}
		net = netsim.NewNetwork(tor, sc.Params.LinkBandwidth)
	}
	for i, ex := range sc.Extra {
		net.AddLinkFrom(fmt.Sprintf("extra%d", i), torus.NodeID(ex.From), ex.Capacity)
	}
	e, err := netsim.NewEngine(net, netsim.Params{
		LinkBandwidth:      sc.Params.LinkBandwidth,
		IONLinkBandwidth:   sc.Params.LinkBandwidth,
		PerFlowBandwidth:   sc.Params.PerFlowBandwidth,
		LocalCopyBandwidth: sc.Params.LocalCopyBandwidth,
		SenderOverhead:     sim.Duration(sc.Params.SenderOverhead),
		ReceiverOverhead:   sim.Duration(sc.Params.ReceiverOverhead),
		HopLatency:         sim.Duration(sc.Params.HopLatency),
	})
	if err != nil {
		return RunOutput{}, err
	}
	e.SetSweepMode(mode)
	if sc.CostModel != "" {
		cm, err := topo.ParseCostModel(sc.CostModel, netsim.CostModelFromParams(e.Params()))
		if err != nil {
			return RunOutput{}, fmt.Errorf("check: scenario cost model: %w", err)
		}
		e.SetCostModel(cm)
	}
	if hook != nil {
		hook(e)
	}
	for i, f := range sc.Flows {
		spec := netsim.FlowSpec{
			Src:        torus.NodeID(f.Src),
			Dst:        torus.NodeID(f.Dst),
			Bytes:      f.Bytes,
			ExtraDelay: sim.Duration(f.ExtraDelay),
			Label:      fmt.Sprintf("sc%d", i),
		}
		if f.HasLinks {
			spec.Links = append([]int{}, f.Links...)
		}
		for _, dep := range f.Deps {
			spec.DependsOn = append(spec.DependsOn, netsim.FlowID(dep))
		}
		e.Submit(spec)
	}
	for _, lf := range sc.LinkFailures {
		e.FailLinkAt(lf.Link, sim.Time(lf.At))
	}
	for _, nf := range sc.NodeFailures {
		e.FailNodeAt(torus.NodeID(nf.Node), sim.Time(nf.At))
	}
	if _, err := e.Run(); err != nil {
		return RunOutput{}, err
	}
	out := RunOutput{LinkBytes: append([]float64(nil), e.LinkBytes()...)}
	for i := 0; i < e.NumFlows(); i++ {
		r := e.Result(netsim.FlowID(i))
		out.Flows = append(out.Flows, RefResult{
			Released:    float64(r.Released),
			Activated:   float64(r.Activated),
			TransferEnd: float64(r.TransferEnd),
			Completed:   float64(r.Completed),
			Done:        r.Done,
			Aborted:     r.Aborted,
			AbortTime:   float64(r.AbortTime),
		})
	}
	return out, nil
}

// RunRef executes a scenario on the reference engine.
func RunRef(sc Scenario) (RunOutput, error) {
	var r *RefEngine
	if sc.Topology != "" {
		tp, err := topo.Parse(sc.Topology)
		if err != nil {
			return RunOutput{}, fmt.Errorf("check: scenario topology: %w", err)
		}
		r = NewRefEngineOn(tp, sc.Params)
	} else {
		tor, err := torus.New(torus.Shape(sc.Shape))
		if err != nil {
			return RunOutput{}, fmt.Errorf("check: scenario shape %v: %w", sc.Shape, err)
		}
		r = NewRefEngine(tor, sc.Params)
	}
	if sc.CostModel != "" {
		cm, err := topo.ParseCostModel(sc.CostModel, topo.Uniform{
			PerFlow:   sc.Params.PerFlowBandwidth,
			LocalCopy: sc.Params.LocalCopyBandwidth,
			Sender:    sc.Params.SenderOverhead,
			Receiver:  sc.Params.ReceiverOverhead,
			Hop:       sc.Params.HopLatency,
		})
		if err != nil {
			return RunOutput{}, fmt.Errorf("check: scenario cost model: %w", err)
		}
		r.SetCostModel(cm)
	}
	for _, ex := range sc.Extra {
		r.AddLinkFrom(torus.NodeID(ex.From), ex.Capacity)
	}
	for _, f := range sc.Flows {
		r.Submit(RefFlowSpec{
			Src:        torus.NodeID(f.Src),
			Dst:        torus.NodeID(f.Dst),
			Bytes:      f.Bytes,
			Links:      f.Links,
			HasLinks:   f.HasLinks,
			DependsOn:  f.Deps,
			ExtraDelay: f.ExtraDelay,
		})
	}
	for _, lf := range sc.LinkFailures {
		r.FailLinkAt(lf.Link, lf.At)
	}
	for _, nf := range sc.NodeFailures {
		r.FailNodeAt(torus.NodeID(nf.Node), nf.At)
	}
	if err := r.Run(); err != nil {
		return RunOutput{}, err
	}
	out := RunOutput{LinkBytes: r.LinkBytes()}
	for i := 0; i < r.NumFlows(); i++ {
		out.Flows = append(out.Flows, r.Result(i))
	}
	return out, nil
}

// Comparison tolerances. Times are pure float arithmetic in both engines
// with identical formulas, so they agree to relative rounding noise;
// link bytes accumulate over many waterfill windows in different orders,
// so they get an absolute floor of a fraction of one byte on top.
const (
	timeRTol  = 1e-6
	timeATol  = 1e-12
	bytesRTol = 1e-6
	bytesATol = 1e-3
)

func closeTo(a, b, rtol, atol float64) bool {
	d := math.Abs(a - b)
	return d <= atol+rtol*math.Max(math.Abs(a), math.Abs(b))
}

// CompareRuns diffs two run records: flow outcomes exactly, flow
// timelines and per-link bytes within tolerance. Outcome mismatches
// suppress the time diff for that flow (the times are meaningless when
// one engine aborted and the other completed).
func CompareRuns(got, want RunOutput) []Divergence {
	var divs []Divergence
	if len(got.Flows) != len(want.Flows) {
		return append(divs, Divergence{
			Kind:   "outcome",
			Detail: fmt.Sprintf("flow count %d vs %d", len(got.Flows), len(want.Flows)),
		})
	}
	for i := range got.Flows {
		g, w := got.Flows[i], want.Flows[i]
		if g.Done != w.Done || g.Aborted != w.Aborted {
			divs = append(divs, Divergence{
				Kind: "outcome", Flow: i,
				Detail: fmt.Sprintf("done=%v/aborted=%v vs done=%v/aborted=%v", g.Done, g.Aborted, w.Done, w.Aborted),
			})
			continue
		}
		fields := []struct {
			name string
			g, w float64
		}{
			{"released", g.Released, w.Released},
			{"activated", g.Activated, w.Activated},
			{"transfer_end", g.TransferEnd, w.TransferEnd},
			{"completed", g.Completed, w.Completed},
			{"abort_time", g.AbortTime, w.AbortTime},
		}
		for _, f := range fields {
			if !closeTo(f.g, f.w, timeRTol, timeATol) {
				divs = append(divs, Divergence{
					Kind: "time", Flow: i,
					Detail: fmt.Sprintf("%s %.12g vs %.12g (delta %g)", f.name, f.g, f.w, f.g-f.w),
				})
			}
		}
	}
	if len(got.LinkBytes) != len(want.LinkBytes) {
		return append(divs, Divergence{
			Kind:   "link_bytes",
			Detail: fmt.Sprintf("link count %d vs %d", len(got.LinkBytes), len(want.LinkBytes)),
		})
	}
	for l := range got.LinkBytes {
		if !closeTo(got.LinkBytes[l], want.LinkBytes[l], bytesRTol, bytesATol) {
			divs = append(divs, Divergence{
				Kind: "link_bytes", Link: l,
				Detail: fmt.Sprintf("%.12g vs %.12g (delta %g)", got.LinkBytes[l], want.LinkBytes[l], got.LinkBytes[l]-want.LinkBytes[l]),
			})
		}
	}
	return divs
}

// labelPair stamps the engine pair a comparison ran between onto its
// divergences.
func labelPair(divs []Divergence, pair string) []Divergence {
	for i := range divs {
		divs[i].Pair = pair
	}
	return divs
}

// RunDifferential runs a scenario through the incremental netsim engine,
// the global netsim engine, and the reference engine, and returns every
// divergence: incremental vs ref pins the model, incremental vs global
// pins the dirty-set cutoff (rates, completion times, and per-link
// bytes must agree, including under fault campaigns). An error in one
// engine but not the others is itself a divergence; an error in all
// three (same scenario defect seen everywhere) is clean.
func RunDifferential(sc Scenario) []Divergence {
	incOut, incErr := RunNetsimMode(sc, netsim.SweepIncremental, nil)
	glbOut, glbErr := RunNetsimMode(sc, netsim.SweepGlobal, nil)
	refOut, refErr := RunRef(sc)
	if incErr != nil || glbErr != nil || refErr != nil {
		if incErr != nil && glbErr != nil && refErr != nil {
			return nil
		}
		return []Divergence{{
			Kind:   "error",
			Detail: fmt.Sprintf("incremental err=%v, global err=%v, ref err=%v", incErr, glbErr, refErr),
		}}
	}
	divs := labelPair(CompareRuns(incOut, refOut), "incremental vs ref")
	return append(divs, labelPair(CompareRuns(incOut, glbOut), "incremental vs global")...)
}
