package check

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDifferential feeds generator seeds to both engines and fails on
// any divergence in flow outcomes, flow timelines, or per-link bytes.
// The input is just the seed — the generator is deterministic, so the
// native fuzz corpus stays tiny and any finding is reproducible from an
// 8-byte value. On failure the full scenario is also archived under
// testdata/divergences for the replay walkthrough in EXPERIMENTS.md.
//
// Run a smoke budget with:
//
//	go test -fuzz=FuzzDifferential -fuzztime=30s -run '^$' ./internal/check
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sc := Generate(seed)
		divs := RunDifferential(sc)
		if len(divs) == 0 {
			return
		}
		path := filepath.Join("testdata", "divergences", fmt.Sprintf("fuzz-seed%d.json", seed))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err == nil {
			if werr := WriteScenario(path, sc); werr == nil {
				t.Logf("scenario archived at %s", path)
			}
		}
		for _, d := range divs {
			t.Errorf("seed %d: %s", seed, d)
		}
	})
}

// FuzzDifferentialTopo is the topology axis of the differential fuzzer:
// seeds drive GenerateTopo (dragonfly/fat-tree fabrics, some with the
// heterogeneous cost model) through all three engines. Findings archive
// like FuzzDifferential's.
//
// Run a smoke budget with:
//
//	go test -fuzz=FuzzDifferentialTopo -fuzztime=15s -run '^$' ./internal/check
func FuzzDifferentialTopo(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sc := GenerateTopo(seed)
		divs := RunDifferential(sc)
		if len(divs) == 0 {
			return
		}
		path := filepath.Join("testdata", "divergences", fmt.Sprintf("fuzz-topo-seed%d.json", seed))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err == nil {
			if werr := WriteScenario(path, sc); werr == nil {
				t.Logf("scenario archived at %s", path)
			}
		}
		for _, d := range divs {
			t.Errorf("seed %d (%s/%s): %s", seed, sc.Topology, sc.CostModel, d)
		}
	})
}
