package check

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"

	"bgqflow/internal/routing"
	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
)

// ExtraLink is a scenario's registered non-torus link (the bridge-to-ION
// 11th-link idiom).
type ExtraLink struct {
	From     int     `json:"from"`
	Capacity float64 `json:"capacity"`
}

// ScenarioFlow is one flow of a scenario, in engine-neutral form.
type ScenarioFlow struct {
	Src        int     `json:"src"`
	Dst        int     `json:"dst"`
	Bytes      int64   `json:"bytes"`
	Links      []int   `json:"links"`
	HasLinks   bool    `json:"has_links"`
	Deps       []int   `json:"deps,omitempty"`
	ExtraDelay float64 `json:"extra_delay,omitempty"`
}

// LinkFailure schedules one link to die mid-run.
type LinkFailure struct {
	Link int     `json:"link"`
	At   float64 `json:"at"`
}

// NodeFailure schedules one node to die mid-run.
type NodeFailure struct {
	Node int     `json:"node"`
	At   float64 `json:"at"`
}

// Scenario is one differential test case: a fabric, machine constants, a
// flow DAG, and a fault campaign. Scenarios serialize to JSON so a
// divergence found by the fuzzer replays byte-identically from
// testdata/divergences (see EXPERIMENTS.md).
//
// The BG/Q-default compatibility rule (DESIGN.md §16): an empty Topology
// means "the torus described by Shape" and an empty CostModel means "the
// uniform Params arithmetic", so every pre-topology scenario and every
// archived divergence replays byte-identically.
type Scenario struct {
	Seed  int64 `json:"seed"`
	Shape []int `json:"shape,omitempty"`
	// Topology is a topo.Parse spec ("dragonfly:6x4x2"); empty selects
	// the torus built from Shape.
	Topology string    `json:"topology,omitempty"`
	Params   RefParams `json:"params"`
	// CostModel is a topo.ParseCostModel spec ("hetero:4") over the
	// uniform Params base; empty keeps the uniform arithmetic.
	CostModel    string         `json:"cost_model,omitempty"`
	Extra        []ExtraLink    `json:"extra,omitempty"`
	Flows        []ScenarioFlow `json:"flows"`
	LinkFailures []LinkFailure  `json:"link_failures,omitempty"`
	NodeFailures []NodeFailure  `json:"node_failures,omitempty"`
}

// genShapes are the generator's torus geometries: every dimension count
// the routing layer distinguishes (2–5 dims), odd and even extents, all
// small enough that the O(flows²·links) reference engine stays fast.
var genShapes = [][]int{
	{2, 2, 2},
	{3, 2, 2},
	{3, 3, 3},
	{4, 4, 2},
	{2, 4, 4},
	{2, 2, 4, 2},
	{2, 2, 2, 2, 2},
	{2, 2, 4, 4},
}

// Generate builds the scenario for one seed. The same seed always
// produces the same scenario (the generator only draws from its own
// seeded source), which is what lets a fuzz finding be archived as just
// a seed. The axes follow the paper's evaluation: torus shape, sparse
// communication pattern (which pairs talk, with what routes), message
// size (zero-byte synchronization points up to multi-MB bursts), and a
// fault campaign (ISSUE: torus shape / sparse pattern / message-size /
// fault-campaign axes).
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{Seed: seed}
	sc.Shape = append([]int(nil), genShapes[rng.Intn(len(genShapes))]...)
	tor, err := torus.New(torus.Shape(sc.Shape))
	if err != nil {
		panic(fmt.Sprintf("check: generator shape %v: %v", sc.Shape, err))
	}
	size := tor.Size()

	lb := 1e9 + rng.Float64()*1e9
	sc.Params = RefParams{
		LinkBandwidth:      lb,
		PerFlowBandwidth:   (0.5 + rng.Float64()) * lb,
		LocalCopyBandwidth: (4 + 8*rng.Float64()) * 1e9,
		SenderOverhead:     1e-6 + rng.Float64()*29e-6,
		ReceiverOverhead:   1e-6 + rng.Float64()*29e-6,
		HopLatency:         1e-9 + rng.Float64()*99e-9,
	}

	for i, n := 0, rng.Intn(3); i < n; i++ {
		sc.Extra = append(sc.Extra, ExtraLink{
			From:     rng.Intn(size),
			Capacity: (0.5 + rng.Float64()) * lb,
		})
	}
	totalLinks := tor.NumTorusLinks() + len(sc.Extra)

	nFlows := 1 + rng.Intn(32)
	for i := 0; i < nFlows; i++ {
		f := ScenarioFlow{Src: rng.Intn(size), Dst: rng.Intn(size)}
		switch k := rng.Intn(10); {
		case k < 5:
			// Default deterministic route between distinct endpoints.
			if f.Src == f.Dst {
				f.Dst = (f.Dst + 1) % size
			}
		case k < 6:
			// Node-local copy.
			f.Dst = f.Src
		case k < 8:
			// Explicit dimension-ordered route (the zone-routing idiom);
			// src == dst yields an explicit empty route. Sometimes extended
			// over an extra link, the way ionet extends bridge routes.
			r := routing.RouteWithOrder(tor, torus.NodeID(f.Src), torus.NodeID(f.Dst), rng.Perm(tor.Dims()))
			f.Links = append([]int{}, r.Links...)
			f.HasLinks = true
			if len(sc.Extra) > 0 && rng.Intn(2) == 0 {
				f.Links = append(f.Links, tor.NumTorusLinks()+rng.Intn(len(sc.Extra)))
			}
		default:
			// Arbitrary link multiset, sampled with replacement: the engine
			// must treat a flow's route as a set of occupied links, so
			// repeats must neither double capacity demand nor byte charges.
			m := 1 + rng.Intn(6)
			f.Links = make([]int, 0, m)
			for j := 0; j < m; j++ {
				f.Links = append(f.Links, rng.Intn(totalLinks))
			}
			f.HasLinks = true
		}
		if rng.Intn(10) == 0 {
			f.Bytes = 0
		} else {
			// Log-uniform in [1 B, 8 MB].
			f.Bytes = 1 + int64(math.Exp(rng.Float64()*math.Log(8<<20)))
		}
		if i > 0 && rng.Intn(10) < 3 {
			for d, nd := 0, 1+rng.Intn(2); d < nd; d++ {
				dep := rng.Intn(i)
				dup := false
				for _, have := range f.Deps {
					if have == dep {
						dup = true
					}
				}
				if !dup {
					f.Deps = append(f.Deps, dep)
				}
			}
		}
		if rng.Intn(10) < 3 {
			f.ExtraDelay = rng.Float64() * 50e-6
		}
		sc.Flows = append(sc.Flows, f)
	}

	// Fault campaign: failure instants are continuous draws, so they
	// almost surely never tie with flow events; the horizon is log-uniform
	// from "before anything activates" to "well past most makespans".
	horizon := math.Exp(math.Log(2e-4) + rng.Float64()*math.Log(50e-3/2e-4))
	for i, n := 0, rng.Intn(4); i < n; i++ {
		sc.LinkFailures = append(sc.LinkFailures, LinkFailure{
			Link: rng.Intn(totalLinks),
			At:   rng.Float64() * horizon,
		})
	}
	if rng.Intn(3) == 0 {
		sc.NodeFailures = append(sc.NodeFailures, NodeFailure{
			Node: rng.Intn(size),
			At:   rng.Float64() * horizon,
		})
	}
	return sc
}

// sparseShapes are the larger geometries GenerateSparse draws from: big
// enough that the incremental engine's dirty regions see real frontiers
// (hundreds of nodes, thousands of links), and already past what the
// O(flows²·links) reference engine can sweep in test time.
var sparseShapes = [][]int{
	{4, 4, 4, 2},
	{2, 4, 4, 4, 2},
	{4, 4, 4, 4, 2},
	{8, 4, 4, 4},
}

// GenerateSparse builds a bigger, sparser scenario for one seed: a few
// hundred mostly-neighborhood flows with jittered release times on a
// medium torus — the regime the incremental waterfill's cutoff targets
// (most links unsaturated, changes local). The same determinism contract
// as Generate holds. Used by the incremental-vs-global differential
// suite, which skips the reference engine.
func GenerateSparse(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed5eed))
	sc := Scenario{Seed: seed}
	sc.Shape = append([]int(nil), sparseShapes[rng.Intn(len(sparseShapes))]...)
	tor, err := torus.New(torus.Shape(sc.Shape))
	if err != nil {
		panic(fmt.Sprintf("check: generator shape %v: %v", sc.Shape, err))
	}
	size := tor.Size()

	lb := 1e9 + rng.Float64()*1e9
	sc.Params = RefParams{
		LinkBandwidth:      lb,
		PerFlowBandwidth:   (0.5 + rng.Float64()) * lb,
		LocalCopyBandwidth: (4 + 8*rng.Float64()) * 1e9,
		SenderOverhead:     1e-6 + rng.Float64()*29e-6,
		ReceiverOverhead:   1e-6 + rng.Float64()*29e-6,
		HopLatency:         1e-9 + rng.Float64()*99e-9,
	}
	totalLinks := tor.NumTorusLinks()

	nFlows := 150 + rng.Intn(250)
	for i := 0; i < nFlows; i++ {
		src := rng.Intn(size)
		var dst int
		if rng.Intn(10) < 7 {
			// Neighborhood exchange: a small node-index shift, the sparse
			// halo pattern the paper's workloads exhibit.
			dst = (src + 1 + rng.Intn(7)) % size
		} else {
			// Long-haul stragglers keep some routes crossing the machine.
			dst = rng.Intn(size)
			if dst == src {
				dst = (dst + size/2) % size
			}
		}
		f := ScenarioFlow{Src: src, Dst: dst}
		// Log-uniform in [1 KB, 4 MB]; zero-byte syncs stay rare.
		if rng.Intn(20) == 0 {
			f.Bytes = 0
		} else {
			f.Bytes = 1 << 10 << uint(rng.Intn(13))
		}
		if i > 0 && rng.Intn(10) == 0 {
			f.Deps = append(f.Deps, rng.Intn(i))
		}
		// Jittered releases spread activations over many distinct
		// instants, so sweeps see small dirty sets instead of one
		// everything-at-t0 component.
		f.ExtraDelay = rng.Float64() * 2e-3
		sc.Flows = append(sc.Flows, f)
	}

	horizon := 3e-3
	for i, n := 0, rng.Intn(6); i < n; i++ {
		sc.LinkFailures = append(sc.LinkFailures, LinkFailure{
			Link: rng.Intn(totalLinks),
			At:   rng.Float64() * horizon,
		})
	}
	if rng.Intn(3) == 0 {
		sc.NodeFailures = append(sc.NodeFailures, NodeFailure{
			Node: rng.Intn(size),
			At:   rng.Float64() * horizon,
		})
	}
	return sc
}

// genTopoSpecs are the non-torus fabrics GenerateTopo draws from: small
// enough for the reference engine, varied across family, rail count, and
// gateway pressure.
var genTopoSpecs = []string{
	"dragonfly:4x4x1",
	"dragonfly:6x4x2",
	"dragonfly:4x8x1",
	"fattree:8x4x1",
	"fattree:16x4x2",
	"fattree:8x2x3",
}

// GenerateTopo builds the scenario for one seed on a non-torus topology
// (the topology axis of the differential suite). Flow kinds mirror
// Generate: default oracle routes, local copies, explicit routes (the
// topology's own oracle path, sometimes extended over an extra link), and
// arbitrary link multisets. A third of the scenarios also draw a
// heterogeneous cost model, so the CPU/GPU-tiered endpoint arithmetic is
// differentially tested on every fabric. Determinism contract as
// Generate.
func GenerateTopo(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed ^ 0x70705eed))
	sc := Scenario{Seed: seed}
	sc.Topology = genTopoSpecs[rng.Intn(len(genTopoSpecs))]
	tp, err := topo.Parse(sc.Topology)
	if err != nil {
		panic(fmt.Sprintf("check: generator topology %q: %v", sc.Topology, err))
	}
	size := tp.NumNodes()

	lb := 1e9 + rng.Float64()*1e9
	sc.Params = RefParams{
		LinkBandwidth:      lb,
		PerFlowBandwidth:   (0.5 + rng.Float64()) * lb,
		LocalCopyBandwidth: (4 + 8*rng.Float64()) * 1e9,
		SenderOverhead:     1e-6 + rng.Float64()*29e-6,
		ReceiverOverhead:   1e-6 + rng.Float64()*29e-6,
		HopLatency:         1e-9 + rng.Float64()*99e-9,
	}
	if rng.Intn(3) == 0 {
		sc.CostModel = fmt.Sprintf("hetero:%d", 2+rng.Intn(4))
	}

	for i, n := 0, rng.Intn(3); i < n; i++ {
		sc.Extra = append(sc.Extra, ExtraLink{
			From:     rng.Intn(size),
			Capacity: (0.5 + rng.Float64()) * lb,
		})
	}
	totalLinks := tp.NumLinks() + len(sc.Extra)

	nFlows := 1 + rng.Intn(32)
	for i := 0; i < nFlows; i++ {
		f := ScenarioFlow{Src: rng.Intn(size), Dst: rng.Intn(size)}
		switch k := rng.Intn(10); {
		case k < 5:
			// Default oracle route between distinct endpoints.
			if f.Src == f.Dst {
				f.Dst = (f.Dst + 1) % size
			}
		case k < 6:
			// Node-local copy.
			f.Dst = f.Src
		case k < 8:
			// Explicit route: the oracle path submitted as literal links
			// (src == dst yields an explicit empty route), sometimes
			// extended over an extra link.
			f.Links = append([]int{}, tp.Route(torus.NodeID(f.Src), torus.NodeID(f.Dst))...)
			f.HasLinks = true
			if len(sc.Extra) > 0 && rng.Intn(2) == 0 {
				f.Links = append(f.Links, tp.NumLinks()+rng.Intn(len(sc.Extra)))
			}
		default:
			// Arbitrary link multiset, sampled with replacement.
			m := 1 + rng.Intn(6)
			f.Links = make([]int, 0, m)
			for j := 0; j < m; j++ {
				f.Links = append(f.Links, rng.Intn(totalLinks))
			}
			f.HasLinks = true
		}
		if rng.Intn(10) == 0 {
			f.Bytes = 0
		} else {
			f.Bytes = 1 + int64(math.Exp(rng.Float64()*math.Log(8<<20)))
		}
		if i > 0 && rng.Intn(10) < 3 {
			for d, nd := 0, 1+rng.Intn(2); d < nd; d++ {
				dep := rng.Intn(i)
				dup := false
				for _, have := range f.Deps {
					if have == dep {
						dup = true
					}
				}
				if !dup {
					f.Deps = append(f.Deps, dep)
				}
			}
		}
		if rng.Intn(10) < 3 {
			f.ExtraDelay = rng.Float64() * 50e-6
		}
		sc.Flows = append(sc.Flows, f)
	}

	horizon := math.Exp(math.Log(2e-4) + rng.Float64()*math.Log(50e-3/2e-4))
	for i, n := 0, rng.Intn(4); i < n; i++ {
		sc.LinkFailures = append(sc.LinkFailures, LinkFailure{
			Link: rng.Intn(totalLinks),
			At:   rng.Float64() * horizon,
		})
	}
	if rng.Intn(3) == 0 {
		sc.NodeFailures = append(sc.NodeFailures, NodeFailure{
			Node: rng.Intn(size),
			At:   rng.Float64() * horizon,
		})
	}
	return sc
}

// WriteScenario archives a scenario as indented JSON.
func WriteScenario(path string, sc Scenario) error {
	b, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadScenario loads an archived scenario.
func ReadScenario(path string) (Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var sc Scenario
	if err := json.Unmarshal(b, &sc); err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}
