package check

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
)

// TestDifferentialSeedsTopo is the topology axis of the 200-seed suite:
// dragonfly and fat-tree scenarios (a third with a heterogeneous cost
// model) through all three engines. Any divergence is a topology or
// cost-model bug — archive the failing seed and fix it.
func TestDifferentialSeedsTopo(t *testing.T) {
	if testing.Short() {
		t.Skip("topology differential sweep is seconds-long; skipped in -short")
	}
	families := map[string]int{}
	for seed := int64(0); seed < 200; seed++ {
		sc := GenerateTopo(seed)
		families[sc.Topology]++
		if divs := RunDifferential(sc); len(divs) > 0 {
			for _, d := range divs {
				t.Errorf("seed %d: %s", seed, d)
			}
			t.Fatalf("seed %d: %d divergences (%d flows on %s cost=%q, %d link / %d node failures)",
				seed, len(divs), len(sc.Flows), sc.Topology, sc.CostModel, len(sc.LinkFailures), len(sc.NodeFailures))
		}
	}
	// The generator must actually exercise every configured fabric.
	for _, spec := range genTopoSpecs {
		if families[spec] == 0 {
			t.Errorf("200 seeds never drew %s", spec)
		}
	}
}

// TestTopoInvariants attaches the live Auditor to topology scenarios:
// byte conservation, link capacity, and per-flow rate-cap invariants must
// hold on dragonfly and fat-tree exactly as on the torus.
func TestTopoInvariants(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		var a *Auditor
		sc := GenerateTopo(seed)
		if _, err := RunNetsim(sc, func(e *netsim.Engine) { a = NewAuditor(e) }); err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc.Topology, err)
		}
		if viols := a.Finish(); len(viols) > 0 {
			for _, v := range viols {
				t.Errorf("seed %d (%s): %s", seed, sc.Topology, v)
			}
		}
		if a.SweepsAudited() == 0 {
			t.Errorf("seed %d (%s): auditor sampled no sweeps", seed, sc.Topology)
		}
	}
}

// TestGenerateTopoDeterministic pins the archive-a-seed contract for the
// topology generator.
func TestGenerateTopoDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a, err := json.Marshal(GenerateTopo(seed))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(GenerateTopo(seed))
		if string(a) != string(b) {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
	}
}

// TestTopoScenarioRoundTrip pins the JSON schema: topology and cost
// model survive the archive round trip, and a torus scenario serializes
// without either field (the BG/Q-default compatibility rule — old
// corpus files and new torus files are the same bytes).
func TestTopoScenarioRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sc := GenerateTopo(3)
	sc.CostModel = "hetero:3"
	path := filepath.Join(dir, "topo.json")
	if err := WriteScenario(path, sc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Topology != sc.Topology || got.CostModel != sc.CostModel {
		t.Fatalf("round trip lost the topology axis: %+v", got)
	}

	tor := Generate(3)
	if tor.Topology != "" || tor.CostModel != "" {
		t.Fatalf("torus generator must leave the topology fields empty: %+v", tor)
	}
	path = filepath.Join(dir, "torus.json")
	if err := WriteScenario(path, tor); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"topology", "cost_model"} {
		if _, present := raw[field]; present {
			t.Fatalf("torus scenario JSON must omit %q (BG/Q-default rule)", field)
		}
	}
}

// TestTopoNetworkMatchesTorusNetwork pins the byte-identical-default
// guarantee at the network layer: a network built through the topology
// adapter is indistinguishable from one built from the torus directly.
func TestTopoNetworkMatchesTorusNetwork(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 3, 4})
	direct := netsim.NewNetwork(tor, 1.8e9)
	viaTopo := netsim.NewNetworkTopo(topo.NewTorus(tor), 1.8e9)
	if viaTopo.Torus() == nil {
		t.Fatal("torus adapter network must keep a non-nil Torus()")
	}
	if direct.NumLinks() != viaTopo.NumLinks() || direct.NumNodes() != viaTopo.NumNodes() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", direct.NumLinks(), direct.NumNodes(), viaTopo.NumLinks(), viaTopo.NumNodes())
	}
	for l := 0; l < direct.NumLinks(); l++ {
		if direct.Capacity(l) != viaTopo.Capacity(l) {
			t.Fatalf("link %d capacity %g vs %g", l, direct.Capacity(l), viaTopo.Capacity(l))
		}
	}
	for src := 0; src < tor.Size(); src++ {
		for dst := 0; dst < tor.Size(); dst++ {
			a := direct.Route(torus.NodeID(src), torus.NodeID(dst)).Links
			b := viaTopo.Route(torus.NodeID(src), torus.NodeID(dst)).Links
			if len(a) != len(b) {
				t.Fatalf("route %d->%d differs", src, dst)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("route %d->%d differs at hop %d", src, dst, i)
				}
			}
		}
	}
}

// TestUniformCostModelIsIdentity pins that installing the uniform cost
// model built from the engine's own Params changes nothing: same flows,
// same timelines, same link bytes, bit for bit.
func TestUniformCostModelIsIdentity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sc := Generate(seed)
		plain, err := RunNetsim(sc, nil)
		if err != nil {
			continue
		}
		modeled, err := RunNetsim(sc, func(e *netsim.Engine) {
			e.SetCostModel(netsim.CostModelFromParams(e.Params()))
		})
		if err != nil {
			t.Fatalf("seed %d: modeled run errored: %v", seed, err)
		}
		if len(plain.Flows) != len(modeled.Flows) {
			t.Fatalf("seed %d: flow counts differ", seed)
		}
		for i := range plain.Flows {
			if plain.Flows[i] != modeled.Flows[i] {
				t.Fatalf("seed %d flow %d: %+v vs %+v", seed, i, plain.Flows[i], modeled.Flows[i])
			}
		}
		for l := range plain.LinkBytes {
			if plain.LinkBytes[l] != modeled.LinkBytes[l] {
				t.Fatalf("seed %d link %d: %g vs %g", seed, l, plain.LinkBytes[l], modeled.LinkBytes[l])
			}
		}
	}
}

// TestHeteroCostModelShapesRates pins the heterogeneous model's
// observable effect end to end: on a fat-tree where only node 0 is
// GPU-tier, a GPU->GPU flow finishes faster than the same-length
// CPU->CPU flow because its endpoint cap doubles.
func TestHeteroCostModelShapesRates(t *testing.T) {
	tp, err := topo.Parse("fattree:8x4x1")
	if err != nil {
		t.Fatal(err)
	}
	p := netsim.DefaultParams()
	cm, err := topo.NewHetero(netsim.CostModelFromParams(p), 4) // nodes 0 and 4 are GPU
	if err != nil {
		t.Fatal(err)
	}

	run := func(src, dst torus.NodeID) float64 {
		net := netsim.NewNetworkTopo(tp, p.LinkBandwidth*4) // links never bottleneck
		e, err := netsim.NewEngine(net, p)
		if err != nil {
			t.Fatal(err)
		}
		e.SetCostModel(cm)
		id := e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: 64 << 20})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		res := e.Result(id)
		return float64(res.TransferEnd - res.Activated)
	}

	gpu := run(0, 4) // both GPU-tier: 2x rate cap
	cpu := run(1, 5) // both CPU-tier: base rate cap
	if gpu >= cpu {
		t.Fatalf("GPU->GPU transfer (%gs) not faster than CPU->CPU (%gs)", gpu, cpu)
	}
	if ratio := cpu / gpu; ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("rate ratio %g, want ~2 (the hetero rate scale)", ratio)
	}
}
