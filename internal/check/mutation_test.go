package check

// Mutation tests: the ISSUE's acceptance bar requires proof that the
// oracle catches each invariant class, not just that the current code
// passes it. Each test injects one deliberate corruption — a shrunk
// capacity, a tampered counter, a perturbed physics constant, an
// overlapping leg — and fails if the corresponding checker stays quiet.

import (
	"strings"
	"testing"

	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

func wantViolation(t *testing.T, viols []Violation, invariant string) {
	t.Helper()
	for _, v := range viols {
		if v.Invariant == invariant {
			return
		}
	}
	t.Fatalf("injected %s corruption not caught (violations: %v)", invariant, viols)
}

// Capacity class: audit against 40%% of the real capacity — a correct
// run must now look oversubscribed.
func TestMutationCapacityAuditFires(t *testing.T) {
	var a *Auditor
	sc := Generate(3)
	if _, err := RunNetsim(sc, func(e *netsim.Engine) {
		a = NewAuditor(e)
		a.capScale = 0.4
	}); err != nil {
		t.Fatal(err)
	}
	wantViolation(t, a.Finish(), "capacity")
}

// Conservation class: tamper with one link's window-charge sum.
func TestMutationConservationFires(t *testing.T) {
	var a *Auditor
	sc := Generate(3)
	if _, err := RunNetsim(sc, func(e *netsim.Engine) { a = NewAuditor(e) }); err != nil {
		t.Fatal(err)
	}
	a.sums[0] += 4096
	wantViolation(t, a.Finish(), "conservation")
}

// Timeline class: a timeline holding bytes the engine never charged.
func TestMutationTimelineFires(t *testing.T) {
	tl := obs.NewLinkTimeline(1e-6)
	tl.Add(0, 0, 1e-6, 1000)
	linkBytes := []float64{1000, 0}
	if v := CheckTimelineConservation(tl, linkBytes); len(v) != 0 {
		t.Fatalf("clean timeline flagged: %v", v)
	}
	tl.Add(0, 1e-6, 2e-6, 1) // one stray byte
	wantViolation(t, CheckTimelineConservation(tl, linkBytes), "timeline")
}

// Differential classes: perturb each field CompareRuns watches and
// assert the right divergence kind fires.
func TestMutationCompareRunsFires(t *testing.T) {
	sc := Generate(3)
	base, err := RunRef(sc)
	if err != nil {
		t.Fatal(err)
	}
	perturb := func(mut func(*RunOutput)) RunOutput {
		out := RunOutput{
			Flows:     append([]RefResult(nil), base.Flows...),
			LinkBytes: append([]float64(nil), base.LinkBytes...),
		}
		mut(&out)
		return out
	}
	cases := []struct {
		name string
		kind string
		mut  func(*RunOutput)
	}{
		{"outcome flip", "outcome", func(o *RunOutput) { o.Flows[0].Done = !o.Flows[0].Done }},
		{"completion shift", "time", func(o *RunOutput) { o.Flows[0].Completed += 1e-3 }},
		{"byte leak", "link_bytes", func(o *RunOutput) { o.LinkBytes[0] += 1 }},
	}
	if divs := CompareRuns(base, base); len(divs) != 0 {
		t.Fatalf("identical runs diverge: %v", divs)
	}
	for _, c := range cases {
		divs := CompareRuns(perturb(c.mut), base)
		found := false
		for _, d := range divs {
			if d.Kind == c.kind {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no %q divergence reported (got %v)", c.name, c.kind, divs)
		}
	}
}

// Physics-drift class: the differential must notice a changed machine
// constant — here the reference pays 1 µs more receiver overhead, the
// kind of silent unit drift the two independent parameter structs exist
// to catch.
func TestMutationPhysicsDriftFires(t *testing.T) {
	sc := Generate(3)
	got, err := RunNetsim(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	mutated := sc
	mutated.Params.ReceiverOverhead += 1e-6
	want, err := RunRef(mutated)
	if err != nil {
		t.Fatal(err)
	}
	divs := CompareRuns(got, want)
	found := false
	for _, d := range divs {
		if d.Kind == "time" {
			found = true
		}
	}
	if !found {
		t.Fatalf("1µs receiver-overhead drift produced no time divergence (got %v)", divs)
	}
}

// Proxy-disjointness class: two proxies sharing a leg link, and legs
// that do not meet at the proxy node.
func TestMutationProxyDisjointFires(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{1, 1, 3, 3, 1})
	pl, err := core.NewPairPlanner(tor, core.DefaultProxyConfig())
	if err != nil {
		t.Fatal(err)
	}
	proxies := pl.SelectProxies(src, dst)
	if len(proxies) < 2 {
		t.Fatalf("need 2 proxies, got %d", len(proxies))
	}
	overlap := []core.ProxyRoute{proxies[0], proxies[1]}
	overlap[1].Leg1 = proxies[0].Leg1 // share proxy 0's first leg links
	wantViolation(t, CheckProxyDisjoint(overlap), "proxy-disjoint")

	broken := []core.ProxyRoute{proxies[0]}
	broken[0].Proxy = dst // legs no longer meet at the proxy
	wantViolation(t, CheckProxyDisjoint(broken), "proxy-disjoint")
}

// Aggregation classes: an I/O node hoarding more than one message
// beyond its peers, and an aggregator list that stops interleaving.
func TestMutationAggChecksFire(t *testing.T) {
	wantViolation(t, CheckAggBalance([]int64{10 << 20, 1 << 20}, 1<<20), "agg-balance")
	aggs := []core.Aggregator{
		{Pset: 0, Bridge: 0},
		{Pset: 0, Bridge: 0}, // should be pset 1
	}
	wantViolation(t, CheckAggInterleave(aggs, 2, 2), "agg-interleave")
}

// Route-cache class: compare the cache against a deliberately different
// router (reversed endpoints) — equality must fail.
func TestMutationRouteCacheFires(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	c := routing.NewCache(tor)
	pairs := [][2]torus.NodeID{{0, 37}, {5, 100}}
	wrongRef := func(src, dst torus.NodeID) routing.Route {
		return routing.DeterministicRoute(tor, dst, src)
	}
	wantViolation(t, CheckRouteCache(c, pairs, 2, wrongRef), "route-cache")
}

// Plan/model class: a fabricated plan that proxies below the threshold
// with too few proxies — every clause of the agreement check must bite.
func TestMutationPlanModelFires(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := netsim.DefaultParams()
	cfg := core.DefaultProxyConfig()
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{1, 1, 3, 3, 1})
	pl, err := core.NewPairPlanner(tor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	proxies := pl.SelectProxies(src, dst)
	lie := core.PairPlan{Mode: core.Proxied, Proxies: proxies[:1], Bytes: 1 << 10}
	viols := CheckPlanModelAgreement(tor, p, cfg, lie, src, dst, 1<<10)
	wantViolation(t, viols, "plan-model")
	var below, few bool
	for _, v := range viols {
		if strings.Contains(v.Detail, "threshold") {
			below = true
		}
		if strings.Contains(v.Detail, "MinProxies") {
			few = true
		}
	}
	if !below || !few {
		t.Fatalf("expected both threshold and MinProxies violations, got %v", viols)
	}
}
