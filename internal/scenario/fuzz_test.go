package scenario

import (
	"strings"
	"testing"
)

// FuzzLoad checks the scenario parser never panics and that accepted
// configurations re-validate.
func FuzzLoad(f *testing.F) {
	f.Add(`{"shape": "2x2x4x4x2", "io": {"workload": "pattern1", "approach": "topology-aware"}}`)
	f.Add(`{"shape": "4x4x4x4x2", "transfer": {"kind": "pair", "src": 0, "dst": 1, "bytes": 1024}}`)
	f.Add(`{"shape": "2x2"}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, raw string) {
		cfg, err := Load(strings.NewReader(raw))
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted config fails re-validation: %v", err)
		}
	})
}
