package scenario

import (
	"strings"
	"testing"
)

// TestTopologyScenarioRuns: a non-torus scenario loads, validates, and
// runs a direct pair transfer end to end.
func TestTopologyScenarioRuns(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{
		"topology": "dragonfly:4x4x2",
		"transfer": {"kind": "pair", "src": 1, "dst": 9, "bytes": 4194304}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GBps <= 0 || res.MakespanMS <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if !strings.Contains(res.Mode, "dragonfly:4x4x2") {
		t.Errorf("mode %q does not name the fabric", res.Mode)
	}
}

// TestTopologyScenarioCollectsTrace: the flow-timeline export works on
// generic fabrics (link names come from the topology, not the torus).
func TestTopologyScenarioCollectsTrace(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{
		"topology": "fattree:8x4x1",
		"collectTrace": true,
		"transfer": {"kind": "pair", "src": 0, "dst": 5, "bytes": 1048576}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("collectTrace produced no trace")
	}
}

// TestTopologyScenarioRejectsTorusOnlyKnobs pins the explicit rejection
// of every 5D-torus construct: the error must name the offending knob,
// never silently ignore it.
func TestTopologyScenarioRejectsTorusOnlyKnobs(t *testing.T) {
	for _, tc := range []struct {
		name string
		json string
		want string
	}{
		{"io", `{"topology": "fattree:8x4", "io": {"workload": "dense", "approach": "topology-aware"}}`, "transfer only"},
		{"group", `{"topology": "fattree:8x4", "transfer": {"kind": "group", "bytes": 1, "srcOrigin": [0], "srcExtent": [1], "dstOrigin": [1], "dstExtent": [1]}}`, `kind "pair" only`},
		{"proxies", `{"topology": "fattree:8x4", "transfer": {"kind": "pair", "src": 0, "dst": 1, "bytes": 1, "proxies": 2}}`, "torus-only"},
		{"failLinks", `{"topology": "fattree:8x4", "failLinks": [{"node": 0, "dim": 0, "dir": 1}], "transfer": {"kind": "pair", "src": 0, "dst": 1, "bytes": 1}}`, "failLinks"},
		{"campaign", `{"topology": "fattree:8x4", "faultCampaign": {"kind": "uniform", "count": 1, "windowMS": 1}, "transfer": {"kind": "pair", "src": 0, "dst": 1, "bytes": 1}}`, "fault campaigns"},
		{"badSpec", `{"topology": "fattree:1x0", "transfer": {"kind": "pair", "src": 0, "dst": 1, "bytes": 1}}`, "fattree"},
		{"endpoints", `{"topology": "fattree:8x4", "transfer": {"kind": "pair", "src": 0, "dst": 8, "bytes": 1}}`, "outside fabric"},
		{"noTransfer", `{"topology": "fattree:8x4"}`, "requires a transfer"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.json))
			if err == nil {
				t.Fatal("accepted, want rejection")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
