package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgqflow/internal/workload"
)

func TestLoadValidScenario(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{
		"shape": "2x2x4x4x2",
		"seed": 3,
		"io": {"workload": "pattern2", "approach": "topology-aware"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RanksPerNode != 16 {
		t.Fatalf("default ranksPerNode = %d", cfg.RanksPerNode)
	}
	if cfg.IO.MaxBytes != 8<<20 {
		t.Fatalf("default maxBytes = %d", cfg.IO.MaxBytes)
	}
}

func TestLoadRejectsBadConfigs(t *testing.T) {
	cases := map[string]string{
		"missing shape":     `{"io": {"workload": "dense", "approach": "topology-aware"}}`,
		"bad shape":         `{"shape": "axb", "io": {"workload": "dense", "approach": "topology-aware"}}`,
		"both sections":     `{"shape": "2x2x4x4x2", "io": {"workload": "dense", "approach": "topology-aware"}, "transfer": {"kind": "pair", "bytes": 1}}`,
		"neither section":   `{"shape": "2x2x4x4x2"}`,
		"bad workload":      `{"shape": "2x2x4x4x2", "io": {"workload": "zipf", "approach": "topology-aware"}}`,
		"bad approach":      `{"shape": "2x2x4x4x2", "io": {"workload": "dense", "approach": "magic"}}`,
		"bad transfer kind": `{"shape": "2x2x4x4x2", "transfer": {"kind": "multicast", "bytes": 1}}`,
		"zero bytes":        `{"shape": "2x2x4x4x2", "transfer": {"kind": "pair", "bytes": 0}}`,
		"unknown field":     `{"shape": "2x2x4x4x2", "volume": 11, "io": {"workload": "dense", "approach": "topology-aware"}}`,
		"not json":          `shape: 2x2x4x4x2`,
	}
	for name, raw := range cases {
		if _, err := Load(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunPairTransfer(t *testing.T) {
	res, err := Run(Config{
		Shape: "2x2x4x4x2",
		Transfer: &TransferConfig{
			Kind: "pair", Src: 0, Dst: 127, Bytes: 64 << 20, Proxies: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GBps < 3.0 || res.GBps > 3.6 {
		t.Fatalf("4-proxy pair throughput %.2f GB/s, want ~3.3", res.GBps)
	}
	if !strings.Contains(res.Mode, "proxied") {
		t.Fatalf("mode %q", res.Mode)
	}
}

func TestRunPairDirect(t *testing.T) {
	res, err := Run(Config{
		Shape: "2x2x4x4x2",
		Transfer: &TransferConfig{
			Kind: "pair", Src: 0, Dst: 127, Bytes: 64 << 20, Proxies: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GBps < 1.5 || res.GBps > 1.8 {
		t.Fatalf("direct throughput %.2f GB/s", res.GBps)
	}
}

func TestRunPairRejectsBadEndpoints(t *testing.T) {
	_, err := Run(Config{
		Shape:    "2x2x4x4x2",
		Transfer: &TransferConfig{Kind: "pair", Src: 0, Dst: 9999, Bytes: 1 << 20},
	})
	if err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

func TestRunGroupTransfer(t *testing.T) {
	res, err := Run(Config{
		Shape: "4x4x4x4x2",
		Transfer: &TransferConfig{
			Kind:      "group",
			Bytes:     8 << 20,
			SrcOrigin: []int{0, 0, 0, 0, 0}, SrcExtent: []int{1, 1, 4, 4, 2},
			DstOrigin: []int{3, 3, 0, 0, 0}, DstExtent: []int{1, 1, 4, 4, 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GBps <= 1.7 {
		t.Fatalf("group multipath throughput %.2f GB/s, want > direct", res.GBps)
	}
}

func TestRunGroupRejectsBadBoxes(t *testing.T) {
	_, err := Run(Config{
		Shape: "4x4x4x4x2",
		Transfer: &TransferConfig{
			Kind:      "group",
			Bytes:     1 << 20,
			SrcOrigin: []int{0, 0, 0, 0, 0}, SrcExtent: []int{9, 9, 9, 9, 9},
			DstOrigin: []int{0, 0, 0, 0, 0}, DstExtent: []int{1, 1, 1, 1, 1},
		},
	})
	if err == nil {
		t.Fatal("oversized box accepted")
	}
}

func TestRunIOBothApproaches(t *testing.T) {
	base := Config{
		Shape: "2x2x4x4x2",
		Seed:  5,
	}
	ours := base
	ours.IO = &IOConfig{Workload: "pattern2", Approach: "topology-aware"}
	def := base
	def.IO = &IOConfig{Workload: "pattern2", Approach: "collective-io"}

	r1, err := Run(ours)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(def)
	if err != nil {
		t.Fatal(err)
	}
	if r1.GBps <= r2.GBps {
		t.Fatalf("topology-aware %.2f should beat collective-io %.2f", r1.GBps, r2.GBps)
	}
	if r1.UplinkImbalance <= 0 || r2.UplinkImbalance <= 0 {
		t.Fatal("uplink imbalance not reported")
	}
}

func TestRunIOHACCWorkload(t *testing.T) {
	res, err := Run(Config{
		Shape: "4x4x4x4x2",
		IO:    &IOConfig{Workload: "hacc", Approach: "topology-aware", MaxBytes: 6 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GBps <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunIOWithMapping(t *testing.T) {
	res, err := Run(Config{
		Shape:   "2x2x4x4x2",
		Mapping: "TABCDE",
		Seed:    5,
		IO:      &IOConfig{Workload: "pattern1", Approach: "topology-aware"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "TABCDE") {
		t.Fatalf("mapping not surfaced in notes: %v", res.Notes)
	}
}

func TestRunIOBadMapping(t *testing.T) {
	_, err := Run(Config{
		Shape:   "2x2x4x4x2",
		Mapping: "XYZZY!",
		IO:      &IOConfig{Workload: "dense", Approach: "topology-aware", MaxBytes: 1 << 20},
	})
	if err == nil {
		t.Fatal("bad mapping accepted")
	}
}

func TestExampleScenarioFilesLoadAndRun(t *testing.T) {
	files, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected at least 4 example scenarios, found %d", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			fh, err := os.Open(f)
			if err != nil {
				t.Fatal(err)
			}
			defer fh.Close()
			cfg, err := Load(fh)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.GBps <= 0 {
				t.Fatal("no throughput")
			}
		})
	}
}

func TestRunIOFileWorkload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "burst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int64, 100)
	for i := range sizes {
		sizes[i] = int64(i) * 1000
	}
	if err := workload.WriteBurst(f, workload.Burst{Description: "recorded", Sizes: sizes}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	res, err := Run(Config{
		Shape: "2x2x4x4x2",
		IO:    &IOConfig{Workload: "file", BurstFile: path, Approach: "topology-aware"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GBps <= 0 {
		t.Fatal("no throughput from recorded burst")
	}
	// Missing file errors.
	if _, err := Run(Config{
		Shape: "2x2x4x4x2",
		IO:    &IOConfig{Workload: "file", BurstFile: filepath.Join(dir, "nope.json"), Approach: "topology-aware"},
	}); err == nil {
		t.Fatal("missing burst file accepted")
	}
	// file workload without a path is rejected at validation.
	if _, err := Run(Config{
		Shape: "2x2x4x4x2",
		IO:    &IOConfig{Workload: "file", Approach: "topology-aware"},
	}); err == nil {
		t.Fatal("file workload without burstFile accepted")
	}
}

func TestRunTransferWithTrace(t *testing.T) {
	res, err := Run(Config{
		Shape:        "2x2x4x4x2",
		CollectTrace: true,
		Transfer:     &TransferConfig{Kind: "pair", Src: 0, Dst: 127, Bytes: 8 << 20, Proxies: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Flows) != 8 {
		t.Fatalf("trace missing or wrong size: %+v", res.Trace)
	}
}

func TestRunPairWithFailures(t *testing.T) {
	res, err := Run(Config{
		Shape: "2x2x4x4x2",
		FailLinks: []FailLink{
			{Node: 0, Dim: 2, Dir: -1}, // first hop of the default route
		},
		Transfer: &TransferConfig{Kind: "pair", Src: 0, Dst: 127, Bytes: 32 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GBps <= 0 {
		t.Fatal("no throughput around failure")
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "failed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failure note missing: %v", res.Notes)
	}
	// Invalid failure specs rejected.
	if _, err := Run(Config{
		Shape:     "2x2x4x4x2",
		FailLinks: []FailLink{{Node: 0, Dim: 9, Dir: 1}},
		Transfer:  &TransferConfig{Kind: "pair", Src: 0, Dst: 127, Bytes: 1 << 20},
	}); err == nil {
		t.Fatal("bad dim accepted")
	}
	if _, err := Run(Config{
		Shape:     "2x2x4x4x2",
		FailLinks: []FailLink{{Node: 0, Dim: 0, Dir: 3}},
		Transfer:  &TransferConfig{Kind: "pair", Src: 0, Dst: 127, Bytes: 1 << 20},
	}); err == nil {
		t.Fatal("bad dir accepted")
	}
}

func TestRunPairWithFaultCampaign(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{
		"shape": "2x2x4x4x2",
		"faultCampaign": {"kind": "uniform", "seed": 7, "count": 4, "windowMS": 5},
		"transfer": {"kind": "pair", "src": 0, "dst": 127, "bytes": 67108864}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Mode, "resilient") {
		t.Fatalf("mode %q, want resilient transfer", res.Mode)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "delivered 67108864 of 67108864") {
			found = true
		}
	}
	if !found {
		t.Fatalf("full-delivery note missing: %v", res.Notes)
	}
	if res.GBps <= 0 {
		t.Fatal("no throughput under recoverable campaign")
	}
	// Same config, same result: campaigns are seeded.
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.GBps != res.GBps || again.MakespanMS != res.MakespanMS {
		t.Fatalf("campaign run not deterministic: %+v vs %+v", res, again)
	}
}

func TestRunIOWithFaultCampaign(t *testing.T) {
	res, err := Run(Config{
		Shape: "2x2x4x4x2",
		Seed:  3,
		FaultCampaign: &FaultCampaignConfig{
			Kind: "burst", Seed: 11, Count: 2, AtMS: 0.5,
		},
		IO: &IOConfig{Workload: "pattern1", Approach: "topology-aware"},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "outcomes:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("outcomes note missing: %v", res.Notes)
	}
}

func TestLoadRejectsBadFaultCampaigns(t *testing.T) {
	cases := map[string]string{
		"unknown kind": `{"shape": "2x2x4x4x2", "faultCampaign": {"kind": "meteor", "count": 1, "windowMS": 1},
			"transfer": {"kind": "pair", "src": 0, "dst": 1, "bytes": 1}}`,
		"uniform no window": `{"shape": "2x2x4x4x2", "faultCampaign": {"kind": "uniform", "count": 1},
			"transfer": {"kind": "pair", "src": 0, "dst": 1, "bytes": 1}}`,
		"burst zero count": `{"shape": "2x2x4x4x2", "faultCampaign": {"kind": "burst", "atMS": 1},
			"transfer": {"kind": "pair", "src": 0, "dst": 1, "bytes": 1}}`,
		"mtbf no rate": `{"shape": "2x2x4x4x2", "faultCampaign": {"kind": "mtbf"},
			"transfer": {"kind": "pair", "src": 0, "dst": 1, "bytes": 1}}`,
	}
	for name, raw := range cases {
		if _, err := Load(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Structurally valid but unbuildable for the torus: too many nodes.
	if _, err := Run(Config{
		Shape:         "2x2x4x4x2",
		FaultCampaign: &FaultCampaignConfig{Kind: "nodes", Count: 9999, WindowMS: 1},
		Transfer:      &TransferConfig{Kind: "pair", Src: 0, Dst: 127, Bytes: 1 << 20},
	}); err == nil {
		t.Fatal("oversized node campaign accepted")
	}
}
