// Package scenario runs user-described experiments from a declarative
// JSON configuration: a partition geometry, a rank mapping, a workload
// or transfer description, and the data-movement approach to use. The
// bgqsim command is a thin wrapper around this package; downstream users
// embed it to script their own studies.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bgqflow/internal/collio"
	"bgqflow/internal/core"
	"bgqflow/internal/faultinject"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/sim"
	"bgqflow/internal/stats"
	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
	"bgqflow/internal/trace"
	"bgqflow/internal/workload"
)

// Config is the root scenario description.
type Config struct {
	// Shape is the partition geometry, e.g. "4x4x4x16x2". Ignored when
	// Topology is set.
	Shape string `json:"shape,omitempty"`
	// Topology selects a non-torus fabric by topo.Parse spec (e.g.
	// "dragonfly:8x8x2"). Empty defaults to the 5D torus described by
	// Shape, so every existing scenario file replays byte-identically.
	// Non-torus fabrics support direct pair transfers only: rank
	// mappings, I/O forwarding, proxy ladders, and the torus-coordinate
	// fault knobs are 5D-torus constructs and are rejected explicitly.
	Topology string `json:"topology,omitempty"`
	// RanksPerNode defaults to 16 (the paper's application cores).
	RanksPerNode int `json:"ranksPerNode"`
	// Mapping is a BG/Q map order such as "ABCDET" (default) or
	// "TABCDE".
	Mapping string `json:"mapping"`
	// Seed makes workload generation reproducible.
	Seed int64 `json:"seed"`
	// CollectTrace attaches a flow-timeline export to the result.
	CollectTrace bool `json:"collectTrace"`
	// FailLinks injects link failures before planning; transfer
	// scenarios plan around them (fault-aware routing).
	FailLinks []FailLink `json:"failLinks,omitempty"`
	// FaultCampaign injects seeded, time-scheduled failures mid-run.
	// Pair transfers switch to the resilient recovery loop; other
	// scenarios run the same plan through the campaign and report
	// per-flow outcomes.
	FaultCampaign *FaultCampaignConfig `json:"faultCampaign,omitempty"`

	// Exactly one of IO or Transfer must be set.
	IO       *IOConfig       `json:"io"`
	Transfer *TransferConfig `json:"transfer"`
}

// IOConfig describes a write burst and the aggregation approach.
type IOConfig struct {
	// Workload is "pattern1", "pattern2", "dense", "hacc", or "file"
	// (replay a recorded burst from BurstFile).
	Workload string `json:"workload"`
	// MaxBytes is the per-rank maximum (patterns) or per-writer size
	// (hacc, in bytes). Default 8 MB.
	MaxBytes int64 `json:"maxBytes"`
	// BurstFile is the path of a workload.Burst JSON recording, used
	// when Workload is "file". Recordings with a different rank count
	// are tiled/truncated to fit the job.
	BurstFile string `json:"burstFile,omitempty"`
	// Approach is "topology-aware" (the paper's Algorithm 2) or
	// "collective-io" (the default MPI path).
	Approach string `json:"approach"`
}

// FailLink names a directed torus link to fail: the link leaving a node
// along a dimension (0-based) in a direction (+1 or -1).
type FailLink struct {
	Node int `json:"node"`
	Dim  int `json:"dim"`
	Dir  int `json:"dir"`
}

// FaultCampaignConfig describes a seeded mid-run failure campaign.
// Times are milliseconds of simulated time.
type FaultCampaignConfig struct {
	// Kind is "uniform" (n random links over a window), "burst" (n links
	// at one instant), "mtbf" (Poisson arrivals), or "nodes" (whole-node
	// failures from a candidate list).
	Kind string `json:"kind"`
	// Seed fixes the campaign; the same seed always fails the same
	// links at the same times.
	Seed int64 `json:"seed"`
	// Count is the number of links (uniform, burst) or nodes to fail.
	Count int `json:"count,omitempty"`
	// WindowMS bounds uniform/nodes failure times.
	WindowMS float64 `json:"windowMS,omitempty"`
	// AtMS is the shared burst instant.
	AtMS float64 `json:"atMS,omitempty"`
	// MTBFMS and HorizonMS parameterize the Poisson campaign.
	MTBFMS    float64 `json:"mtbfMS,omitempty"`
	HorizonMS float64 `json:"horizonMS,omitempty"`
	// Nodes lists candidate node IDs for "nodes" (e.g. bridge nodes);
	// empty means every node is a candidate.
	Nodes []int `json:"nodes,omitempty"`
}

func (fc *FaultCampaignConfig) validate() error {
	switch fc.Kind {
	case "uniform", "nodes":
		if fc.Count < 1 || fc.WindowMS <= 0 {
			return fmt.Errorf("scenario: faultCampaign %q needs count >= 1 and windowMS > 0", fc.Kind)
		}
	case "burst":
		if fc.Count < 1 || fc.AtMS < 0 {
			return fmt.Errorf("scenario: faultCampaign burst needs count >= 1 and atMS >= 0")
		}
	case "mtbf":
		if fc.MTBFMS <= 0 || fc.HorizonMS <= 0 {
			return fmt.Errorf("scenario: faultCampaign mtbf needs mtbfMS > 0 and horizonMS > 0")
		}
	default:
		return fmt.Errorf("scenario: unknown faultCampaign kind %q", fc.Kind)
	}
	return nil
}

// Build validates the config and instantiates the campaign for a
// concrete torus. The serve session layer uses this to replay a
// client-specified campaign against its shared engine; scenario Run uses
// the same path, so a campaign behaves identically through either door.
func (fc *FaultCampaignConfig) Build(tor *torus.Torus) (*faultinject.Campaign, error) {
	if err := fc.validate(); err != nil {
		return nil, err
	}
	return fc.build(tor)
}

// build instantiates the campaign for a concrete torus.
func (fc *FaultCampaignConfig) build(tor *torus.Torus) (*faultinject.Campaign, error) {
	ms := func(v float64) sim.Time { return sim.Time(v * 1e-3) }
	switch fc.Kind {
	case "uniform":
		if fc.Count > tor.NumTorusLinks() {
			return nil, fmt.Errorf("scenario: faultCampaign fails %d of %d links", fc.Count, tor.NumTorusLinks())
		}
		return faultinject.UniformLinks(tor, fc.Seed, fc.Count, ms(fc.WindowMS)), nil
	case "burst":
		if fc.Count > tor.NumTorusLinks() {
			return nil, fmt.Errorf("scenario: faultCampaign fails %d of %d links", fc.Count, tor.NumTorusLinks())
		}
		return faultinject.BurstLinks(tor, fc.Seed, fc.Count, ms(fc.AtMS)), nil
	case "mtbf":
		return faultinject.MTBFLinks(tor, fc.Seed, ms(fc.MTBFMS), ms(fc.HorizonMS)), nil
	case "nodes":
		cands := make([]torus.NodeID, 0, len(fc.Nodes))
		for _, n := range fc.Nodes {
			if n < 0 || n >= tor.Size() {
				return nil, fmt.Errorf("scenario: faultCampaign node %d outside torus of %d", n, tor.Size())
			}
			cands = append(cands, torus.NodeID(n))
		}
		if len(cands) == 0 {
			for n := 0; n < tor.Size(); n++ {
				cands = append(cands, torus.NodeID(n))
			}
		}
		if fc.Count > len(cands) {
			return nil, fmt.Errorf("scenario: faultCampaign fails %d of %d candidate nodes", fc.Count, len(cands))
		}
		return faultinject.Nodes(fc.Seed, cands, fc.Count, ms(fc.WindowMS)), nil
	}
	return nil, fmt.Errorf("scenario: unknown faultCampaign kind %q", fc.Kind)
}

// TransferConfig describes a point-to-point or group transfer.
type TransferConfig struct {
	// Kind is "pair" or "group".
	Kind string `json:"kind"`
	// Bytes is the message size per pair.
	Bytes int64 `json:"bytes"`
	// Src and Dst are node IDs for "pair".
	Src int `json:"src"`
	Dst int `json:"dst"`
	// SrcBox/DstBox are boxes for "group": origin and extent arrays.
	SrcOrigin []int `json:"srcOrigin"`
	SrcExtent []int `json:"srcExtent"`
	DstOrigin []int `json:"dstOrigin"`
	DstExtent []int `json:"dstExtent"`
	// Proxies: -1 direct, 0 auto, >0 forced group count.
	Proxies int `json:"proxies"`
}

// Result is what a scenario run reports.
type Result struct {
	// GBps is the headline throughput: per-pair for transfers,
	// burst-aggregate for I/O.
	GBps float64
	// MakespanMS is the simulated wall time of the data movement.
	MakespanMS float64
	// Mode describes what the planner decided.
	Mode string
	// UplinkImbalance is max/mean over ION uplinks (I/O scenarios).
	UplinkImbalance float64
	// Notes carries human-readable detail lines.
	Notes []string
	// Trace is the flow-timeline export when CollectTrace was set.
	Trace *trace.Export
}

// Load decodes and validates a configuration.
func Load(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("scenario: parse: %w", err)
	}
	return c, c.Validate()
}

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	if c.Topology != "" {
		if err := c.validateTopology(); err != nil {
			return err
		}
	} else {
		if c.Shape == "" {
			return fmt.Errorf("scenario: shape is required")
		}
		if _, err := torus.ParseShape(c.Shape); err != nil {
			return err
		}
	}
	if c.RanksPerNode == 0 {
		c.RanksPerNode = 16
	}
	if c.RanksPerNode < 0 {
		return fmt.Errorf("scenario: ranksPerNode %d", c.RanksPerNode)
	}
	if (c.IO == nil) == (c.Transfer == nil) {
		return fmt.Errorf("scenario: exactly one of io / transfer must be set")
	}
	if c.IO != nil {
		switch c.IO.Workload {
		case "pattern1", "pattern2", "dense", "hacc":
		case "file":
			if c.IO.BurstFile == "" {
				return fmt.Errorf("scenario: workload \"file\" requires burstFile")
			}
		default:
			return fmt.Errorf("scenario: unknown workload %q", c.IO.Workload)
		}
		switch c.IO.Approach {
		case "topology-aware", "collective-io":
		default:
			return fmt.Errorf("scenario: unknown approach %q", c.IO.Approach)
		}
		if c.IO.MaxBytes == 0 {
			c.IO.MaxBytes = 8 << 20
		}
		if c.IO.MaxBytes < 0 {
			return fmt.Errorf("scenario: maxBytes %d", c.IO.MaxBytes)
		}
	}
	if c.Transfer != nil {
		switch c.Transfer.Kind {
		case "pair", "group":
		default:
			return fmt.Errorf("scenario: unknown transfer kind %q", c.Transfer.Kind)
		}
		if c.Transfer.Bytes < 1 {
			return fmt.Errorf("scenario: transfer bytes %d", c.Transfer.Bytes)
		}
	}
	if c.FaultCampaign != nil {
		if err := c.FaultCampaign.validate(); err != nil {
			return err
		}
	}
	return nil
}

// validateTopology checks the non-torus subset of the schema: a direct
// pair transfer on a parseable fabric, with every torus-only knob
// rejected by name rather than silently ignored.
func (c *Config) validateTopology() error {
	tp, err := topo.Parse(c.Topology)
	if err != nil {
		return err
	}
	if c.IO != nil {
		return fmt.Errorf("scenario: io scenarios need the BG/Q I/O forwarding fabric; topology %q supports transfer only", c.Topology)
	}
	if c.Transfer == nil {
		return fmt.Errorf("scenario: topology %q requires a transfer section", c.Topology)
	}
	if c.Transfer.Kind != "pair" {
		return fmt.Errorf("scenario: group transfers use torus box planning; topology %q supports kind \"pair\" only", c.Topology)
	}
	if c.Transfer.Proxies > 0 {
		return fmt.Errorf("scenario: proxy planning is torus-only; topology %q runs direct transfers", c.Topology)
	}
	if len(c.FailLinks) > 0 {
		return fmt.Errorf("scenario: failLinks are torus link coordinates; topology %q does not accept them", c.Topology)
	}
	if c.FaultCampaign != nil {
		return fmt.Errorf("scenario: fault campaigns draw torus links; topology %q does not accept them", c.Topology)
	}
	if c.Transfer.Src < 0 || c.Transfer.Src >= tp.NumNodes() || c.Transfer.Dst < 0 || c.Transfer.Dst >= tp.NumNodes() {
		return fmt.Errorf("scenario: pair endpoints outside fabric of %d nodes", tp.NumNodes())
	}
	return nil
}

// runTransferTopo executes the direct pair transfer a non-torus
// scenario describes.
func runTransferTopo(c Config) (Result, error) {
	var res Result
	tp, err := topo.Parse(c.Topology)
	if err != nil {
		return res, err
	}
	params := netsim.DefaultParams()
	net := netsim.NewNetworkTopo(tp, params.LinkBandwidth)
	e, err := netsim.NewEngine(net, params)
	if err != nil {
		return res, err
	}
	tl := attachTimeline(e, c)
	t := c.Transfer
	e.Submit(netsim.FlowSpec{
		Src:   torus.NodeID(t.Src),
		Dst:   torus.NodeID(t.Dst),
		Bytes: t.Bytes,
		Label: "direct",
	})
	mk, err := e.Run()
	if err != nil {
		return res, err
	}
	res.GBps = netsim.Throughput(t.Bytes, mk) / 1e9
	res.MakespanMS = float64(mk) * 1e3
	res.Mode = fmt.Sprintf("direct on %s", tp.Spec())
	if c.CollectTrace {
		ex, err := trace.BuildExport(e, mk, nil)
		if err != nil {
			return res, err
		}
		if tl != nil {
			ex.AttachTimeline(e, tl)
		}
		res.Trace = &ex
	}
	return res, nil
}

// Run executes the scenario.
func Run(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if c.Topology != "" {
		return runTransferTopo(c)
	}
	shape, err := torus.ParseShape(c.Shape)
	if err != nil {
		return Result{}, err
	}
	tor, err := torus.New(shape)
	if err != nil {
		return Result{}, err
	}
	params := netsim.DefaultParams()
	if c.Transfer != nil {
		return runTransfer(tor, params, c)
	}
	return runIO(tor, params, c)
}

func applyFailures(tor *torus.Torus, net *netsim.Network, fails []FailLink) error {
	for _, fl := range fails {
		if fl.Node < 0 || fl.Node >= tor.Size() || fl.Dim < 0 || fl.Dim >= tor.Dims() {
			return fmt.Errorf("scenario: bad failLink %+v", fl)
		}
		dir := torus.Plus
		switch fl.Dir {
		case 1:
		case -1:
			dir = torus.Minus
		default:
			return fmt.Errorf("scenario: failLink dir %d must be +1 or -1", fl.Dir)
		}
		net.FailLink(tor.LinkID(torus.NodeID(fl.Node), fl.Dim, dir))
	}
	return nil
}

func runTransfer(tor *torus.Torus, params netsim.Params, c Config) (Result, error) {
	net := netsim.NewNetwork(tor, params.LinkBandwidth)
	if err := applyFailures(tor, net, c.FailLinks); err != nil {
		return Result{}, err
	}
	e, err := netsim.NewEngine(net, params)
	if err != nil {
		return Result{}, err
	}
	t := c.Transfer
	var res Result
	tl := attachTimeline(e, c)
	attachTrace := func(mk sim.Duration) error {
		if !c.CollectTrace {
			return nil
		}
		ex, err := trace.BuildExport(e, mk, nil)
		if err != nil {
			return err
		}
		if tl != nil {
			ex.AttachTimeline(e, tl)
		}
		res.Trace = &ex
		return nil
	}
	switch t.Kind {
	case "pair":
		if t.Src < 0 || t.Src >= tor.Size() || t.Dst < 0 || t.Dst >= tor.Size() {
			return res, fmt.Errorf("scenario: pair endpoints outside torus of %d nodes", tor.Size())
		}
		cfg := core.DefaultProxyConfig()
		if t.Proxies < 0 {
			cfg.Threshold = 1 << 62
		} else if t.Proxies > 0 {
			cfg.MaxProxies = t.Proxies
			cfg.MinProxies = 1
			cfg.Threshold = 0
		}
		if c.FaultCampaign != nil {
			// Mid-run failures: run the resilient transfer loop (detect ->
			// replan -> degrade) instead of the one-shot plan.
			camp, err := c.FaultCampaign.build(tor)
			if err != nil {
				return res, err
			}
			tr, err := core.NewTransport(tor, params, cfg)
			if err != nil {
				return res, err
			}
			e.BeginInteractive()
			if err := camp.Apply(e); err != nil {
				return res, err
			}
			rep, rerr := tr.MoveResilient(e, torus.NodeID(t.Src), torus.NodeID(t.Dst), t.Bytes, core.DefaultRecoveryConfig())
			if rep.Delivered > 0 && rep.Makespan > 0 {
				res.GBps = netsim.Throughput(rep.Delivered, rep.Makespan) / 1e9
			}
			res.MakespanMS = float64(rep.Makespan) * 1e3
			res.Mode = fmt.Sprintf("resilient %v (%d replans)", rep.FinalMode, rep.Replans)
			res.Notes = append(res.Notes, fmt.Sprintf("fault campaign %q: %d events; delivered %d of %d bytes",
				camp.Name, len(camp.Events), rep.Delivered, rep.Bytes))
			if rep.Degraded {
				res.Notes = append(res.Notes, "recovery degraded the proxy count mid-transfer")
			}
			if rerr != nil {
				res.Notes = append(res.Notes, fmt.Sprintf("recovery gave up: %v", rerr))
			}
			return res, attachTrace(rep.Makespan)
		}
		pl, err := core.NewPairPlanner(tor, cfg)
		if err != nil {
			return res, err
		}
		if net.HasFailures() {
			pl.SetFaults(net.FailedFunc())
			res.Notes = append(res.Notes, fmt.Sprintf("%d links failed; planning around them", len(c.FailLinks)))
		}
		plan, err := pl.PlanPair(e, torus.NodeID(t.Src), torus.NodeID(t.Dst), t.Bytes)
		if err != nil {
			return res, err
		}
		mk, err := e.Run()
		if err != nil {
			return res, err
		}
		res.GBps = netsim.Throughput(t.Bytes, mk) / 1e9
		res.MakespanMS = float64(mk) * 1e3
		res.Mode = fmt.Sprintf("%v (%d proxies)", plan.Mode, len(plan.Proxies))
		return res, attachTrace(mk)
	case "group":
		sBox, err := torus.NewBox(tor, t.SrcOrigin, t.SrcExtent)
		if err != nil {
			return res, fmt.Errorf("scenario: srcBox: %w", err)
		}
		dBox, err := torus.NewBox(tor, t.DstOrigin, t.DstExtent)
		if err != nil {
			return res, fmt.Errorf("scenario: dstBox: %w", err)
		}
		cfg := core.DefaultProxyConfig()
		if t.Proxies < 0 {
			cfg.Threshold = 1 << 62
		}
		gp, err := core.NewGroupPlanner(tor, cfg)
		if err != nil {
			return res, err
		}
		if t.Proxies > 0 {
			gp.ForceGroups = t.Proxies
		}
		plan, err := gp.Plan(e, sBox, dBox, t.Bytes)
		if err != nil {
			return res, err
		}
		if c.FaultCampaign != nil {
			camp, cerr := c.FaultCampaign.build(tor)
			if cerr != nil {
				return res, cerr
			}
			if cerr := camp.Apply(e); cerr != nil {
				return res, cerr
			}
			res.Notes = append(res.Notes, fmt.Sprintf("fault campaign %q: %d events (no recovery for group transfers)",
				camp.Name, len(camp.Events)))
		}
		mk, err := e.Run()
		if err != nil {
			return res, err
		}
		if c.FaultCampaign != nil {
			done, aborted := e.Outcomes()
			res.Notes = append(res.Notes, fmt.Sprintf("outcomes: %d flows completed, %d aborted", done, aborted))
		}
		res.GBps = netsim.Throughput(t.Bytes, mk) / 1e9
		res.MakespanMS = float64(mk) * 1e3
		res.Mode = fmt.Sprintf("%v groups=%v directPairs=%d", plan.Mode, plan.Groups, plan.DirectPairs)
		return res, attachTrace(mk)
	}
	return res, fmt.Errorf("scenario: unreachable transfer kind")
}

func runIO(tor *torus.Torus, params netsim.Params, c Config) (Result, error) {
	var res Result
	net := netsim.NewNetwork(tor, params.LinkBandwidth)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		return res, err
	}
	mapping := mpisim.DefaultMapOrder
	if c.Mapping != "" {
		mapping = mpisim.MapOrder(c.Mapping)
	}
	job, err := mpisim.NewJobWithMapping(tor, c.RanksPerNode, mapping)
	if err != nil {
		return res, err
	}
	var data []int64
	switch c.IO.Workload {
	case "pattern1":
		data = workload.Uniform(job.NumRanks(), c.IO.MaxBytes, c.Seed)
	case "pattern2":
		data = workload.Pattern2(job.NumRanks(), c.IO.MaxBytes, c.Seed)
	case "dense":
		data = workload.Dense(job.NumRanks(), c.IO.MaxBytes)
	case "hacc":
		data = workload.HACC(job.NumRanks(), c.IO.MaxBytes/workload.HACCRecordBytes)
	case "file":
		f, err := os.Open(c.IO.BurstFile)
		if err != nil {
			return res, fmt.Errorf("scenario: %w", err)
		}
		burst, err := workload.ReadBurst(f)
		f.Close()
		if err != nil {
			return res, err
		}
		data = burst.FitToRanks(job.NumRanks())
	}
	e, err := netsim.NewEngine(net, params)
	if err != nil {
		return res, err
	}
	tl := attachTimeline(e, c)
	var total int64
	var meta float64
	switch c.IO.Approach {
	case "topology-aware":
		pl, err := core.NewAggPlanner(ios, job, params, core.DefaultAggConfig())
		if err != nil {
			return res, err
		}
		plan, err := pl.Plan(e, data)
		if err != nil {
			return res, err
		}
		total, meta = plan.TotalBytes, float64(plan.Metadata)
		res.Mode = fmt.Sprintf("topology-aware: %d aggregators (%d/pset), %d senders",
			plan.NumAggregators, plan.AggPerPset, plan.Senders)
	case "collective-io":
		pl, err := collio.NewPlanner(ios, job, params, collio.DefaultConfig())
		if err != nil {
			return res, err
		}
		plan, err := pl.Plan(e, data)
		if err != nil {
			return res, err
		}
		total, meta = plan.TotalBytes, float64(plan.Metadata)
		res.Mode = fmt.Sprintf("collective-io: %d aggregators, %d rounds", plan.NumAggregators, plan.Rounds)
	}
	if c.FaultCampaign != nil {
		camp, cerr := c.FaultCampaign.build(tor)
		if cerr != nil {
			return res, cerr
		}
		if cerr := camp.Apply(e); cerr != nil {
			return res, cerr
		}
		res.Notes = append(res.Notes, fmt.Sprintf("fault campaign %q: %d events", camp.Name, len(camp.Events)))
	}
	mk, err := e.Run()
	if err != nil {
		return res, err
	}
	if c.FaultCampaign != nil {
		done, aborted := e.Outcomes()
		res.Notes = append(res.Notes, fmt.Sprintf("outcomes: %d flows completed, %d aborted", done, aborted))
	}
	res.GBps = float64(total) / (float64(mk) + meta) / 1e9
	res.MakespanMS = (float64(mk) + meta) * 1e3
	res.UplinkImbalance = stats.ImbalanceRatio(trace.UplinkLoads(e, ios))
	res.Notes = append(res.Notes,
		fmt.Sprintf("burst %.2f GB over %d ranks (%s mapping)", float64(total)/1e9, job.NumRanks(), job.Order()))
	if c.CollectTrace {
		ex, err := trace.BuildExport(e, mk, nil)
		if err != nil {
			return res, err
		}
		if tl != nil {
			ex.AttachTimeline(e, tl)
		}
		res.Trace = &ex
	}
	return res, nil
}

// traceBucket is the timeline resolution of collected traces: 1 ms
// buckets resolve the multi-millisecond transfers scenarios run.
const traceBucket sim.Duration = 1e-3

// attachTimeline hooks a link-utilization timeline onto the engine when
// the scenario collects a trace, so the schema-2 export carries the
// time-resolved section. Without CollectTrace the engine keeps a nil
// sink (zero instrumentation cost).
func attachTimeline(e *netsim.Engine, c Config) *obs.LinkTimeline {
	if !c.CollectTrace {
		return nil
	}
	tl := obs.NewLinkTimeline(traceBucket)
	e.SetSink(obs.TimelineSink{TL: tl})
	return tl
}
