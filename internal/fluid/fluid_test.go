package fluid

import (
	"testing"

	"bgqflow/internal/core"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
	"bgqflow/internal/workload"
)

func rig(t *testing.T) (*netsim.Network, netsim.Params) {
	t.Helper()
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := netsim.DefaultParams()
	return netsim.NewNetwork(tor, p.LinkBandwidth), p
}

func TestNewEstimatorValidates(t *testing.T) {
	net, p := rig(t)
	p.LinkBandwidth = 0
	if _, err := NewEstimator(net, p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestAddValidates(t *testing.T) {
	net, p := rig(t)
	e, _ := NewEstimator(net, p)
	if err := e.Add(FlowDesc{Bytes: -1}); err == nil {
		t.Error("negative size accepted")
	}
	if err := e.Add(FlowDesc{Bytes: 1, Stage: -1}); err == nil {
		t.Error("negative stage accepted")
	}
	if err := e.Add(FlowDesc{Bytes: 1, Links: []int{1 << 30}}); err == nil {
		t.Error("unknown link accepted")
	}
}

func TestSingleFlowBoundIsExact(t *testing.T) {
	net, p := rig(t)
	tor := net.Torus()
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	r := routing.DeterministicRoute(tor, src, dst)
	const bytes = 16 << 20

	est, _ := NewEstimator(net, p)
	if err := est.Add(FlowDesc{Bytes: bytes, Links: r.Links}); err != nil {
		t.Fatal(err)
	}
	bound := est.SerializedMakespan()

	e, _ := netsim.NewEngine(net, p)
	e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytes})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(mk) / float64(bound)
	if ratio < 0.999 || ratio > 1.001 {
		t.Fatalf("single uncontended flow: simulated %g, bound %g", float64(mk), float64(bound))
	}
}

func TestBoundNeverExceedsSimulatedMakespan(t *testing.T) {
	// Lower-bound property on an aggregation plan: estimate <= simulate.
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	job, _ := mpisim.NewJob(tor, 16)
	data := workload.Uniform(job.NumRanks(), 8<<20, 17)

	e, _ := netsim.NewEngine(net, p)
	pl, err := core.NewAggPlanner(ios, job, p, core.DefaultAggConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.Plan(e, data)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the same plan shape in the estimator: stage 0 = sends to
	// aggregators, stage 1 = aggregator ION writes.
	est, _ := NewEstimator(net, p)
	_, aggs := pl.AggregatorsFor(plan.TotalBytes)
	perNode := make([]int64, tor.Size())
	for r, d := range data {
		perNode[job.NodeOf(r)] += d
	}
	next := 0
	for n, b := range perNode {
		if b == 0 {
			continue
		}
		ag := aggs[next%len(aggs)]
		next++
		r := routing.DeterministicRoute(tor, torus.NodeID(n), ag.Node)
		if err := est.Add(FlowDesc{Bytes: b, Links: r.Links, Stage: 0}); err != nil {
			t.Fatal(err)
		}
		links, _ := ios.WriteRouteVia(ag.Node, ag.Pset, ag.Bridge)
		if err := est.Add(FlowDesc{Bytes: b, Links: links, Stage: 1}); err != nil {
			t.Fatal(err)
		}
	}
	bound := est.LowerBound()
	if float64(bound) > float64(mk)*1.0001 {
		t.Fatalf("lower bound %g exceeds simulated makespan %g", float64(bound), float64(mk))
	}
	// The point estimate should bracket the simulation within ~±30%.
	estMk := est.PipelinedMakespan()
	ratio := float64(mk) / float64(estMk)
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("estimate %g vs simulated %g (ratio %.2f)", float64(estMk), float64(mk), ratio)
	}
}

func TestSerializedAddsStages(t *testing.T) {
	net, p := rig(t)
	est, _ := NewEstimator(net, p)
	tor := net.Torus()
	r1 := routing.DeterministicRoute(tor, 0, 8)
	r2 := routing.DeterministicRoute(tor, 8, 16)
	est.Add(FlowDesc{Bytes: 8 << 20, Links: r1.Links, Stage: 0})
	est.Add(FlowDesc{Bytes: 8 << 20, Links: r2.Links, Stage: 1})
	s0, s1 := est.StageTime(0), est.StageTime(1)
	if got := est.SerializedMakespan(); got != s0+s1 {
		t.Fatalf("serialized %g != %g + %g", float64(got), float64(s0), float64(s1))
	}
	if pip := est.PipelinedMakespan(); pip >= s0+s1 {
		t.Fatalf("pipelined %g should be below serialized %g", float64(pip), float64(s0+s1))
	}
}

func TestLocalCopyUsesMemcpyRate(t *testing.T) {
	net, p := rig(t)
	est, _ := NewEstimator(net, p)
	est.Add(FlowDesc{Bytes: 1 << 30}) // no links
	got := est.StageTime(0)
	want := float64(p.SenderOverhead+p.ReceiverOverhead) + float64(1<<30)/p.LocalCopyBandwidth
	if float64(got) < want*0.999 || float64(got) > want*1.001 {
		t.Fatalf("local copy stage time %g, want %g", float64(got), want)
	}
}

func TestStageAccounting(t *testing.T) {
	net, p := rig(t)
	est, _ := NewEstimator(net, p)
	est.Add(FlowDesc{Bytes: 1, Stage: 0})
	est.Add(FlowDesc{Bytes: 1, Stage: 2})
	if est.Stages() != 3 {
		t.Fatalf("Stages() = %d", est.Stages())
	}
	if est.Flows(0) != 1 || est.Flows(1) != 0 || est.Flows(2) != 1 {
		t.Fatal("per-stage flow counts wrong")
	}
	if est.StageTime(99) != 0 || est.Flows(-1) != 0 {
		t.Fatal("out-of-range stage should be zero")
	}
}
