// Package fluid provides closed-form lower-bound estimates for the
// makespan of a set of flows, without running the event-driven
// simulator. The estimate combines the three classical bounds:
//
//   - per-link: no link can drain its assigned bytes faster than its
//     capacity,
//   - per-flow: no flow can finish faster than its size over the
//     per-flow rate cap, plus its fixed endpoint costs,
//   - per-stage: dependent stages (store-and-forward legs, two-phase
//     rounds) add up when serialized and overlap when pipelined.
//
// The estimator is used for quick what-if planning (e.g. choosing an
// aggregator count before submitting a burst) and as an independent
// check on the simulator: the true max-min makespan can never beat the
// bound, and for the converging traffic patterns of the paper's I/O
// workloads it is usually within a few tens of percent of it.
package fluid

import (
	"fmt"

	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
)

// FlowDesc describes one flow for estimation.
type FlowDesc struct {
	Bytes int64
	Links []int
	// Stage groups flows; stage s+1 starts after stage s when the plan
	// is serialized, or overlaps when pipelined.
	Stage int
}

// Estimator accumulates flows over a network.
type Estimator struct {
	net    *netsim.Network
	p      netsim.Params
	stages []stageAcc
}

type stageAcc struct {
	linkBytes map[int]int64
	maxFlow   sim.Duration
	flows     int
}

// NewEstimator builds an estimator for the network and parameters.
func NewEstimator(net *netsim.Network, p netsim.Params) (*Estimator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{net: net, p: p}, nil
}

// Add registers a flow.
func (e *Estimator) Add(f FlowDesc) error {
	if f.Bytes < 0 {
		return fmt.Errorf("fluid: negative flow size")
	}
	if f.Stage < 0 {
		return fmt.Errorf("fluid: negative stage")
	}
	for len(e.stages) <= f.Stage {
		e.stages = append(e.stages, stageAcc{linkBytes: make(map[int]int64)})
	}
	st := &e.stages[f.Stage]
	st.flows++
	for _, l := range f.Links {
		if l < 0 || l >= e.net.NumLinks() {
			return fmt.Errorf("fluid: unknown link %d", l)
		}
		st.linkBytes[l] += f.Bytes
	}
	rate := e.p.PerFlowBandwidth
	if len(f.Links) == 0 {
		rate = e.p.LocalCopyBandwidth
	}
	t := e.p.SenderOverhead + e.p.ReceiverOverhead +
		sim.Duration(float64(f.Bytes)/rate) +
		sim.Duration(float64(len(f.Links))*float64(e.p.HopLatency))
	if t > st.maxFlow {
		st.maxFlow = t
	}
	return nil
}

// StageTime returns the lower bound for one stage: the slowest single
// flow, or the most loaded link, whichever dominates.
func (e *Estimator) StageTime(stage int) sim.Duration {
	if stage < 0 || stage >= len(e.stages) {
		return 0
	}
	st := &e.stages[stage]
	t := st.maxFlow
	for l, b := range st.linkBytes {
		lt := sim.Duration(float64(b) / e.net.Capacity(l))
		if lt > t {
			t = lt
		}
	}
	return t
}

// SerializedMakespan bounds a plan whose stages run strictly one after
// another (the default two-phase collective I/O behaviour).
func (e *Estimator) SerializedMakespan() sim.Duration {
	var total sim.Duration
	for s := range e.stages {
		total += e.StageTime(s)
	}
	return total
}

// LowerBound is the strict lower bound for a fully pipelined plan: no
// schedule can beat the bottleneck stage. The simulated makespan is
// always at or above this value.
func (e *Estimator) LowerBound() sim.Duration {
	var bottleneck sim.Duration
	for s := range e.stages {
		if t := e.StageTime(s); t > bottleneck {
			bottleneck = t
		}
	}
	return bottleneck
}

// PipelinedMakespan estimates a plan whose stages overlap per item (the
// paper's store-and-forward flow DAGs): the bottleneck stage dominates
// and every other stage contributes a lead-in/lead-out of one flow's
// time. This is a point estimate, not a bound — use LowerBound for a
// guarantee.
func (e *Estimator) PipelinedMakespan() sim.Duration {
	var bottleneck, leadIn sim.Duration
	for s := range e.stages {
		t := e.StageTime(s)
		if t > bottleneck {
			bottleneck = t
		}
	}
	for s := range e.stages {
		if t := e.StageTime(s); t < bottleneck {
			// Non-bottleneck stages contribute at most one flow's time.
			leadIn += e.stages[s].maxFlow
		}
	}
	return bottleneck + leadIn
}

// Stages reports how many stages have been registered.
func (e *Estimator) Stages() int { return len(e.stages) }

// Flows reports the number of flows registered in a stage.
func (e *Estimator) Flows(stage int) int {
	if stage < 0 || stage >= len(e.stages) {
		return 0
	}
	return e.stages[stage].flows
}
