package core

import (
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

// Failure injection: the planner must route transfers around failed
// links, both for the direct fallback and for proxy legs.

func TestDirectPlanAvoidsFailedLink(t *testing.T) {
	tor := mira128()
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	def := routing.DeterministicRoute(tor, src, dst)
	net.FailLink(def.Links[1])

	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := NewPairPlanner(tor, DefaultProxyConfig())
	pl.SetFaults(net.FailedFunc())
	plan, err := pl.PlanPair(e, src, dst, 64<<10) // below threshold: direct
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != Direct {
		t.Fatalf("mode %v", plan.Mode)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Result(plan.Final[0]).Done {
		t.Fatal("direct transfer did not complete around the failure")
	}
}

func TestUnawarePlannerTripsOnFailedLink(t *testing.T) {
	tor := mira128()
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	def := routing.DeterministicRoute(tor, src, dst)
	net.FailLink(def.Links[1])
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("submitting over a failed link did not panic")
		}
	}()
	e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: 1 << 20})
}

func TestProxySelectionAvoidsFailedLegs(t *testing.T) {
	tor := mira128()
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	pl, _ := NewPairPlanner(tor, DefaultProxyConfig())
	healthy := pl.SelectProxies(src, dst)
	if len(healthy) < 4 {
		t.Fatalf("healthy selection found %d", len(healthy))
	}
	// Fail the first hop of the first proxy's leg1.
	net.FailLink(healthy[0].Leg1.Links[0])
	pl.SetFaults(net.FailedFunc())
	after := pl.SelectProxies(src, dst)
	for _, pr := range after {
		for _, leg := range [][]int{pr.Leg1.Links, pr.Leg2.Links} {
			for _, l := range leg {
				if net.LinkFailed(l) {
					t.Fatal("selected proxy leg crosses a failed link")
				}
			}
		}
	}
	if len(after) == 0 {
		t.Fatal("no proxies found despite a single failure")
	}
}

func TestProxiedTransferSurvivesFailures(t *testing.T) {
	tor := mira128()
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	// Fail three arbitrary links near the source.
	net.FailLink(tor.LinkID(src, 2, torus.Plus))
	net.FailLink(tor.LinkID(src, 3, torus.Minus))
	net.FailLink(tor.LinkID(tor.Neighbor(src, 1, torus.Plus), 2, torus.Minus))

	cfg := DefaultProxyConfig()
	pl, _ := NewPairPlanner(tor, cfg)
	pl.SetFaults(net.FailedFunc())
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 32 << 20
	plan, err := pl.PlanPair(e, src, dst, bytes)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	th := netsim.Throughput(bytes, mk)
	if plan.Mode == Proxied && th < 1.6e9 {
		t.Fatalf("degraded throughput %.3g with failures and %d proxies", th, len(plan.Proxies))
	}
	var arrived int64
	for _, id := range plan.Final {
		arrived += e.Result(id).Bytes
	}
	if arrived != bytes {
		t.Fatalf("arrived %d of %d", arrived, bytes)
	}
}

// TestNoRouteTraversesFailedNode is the node-failure property test: after
// FailNode, no fault-avoiding route — direct fallback or proxy leg — may
// touch the dead node or any failed link, across a spread of endpoint
// pairs. (Default routes are failure-blind by design; the submit layer
// fail-stops them, which TestUnawarePlannerTripsOnFailedLink pins.)
func TestNoRouteTraversesFailedNode(t *testing.T) {
	tor := mira128()
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	dead := torus.NodeID(37)
	net.FailNode(dead)

	nodeOnRoute := func(links []int) bool {
		for _, l := range links {
			from, _, _ := tor.LinkFrom(l)
			if from == dead {
				return true
			}
			if net.LinkFailed(l) {
				return true
			}
		}
		return false
	}

	pl, _ := NewPairPlanner(tor, DefaultProxyConfig())
	pl.SetFaults(net.FailedFunc())
	for _, src := range []torus.NodeID{0, 3, 50, 101} {
		for _, dst := range []torus.NodeID{1, 64, 90, torus.NodeID(tor.Size() - 1)} {
			if src == dst || src == dead || dst == dead {
				continue
			}
			r, err := routing.RouteAvoiding(tor, src, dst, net.FailedFunc())
			if err != nil {
				// A minimal dimension-ordered detour may not exist for
				// every pair; that is the planner's cue to go proxied.
				continue
			}
			if nodeOnRoute(r.Links) {
				t.Fatalf("avoiding route %d->%d traverses the failed node", src, dst)
			}
			for _, pr := range pl.SelectProxies(src, dst) {
				if pr.Proxy == dead {
					t.Fatalf("selection %d->%d picked the failed node as proxy", src, dst)
				}
				if nodeOnRoute(pr.Leg1.Links) || nodeOnRoute(pr.Leg2.Links) {
					t.Fatalf("proxy leg %d->%d traverses the failed node", src, dst)
				}
			}
		}
	}
}

func TestDirectPlanErrorsWhenCut(t *testing.T) {
	// 1-D ring: fail both directions out of the source; no route exists.
	tor := torus.MustNew(torus.Shape{8})
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	net.FailLink(tor.LinkID(0, 0, torus.Plus))
	net.FailLink(tor.LinkID(0, 0, torus.Minus))
	pl, _ := NewPairPlanner(tor, DefaultProxyConfig())
	pl.SetFaults(net.FailedFunc())
	e, _ := netsim.NewEngine(net, p)
	if _, err := pl.PlanPair(e, 0, 1, 1<<10); err == nil {
		t.Fatal("cut topology accepted")
	}
}
