package core

import (
	"fmt"
	"sync"

	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/torus"
)

// Transport is the session-style entry point an application embeds: open
// it once, then Move data between node pairs as transfers arise. For
// every pair it consults the Eq. 1-5 cost model to decide direct versus
// multipath, caches the (expensive) proxy selection so repeated
// transfers between the same endpoints — the common case in coupled
// codes — plan in O(1), and honors injected link failures.
type Transport struct {
	tor   *torus.Torus
	cfg   ProxyConfig
	model *CostModel

	mu     sync.Mutex
	faults func(int) bool
	cache  map[pairKey]*pairEntry
	hits   int
	misses int

	// rec, when set, receives plan instants from Move and the wave /
	// detect / replan span timeline from MoveResilient, filed under
	// track; registry counters (transport/...) ride along. nil = off.
	rec   *obs.Recorder
	track string
}

type pairKey struct {
	src, dst torus.NodeID
}

type pairEntry struct {
	proxies   []ProxyRoute
	threshold int64
}

// NewTransport builds a transport for the partition. The cost model uses
// the machine constants in p; the ProxyConfig's fixed Threshold is
// ignored (the model derives a per-pair threshold).
func NewTransport(tor *torus.Torus, p netsim.Params, cfg ProxyConfig) (*Transport, error) {
	if err := cfg.validate(tor.Dims()); err != nil {
		return nil, err
	}
	model, err := NewCostModel(p)
	if err != nil {
		return nil, err
	}
	return &Transport{
		tor:   tor,
		cfg:   cfg,
		model: model,
		cache: make(map[pairKey]*pairEntry),
	}, nil
}

// SetFaults installs a failed-link predicate and invalidates the
// selection cache (cached routes may cross newly failed links).
func (t *Transport) SetFaults(failed func(int) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults = failed
	t.cache = make(map[pairKey]*pairEntry)
}

// Stats reports cache hits and misses, for observability.
func (t *Transport) Stats() (hits, misses int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, t.misses
}

// SetRecorder attaches an observability recorder: Move emits plan
// instants and MoveResilient wraps each recovery wave and each
// detect->replan->degrade iteration in spans on the given track ("" means
// "transport"). Attach an obs.EngineSink to the engine as well to get
// the per-leg flow spans under the same recorder. Pass nil to detach.
func (t *Transport) SetRecorder(rec *obs.Recorder, track string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rec = rec
	if track == "" {
		track = "transport"
	}
	t.track = track
}

// recorder returns the attached recorder and track under the lock.
func (t *Transport) recorder() (*obs.Recorder, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rec, t.track
}

// entryFor returns the cached selection for a pair, computing it on the
// first use.
func (t *Transport) entryFor(src, dst torus.NodeID) *pairEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := pairKey{src, dst}
	if e, ok := t.cache[key]; ok {
		t.hits++
		if t.rec != nil {
			t.rec.Registry().Counter("transport/pair_cache_hits").Inc()
		}
		return e
	}
	t.misses++
	if t.rec != nil {
		t.rec.Registry().Counter("transport/pair_cache_misses").Inc()
	}
	proxies := selectProxiesAvoiding(t.tor, src, dst, t.cfg, nil, t.faults)
	entry := &pairEntry{proxies: proxies}
	if len(proxies) >= t.cfg.MinProxies && len(proxies) > 0 {
		hopsDirect := t.tor.HopDistance(src, dst)
		// Representative leg hop counts from the actual selection.
		h1, h2 := 0, 0
		for _, pr := range proxies {
			h1 += pr.Leg1.Hops()
			h2 += pr.Leg2.Hops()
		}
		h1 /= len(proxies)
		h2 /= len(proxies)
		entry.threshold = t.model.Threshold(len(proxies), hopsDirect, h1, h2)
		if entry.threshold == 0 {
			entry.threshold = 1 << 62 // the model says proxies never win
		}
	} else {
		entry.threshold = 1 << 62
	}
	t.cache[key] = entry
	return entry
}

// Move plans one transfer on e, choosing the mode per the cached
// selection and per-pair model threshold.
func (t *Transport) Move(e *netsim.Engine, src, dst torus.NodeID, bytes int64) (PairPlan, error) {
	if bytes < 0 {
		return PairPlan{}, fmt.Errorf("core: negative transfer size %d", bytes)
	}
	if int(src) < 0 || int(src) >= t.tor.Size() || int(dst) < 0 || int(dst) >= t.tor.Size() {
		return PairPlan{}, fmt.Errorf("core: endpoints (%d,%d) outside partition", src, dst)
	}
	entry := t.entryFor(src, dst)
	rec, track := t.recorder()
	if src == dst || bytes < entry.threshold || len(entry.proxies) < t.cfg.MinProxies {
		if rec != nil {
			rec.Instant(track, fmt.Sprintf("plan direct %d->%d (%dB)", src, dst, bytes), e.Now())
			rec.Registry().Counter("transport/moves_direct").Inc()
		}
		spec := netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytes, Label: "transport/direct"}
		if t.faults != nil && src != dst {
			// Fault-aware direct route.
			pl := &PairPlanner{tor: t.tor, cfg: t.cfg, faults: t.faults}
			return pl.PlanPair(e, src, dst, bytes)
		}
		id := e.Submit(spec)
		return PairPlan{Mode: Direct, Bytes: bytes, Flows: []netsim.FlowID{id}, Final: []netsim.FlowID{id}}, nil
	}
	if rec != nil {
		rec.Instant(track, fmt.Sprintf("plan proxied k=%d %d->%d (%dB)", len(entry.proxies), src, dst, bytes), e.Now())
		rec.Registry().Counter("transport/moves_proxied").Inc()
	}
	plan := PairPlan{Mode: Proxied, Proxies: entry.proxies, Bytes: bytes}
	pieces := splitBytes(bytes, len(entry.proxies))
	for i, pr := range entry.proxies {
		flows, finals := submitLegPair(e, t.cfg, pr, pieces[i], fmt.Sprintf("transport/proxy%d", i))
		plan.Flows = append(plan.Flows, flows...)
		plan.Final = append(plan.Final, finals...)
	}
	return plan, nil
}
