package core

import (
	"fmt"
	"math"

	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
)

// CostModel is the paper's Section IV-C analytic transfer-time model
// (Eqs. 1-5), instantiated with the netsim machine constants. The paper
// lists an analytical throughput model as future work; this is that
// model, and the planner can use it to pick the proxy count and the
// direct/proxy threshold instead of relying on fixed configuration.
//
// Direct transfer of d bytes over h hops (Eq. 1):
//
//	t = t_s + t_t + t_r
//	t_s = o_s + d/B          (process+queue+inject at the sender)
//	t_t = h*L + d/B          (wire time; the d/B term is already counted
//	                          in t_s's streaming, so only the first-byte
//	                          pipeline fill h*L appears separately)
//	t_r = o_r                (process+queue+store at the receiver)
//
// k-proxy transfer (Eq. 2): two store-and-forward legs of d/k bytes
// each, plus the user-space forward overhead o_f at the proxy:
//
//	t' = 2*(o_s + (d/k)/B + h'*L + o_r) + o_f
//
// The fixed per-message costs o_s, o_r, o_f do not shrink with k
// (Eq. 4's inequality), which is why small messages lose and the
// asymptotic gain is k/2 (Eq. 5).
type CostModel struct {
	p netsim.Params
}

// NewCostModel builds the model from machine constants.
func NewCostModel(p netsim.Params) (*CostModel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &CostModel{p: p}, nil
}

// NewCostModelFor specializes the Eq. 1-5 evaluator to one endpoint
// pair of a fabric cost model: the pair's flow rate, the source's
// injection overhead, and the destination's drain overhead replace the
// uniform constants, so a planner comparing candidate pairs on a
// heterogeneous (CPU/GPU-tiered) machine prices each pair by its own
// tiers. The forward overhead is evaluated at the source's tier as a
// representative proxy; a planner that knows the proxy set can rebuild
// the model per proxy. Built from the uniform model of base's own
// constants (netsim.CostModelFromParams), this reproduces
// NewCostModel(base) exactly — the BG/Q identity rule.
func NewCostModelFor(cm topo.CostModel, src, dst torus.NodeID, base netsim.Params) (*CostModel, error) {
	p := base
	p.PerFlowBandwidth = cm.PerFlowRate(src, dst)
	p.LocalCopyBandwidth = cm.LocalCopyRate(src)
	p.SenderOverhead = sim.Duration(cm.SenderOverhead(src))
	p.ReceiverOverhead = sim.Duration(cm.ReceiverOverhead(dst))
	p.ProxyForwardOverhead = sim.Duration(cm.ForwardOverhead(src))
	p.HopLatency = sim.Duration(cm.HopLatency())
	return NewCostModel(p)
}

// perFlowRate is the streaming rate of one uncontended path.
func (m *CostModel) perFlowRate() float64 {
	return math.Min(m.p.PerFlowBandwidth, m.p.LinkBandwidth)
}

// DirectTime predicts the time to move d bytes over a single
// deterministic path of hops links (Eq. 1).
func (m *CostModel) DirectTime(d int64, hops int) sim.Duration {
	if d < 0 || hops < 0 {
		panic(fmt.Sprintf("core: DirectTime(%d, %d)", d, hops))
	}
	return m.p.SenderOverhead + m.p.ReceiverOverhead +
		sim.Duration(float64(hops)*float64(m.p.HopLatency)) +
		sim.Duration(float64(d)/m.perFlowRate())
}

// ProxyTime predicts the time to move d bytes over k link-disjoint proxy
// paths, two store-and-forward legs each (Eq. 2). hops1 and hops2 are
// representative per-leg hop counts.
func (m *CostModel) ProxyTime(d int64, k, hops1, hops2 int) sim.Duration {
	if k < 1 {
		panic(fmt.Sprintf("core: ProxyTime with k=%d", k))
	}
	piece := float64(d) / float64(k)
	leg := func(hops int) sim.Duration {
		return m.p.SenderOverhead + m.p.ReceiverOverhead +
			sim.Duration(float64(hops)*float64(m.p.HopLatency)) +
			sim.Duration(piece/m.perFlowRate())
	}
	return leg(hops1) + leg(hops2) + m.p.ProxyForwardOverhead
}

// Gain predicts the throughput gain of k proxies over direct (Eq. 3);
// values above 1 favor the proxied transfer. As d grows the gain
// approaches k/2 (Eq. 5).
func (m *CostModel) Gain(d int64, k, hopsDirect, hops1, hops2 int) float64 {
	return float64(m.DirectTime(d, hopsDirect)) / float64(m.ProxyTime(d, k, hops1, hops2))
}

// Threshold computes the smallest message size at which k proxies beat
// the direct path, by bisection over the two monotone cost curves. It
// returns 0 when the proxied transfer never wins (k <= 2 per Eq. 5, once
// overheads are included).
func (m *CostModel) Threshold(k, hopsDirect, hops1, hops2 int) int64 {
	if k < 1 {
		return 0
	}
	// For the proxied transfer to win asymptotically we need the
	// per-byte cost 2/(k*B) < 1/B, i.e. k > 2.
	if k <= 2 {
		return 0
	}
	lo, hi := int64(1), int64(1)<<40
	if m.Gain(hi, k, hopsDirect, hops1, hops2) <= 1 {
		return 0
	}
	if m.Gain(lo, k, hopsDirect, hops1, hops2) > 1 {
		return lo
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if m.Gain(mid, k, hopsDirect, hops1, hops2) > 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// PipelinedProxyTime predicts the paper's future-work pipelined variant:
// the piece moving to each proxy is segmented into chunks of c bytes, so
// the second leg overlaps the first and the store-and-forward factor of
// 2 collapses to one leg plus a single chunk's lead-in. With pipelining,
// k=2 proxies already win for large messages.
func (m *CostModel) PipelinedProxyTime(d int64, k int, c int64, hops1, hops2 int) sim.Duration {
	if k < 1 || c < 1 {
		panic(fmt.Sprintf("core: PipelinedProxyTime k=%d c=%d", k, c))
	}
	piece := float64(d) / float64(k)
	chunks := math.Ceil(piece / float64(c))
	if chunks < 1 {
		chunks = 1
	}
	perChunkOverhead := float64(m.p.SenderOverhead + m.p.ReceiverOverhead)
	// First leg streams all chunks; the last chunk then crosses the
	// second leg after the forward overhead.
	leg1 := chunks*perChunkOverhead + piece/m.perFlowRate() +
		float64(hops1)*float64(m.p.HopLatency)
	tail := float64(m.p.ProxyForwardOverhead) + perChunkOverhead +
		math.Min(float64(c), piece)/m.perFlowRate() +
		float64(hops2)*float64(m.p.HopLatency)
	return sim.Duration(leg1 + tail)
}

// BestProxyCount evaluates the model for every feasible proxy count up
// to max and returns the count with the lowest predicted time (0 means
// direct wins). Hop counts are taken as representative constants; the
// decision depends on them only weakly.
func (m *CostModel) BestProxyCount(d int64, max, hopsDirect, hops1, hops2 int) int {
	best := 0
	bestTime := m.DirectTime(d, hopsDirect)
	for k := 1; k <= max; k++ {
		t := m.ProxyTime(d, k, hops1, hops2)
		if t < bestTime {
			best, bestTime = k, t
		}
	}
	return best
}
