package core

import (
	"fmt"

	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

// GroupDirection describes one accepted proxy group: every source node's
// proxy is the source translated Multiplier * extent(Dim) hops along Dir
// in dimension Dim, so the proxy group is a contiguous region congruent
// to the source region (the paper's regions I-IV generalized to L
// dimensions).
type GroupDirection struct {
	Dim        int
	Dir        torus.Direction
	Multiplier int
}

// String renders e.g. "+D" or "+A*2".
func (g GroupDirection) String() string {
	s := g.Dir.String() + torus.DimNames[g.Dim]
	if g.Multiplier > 1 {
		s += fmt.Sprintf("*%d", g.Multiplier)
	}
	return s
}

// GroupPlan records a planned group-to-group transfer.
type GroupPlan struct {
	Mode TransferMode
	// Groups are the accepted proxy-group directions.
	Groups []GroupDirection
	// PairCount is the number of (source, destination) pairs.
	PairCount int
	// DirectPairs counts pairs that fell back to direct transfer.
	DirectPairs int
	// TotalBytes is the data volume across all pairs.
	TotalBytes int64
	// Final holds the flows that deliver data at destinations.
	Final []netsim.FlowID
}

// SelectGroupDirections enumerates proxy-group candidates for a transfer
// from sBox to tBox: translations of the source region by whole multiples
// of its own extent along each dimension. A candidate is valid when the
// translated region is disjoint from the source region, the destination
// region, and every previously accepted proxy region. Candidates are
// enumerated multiplier 1 first (adjacent regions — link-disjoint
// geometry), then farther multiples whose first-leg routes pass through
// nearer proxy regions and therefore interfere; the paper's Fig. 7 forced
// sweep exercises exactly that regime.
//
// want limits how many directions are returned; want <= 0 means "all
// valid multiplier-1 candidates" (the auto mode used when the caller just
// wants maximum disjoint bandwidth).
func SelectGroupDirections(tor *torus.Torus, sBox, tBox torus.Box, want int) []GroupDirection {
	sNodes := sBox.Nodes(tor)
	inS := make(map[torus.NodeID]struct{}, len(sNodes))
	for _, n := range sNodes {
		inS[n] = struct{}{}
	}
	inT := make(map[torus.NodeID]struct{}, tBox.Size())
	for _, n := range tBox.Nodes(tor) {
		inT[n] = struct{}{}
	}
	taken := make(map[torus.NodeID]struct{}) // nodes of accepted proxy regions

	var accepted []GroupDirection
	maxMult := 1
	if want > 0 {
		// Allow far translations only when a specific count is forced.
		maxMult = 8
	}
	for m := 1; m <= maxMult; m++ {
		for _, dim := range tor.DimsByExtentDesc() {
			shift := m * sBox.Extent[dim]
			if shift%tor.Extent(dim) == 0 {
				continue // translation is the identity: overlaps the source region
			}
			for _, dir := range []torus.Direction{torus.Plus, torus.Minus} {
				if want > 0 && len(accepted) >= want {
					return accepted
				}
				region := translateNodes(tor, sNodes, dim, int(dir)*shift)
				if overlaps(region, inS) || overlaps(region, inT) || overlaps(region, taken) {
					continue
				}
				for _, n := range region {
					taken[n] = struct{}{}
				}
				accepted = append(accepted, GroupDirection{Dim: dim, Dir: dir, Multiplier: m})
			}
		}
	}
	return accepted
}

func translateNodes(tor *torus.Torus, nodes []torus.NodeID, dim, shift int) []torus.NodeID {
	out := make([]torus.NodeID, len(nodes))
	c := make(torus.Coord, tor.Dims())
	for i, n := range nodes {
		tor.CoordInto(n, c)
		c[dim] = tor.Wrap(dim, c[dim]+shift)
		out[i] = tor.ID(c)
	}
	return out
}

func overlaps(nodes []torus.NodeID, set map[torus.NodeID]struct{}) bool {
	for _, n := range nodes {
		if _, ok := set[n]; ok {
			return true
		}
	}
	return false
}

// GroupPlanner plans data-coupling transfers between two congruent groups
// of compute nodes (the multiphysics scenario of the paper's Figs. 6-7).
type GroupPlanner struct {
	tor *torus.Torus
	cfg ProxyConfig

	// ForceGroups, when positive, uses exactly that many proxy groups
	// (best effort routing, interference allowed) instead of the
	// automatic disjoint selection — the Fig. 7 sweep.
	ForceGroups int
}

// NewGroupPlanner validates the configuration.
func NewGroupPlanner(tor *torus.Torus, cfg ProxyConfig) (*GroupPlanner, error) {
	if err := cfg.validate(tor.Dims()); err != nil {
		return nil, err
	}
	return &GroupPlanner{tor: tor, cfg: cfg}, nil
}

// Plan pairs the i-th node of sBox with the i-th node of tBox (box-local
// row-major order, the contiguous mapping used by coupled multiphysics
// codes) and moves bytesPerPair from every source to its destination,
// using proxy groups when profitable.
func (g *GroupPlanner) Plan(e *netsim.Engine, sBox, tBox torus.Box, bytesPerPair int64) (GroupPlan, error) {
	if sBox.Size() != tBox.Size() {
		return GroupPlan{}, fmt.Errorf("core: group sizes differ: %d vs %d", sBox.Size(), tBox.Size())
	}
	if bytesPerPair < 0 {
		return GroupPlan{}, fmt.Errorf("core: negative transfer size")
	}
	sNodes := sBox.Nodes(g.tor)
	tNodes := tBox.Nodes(g.tor)
	plan := GroupPlan{PairCount: len(sNodes), TotalBytes: bytesPerPair * int64(len(sNodes))}

	directAll := func() (GroupPlan, error) {
		plan.Mode = Direct
		plan.DirectPairs = plan.PairCount
		for i := range sNodes {
			id := e.Submit(netsim.FlowSpec{Src: sNodes[i], Dst: tNodes[i], Bytes: bytesPerPair,
				Label: fmt.Sprintf("pair%d/direct", i)})
			plan.Final = append(plan.Final, id)
		}
		return plan, nil
	}

	forced := g.ForceGroups > 0
	if !forced && bytesPerPair < g.cfg.Threshold {
		return directAll()
	}
	want := 0
	if forced {
		want = g.ForceGroups
	}
	groups := SelectGroupDirections(g.tor, sBox, tBox, want)
	if want > 0 && len(groups) > want {
		groups = groups[:want]
	}
	if !forced {
		if max := g.cfg.maxProxies(g.tor.Dims()); len(groups) > max {
			groups = groups[:max]
		}
		if len(groups) < g.cfg.MinProxies {
			return directAll()
		}
	}
	if len(groups) == 0 {
		return directAll()
	}
	plan.Mode = Proxied
	plan.Groups = groups

	for i := range sNodes {
		src, dst := sNodes[i], tNodes[i]
		// Resolve each group's proxy for this pair, then route the most
		// constrained proxies (fewest displacement dimensions to the
		// destination, hence fewest possible entry links) first.
		type cand struct {
			proxy torus.NodeID
			disp  int
		}
		var cands []cand
		for _, grp := range groups {
			shift := int(grp.Dir) * grp.Multiplier * sBox.Extent[grp.Dim]
			c := g.tor.Coord(src)
			c[grp.Dim] = g.tor.Wrap(grp.Dim, c[grp.Dim]+shift)
			proxy := g.tor.ID(c)
			if proxy == src || proxy == dst {
				continue
			}
			cands = append(cands, cand{proxy, displacementDims(g.tor, proxy, dst)})
		}
		for a := 1; a < len(cands); a++ {
			for b := a; b > 0 && cands[b].disp < cands[b-1].disp; b-- {
				cands[b], cands[b-1] = cands[b-1], cands[b]
			}
		}
		// Build this pair's proxy routes; per-pair link-disjointness.
		busy := make(map[int]struct{}, 64)
		type legPair struct {
			proxy      torus.NodeID
			leg1, leg2 routing.Route
		}
		var legs []legPair
		for _, cd := range cands {
			proxy := cd.proxy
			leg1 := routing.DeterministicRoute(g.tor, src, proxy)
			leg2, ok := disjointRoute(g.tor, proxy, dst, busy, nil, leg1.Links)
			if !ok {
				if !forced {
					continue
				}
				// Forced mode: take the default route and let the
				// interference show up in the simulation.
				leg2 = routing.DeterministicRoute(g.tor, proxy, dst)
			}
			markBusy(busy, leg1.Links)
			markBusy(busy, leg2.Links)
			legs = append(legs, legPair{proxy, leg1, leg2})
		}
		if !forced && len(legs) < g.cfg.MinProxies {
			plan.DirectPairs++
			id := e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytesPerPair,
				Label: fmt.Sprintf("pair%d/direct", i)})
			plan.Final = append(plan.Final, id)
			continue
		}
		if len(legs) == 0 {
			plan.DirectPairs++
			id := e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytesPerPair,
				Label: fmt.Sprintf("pair%d/direct", i)})
			plan.Final = append(plan.Final, id)
			continue
		}
		pieces := splitBytes(bytesPerPair, len(legs))
		for k, lp := range legs {
			pr := ProxyRoute{Proxy: lp.proxy, Leg1: lp.leg1, Leg2: lp.leg2}
			_, finals := submitLegPair(e, g.cfg, pr, pieces[k], fmt.Sprintf("pair%d/g%d", i, k))
			plan.Final = append(plan.Final, finals...)
		}
	}
	return plan, nil
}
