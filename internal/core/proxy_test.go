package core

import (
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

func mira128() *torus.Torus { return torus.MustNew(torus.Shape{2, 2, 4, 4, 2}) }

func newEngine(t *testing.T, tor *torus.Torus) *netsim.Engine {
	t.Helper()
	p := netsim.DefaultParams()
	e, err := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDefaultProxyConfigValid(t *testing.T) {
	if err := DefaultProxyConfig().validate(5); err != nil {
		t.Fatal(err)
	}
}

func TestProxyConfigValidation(t *testing.T) {
	cases := []ProxyConfig{
		{MinProxies: 0, Offset: 1},
		{MinProxies: 1, Offset: 0},
		{MinProxies: 1, Offset: 1, MaxProxies: 11},
		{MinProxies: 1, Offset: 1, Threshold: -1},
		{MinProxies: 1, Offset: 1, Pipeline: true, ChunkBytes: 0},
	}
	for i, c := range cases {
		if err := c.validate(5); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestSelectProxiesCornerToCorner(t *testing.T) {
	tor := mira128()
	pl, err := NewPairPlanner(tor, DefaultProxyConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := torus.NodeID(0)
	dst := torus.NodeID(tor.Size() - 1)
	proxies := pl.SelectProxies(src, dst)
	if len(proxies) < 4 {
		t.Fatalf("found %d proxies on the Fig. 5 geometry, paper used 4", len(proxies))
	}
	// All legs pairwise link-disjoint.
	seen := map[int]string{}
	for i, pr := range proxies {
		for _, leg := range []routing.Route{pr.Leg1, pr.Leg2} {
			for _, l := range leg.Links {
				if who, ok := seen[l]; ok {
					t.Fatalf("proxy %d (%v) reuses link %d already used by %s", i, pr.Proxy, l, who)
				}
				seen[l] = pr.Leg1.String()
			}
		}
		// Legs connect properly.
		if pr.Leg1.Src != src || pr.Leg1.Dst != pr.Proxy {
			t.Fatalf("proxy %d leg1 endpoints wrong", i)
		}
		if pr.Leg2.Src != pr.Proxy || pr.Leg2.Dst != dst {
			t.Fatalf("proxy %d leg2 endpoints wrong", i)
		}
		if pr.Proxy == src || pr.Proxy == dst {
			t.Fatalf("proxy %d is an endpoint", i)
		}
	}
}

func TestSelectProxiesSelfPair(t *testing.T) {
	tor := mira128()
	pl, _ := NewPairPlanner(tor, DefaultProxyConfig())
	if got := pl.SelectProxies(3, 3); got != nil {
		t.Fatalf("self pair returned %d proxies", len(got))
	}
}

func TestSelectProxiesRespectsMaxProxies(t *testing.T) {
	tor := mira128()
	cfg := DefaultProxyConfig()
	cfg.MaxProxies = 2
	pl, _ := NewPairPlanner(tor, cfg)
	got := pl.SelectProxies(0, torus.NodeID(tor.Size()-1))
	if len(got) > 2 {
		t.Fatalf("MaxProxies=2 but got %d", len(got))
	}
}

func TestPlanPairSmallMessageGoesDirect(t *testing.T) {
	tor := mira128()
	pl, _ := NewPairPlanner(tor, DefaultProxyConfig())
	e := newEngine(t, tor)
	plan, err := pl.PlanPair(e, 0, torus.NodeID(tor.Size()-1), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != Direct {
		t.Fatalf("64KB message planned as %v, want direct (threshold 256KB)", plan.Mode)
	}
	if len(plan.Flows) != 1 {
		t.Fatalf("direct plan has %d flows", len(plan.Flows))
	}
}

func TestPlanPairLargeMessageUsesProxies(t *testing.T) {
	tor := mira128()
	pl, _ := NewPairPlanner(tor, DefaultProxyConfig())
	e := newEngine(t, tor)
	plan, err := pl.PlanPair(e, 0, torus.NodeID(tor.Size()-1), 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != Proxied {
		t.Fatalf("32MB message planned as %v", plan.Mode)
	}
	if len(plan.Final) != len(plan.Proxies) {
		t.Fatalf("%d final flows for %d proxies", len(plan.Final), len(plan.Proxies))
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// All data arrives.
	var arrived int64
	for _, id := range plan.Final {
		r := e.Result(id)
		if !r.Done {
			t.Fatal("final flow not done")
		}
		arrived += r.Bytes
	}
	if arrived != 32<<20 {
		t.Fatalf("%d bytes arrived, want %d", arrived, 32<<20)
	}
}

// The Fig. 5 shape: proxied transfers beat direct ~2x at 128 MB and lose
// below the threshold, on the paper's exact 128-node geometry.
func TestFig5Crossover(t *testing.T) {
	tor := mira128()
	cfg := DefaultProxyConfig()
	cfg.MaxProxies = 4 // the paper uses 4 proxies in Fig. 5

	run := func(bytes int64, forceDirect bool) float64 {
		e := newEngine(t, tor)
		src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
		if forceDirect {
			e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytes})
		} else {
			pl, _ := NewPairPlanner(tor, cfg)
			if _, err := pl.PlanPair(e, src, dst, bytes); err != nil {
				t.Fatal(err)
			}
		}
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return netsim.Throughput(bytes, mk)
	}

	const big = 128 << 20
	gain := run(big, false) / run(big, true)
	if gain < 1.6 || gain > 2.4 {
		t.Fatalf("128MB proxy gain = %.2fx, want ~2x", gain)
	}
	const small = 32 << 10
	if run(small, false) < run(small, true)*0.99 {
		t.Fatal("below threshold the planner must not lose to direct (it should choose direct itself)")
	}
}

func TestPipelineExtensionBeatsPlainProxies(t *testing.T) {
	tor := mira128()
	const bytes = 64 << 20
	run := func(pipeline bool) float64 {
		cfg := DefaultProxyConfig()
		cfg.MaxProxies = 4
		cfg.Pipeline = pipeline
		cfg.ChunkBytes = 2 << 20
		pl, err := NewPairPlanner(tor, cfg)
		if err != nil {
			t.Fatal(err)
		}
		e := newEngine(t, tor)
		if _, err := pl.PlanPair(e, 0, torus.NodeID(tor.Size()-1), bytes); err != nil {
			t.Fatal(err)
		}
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return netsim.Throughput(bytes, mk)
	}
	plain := run(false)
	piped := run(true)
	if piped <= plain {
		t.Fatalf("pipelining did not help: plain %.3g, piped %.3g", plain, piped)
	}
}

func TestPlanPairNegativeBytes(t *testing.T) {
	tor := mira128()
	pl, _ := NewPairPlanner(tor, DefaultProxyConfig())
	e := newEngine(t, tor)
	if _, err := pl.PlanPair(e, 0, 1, -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestSplitBytes(t *testing.T) {
	pieces := splitBytes(10, 3)
	if pieces[0]+pieces[1]+pieces[2] != 10 {
		t.Fatalf("splitBytes lost bytes: %v", pieces)
	}
	if pieces[0] != 4 || pieces[1] != 3 || pieces[2] != 3 {
		t.Fatalf("splitBytes = %v", pieces)
	}
}

func TestForEachPermutationCountsAndStops(t *testing.T) {
	n := 0
	forEachPermutation([]int{0, 1, 2, 3}, func([]int) bool { n++; return true })
	if n != 24 {
		t.Fatalf("visited %d permutations of 4, want 24", n)
	}
	n = 0
	forEachPermutation([]int{0, 1, 2}, func([]int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
	// First permutation is the identity order.
	var first []int
	forEachPermutation([]int{7, 8, 9}, func(p []int) bool {
		first = append([]int(nil), p...)
		return false
	})
	if first[0] != 7 || first[1] != 8 || first[2] != 9 {
		t.Fatalf("first permutation %v is not the base order", first)
	}
}

func TestProxySelectionDeterministic(t *testing.T) {
	tor := mira128()
	pl, _ := NewPairPlanner(tor, DefaultProxyConfig())
	a := pl.SelectProxies(0, 100)
	b := pl.SelectProxies(0, 100)
	if len(a) != len(b) {
		t.Fatal("selection count changed between calls")
	}
	for i := range a {
		if a[i].Proxy != b[i].Proxy {
			t.Fatal("selection changed between calls")
		}
	}
}
