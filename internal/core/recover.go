package core

import (
	"fmt"

	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/routing"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// RecoveryConfig tunes the resilient transfer loop (MoveResilient).
type RecoveryConfig struct {
	// MaxReplans bounds the recovery waves after the first attempt; past
	// it the transfer gives up with the bytes delivered so far.
	MaxReplans int

	// DetectFactor scales the Eq. 1-5 predicted transfer time into the
	// detection timeout: a lost piece is noticed DetectFactor x predicted
	// after the wave started. This is the simulated cost of discovering a
	// failure end to end rather than by oracle.
	DetectFactor float64

	// Backoff is the extra wait before the first replan; it doubles on
	// every subsequent wave (bounded exponential backoff, in simulated
	// time).
	Backoff sim.Duration

	// OnEvent, when set, receives the transfer's progress timeline as it
	// unfolds: one EventWave per released wave, EventWaveDone when the
	// wave's flows have all resolved, EventLoss/EventReplan/EventDegrade
	// along the recovery ladder, and EventComplete on success. Events are
	// emitted synchronously on the caller's goroutine in virtual-time
	// order; the streaming session layer (internal/serve) fans them out
	// to clients.
	OnEvent func(TransferEvent)

	// Interject, when set, is called on the transfer's own goroutine
	// before each wave is planned and before every clock step while a
	// wave resolves. It is the safe point for an outside party to mutate
	// the engine mid-transfer (inject a pushed fault with FailLinkAt, or
	// pace virtual time against the wall clock). Returning a non-nil
	// error aborts the transfer with the bytes delivered so far.
	Interject func(e *netsim.Engine) error

	// Recorder, when set, receives THIS transfer's sim-clock spans and
	// instants instead of the transport-attached recorder — a per-call
	// override so a daemon running many concurrent sessions on one
	// shared Transport configuration can give each session a private
	// engine timeline (merged into the service trace when the session
	// finishes). Track names the span track; empty means "transport".
	Recorder *obs.Recorder
	Track    string
}

// TransferEventKind enumerates MoveResilient progress events.
type TransferEventKind int

const (
	// EventWave: a wave of flows was planned and released.
	EventWave TransferEventKind = iota
	// EventWaveDone: every flow of the wave resolved (done or aborted).
	EventWaveDone
	// EventLoss: the resolved wave lost bytes to a failure.
	EventLoss
	// EventReplan: the detection timeout and backoff have been charged;
	// the next wave will be planned with at most Proxies proxies.
	EventReplan
	// EventDegrade: the proxy ladder descended below the first wave's
	// count.
	EventDegrade
	// EventComplete: every requested byte was delivered.
	EventComplete
)

var transferEventNames = [...]string{"wave", "wavedone", "loss", "replan", "degrade", "complete"}

func (k TransferEventKind) String() string {
	if k < 0 || int(k) >= len(transferEventNames) {
		return fmt.Sprintf("TransferEventKind(%d)", int(k))
	}
	return transferEventNames[k]
}

// TransferEvent is one step of a resilient transfer's progress timeline.
type TransferEvent struct {
	Kind TransferEventKind
	// Wave is the zero-based wave index (EventWave/EventWaveDone/EventLoss).
	Wave int
	// Replans counts recovery waves so far (EventReplan).
	Replans int
	// Proxies is the wave's proxy count (EventWave) or the cap for the
	// next wave (EventReplan/EventDegrade); 0 means direct.
	Proxies int
	// Mode is the wave's transfer mode (EventWave).
	Mode TransferMode
	// Bytes is the wave's payload (EventWave), the bytes lost
	// (EventLoss), or the bytes delivered (EventComplete).
	Bytes int64
	// At is the virtual time of the event.
	At sim.Time
}

// DefaultRecoveryConfig returns the operating point used by the R1
// resilience experiment.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{MaxReplans: 8, DetectFactor: 1.5, Backoff: 100e-6}
}

func (c RecoveryConfig) validate() error {
	if c.MaxReplans < 0 {
		return fmt.Errorf("core: negative MaxReplans")
	}
	if c.DetectFactor < 1 {
		return fmt.Errorf("core: DetectFactor %g must be >= 1 (detection cannot precede completion)", c.DetectFactor)
	}
	if c.Backoff < 0 {
		return fmt.Errorf("core: negative Backoff")
	}
	return nil
}

// TransferReport is the outcome of one resilient transfer: what moved,
// what it cost, and how far the degradation ladder was descended.
type TransferReport struct {
	Bytes     int64 // requested
	Delivered int64 // bytes that reached the destination
	Complete  bool  // Delivered == Bytes

	Attempts      int   // waves submitted (first attempt + replans)
	Replans       int   // waves after a detected loss
	BytesRerouted int64 // bytes resubmitted by recovery waves

	// Degraded reports that recovery had to descend the proxy ladder
	// (k -> k-1 -> ... -> direct) below the first wave's proxy count.
	Degraded  bool
	FinalMode TransferMode // mode of the last wave that moved bytes

	// Makespan is the virtual time at which the last delivered byte
	// landed, measured from time zero; it includes detection timeouts and
	// backoff spent between waves.
	Makespan sim.Duration
}

// MoveResilient moves bytes from src to dst on an interactive engine,
// surviving failures that arrive mid-transfer: it plans against the
// network's live failure state, drives the clock until every piece either
// lands or aborts, charges a detection timeout (Eq. 1-5 predicted time x
// DetectFactor) plus doubling backoff in simulated time for every loss,
// replans the lost bytes with fault-avoiding proxy selection, and
// degrades k -> k-1 -> ... -> direct as the torus loses disjoint paths.
// The engine must be in interactive mode (BeginInteractive), since
// recovery needs to interleave planning with the virtual clock.
func (t *Transport) MoveResilient(e *netsim.Engine, src, dst torus.NodeID, bytes int64, rc RecoveryConfig) (TransferReport, error) {
	rep := TransferReport{Bytes: bytes, FinalMode: Direct}
	if err := rc.validate(); err != nil {
		return rep, err
	}
	if bytes < 0 {
		return rep, fmt.Errorf("core: negative transfer size %d", bytes)
	}
	if int(src) < 0 || int(src) >= t.tor.Size() || int(dst) < 0 || int(dst) >= t.tor.Size() {
		return rep, fmt.Errorf("core: endpoints (%d,%d) outside partition", src, dst)
	}
	if !e.Interactive() {
		return rep, fmt.Errorf("core: MoveResilient requires an interactive engine (call BeginInteractive)")
	}
	if bytes == 0 || src == dst {
		rep.Complete = true
		return rep, nil
	}

	net := e.Network()
	faults := net.FailedFunc()
	maxK := t.cfg.maxProxies(t.tor.Dims())
	backoff := rc.Backoff
	remaining := bytes
	firstWaveProxies := -1
	rec, track := t.recorder()
	if rc.Recorder != nil {
		rec = rc.Recorder
		track = rc.Track
		if track == "" {
			track = "transport"
		}
	}
	if rec != nil {
		defer func(begin sim.Time) {
			name := fmt.Sprintf("resilient %d->%d (%dB)", src, dst, bytes)
			if rep.Complete {
				rec.Span(track, name, begin, e.Now())
			} else {
				rec.SpanAborted(track, name+" (incomplete)", begin, e.Now())
			}
		}(e.Now())
	}

	emit := func(ev TransferEvent) {
		if rc.OnEvent != nil {
			rc.OnEvent(ev)
		}
	}
	interject := func() error {
		if rc.Interject == nil {
			return nil
		}
		return rc.Interject(e)
	}

	for {
		// The pre-wave safe point: pushed faults injected here land on the
		// engine clock before the wave is planned, so planning sees them.
		if err := interject(); err != nil {
			rep.Delivered = bytes - remaining
			return rep, fmt.Errorf("core: transfer interrupted after %d bytes: %w", rep.Delivered, err)
		}

		// Plan this wave against the live failure state. The degradation
		// ladder caps the proxy count at maxK, which drops by one after
		// every lossy wave until only the direct path is left.
		var proxies []ProxyRoute
		if maxK >= t.cfg.MinProxies && remaining >= t.waveThreshold(src, dst, maxK) {
			proxies = selectProxiesAvoiding(t.tor, src, dst, t.cfg, nil, faults)
			if len(proxies) > maxK {
				proxies = proxies[:maxK]
			}
			if len(proxies) < t.cfg.MinProxies {
				proxies = nil
			}
		}
		if firstWaveProxies < 0 {
			firstWaveProxies = len(proxies)
		} else if len(proxies) < firstWaveProxies {
			rep.Degraded = true
		}

		waveStart := e.Now()
		var finals []netsim.FlowID
		finalBytes := make(map[netsim.FlowID]int64)
		var predicted sim.Duration
		if len(proxies) > 0 {
			rep.FinalMode = Proxied
			pieces := splitBytes(remaining, len(proxies))
			h1, h2 := 0, 0
			for i, pr := range proxies {
				_, fin := submitLegPair(e, t.cfg, pr, pieces[i], fmt.Sprintf("resilient/wave%d/proxy%d", rep.Attempts, i))
				for _, id := range fin {
					finals = append(finals, id)
					finalBytes[id] = pieces[i]
				}
				h1 += pr.Leg1.Hops()
				h2 += pr.Leg2.Hops()
			}
			predicted = t.model.ProxyTime(remaining, len(proxies), h1/len(proxies), h2/len(proxies))
		} else {
			rep.FinalMode = Direct
			r, err := routing.RouteAvoiding(t.tor, src, dst, faults)
			if err != nil {
				rep.Delivered = bytes - remaining
				return rep, fmt.Errorf("core: resilient transfer cut off after %d bytes: %w", rep.Delivered, err)
			}
			id := e.Submit(netsim.FlowSpec{
				Src: src, Dst: dst, Bytes: remaining, Links: r.Links,
				Label: fmt.Sprintf("resilient/wave%d/direct", rep.Attempts),
			})
			finals = append(finals, id)
			finalBytes[id] = remaining
			predicted = t.model.DirectTime(remaining, len(r.Links))
		}
		rep.Attempts++
		emit(TransferEvent{Kind: EventWave, Wave: rep.Attempts - 1, Proxies: len(proxies),
			Mode: rep.FinalMode, Bytes: remaining, At: waveStart})
		var waveSpan obs.SpanID
		if rec != nil {
			mode := "direct"
			if len(proxies) > 0 {
				mode = fmt.Sprintf("proxied k=%d", len(proxies))
			}
			waveSpan = rec.SpanBegin(track+"/waves",
				fmt.Sprintf("wave %d %s (%dB)", rep.Attempts-1, mode, remaining), waveStart)
		}

		// Drive the clock until every final of this wave resolves. Aborts
		// fire at the failure instant, so each final ends Done or Aborted.
		// Each step starts from the interject safe point: a fault pushed
		// mid-wave aborts the flows it hits through the engine's own
		// failure machinery, exactly like a scheduled campaign event.
		for !t.resolved(e, finals) {
			if err := interject(); err != nil {
				rep.Delivered = bytes - remaining
				return rep, fmt.Errorf("core: transfer interrupted after %d bytes: %w", rep.Delivered, err)
			}
			if !e.StepClock() {
				rep.Delivered = bytes - remaining
				return rep, fmt.Errorf("core: clock ran dry with unresolved flows (wave %d)", rep.Attempts)
			}
		}
		emit(TransferEvent{Kind: EventWaveDone, Wave: rep.Attempts - 1, At: e.Now()})
		if rec != nil {
			rec.SpanEnd(waveSpan, e.Now())
		}

		var lost int64
		for _, id := range finals {
			res := e.Result(id)
			if res.Done {
				remaining -= finalBytes[id]
				if d := sim.Duration(res.Completed); d > rep.Makespan {
					rep.Makespan = d
				}
			} else {
				lost += finalBytes[id]
			}
		}
		if lost == 0 {
			rep.Delivered = bytes
			rep.Complete = true
			emit(TransferEvent{Kind: EventComplete, Bytes: bytes, At: e.Now()})
			return rep, nil
		}
		emit(TransferEvent{Kind: EventLoss, Wave: rep.Attempts - 1, Bytes: lost, At: e.Now()})

		if rep.Replans >= rc.MaxReplans {
			rep.Delivered = bytes - remaining
			return rep, fmt.Errorf("core: gave up after %d replans with %d bytes undelivered", rep.Replans, remaining)
		}

		// Charge the detection timeout: the loss is noticed DetectFactor x
		// the predicted wave time after the wave began, plus the current
		// backoff — all in simulated time.
		lossAt := e.Now()
		detectAt := waveStart + sim.Time(float64(predicted)*rc.DetectFactor) + sim.Time(backoff)
		t.waitUntil(e, detectAt)
		backoff *= 2

		rep.Replans++
		rep.BytesRerouted += lost
		// Descend the ladder: the next wave gets one fewer proxy than this
		// one used (direct once below MinProxies).
		degraded := maxK
		if len(proxies) > 0 {
			maxK = len(proxies) - 1
		} else {
			maxK = 0
		}
		emit(TransferEvent{Kind: EventReplan, Replans: rep.Replans, Proxies: maxK, Bytes: lost, At: e.Now()})
		if maxK < degraded {
			emit(TransferEvent{Kind: EventDegrade, Proxies: maxK, At: e.Now()})
		}
		if rec != nil {
			// The replan span covers the detect-and-backoff window between
			// the loss and the next wave's release.
			rec.Span(track+"/waves",
				fmt.Sprintf("replan %d (%dB lost, k<=%d)", rep.Replans, lost, maxK), lossAt, e.Now())
			if maxK < degraded {
				rec.Instant(track+"/waves", fmt.Sprintf("degrade k<=%d", maxK), e.Now())
			}
			reg := rec.Registry()
			reg.Counter("transport/replans").Inc()
			reg.Counter("transport/bytes_rerouted").Add(lost)
			reg.Histogram("transport/detect_ms").Observe(float64(e.Now()-lossAt) * 1e3)
		}
	}
}

// waveThreshold is the direct/proxy crossover for one recovery wave.
func (t *Transport) waveThreshold(src, dst torus.NodeID, k int) int64 {
	hopsDirect := t.tor.HopDistance(src, dst)
	th := t.model.Threshold(k, hopsDirect, t.cfg.Offset, hopsDirect)
	if th == 0 {
		return 1 << 62
	}
	return th
}

// resolved reports whether every listed flow is Done or Aborted.
func (t *Transport) resolved(e *netsim.Engine, ids []netsim.FlowID) bool {
	for _, id := range ids {
		res := e.Result(id)
		if !res.Done && !res.Aborted {
			return false
		}
	}
	return true
}

// waitUntil advances the interactive clock to at least the given instant
// by parking a no-op timer there and stepping through everything before
// it. Failure events scheduled in the window fire on the way.
func (t *Transport) waitUntil(e *netsim.Engine, at sim.Time) {
	if at <= e.Now() {
		return
	}
	reached := false
	e.ScheduleAfter(sim.Duration(at-e.Now()), func() { reached = true })
	for !reached && e.StepClock() {
	}
}
