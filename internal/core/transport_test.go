package core

import (
	"sync"
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

func newTransport(t *testing.T, tor *torus.Torus) (*Transport, netsim.Params) {
	t.Helper()
	p := netsim.DefaultParams()
	cfg := DefaultProxyConfig()
	cfg.MaxProxies = 4
	tr, err := NewTransport(tor, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, p
}

func TestTransportModeSelection(t *testing.T) {
	tor := mira128()
	tr, _ := newTransport(t, tor)
	e := newEngine(t, tor)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	small, err := tr.Move(e, src, dst, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if small.Mode != Direct {
		t.Fatalf("16KB moved %v", small.Mode)
	}
	big, err := tr.Move(e, src, dst, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if big.Mode != Proxied {
		t.Fatalf("16MB moved %v", big.Mode)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTransportCachesSelections(t *testing.T) {
	tor := mira128()
	tr, _ := newTransport(t, tor)
	e := newEngine(t, tor)
	for i := 0; i < 10; i++ {
		if _, err := tr.Move(e, 0, 100, 8<<20); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := tr.Stats()
	if misses != 1 || hits != 9 {
		t.Fatalf("hits=%d misses=%d, want 9/1", hits, misses)
	}
}

func TestTransportMatchesPlanner(t *testing.T) {
	tor := mira128()
	tr, p := newTransport(t, tor)
	const bytes = 64 << 20
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	eT := newEngine(t, tor)
	if _, err := tr.Move(eT, src, dst, bytes); err != nil {
		t.Fatal(err)
	}
	mkT, err := eT.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultProxyConfig()
	cfg.MaxProxies = 4
	pl, _ := NewPairPlanner(tor, cfg)
	eP := newEngine(t, tor)
	if _, err := pl.PlanPair(eP, src, dst, bytes); err != nil {
		t.Fatal(err)
	}
	mkP, err := eP.Run()
	if err != nil {
		t.Fatal(err)
	}
	rT := netsim.Throughput(bytes, mkT)
	rP := netsim.Throughput(bytes, mkP)
	if rT < rP*0.95 || rT > rP*1.05 {
		t.Fatalf("transport %.3g vs planner %.3g", rT, rP)
	}
	_ = p
}

func TestTransportFaultsInvalidateCache(t *testing.T) {
	tor := mira128()
	tr, p := newTransport(t, tor)
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	e1, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	plan1, err := tr.Move(e1, src, dst, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if plan1.Mode != Proxied {
		t.Fatal("expected proxied")
	}
	// Fail one of the selected legs; the transport must replan.
	net.FailLink(plan1.Proxies[0].Leg1.Links[0])
	tr.SetFaults(net.FailedFunc())

	e2, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := tr.Move(e2, src, dst, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range plan2.Proxies {
		for _, l := range append(append([]int(nil), pr.Leg1.Links...), pr.Leg2.Links...) {
			if net.LinkFailed(l) {
				t.Fatal("post-fault selection crosses a failed link")
			}
		}
	}
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTransportDirectFaultAware(t *testing.T) {
	tor := mira128()
	tr, p := newTransport(t, tor)
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	def := routing.DeterministicRoute(tor, src, dst)
	net.FailLink(def.Links[0])
	tr.SetFaults(net.FailedFunc())
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tr.Move(e, src, dst, 4<<10) // small: direct
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Result(plan.Final[0]).Done {
		t.Fatal("direct move did not complete around the failure")
	}
}

func TestTransportValidation(t *testing.T) {
	tor := mira128()
	tr, _ := newTransport(t, tor)
	e := newEngine(t, tor)
	if _, err := tr.Move(e, 0, 1, -1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := tr.Move(e, 0, torus.NodeID(9999), 1); err == nil {
		t.Fatal("bad endpoint accepted")
	}
}

func TestTransportConcurrentMoves(t *testing.T) {
	// Concurrent planning against one transport must be safe; each
	// goroutine gets its own engine.
	tor := mira128()
	tr, p := newTransport(t, tor)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e, err := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
			if err != nil {
				errs[g] = err
				return
			}
			for i := 0; i < 20; i++ {
				src := torus.NodeID((g * 13) % tor.Size())
				dst := torus.NodeID((g*29 + i) % tor.Size())
				if src == dst {
					continue
				}
				if _, err := tr.Move(e, src, dst, 4<<20); err != nil {
					errs[g] = err
					return
				}
			}
			if _, err := e.Run(); err != nil {
				errs[g] = err
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
