package core

import (
	"testing"

	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
	"bgqflow/internal/workload"
)

// aggRig builds a 2K-node system (16 psets) with 16 ranks per node.
type aggRig struct {
	tor *torus.Torus
	net *netsim.Network
	ios *ionet.System
	job *mpisim.Job
	p   netsim.Params
}

func newAggRig(t *testing.T, shape torus.Shape, ranksPerNode int) *aggRig {
	t.Helper()
	tor := torus.MustNew(shape)
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	job, err := mpisim.NewJob(tor, ranksPerNode)
	if err != nil {
		t.Fatal(err)
	}
	return &aggRig{tor: tor, net: net, ios: ios, job: job, p: p}
}

func (r *aggRig) engine(t *testing.T) *netsim.Engine {
	t.Helper()
	// Networks are immutable; each run gets a fresh engine over the
	// same network.
	e, err := netsim.NewEngine(r.net, r.p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewAggPlannerInit(t *testing.T) {
	r := newAggRig(t, torus.Shape{4, 4, 4, 16, 2}, 16)
	a, err := NewAggPlanner(r.ios, r.job, r.p, DefaultAggConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := a.FeasibleCounts()
	if len(counts) == 0 || counts[0] != 1 {
		t.Fatalf("feasible counts %v", counts)
	}
	for _, c := range counts {
		if c > 128 {
			t.Fatalf("count %d exceeds pset size", c)
		}
	}
}

func TestAggConfigValidation(t *testing.T) {
	r := newAggRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	if _, err := NewAggPlanner(r.ios, r.job, r.p, AggConfig{MinBytesPerAggregator: 0, MaxAggregatorsPerPset: 1}); err == nil {
		t.Error("zero S accepted")
	}
	if _, err := NewAggPlanner(r.ios, r.job, r.p, AggConfig{MinBytesPerAggregator: 1, MaxAggregatorsPerPset: 0}); err == nil {
		t.Error("zero max aggregators accepted")
	}
}

func TestAggregatorCountScalesWithData(t *testing.T) {
	r := newAggRig(t, torus.Shape{4, 4, 4, 16, 2}, 16)
	a, err := NewAggPlanner(r.ios, r.job, r.p, DefaultAggConfig())
	if err != nil {
		t.Fatal(err)
	}
	small, _ := a.AggregatorsFor(1 << 20)
	big, _ := a.AggregatorsFor(1 << 40)
	if small != 1 {
		t.Fatalf("1MB burst selected %d aggregators per pset, want 1", small)
	}
	if big <= small {
		t.Fatalf("1TB burst selected %d per pset, want more than %d", big, small)
	}
}

func TestAggregatorsUniformAcrossPsetsAndBridges(t *testing.T) {
	r := newAggRig(t, torus.Shape{4, 4, 4, 16, 2}, 16)
	a, _ := NewAggPlanner(r.ios, r.job, r.p, DefaultAggConfig())
	perPset, aggs := a.AggregatorsFor(1 << 36) // large burst
	if perPset < 2 {
		t.Fatalf("perPset = %d, want >= 2 for a large burst", perPset)
	}
	countPerPset := map[int]int{}
	bridgeUse := map[int]map[int]int{}
	for _, ag := range aggs {
		countPerPset[ag.Pset]++
		if bridgeUse[ag.Pset] == nil {
			bridgeUse[ag.Pset] = map[int]int{}
		}
		bridgeUse[ag.Pset][ag.Bridge]++
		// The aggregator must live in its pset.
		if r.ios.PsetOf(ag.Node).Index != ag.Pset {
			t.Fatalf("aggregator node %d not in pset %d", ag.Node, ag.Pset)
		}
		// Lead rank lives on the aggregator node.
		if r.job.NodeOf(ag.LeadRank) != ag.Node {
			t.Fatalf("lead rank %d not on node %d", ag.LeadRank, ag.Node)
		}
	}
	for pi := 0; pi < r.ios.NumPsets(); pi++ {
		if countPerPset[pi] != perPset {
			t.Fatalf("pset %d has %d aggregators, want %d", pi, countPerPset[pi], perPset)
		}
		// Both bridges used when perPset >= 2.
		if len(bridgeUse[pi]) < 2 {
			t.Fatalf("pset %d uses only %d bridges", pi, len(bridgeUse[pi]))
		}
	}
}

func TestAggPlanDeliversAllBytes(t *testing.T) {
	r := newAggRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	a, _ := NewAggPlanner(r.ios, r.job, r.p, DefaultAggConfig())
	e := r.engine(t)
	data := workload.Uniform(r.job.NumRanks(), 1<<20, 3)
	plan, err := a.Plan(e, data)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalBytes != workload.Total(data) {
		t.Fatalf("plan total %d, want %d", plan.TotalBytes, workload.Total(data))
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var arrived int64
	for _, id := range plan.Final {
		arrived += e.Result(id).Bytes
	}
	if arrived != plan.TotalBytes {
		t.Fatalf("arrived %d, want %d", arrived, plan.TotalBytes)
	}
	if plan.Metadata <= 0 {
		t.Fatal("metadata cost should be positive")
	}
}

// TestAggPlanDrainsThroughDegradedPset is the bridge-failover acceptance
// test: after a physical bridge-node failure plus ionet failover, the
// Algorithm 2 aggregation still delivers every byte of the burst through
// the pset's surviving bridge.
func TestAggPlanDrainsThroughDegradedPset(t *testing.T) {
	r := newAggRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	dead := r.ios.Pset(0).Bridges[0]
	r.net.FailNode(dead)
	if wasBridge, err := r.ios.HandleNodeFailure(dead); !wasBridge || err != nil {
		t.Fatalf("failover = (%v, %v)", wasBridge, err)
	}
	a, _ := NewAggPlanner(r.ios, r.job, r.p, DefaultAggConfig())
	e := r.engine(t)
	// Zero out data held by ranks on the dead node; its memory is gone.
	data := workload.Uniform(r.job.NumRanks(), 1<<20, 3)
	for rk := 0; rk < r.job.NumRanks(); rk++ {
		if r.job.NodeOf(rk) == dead {
			data[rk] = 0
		}
	}
	plan, err := a.Plan(e, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var arrived int64
	for _, id := range plan.Final {
		arrived += e.Result(id).Bytes
	}
	if arrived != plan.TotalBytes {
		t.Fatalf("degraded pset delivered %d of %d", arrived, plan.TotalBytes)
	}
	done, aborted := e.Outcomes()
	if aborted != 0 {
		t.Fatalf("%d flows aborted in a failed-over plan (%d done)", aborted, done)
	}
	surviving := r.ios.Pset(0).Uplink(1)
	if e.LinkBytes()[surviving] == 0 {
		t.Fatal("no bytes drained over the surviving uplink")
	}
}

func TestAggPlanEmptyBurst(t *testing.T) {
	r := newAggRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	a, _ := NewAggPlanner(r.ios, r.job, r.p, DefaultAggConfig())
	e := r.engine(t)
	plan, err := a.Plan(e, make([]int64, r.job.NumRanks()))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Final) != 0 || plan.TotalBytes != 0 {
		t.Fatalf("empty burst produced flows")
	}
}

func TestAggPlanRejectsWrongLengthAndNegative(t *testing.T) {
	r := newAggRig(t, torus.Shape{2, 2, 4, 4, 2}, 16)
	a, _ := NewAggPlanner(r.ios, r.job, r.p, DefaultAggConfig())
	e := r.engine(t)
	if _, err := a.Plan(e, make([]int64, 5)); err == nil {
		t.Fatal("wrong-length data accepted")
	}
	bad := make([]int64, r.job.NumRanks())
	bad[3] = -1
	if _, err := a.Plan(e, bad); err == nil {
		t.Fatal("negative data accepted")
	}
}

// The heart of Fig. 10: ION load balance. With a concentrated burst
// (only one pset's ranks hold data), the topology-aware aggregation must
// still spread bytes evenly over all ION uplinks.
func TestAggBalancesIONLoadForConcentratedBurst(t *testing.T) {
	r := newAggRig(t, torus.Shape{4, 4, 4, 16, 2}, 16)
	e := r.engine(t)
	a, err := NewAggPlanner(r.ios, r.job, r.p, DefaultAggConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Data only on the first 128 nodes (= roughly one pset's worth).
	data := make([]int64, r.job.NumRanks())
	for rk := 0; rk < 128*16; rk++ {
		data[rk] = 4 << 20
	}
	plan, err := a.Plan(e, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Collect bytes per ION uplink.
	lb := e.LinkBytes()
	var loads []float64
	for pi := 0; pi < r.ios.NumPsets(); pi++ {
		for bi := 0; bi < 2; bi++ {
			loads = append(loads, lb[r.ios.Pset(pi).Uplink(bi)])
		}
	}
	min, max := loads[0], loads[0]
	var sum float64
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		sum += l
	}
	if sum < float64(plan.TotalBytes)*0.99 {
		t.Fatalf("uplinks carried %g of %d bytes", sum, plan.TotalBytes)
	}
	if min < 0.5*max {
		t.Fatalf("ION uplink imbalance: min %g, max %g", min, max)
	}
}
