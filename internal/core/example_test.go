package core_test

import (
	"fmt"

	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

// A large message between far corners of a 128-node partition is split
// over four link-disjoint proxy paths (the paper's Fig. 5 setup).
func ExamplePairPlanner_PlanPair() {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	params := netsim.DefaultParams()
	cfg := core.DefaultProxyConfig()
	cfg.MaxProxies = 4

	planner, _ := core.NewPairPlanner(tor, cfg)
	engine, _ := netsim.NewEngine(netsim.NewNetwork(tor, params.LinkBandwidth), params)

	plan, _ := planner.PlanPair(engine, 0, torus.NodeID(tor.Size()-1), 64<<20)
	makespan, _ := engine.Run()

	fmt.Printf("%v via %d proxies, %.2f GB/s\n",
		plan.Mode, len(plan.Proxies), netsim.Throughput(64<<20, makespan)/1e9)
	// Output: proxied via 4 proxies, 3.29 GB/s
}

// The Eq. 1-5 cost model predicts the paper's 256 KB crossover.
func ExampleCostModel_Threshold() {
	m, _ := core.NewCostModel(netsim.DefaultParams())
	th := m.Threshold(4, 5, 1, 4)
	fmt.Printf("within a doubling of 256KB: %v\n", th >= 128<<10 && th <= 512<<10)
	// Output: within a doubling of 256KB: true
}
