package core

import (
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

// fig6Geometry returns the paper's Fig. 6 setup: a 2K-node 4x4x4x16x2
// torus with two 256-node groups at opposite ends — slabs whose pairwise
// routes run on per-pair-private rings, which is what the paper's clean
// ~1.6 GB/s direct throughput implies about their mapping.
func fig6Geometry(t *testing.T) (*torus.Torus, torus.Box, torus.Box) {
	t.Helper()
	tor := torus.MustNew(torus.Shape{4, 4, 4, 16, 2})
	s := torus.MustNewBox(tor, torus.Coord{0, 0, 0, 0, 0}, torus.Shape{1, 4, 4, 16, 1})
	d := torus.MustNewBox(tor, torus.Coord{2, 0, 0, 0, 1}, torus.Shape{1, 4, 4, 16, 1})
	return tor, s, d
}

// fig7Geometry returns the paper's Fig. 7 setup: a 512-node 4x4x4x4x2
// torus with two 32-node groups.
func fig7Geometry(t *testing.T) (*torus.Torus, torus.Box, torus.Box) {
	t.Helper()
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	s := torus.MustNewBox(tor, torus.Coord{0, 0, 0, 0, 0}, torus.Shape{1, 1, 4, 4, 2})
	d := torus.MustNewBox(tor, torus.Coord{3, 3, 0, 0, 0}, torus.Shape{1, 1, 4, 4, 2})
	return tor, s, d
}

func TestSelectGroupDirectionsFig6(t *testing.T) {
	tor, s, d := fig6Geometry(t)
	groups := SelectGroupDirections(tor, s, d, 0)
	// The paper found 3 proxy groups on this geometry.
	if len(groups) != 3 {
		t.Fatalf("found %d proxy groups, paper found 3: %v", len(groups), groups)
	}
	for _, g := range groups {
		if g.Multiplier != 1 {
			t.Fatalf("auto mode returned a far translation %v", g)
		}
	}
}

func TestSelectGroupDirectionsFig7(t *testing.T) {
	tor, s, d := fig7Geometry(t)
	groups := SelectGroupDirections(tor, s, d, 0)
	// The paper set up at most 4 groups (A+, A-, B+, B-).
	if len(groups) != 4 {
		t.Fatalf("found %d proxy groups, paper found 4: %v", len(groups), groups)
	}
	for _, g := range groups {
		if g.Dim != 0 && g.Dim != 1 {
			t.Fatalf("group %v not along A or B", g)
		}
	}
}

func TestSelectGroupDirectionsForcedGoesFarther(t *testing.T) {
	tor, s, d := fig7Geometry(t)
	groups := SelectGroupDirections(tor, s, d, 5)
	if len(groups) != 5 {
		t.Fatalf("forced 5 returned %d", len(groups))
	}
	if groups[4].Multiplier < 2 {
		t.Fatalf("5th group should be a far translation, got %v", groups[4])
	}
}

func TestGroupRegionsDisjoint(t *testing.T) {
	tor, s, d := fig7Geometry(t)
	groups := SelectGroupDirections(tor, s, d, 0)
	inS := map[torus.NodeID]bool{}
	for _, n := range s.Nodes(tor) {
		inS[n] = true
	}
	inD := map[torus.NodeID]bool{}
	for _, n := range d.Nodes(tor) {
		inD[n] = true
	}
	seen := map[torus.NodeID]bool{}
	for _, g := range groups {
		region := translateNodes(tor, s.Nodes(tor), g.Dim, int(g.Dir)*g.Multiplier*s.Extent[g.Dim])
		for _, n := range region {
			if inS[n] || inD[n] || seen[n] {
				t.Fatalf("group %v region overlaps S, T, or another group at node %d", g, n)
			}
			seen[n] = true
		}
	}
}

func runGroupTransfer(t *testing.T, tor *torus.Torus, s, d torus.Box, bytesPerPair int64, force int) (float64, GroupPlan) {
	t.Helper()
	cfg := DefaultProxyConfig()
	cfg.Threshold = 512 << 10 // the paper's group threshold
	gp, err := NewGroupPlanner(tor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gp.ForceGroups = force
	p := netsim.DefaultParams()
	e, err := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gp.Plan(e, s, d, bytesPerPair)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Per-pair average throughput, as the paper reports.
	return netsim.Throughput(bytesPerPair, mk), plan
}

func TestGroupTransferSmallGoesDirect(t *testing.T) {
	tor, s, d := fig7Geometry(t)
	_, plan := runGroupTransfer(t, tor, s, d, 128<<10, 0)
	if plan.Mode != Direct {
		t.Fatalf("128KB pairs planned as %v", plan.Mode)
	}
	if plan.DirectPairs != plan.PairCount {
		t.Fatalf("direct pairs %d of %d", plan.DirectPairs, plan.PairCount)
	}
}

func TestGroupTransferLargeUsesProxies(t *testing.T) {
	tor, s, d := fig6Geometry(t)
	th, plan := runGroupTransfer(t, tor, s, d, 16<<20, 0)
	if plan.Mode != Proxied {
		t.Fatalf("16MB pairs planned as %v", plan.Mode)
	}
	direct, _ := runGroupTransfer(t, tor, s, d, 16<<20, -0) // placeholder; direct below
	_ = direct
	// Compare against all-direct via a tiny config trick: force 0 means
	// auto; emulate direct with a huge threshold.
	cfg := DefaultProxyConfig()
	cfg.Threshold = 1 << 62
	gp, _ := NewGroupPlanner(tor, cfg)
	p := netsim.DefaultParams()
	e, _ := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if _, err := gp.Plan(e, s, d, 16<<20); err != nil {
		t.Fatal(err)
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	directTh := netsim.Throughput(16<<20, mk)
	gain := th / directTh
	// 3 proxy groups -> the paper reports ~1.5x.
	if gain < 1.25 || gain > 1.8 {
		t.Fatalf("group proxy gain %.2fx, want ~1.5x for 3 groups", gain)
	}
}

// The Fig. 7 ordering: 2 groups ~ no improvement, 3 better, 4 best,
// 5 degrades below 4.
func TestFig7ProxyCountOrdering(t *testing.T) {
	tor, s, d := fig7Geometry(t)
	const bytes = 32 << 20
	th := map[int]float64{}
	for _, k := range []int{2, 3, 4, 5} {
		th[k], _ = runGroupTransfer(t, tor, s, d, bytes, k)
	}
	if th[3] <= th[2] {
		t.Fatalf("3 groups (%.3g) not better than 2 (%.3g)", th[3], th[2])
	}
	if th[4] <= th[3] {
		t.Fatalf("4 groups (%.3g) not better than 3 (%.3g)", th[4], th[3])
	}
	if th[5] >= th[4] {
		t.Fatalf("5 groups (%.3g) should degrade below 4 (%.3g)", th[5], th[4])
	}
}

func TestGroupPlannerSizeMismatch(t *testing.T) {
	tor, s, _ := fig7Geometry(t)
	small := torus.MustNewBox(tor, torus.Coord{3, 3, 0, 0, 0}, torus.Shape{1, 1, 1, 1, 1})
	gp, _ := NewGroupPlanner(tor, DefaultProxyConfig())
	p := netsim.DefaultParams()
	e, _ := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if _, err := gp.Plan(e, s, small, 1<<20); err == nil {
		t.Fatal("group size mismatch accepted")
	}
}

func TestGroupTransferDeliversAllBytes(t *testing.T) {
	tor, s, d := fig7Geometry(t)
	cfg := DefaultProxyConfig()
	gp, _ := NewGroupPlanner(tor, cfg)
	p := netsim.DefaultParams()
	e, _ := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	const per = 4 << 20
	plan, err := gp.Plan(e, s, d, per)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var arrived int64
	for _, id := range plan.Final {
		arrived += e.Result(id).Bytes
	}
	if want := int64(per) * int64(s.Size()); arrived != want {
		t.Fatalf("arrived %d bytes, want %d", arrived, want)
	}
}

// The future-work pipelining applied to group coupling: chunked
// store-and-forward lifts the k/2 factor toward k.
func TestGroupPipelineBeatsPlain(t *testing.T) {
	tor, s, d := fig6Geometry(t)
	const per = 32 << 20
	run := func(pipeline bool) float64 {
		cfg := DefaultProxyConfig()
		cfg.Threshold = 0
		cfg.MinProxies = 1
		cfg.Pipeline = pipeline
		cfg.ChunkBytes = 1 << 20
		gp, err := NewGroupPlanner(tor, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := netsim.DefaultParams()
		e, err := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := gp.Plan(e, s, d, per)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Mode != Proxied {
			t.Fatalf("mode %v", plan.Mode)
		}
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		var arrived int64
		for _, id := range plan.Final {
			arrived += e.Result(id).Bytes
		}
		if want := int64(per) * int64(s.Size()); arrived != want {
			t.Fatalf("arrived %d, want %d", arrived, want)
		}
		return netsim.Throughput(per, mk)
	}
	plain := run(false)
	piped := run(true)
	if piped <= plain*1.15 {
		t.Fatalf("group pipelining gain too small: plain %.3g, piped %.3g", plain, piped)
	}
}
