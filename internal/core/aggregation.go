package core

import (
	"fmt"

	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/routing"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// AggConfig tunes Algorithm 2.
type AggConfig struct {
	// MinBytesPerAggregator is S, the smallest amount of data worth
	// dedicating one aggregator to; the aggregator count per I/O node is
	// scaled as ceil(T / S / n_io).
	MinBytesPerAggregator int64

	// MaxAggregatorsPerPset caps the per-pset aggregator count (the
	// paper's candidate list P = {1, 2, 4, ..., 128}).
	MaxAggregatorsPerPset int
}

// DefaultAggConfig returns the operating point used in the experiments.
func DefaultAggConfig() AggConfig {
	return AggConfig{
		MinBytesPerAggregator: 64 << 20,
		MaxAggregatorsPerPset: 128,
	}
}

// Aggregator is one selected intermediate node for I/O aggregation.
type Aggregator struct {
	Node torus.NodeID
	// LeadRank is the world rank elected for the block (rank 0 of the
	// block's subcommunicator).
	LeadRank int
	// Pset is the pset the aggregator belongs to; its data leaves
	// through that pset's I/O node.
	Pset int
	// Bridge is the index of the pset bridge node this aggregator
	// writes through; aggregators alternate bridges so both 11th links
	// of a pset carry load.
	Bridge int
}

// AggPlanner implements Algorithm 2. The Init part — querying pset
// geometry and precomputing the candidate aggregator sets for every
// feasible per-pset count — runs once in NewAggPlanner; each write burst
// then only needs the total data size (one allreduce) before flows can be
// submitted.
type AggPlanner struct {
	ios  *ionet.System
	job  *mpisim.Job
	cfg  AggConfig
	coll *mpisim.CollectiveModel

	// feasible lists the per-pset aggregator counts with an exact 5-D
	// block decomposition, ascending.
	feasible []int
	// candidates[count][pset] lists the aggregator nodes (block lead
	// nodes) for that per-pset count.
	candidates map[int][][]torus.NodeID

	// rec, when set, accumulates per-aggregator and per-bridge byte
	// counters into its registry as bursts are planned. nil = off.
	rec *obs.Recorder
}

// SetRecorder attaches an observability recorder: every planned burst
// accumulates ionet/agg/node<N> and ionet/bridge/pset<P>/b<B> byte
// counters into its registry. Pass nil to detach.
func (a *AggPlanner) SetRecorder(rec *obs.Recorder) { a.rec = rec }

// NewAggPlanner runs the Init phase of Algorithm 2.
func NewAggPlanner(ios *ionet.System, job *mpisim.Job, params netsim.Params, cfg AggConfig) (*AggPlanner, error) {
	if cfg.MinBytesPerAggregator < 1 {
		return nil, fmt.Errorf("core: MinBytesPerAggregator must be positive")
	}
	if cfg.MaxAggregatorsPerPset < 1 {
		return nil, fmt.Errorf("core: MaxAggregatorsPerPset must be positive")
	}
	a := &AggPlanner{
		ios:        ios,
		job:        job,
		cfg:        cfg,
		coll:       mpisim.NewCollectiveModel(job, params),
		candidates: make(map[int][][]torus.NodeID),
	}
	tor := job.Torus()
	max := cfg.MaxAggregatorsPerPset
	if ps := ios.Pset(0).Box.Size(); max > ps {
		max = ps
	}
	a.feasible = ios.Pset(0).Box.FeasibleBlockCounts(max)
	if len(a.feasible) == 0 {
		return nil, fmt.Errorf("core: pset %v admits no block decomposition", ios.Pset(0).Box)
	}
	for _, count := range a.feasible {
		perPset := make([][]torus.NodeID, ios.NumPsets())
		for pi := 0; pi < ios.NumPsets(); pi++ {
			blocks, err := ios.Pset(pi).Box.Blocks(count)
			if err != nil {
				return nil, fmt.Errorf("core: pset %d: %w", pi, err)
			}
			nodes := make([]torus.NodeID, len(blocks))
			for bi, blk := range blocks {
				nodes[bi] = tor.ID(blk.Corner())
			}
			perPset[pi] = nodes
		}
		a.candidates[count] = perPset
	}
	return a, nil
}

// FeasibleCounts returns the per-pset aggregator counts the planner can
// realize, ascending.
func (a *AggPlanner) FeasibleCounts() []int {
	return append([]int(nil), a.feasible...)
}

// AggregatorsFor returns the global aggregator list for a given total
// burst size: per-pset count ceil(T/S)/n_io rounded up to the next
// feasible count, every pset contributing that many block-lead nodes,
// alternating across the pset's bridge nodes.
func (a *AggPlanner) AggregatorsFor(totalBytes int64) (perPset int, aggs []Aggregator) {
	nio := int64(a.ios.NumIONodes())
	S := a.cfg.MinBytesPerAggregator
	need := (totalBytes + S*nio - 1) / (S * nio) // ceil(T / S / n_io)
	if need < 1 {
		need = 1
	}
	perPset = a.feasible[len(a.feasible)-1]
	for _, c := range a.feasible {
		if int64(c) >= need {
			perPset = c
			break
		}
	}
	bridges := a.ios.Config().BridgesPerPset
	perPsetNodes := a.candidates[perPset]
	// Interleave across psets so that ANY prefix of the list — which is
	// all a burst with few senders uses under round-robin assignment —
	// already spreads evenly over the I/O nodes and their bridges.
	for bi := 0; bi < perPset; bi++ {
		for pi := 0; pi < a.ios.NumPsets(); pi++ {
			node := perPsetNodes[pi][bi]
			aggs = append(aggs, Aggregator{
				Node:     node,
				LeadRank: a.job.RanksOn(node)[0],
				Pset:     pi,
				Bridge:   bi % bridges,
			})
		}
	}
	return perPset, aggs
}

// AggPlan records what Plan decided and submitted.
type AggPlan struct {
	// TotalBytes is the burst size T.
	TotalBytes int64
	// AggPerPset is the selected per-pset aggregator count.
	AggPerPset int
	// NumAggregators is the global aggregator count.
	NumAggregators int
	// Senders counts the nodes that had data to write.
	Senders int
	// Metadata is the priced cost of the burst's collectives (allreduce
	// of T, exscan for the round-robin index, bcast of the selection);
	// report it on top of the flow makespan.
	Metadata sim.Duration
	// Final holds the flows that land data on the I/O nodes.
	Final []netsim.FlowID
}

// Plan runs the Redistribute-data part of Algorithm 2 for one write
// burst destined for the paper's /dev/null sink (the path ends at the
// I/O node). data[r] is the number of bytes world rank r must write.
func (a *AggPlanner) Plan(e *netsim.Engine, data []int64) (AggPlan, error) {
	return a.PlanWithSink(e, data, ionet.DevNull{S: a.ios, ForwardDelay: e.Params().ProxyForwardOverhead})
}

// PlanWithSink runs the Redistribute-data part of Algorithm 2 with an
// explicit write sink (e.g. the GPFS storage tier). Ranks on the same
// node are coalesced into one message (the node is the network
// endpoint). Data-holding nodes are assigned to aggregators round-robin —
// realized on the machine by an exscan over the has-data indicator, which
// is priced into Metadata — so every I/O node receives an approximately
// equal share of the burst regardless of where the data sits.
func (a *AggPlanner) PlanWithSink(e *netsim.Engine, data []int64, sink ionet.Sink) (AggPlan, error) {
	if len(data) != a.job.NumRanks() {
		return AggPlan{}, fmt.Errorf("core: data for %d ranks, job has %d", len(data), a.job.NumRanks())
	}
	perNode, total, senders, err := coalescePerNode(a.job, data)
	if err != nil {
		return AggPlan{}, err
	}
	plan := AggPlan{TotalBytes: total, Senders: senders}
	world := a.job.World()
	plan.Metadata = a.coll.AllreduceTime(world, 8) + // total size
		a.coll.AllreduceTime(world, 8) + // exscan of has-data indicator
		a.coll.BcastTime(world, 16) // selected per-pset count
	if total == 0 {
		return plan, nil
	}
	perPset, aggs := a.AggregatorsFor(total)
	// Degraded-pset operation: drop aggregators sitting on failed nodes
	// (their flows could never land) and route gather legs around failed
	// links below.
	net := e.Network()
	if net.HasFailures() {
		live := aggs[:0]
		for _, ag := range aggs {
			if !net.NodeFailed(ag.Node) {
				live = append(live, ag)
			}
		}
		if len(live) == 0 {
			return plan, fmt.Errorf("core: every selected aggregator is on a failed node")
		}
		aggs = live
	}
	plan.AggPerPset = perPset
	plan.NumAggregators = len(aggs)

	// Rank-order file offsets per node.
	offset := make([]int64, len(perNode))
	var running int64
	for n, b := range perNode {
		offset[n] = running
		running += b
	}

	next := 0
	for node, bytes := range perNode {
		if bytes == 0 {
			continue
		}
		agg := aggs[next%len(aggs)]
		next++
		if a.rec != nil {
			reg := a.rec.Registry()
			reg.Counter(fmt.Sprintf("ionet/agg/node%d", agg.Node)).Add(bytes)
			reg.Counter(fmt.Sprintf("ionet/bridge/pset%d/b%d", agg.Pset, agg.Bridge)).Add(bytes)
		}
		src := torus.NodeID(node)
		gather := netsim.FlowSpec{Src: src, Dst: agg.Node, Bytes: bytes,
			Label: fmt.Sprintf("n%d->agg%d", node, agg.Node)}
		if net.HasFailures() && src != agg.Node {
			// Prefer a fault-avoiding gather route; fall back to the
			// default and let the engine's fail-stop check flag the gap.
			if r, rerr := routing.RouteAvoiding(a.job.Torus(), src, agg.Node, net.FailedFunc()); rerr == nil {
				gather.Links = r.Links
			}
		}
		l1 := e.Submit(gather)
		fabric, conts := sink.WriteFlows(agg.Node, agg.Pset, agg.Bridge, offset[node], bytes)
		fabric.DependsOn = []netsim.FlowID{l1}
		fabric.Label = fmt.Sprintf("agg%d->ion%d", agg.Node, agg.Pset)
		fid := e.Submit(fabric)
		if len(conts) == 0 {
			plan.Final = append(plan.Final, fid)
			continue
		}
		for ci, cont := range conts {
			cont.DependsOn = []netsim.FlowID{fid}
			cont.Label = fmt.Sprintf("ion%d->sink/%d", agg.Pset, ci)
			plan.Final = append(plan.Final, e.Submit(cont))
		}
	}
	return plan, nil
}

// coalescePerNode sums per-rank data into per-node messages.
func coalescePerNode(job *mpisim.Job, data []int64) (perNode []int64, total int64, senders int, err error) {
	perNode = make([]int64, job.Torus().Size())
	for r, d := range data {
		if d < 0 {
			return nil, 0, 0, fmt.Errorf("core: rank %d has negative data %d", r, d)
		}
		perNode[job.NodeOf(r)] += d
		total += d
	}
	for _, b := range perNode {
		if b > 0 {
			senders++
		}
	}
	return perNode, total, senders, nil
}
