package core

import (
	"fmt"

	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

// ProxyConfig tunes Algorithm 1.
type ProxyConfig struct {
	// MinProxies is the smallest number of link-disjoint proxy paths
	// worth using; below it the transfer goes direct. The paper's cost
	// model (Eq. 5) shows the gain is k/2, so the default is 3.
	MinProxies int

	// MaxProxies caps the number of proxies; at most 2L directions exist
	// on an L-dimensional torus. Zero means 2L.
	MaxProxies int

	// Threshold is the message size (bytes) below which direct transfer
	// wins: splitting small messages multiplies the fixed per-message
	// injection and reception costs. Calibrated to the paper's measured
	// 256 KB crossover on the 128-node geometry.
	Threshold int64

	// Offset is the distance (hops) from the source at which proxies
	// are placed along each candidate direction.
	Offset int

	// Pipeline enables the paper's future-work extension: each piece is
	// segmented into chunks so the proxy can forward chunk c while chunk
	// c+1 is still inbound, cutting the store-and-forward factor below 2
	// and making even 2 proxies profitable.
	Pipeline bool

	// ChunkBytes is the pipeline segment size (used when Pipeline is
	// true).
	ChunkBytes int64

	// AutoThreshold derives the direct/proxy threshold from the Eq. 1-5
	// cost model (per pair, using the pair's hop counts) instead of the
	// fixed Threshold value — the paper's future-work analytical model
	// put to work.
	AutoThreshold bool
}

// DefaultProxyConfig returns the paper's operating point.
func DefaultProxyConfig() ProxyConfig {
	return ProxyConfig{
		MinProxies: 3,
		MaxProxies: 0, // 2L
		Threshold:  256 << 10,
		Offset:     1,
		Pipeline:   false,
		ChunkBytes: 1 << 20,
	}
}

func (c ProxyConfig) validate(dims int) error {
	if c.MinProxies < 1 {
		return fmt.Errorf("core: MinProxies %d must be >= 1", c.MinProxies)
	}
	if c.MaxProxies < 0 || c.MaxProxies > 2*dims {
		return fmt.Errorf("core: MaxProxies %d outside [0,%d]", c.MaxProxies, 2*dims)
	}
	if c.Offset < 1 {
		return fmt.Errorf("core: Offset %d must be >= 1", c.Offset)
	}
	if c.Threshold < 0 {
		return fmt.Errorf("core: negative Threshold")
	}
	if c.Pipeline && c.ChunkBytes < 1 {
		return fmt.Errorf("core: Pipeline requires positive ChunkBytes")
	}
	return nil
}

func (c ProxyConfig) maxProxies(dims int) int {
	if c.MaxProxies == 0 {
		return 2 * dims
	}
	return c.MaxProxies
}

// ProxyRoute is one accepted proxy: the intermediate node plus the two
// link-disjoint legs.
type ProxyRoute struct {
	Proxy torus.NodeID
	// Dim and Dir record the candidate direction the proxy was found on.
	Dim  int
	Dir  torus.Direction
	Leg1 routing.Route // source -> proxy
	Leg2 routing.Route // proxy -> destination
}

// TransferMode says how a planned transfer moves.
type TransferMode int

const (
	// Direct means the default single deterministic path.
	Direct TransferMode = iota
	// Proxied means multipath via intermediate nodes.
	Proxied
)

func (m TransferMode) String() string {
	if m == Direct {
		return "direct"
	}
	return "proxied"
}

// PairPlanner plans point-to-point transfers (the paper's first
// microbenchmark): it selects proxies for a (src, dst) pair and emits the
// two-phase flow DAG.
type PairPlanner struct {
	tor    *torus.Torus
	cfg    ProxyConfig
	faults func(int) bool
}

// NewPairPlanner validates the configuration for the torus.
func NewPairPlanner(tor *torus.Torus, cfg ProxyConfig) (*PairPlanner, error) {
	if err := cfg.validate(tor.Dims()); err != nil {
		return nil, err
	}
	return &PairPlanner{tor: tor, cfg: cfg}, nil
}

// Config returns the planner's configuration.
func (p *PairPlanner) Config() ProxyConfig { return p.cfg }

// SetFaults gives the planner a failed-link predicate; selected proxy
// legs and direct fallback routes avoid those links. Pass the network's
// FailedFunc after injecting failures.
func (p *PairPlanner) SetFaults(failed func(int) bool) { p.faults = failed }

// SelectProxies runs the Find-Proxies part of Algorithm 1 for one pair:
// it checks the 2L candidates along the + and - of each dimension
// (longest dimensions first, matching where the most routing freedom is)
// and accepts a candidate only when a pair of legs can be routed disjoint
// from every already-accepted leg. The returned set may be smaller than
// MinProxies; the caller decides whether to fall back to direct transfer.
func (p *PairPlanner) SelectProxies(src, dst torus.NodeID) []ProxyRoute {
	return selectProxiesAvoiding(p.tor, src, dst, p.cfg, nil, p.faults)
}

// selectProxiesAvoiding is the shared candidate search. extraBusy links
// (if any) are treated as already in use — group planning passes the
// routes of previously planned pairs' first hops when needed.
func selectProxiesAvoiding(tor *torus.Torus, src, dst torus.NodeID, cfg ProxyConfig, extraBusy map[int]struct{}, faults func(int) bool) []ProxyRoute {
	if src == dst {
		return nil
	}
	busy := make(map[int]struct{}, 64)
	for l := range extraBusy {
		busy[l] = struct{}{}
	}
	var accepted []ProxyRoute
	usedProxies := map[torus.NodeID]struct{}{src: {}, dst: {}}
	max := cfg.maxProxies(tor.Dims())

	// Enumerate the 2L candidates, then process the most constrained
	// first: a proxy whose route to the destination moves in few
	// dimensions has few possible entry links, so it must claim them
	// before a flexible candidate does. This is the role of the paper's
	// placement offsets: making the k incoming directions distinct.
	type candidate struct {
		proxy torus.NodeID
		dim   int
		dir   torus.Direction
		disp  int // dimensions the proxy differs from dst in
	}
	var cands []candidate
	srcCoord := tor.Coord(src)
	for _, dim := range tor.DimsByExtentDesc() {
		for _, dir := range []torus.Direction{torus.Plus, torus.Minus} {
			c := srcCoord.Clone()
			c[dim] = tor.Wrap(dim, c[dim]+int(dir)*cfg.Offset)
			proxy := tor.ID(c)
			if _, taken := usedProxies[proxy]; taken {
				continue
			}
			usedProxies[proxy] = struct{}{}
			cands = append(cands, candidate{proxy, dim, dir, displacementDims(tor, proxy, dst)})
		}
	}
	sortStableByDisp := func() {
		// Insertion sort (tiny slice), stable on enumeration order.
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && cands[j].disp < cands[j-1].disp; j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
	}
	sortStableByDisp()
	for _, cand := range cands {
		if len(accepted) >= max {
			break
		}
		leg1 := routing.DeterministicRoute(tor, src, cand.proxy)
		if anyBusy(busy, leg1.Links) || anyFailed(faults, leg1.Links) {
			continue
		}
		leg2, ok := disjointRoute(tor, cand.proxy, dst, busy, faults, leg1.Links)
		if !ok {
			continue
		}
		markBusy(busy, leg1.Links)
		markBusy(busy, leg2.Links)
		accepted = append(accepted, ProxyRoute{Proxy: cand.proxy, Dim: cand.dim, Dir: cand.dir, Leg1: leg1, Leg2: leg2})
	}
	return accepted
}

// displacementDims counts the dimensions in which two nodes differ — the
// number of routing degrees of freedom between them.
func displacementDims(tor *torus.Torus, a, b torus.NodeID) int {
	ca, cb := tor.Coord(a), tor.Coord(b)
	n := 0
	for i := range ca {
		if ca[i] != cb[i] {
			n++
		}
	}
	return n
}

func anyBusy(busy map[int]struct{}, links []int) bool {
	for _, l := range links {
		if _, ok := busy[l]; ok {
			return true
		}
	}
	return false
}

func anyFailed(faults func(int) bool, links []int) bool {
	if faults == nil {
		return false
	}
	for _, l := range links {
		if faults(l) {
			return true
		}
	}
	return false
}

func markBusy(busy map[int]struct{}, links []int) {
	for _, l := range links {
		busy[l] = struct{}{}
	}
}

// disjointRoute searches the dimension orders the BG/Q's zone routing can
// realize for a route from src to dst that avoids every busy link and
// every link in alsoAvoid. Orders are tried deterministically, default
// (longest-to-shortest) first. Routing stays minimal per dimension, so
// every returned route has minimal hop count; only the traversal order —
// and hence the links — differs.
func disjointRoute(tor *torus.Torus, src, dst torus.NodeID, busy map[int]struct{}, faults func(int) bool, alsoAvoid []int) (routing.Route, bool) {
	avoid := busy
	if len(alsoAvoid) > 0 {
		avoid = make(map[int]struct{}, len(busy)+len(alsoAvoid))
		for l := range busy {
			avoid[l] = struct{}{}
		}
		for _, l := range alsoAvoid {
			avoid[l] = struct{}{}
		}
	}
	var found routing.Route
	ok := false
	forEachPermutation(tor.DimsByExtentDesc(), func(order []int) bool {
		r := routing.RouteWithOrder(tor, src, dst, order)
		if !anyBusy(avoid, r.Links) && !anyFailed(faults, r.Links) {
			found, ok = r, true
			return false // stop
		}
		return true
	})
	return found, ok
}

// forEachPermutation calls fn with every permutation of base (starting
// with base itself) until fn returns false. base is not modified.
func forEachPermutation(base []int, fn func([]int) bool) {
	perm := append([]int(nil), base...)
	n := len(perm)
	// Heap's algorithm, iterative, but emit the identity first.
	if !fn(perm) {
		return
	}
	c := make([]int, n)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if !fn(perm) {
				return
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// PairPlan records what PlanPair decided and submitted.
type PairPlan struct {
	Mode    TransferMode
	Proxies []ProxyRoute
	Bytes   int64
	// Flows holds the submitted flow IDs (all legs).
	Flows []netsim.FlowID
	// Final holds the flows whose completion delivers the data at the
	// destination (the direct flow, or every second leg).
	Final []netsim.FlowID
}

// PlanPair runs the decision procedure of Algorithm 1 for one message and
// submits the flows: direct when the message is below the threshold or
// fewer than MinProxies disjoint paths exist, multipath otherwise.
func (p *PairPlanner) PlanPair(e *netsim.Engine, src, dst torus.NodeID, bytes int64) (PairPlan, error) {
	if bytes < 0 {
		return PairPlan{}, fmt.Errorf("core: negative transfer size %d", bytes)
	}
	direct := func() (PairPlan, error) {
		spec := netsim.FlowSpec{Src: src, Dst: dst, Bytes: bytes, Label: "direct"}
		if p.faults != nil && src != dst {
			r, err := routing.RouteAvoiding(p.tor, src, dst, p.faults)
			if err != nil {
				return PairPlan{}, fmt.Errorf("core: direct path cut by failures: %w", err)
			}
			spec.Links = r.Links
		}
		id := e.Submit(spec)
		return PairPlan{Mode: Direct, Bytes: bytes, Flows: []netsim.FlowID{id}, Final: []netsim.FlowID{id}}, nil
	}
	threshold := p.cfg.Threshold
	if p.cfg.AutoThreshold && src != dst {
		m, err := NewCostModel(e.Params())
		if err != nil {
			return PairPlan{}, err
		}
		hopsDirect := p.tor.HopDistance(src, dst)
		k := p.cfg.maxProxies(p.tor.Dims())
		threshold = m.Threshold(k, hopsDirect, p.cfg.Offset, hopsDirect)
		if threshold == 0 {
			threshold = 1 << 62 // the model says proxies never win here
		}
	}
	if bytes < threshold || src == dst {
		return direct()
	}
	proxies := p.SelectProxies(src, dst)
	if len(proxies) < p.cfg.MinProxies {
		return direct()
	}
	plan := PairPlan{Mode: Proxied, Proxies: proxies, Bytes: bytes}
	pieces := splitBytes(bytes, len(proxies))
	for i, pr := range proxies {
		flows, finals := p.submitLegs(e, pr, pieces[i], fmt.Sprintf("proxy%d", i))
		plan.Flows = append(plan.Flows, flows...)
		plan.Final = append(plan.Final, finals...)
	}
	return plan, nil
}

// submitLegs emits the flow DAG for one proxy piece: either one
// store-and-forward leg pair, or a pipelined chain of chunk leg pairs.
func (p *PairPlanner) submitLegs(e *netsim.Engine, pr ProxyRoute, bytes int64, label string) (flows, finals []netsim.FlowID) {
	return submitLegPair(e, p.cfg, pr, bytes, label)
}

// submitLegPair is the shared two-leg emission used by the pair and
// group planners.
func submitLegPair(e *netsim.Engine, cfg ProxyConfig, pr ProxyRoute, bytes int64, label string) (flows, finals []netsim.FlowID) {
	fwd := e.Params().ProxyForwardOverhead
	if !cfg.Pipeline || bytes <= cfg.ChunkBytes {
		l1 := e.Submit(netsim.FlowSpec{
			Src: pr.Leg1.Src, Dst: pr.Proxy, Bytes: bytes,
			Links: pr.Leg1.Links, Label: label + "/leg1",
		})
		l2 := e.Submit(netsim.FlowSpec{
			Src: pr.Proxy, Dst: pr.Leg2.Dst, Bytes: bytes,
			Links: pr.Leg2.Links, DependsOn: []netsim.FlowID{l1},
			ExtraDelay: fwd, Label: label + "/leg2",
		})
		return []netsim.FlowID{l1, l2}, []netsim.FlowID{l2}
	}
	// Pipelined: chunk the piece; chain first legs so the proxy receives
	// chunks in order, and forward each as soon as it lands.
	var prev netsim.FlowID = -1
	remaining := bytes
	chunkIdx := 0
	for remaining > 0 {
		sz := cfg.ChunkBytes
		if sz > remaining {
			sz = remaining
		}
		remaining -= sz
		var deps []netsim.FlowID
		if prev >= 0 {
			deps = []netsim.FlowID{prev}
		}
		l1 := e.Submit(netsim.FlowSpec{
			Src: pr.Leg1.Src, Dst: pr.Proxy, Bytes: sz,
			Links: pr.Leg1.Links, DependsOn: deps,
			Label: fmt.Sprintf("%s/chunk%d/leg1", label, chunkIdx),
		})
		l2 := e.Submit(netsim.FlowSpec{
			Src: pr.Proxy, Dst: pr.Leg2.Dst, Bytes: sz,
			Links: pr.Leg2.Links, DependsOn: []netsim.FlowID{l1},
			ExtraDelay: fwd, Label: fmt.Sprintf("%s/chunk%d/leg2", label, chunkIdx),
		})
		flows = append(flows, l1, l2)
		finals = append(finals, l2)
		prev = l1
		chunkIdx++
	}
	return flows, finals
}

// splitBytes divides bytes into n near-equal pieces (remainder spread over
// the first pieces).
func splitBytes(bytes int64, n int) []int64 {
	out := make([]int64, n)
	base := bytes / int64(n)
	rem := bytes - base*int64(n)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}
