// Package core implements the paper's two mechanisms for sparse data
// movement on the Blue Gene/Q:
//
//  1. Proxy-based multipath transfers (the paper's Algorithm 1): a large
//     message between two compute nodes — or between two groups of
//     compute nodes in a coupled multiphysics code — is split across up
//     to 2L intermediate compute nodes ("proxies") chosen so that the
//     two store-and-forward legs of each piece traverse link-disjoint
//     routes. Because the k pieces move concurrently and each piece
//     crosses the machine twice, the asymptotic gain is k/2, so at least
//     3 proxies are required and small messages (below a calibrated
//     threshold) go direct.
//
//  2. Topology-aware dynamic aggregation for I/O (the paper's
//     Algorithm 2): instead of the default MPI-IO aggregators, each pset
//     is divided into equal 5-D blocks; the lead rank of each block is an
//     aggregator, the number of blocks per pset is scaled to the total
//     burst size, and data-holding ranks are assigned to aggregators
//     round-robin so every I/O node receives an approximately equal
//     share of every sparse write burst.
//
// Both mechanisms emit netsim flow DAGs (dependent flows express the
// store-and-forward legs) and are compared against the default behaviours
// implemented in package collio (collective I/O baseline) and plain
// direct transfers.
package core
