package core

import (
	"errors"
	"strings"
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// The resilient transfer loop: detect mid-flight aborts, replan the lost
// bytes around the failure, degrade toward direct, and report it all.

func resilientRig(t *testing.T) (*torus.Torus, *netsim.Network, *netsim.Engine, *Transport) {
	t.Helper()
	tor := mira128()
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	e.BeginInteractive()
	tr, err := NewTransport(tor, p, DefaultProxyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tor, net, e, tr
}

func TestMoveResilientNoFailures(t *testing.T) {
	_, _, e, tr := resilientRig(t)
	tor := tr.tor
	const bytes = 64 << 20
	rep, err := tr.MoveResilient(e, 0, torus.NodeID(tor.Size()-1), bytes, DefaultRecoveryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Delivered != bytes {
		t.Fatalf("delivered %d of %d, complete=%v", rep.Delivered, bytes, rep.Complete)
	}
	if rep.Attempts != 1 || rep.Replans != 0 || rep.Degraded || rep.BytesRerouted != 0 {
		t.Fatalf("clean transfer reported attempts=%d replans=%d degraded=%v rerouted=%d",
			rep.Attempts, rep.Replans, rep.Degraded, rep.BytesRerouted)
	}
	if rep.FinalMode != Proxied {
		t.Fatalf("64 MB across the partition should go proxied, got %v", rep.FinalMode)
	}
	if rep.Makespan <= 0 {
		t.Fatal("no makespan reported")
	}
}

func TestMoveResilientRecoversFromMidTransferFailure(t *testing.T) {
	tor, _, e, tr := resilientRig(t)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	// Fail the first hop of the first selected proxy leg mid-transfer:
	// exactly one piece aborts, and recovery must reroute those bytes.
	proxies := selectProxiesAvoiding(tor, src, dst, tr.cfg, nil, nil)
	if len(proxies) == 0 {
		t.Fatal("no proxies on a healthy torus")
	}
	e.FailLinkAt(proxies[0].Leg1.Links[0], 5e-3)

	const bytes = 64 << 20
	rep, err := tr.MoveResilient(e, src, dst, bytes, DefaultRecoveryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Delivered != bytes {
		t.Fatalf("delivered %d of %d after recovery", rep.Delivered, bytes)
	}
	if rep.Replans == 0 || rep.BytesRerouted == 0 {
		t.Fatalf("failure was absorbed without a replan: %+v", rep)
	}
	if rep.BytesRerouted >= bytes {
		t.Fatalf("rerouted %d bytes; only the lost pieces should resubmit", rep.BytesRerouted)
	}
	// Detection is charged in simulated time: the makespan must exceed
	// the failure instant plus a detection window.
	if float64(rep.Makespan) <= 5e-3 {
		t.Fatalf("makespan %g predates the failure", float64(rep.Makespan))
	}
	done, aborted := e.Outcomes()
	if aborted == 0 {
		t.Fatal("no flow aborted despite a mid-transfer failure")
	}
	if done == 0 {
		t.Fatal("no flow completed")
	}
}

func TestMoveResilientDegradesToDirect(t *testing.T) {
	tor, _, e, tr := resilientRig(t)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	// Schedule failures on the first hop of every initially selected
	// proxy leg1, staggered so each wave loses a piece until the ladder
	// reaches direct (whose avoiding route skips the dead first hops).
	proxies := selectProxiesAvoiding(tor, src, dst, tr.cfg, nil, nil)
	if len(proxies) < tr.cfg.MinProxies {
		t.Fatalf("only %d proxies on a healthy torus", len(proxies))
	}
	for i, pr := range proxies {
		e.FailLinkAt(pr.Leg1.Links[0], sim.Time(1e-3+float64(i)*1e-3))
	}

	const bytes = 64 << 20
	rep, err := tr.MoveResilient(e, src, dst, bytes, DefaultRecoveryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("transfer incomplete: %+v", rep)
	}
	if !rep.Degraded {
		t.Fatalf("losing every proxy leg must degrade the ladder: %+v", rep)
	}
	if rep.Replans == 0 {
		t.Fatal("no replans recorded")
	}
}

func TestMoveResilientErrorsWhenCut(t *testing.T) {
	// 1-D ring, sever the source completely after the transfer starts:
	// recovery must give up with a clear error and report partial bytes.
	tor := torus.MustNew(torus.Shape{8})
	p := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, p.LinkBandwidth)
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	e.BeginInteractive()
	tr, err := NewTransport(tor, p, ProxyConfig{MinProxies: 1, MaxProxies: 2, Threshold: 1 << 30, Offset: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.FailLinkAt(tor.LinkID(0, 0, torus.Plus), 1e-3)
	e.FailLinkAt(tor.LinkID(0, 0, torus.Minus), 1e-3)
	rep, err := tr.MoveResilient(e, 0, 4, 64<<20, DefaultRecoveryConfig())
	if err == nil {
		t.Fatalf("severed source completed: %+v", rep)
	}
	if !strings.Contains(err.Error(), "cut off") {
		t.Fatalf("unexpected error: %v", err)
	}
	if rep.Complete || rep.Delivered != 0 {
		t.Fatalf("severed transfer reported delivery: %+v", rep)
	}
}

func TestMoveResilientRequiresInteractive(t *testing.T) {
	tor := mira128()
	p := netsim.DefaultParams()
	e, err := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTransport(tor, p, DefaultProxyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MoveResilient(e, 0, 1, 1<<20, DefaultRecoveryConfig()); err == nil {
		t.Fatal("batch-mode engine accepted")
	}
}

func TestMoveResilientDeterministic(t *testing.T) {
	run := func() TransferReport {
		tor, _, e, tr := resilientRig(t)
		src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
		proxies := selectProxiesAvoiding(tor, src, dst, tr.cfg, nil, nil)
		e.FailLinkAt(proxies[0].Leg1.Links[0], 5e-3)
		rep, err := tr.MoveResilient(e, src, dst, 64<<20, DefaultRecoveryConfig())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same campaign, different reports:\n%+v\n%+v", a, b)
	}
}

func TestMoveResilientProgressEvents(t *testing.T) {
	tor, _, e, tr := resilientRig(t)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	proxies := selectProxiesAvoiding(tor, src, dst, tr.cfg, nil, nil)
	e.FailLinkAt(proxies[0].Leg1.Links[0], 5e-3)

	var events []TransferEvent
	rc := DefaultRecoveryConfig()
	rc.OnEvent = func(ev TransferEvent) { events = append(events, ev) }

	const bytes = 64 << 20
	rep, err := tr.MoveResilient(e, src, dst, bytes, rc)
	if err != nil {
		t.Fatal(err)
	}

	var waves, waveDones, losses, replans, completes int
	var lostBytes int64
	last := sim.Time(-1)
	for _, ev := range events {
		if ev.At < last {
			t.Fatalf("event timeline not monotone: %v at %g after %g", ev.Kind, float64(ev.At), float64(last))
		}
		last = ev.At
		switch ev.Kind {
		case EventWave:
			if ev.Wave != waves {
				t.Fatalf("wave %d emitted out of order (expected %d)", ev.Wave, waves)
			}
			waves++
		case EventWaveDone:
			waveDones++
		case EventLoss:
			losses++
			lostBytes += ev.Bytes
		case EventReplan:
			replans++
			if ev.Replans != replans {
				t.Fatalf("replan event numbered %d, expected %d", ev.Replans, replans)
			}
		case EventComplete:
			completes++
			if ev.Bytes != bytes {
				t.Fatalf("complete event carries %d bytes, want %d", ev.Bytes, bytes)
			}
		}
	}
	if waves != rep.Attempts {
		t.Fatalf("%d wave events, report says %d attempts", waves, rep.Attempts)
	}
	if waveDones != rep.Attempts {
		t.Fatalf("%d wavedone events for %d attempts", waveDones, rep.Attempts)
	}
	if replans != rep.Replans {
		t.Fatalf("%d replan events, report says %d replans", replans, rep.Replans)
	}
	if lostBytes != rep.BytesRerouted {
		t.Fatalf("loss events total %d bytes, report rerouted %d", lostBytes, rep.BytesRerouted)
	}
	if completes != 1 {
		t.Fatalf("%d complete events", completes)
	}
	if events[len(events)-1].Kind != EventComplete {
		t.Fatalf("timeline does not end with complete: %v", events[len(events)-1].Kind)
	}
}

func TestMoveResilientInterjectCancel(t *testing.T) {
	tor, _, e, tr := resilientRig(t)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	// Cancel from the interject safe point once the first wave is in
	// flight: the transfer must stop with a clear error and report the
	// partial delivery honestly (nothing landed yet mid-wave).
	errCanceled := errors.New("client went away")
	sawWave := false
	rc := DefaultRecoveryConfig()
	rc.OnEvent = func(ev TransferEvent) {
		if ev.Kind == EventWave {
			sawWave = true
		}
	}
	rc.Interject = func(e *netsim.Engine) error {
		if sawWave {
			return errCanceled
		}
		return nil
	}
	rep, err := tr.MoveResilient(e, src, dst, 64<<20, rc)
	if err == nil {
		t.Fatalf("canceled transfer completed: %+v", rep)
	}
	if !strings.Contains(err.Error(), "transfer interrupted") {
		t.Fatalf("unexpected error: %v", err)
	}
	if rep.Complete {
		t.Fatalf("canceled transfer marked complete: %+v", rep)
	}
	if rep.Delivered != 0 {
		t.Fatalf("first-wave cancel delivered %d bytes", rep.Delivered)
	}
	if !sawWave {
		t.Fatal("cancel fired before any wave was released")
	}
}

func TestMoveResilientInterjectPushedFault(t *testing.T) {
	// Push the fault through the interject hook at a virtual instant
	// instead of scheduling it upfront: the outcome must be identical to
	// the scheduled campaign (the session layer depends on this to verify
	// streamed reports against direct replays).
	direct := func() TransferReport {
		tor, _, e, tr := resilientRig(t)
		src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
		proxies := selectProxiesAvoiding(tor, src, dst, tr.cfg, nil, nil)
		e.FailLinkAt(proxies[0].Leg1.Links[0], 5e-3)
		rep, err := tr.MoveResilient(e, src, dst, 64<<20, DefaultRecoveryConfig())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	pushed := func() TransferReport {
		tor, _, e, tr := resilientRig(t)
		src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
		proxies := selectProxiesAvoiding(tor, src, dst, tr.cfg, nil, nil)
		link := proxies[0].Leg1.Links[0]
		injected := false
		rc := DefaultRecoveryConfig()
		rc.Interject = func(e *netsim.Engine) error {
			// Inject as soon as the safe point passes the failure instant's
			// eve: FailLinkAt with a future time reproduces the schedule.
			if !injected {
				injected = true
				e.FailLinkAt(link, 5e-3)
			}
			return nil
		}
		rep, err := tr.MoveResilient(e, src, dst, 64<<20, rc)
		if err != nil {
			t.Fatal(err)
		}
		if !injected {
			t.Fatal("interject never ran")
		}
		return rep
	}

	a, b := direct(), pushed()
	if a != b {
		t.Fatalf("pushed fault diverges from scheduled campaign:\n%+v\n%+v", a, b)
	}
}
