package core

import (
	"testing"
	"testing/quick"

	"bgqflow/internal/netsim"
	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
)

func newModel(t *testing.T) *CostModel {
	t.Helper()
	m, err := NewCostModel(netsim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewCostModelValidates(t *testing.T) {
	p := netsim.DefaultParams()
	p.LinkBandwidth = 0
	if _, err := NewCostModel(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestDirectTimeMonotoneInSize(t *testing.T) {
	m := newModel(t)
	prev := m.DirectTime(0, 5)
	for _, d := range []int64{1 << 10, 1 << 15, 1 << 20, 1 << 25} {
		cur := m.DirectTime(d, 5)
		if cur <= prev {
			t.Fatalf("DirectTime not increasing at %d bytes", d)
		}
		prev = cur
	}
}

func TestGainApproachesKOver2(t *testing.T) {
	m := newModel(t)
	for _, k := range []int{3, 4, 6} {
		g := m.Gain(1<<33, k, 5, 1, 4) // 8 GB: asymptotic regime
		want := float64(k) / 2
		if g < want*0.95 || g > want*1.05 {
			t.Fatalf("asymptotic gain for k=%d is %.3f, want ~%.1f (Eq. 5)", k, g, want)
		}
	}
}

func TestGainSmallMessagesLose(t *testing.T) {
	m := newModel(t)
	if g := m.Gain(4<<10, 4, 5, 1, 4); g >= 1 {
		t.Fatalf("4KB gain %.2f, small messages must lose", g)
	}
}

func TestThresholdMatchesPaper(t *testing.T) {
	m := newModel(t)
	// The Fig. 5 geometry: direct 5 hops, leg1 1 hop, leg2 4 hops, k=4.
	th := m.Threshold(4, 5, 1, 4)
	if th < 128<<10 || th > 512<<10 {
		t.Fatalf("model threshold %d bytes, paper reports 256KB", th)
	}
}

func TestThresholdZeroForK2(t *testing.T) {
	m := newModel(t)
	if th := m.Threshold(2, 5, 1, 4); th != 0 {
		t.Fatalf("k=2 threshold %d, Eq. 5 says k=2 never wins", th)
	}
	if th := m.Threshold(1, 5, 1, 4); th != 0 {
		t.Fatal("k=1 should never win")
	}
}

// The model must agree with the simulator on the Fig. 5 geometry within
// a few percent for uncontended disjoint paths.
func TestModelMatchesSimulator(t *testing.T) {
	m := newModel(t)
	tor := mira128()
	cfg := DefaultProxyConfig()
	cfg.Threshold = 0
	cfg.MinProxies = 1
	cfg.MaxProxies = 4
	pl, _ := NewPairPlanner(tor, cfg)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	for _, d := range []int64{1 << 20, 16 << 20, 128 << 20} {
		// Simulate.
		e := newEngine(t, tor)
		if _, err := pl.PlanPair(e, src, dst, d); err != nil {
			t.Fatal(err)
		}
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Predict (legs in the Fig. 5 plan are 1 + 4 hops).
		pred := m.ProxyTime(d, 4, 1, 4)
		ratio := float64(mk) / float64(pred)
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("at %d bytes: simulated %.3gs, predicted %.3gs (ratio %.2f)",
				d, float64(mk), float64(pred), ratio)
		}
	}
}

func TestModelDirectMatchesSimulator(t *testing.T) {
	m := newModel(t)
	tor := mira128()
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	for _, d := range []int64{64 << 10, 4 << 20, 64 << 20} {
		e := newEngine(t, tor)
		e.Submit(netsim.FlowSpec{Src: src, Dst: dst, Bytes: d})
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		pred := m.DirectTime(d, tor.HopDistance(src, dst))
		ratio := float64(mk) / float64(pred)
		if ratio < 0.99 || ratio > 1.01 {
			t.Fatalf("direct at %d bytes: simulated %.4g, predicted %.4g", d, float64(mk), float64(pred))
		}
	}
}

func TestPipelinedBeatsPlainInModel(t *testing.T) {
	m := newModel(t)
	const d = 64 << 20
	plain := m.ProxyTime(d, 2, 1, 4)
	piped := m.PipelinedProxyTime(d, 2, 1<<20, 1, 4)
	if piped >= plain {
		t.Fatalf("pipelined %.3g should beat plain %.3g for k=2", float64(piped), float64(plain))
	}
	// And pipelined k=2 beats direct for large messages — the paper's
	// future-work claim that pipelining needs only 2 proxies.
	direct := m.DirectTime(d, 5)
	if piped >= direct {
		t.Fatalf("pipelined k=2 (%.3g) should beat direct (%.3g)", float64(piped), float64(direct))
	}
}

func TestBestProxyCount(t *testing.T) {
	m := newModel(t)
	if k := m.BestProxyCount(16<<10, 8, 5, 1, 4); k != 0 {
		t.Fatalf("16KB best k = %d, want 0 (direct)", k)
	}
	if k := m.BestProxyCount(64<<20, 8, 5, 1, 4); k != 8 {
		t.Fatalf("64MB best k = %d, want 8 (more disjoint paths always help large messages)", k)
	}
}

// Property: gain is monotone nondecreasing in message size for k >= 3.
func TestPropertyGainMonotone(t *testing.T) {
	m := newModel(t)
	f := func(aRaw, bRaw uint32, kRaw uint8) bool {
		k := int(kRaw%6) + 3
		a, b := int64(aRaw)+1, int64(bRaw)+1
		if a > b {
			a, b = b, a
		}
		return m.Gain(a, k, 5, 1, 4) <= m.Gain(b, k, 5, 1, 4)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoThresholdPlansLikeThePaper(t *testing.T) {
	tor := mira128()
	cfg := DefaultProxyConfig()
	cfg.AutoThreshold = true
	cfg.Threshold = 0 // ignored when auto
	cfg.MaxProxies = 4
	cfg.MinProxies = 1
	pl, err := NewPairPlanner(tor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	// Below the paper's 256KB crossover: the auto planner goes direct.
	e := newEngine(t, tor)
	plan, err := pl.PlanPair(e, src, dst, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != Direct {
		t.Fatalf("64KB planned %v under auto threshold", plan.Mode)
	}
	// Well above: proxied.
	e2 := newEngine(t, tor)
	plan2, err := pl.PlanPair(e2, src, dst, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Mode != Proxied {
		t.Fatalf("4MB planned %v under auto threshold", plan2.Mode)
	}
}

func TestAutoThresholdNeverProxiesWhenModelSaysNo(t *testing.T) {
	tor := mira128()
	cfg := DefaultProxyConfig()
	cfg.AutoThreshold = true
	cfg.MaxProxies = 2 // Eq. 5: k=2 cannot win without pipelining
	cfg.MinProxies = 1
	pl, _ := NewPairPlanner(tor, cfg)
	e := newEngine(t, tor)
	plan, err := pl.PlanPair(e, 0, torus.NodeID(tor.Size()-1), 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != Direct {
		t.Fatalf("k=2 auto planner chose %v", plan.Mode)
	}
}

// TestCostModelForUniformIsIdentity pins the BG/Q identity rule: the
// pair-specialized model built from the uniform cost model of the same
// params reproduces NewCostModel bit for bit, for any endpoint pair.
func TestCostModelForUniformIsIdentity(t *testing.T) {
	p := netsim.DefaultParams()
	plain := newModel(t)
	for _, pair := range [][2]torus.NodeID{{0, 97}, {3, 3}, {127, 0}} {
		m, err := NewCostModelFor(netsim.CostModelFromParams(p), pair[0], pair[1], p)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []int64{1, 4 << 10, 1 << 20, 64 << 20} {
			if a, b := m.DirectTime(d, 5), plain.DirectTime(d, 5); a != b {
				t.Fatalf("pair %v d=%d: DirectTime %v != %v", pair, d, a, b)
			}
			if a, b := m.ProxyTime(d, 4, 3, 4), plain.ProxyTime(d, 4, 3, 4); a != b {
				t.Fatalf("pair %v d=%d: ProxyTime %v != %v", pair, d, a, b)
			}
			if a, b := m.Threshold(4, 5, 3, 4), plain.Threshold(4, 5, 3, 4); a != b {
				t.Fatalf("pair %v: Threshold %v != %v", pair, a, b)
			}
		}
	}
}

// TestCostModelForHeteroTiers: on a tiered fabric the GPU->GPU pair is
// priced faster than the CPU->CPU pair for large messages (the 2x rate
// dominates), and slower for tiny ones (the 1.5x overhead dominates).
func TestCostModelForHeteroTiers(t *testing.T) {
	p := netsim.DefaultParams()
	cm, err := topo.NewHetero(netsim.CostModelFromParams(p), 4)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := NewCostModelFor(cm, 0, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewCostModelFor(cm, 1, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	if g, c := gpu.DirectTime(64<<20, 5), cpu.DirectTime(64<<20, 5); g >= c {
		t.Errorf("64MB: GPU pair %v not faster than CPU pair %v", g, c)
	}
	if g, c := gpu.DirectTime(64, 5), cpu.DirectTime(64, 5); g <= c {
		t.Errorf("64B: GPU pair %v not overhead-dominated vs CPU pair %v", g, c)
	}
}
