package mpisim

import (
	"testing"
	"testing/quick"

	"bgqflow/internal/torus"
)

func TestDefaultMappingIsBlock(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	j, err := NewJob(tor, 16)
	if err != nil {
		t.Fatal(err)
	}
	if j.Order() != "ABCDET" {
		t.Fatalf("default order %q", j.Order())
	}
	for r := 0; r < j.NumRanks(); r += 97 {
		if j.NodeOf(r) != torus.NodeID(r/16) {
			t.Fatalf("rank %d on node %d, want %d (block mapping)", r, j.NodeOf(r), r/16)
		}
	}
}

func TestTFirstMappingIsRoundRobin(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	j, err := NewJobWithMapping(tor, 4, "TABCDE")
	if err != nil {
		t.Fatal(err)
	}
	// With T slowest, ranks 0..127 land on nodes 0..127 (one per node),
	// then rank 128 wraps back to node 0.
	for r := 0; r < 128; r++ {
		if j.NodeOf(r) != torus.NodeID(r) {
			t.Fatalf("rank %d on node %d, want %d (round-robin)", r, j.NodeOf(r), r)
		}
	}
	if j.NodeOf(128) != 0 {
		t.Fatalf("rank 128 on node %d, want 0", j.NodeOf(128))
	}
}

func TestMappingValidation(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	for _, bad := range []MapOrder{"ABCDE", "ABCDEF", "AABDET", "ABCDEX", "ABCDETT"} {
		if _, err := NewJobWithMapping(tor, 2, bad); err == nil {
			t.Errorf("mapping %q accepted", bad)
		}
	}
	if _, err := NewJobWithMapping(tor, 0, "ABCDET"); err == nil {
		t.Error("zero ranks per node accepted")
	}
}

func TestMappingLowercaseAccepted(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2}) // 2-D torus: letters A, B, T
	if _, err := NewJobWithMapping(tor, 2, "tab"); err != nil {
		t.Fatalf("lowercase mapping rejected: %v", err)
	}
}

// Property: every mapping is a bijection — each node hosts exactly
// ranksPerNode ranks and every rank has exactly one node.
func TestPropertyMappingBijective(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	orders := []MapOrder{"ABCDET", "TABCDE", "EDCBAT", "TEDCBA", "CTDEAB"}
	f := func(oi uint8, rpnRaw uint8) bool {
		order := orders[int(oi)%len(orders)]
		rpn := int(rpnRaw%4) + 1
		j, err := NewJobWithMapping(tor, rpn, order)
		if err != nil {
			return false
		}
		counts := make(map[torus.NodeID]int)
		for r := 0; r < j.NumRanks(); r++ {
			counts[j.NodeOf(r)]++
		}
		if len(counts) != tor.Size() {
			return false
		}
		for _, c := range counts {
			if c != rpn {
				return false
			}
		}
		// RanksOn is consistent with NodeOf.
		for n := torus.NodeID(0); int(n) < tor.Size(); n += 17 {
			for _, r := range j.RanksOn(n) {
				if j.NodeOf(r) != n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMappingChangesDataPlacement(t *testing.T) {
	// The point of mapping: the same rank-indexed burst lands on
	// different nodes under different orders.
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	block, _ := NewJobWithMapping(tor, 16, "ABCDET")
	rr, _ := NewJobWithMapping(tor, 16, "TABCDE")
	// Ranks 0..15: one node under block, 16 nodes under round-robin.
	nodesBlock := map[torus.NodeID]bool{}
	nodesRR := map[torus.NodeID]bool{}
	for r := 0; r < 16; r++ {
		nodesBlock[block.NodeOf(r)] = true
		nodesRR[rr.NodeOf(r)] = true
	}
	if len(nodesBlock) != 1 {
		t.Fatalf("block mapping spread 16 ranks over %d nodes", len(nodesBlock))
	}
	if len(nodesRR) != 16 {
		t.Fatalf("round-robin mapping spread 16 ranks over %d nodes", len(nodesRR))
	}
}
