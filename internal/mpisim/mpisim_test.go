package mpisim

import (
	"testing"
	"testing/quick"

	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

func job16(t *testing.T) *Job {
	t.Helper()
	j, err := NewJob(torus.MustNew(torus.Shape{2, 2, 4, 4, 2}), 16)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJobLayout(t *testing.T) {
	j := job16(t)
	if j.NumRanks() != 2048 {
		t.Fatalf("NumRanks = %d, want 2048", j.NumRanks())
	}
	if j.NodeOf(0) != 0 || j.NodeOf(15) != 0 || j.NodeOf(16) != 1 {
		t.Fatal("block rank mapping wrong")
	}
	ranks := j.RanksOn(3)
	if len(ranks) != 16 || ranks[0] != 48 || ranks[15] != 63 {
		t.Fatalf("RanksOn(3) = %v", ranks)
	}
}

func TestNewJobValidation(t *testing.T) {
	if _, err := NewJob(torus.MustNew(torus.Shape{2, 2}), 0); err == nil {
		t.Fatal("0 ranks per node accepted")
	}
}

func TestNodeOfOutOfRangePanics(t *testing.T) {
	j := job16(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range rank accepted")
		}
	}()
	j.NodeOf(j.NumRanks())
}

func TestWorldComm(t *testing.T) {
	j := job16(t)
	w := j.World()
	if w.Size() != j.NumRanks() {
		t.Fatalf("world size %d", w.Size())
	}
	if w.Leader() != 0 {
		t.Fatalf("world leader %d", w.Leader())
	}
	if w.WorldRank(100) != 100 {
		t.Fatal("world comm should be identity")
	}
	if w.LocalRank(100) != 100 {
		t.Fatal("world LocalRank should be identity")
	}
}

func TestNewCommValidation(t *testing.T) {
	j := job16(t)
	if _, err := NewComm(j, nil); err == nil {
		t.Error("empty comm accepted")
	}
	if _, err := NewComm(j, []int{3, 3}); err == nil {
		t.Error("duplicate ranks accepted")
	}
	if _, err := NewComm(j, []int{5, 2}); err == nil {
		t.Error("unsorted ranks accepted")
	}
	if _, err := NewComm(j, []int{-1}); err == nil {
		t.Error("negative rank accepted")
	}
	if _, err := NewComm(j, []int{j.NumRanks()}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestSubcommForNodes(t *testing.T) {
	j := job16(t)
	w := j.World()
	nodes := []torus.NodeID{2, 5}
	sc, err := w.SubcommForNodes(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Size() != 32 {
		t.Fatalf("subcomm size %d, want 32", sc.Size())
	}
	if sc.Leader() != 32 {
		t.Fatalf("subcomm leader %d, want 32 (first rank on node 2)", sc.Leader())
	}
	for i := 0; i < sc.Size(); i++ {
		n := j.NodeOf(sc.WorldRank(i))
		if n != 2 && n != 5 {
			t.Fatalf("subcomm member on node %d", n)
		}
	}
}

func TestLocalRank(t *testing.T) {
	j := job16(t)
	c, err := NewComm(j, []int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if c.LocalRank(20) != 1 {
		t.Fatalf("LocalRank(20) = %d", c.LocalRank(20))
	}
	if c.LocalRank(15) != -1 {
		t.Fatal("nonmember should map to -1")
	}
}

func TestRangeComm(t *testing.T) {
	j := job16(t)
	w := j.World()
	rc, err := w.RangeComm(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Size() != 100 || rc.Leader() != 100 {
		t.Fatalf("RangeComm size=%d leader=%d", rc.Size(), rc.Leader())
	}
	if _, err := w.RangeComm(5000, 6000); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestTreeDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := treeDepth(n); got != want {
			t.Errorf("treeDepth(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCollectiveTimesScaleWithLogP(t *testing.T) {
	j := job16(t)
	m := NewCollectiveModel(j, netsim.DefaultParams())
	w := j.World()
	small, _ := NewComm(j, []int{0, 1})
	if m.AllreduceTime(w, 8) <= m.AllreduceTime(small, 8) {
		t.Fatal("allreduce time should grow with communicator size")
	}
	if m.BcastTime(w, 8) >= m.AllreduceTime(w, 8) {
		t.Fatal("bcast should be cheaper than allreduce")
	}
	if m.BarrierTime(w) <= 0 {
		t.Fatal("barrier should cost time")
	}
}

func TestCollectiveTimesAreNegligible(t *testing.T) {
	// The paper asserts the Init/metadata costs are negligible next to
	// data movement; check an 8-byte allreduce over 2048 ranks costs far
	// less than moving even 1 MB over one link.
	j := job16(t)
	p := netsim.DefaultParams()
	m := NewCollectiveModel(j, p)
	meta := float64(m.AllreduceTime(j.World(), 8))
	payload := float64(8<<20) / p.PerFlowBandwidth // one rank's worth of sparse data
	if meta > payload/5 {
		t.Fatalf("metadata allreduce %gs not negligible next to an 8MB transfer %gs", meta, payload)
	}
}

func TestAllgatherMovesAllData(t *testing.T) {
	j := job16(t)
	m := NewCollectiveModel(j, netsim.DefaultParams())
	c, _ := NewComm(j, []int{0, 16, 32, 48})
	tAll := m.AllgatherTime(c, 1024)
	tB := m.BcastTime(c, 1024)
	if tAll <= tB/2 {
		t.Fatalf("allgather %g should not be far cheaper than bcast %g", tAll, tB)
	}
}

// Property: NodeOf and RanksOn are consistent.
func TestPropertyRankNodeConsistency(t *testing.T) {
	j := job16(t)
	f := func(raw uint16) bool {
		r := int(raw) % j.NumRanks()
		node := j.NodeOf(r)
		for _, rr := range j.RanksOn(node) {
			if rr == r {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
