package mpisim

import (
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

func netsimDefault() netsim.Params { return netsim.DefaultParams() }

func netsimNew(tor *torus.Torus, p netsim.Params) *netsim.Network {
	return netsim.NewNetwork(tor, p.LinkBandwidth)
}

func TestRankBcastCompletes(t *testing.T) {
	for _, rpn := range []int{1, 2} {
		rt, _ := newRT(t, torus.Shape{2, 2, 4, 4, 2}, rpn)
		end, err := rt.Run(func(r *Rank) error {
			return r.Bcast(3, 1<<20)
		})
		if err != nil {
			t.Fatalf("rpn=%d: %v", rpn, err)
		}
		if end <= 0 {
			t.Fatal("no time elapsed")
		}
	}
}

func TestRankBcastNonPowerOfTwoRoot(t *testing.T) {
	// 32 ranks, root in the middle.
	rt, _ := newRT(t, torus.Shape{2, 2, 2, 2, 2}, 1)
	if _, err := rt.Run(func(r *Rank) error { return r.Bcast(17, 64<<10) }); err != nil {
		t.Fatal(err)
	}
}

func TestRankBcastScalesLogarithmically(t *testing.T) {
	run := func(shape torus.Shape) float64 {
		rt, _ := newRT(t, shape, 1)
		end, err := rt.Run(func(r *Rank) error { return r.Bcast(0, 8) })
		if err != nil {
			t.Fatal(err)
		}
		return float64(end)
	}
	t32 := run(torus.Shape{2, 2, 2, 2, 2})
	t128 := run(torus.Shape{2, 2, 4, 4, 2})
	// 5 rounds vs 7 rounds: nowhere near the 4x linear ratio.
	if t128/t32 > 2.5 {
		t.Fatalf("bcast not logarithmic: t32=%g t128=%g", t32, t128)
	}
}

func TestRankBcastValidation(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 2, 2, 2}, 1)
	if _, err := rt.Run(func(r *Rank) error {
		if err := r.Bcast(-1, 1); err == nil {
			return errBad("root")
		}
		if err := r.Bcast(0, -1); err == nil {
			return errBad("size")
		}
		// Run a real broadcast afterwards so ranks stay consistent.
		return r.Bcast(0, 1024)
	}); err != nil {
		t.Fatal(err)
	}
}

type errBad string

func (e errBad) Error() string { return "accepted bad " + string(e) }

func TestRankReduceAndAllreduce(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 4, 4, 2}, 1)
	if _, err := rt.Run(func(r *Rank) error { return r.Reduce(5, 256<<10) }); err != nil {
		t.Fatal(err)
	}
	rt2, _ := newRT(t, torus.Shape{2, 2, 4, 4, 2}, 1)
	end2, err := rt2.Run(func(r *Rank) error { return r.Allreduce(256 << 10) })
	if err != nil {
		t.Fatal(err)
	}
	// Allreduce = reduce + bcast: costlier than a lone reduce.
	rt3, _ := newRT(t, torus.Shape{2, 2, 4, 4, 2}, 1)
	end3, err := rt3.Run(func(r *Rank) error { return r.Reduce(0, 256<<10) })
	if err != nil {
		t.Fatal(err)
	}
	if end2 <= end3 {
		t.Fatalf("allreduce %g not slower than reduce %g", float64(end2), float64(end3))
	}
}

func TestRankReduceValidation(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 2, 2, 2}, 1)
	if _, err := rt.Run(func(r *Rank) error {
		if err := r.Reduce(99, 1); err == nil {
			return errBad("root")
		}
		if err := r.Reduce(0, -1); err == nil {
			return errBad("size")
		}
		return r.Reduce(0, 8)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRingAllgather(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 2, 2, 2}, 1)
	end, err := rt.Run(func(r *Rank) error { return r.RingAllgather(128 << 10) })
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("no time elapsed")
	}
	// Conservation: each of the 32 ranks sends 31 chunks of 128KB one
	// hop... chunks travel rank-ring hops; total bytes on links equals
	// sum over sends of chunk * hops(route). Just sanity: > 31*32*128KB*0 and
	// the run moved the right order of bytes.
	var total float64
	for _, b := range rt.Engine().LinkBytes() {
		total += b
	}
	if total < 31*32*float64(128<<10) {
		t.Fatalf("allgather moved only %g bytes over links", total)
	}
}

func TestRingAllgatherSingleRank(t *testing.T) {
	tor := torus.MustNew(torus.Shape{1})
	job, err := NewJob(tor, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := netsimDefault()
	rt, err := NewRuntime(job, netsimNew(tor, p), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(func(r *Rank) error { return r.RingAllgather(1 << 20) }); err != nil {
		t.Fatal(err)
	}
}

func TestRingAllgatherValidation(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 2, 2, 2}, 1)
	if _, err := rt.Run(func(r *Rank) error {
		if err := r.RingAllgather(-1); err == nil {
			return errBad("size")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
