package mpisim_test

import (
	"fmt"

	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

// An SPMD program: rank 0 sends to rank 1, which acknowledges. The
// runtime executes the goroutines in virtual time on the simulated
// torus.
func ExampleRuntime_Run() {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	params := netsim.DefaultParams()
	job, _ := mpisim.NewJob(tor, 1)
	rt, _ := mpisim.NewRuntime(job, netsim.NewNetwork(tor, params.LinkBandwidth), params)

	_, err := rt.Run(func(r *mpisim.Rank) error {
		switch r.ID() {
		case 0:
			if err := r.Send(1, 1<<20); err != nil {
				return err
			}
			_, err := r.Recv(1)
			return err
		case 1:
			if _, err := r.Recv(0); err != nil {
				return err
			}
			return r.Send(0, 64)
		}
		return nil
	})
	fmt.Println("ping-pong ok:", err == nil)
	// Output: ping-pong ok: true
}
