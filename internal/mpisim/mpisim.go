// Package mpisim provides the MPI-shaped substrate the paper's algorithms
// run on: the mapping from MPI ranks to torus nodes, communicators and
// subcommunicators, and analytic timing models for the metadata
// collectives the algorithms use (Allreduce of the total data size,
// Bcast of the aggregator list, Allgather of coordinates).
//
// Ranks are mapped to nodes in block order (the BG/Q "ABCDET" default):
// ranks r*K .. r*K+K-1 live on node r, where K is the ranks-per-node
// count, and nodes are ordered row-major over the torus coordinates.
//
// The collective timing models are deliberately simple tree/ring models
// built from the netsim endpoint parameters; the paper asserts (and our
// experiments confirm) that these metadata costs are negligible next to
// the data movement itself, so fidelity beyond the right order of
// magnitude is not required.
package mpisim

import (
	"fmt"
	"math/bits"
	"sort"

	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// Job is a parallel job: a partition plus a rank layout.
type Job struct {
	tor          *torus.Torus
	ranksPerNode int
	numRanks     int
	order        MapOrder
	rankNode     []torus.NodeID
	nodeRanks    [][]int
}

// NewJob lays out ranksPerNode ranks on every node of tor under the
// default block mapping (consecutive ranks fill a node before moving to
// the next, the BG/Q "ABCDET" order).
func NewJob(tor *torus.Torus, ranksPerNode int) (*Job, error) {
	return NewJobWithMapping(tor, ranksPerNode, orderFor(tor.Dims()))
}

// Torus returns the job's partition.
func (j *Job) Torus() *torus.Torus { return j.tor }

// NumRanks returns the total number of MPI ranks.
func (j *Job) NumRanks() int { return j.numRanks }

// RanksPerNode returns the rank density.
func (j *Job) RanksPerNode() int { return j.ranksPerNode }

// NodeOf returns the node hosting a rank.
func (j *Job) NodeOf(rank int) torus.NodeID {
	if rank < 0 || rank >= j.numRanks {
		panic(fmt.Sprintf("mpisim: rank %d outside [0,%d)", rank, j.numRanks))
	}
	return j.rankNode[rank]
}

// RanksOn returns the ranks hosted by a node, in ascending order.
func (j *Job) RanksOn(node torus.NodeID) []int {
	return append([]int(nil), j.nodeRanks[node]...)
}

// World returns the communicator containing every rank.
func (j *Job) World() *Comm {
	ranks := make([]int, j.numRanks)
	for i := range ranks {
		ranks[i] = i
	}
	return &Comm{job: j, ranks: ranks}
}

// Comm is a communicator: an ordered set of world ranks. Index within
// the slice is the communicator-local rank, so ranks[0] is "rank 0 of the
// subcomm" — the process Algorithm 2 elects as a block's aggregator.
type Comm struct {
	job   *Job
	ranks []int
}

// NewComm builds a communicator from explicit world ranks (MPI_Comm_create).
// Ranks must be valid and strictly increasing.
func NewComm(j *Job, ranks []int) (*Comm, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("mpisim: empty communicator")
	}
	for i, r := range ranks {
		if r < 0 || r >= j.numRanks {
			return nil, fmt.Errorf("mpisim: rank %d outside job", r)
		}
		if i > 0 && ranks[i-1] >= r {
			return nil, fmt.Errorf("mpisim: ranks must be strictly increasing")
		}
	}
	return &Comm{job: j, ranks: append([]int(nil), ranks...)}, nil
}

// Job returns the communicator's job.
func (c *Comm) Job() *Job { return c.job }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a communicator-local rank to a world rank.
func (c *Comm) WorldRank(local int) int { return c.ranks[local] }

// Leader returns the world rank of communicator-local rank 0.
func (c *Comm) Leader() int { return c.ranks[0] }

// LocalRank translates a world rank to its communicator-local rank, or -1
// if the rank is not a member.
func (c *Comm) LocalRank(world int) int {
	i := sort.SearchInts(c.ranks, world)
	if i < len(c.ranks) && c.ranks[i] == world {
		return i
	}
	return -1
}

// SubcommForNodes builds the communicator of all ranks hosted by the given
// nodes (MPI_Comm_create over a node block); this is how Algorithm 2 forms
// a subcomm per 5-D block and elects its rank 0 as the aggregator.
func (c *Comm) SubcommForNodes(nodes []torus.NodeID) (*Comm, error) {
	inSet := make(map[torus.NodeID]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	var ranks []int
	for _, r := range c.ranks {
		if inSet[c.job.NodeOf(r)] {
			ranks = append(ranks, r)
		}
	}
	if len(ranks) == 0 {
		return nil, fmt.Errorf("mpisim: no member ranks on the given %d nodes", len(nodes))
	}
	return &Comm{job: c.job, ranks: ranks}, nil
}

// RangeComm builds the communicator of world ranks [lo, hi).
func (c *Comm) RangeComm(lo, hi int) (*Comm, error) {
	var ranks []int
	for _, r := range c.ranks {
		if r >= lo && r < hi {
			ranks = append(ranks, r)
		}
	}
	if len(ranks) == 0 {
		return nil, fmt.Errorf("mpisim: empty range [%d,%d)", lo, hi)
	}
	return &Comm{job: c.job, ranks: ranks}, nil
}

// CollectiveModel prices the metadata collectives.
type CollectiveModel struct {
	p        netsim.Params
	avgHops  float64
	perRound func(bytes int64) sim.Duration
}

// NewCollectiveModel builds a model for a job under netsim parameters.
func NewCollectiveModel(j *Job, p netsim.Params) *CollectiveModel {
	// Half the torus diameter is a representative route length for a
	// tree round.
	diam := 0
	for d := 0; d < j.tor.Dims(); d++ {
		diam += j.tor.Extent(d) / 2
	}
	m := &CollectiveModel{p: p, avgHops: float64(diam) / 2}
	m.perRound = func(bytes int64) sim.Duration {
		return m.p.SenderOverhead + m.p.ReceiverOverhead +
			sim.Duration(m.avgHops*float64(m.p.HopLatency)) +
			sim.Duration(float64(bytes)/m.p.PerFlowBandwidth)
	}
	return m
}

func treeDepth(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// AllreduceTime prices an allreduce of bytes payload over comm: a binomial
// reduce followed by a binomial broadcast.
func (m *CollectiveModel) AllreduceTime(c *Comm, bytes int64) sim.Duration {
	return sim.Duration(2 * float64(treeDepth(c.Size())) * float64(m.perRound(bytes)))
}

// BcastTime prices a binomial-tree broadcast of bytes payload.
func (m *CollectiveModel) BcastTime(c *Comm, bytes int64) sim.Duration {
	return sim.Duration(float64(treeDepth(c.Size())) * float64(m.perRound(bytes)))
}

// BarrierTime prices a zero-byte allreduce.
func (m *CollectiveModel) BarrierTime(c *Comm) sim.Duration {
	return m.AllreduceTime(c, 0)
}

// AllgatherTime prices a recursive-doubling allgather where every rank
// contributes bytesPerRank: round i moves 2^i * bytesPerRank.
func (m *CollectiveModel) AllgatherTime(c *Comm, bytesPerRank int64) sim.Duration {
	var total sim.Duration
	chunk := bytesPerRank
	for i := 0; i < treeDepth(c.Size()); i++ {
		total += m.perRound(chunk)
		chunk *= 2
	}
	return total
}
