package mpisim

import (
	"fmt"

	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

// This file builds the metadata collectives as actual flow DAGs on the
// network simulator. The analytic CollectiveModel prices are used inside
// the planners (they are cheap and the paper asserts these costs are
// negligible); the builders here exist to validate that pricing and to
// let experiments simulate a collective explicitly when they want its
// traffic on the wire.

// BuildBcastFlows submits a binomial-tree broadcast of bytes from the
// communicator-local root over comm: in round i, every rank with local
// index < 2^i that already holds the data sends to index + 2^i. It
// returns the flows that deliver the payload to the leaves; the
// broadcast is complete when all of them are.
func BuildBcastFlows(e *netsim.Engine, c *Comm, rootLocal int, bytes int64) ([]netsim.FlowID, error) {
	n := c.Size()
	if rootLocal < 0 || rootLocal >= n {
		return nil, fmt.Errorf("mpisim: bcast root %d outside communicator of size %d", rootLocal, n)
	}
	// Rotate so the root is local index 0.
	node := func(local int) torus.NodeID {
		return c.job.NodeOf(c.WorldRank((local + rootLocal) % n))
	}
	// deliver[i] is the flow that hands rank i the payload (-1 = has it).
	deliver := make([]netsim.FlowID, n)
	for i := range deliver {
		deliver[i] = -1
	}
	var finals []netsim.FlowID
	for span := 1; span < n; span *= 2 {
		for src := 0; src < span && src+span < n; src++ {
			dst := src + span
			var deps []netsim.FlowID
			if deliver[src] >= 0 {
				deps = []netsim.FlowID{deliver[src]}
			}
			id := e.Submit(netsim.FlowSpec{
				Src: node(src), Dst: node(dst), Bytes: bytes,
				DependsOn: deps,
				Label:     fmt.Sprintf("bcast/%d->%d", src, dst),
			})
			deliver[dst] = id
			finals = append(finals, id)
		}
	}
	return finals, nil
}

// BuildReduceFlows submits a binomial-tree reduction toward the
// communicator-local root: the mirror image of BuildBcastFlows. The
// returned flows are the last wave into the root.
func BuildReduceFlows(e *netsim.Engine, c *Comm, rootLocal int, bytes int64) ([]netsim.FlowID, error) {
	n := c.Size()
	if rootLocal < 0 || rootLocal >= n {
		return nil, fmt.Errorf("mpisim: reduce root %d outside communicator of size %d", rootLocal, n)
	}
	node := func(local int) torus.NodeID {
		return c.job.NodeOf(c.WorldRank((local + rootLocal) % n))
	}
	// ready[i] is the flow after which rank i's partial result is
	// complete (-1 = ready now).
	ready := make([]netsim.FlowID, n)
	for i := range ready {
		ready[i] = -1
	}
	var last []netsim.FlowID
	span := 1
	for span < n {
		span *= 2
	}
	for span /= 2; span >= 1; span /= 2 {
		var wave []netsim.FlowID
		for dst := 0; dst < span && dst+span < n; dst++ {
			src := dst + span
			var deps []netsim.FlowID
			if ready[src] >= 0 {
				deps = append(deps, ready[src])
			}
			if ready[dst] >= 0 {
				deps = append(deps, ready[dst])
			}
			id := e.Submit(netsim.FlowSpec{
				Src: node(src), Dst: node(dst), Bytes: bytes,
				DependsOn: deps,
				Label:     fmt.Sprintf("reduce/%d->%d", src, dst),
			})
			ready[dst] = id
			wave = append(wave, id)
		}
		if len(wave) > 0 {
			last = wave
		}
	}
	return last, nil
}

// BuildAllreduceFlows submits reduce-to-root followed by broadcast.
func BuildAllreduceFlows(e *netsim.Engine, c *Comm, bytes int64) ([]netsim.FlowID, error) {
	reduceLast, err := BuildReduceFlows(e, c, 0, bytes)
	if err != nil {
		return nil, err
	}
	// The broadcast root must wait for the reduction; chain by making
	// the first broadcast wave depend on the reduction's last wave.
	// BuildBcastFlows has no dependency hook, so emit a zero-byte gate.
	gate := e.Submit(netsim.FlowSpec{
		Src: c.job.NodeOf(c.Leader()), Dst: c.job.NodeOf(c.Leader()),
		Bytes: 0, DependsOn: reduceLast, Label: "allreduce/gate",
	})
	finals, err := buildBcastFlowsAfter(e, c, 0, bytes, gate)
	if err != nil {
		return nil, err
	}
	return finals, nil
}

// buildBcastFlowsAfter is BuildBcastFlows with a root dependency.
func buildBcastFlowsAfter(e *netsim.Engine, c *Comm, rootLocal int, bytes int64, after netsim.FlowID) ([]netsim.FlowID, error) {
	n := c.Size()
	node := func(local int) torus.NodeID {
		return c.job.NodeOf(c.WorldRank((local + rootLocal) % n))
	}
	deliver := make([]netsim.FlowID, n)
	for i := range deliver {
		deliver[i] = -1
	}
	deliver[0] = after
	var finals []netsim.FlowID
	for span := 1; span < n; span *= 2 {
		for src := 0; src < span && src+span < n; src++ {
			dst := src + span
			var deps []netsim.FlowID
			if deliver[src] >= 0 {
				deps = []netsim.FlowID{deliver[src]}
			}
			id := e.Submit(netsim.FlowSpec{
				Src: node(src), Dst: node(dst), Bytes: bytes,
				DependsOn: deps,
				Label:     fmt.Sprintf("bcast/%d->%d", src, dst),
			})
			deliver[dst] = id
			finals = append(finals, id)
		}
	}
	if n == 1 {
		finals = append(finals, after)
	}
	return finals, nil
}
