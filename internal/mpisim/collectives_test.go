package mpisim

import (
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

func collRig(t *testing.T) (*Job, *netsim.Engine, netsim.Params) {
	t.Helper()
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := netsim.DefaultParams()
	j, err := NewJob(tor, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := netsim.NewEngine(netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	return j, e, p
}

func TestBuildBcastFlowsReachEveryRank(t *testing.T) {
	j, e, _ := collRig(t)
	c := j.World()
	finals, err := BuildBcastFlows(e, c, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// A binomial broadcast over n ranks delivers to n-1 of them.
	if len(finals) != c.Size()-1 {
		t.Fatalf("%d delivery flows, want %d", len(finals), c.Size()-1)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range finals {
		if !e.Result(id).Done {
			t.Fatal("delivery flow not done")
		}
	}
}

func TestBuildBcastRootValidation(t *testing.T) {
	j, e, _ := collRig(t)
	if _, err := BuildBcastFlows(e, j.World(), -1, 8); err == nil {
		t.Fatal("negative root accepted")
	}
	if _, err := BuildBcastFlows(e, j.World(), j.NumRanks(), 8); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestBcastRoundsScaleLogarithmically(t *testing.T) {
	j, _, p := collRig(t)
	world := j.World()
	small, err := NewComm(j, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	run := func(c *Comm) float64 {
		e, _ := netsim.NewEngine(netsim.NewNetwork(j.Torus(), p.LinkBandwidth), p)
		finals, err := BuildBcastFlows(e, c, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		_ = finals
		return float64(mk)
	}
	t4 := run(small)   // 2 rounds
	t128 := run(world) // 7 rounds
	if t128 <= t4 {
		t.Fatal("bigger communicator should take longer")
	}
	// Log scaling: 128 ranks is 7 rounds vs 2 — the ratio should be far
	// below the 32x linear ratio.
	if t128/t4 > 8 {
		t.Fatalf("bcast scaling looks linear: t128/t4 = %.1f", t128/t4)
	}
}

func TestAnalyticBcastPriceIsSane(t *testing.T) {
	// The CollectiveModel price should be within a small factor of the
	// simulated binomial broadcast.
	j, e, p := collRig(t)
	c := j.World()
	finals, err := BuildBcastFlows(e, c, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = finals
	m := NewCollectiveModel(j, p)
	priced := float64(m.BcastTime(c, 8))
	ratio := priced / float64(mk)
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("analytic bcast %.3g vs simulated %.3g (ratio %.2f)", priced, float64(mk), ratio)
	}
}

func TestBuildReduceFlows(t *testing.T) {
	j, e, _ := collRig(t)
	c := j.World()
	last, err := BuildReduceFlows(e, c, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(last) == 0 {
		t.Fatal("no final reduction wave")
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The last wave lands on the root's node.
	rootNode := j.NodeOf(c.Leader())
	for _, id := range last {
		_ = id
	}
	_ = rootNode
}

func TestBuildReduceRootValidation(t *testing.T) {
	j, e, _ := collRig(t)
	if _, err := BuildReduceFlows(e, j.World(), 999999, 8); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestBuildAllreduceFlows(t *testing.T) {
	j, e, _ := collRig(t)
	c := j.World()
	finals, err := BuildAllreduceFlows(e, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) != c.Size()-1 {
		t.Fatalf("%d final deliveries, want %d", len(finals), c.Size()-1)
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Allreduce = reduce + bcast: it must cost more than a lone bcast.
	e2, _ := netsim.NewEngine(netsim.NewNetwork(j.Torus(), netsim.DefaultParams().LinkBandwidth), netsim.DefaultParams())
	if _, err := BuildBcastFlows(e2, c, 0, 8); err != nil {
		t.Fatal(err)
	}
	mkB, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mk <= mkB {
		t.Fatalf("allreduce %g not slower than bcast %g", float64(mk), float64(mkB))
	}
}

func TestAllreduceSingletonComm(t *testing.T) {
	j, e, _ := collRig(t)
	c, err := NewComm(j, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	finals, err := BuildAllreduceFlows(e, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(finals) == 0 {
		t.Fatal("singleton allreduce produced no completion flow")
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
