package mpisim

import (
	"fmt"
	"sync"

	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
)

// Runtime executes an SPMD program on the simulated machine: one
// goroutine per rank, MPI-shaped blocking operations (Put, Send/Recv,
// Barrier, Compute), and virtual time that advances only when every
// running rank is blocked — a conservative parallel-discrete-event
// scheme. It is the imperative counterpart of the plan-based interface:
// rank programs read like MPI code and their communication contends on
// the simulated torus exactly like planned flows do.
type Runtime struct {
	job  *Job
	e    *netsim.Engine
	coll *CollectiveModel

	mu          sync.Mutex
	blocked     int
	finished    int
	wokenPend   int // channels closed whose waiters have not resumed yet
	err         error
	waiters     map[*waiter]struct{}
	mail        map[mailKey][]int64
	recvWaiters map[mailKey][]*recvWait
	barWaiting  int
	barDones    []func()
}

type waiter struct {
	ch    chan struct{}
	fired bool
}

type mailKey struct{ src, dst int }

type recvWait struct {
	bytes *int64
	done  func()
}

// NewRuntime builds a runtime over a fresh interactive engine.
func NewRuntime(job *Job, net *netsim.Network, p netsim.Params) (*Runtime, error) {
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		return nil, err
	}
	e.BeginInteractive()
	return &Runtime{
		job:         job,
		e:           e,
		coll:        NewCollectiveModel(job, p),
		waiters:     make(map[*waiter]struct{}),
		mail:        make(map[mailKey][]int64),
		recvWaiters: make(map[mailKey][]*recvWait),
	}, nil
}

// Engine exposes the underlying engine (e.g. for LinkBytes after Run).
func (rt *Runtime) Engine() *netsim.Engine { return rt.e }

// Rank is the per-goroutine handle an SPMD program runs against.
type Rank struct {
	rt *Runtime
	id int
}

// Run executes program once per rank and returns the virtual time at
// which the last rank finished. A communication deadlock (every rank
// blocked, no event pending) aborts the run with an error, which every
// blocked operation also returns.
func (rt *Runtime) Run(program func(*Rank) error) (sim.Duration, error) {
	n := rt.job.NumRanks()
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(r int) {
			defer wg.Done()
			errs[r] = program(&Rank{rt: rt, id: r})
			rt.finishRank()
		}(r)
	}
	wg.Wait()
	rt.mu.Lock()
	err := rt.err
	rt.mu.Unlock()
	if err == nil {
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	return sim.Duration(rt.e.Now()), err
}

func (rt *Runtime) finishRank() {
	rt.mu.Lock()
	rt.finished++
	rt.maybeAdvanceLocked()
	rt.mu.Unlock()
}

// runnable reports ranks that have not finished their program.
func (rt *Runtime) runnable() int { return rt.job.NumRanks() - rt.finished }

// maybeAdvanceLocked fires engine events while every runnable rank is
// blocked and nobody has been woken; it detects true deadlock.
func (rt *Runtime) maybeAdvanceLocked() {
	for rt.err == nil && rt.wokenPend == 0 && rt.blocked > 0 && rt.blocked == rt.runnable() {
		if !rt.e.StepClock() {
			rt.err = fmt.Errorf("mpisim: deadlock: %d ranks blocked with no pending events", rt.blocked)
			for w := range rt.waiters {
				close(w.ch)
				delete(rt.waiters, w)
			}
			return
		}
	}
}

// await blocks the calling rank until the completion callback handed to
// setup fires. setup runs under the runtime lock and must not block.
func (rt *Runtime) await(setup func(done func())) error {
	rt.mu.Lock()
	if rt.err != nil {
		rt.mu.Unlock()
		return rt.err
	}
	w := &waiter{ch: make(chan struct{})}
	rt.waiters[w] = struct{}{}
	done := func() {
		if w.fired {
			return
		}
		if _, ok := rt.waiters[w]; !ok {
			return
		}
		w.fired = true
		rt.wokenPend++
		delete(rt.waiters, w)
		close(w.ch)
	}
	setup(done)
	rt.blocked++
	rt.maybeAdvanceLocked()
	rt.mu.Unlock()
	<-w.ch
	rt.mu.Lock()
	rt.blocked--
	if w.fired {
		rt.wokenPend--
	}
	err := rt.err
	rt.mu.Unlock()
	return err
}

// ID returns the world rank.
func (r *Rank) ID() int { return r.id }

// Size returns the job size.
func (r *Rank) Size() int { return r.rt.job.NumRanks() }

// Now returns the current virtual time. Exact at operation boundaries.
func (r *Rank) Now() sim.Time {
	r.rt.mu.Lock()
	defer r.rt.mu.Unlock()
	return r.rt.e.Now()
}

// Compute advances the rank's virtual time by d (a compute phase).
func (r *Rank) Compute(d sim.Duration) error {
	if d < 0 {
		return fmt.Errorf("mpisim: negative compute time")
	}
	return r.rt.await(func(done func()) {
		r.rt.e.ScheduleAfter(d, done)
	})
}

// Put moves bytes to dst's node over the torus (one-sided RDMA) and
// returns when the transfer has fully landed.
func (r *Rank) Put(dst int, bytes int64) error {
	if dst < 0 || dst >= r.rt.job.NumRanks() {
		return fmt.Errorf("mpisim: Put to unknown rank %d", dst)
	}
	if bytes < 0 {
		return fmt.Errorf("mpisim: negative Put size")
	}
	return r.rt.await(func(done func()) {
		r.rt.e.Submit(netsim.FlowSpec{
			Src:        r.rt.job.NodeOf(r.id),
			Dst:        r.rt.job.NodeOf(dst),
			Bytes:      bytes,
			Label:      fmt.Sprintf("put/%d->%d", r.id, dst),
			OnComplete: done,
		})
	})
}

// Send transfers bytes to dst and deposits the message for a matching
// Recv. It returns when the data has landed at the destination node.
func (r *Rank) Send(dst int, bytes int64) error {
	if dst < 0 || dst >= r.rt.job.NumRanks() {
		return fmt.Errorf("mpisim: Send to unknown rank %d", dst)
	}
	if bytes < 0 {
		return fmt.Errorf("mpisim: negative Send size")
	}
	rt := r.rt
	key := mailKey{src: r.id, dst: dst}
	return rt.await(func(done func()) {
		rt.e.Submit(netsim.FlowSpec{
			Src:   rt.job.NodeOf(r.id),
			Dst:   rt.job.NodeOf(dst),
			Bytes: bytes,
			Label: fmt.Sprintf("send/%d->%d", r.id, dst),
			OnComplete: func() {
				// Deliver: hand to a waiting Recv or queue in the mailbox.
				if q := rt.recvWaiters[key]; len(q) > 0 {
					rw := q[0]
					rt.recvWaiters[key] = q[1:]
					*rw.bytes = bytes
					rw.done()
				} else {
					rt.mail[key] = append(rt.mail[key], bytes)
				}
				done()
			},
		})
	})
}

// Recv blocks until a message from src (sent with Send) has arrived and
// returns its size. Messages from one sender are delivered in order.
func (r *Rank) Recv(src int) (int64, error) {
	if src < 0 || src >= r.rt.job.NumRanks() {
		return 0, fmt.Errorf("mpisim: Recv from unknown rank %d", src)
	}
	rt := r.rt
	key := mailKey{src: src, dst: r.id}
	var bytes int64
	err := rt.await(func(done func()) {
		if q := rt.mail[key]; len(q) > 0 {
			bytes = q[0]
			rt.mail[key] = q[1:]
			done()
			return
		}
		rt.recvWaiters[key] = append(rt.recvWaiters[key], &recvWait{bytes: &bytes, done: done})
	})
	return bytes, err
}

// Barrier blocks until every rank has entered it, then releases all of
// them after the collective's priced latency.
func (r *Rank) Barrier() error {
	rt := r.rt
	return rt.await(func(done func()) {
		rt.barWaiting++
		rt.barDones = append(rt.barDones, done)
		if rt.barWaiting == rt.runnable() {
			dones := rt.barDones
			rt.barWaiting = 0
			rt.barDones = nil
			delay := rt.coll.BarrierTime(rt.job.World())
			rt.e.ScheduleAfter(delay, func() {
				for _, d := range dones {
					d()
				}
			})
		}
	})
}
