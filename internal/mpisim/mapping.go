package mpisim

import (
	"fmt"
	"strings"

	"bgqflow/internal/torus"
)

// MapOrder is a BG/Q-style rank-mapping string: a permutation of the
// torus dimension letters plus 'T' (the rank-on-node position). The
// rightmost letter varies fastest as the rank increases, so the default
// "ABCDET" places consecutive ranks on the same node first (block
// mapping), while "TABCDE" spreads consecutive ranks round-robin across
// nodes. Mapping is the mechanism the related work (Bhatele et al.)
// tunes; here it determines which node hosts each rank and therefore
// where sparse data sits on the torus.
type MapOrder string

// DefaultMapOrder is the BG/Q default block mapping for a 5-D torus.
const DefaultMapOrder MapOrder = "ABCDET"

// orderFor builds the default order string for an n-dimensional torus.
func orderFor(dims int) MapOrder {
	var b strings.Builder
	for i := 0; i < dims; i++ {
		b.WriteString(torus.DimNames[i])
	}
	b.WriteByte('T')
	return MapOrder(b.String())
}

// parse validates the order against a torus and returns the axis indices
// (0..dims-1 for torus dimensions, dims for T) slowest first.
func (o MapOrder) parse(tor *torus.Torus) ([]int, error) {
	dims := tor.Dims()
	if len(o) != dims+1 {
		return nil, fmt.Errorf("mpisim: mapping %q must have %d letters for a %d-D torus plus T", o, dims, dims)
	}
	axes := make([]int, 0, dims+1)
	seen := make(map[int]bool)
	for _, ch := range strings.ToUpper(string(o)) {
		axis := -1
		if ch == 'T' {
			axis = dims
		} else {
			for d := 0; d < dims; d++ {
				if string(ch) == torus.DimNames[d] {
					axis = d
					break
				}
			}
		}
		if axis < 0 {
			return nil, fmt.Errorf("mpisim: mapping %q has unknown letter %q", o, string(ch))
		}
		if seen[axis] {
			return nil, fmt.Errorf("mpisim: mapping %q repeats %q", o, string(ch))
		}
		seen[axis] = true
		axes = append(axes, axis)
	}
	return axes, nil
}

// NewJobWithMapping lays out ranksPerNode ranks per node under an
// explicit mapping order.
func NewJobWithMapping(tor *torus.Torus, ranksPerNode int, order MapOrder) (*Job, error) {
	if ranksPerNode < 1 {
		return nil, fmt.Errorf("mpisim: ranks per node %d must be >= 1", ranksPerNode)
	}
	axes, err := order.parse(tor)
	if err != nil {
		return nil, err
	}
	dims := tor.Dims()
	numRanks := tor.Size() * ranksPerNode
	j := &Job{
		tor:          tor,
		ranksPerNode: ranksPerNode,
		numRanks:     numRanks,
		order:        order,
		rankNode:     make([]torus.NodeID, numRanks),
		nodeRanks:    make([][]int, tor.Size()),
	}
	// Odometer over the permuted axes, rightmost (last) fastest.
	extent := func(axis int) int {
		if axis == dims {
			return ranksPerNode
		}
		return tor.Extent(axis)
	}
	pos := make([]int, len(axes))
	coord := make(torus.Coord, dims)
	for r := 0; r < numRanks; r++ {
		for i, axis := range axes {
			if axis < dims {
				coord[axis] = pos[i]
			}
		}
		node := tor.ID(coord)
		j.rankNode[r] = node
		j.nodeRanks[node] = append(j.nodeRanks[node], r)
		// Increment the odometer.
		for i := len(axes) - 1; i >= 0; i-- {
			pos[i]++
			if pos[i] < extent(axes[i]) {
				break
			}
			pos[i] = 0
		}
	}
	return j, nil
}

// Order reports the job's mapping order.
func (j *Job) Order() MapOrder { return j.order }
