package mpisim

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

func newRT(t *testing.T, shape torus.Shape, ranksPerNode int) (*Runtime, netsim.Params) {
	t.Helper()
	tor := torus.MustNew(shape)
	p := netsim.DefaultParams()
	job, err := NewJob(tor, ranksPerNode)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(job, netsim.NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	return rt, p
}

func TestRuntimeSingleRankCompute(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 2, 2, 2}, 1)
	end, err := rt.Run(func(r *Rank) error {
		if r.ID() != 0 {
			return r.Compute(1e-3)
		}
		return r.Compute(5e-3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(end)-5e-3) > 1e-9 {
		t.Fatalf("end time %g, want 5ms", float64(end))
	}
}

func TestRuntimePutTimeMatchesEngine(t *testing.T) {
	rt, p := newRT(t, torus.Shape{2, 2, 4, 4, 2}, 1)
	tor := rt.job.Torus()
	const bytes = 8 << 20
	end, err := rt.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Put(tor.Size()-1, bytes)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	hops := tor.HopDistance(0, torus.NodeID(tor.Size()-1))
	want := float64(p.SenderOverhead) + bytes/p.PerFlowBandwidth +
		float64(p.ReceiverOverhead) + float64(hops)*float64(p.HopLatency)
	if math.Abs(float64(end)-want)/want > 1e-9 {
		t.Fatalf("put end %g, want %g", float64(end), want)
	}
}

func TestRuntimeSendRecvBothOrders(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 4, 4, 2}, 1)
	var got int64
	_, err := rt.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			return r.Send(1, 1<<20)
		case 1:
			// Recv after a delay: the message arrives first (mailbox path).
			if err := r.Compute(50e-3); err != nil {
				return err
			}
			n, err := r.Recv(0)
			atomic.StoreInt64(&got, n)
			return err
		case 2:
			// Recv first (waiter path).
			n, err := r.Recv(3)
			if n != 2<<20 {
				return fmt.Errorf("rank 2 got %d", n)
			}
			return err
		case 3:
			if err := r.Compute(10e-3); err != nil {
				return err
			}
			return r.Send(2, 2<<20)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1<<20 {
		t.Fatalf("rank 1 received %d", got)
	}
}

func TestRuntimeMessageOrderPreserved(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 2, 2, 2}, 1)
	var sizes []int64
	_, err := rt.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			for i := 1; i <= 3; i++ {
				if err := r.Send(1, int64(i)<<10); err != nil {
					return err
				}
			}
		case 1:
			for i := 0; i < 3; i++ {
				n, err := r.Recv(0)
				if err != nil {
					return err
				}
				sizes = append(sizes, n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{1 << 10, 2 << 10, 3 << 10} {
		if sizes[i] != want {
			t.Fatalf("message order %v", sizes)
		}
	}
}

func TestRuntimeBarrierSynchronizes(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 2, 2, 2}, 1)
	var after int64
	_, err := rt.Run(func(r *Rank) error {
		// Rank 0 computes for 10ms before the barrier; everyone's
		// post-barrier time must be at least that.
		if r.ID() == 0 {
			if err := r.Compute(10e-3); err != nil {
				return err
			}
		}
		if err := r.Barrier(); err != nil {
			return err
		}
		if float64(r.Now()) < 10e-3 {
			atomic.AddInt64(&after, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != 0 {
		t.Fatalf("%d ranks left the barrier before the slowest entered", after)
	}
}

func TestRuntimeDeadlockDetected(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 2, 2, 2}, 1)
	_, err := rt.Run(func(r *Rank) error {
		if r.ID() == 0 {
			_, err := r.Recv(1) // nobody sends
			return err
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock not detected: %v", err)
	}
}

func TestRuntimeContentionSlowsSharedLink(t *testing.T) {
	// Two ranks putting over the same link take twice as long as one.
	shape := torus.Shape{8}
	const bytes = 16 << 20
	run := func(nSenders int) float64 {
		rt, _ := newRT(t, shape, 1)
		end, err := rt.Run(func(r *Rank) error {
			if r.ID() < nSenders {
				return r.Put(r.ID()+4, bytes) // 0->4 and 1->5 share ring links
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(end)
	}
	one := run(1)
	two := run(2)
	if two < one*1.5 {
		t.Fatalf("shared-link contention missing: one %g, two %g", one, two)
	}
}

func TestRuntimeValidation(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 2, 2, 2}, 1)
	_, err := rt.Run(func(r *Rank) error {
		if r.ID() != 0 {
			return nil
		}
		if err := r.Put(-1, 1); err == nil {
			return fmt.Errorf("bad Put dst accepted")
		}
		if err := r.Send(1<<30, 1); err == nil {
			return fmt.Errorf("bad Send dst accepted")
		}
		if _, err := r.Recv(-5); err == nil {
			return fmt.Errorf("bad Recv src accepted")
		}
		if err := r.Compute(-1); err == nil {
			return fmt.Errorf("negative compute accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A ring halo exchange: every rank sends to its +1 neighbor and receives
// from its -1 neighbor, repeatedly — the classic SPMD pattern.
func TestRuntimeHaloExchangeRing(t *testing.T) {
	rt, _ := newRT(t, torus.Shape{2, 2, 4, 4, 2}, 1)
	n := rt.job.NumRanks()
	const steps = 3
	end, err := rt.Run(func(r *Rank) error {
		for s := 0; s < steps; s++ {
			if err := r.Send((r.ID()+1)%n, 256<<10); err != nil {
				return err
			}
			if _, err := r.Recv((r.ID() + n - 1) % n); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("no time elapsed")
	}
	// Every link carried traffic in both... at least the used ring links
	// saw steps * 256KB.
	var total float64
	for _, b := range rt.Engine().LinkBytes() {
		total += b
	}
	if total <= 0 {
		t.Fatal("no link traffic recorded")
	}
}

// The SPMD runtime and the plan-based engine agree: a proxied transfer
// written as a rank program (source sends pieces to proxies, proxies
// forward) matches the planner's throughput.
func TestRuntimeManualProxyTransfer(t *testing.T) {
	rt, p := newRT(t, torus.Shape{2, 2, 4, 4, 2}, 1)
	tor := rt.job.Torus()
	last := tor.Size() - 1
	const piece = 8 << 20
	proxies := []int{int(tor.ID(torus.Coord{0, 1, 0, 0, 0})), int(tor.ID(torus.Coord{0, 0, 1, 0, 0})),
		int(tor.ID(torus.Coord{0, 0, 0, 1, 0})), int(tor.ID(torus.Coord{0, 0, 0, 0, 1}))}
	end, err := rt.Run(func(r *Rank) error {
		switch {
		case r.ID() == 0:
			for _, px := range proxies {
				if err := r.Send(px, piece); err != nil {
					return err
				}
			}
		case inInts(proxies, r.ID()):
			if _, err := r.Recv(0); err != nil {
				return err
			}
			return r.Send(last, piece)
		case r.ID() == last:
			for _, px := range proxies {
				if _, err := r.Recv(px); err != nil {
					return err
				}
			}
		}
		return nil
	})
	_ = p
	if err != nil {
		t.Fatal(err)
	}
	gbps := float64(4*piece) / float64(end) / 1e9
	// Sequential sends at the source serialize the first legs, so this
	// is below the planner's 3.3 GB/s, but must beat a single path.
	if gbps < 1.0 {
		t.Fatalf("manual proxy transfer %.2f GB/s", gbps)
	}
}

func inInts(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
