package mpisim

import "fmt"

// Rank-level collectives: classic algorithms written against the Send/
// Recv primitives, so their cost emerges from the simulated network
// rather than from an analytic price. They complement CollectiveModel
// (fast pricing) and the flow-DAG builders (plan-level) with the version
// an application programmer would write.

// Bcast implements a binomial-tree broadcast over all ranks: root's
// payload of the given size reaches every rank. Every rank must call it
// with the same root and size.
func (r *Rank) Bcast(root int, bytes int64) error {
	n := r.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("mpisim: Bcast root %d", root)
	}
	if bytes < 0 {
		return fmt.Errorf("mpisim: negative Bcast size")
	}
	// Rotate so root is virtual rank 0.
	vr := (r.id - root + n) % n
	abs := func(v int) int { return (v + root) % n }
	// Receive once from the parent, then forward to children.
	if vr != 0 {
		parent := vr
		span := 1
		for parent&span == 0 {
			span <<= 1
		}
		if _, err := r.Recv(abs(vr &^ span)); err != nil {
			return err
		}
	}
	// Children: vr + span for spans above vr's lowest set bit.
	low := vr & (-vr)
	if vr == 0 {
		low = 1 << 62
	}
	// Send in decreasing span order (largest subtree first), matching
	// the binomial broadcast.
	start := 1
	for start < n {
		start <<= 1
	}
	for span := start >> 1; span >= 1; span >>= 1 {
		if span >= low {
			continue
		}
		child := vr + span
		if child < n {
			if err := r.Send(abs(child), bytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reduce implements a binomial-tree reduction to root: every rank
// contributes bytes and the combined payload lands at root. The
// reduction operator itself is free (compute is not modeled here); the
// communication pattern is what costs.
func (r *Rank) Reduce(root int, bytes int64) error {
	n := r.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("mpisim: Reduce root %d", root)
	}
	if bytes < 0 {
		return fmt.Errorf("mpisim: negative Reduce size")
	}
	vr := (r.id - root + n) % n
	abs := func(v int) int { return (v + root) % n }
	// Mirror of Bcast: receive from children smallest span first, then
	// send to the parent.
	low := vr & (-vr)
	if vr == 0 {
		low = 1 << 62
	}
	for span := 1; span < n; span <<= 1 {
		if span >= low {
			break
		}
		child := vr + span
		if child < n {
			if _, err := r.Recv(abs(child)); err != nil {
				return err
			}
		}
	}
	if vr != 0 {
		span := 1
		for vr&span == 0 {
			span <<= 1
		}
		return r.Send(abs(vr&^span), bytes)
	}
	return nil
}

// Allreduce is Reduce to rank 0 followed by Bcast from rank 0.
func (r *Rank) Allreduce(bytes int64) error {
	if err := r.Reduce(0, bytes); err != nil {
		return err
	}
	return r.Bcast(0, bytes)
}

// RingAllgather implements the bandwidth-optimal ring allgather: in n-1
// steps every rank forwards the chunk it just received to its +1
// neighbor, so every rank ends with all n chunks of the given size.
func (r *Rank) RingAllgather(chunkBytes int64) error {
	if chunkBytes < 0 {
		return fmt.Errorf("mpisim: negative RingAllgather size")
	}
	n := r.Size()
	if n == 1 {
		return nil
	}
	next := (r.id + 1) % n
	prev := (r.id + n - 1) % n
	for step := 0; step < n-1; step++ {
		if err := r.Send(next, chunkBytes); err != nil {
			return err
		}
		if _, err := r.Recv(prev); err != nil {
			return err
		}
	}
	return nil
}
