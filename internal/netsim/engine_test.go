package netsim

import (
	"math"
	"math/rand"
	"testing"

	"bgqflow/internal/routing"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

func mira128() *torus.Torus { return torus.MustNew(torus.Shape{2, 2, 4, 4, 2}) }

func newTestEngine(t *testing.T, tor *torus.Torus, p Params) *Engine {
	t.Helper()
	net := NewNetwork(tor, p.LinkBandwidth)
	e, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func approx(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > relTol {
			t.Fatalf("%s = %g, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Fatalf("%s = %g, want %g (tol %g)", name, got, want, relTol)
	}
}

func TestSingleFlowTiming(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	e := newTestEngine(t, tor, p)
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{0, 0, 1, 0, 0}) // 1 hop
	const bytes = 1 << 20
	id := e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: bytes})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(p.SenderOverhead) + bytes/p.PerFlowBandwidth +
		float64(p.ReceiverOverhead) + float64(p.HopLatency)
	approx(t, "makespan", float64(mk), want, 1e-9)
	r := e.Result(id)
	if !r.Done {
		t.Fatal("flow not done")
	}
	if r.Activated <= r.Released && p.SenderOverhead > 0 {
		t.Fatal("activation did not pay sender overhead")
	}
}

func TestTwoFlowsShareOneLinkEqually(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	p.SenderOverhead, p.ReceiverOverhead, p.HopLatency = 0, 0, 0
	p.PerFlowBandwidth = p.LinkBandwidth * 10 // caps off: link is the constraint
	e := newTestEngine(t, tor, p)
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{0, 0, 1, 0, 0})
	const bytes = 10 << 20
	// Same route: both flows share the single +C link.
	e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: bytes})
	e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: bytes})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * bytes / p.LinkBandwidth
	approx(t, "shared-link makespan", float64(mk), want, 1e-9)
}

func TestDisjointFlowsRunAtFullRate(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	p.SenderOverhead, p.ReceiverOverhead, p.HopLatency = 0, 0, 0
	e := newTestEngine(t, tor, p)
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	const bytes = 8 << 20
	// Two flows leaving the same node in different dimensions: disjoint links.
	e.Submit(FlowSpec{Src: src, Dst: tor.ID(torus.Coord{0, 0, 1, 0, 0}), Bytes: bytes})
	e.Submit(FlowSpec{Src: src, Dst: tor.ID(torus.Coord{0, 0, 0, 1, 0}), Bytes: bytes})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes / p.PerFlowBandwidth // both finish together, no sharing
	approx(t, "disjoint makespan", float64(mk), want, 1e-9)
}

func TestMaxMinUnequalShare(t *testing.T) {
	// Three flows: A and B share link L1; B also crosses L2 with C.
	// On a simple path graph, max-min gives everyone 1/2 a link here.
	tor := torus.MustNew(torus.Shape{8})
	p := DefaultParams()
	p.SenderOverhead, p.ReceiverOverhead, p.HopLatency = 0, 0, 0
	p.PerFlowBandwidth = p.LinkBandwidth * 10
	e := newTestEngine(t, tor, p)
	const bytes = 1 << 20
	// Flow A: 0->1 (link 0+). Flow B: 0->2 (links 0+,1+), twice the size.
	// Flow C: 1->2 (link 1+).
	a := e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: bytes})
	b := e.Submit(FlowSpec{Src: 0, Dst: 2, Bytes: 2 * bytes})
	c := e.Submit(FlowSpec{Src: 1, Dst: 2, Bytes: bytes})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// All three start at rate L/2 (both links saturate). A and C finish at
	// 2b/L having moved b; B has moved b and continues alone at the full
	// link rate for its remaining b: ends at 3b/L.
	L := p.LinkBandwidth
	tAC := 2 * bytes / L
	tB := 3 * bytes / L
	approx(t, "A end", float64(e.Result(a).TransferEnd), tAC, 1e-9)
	approx(t, "C end", float64(e.Result(c).TransferEnd), tAC, 1e-9)
	approx(t, "B end", float64(e.Result(b).TransferEnd), tB, 1e-9)
}

func TestPerFlowCapBinds(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	p.SenderOverhead, p.ReceiverOverhead, p.HopLatency = 0, 0, 0
	e := newTestEngine(t, tor, p)
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{0, 0, 1, 0, 0})
	const bytes = 16 << 20
	e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: bytes})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := bytes / p.PerFlowBandwidth // cap < link bandwidth
	approx(t, "capped makespan", float64(mk), want, 1e-9)
}

func TestLocalCopyUsesMemcpyRate(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	p.SenderOverhead, p.ReceiverOverhead = 0, 0
	e := newTestEngine(t, tor, p)
	const bytes = 64 << 20
	e.Submit(FlowSpec{Src: 5, Dst: 5, Bytes: bytes})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "local copy makespan", float64(mk), bytes/p.LocalCopyBandwidth, 1e-9)
}

func TestZeroByteFlowCompletes(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	e := newTestEngine(t, tor, p)
	id := e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: 0})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !e.Result(id).Done {
		t.Fatal("zero-byte flow not done")
	}
	if mk <= 0 {
		t.Fatal("zero-byte flow took zero time (overheads must apply)")
	}
}

func TestDependencyOrdering(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	e := newTestEngine(t, tor, p)
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	mid := tor.ID(torus.Coord{0, 0, 2, 0, 0})
	dst := tor.ID(torus.Coord{0, 0, 2, 2, 0})
	const bytes = 4 << 20
	first := e.Submit(FlowSpec{Src: src, Dst: mid, Bytes: bytes})
	second := e.Submit(FlowSpec{Src: mid, Dst: dst, Bytes: bytes,
		DependsOn: []FlowID{first}, ExtraDelay: p.ProxyForwardOverhead})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	r1, r2 := e.Result(first), e.Result(second)
	if r2.Released != r1.Completed {
		t.Fatalf("dependent released at %v, dependency completed at %v", r2.Released, r1.Completed)
	}
	minGap := float64(p.SenderOverhead + p.ProxyForwardOverhead)
	if float64(r2.Activated-r2.Released) < minGap-1e-12 {
		t.Fatalf("dependent activated %v after release, want >= %v",
			r2.Activated-r2.Released, minGap)
	}
}

func TestDependencyFanOutAndIn(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	e := newTestEngine(t, tor, p)
	root := e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: 1 << 20})
	var mids []FlowID
	for i := 2; i < 6; i++ {
		mids = append(mids, e.Submit(FlowSpec{Src: 1, Dst: torus.NodeID(i * 8), Bytes: 1 << 20, DependsOn: []FlowID{root}}))
	}
	sink := e.Submit(FlowSpec{Src: 48, Dst: 90, Bytes: 1 << 20, DependsOn: mids})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rs := e.Result(sink)
	for _, m := range mids {
		if rs.Released < e.Result(m).Completed {
			t.Fatal("sink released before a dependency completed")
		}
	}
}

func TestForwardDependencyRejected(t *testing.T) {
	// Cycles would require forward references, which Submit forbids:
	// a dependency on a not-yet-submitted flow panics.
	tor := mira128()
	p := DefaultParams()
	e := newTestEngine(t, tor, p)
	a := e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("forward dependency accepted")
		}
	}()
	e.Submit(FlowSpec{Src: 1, Dst: 2, Bytes: 1, DependsOn: []FlowID{a, FlowID(2)}})
}

func TestUnknownDependencyPanics(t *testing.T) {
	tor := mira128()
	e := newTestEngine(t, tor, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dependency accepted")
		}
	}()
	e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: 1, DependsOn: []FlowID{99}})
}

func TestNegativeBytesPanics(t *testing.T) {
	tor := mira128()
	e := newTestEngine(t, tor, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("negative size accepted")
		}
	}()
	e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: -5})
}

func TestExtraLinkFlows(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	p.SenderOverhead, p.ReceiverOverhead, p.HopLatency = 0, 0, 0
	net := NewNetwork(tor, p.LinkBandwidth)
	ion := net.AddLink("bridge0->ion0", p.IONLinkBandwidth)
	e, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	bridge := tor.ID(torus.Coord{0, 0, 1, 0, 0})
	route := routing.DeterministicRoute(tor, src, bridge)
	links := append(append([]int(nil), route.Links...), ion)
	const bytes = 32 << 20
	// Two flows over the same ION link contend there.
	e.Submit(FlowSpec{Src: src, Dst: bridge, Bytes: bytes, Links: links})
	e.Submit(FlowSpec{Src: tor.ID(torus.Coord{0, 1, 0, 0, 0}), Dst: bridge, Bytes: bytes,
		Links: append(append([]int(nil), routing.DeterministicRoute(tor, tor.ID(torus.Coord{0, 1, 0, 0, 0}), bridge).Links...), ion)})
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * bytes / p.IONLinkBandwidth
	approx(t, "ION-shared makespan", float64(mk), want, 1e-9)
}

func TestLinkBytesConservation(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	e := newTestEngine(t, tor, p)
	rng := rand.New(rand.NewSource(5))
	type sub struct {
		bytes int64
		hops  int
	}
	var subs []sub
	for i := 0; i < 40; i++ {
		src := torus.NodeID(rng.Intn(tor.Size()))
		dst := torus.NodeID(rng.Intn(tor.Size()))
		bytes := int64(rng.Intn(1<<22) + 1)
		e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: bytes})
		subs = append(subs, sub{bytes, tor.HopDistance(src, dst)})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, s := range subs {
		want += float64(s.bytes) * float64(s.hops)
	}
	var got float64
	for _, b := range e.LinkBytes() {
		got += b
	}
	approx(t, "total link bytes", got, want, 1e-6)
}

func TestLinkBytesNeverExceedCapacityTimesTime(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	e := newTestEngine(t, tor, p)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		e.Submit(FlowSpec{
			Src:   torus.NodeID(rng.Intn(tor.Size())),
			Dst:   torus.NodeID(rng.Intn(tor.Size())),
			Bytes: int64(rng.Intn(1<<23) + 1),
		})
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for l, b := range e.LinkBytes() {
		max := e.Network().Capacity(l) * float64(mk) * (1 + 1e-9)
		if b > max {
			t.Fatalf("link %d carried %g bytes, exceeds capacity*makespan %g", l, b, max)
		}
	}
}

// Integration: the store-and-forward mechanics of the paper's Fig. 5 at
// small scale. A large message split over 4 link-disjoint proxy paths (two
// dependent legs each) should roughly double throughput versus the direct
// single path; a small message should not benefit. Routes are built by
// hand here; the paper's placement heuristic lives in package core.
func TestProxyTransferBeatsDirectForLargeMessages(t *testing.T) {
	direct := runPointToPoint(t, 128<<20, false)
	proxied := runPointToPoint(t, 128<<20, true)
	gain := proxied / direct
	if gain < 1.7 || gain > 2.3 {
		t.Fatalf("large-message proxy gain = %.2f, want ~2x", gain)
	}

	directSmall := runPointToPoint(t, 16<<10, false)
	proxiedSmall := runPointToPoint(t, 16<<10, true)
	if proxiedSmall >= directSmall {
		t.Fatalf("small message should not benefit from proxies: direct %.3g, proxy %.3g",
			directSmall, proxiedSmall)
	}
}

// runPointToPoint moves bytes from (0,0) to (2,1) on a 4x4 torus, either
// directly or via 4 proxies over hand-built link-disjoint two-leg routes.
func runPointToPoint(t *testing.T, bytes int64, useProxies bool) float64 {
	t.Helper()
	tor := torus.MustNew(torus.Shape{4, 4})
	p := DefaultParams()
	e := newTestEngine(t, tor, p)
	id := func(a, b int) torus.NodeID { return tor.ID(torus.Coord{a, b}) }
	link := func(a, b, dim int, dir torus.Direction) int { return tor.LinkID(id(a, b), dim, dir) }
	src, dst := id(0, 0), id(2, 1)
	if !useProxies {
		e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: bytes})
	} else {
		type legs struct {
			proxy torus.NodeID
			l1    []int
			l2    []int
		}
		routes := []legs{
			// P1=(0,1): out +B; in via +A at (1,1)->(2,1).
			{id(0, 1), []int{link(0, 0, 1, torus.Plus)},
				[]int{link(0, 1, 0, torus.Plus), link(1, 1, 0, torus.Plus)}},
			// P2=(0,3): out -B; A+ on row 3, then in via -B (2,3)->(2,2)->(2,1).
			{id(0, 3), []int{link(0, 0, 1, torus.Minus)},
				[]int{link(0, 3, 0, torus.Plus), link(1, 3, 0, torus.Plus),
					link(2, 3, 1, torus.Minus), link(2, 2, 1, torus.Minus)}},
			// P3=(1,0): out +A; A+ then in via +B at (2,0)->(2,1).
			{id(1, 0), []int{link(0, 0, 0, torus.Plus)},
				[]int{link(1, 0, 0, torus.Plus), link(2, 0, 1, torus.Plus)}},
			// P4=(3,0): out -A; B+ on column... then in via -A (3,1)->(2,1).
			{id(3, 0), []int{link(0, 0, 0, torus.Minus)},
				[]int{link(3, 0, 1, torus.Plus), link(3, 1, 0, torus.Minus)}},
		}
		// Sanity: all routes pairwise link-disjoint.
		seen := map[int]bool{}
		for _, r := range routes {
			for _, l := range append(append([]int(nil), r.l1...), r.l2...) {
				if seen[l] {
					t.Fatalf("test routes share link %d", l)
				}
				seen[l] = true
			}
		}
		per := bytes / int64(len(routes))
		rem := bytes - per*int64(len(routes))
		for i, r := range routes {
			sz := per
			if i == 0 {
				sz += rem
			}
			leg1 := e.Submit(FlowSpec{Src: src, Dst: r.proxy, Bytes: sz, Links: r.l1})
			e.Submit(FlowSpec{Src: r.proxy, Dst: dst, Bytes: sz, Links: r.l2,
				DependsOn: []FlowID{leg1}, ExtraDelay: p.ProxyForwardOverhead})
		}
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return Throughput(bytes, mk)
}

func TestSubmitAfterRunPanics(t *testing.T) {
	tor := mira128()
	e := newTestEngine(t, tor, DefaultParams())
	e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: 1})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Run accepted")
		}
	}()
	e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: 1})
}

func TestInvalidParamsRejected(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	p.LinkBandwidth = 0
	net := NewNetwork(tor, 1)
	if _, err := NewEngine(net, p); err == nil {
		t.Fatal("zero link bandwidth accepted")
	}
	p = DefaultParams()
	p.SenderOverhead = -1
	if _, err := NewEngine(net, p); err == nil {
		t.Fatal("negative overhead accepted")
	}
}

func TestThroughputHelper(t *testing.T) {
	if Throughput(100, 0) != 0 {
		t.Fatal("zero duration should report zero throughput")
	}
	if got := Throughput(1<<30, sim.Duration(1)); got != float64(1<<30) {
		t.Fatalf("Throughput = %g", got)
	}
}

// Property-like stress: random DAGs of flows complete, makespan respects
// simple lower bounds.
func TestRandomDAGsComplete(t *testing.T) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		p := DefaultParams()
		e := newTestEngine(t, tor, p)
		n := rng.Intn(80) + 20
		var ids []FlowID
		var totalBytes int64
		var maxSingle float64
		for i := 0; i < n; i++ {
			var deps []FlowID
			if len(ids) > 0 && rng.Intn(2) == 0 {
				for d := 0; d < rng.Intn(3); d++ {
					deps = append(deps, ids[rng.Intn(len(ids))])
				}
			}
			bytes := int64(rng.Intn(1 << 22))
			totalBytes += bytes
			lower := float64(bytes) / p.PerFlowBandwidth
			if lower > maxSingle {
				maxSingle = lower
			}
			ids = append(ids, e.Submit(FlowSpec{
				Src:       torus.NodeID(rng.Intn(tor.Size())),
				Dst:       torus.NodeID(rng.Intn(tor.Size())),
				Bytes:     bytes,
				DependsOn: deps,
			}))
		}
		mk, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if float64(mk) < maxSingle {
			t.Fatalf("makespan %g below single-flow lower bound %g", float64(mk), maxSingle)
		}
		for _, id := range ids {
			r := e.Result(id)
			if !r.Done {
				t.Fatalf("flow %d not done", id)
			}
			if r.TransferEnd < r.Activated || r.Completed < r.TransferEnd {
				t.Fatalf("flow %d timeline out of order: %+v", id, r)
			}
		}
	}
}

func BenchmarkEngineConvergingFlows(b *testing.B) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		net := NewNetwork(tor, p.LinkBandwidth)
		e, _ := NewEngine(net, p)
		dst := torus.NodeID(0)
		for s := 1; s < tor.Size(); s++ {
			e.Submit(FlowSpec{Src: torus.NodeID(s), Dst: dst, Bytes: 1 << 20})
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
