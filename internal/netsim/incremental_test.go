package netsim

import (
	"fmt"
	"testing"

	"bgqflow/internal/obs"
	"bgqflow/internal/sim"
)

// Incremental-vs-global sweep tests: the incremental waterfill
// (DESIGN.md §13) must produce runs indistinguishable from the global
// engine while touching only the links whose bottleneck level can
// actually change. The check package's differential suites cover random
// scenarios; the tests here pin the hand-constructed shapes the cutoff
// rules were derived from.

// twinRun executes the same build on two engines over identical fresh
// networks — one in the default incremental mode, one pinned to the
// global sweep — and returns both after Run.
func twinRun(t *testing.T, p Params, build func(e *Engine)) (inc, glb *Engine) {
	t.Helper()
	var out [2]*Engine
	for i, mode := range []SweepMode{SweepIncremental, SweepGlobal} {
		e := newTestEngine(t, mira128(), p)
		e.SetSweepMode(mode)
		build(e)
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		out[i] = e
	}
	return out[0], out[1]
}

// requireIdenticalRuns diffs two finished engines. Flow timelines must
// match bit-for-bit. Link byte counters must match bit-for-bit when
// exactBytes is set — which holds whenever both modes charge progress at
// the same instants; when the incremental engine legitimately skips
// charging flows outside its region, the final remaining-top-up at
// transferEnd rounds differently, so the counters only agree to
// relative rounding noise.
func requireIdenticalRuns(t *testing.T, inc, glb *Engine, exactBytes bool) {
	t.Helper()
	if inc.NumFlows() != glb.NumFlows() {
		t.Fatalf("flow counts diverged: %d vs %d", inc.NumFlows(), glb.NumFlows())
	}
	for i := 0; i < inc.NumFlows(); i++ {
		if a, b := inc.Result(FlowID(i)), glb.Result(FlowID(i)); a != b {
			t.Fatalf("flow %d diverged:\nincremental %+v\nglobal      %+v", i, a, b)
		}
	}
	ib, gb := inc.LinkBytes(), glb.LinkBytes()
	for l := range ib {
		if exactBytes {
			if ib[l] != gb[l] {
				t.Fatalf("link %d: incremental %g bytes, global %g", l, ib[l], gb[l])
			}
		} else {
			approx(t, fmt.Sprintf("link %d bytes", l), ib[l], gb[l], 1e-9)
		}
	}
}

// sweepLog records every SweepDone emission; the other sink events are
// ignored.
type sweepLog struct {
	times []sim.Time
	flows []int
	links []int
	full  []bool
}

var _ obs.Sink = (*sweepLog)(nil)

func (s *sweepLog) FlowActivated(now sim.Time, id int, label string) {}
func (s *sweepLog) FlowEnded(now, activated sim.Time, id int, label string, bytes int64, aborted bool) {
}
func (s *sweepLog) LinkWindow(link int, from, to sim.Time, bytes float64)         {}
func (s *sweepLog) FailureApplied(now sim.Time, node int, isNode bool, links int) {}
func (s *sweepLog) SweepDone(now sim.Time, flows, links int, full bool) {
	s.times = append(s.times, now)
	s.flows = append(s.flows, flows)
	s.links = append(s.links, links)
	s.full = append(s.full, full)
}

// TestIncrementalCutoffScopesRegion pins the tentpole's payoff shape: a
// mid-run arrival on a lightly loaded link re-levels only the links
// whose bottleneck level can change, not the whole connected component.
// Six chain flows C_i on links {i, i+1} couple links 0..6 into one
// component at a uniform level (every interior link saturated at
// cap/2). A later arrival on link 0 fits exactly under that level: the
// incremental region must stop at link 1 — link 1 stays saturated at an
// unchanged level, so no rule fires — while the global engine re-levels
// all seven links. Results must still be bit-identical.
func TestIncrementalCutoffScopesRegion(t *testing.T) {
	p := DefaultParams()
	p.PerFlowBandwidth = p.LinkBandwidth // links, not endpoint caps, bind
	const chain = 6
	logs := map[SweepMode]*sweepLog{}
	inc, glb := twinRun(t, p, func(e *Engine) {
		sl := &sweepLog{}
		logs[e.SweepMode()] = sl
		e.SetSink(sl)
		for i := 0; i < chain; i++ {
			e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: 8 << 20, Links: []int{i, i + 1}})
		}
		e.Submit(FlowSpec{Src: 2, Dst: 3, Bytes: 1 << 20, Links: []int{0}, ExtraDelay: 100e-6})
	})
	requireIdenticalRuns(t, inc, glb, false)
	if full, _ := inc.SweepStats(); full != 0 {
		t.Fatalf("incremental engine fell back to %d full sweeps", full)
	}
	// Sweep 0 is the t=0 activation batch; sweep 1 is the arrival.
	il, gl := logs[SweepIncremental], logs[SweepGlobal]
	if len(il.links) < 2 || len(gl.links) < 2 {
		t.Fatalf("sweep logs too short: %d incremental, %d global", len(il.links), len(gl.links))
	}
	if il.flows[1] != 2 || il.links[1] != 2 {
		t.Fatalf("incremental arrival sweep touched %d flows / %d links, want 2 / 2 (the arrival, C0, links 0-1)",
			il.flows[1], il.links[1])
	}
	if gl.flows[1] != chain+1 || gl.links[1] != chain+1 {
		t.Fatalf("global arrival sweep touched %d flows / %d links, want the whole chain (%d / %d)",
			gl.flows[1], gl.links[1], chain+1, chain+1)
	}
}

// TestIncrementalSqueezeRipplesToNeighbors pins the opposite case: when
// locality would be wrong, the audit rules must expand the region. Link
// b carries w, d1, d2; link c carries d2, z1, z2, z3 (c binds first, so
// w and d1 split b's leftover above c's level). When z1 finishes, only
// c's flows are seeded — but d2's rise saturates b at a level below w
// and d1's rates, the squeeze rule marks them, and round two re-levels
// the whole component. The run must match the global engine bit-for-bit
// on every flow timeline, with no fallback to a full sweep.
func TestIncrementalSqueezeRipplesToNeighbors(t *testing.T) {
	p := DefaultParams()
	p.PerFlowBandwidth = p.LinkBandwidth
	const b, c = 3, 7 // any two distinct torus links
	logs := map[SweepMode]*sweepLog{}
	inc, glb := twinRun(t, p, func(e *Engine) {
		sl := &sweepLog{}
		logs[e.SweepMode()] = sl
		e.SetSink(sl)
		e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: 8 << 20, Links: []int{b}})    // w
		e.Submit(FlowSpec{Src: 2, Dst: 3, Bytes: 8 << 20, Links: []int{b}})    // d1
		e.Submit(FlowSpec{Src: 4, Dst: 5, Bytes: 8 << 20, Links: []int{b, c}}) // d2
		e.Submit(FlowSpec{Src: 6, Dst: 7, Bytes: 64 << 10, Links: []int{c}})   // z1, finishes first
		e.Submit(FlowSpec{Src: 8, Dst: 9, Bytes: 8 << 20, Links: []int{c}})    // z2
		e.Submit(FlowSpec{Src: 10, Dst: 11, Bytes: 8 << 20, Links: []int{c}})  // z3
	})
	requireIdenticalRuns(t, inc, glb, false)
	if full, _ := inc.SweepStats(); full != 0 {
		t.Fatalf("incremental engine fell back to %d full sweeps", full)
	}
	// Sweep 1 is z1's departure: the seed is c's three survivors, and the
	// squeeze rule must pull in w and d1 — five flows, both links.
	il := logs[SweepIncremental]
	if len(il.flows) < 2 {
		t.Fatalf("sweep log too short: %d sweeps", len(il.flows))
	}
	if il.flows[1] != 5 || il.links[1] != 2 {
		t.Fatalf("departure sweep touched %d flows / %d links, want 5 / 2 (squeeze must ripple to w and d1)",
			il.flows[1], il.links[1])
	}
	if il.full[1] {
		t.Fatal("departure sweep fell back to a full re-level; the squeeze rule should converge incrementally")
	}
}
