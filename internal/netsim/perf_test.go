package netsim

import (
	"testing"

	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

// drain steps the interactive clock until no events remain.
func drain(e *Engine) {
	for e.StepClock() {
	}
}

// BenchmarkEngineSubmitRelease measures the steady-state cost of pushing
// one flow through its whole lifecycle (submit, release, activate,
// transfer, finish) on a warm engine: cached route, arena-backed flow
// struct, freelisted clock events, reused waterfill scratch.
func BenchmarkEngineSubmitRelease(b *testing.B) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	e, err := NewEngine(NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		b.Fatal(err)
	}
	e.BeginInteractive()
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	// Warm caches, scratch, and the event freelist.
	e.Reserve(64 + b.N)
	for i := 0; i < 64; i++ {
		e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 1 << 20})
		drain(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 1 << 20})
		drain(e)
	}
}

// TestSubmitReleaseZeroAlloc is the allocation regression guard for the
// engine hot path: once routes are cached and capacity is reserved,
// driving a flow from Submit to completion must not allocate at all.
func TestSubmitReleaseZeroAlloc(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	e, err := NewEngine(NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	e.BeginInteractive()
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	const runs = 100
	e.Reserve(64 + runs + 8)
	for i := 0; i < 64; i++ {
		e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 1 << 20})
		drain(e)
	}
	avg := testing.AllocsPerRun(runs, func() {
		e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 1 << 20})
		drain(e)
	})
	if avg != 0 {
		t.Fatalf("steady-state Submit/release allocates %.2f objects/op, want 0", avg)
	}
}

// TestFailLinkPurgesRouteCache covers the route cache's invalidation rule
// (DESIGN.md §8): every failure event purges the memoized routes and
// bumps the failure epoch — no pre-failure entry survives — while the
// cache stays enabled so post-failure lookups repopulate it. The engine's
// fail-stop check still fires on default routes over the dead link, and
// the planning layer's fault-aware routes still submit cleanly.
func TestFailLinkPurgesRouteCache(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	net := NewNetwork(tor, p.LinkBandwidth)
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)

	// Warm the cache through both entry points.
	def := net.Route(src, dst)
	if net.RouteCache().Len() == 0 {
		t.Fatal("route cache not populated")
	}
	if !net.RouteCache().Enabled() {
		t.Fatal("route cache should start enabled")
	}

	net.FailLink(def.Links[0])

	if net.RouteCache().Len() != 0 {
		t.Fatalf("FailLink left %d cached routes behind", net.RouteCache().Len())
	}
	if !net.RouteCache().Enabled() {
		t.Fatal("a failure event must not permanently disable the cache")
	}
	if net.RouteCache().Epoch() != 1 {
		t.Fatalf("epoch = %d after one failure event, want 1", net.RouteCache().Epoch())
	}

	// Lookups resume and repopulate the cache from post-failure state;
	// a second failure event must purge again (the regression this test
	// pins: invalidation is per event, not once).
	net.Route(src, torus.NodeID(3))
	if net.RouteCache().Len() == 0 {
		t.Fatal("post-failure lookups must repopulate the cache")
	}
	net.FailLink(def.Links[1])
	if net.RouteCache().Len() != 0 {
		t.Fatal("second failure event did not purge the repopulated cache")
	}
	if net.RouteCache().Epoch() != 2 {
		t.Fatalf("epoch = %d after two failure events, want 2", net.RouteCache().Epoch())
	}

	// Default-route submission over the failed link must still fail stop.
	e, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Submit over failed link did not panic")
			}
		}()
		e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 1 << 20})
	}()

	// The fault-aware planning path still works and is never cached.
	r, err := routing.RouteAvoiding(tor, src, dst, net.FailedFunc())
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	e2.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 1 << 20, Links: r.Links})
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	// Post-failure cache entries are legitimate: the memoized default
	// routes are pure functions of the unchanged topology.
	want := routing.DeterministicRoute(tor, src, dst).Links
	got := net.Route(src, dst).Links
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-failure cached route diverges at hop %d", i)
		}
	}
}

// TestRouteCacheSharedAcrossEngines checks that successive engines over
// one network reuse the same memoized routes (the per-run reuse the
// experiment rigs rely on) and that cached and fresh routes agree.
func TestRouteCacheSharedAcrossEngines(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	net := NewNetwork(tor, p.LinkBandwidth)
	src, dst := torus.NodeID(1), torus.NodeID(100)
	for i := 0; i < 3; i++ {
		e, err := NewEngine(net, p)
		if err != nil {
			t.Fatal(err)
		}
		id := e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 4 << 10})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		want := routing.DeterministicRoute(tor, src, dst).Links
		got := e.FlowRouteLinks(id)
		if len(got) != len(want) {
			t.Fatalf("engine %d: %d hops, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("engine %d: cached route differs at hop %d", i, j)
			}
		}
	}
	hits, _ := net.RouteCache().Stats()
	if hits < 2 {
		t.Fatalf("route cache hits = %d, want >= 2 (reuse across engines)", hits)
	}
}
