package netsim

import (
	"math"
	"testing"

	"bgqflow/internal/routing"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// Dynamic fault injection: time-scheduled link and node failures abort
// exactly the in-flight flows whose routes cross the dead links, at the
// failure instant, and the engine reports per-flow outcomes instead of
// rejecting only at submit.

func TestFailLinkAtAbortsInFlightFlow(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	net := NewNetwork(tor, p.LinkBandwidth)
	e, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	def := routing.DeterministicRoute(tor, src, dst)

	// 64 MB at ~1.6 GB/s is ~40 ms; fail a route link at 10 ms.
	const failAt = sim.Time(10e-3)
	victim := e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 64 << 20})
	bystander := e.Submit(FlowSpec{Src: torus.NodeID(1), Dst: torus.NodeID(3), Bytes: 1 << 20})
	e.FailLinkAt(def.Links[2], failAt)

	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	vr := e.Result(victim)
	if vr.Done || !vr.Aborted {
		t.Fatalf("victim outcome done=%v aborted=%v, want aborted", vr.Done, vr.Aborted)
	}
	if vr.AbortTime != failAt {
		t.Fatalf("victim aborted at %g, want the failure instant %g", float64(vr.AbortTime), float64(failAt))
	}
	br := e.Result(bystander)
	if !br.Done || br.Aborted {
		t.Fatal("bystander flow off the failed link must complete")
	}
	done, aborted := e.Outcomes()
	if done != 1 || aborted != 1 {
		t.Fatalf("outcomes done=%d aborted=%d, want 1/1", done, aborted)
	}
}

func TestFailureCascadesToDependents(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	net := NewNetwork(tor, p.LinkBandwidth)
	e, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	src, mid, dst := torus.NodeID(0), torus.NodeID(5), torus.NodeID(tor.Size()-1)
	leg1Route := routing.DeterministicRoute(tor, src, mid)
	leg1 := e.Submit(FlowSpec{Src: src, Dst: mid, Bytes: 32 << 20, Links: leg1Route.Links})
	leg2 := e.Submit(FlowSpec{Src: mid, Dst: dst, Bytes: 32 << 20, DependsOn: []FlowID{leg1}})
	e.FailLinkAt(leg1Route.Links[0], 5e-3)

	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Result(leg1).Aborted {
		t.Fatal("leg1 crossing the failed link must abort")
	}
	r2 := e.Result(leg2)
	if !r2.Aborted {
		t.Fatal("dependent leg2 can never release; it must cascade-abort")
	}
	if r2.AbortTime != e.Result(leg1).AbortTime {
		t.Fatal("cascade must abort at the same failure instant")
	}
}

func TestDrainingFlowSurvivesLateFailure(t *testing.T) {
	// The last byte leaves the wire before the failure; the receiver
	// drain does not use the link, so the flow completes.
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	net := NewNetwork(tor, p.LinkBandwidth)
	e, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := torus.NodeID(0), torus.NodeID(3)
	def := routing.DeterministicRoute(tor, src, dst)
	// 1 KB transfers in well under a millisecond; fail at 1 s.
	id := e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 1 << 10})
	e.FailLinkAt(def.Links[0], 1.0)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r := e.Result(id); !r.Done || r.Aborted {
		t.Fatalf("flow done=%v aborted=%v, want completed before the failure", r.Done, r.Aborted)
	}
}

func TestFailureFreesCapacityForSurvivors(t *testing.T) {
	// Two flows share one link's capacity; when a failure elsewhere kills
	// one of them, the survivor must speed up from the abort instant.
	tor := torus.MustNew(torus.Shape{8})
	p := DefaultParams()
	p.PerFlowBandwidth = p.LinkBandwidth // endpoint cap off: shared link binds
	net := NewNetwork(tor, p.LinkBandwidth)
	e, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	shared := tor.LinkID(0, 0, torus.Plus)
	second := tor.LinkID(1, 0, torus.Plus)
	const bytes = 64 << 20
	survivor := e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: bytes, Links: []int{shared}})
	victim := e.Submit(FlowSpec{Src: 0, Dst: 2, Bytes: bytes, Links: []int{shared, second}})
	const failAt = sim.Time(10e-3)
	e.FailLinkAt(second, failAt)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Result(victim).Aborted {
		t.Fatal("victim must abort")
	}
	sr := e.Result(survivor)
	if !sr.Done {
		t.Fatal("survivor must complete")
	}
	// Half rate until failAt, full rate after: finish = failAt + (bytes -
	// B/2*failAt)/B, plus endpoint overheads.
	B := p.LinkBandwidth
	sent := B / 2 * (float64(failAt) - float64(p.SenderOverhead))
	wantWire := float64(failAt) + (bytes-sent)/B
	got := float64(sr.TransferEnd)
	if math.Abs(got-wantWire) > 1e-4 {
		t.Fatalf("survivor transfer end %.6f, want ~%.6f (freed capacity not reused)", got, wantWire)
	}
}

func TestFailNodeIsolatesNode(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	net := NewNetwork(tor, p.LinkBandwidth)
	victim := torus.NodeID(17)
	net.FailNode(victim)
	if !net.NodeFailed(victim) {
		t.Fatal("node not marked failed")
	}
	for _, l := range net.NodeLinks(victim) {
		if !net.LinkFailed(l) {
			t.Fatalf("node link %s survived FailNode", net.LinkName(l))
		}
	}
	// 10 outgoing + 10 incoming directed torus links on a 5-D torus
	// (fewer distinct ones along extent-2 dimensions, where the two
	// neighbors coincide but the directed links do not).
	if n := len(net.NodeLinks(victim)); n != 4*tor.Dims() {
		t.Fatalf("NodeLinks returned %d links, want %d", n, 4*tor.Dims())
	}
	// No avoiding route between healthy endpoints traverses the node.
	failed := net.FailedFunc()
	r, err := routing.RouteAvoiding(tor, 0, torus.NodeID(tor.Size()-1), failed)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range r.Links {
		from, _, _ := tor.LinkFrom(l)
		if from == victim {
			t.Fatal("avoiding route leaves the failed node")
		}
		if net.LinkFailed(l) {
			t.Fatal("avoiding route crosses a failed link")
		}
	}
}

func TestFailNodeAtAbortsFlowsThroughNode(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	net := NewNetwork(tor, p.LinkBandwidth)
	e, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	def := routing.DeterministicRoute(tor, src, dst)
	// Pick the node in the middle of the default route.
	from, _, _ := tor.LinkFrom(def.Links[len(def.Links)/2])
	id := e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 64 << 20})
	var observed int
	e.SetFailureObserver(func(now sim.Time, node torus.NodeID, isNode bool, links []int) {
		observed++
		if !isNode || node != from {
			t.Errorf("observer saw node=%d isNode=%v, want node %d", node, isNode, from)
		}
	})
	e.FailNodeAt(from, 5e-3)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.Result(id).Aborted {
		t.Fatal("flow through the failed node must abort")
	}
	if observed != 1 {
		t.Fatalf("failure observer ran %d times, want 1", observed)
	}
}

func TestScheduledFailureInInteractiveMode(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	net := NewNetwork(tor, p.LinkBandwidth)
	e, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	if e.Interactive() {
		t.Fatal("fresh engine must not report interactive")
	}
	e.BeginInteractive()
	if !e.Interactive() {
		t.Fatal("Interactive() false after BeginInteractive")
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	def := routing.DeterministicRoute(tor, src, dst)
	id := e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 64 << 20})
	e.FailLinkAt(def.Links[1], 5e-3)
	for e.StepClock() {
		r := e.Result(id)
		if r.Done || r.Aborted {
			break
		}
	}
	if !e.Result(id).Aborted {
		t.Fatal("interactive flow over the failed link must abort")
	}
	// The submit-time fail-stop check still holds after the event.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Submit over the dead link did not panic")
			}
		}()
		e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 1 << 10, Links: def.Links})
	}()
}

func TestRepeatedFailureEventsAreIdempotent(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	net := NewNetwork(tor, p.LinkBandwidth)
	e, err := NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	def := routing.DeterministicRoute(tor, src, dst)
	id := e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 64 << 20})
	e.FailLinkAt(def.Links[1], 5e-3)
	e.FailLinkAt(def.Links[1], 6e-3) // same link again: no double abort
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Result(id); !got.Aborted || got.AbortTime != 5e-3 {
		t.Fatalf("aborted=%v at %g, want abort at the first event", got.Aborted, float64(got.AbortTime))
	}
	_, aborted := e.Outcomes()
	if aborted != 1 {
		t.Fatalf("aborted count %d after repeated events, want 1", aborted)
	}
}

// TestSameInstantSubmitsAndFailureOneSweep pins the same-instant
// batching contract under faults: N simultaneous activations mixed with
// a failure at the same virtual time coalesce into ONE sweep at that
// instant, and the incremental result is bit-identical to the global
// engine's — byte counters included. Both event orderings are covered:
// the failure firing before the activations (victims die while still
// paying sender overhead) and after (victims activate, then abort
// mid-instant).
func TestSameInstantSubmitsAndFailureOneSweep(t *testing.T) {
	const (
		nSurvivors = 6
		nVictims   = 4
		bytes      = 1 << 20
	)
	for _, failFirst := range []bool{true, false} {
		name := "failure-after-activations"
		if failFirst {
			name = "failure-before-activations"
		}
		t.Run(name, func(t *testing.T) {
			p := DefaultParams()
			failAt := sim.Time(p.SenderOverhead) // exactly the activation instant
			logs := map[SweepMode]*sweepLog{}
			build := func(e *Engine) {
				sl := &sweepLog{}
				logs[e.SweepMode()] = sl
				e.SetSink(sl)
				submit := func() {
					for i := 0; i < nSurvivors; i++ {
						e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: bytes, Links: []int{20, 21}})
					}
					for i := 0; i < nVictims; i++ {
						e.Submit(FlowSpec{Src: 2, Dst: 3, Bytes: bytes, Links: []int{10, 11}})
					}
				}
				if failFirst {
					e.FailLinkAt(10, failAt)
					submit()
				} else {
					submit()
					e.FailLinkAt(10, failAt)
				}
			}
			inc, glb := twinRun(t, p, build)
			requireIdenticalRuns(t, inc, glb, true)

			for i := 0; i < nSurvivors; i++ {
				if r := inc.Result(FlowID(i)); !r.Done || r.Aborted {
					t.Fatalf("survivor %d: %+v, want done", i, r)
				}
			}
			for i := nSurvivors; i < nSurvivors+nVictims; i++ {
				r := inc.Result(FlowID(i))
				if !r.Aborted || r.AbortTime != failAt {
					t.Fatalf("victim %d: %+v, want aborted at %g", i, r, float64(failAt))
				}
			}
			// The six survivors share both links: rate cap/6 each.
			r0 := inc.Result(FlowID(0))
			approx(t, "survivor transfer span",
				float64(r0.TransferEnd-r0.Activated), bytes/(p.LinkBandwidth/nSurvivors), 1e-9)

			for mode, sl := range logs {
				atInstant := 0
				for _, at := range sl.times {
					if at == failAt {
						atInstant++
					}
				}
				if atInstant != 1 {
					t.Fatalf("mode %d: %d sweeps at the mixed instant, want exactly 1 (times %v)",
						mode, atInstant, sl.times)
				}
			}
			il := logs[SweepIncremental]
			if il.flows[0] != nSurvivors {
				t.Fatalf("batched sweep covered %d flows, want the %d survivors", il.flows[0], nSurvivors)
			}
			if full, incr := inc.SweepStats(); full != 0 || incr == 0 {
				t.Fatalf("incremental engine sweeps: %d full / %d incremental, want 0 full", full, incr)
			}
		})
	}
}
