package netsim

import (
	"fmt"
	"math"

	"bgqflow/internal/obs"
	"bgqflow/internal/sim"
	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
)

// FlowID identifies a flow submitted to an Engine.
type FlowID int

// FlowSpec describes one message transfer.
type FlowSpec struct {
	// Src and Dst are the endpoint nodes. If they are equal the flow is a
	// node-local copy and uses no links.
	Src, Dst torus.NodeID

	// Bytes is the message size. Zero-byte flows complete after their
	// endpoint overheads; they are useful as pure synchronization points.
	Bytes int64

	// Links is the route. When nil and Src != Dst, the engine computes
	// the BG/Q default deterministic route. Callers building I/O flows
	// append extra link IDs (bridge-to-ION links) explicitly.
	Links []int

	// DependsOn lists flows that must complete before this flow is
	// released. This expresses store-and-forward: a proxy's second-leg
	// flow depends on the corresponding first-leg flow.
	DependsOn []FlowID

	// ExtraDelay is charged once at release time in addition to the
	// sender overhead; transfer plans use it for the user-space proxy
	// forwarding cost.
	ExtraDelay sim.Duration

	// Label tags the flow in results and diagnostics.
	Label string

	// OnComplete, when set, runs as the flow completes (after the
	// receiver overhead, before dependents are released). Used by the
	// SPMD runtime to unblock rank goroutines.
	OnComplete func()
}

// FlowResult reports the timeline of a completed or aborted flow.
type FlowResult struct {
	Released    sim.Time // dependencies satisfied
	Activated   sim.Time // sender overhead paid, transfer started
	TransferEnd sim.Time // last byte left the wire
	Completed   sim.Time // receiver overhead paid, dependents released
	Bytes       int64
	Done        bool
	// Aborted reports that the flow was cut by a failure event — its
	// route crossed a link that failed while the flow was in flight (or
	// pending), or one of its dependencies aborted. AbortTime is the
	// failure instant. Done and Aborted are mutually exclusive; a flow
	// whose transfer had already left the wire (draining) completes.
	Aborted   bool
	AbortTime sim.Time
}

type flowState uint8

const (
	statePending  flowState = iota // waiting on dependencies
	stateDelayed                   // released, paying sender overhead
	stateActive                    // transferring
	stateDraining                  // transfer done, paying receiver overhead
	stateDone
	stateAborted // cut by a failure event
)

// flowEvent names the clock event a flow is waiting on. Each flow has at
// most one pending timer at a time (release -> activate, transfer end ->
// finish, or the rate-dependent end of an active transfer), so a single
// kind field on the flow is enough for the engine's allocation-free event
// dispatch (sim.Callback).
type flowEvent uint8

const (
	evActivate flowEvent = iota
	evTransferEnd
	evFinish
)

type flow struct {
	id         FlowID
	spec       FlowSpec
	links      []int
	unmetDeps  int
	dependents []FlowID
	state      flowState
	next       flowEvent // which event the pending timer fires
	remaining  float64   // bytes left to transfer
	rate       float64   // current allocation, bytes/second
	cap        float64   // per-flow rate cap
	lastUpdate sim.Time
	endEvent   sim.EventID
	hasEnd     bool
	res        FlowResult
	visit      uint64 // component-BFS / dirty-set epoch stamp
	dIdx       int32  // position in the current dirty set (valid when visit matches)
}

// SweepMode selects the engine's rate-reallocation strategy.
type SweepMode uint8

const (
	// SweepIncremental (the default) re-levels, on each change, only the
	// region of links whose max-min bottleneck level can actually have
	// changed: the dirty set seeds with the changed flows' links and
	// expands across a link only when its residual capacity proves a
	// neighboring flow's rate must move (DESIGN.md §13). Flows outside
	// the frontier keep their rates and byte accounting untouched.
	SweepIncremental SweepMode = iota
	// SweepGlobal re-levels the changed flows' whole connected component
	// on every change — the original engine behavior, kept selectable as
	// the oracle the differential suite pins SweepIncremental against.
	SweepGlobal
)

// Engine executes a DAG of flows over a Network and reports per-flow
// timing. Submit all flows, then call Run once.
type Engine struct {
	net   *Network
	p     Params
	cm    topo.CostModel // nil = uniform Params arithmetic
	clock *sim.Engine

	flows     []*flow
	linkFlows [][]*flow // active flows per link
	linkVisit []uint64  // component-BFS epoch stamps per link
	linkBytes []float64 // cumulative bytes carried per link
	linkIndex []int32   // scratch: link ID -> local index in waterfill
	epoch     uint64

	// Flow structs are carved out of arena blocks so steady-state Submit
	// performs no per-flow allocation (Reserve pre-sizes everything).
	arena     []flow
	arenaUsed int

	// Scratch buffers reused across component/waterfill sweeps; per-sweep
	// make()s were the simulator's dominant allocation source.
	compFlows    []*flow
	compLinks    []int
	compQueue    []*flow
	wfLoad       []float64
	wfCapLeft    []float64
	wfNewRate    []float64
	wfUnfrozen   []int
	wfAliveLinks []int
	wfAliveFlows []int

	// Reallocation requests arriving at the same virtual instant are
	// batched into one sweep: N simultaneous flow activations (e.g. a
	// whole exchange phase releasing at once) cost one water-filling
	// pass instead of N.
	pendingFlows   []*flow
	pendingLinks   []int
	sweepScheduled bool

	// Incremental-sweep state: the selected mode, the dirty flow set and
	// region-link scratch reused across sweeps, and the full/incremental
	// sweep counters surfaced via SweepStats and obs.
	mode      SweepMode
	dirty     []*flow
	regLinks  []int
	regOut    []float64 // outside (non-dirty) load per region link
	regOld    []float64 // total pre-sweep load per region link
	regOldMax []float64 // highest pre-sweep flow rate per region link
	regNew    []float64 // tentative post-solve load per region link

	fullSweeps int64
	incSweeps  int64

	active      int // flows not yet done or aborted
	aborted     int // flows cut by failure events
	ran         bool
	interactive bool

	// sweepObserver, when set, runs after every reallocation sweep; test
	// code uses it to audit the rate assignment (fairness invariants).
	sweepObserver func(now sim.Time)

	// failureObserver, when set, runs after a scheduled failure event has
	// been applied and its victims aborted. The I/O layer uses it to fail
	// over bridge assignments mid-run; traces use it to annotate runs.
	failureObserver func(now sim.Time, node torus.NodeID, isNode bool, links []int)

	// sink is the generalized telemetry interface the single-purpose
	// observers grew into (see obs.Sink): flow activations and wire
	// spans, sweep and failure events, and per-link byte windows for
	// time-bucketed utilization. nil means observability off — every
	// emission site is a single predictable branch, preserving the
	// zero-allocation steady state of Submit/release.
	sink obs.Sink
}

// failureEvent is the clock payload of a scheduled link or node failure.
type failureEvent struct {
	links  []int
	node   torus.NodeID
	isNode bool
}

// NewEngine creates an engine over net with parameters p.
func NewEngine(net *Network, p Params) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		net:       net,
		p:         p,
		clock:     sim.NewEngine(),
		linkFlows: make([][]*flow, net.NumLinks()),
		linkVisit: make([]uint64, net.NumLinks()),
		linkBytes: make([]float64, net.NumLinks()),
		linkIndex: make([]int32, net.NumLinks()),
	}, nil
}

// flowArenaBlock is the number of flow structs allocated per arena block.
const flowArenaBlock = 512

// newFlow hands out the next zeroed flow struct from the arena.
func (e *Engine) newFlow() *flow {
	if e.arenaUsed == len(e.arena) {
		e.arena = make([]flow, flowArenaBlock)
		e.arenaUsed = 0
	}
	f := &e.arena[e.arenaUsed]
	e.arenaUsed++
	return f
}

// Reserve pre-sizes the engine for n further Submit calls so that, with
// routes cached and dependencies resolved, each of them performs no
// allocation. Callers that know their flow count (benchmarks, bulk
// planners) use it to keep Submit off the allocator entirely.
func (e *Engine) Reserve(n int) {
	if free := cap(e.flows) - len(e.flows); free < n {
		grown := make([]*flow, len(e.flows), len(e.flows)+n)
		copy(grown, e.flows)
		e.flows = grown
	}
	if len(e.arena)-e.arenaUsed < n {
		e.arena = make([]flow, n)
		e.arenaUsed = 0
	}
}

// OnEvent dispatches a fired clock event to the right flow transition;
// arg == nil means the batched reallocation sweep. Implementing
// sim.Callback lets the engine schedule every hot-path event without
// allocating a closure.
func (e *Engine) OnEvent(_ *sim.Engine, arg any) {
	switch v := arg.(type) {
	case nil:
		e.sweep()
	case *failureEvent:
		e.applyFailure(v)
	case *flow:
		switch v.next {
		case evActivate:
			e.activate(v)
		case evTransferEnd:
			e.transferEnd(v)
		case evFinish:
			e.finish(v)
		}
	}
}

// SetSink installs an observability sink (see obs.Sink); pass nil to
// disable. Callers must pass a genuinely nil interface, not a typed nil
// pointer, to turn instrumentation off.
func (e *Engine) SetSink(s obs.Sink) { e.sink = s }

// Sink returns the installed observability sink (nil when off).
func (e *Engine) Sink() obs.Sink { return e.sink }

// SetSweepMode selects the rate-update strategy. The mode shapes every
// reallocation from the first activation on, so it must be chosen before
// any flow is submitted (in practice: right after NewEngine, e.g. from
// experiments.Options.EngineHook).
func (e *Engine) SetSweepMode(m SweepMode) {
	if len(e.flows) > 0 {
		panic("netsim: SetSweepMode after Submit")
	}
	e.mode = m
}

// SweepMode reports the selected rate-update strategy.
func (e *Engine) SweepMode() SweepMode { return e.mode }

// SetCostModel installs a per-node endpoint cost model (DESIGN.md §16)
// replacing the uniform Params arithmetic for flow rate caps, sender and
// receiver overheads, and hop latency. Like SetSweepMode it shapes every
// flow from release on, so it must be chosen before any flow is
// submitted. A nil model keeps the exact Params expressions — the default
// path is byte-identical to an engine that never heard of cost models.
func (e *Engine) SetCostModel(cm topo.CostModel) {
	if len(e.flows) > 0 {
		panic("netsim: SetCostModel after Submit")
	}
	e.cm = cm
}

// CostModel reports the installed cost model (nil = uniform Params).
func (e *Engine) CostModel() topo.CostModel { return e.cm }

// CostModelFromParams lifts the uniform Params constants into a
// topo.Uniform cost model. Installing it is semantically identical to
// installing no model; it exists as the base for tiered models
// (topo.NewHetero, topo.ParseCostModel).
func CostModelFromParams(p Params) topo.Uniform {
	return topo.Uniform{
		PerFlow:   p.PerFlowBandwidth,
		LocalCopy: p.LocalCopyBandwidth,
		Sender:    float64(p.SenderOverhead),
		Receiver:  float64(p.ReceiverOverhead),
		Forward:   float64(p.ProxyForwardOverhead),
		Hop:       float64(p.HopLatency),
	}
}

// SweepStats reports how many full (whole-component) and incremental
// (dirty-region) sweeps the engine has performed. In SweepGlobal mode
// every sweep is full; in SweepIncremental mode the full count is the
// fallbacks (DESIGN.md §13), so incremental ≫ full is the signature of
// an effective cutoff.
func (e *Engine) SweepStats() (full, incremental int64) {
	return e.fullSweeps, e.incSweeps
}

// Params returns the engine's parameters.
func (e *Engine) Params() Params { return e.p }

// Network returns the engine's network.
func (e *Engine) Network() *Network { return e.net }

// Submit registers a flow and returns its ID. All dependencies must refer
// to already-submitted flows. Submit panics after Run has been called,
// unless the engine is in interactive mode (BeginInteractive), where
// flows are released as soon as their dependencies allow.
func (e *Engine) Submit(spec FlowSpec) FlowID {
	if e.ran && !e.interactive {
		panic("netsim: Submit after Run")
	}
	if spec.Bytes < 0 {
		panic(fmt.Sprintf("netsim: negative flow size %d", spec.Bytes))
	}
	id := FlowID(len(e.flows))
	f := e.newFlow()
	f.id, f.spec, f.cap = id, spec, e.p.PerFlowBandwidth
	if e.cm != nil {
		f.cap = e.cm.PerFlowRate(spec.Src, spec.Dst)
	}
	switch {
	case spec.Links != nil:
		// Explicit routes are honored even for Src == Dst (e.g. a
		// bridge node writing over its own 11th link). A flow occupies a
		// set of links: a route listing a link twice must still claim it
		// once — a duplicate entry would double-count the flow in
		// waterfill sharing, double-charge the link's byte counter, and
		// leave a stale linkFlows entry behind at removal.
		f.links = dedupLinks(spec.Links)
		if len(f.links) == 0 {
			f.cap = e.localCopyRate(spec.Src)
		}
	case spec.Src == spec.Dst:
		f.cap = e.localCopyRate(spec.Src)
	default:
		// Served from the network's route cache: the default route is a
		// pure function of the endpoints, and exchanges resubmit the
		// same pairs every round.
		f.links = e.net.Route(spec.Src, spec.Dst).Links
	}
	for _, l := range f.links {
		if l < 0 || l >= e.net.NumLinks() {
			panic(fmt.Sprintf("netsim: flow %d routed over unknown link %d", id, l))
		}
		if e.net.LinkFailed(l) {
			panic(fmt.Sprintf("netsim: flow %d routed over failed link %d (%s) — plan around failures with routing.RouteAvoiding",
				id, l, e.net.LinkName(l)))
		}
	}
	for _, dep := range spec.DependsOn {
		if int(dep) < 0 || int(dep) >= len(e.flows) {
			panic(fmt.Sprintf("netsim: flow %d depends on unknown flow %d", id, dep))
		}
		d := e.flows[dep]
		if d.state != stateDone {
			d.dependents = append(d.dependents, id)
			f.unmetDeps++
		}
	}
	e.flows = append(e.flows, f)
	e.active++
	if e.interactive && f.unmetDeps == 0 {
		e.release(f)
	}
	return id
}

// dedupLinks returns links with duplicates removed, preserving first-
// occurrence order. The duplicate-free case — every route a planner
// emits — returns the input slice untouched, keeping Submit
// allocation-free; routes are a handful of links, so the quadratic scan
// beats a map.
func dedupLinks(links []int) []int {
	for i := 1; i < len(links); i++ {
		for j := 0; j < i; j++ {
			if links[i] == links[j] {
				out := make([]int, i, len(links)-1)
				copy(out, links[:i])
				for _, l := range links[i+1:] {
					dup := false
					for _, seen := range out {
						if seen == l {
							dup = true
							break
						}
					}
					if !dup {
						out = append(out, l)
					}
				}
				return out
			}
		}
	}
	return links
}

// Run executes all submitted flows and returns the makespan (time from
// start to the completion of the last flow). It returns an error when the
// dependency graph leaves flows unreleased (a cycle).
func (e *Engine) Run() (sim.Duration, error) {
	if e.ran {
		panic("netsim: Run called twice")
	}
	e.ran = true
	for _, f := range e.flows {
		if f.unmetDeps == 0 {
			e.release(f)
		}
	}
	end := e.clock.Run()
	if e.active > 0 {
		return 0, fmt.Errorf("netsim: %d of %d flows never completed (dependency cycle)", e.active, len(e.flows))
	}
	return sim.Duration(end), nil
}

// Result returns a flow's timing after Run.
func (e *Engine) Result(id FlowID) FlowResult { return e.flows[id].res }

// Spec returns the FlowSpec a flow was submitted with.
func (e *Engine) Spec(id FlowID) FlowSpec { return e.flows[id].spec }

// NumFlows returns the number of submitted flows.
func (e *Engine) NumFlows() int { return len(e.flows) }

// LinkBytes returns the cumulative bytes carried by each link during the
// run, indexed by link ID. The slice is live; do not modify it.
func (e *Engine) LinkBytes() []float64 { return e.linkBytes }

// localCopyRate is the node-local memcpy rate for flows that never touch
// the fabric.
func (e *Engine) localCopyRate(n torus.NodeID) float64 {
	if e.cm != nil {
		return e.cm.LocalCopyRate(n)
	}
	return e.p.LocalCopyBandwidth
}

// release starts a flow's sender-overhead countdown.
func (e *Engine) release(f *flow) {
	f.state = stateDelayed
	f.res.Released = e.clock.Now()
	delay := e.p.SenderOverhead + f.spec.ExtraDelay
	if e.cm != nil {
		delay = sim.Duration(e.cm.SenderOverhead(f.spec.Src)) + f.spec.ExtraDelay
	}
	f.next = evActivate
	f.endEvent = e.clock.AfterCall(delay, e, f)
	f.hasEnd = true
}

// activate puts a flow on its links and reallocates its component.
func (e *Engine) activate(f *flow) {
	f.state = stateActive
	f.hasEnd = false
	f.res.Activated = e.clock.Now()
	f.remaining = float64(f.spec.Bytes)
	f.lastUpdate = e.clock.Now()
	if e.sink != nil {
		e.sink.FlowActivated(e.clock.Now(), int(f.id), f.spec.Label)
	}
	if f.spec.Bytes == 0 {
		e.transferEnd(f)
		return
	}
	for _, l := range f.links {
		e.linkFlows[l] = append(e.linkFlows[l], f)
	}
	e.requestRealloc(f, f.links)
}

// transferEnd fires when the last byte leaves the wire: the flow frees its
// links immediately and completes after receiver-side costs.
func (e *Engine) transferEnd(f *flow) {
	f.state = stateDraining
	f.hasEnd = false
	f.res.TransferEnd = e.clock.Now()
	// Charge the final segment of progress to the link byte counters
	// before leaving the links.
	for _, l := range f.links {
		e.linkBytes[l] += f.remaining
	}
	if e.sink != nil {
		now := e.clock.Now()
		if f.remaining > 0 {
			for _, l := range f.links {
				e.sink.LinkWindow(l, f.lastUpdate, now, f.remaining)
			}
		}
		e.sink.FlowEnded(now, f.res.Activated, int(f.id), f.spec.Label, f.spec.Bytes, false)
	}
	f.remaining = 0
	for _, l := range f.links {
		e.removeFromLink(l, f)
	}
	// Freed capacity benefits the rest of the component.
	if len(f.links) > 0 {
		e.requestRealloc(nil, f.links)
	}
	tail := e.p.ReceiverOverhead + sim.Duration(float64(e.p.HopLatency)*float64(len(f.links)))
	if e.cm != nil {
		tail = sim.Duration(e.cm.ReceiverOverhead(f.spec.Dst) + e.cm.HopLatency()*float64(len(f.links)))
	}
	f.next = evFinish
	f.endEvent = e.clock.AfterCall(tail, e, f)
	f.hasEnd = true
}

func (e *Engine) finish(f *flow) {
	f.state = stateDone
	f.hasEnd = false
	f.res.Completed = e.clock.Now()
	f.res.Bytes = f.spec.Bytes
	f.res.Done = true
	e.active--
	if f.spec.OnComplete != nil {
		f.spec.OnComplete()
	}
	for _, dep := range f.dependents {
		d := e.flows[dep]
		d.unmetDeps--
		if d.unmetDeps == 0 && d.state == statePending {
			e.release(d)
		}
	}
}

// FailLinkAt schedules link to fail at absolute virtual time at. When the
// event fires the link is marked failed on the network (with the route
// cache invalidated for this event), and every flow whose route crosses
// the link and whose transfer has not yet left the wire aborts at that
// instant — as do, transitively, the flows depending on them. Flows
// submitted after the event over the dead link are rejected as usual.
func (e *Engine) FailLinkAt(link int, at sim.Time) {
	if link < 0 || link >= e.net.NumLinks() {
		panic(fmt.Sprintf("netsim: FailLinkAt(%d) outside link table", link))
	}
	e.clock.AtCall(at, e, &failureEvent{links: []int{link}})
}

// FailNodeAt schedules a whole-node failure at absolute virtual time at:
// all torus links into and out of the node plus its registered extra
// links (a bridge's 11th link) fail as one event.
func (e *Engine) FailNodeAt(n torus.NodeID, at sim.Time) {
	if int(n) < 0 || int(n) >= e.net.NumNodes() {
		panic(fmt.Sprintf("netsim: FailNodeAt(%d) outside partition", n))
	}
	e.clock.AtCall(at, e, &failureEvent{links: e.net.NodeLinks(n), node: n, isNode: true})
}

// SetFailureObserver installs a callback run after each failure event has
// been applied (links dead, victims aborted). The I/O layer hooks bridge
// failover here; instrumentation uses it to annotate timelines.
func (e *Engine) SetFailureObserver(fn func(now sim.Time, node torus.NodeID, isNode bool, links []int)) {
	e.failureObserver = fn
}

// applyFailure fires a scheduled failure: mark the links dead, then abort
// every flow in flight (or not yet started) whose route crosses one.
func (e *Engine) applyFailure(fe *failureEvent) {
	now := e.clock.Now()
	newly := make(map[int]struct{}, len(fe.links))
	for _, l := range fe.links {
		if !e.net.LinkFailed(l) {
			newly[l] = struct{}{}
		}
	}
	if fe.isNode {
		e.net.FailNode(fe.node)
	} else {
		for l := range newly {
			e.net.FailLink(l)
		}
	}
	if len(newly) > 0 {
		for _, f := range e.flows {
			if f.state == stateDone || f.state == stateAborted || f.state == stateDraining {
				continue
			}
			for _, l := range f.links {
				if _, dead := newly[l]; dead {
					e.abort(f, now)
					break
				}
			}
		}
	}
	if e.failureObserver != nil {
		e.failureObserver(now, fe.node, fe.isNode, fe.links)
	}
	if e.sink != nil {
		e.sink.FailureApplied(now, int(fe.node), fe.isNode, len(fe.links))
	}
}

// abort cuts a flow at the failure instant: it leaves its links (the
// progress made so far is charged to the link byte counters — those bytes
// did cross the wire), frees its pending timer, and cascades to every
// dependent, which can never release. Draining and done flows are not
// abortable: their last byte already left the wire.
func (e *Engine) abort(f *flow, now sim.Time) {
	switch f.state {
	case stateDone, stateAborted, stateDraining:
		return
	case stateActive:
		if dt := float64(now - f.lastUpdate); dt > 0 && f.rate > 0 {
			moved := f.rate * dt
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			for _, l := range f.links {
				e.linkBytes[l] += moved
				if e.sink != nil && moved > 0 {
					e.sink.LinkWindow(l, f.lastUpdate, now, moved)
				}
			}
		}
		if e.sink != nil {
			e.sink.FlowEnded(now, f.res.Activated, int(f.id), f.spec.Label, f.spec.Bytes, true)
		}
		for _, l := range f.links {
			e.removeFromLink(l, f)
		}
		if len(f.links) > 0 {
			e.requestRealloc(nil, f.links)
		}
	}
	if f.hasEnd {
		e.clock.Cancel(f.endEvent)
		f.hasEnd = false
	}
	f.state = stateAborted
	f.res.Aborted = true
	f.res.AbortTime = now
	e.active--
	e.aborted++
	for _, dep := range f.dependents {
		e.abort(e.flows[dep], now)
	}
}

// Outcomes reports how many flows completed and how many were aborted by
// failure events so far.
func (e *Engine) Outcomes() (done, aborted int) {
	return len(e.flows) - e.active - e.aborted, e.aborted
}

// Interactive reports whether the engine is in interactive mode
// (BeginInteractive was called).
func (e *Engine) Interactive() bool { return e.interactive }

func (e *Engine) removeFromLink(l int, f *flow) {
	s := e.linkFlows[l]
	for i, g := range s {
		if g == f {
			s[i] = s[len(s)-1]
			e.linkFlows[l] = s[:len(s)-1]
			return
		}
	}
}

// requestRealloc queues a reallocation covering the given seed flow and
// links and schedules a single sweep at the current instant. All requests
// made at the same virtual time share one sweep, which runs after every
// other event at this instant (FIFO ordering of same-time events).
func (e *Engine) requestRealloc(f *flow, links []int) {
	if f != nil {
		e.pendingFlows = append(e.pendingFlows, f)
	}
	e.pendingLinks = append(e.pendingLinks, links...)
	if !e.sweepScheduled {
		e.sweepScheduled = true
		e.clock.AfterCall(0, e, nil)
	}
}

func (e *Engine) sweep() {
	e.sweepScheduled = false
	if e.mode == SweepGlobal {
		flows, links := e.component(e.pendingFlows, e.pendingLinks)
		e.pendingFlows = e.pendingFlows[:0]
		e.pendingLinks = e.pendingLinks[:0]
		if len(flows) > 0 {
			e.chargeProgress(flows)
			e.solveWaterfill(flows, links, nil)
			e.applyRates(flows)
		}
		e.fullSweeps++
		e.finishSweep(len(flows), len(links), true)
		return
	}
	e.incrementalSweep()
}

// finishSweep runs the post-sweep hooks shared by every sweep flavor.
func (e *Engine) finishSweep(flows, links int, full bool) {
	if e.sweepObserver != nil {
		e.sweepObserver(e.clock.Now())
	}
	if e.sink != nil {
		e.sink.SweepDone(e.clock.Now(), flows, links, full)
	}
}

// SetSweepObserver installs a callback run after every rate
// reallocation; use FlowRate/ActiveFlowIDs from inside it to audit the
// allocation. Intended for tests and instrumentation.
func (e *Engine) SetSweepObserver(fn func(now sim.Time)) { e.sweepObserver = fn }

// FlowRate reports a flow's current rate; active is false when the flow
// is not currently transferring.
func (e *Engine) FlowRate(id FlowID) (rate float64, active bool) {
	f := e.flows[id]
	if f.state != stateActive {
		return 0, false
	}
	return f.rate, true
}

// FlowRouteLinks returns the links a flow occupies (its planned route).
func (e *Engine) FlowRouteLinks(id FlowID) []int {
	return append([]int(nil), e.flows[id].links...)
}

// ActiveFlowIDs returns the flows currently transferring.
func (e *Engine) ActiveFlowIDs() []FlowID {
	var out []FlowID
	for _, f := range e.flows {
		if f.state == stateActive {
			out = append(out, f.id)
		}
	}
	return out
}

// FlowRateCap reports a flow's endpoint rate cap.
func (e *Engine) FlowRateCap(id FlowID) float64 { return e.flows[id].cap }

// component gathers, by BFS over shared links, all active flows and links
// reachable from the seeds. Because rate allocation is per-link, flows in
// different components cannot affect each other, so reallocation is scoped
// to one component — this keeps large sparse runs fast. The returned
// slices are engine-owned scratch, valid until the next sweep.
func (e *Engine) component(seedFlows []*flow, seedLinks []int) ([]*flow, []int) {
	e.epoch++
	ep := e.epoch
	flows := e.compFlows[:0]
	links := e.compLinks[:0]
	flowQueue := e.compQueue[:0]

	addLink := func(l int) {
		if e.linkVisit[l] == ep {
			return
		}
		e.linkVisit[l] = ep
		links = append(links, l)
		for _, g := range e.linkFlows[l] {
			if g.visit != ep {
				g.visit = ep
				flows = append(flows, g)
				flowQueue = append(flowQueue, g)
			}
		}
	}
	for _, f := range seedFlows {
		if f.visit != ep && f.state == stateActive {
			f.visit = ep
			flows = append(flows, f)
			flowQueue = append(flowQueue, f)
		}
	}
	for _, l := range seedLinks {
		addLink(l)
	}
	for len(flowQueue) > 0 {
		f := flowQueue[len(flowQueue)-1]
		flowQueue = flowQueue[:len(flowQueue)-1]
		for _, l := range f.links {
			addLink(l)
		}
	}
	e.compFlows, e.compLinks, e.compQueue = flows, links, flowQueue
	return flows, links
}

// relEps is the relative tolerance the waterfill solver and the
// incremental cutoff rules share for level and saturation comparisons.
const relEps = 1e-9

// chargeProgress charges each flow's progress at its old rate to the
// link byte counters and advances lastUpdate, so a following rate change
// only governs time from this instant on. Flows outside the set are
// untouched: their rates are constant, so their bytes are charged
// exactly when they next enter a sweep, end, or abort.
func (e *Engine) chargeProgress(flows []*flow) {
	now := e.clock.Now()
	for _, f := range flows {
		if dt := float64(now - f.lastUpdate); dt > 0 && f.rate > 0 {
			moved := f.rate * dt
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			for _, l := range f.links {
				e.linkBytes[l] += moved
				if e.sink != nil && moved > 0 {
					e.sink.LinkWindow(l, f.lastUpdate, now, moved)
				}
			}
		}
		f.lastUpdate = now
	}
}

// solveWaterfill assigns max-min fair rates to flows over links by
// progressive filling: the common rate level of unfrozen flows rises
// until a link saturates or a flow hits its rate cap; those flows
// freeze; repeat. extLoad, when non-nil, is per-link load from flows
// outside the set whose rates are pinned — the restricted solve the
// incremental sweep uses; nil means the set covers every flow on the
// links. Results are left in e.wfNewRate (indexed like flows) and the
// link positions in e.linkIndex; no engine state changes.
func (e *Engine) solveWaterfill(flows []*flow, links []int, extLoad []float64) {
	// Local link indices (dense scratch; only the passed links are read
	// back, so no invalidation between sweeps is needed).
	idx := e.linkIndex
	for i, l := range links {
		idx[l] = int32(i)
	}
	// Engine-owned scratch, reused across sweeps: load starts at the
	// pinned outside load (zero when the set is complete); the others are
	// fully written before being read.
	load := growFloats(&e.wfLoad, len(links), true)        // frozen + pinned load per link
	unfrozen := growInts(&e.wfUnfrozen, len(links))        // unfrozen flow count per link
	capLeft := growFloats(&e.wfCapLeft, len(links), false) // capacity per link
	for i, l := range links {
		capLeft[i] = e.net.Capacity(l)
		unfrozen[i] = 0
		if extLoad != nil {
			load[i] = extLoad[i]
		}
	}
	for _, f := range flows {
		for _, l := range f.links {
			unfrozen[idx[l]]++
		}
	}
	aliveLinks := e.wfAliveLinks[:0]
	for i := range links {
		if unfrozen[i] > 0 {
			aliveLinks = append(aliveLinks, i)
		}
	}
	newRate := growFloats(&e.wfNewRate, len(flows), false)
	aliveFlows := growInts(&e.wfAliveFlows, len(flows))
	for i := range aliveFlows {
		aliveFlows[i] = i
	}

	for len(aliveFlows) > 0 {
		// Find the level at which the next constraint binds, compacting
		// away links with no unfrozen flows.
		level := math.Inf(1)
		kept := aliveLinks[:0]
		for _, i := range aliveLinks {
			if unfrozen[i] == 0 {
				continue
			}
			kept = append(kept, i)
			if s := (capLeft[i] - load[i]) / float64(unfrozen[i]); s < level {
				level = s
			}
		}
		aliveLinks = kept
		for _, fi := range aliveFlows {
			if c := flows[fi].cap; c < level {
				level = c
			}
		}
		if level < 0 {
			level = 0
		}
		// Freeze every flow bound at this level, compacting the rest.
		eps := level*relEps + 1e-15
		keptFlows := aliveFlows[:0]
		for _, fi := range aliveFlows {
			f := flows[fi]
			bound := f.cap <= level+eps
			if !bound {
				for _, l := range f.links {
					i := idx[l]
					if unfrozen[i] > 0 && (capLeft[i]-load[i])/float64(unfrozen[i]) <= level+eps {
						bound = true
						break
					}
				}
			}
			if !bound {
				keptFlows = append(keptFlows, fi)
				continue
			}
			newRate[fi] = level
			for _, l := range f.links {
				i := idx[l]
				load[i] += level
				unfrozen[i]--
			}
		}
		if len(keptFlows) == len(aliveFlows) {
			panic("netsim: waterfill made no progress")
		}
		aliveFlows = keptFlows
	}

	// Keep the (possibly regrown) compaction scratch for the next sweep.
	e.wfAliveLinks = aliveLinks[:0]
	e.wfAliveFlows = aliveFlows[:0]
}

// applyRates installs the rates left in e.wfNewRate by solveWaterfill
// and (re)schedules completion events. When a flow's rate is unchanged
// its previously scheduled completion time is still exact, so the event
// is kept.
func (e *Engine) applyRates(flows []*flow) {
	for fi, f := range flows {
		r := e.wfNewRate[fi]
		if r <= 0 {
			panic(fmt.Sprintf("netsim: flow %d allocated zero rate", f.id))
		}
		if f.hasEnd && r == f.rate {
			continue
		}
		if f.hasEnd {
			e.clock.Cancel(f.endEvent)
		}
		f.rate = r
		dt := sim.Duration(f.remaining / f.rate)
		f.next = evTransferEnd
		f.endEvent = e.clock.AfterCall(dt, e, f)
		f.hasEnd = true
	}
}

// incMaxRounds bounds the dirty-set expansion before the engine gives up
// on locality and falls back to a full component sweep: each round
// re-solves the whole dirty set, so runaway expansion would cost more
// than the one full sweep it replaces.
const incMaxRounds = 8

// incrementalSweep re-levels only the flows whose max-min rate can have
// changed (DESIGN.md §13). The dirty set seeds with the changed flows
// plus every flow sharing one of the changed links; each round solves a
// restricted waterfill over the dirty set with all outside rates pinned
// as fixed link load, then audits every region link for the three ways
// an outside flow's optimal rate can move:
//
//	(i)   squeeze — the link is saturated after the solve and the flow
//	      sits above the dirty level, so fairness must pull it down;
//	(ii)  freed — a previously saturated link lost load, so the flows
//	      riding its old level can rise;
//	(iii) rose — the link stays saturated but its level went up
//	      (dirty flows redistributed), so old-level riders can rise too.
//
// Flows flagged by an audit join the dirty set and the solve repeats;
// when no rule fires, every outside flow provably keeps its rate, and
// the restricted solution is the global max-min solution. The dirty set
// only grows, so the loop terminates; incMaxRounds (or a degenerate
// zero-rate solve, which means the frontier cut a binding constraint)
// falls back to the classic full component sweep.
func (e *Engine) incrementalSweep() {
	// Seed the dirty set.
	e.epoch++
	ep := e.epoch
	dirty := e.dirty[:0]
	for _, f := range e.pendingFlows {
		if f.visit != ep && f.state == stateActive {
			f.visit = ep
			dirty = append(dirty, f)
		}
	}
	for _, l := range e.pendingLinks {
		for _, g := range e.linkFlows[l] {
			if g.visit != ep {
				g.visit = ep
				dirty = append(dirty, g)
			}
		}
	}
	e.pendingFlows = e.pendingFlows[:0]
	e.pendingLinks = e.pendingLinks[:0]
	e.dirty = dirty
	if len(dirty) == 0 {
		// All requesting flows ended or aborted at this instant and left
		// no neighbors behind: nothing to re-level.
		e.incSweeps++
		e.finishSweep(0, 0, false)
		return
	}

	links := e.regLinks[:0]
	for round := 0; ; round++ {
		if round == incMaxRounds {
			e.dirty, e.regLinks = dirty, links
			e.fullReLevel(dirty)
			return
		}
		// Region = the dirty flows' links. Each round restarts with a
		// fresh epoch so the previous round's link stamps are forgotten;
		// the flow stamps and dirty indices are re-applied.
		e.epoch++
		ep = e.epoch
		for i, f := range dirty {
			f.visit = ep
			f.dIdx = int32(i)
		}
		links = links[:0]
		for _, f := range dirty {
			for _, l := range f.links {
				if e.linkVisit[l] != ep {
					e.linkVisit[l] = ep
					links = append(links, l)
				}
			}
		}
		// Pre-solve region state: total load, outside (pinned) load, and
		// each link's old level (its highest flow rate).
		out := growFloats(&e.regOut, len(links), true)
		old := growFloats(&e.regOld, len(links), true)
		oldMax := growFloats(&e.regOldMax, len(links), true)
		for i, l := range links {
			for _, g := range e.linkFlows[l] {
				old[i] += g.rate
				if g.rate > oldMax[i] {
					oldMax[i] = g.rate
				}
				if g.visit != ep {
					out[i] += g.rate
				}
			}
		}
		e.solveWaterfill(dirty, links, out)
		// Tentative post-solve load per region link.
		nw := growFloats(&e.regNew, len(links), false)
		copy(nw, out)
		for fi, f := range dirty {
			r := e.wfNewRate[fi]
			for _, l := range f.links {
				nw[e.linkIndex[l]] += r
			}
		}
		// Audit each region link; flows marked dirty mid-audit are
		// excluded from later links' outside checks but have no solved
		// rate yet, so the solved count gates the level lookups.
		solved := len(dirty)
		grew := false
		for i, l := range links {
			capL := e.net.Capacity(l)
			epsL := capL*relEps + 1e-15
			satAfter := nw[i] >= capL-epsL
			satBefore := old[i] >= capL-epsL
			if !satAfter && !satBefore {
				continue // slack before and after: l binds nobody
			}
			var lvl float64 // highest solved dirty rate on l
			for _, g := range e.linkFlows[l] {
				if g.visit == ep && int(g.dIdx) < solved {
					if r := e.wfNewRate[g.dIdx]; r > lvl {
						lvl = r
					}
				}
			}
			squeeze := satAfter
			freed := satBefore && nw[i] < old[i]-epsL
			rose := satBefore && satAfter && lvl > oldMax[i]+oldMax[i]*relEps+1e-15
			if !squeeze && !freed && !rose {
				continue
			}
			squeezeCeil := lvl + lvl*relEps + 1e-15
			riderFloor := oldMax[i] - (oldMax[i]*relEps + 1e-15)
			for _, g := range e.linkFlows[l] {
				if g.visit == ep {
					continue
				}
				if (squeeze && g.rate > squeezeCeil) ||
					((freed || rose) && g.rate >= riderFloor) {
					g.visit = ep
					g.dIdx = int32(len(dirty))
					dirty = append(dirty, g)
					grew = true
				}
			}
		}
		if grew {
			continue
		}
		// Converged: every outside flow provably keeps its rate. A zero
		// rate can only mean the region boundary cut a binding
		// constraint; re-level the whole component instead.
		for fi := range dirty {
			if e.wfNewRate[fi] <= 0 {
				e.dirty, e.regLinks = dirty, links
				e.fullReLevel(dirty)
				return
			}
		}
		e.chargeProgress(dirty)
		e.applyRates(dirty)
		e.dirty, e.regLinks = dirty, links
		e.incSweeps++
		e.finishSweep(len(dirty), len(links), false)
		return
	}
}

// fullReLevel abandons locality: it re-levels the entire connected
// component reachable from the seeds — the incremental sweep's fallback.
func (e *Engine) fullReLevel(seeds []*flow) {
	flows, links := e.component(seeds, nil)
	if len(flows) > 0 {
		e.chargeProgress(flows)
		e.solveWaterfill(flows, links, nil)
		e.applyRates(flows)
	}
	e.fullSweeps++
	e.finishSweep(len(flows), len(links), true)
}

// growFloats resizes an engine scratch buffer to length n, reusing its
// backing array when possible; zero clears the prefix.
func growFloats(buf *[]float64, n int, zero bool) []float64 {
	s := *buf
	if cap(s) < n {
		s = make([]float64, n)
		*buf = s
	} else {
		s = s[:n]
		*buf = s
	}
	if zero {
		for i := range s {
			s[i] = 0
		}
	}
	return s
}

// growInts resizes an int scratch buffer to length n, reusing its backing
// array when possible. The caller fully overwrites the contents.
func growInts(buf *[]int, n int) []int {
	s := *buf
	if cap(s) < n {
		s = make([]int, n)
		*buf = s
	} else {
		s = s[:n]
		*buf = s
	}
	return s
}

// BeginInteractive switches the engine to interactive mode: Run becomes
// unavailable, flows are released on Submit, and the caller advances
// virtual time with StepClock / ScheduleAt. This is the mode the SPMD
// runtime (mpisim.Runtime) drives the engine in.
func (e *Engine) BeginInteractive() {
	if e.ran {
		panic("netsim: BeginInteractive after Run")
	}
	e.ran = true
	e.interactive = true
}

// StepClock fires the next pending event and reports whether one fired.
// Interactive mode only.
func (e *Engine) StepClock() bool {
	if !e.interactive {
		panic("netsim: StepClock outside interactive mode")
	}
	return e.clock.Step()
}

// PendingEvents reports how many events are queued. Interactive mode.
func (e *Engine) PendingEvents() int { return e.clock.Pending() }

// Now reports the engine's virtual time.
func (e *Engine) Now() sim.Time { return e.clock.Now() }

// ScheduleAfter schedules fn on the engine clock (interactive mode):
// timers, barrier releases, compute phases.
func (e *Engine) ScheduleAfter(d sim.Duration, fn func()) {
	if !e.interactive {
		panic("netsim: ScheduleAfter outside interactive mode")
	}
	e.clock.After(d, func(*sim.Engine) { fn() })
}

// Throughput converts bytes moved over a duration into bytes/second.
func Throughput(bytes int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / float64(d)
}
