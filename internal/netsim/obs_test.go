package netsim

import (
	"math"
	"strings"
	"testing"

	"bgqflow/internal/obs"
	"bgqflow/internal/torus"
)

// TestEngineSinkEvents checks the engine's obs.Sink emission sites end to
// end: one wire-occupancy span per flow (aborted flows marked), failure
// instants at the failure time, sweep counters, and a link timeline whose
// bucket sums integrate to exactly the engine's cumulative byte counters.
func TestEngineSinkEvents(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	e, err := NewEngine(NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	tl := obs.NewLinkTimeline(1e-3)
	e.SetSink(rec.EngineSink("eng", tl))
	if e.Sink() == nil {
		t.Fatal("Sink() lost the attached sink")
	}

	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 8 << 20, Label: "survivor"})
	victim := e.Submit(FlowSpec{Src: torus.NodeID(1), Dst: dst, Bytes: 8 << 20, Label: "victim"})
	// Kill the victim's first hop mid-flight.
	e.FailLinkAt(e.FlowRouteLinks(victim)[0], 1e-3)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d flow spans, want 2", len(spans))
	}
	var sawVictim, sawSurvivor bool
	for _, s := range spans {
		switch {
		case strings.HasPrefix(s.Name, "victim"):
			sawVictim = true
			if !s.Aborted || !strings.HasSuffix(s.Name, "(aborted)") {
				t.Fatalf("victim span not marked aborted: %+v", s)
			}
			if s.End != 1e-3 {
				t.Fatalf("victim span ends at %v, want the failure instant 1e-3", s.End)
			}
		case s.Name == "survivor":
			sawSurvivor = true
			if s.Aborted {
				t.Fatalf("survivor span marked aborted: %+v", s)
			}
		}
		if s.Track != "eng/flows" {
			t.Fatalf("span on track %q, want eng/flows", s.Track)
		}
	}
	if !sawVictim || !sawSurvivor {
		t.Fatalf("spans = %+v, want survivor and victim", spans)
	}

	ins := rec.Instants()
	if len(ins) != 1 || ins[0].Track != "eng/failures" || ins[0].At != 1e-3 {
		t.Fatalf("failure instants = %+v", ins)
	}

	reg := rec.Registry()
	if reg.Counter("netsim/flows_done").Value() != 1 || reg.Counter("netsim/flows_aborted").Value() != 1 {
		t.Fatalf("flow counters = %v", reg.Snapshot().Counters)
	}
	if reg.Counter("netsim/sweeps").Value() == 0 || reg.Counter("netsim/failures").Value() != 1 {
		t.Fatalf("sweep/failure counters = %v", reg.Snapshot().Counters)
	}

	// The timeline must integrate to the engine's cumulative counters:
	// every byte-charging site also emits a LinkWindow.
	linkBytes := e.LinkBytes()
	for _, l := range tl.Links() {
		if got, want := tl.TotalBytes(l), linkBytes[l]; math.Abs(got-want) > 1 {
			t.Fatalf("link %d: timeline %.0f bytes, engine counter %.0f", l, got, want)
		}
	}
	var engineTotal, timelineTotal float64
	for l, b := range linkBytes {
		engineTotal += b
		timelineTotal += tl.TotalBytes(l)
	}
	if engineTotal <= 0 || math.Abs(engineTotal-timelineTotal) > float64(len(linkBytes)) {
		t.Fatalf("timeline total %.0f vs engine total %.0f", timelineTotal, engineTotal)
	}
}

// BenchmarkEngineSubmitReleaseSinkOn is the paired benchmark for the
// sink-off guard (BenchmarkEngineSubmitRelease / TestSubmitReleaseZeroAlloc):
// it measures the same steady-state lifecycle with an EngineSink attached,
// so `go test -bench SubmitRelease` shows sink-off vs sink-on side by side.
func BenchmarkEngineSubmitReleaseSinkOn(b *testing.B) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	p := DefaultParams()
	e, err := NewEngine(NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		b.Fatal(err)
	}
	rec := obs.NewRecorder()
	e.SetSink(rec.EngineSink("bench", nil))
	e.BeginInteractive()
	src, dst := torus.NodeID(0), torus.NodeID(tor.Size()-1)
	e.Reserve(64 + b.N)
	for i := 0; i < 64; i++ {
		e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 1 << 20})
		drain(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: 1 << 20})
		drain(e)
	}
}

// TestSinkOffStaysNil pins the pay-for-what-you-use contract: an engine
// that never had a sink attached reports a genuinely nil Sink (not a
// typed-nil interface), so every emission site stays one false branch.
func TestSinkOffStaysNil(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 2, 2, 2})
	p := DefaultParams()
	e, err := NewEngine(NewNetwork(tor, p.LinkBandwidth), p)
	if err != nil {
		t.Fatal(err)
	}
	if e.Sink() != nil {
		t.Fatal("fresh engine must have a nil sink")
	}
	e.Submit(FlowSpec{Src: 0, Dst: 3, Bytes: 1 << 10})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.SetSink(nil)
	if e.Sink() != nil {
		t.Fatal("SetSink(nil) must detach")
	}
}
