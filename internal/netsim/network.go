package netsim

import (
	"fmt"
	"sync"

	"bgqflow/internal/routing"
	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
)

// Network is the set of capacity-limited directed links flows run over:
// the base-fabric links of a partition plus any registered extra links
// (such as the 11th links from bridge nodes to I/O nodes).
//
// Link IDs are dense integers: IDs below NumTorusLinks() are base-fabric
// links (torus.LinkID order on a torus, the topology's own dense order
// otherwise); IDs at or above it are extra links in order of
// registration.
//
// A network built with NewNetwork is torus-backed: Torus() is non-nil and
// the epoch-invalidated routing.Cache serves routes. A network built with
// NewNetworkTopo over a non-torus topology has a nil Torus(); routes come
// from the topology's pure route oracle through a lazily filled map
// (generic routes ignore failures exactly like DeterministicRoute, so no
// invalidation is needed — see DESIGN.md §16).
type Network struct {
	t          *torus.Torus // nil when the fabric is not a torus
	tp         topo.Topology
	capacity   []float64
	failed     []bool
	nodeFailed []bool
	names      map[int]string         // extra-link names for diagnostics
	extraFrom  map[torus.NodeID][]int // node -> extra links it owns (AddLinkFrom)
	routes     *routing.Cache         // torus-backed networks only

	topoMu     sync.RWMutex    // guards topoRoutes (non-torus networks)
	topoRoutes map[int64][]int // (src<<32|dst) -> cached route links
}

// NewNetwork builds the link table for torus t with per-direction torus
// link capacity linkBandwidth (bytes/second).
func NewNetwork(t *torus.Torus, linkBandwidth float64) *Network {
	n := &Network{
		t:        t,
		tp:       topo.NewTorus(t),
		capacity: make([]float64, t.NumTorusLinks()),
		names:    make(map[int]string),
		routes:   routing.NewCache(t),
	}
	for i := range n.capacity {
		n.capacity[i] = linkBandwidth
	}
	return n
}

// NewNetworkTopo builds the link table for an arbitrary topology. Each
// base link's capacity is linkBandwidth times the topology's rail
// multiplier. A torus topology delegates to NewNetwork, so torus-backed
// behavior (route cache, fault epochs) is identical either way.
func NewNetworkTopo(tp topo.Topology, linkBandwidth float64) *Network {
	if tt, ok := tp.(*topo.TorusTopo); ok {
		return NewNetwork(tt.Torus(), linkBandwidth)
	}
	n := &Network{
		tp:         tp,
		capacity:   make([]float64, tp.NumLinks()),
		names:      make(map[int]string),
		topoRoutes: make(map[int64][]int),
	}
	for i := range n.capacity {
		n.capacity[i] = linkBandwidth * tp.LinkCapacity(i)
	}
	return n
}

// Torus returns the underlying torus, or nil when the network was built
// over a non-torus topology (NewNetworkTopo). Torus-specific layers
// (ionet, zone routing, torus-shaped fault campaigns) must check.
func (n *Network) Torus() *torus.Torus { return n.t }

// Topology returns the fabric behind the network; never nil.
func (n *Network) Topology() topo.Topology { return n.tp }

// NumNodes reports the number of addressable endpoints.
func (n *Network) NumNodes() int { return n.tp.NumNodes() }

// NumLinks returns the total number of links, torus plus extra.
func (n *Network) NumLinks() int { return len(n.capacity) }

// NumTorusLinks returns the number of base-fabric links (extra links have
// IDs at or beyond this value). The name is historical: on a torus these
// are exactly the torus links.
func (n *Network) NumTorusLinks() int { return n.tp.NumLinks() }

// AddLink registers an extra link with the given capacity and returns its
// ID. The name labels the link in diagnostics.
func (n *Network) AddLink(name string, capacity float64) int {
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: extra link %q has capacity %g", name, capacity))
	}
	id := len(n.capacity)
	n.capacity = append(n.capacity, capacity)
	n.names[id] = name
	return id
}

// AddLinkFrom registers an extra link owned by a torus node (e.g. a
// bridge node's 11th link). Node-failure injection (FailNode) fails the
// owner's extra links along with its torus links.
func (n *Network) AddLinkFrom(name string, from torus.NodeID, capacity float64) int {
	id := n.AddLink(name, capacity)
	if n.extraFrom == nil {
		n.extraFrom = make(map[torus.NodeID][]int)
	}
	n.extraFrom[from] = append(n.extraFrom[from], id)
	return id
}

// Capacity returns the capacity of link id in bytes/second.
func (n *Network) Capacity(id int) float64 { return n.capacity[id] }

// Route returns the default deterministic route between two torus nodes,
// served from the network's route cache while the network is failure-free.
// The returned Route shares a cached Links slice; treat it as read-only.
func (n *Network) Route(src, dst torus.NodeID) routing.Route {
	if n.routes != nil {
		return n.routes.Route(src, dst)
	}
	key := int64(src)<<32 | int64(uint32(dst))
	n.topoMu.RLock()
	links, ok := n.topoRoutes[key]
	n.topoMu.RUnlock()
	if !ok {
		links = n.tp.Route(src, dst)
		n.topoMu.Lock()
		n.topoRoutes[key] = links
		n.topoMu.Unlock()
	}
	return routing.Route{Src: src, Dst: dst, Links: links}
}

// RouteCache exposes the network's route cache for instrumentation.
func (n *Network) RouteCache() *routing.Cache { return n.routes }

// FailLink marks a link failed. Flows submitted over failed links are
// rejected (fail-stop): fault handling belongs to the planning layer,
// which routes around failures with routing.RouteAvoiding, and to the
// engine's abort machinery for flows already in flight (FailLinkAt). The
// route cache absorbs one invalidation per failure event (see DESIGN.md
// §8): every event purges the memoized routes and bumps the failure
// epoch, so no pre-failure entry survives, while post-failure lookups
// repopulate the cache — long campaigns keep the hot path.
func (n *Network) FailLink(id int) {
	if n.failed == nil {
		n.failed = make([]bool, len(n.capacity))
	}
	n.failed[id] = true
	if n.routes != nil {
		n.routes.Invalidate()
	}
}

// LinkFailed reports whether a link is marked failed.
func (n *Network) LinkFailed(id int) bool {
	return n.failed != nil && id < len(n.failed) && n.failed[id]
}

// NodeLinks returns every link touching a node: its outgoing and incoming
// directed torus links (the BG/Q's 10 links, both directions) plus any
// extra links registered from it with AddLinkFrom (a bridge's 11th link).
func (n *Network) NodeLinks(id torus.NodeID) []int {
	base := n.tp.NodeLinks(id)
	extra := n.extraFrom[id]
	links := make([]int, 0, len(base)+len(extra))
	seen := make(map[int]struct{}, len(base)+len(extra))
	add := func(l int) {
		if _, dup := seen[l]; !dup {
			seen[l] = struct{}{}
			links = append(links, l)
		}
	}
	for _, l := range base {
		add(l)
	}
	for _, l := range extra {
		add(l)
	}
	return links
}

// FailNode marks a node failed: every torus link into or out of it fails,
// along with its registered extra links, so no route can traverse it. The
// route cache absorbs a single invalidation for the whole event.
func (n *Network) FailNode(id torus.NodeID) {
	if n.nodeFailed == nil {
		n.nodeFailed = make([]bool, n.tp.NumNodes())
	}
	n.nodeFailed[id] = true
	if n.failed == nil {
		n.failed = make([]bool, len(n.capacity))
	}
	for _, l := range n.NodeLinks(id) {
		n.failed[l] = true
	}
	if n.routes != nil {
		n.routes.Invalidate()
	}
}

// NodeFailed reports whether a node is marked failed.
func (n *Network) NodeFailed(id torus.NodeID) bool {
	return n.nodeFailed != nil && n.nodeFailed[id]
}

// HasFailures reports whether any link is failed.
func (n *Network) HasFailures() bool {
	for _, f := range n.failed {
		if f {
			return true
		}
	}
	return false
}

// FailedFunc returns a predicate suitable for routing.RouteAvoiding.
func (n *Network) FailedFunc() func(int) bool {
	return n.LinkFailed
}

// LinkName renders a link for diagnostics.
func (n *Network) LinkName(id int) string {
	if id < n.tp.NumLinks() {
		return n.tp.LinkString(id)
	}
	if name, ok := n.names[id]; ok {
		return name
	}
	return fmt.Sprintf("extra-link-%d", id)
}
