package netsim

import (
	"fmt"

	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

// Network is the set of capacity-limited directed links flows run over:
// the torus links of a partition plus any registered extra links (such as
// the 11th links from bridge nodes to I/O nodes).
//
// Link IDs are dense integers: IDs below Torus().NumTorusLinks() are torus
// links (see torus.LinkID); IDs at or above it are extra links in order of
// registration.
type Network struct {
	t        *torus.Torus
	capacity []float64
	failed   []bool
	names    map[int]string // extra-link names for diagnostics
	routes   *routing.Cache
}

// NewNetwork builds the link table for torus t with per-direction torus
// link capacity linkBandwidth (bytes/second).
func NewNetwork(t *torus.Torus, linkBandwidth float64) *Network {
	n := &Network{
		t:        t,
		capacity: make([]float64, t.NumTorusLinks()),
		names:    make(map[int]string),
		routes:   routing.NewCache(t),
	}
	for i := range n.capacity {
		n.capacity[i] = linkBandwidth
	}
	return n
}

// Torus returns the underlying torus.
func (n *Network) Torus() *torus.Torus { return n.t }

// NumLinks returns the total number of links, torus plus extra.
func (n *Network) NumLinks() int { return len(n.capacity) }

// NumTorusLinks returns the number of torus links (extra links have IDs at
// or beyond this value).
func (n *Network) NumTorusLinks() int { return n.t.NumTorusLinks() }

// AddLink registers an extra link with the given capacity and returns its
// ID. The name labels the link in diagnostics.
func (n *Network) AddLink(name string, capacity float64) int {
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: extra link %q has capacity %g", name, capacity))
	}
	id := len(n.capacity)
	n.capacity = append(n.capacity, capacity)
	n.names[id] = name
	return id
}

// Capacity returns the capacity of link id in bytes/second.
func (n *Network) Capacity(id int) float64 { return n.capacity[id] }

// Route returns the default deterministic route between two torus nodes,
// served from the network's route cache while the network is failure-free.
// The returned Route shares a cached Links slice; treat it as read-only.
func (n *Network) Route(src, dst torus.NodeID) routing.Route {
	return n.routes.Route(src, dst)
}

// RouteCache exposes the network's route cache for instrumentation.
func (n *Network) RouteCache() *routing.Cache { return n.routes }

// FailLink marks a link failed. Flows submitted over failed links are
// rejected (fail-stop): fault handling belongs to the planning layer,
// which routes around failures with routing.RouteAvoiding. The route
// cache is purged and disabled (see DESIGN.md §8): after a failure no
// memoized path may be served, so every subsequent default-route lookup
// recomputes and the fail-stop check in Engine.Submit sees current state.
func (n *Network) FailLink(id int) {
	if n.failed == nil {
		n.failed = make([]bool, len(n.capacity))
	}
	n.failed[id] = true
	n.routes.Disable()
}

// LinkFailed reports whether a link is marked failed.
func (n *Network) LinkFailed(id int) bool {
	return n.failed != nil && id < len(n.failed) && n.failed[id]
}

// HasFailures reports whether any link is failed.
func (n *Network) HasFailures() bool {
	for _, f := range n.failed {
		if f {
			return true
		}
	}
	return false
}

// FailedFunc returns a predicate suitable for routing.RouteAvoiding.
func (n *Network) FailedFunc() func(int) bool {
	return n.LinkFailed
}

// LinkName renders a link for diagnostics.
func (n *Network) LinkName(id int) string {
	if id < n.t.NumTorusLinks() {
		return n.t.LinkString(id)
	}
	if name, ok := n.names[id]; ok {
		return name
	}
	return fmt.Sprintf("extra-link-%d", id)
}
