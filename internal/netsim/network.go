package netsim

import (
	"fmt"

	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

// Network is the set of capacity-limited directed links flows run over:
// the torus links of a partition plus any registered extra links (such as
// the 11th links from bridge nodes to I/O nodes).
//
// Link IDs are dense integers: IDs below Torus().NumTorusLinks() are torus
// links (see torus.LinkID); IDs at or above it are extra links in order of
// registration.
type Network struct {
	t          *torus.Torus
	capacity   []float64
	failed     []bool
	nodeFailed []bool
	names      map[int]string         // extra-link names for diagnostics
	extraFrom  map[torus.NodeID][]int // node -> extra links it owns (AddLinkFrom)
	routes     *routing.Cache
}

// NewNetwork builds the link table for torus t with per-direction torus
// link capacity linkBandwidth (bytes/second).
func NewNetwork(t *torus.Torus, linkBandwidth float64) *Network {
	n := &Network{
		t:        t,
		capacity: make([]float64, t.NumTorusLinks()),
		names:    make(map[int]string),
		routes:   routing.NewCache(t),
	}
	for i := range n.capacity {
		n.capacity[i] = linkBandwidth
	}
	return n
}

// Torus returns the underlying torus.
func (n *Network) Torus() *torus.Torus { return n.t }

// NumLinks returns the total number of links, torus plus extra.
func (n *Network) NumLinks() int { return len(n.capacity) }

// NumTorusLinks returns the number of torus links (extra links have IDs at
// or beyond this value).
func (n *Network) NumTorusLinks() int { return n.t.NumTorusLinks() }

// AddLink registers an extra link with the given capacity and returns its
// ID. The name labels the link in diagnostics.
func (n *Network) AddLink(name string, capacity float64) int {
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: extra link %q has capacity %g", name, capacity))
	}
	id := len(n.capacity)
	n.capacity = append(n.capacity, capacity)
	n.names[id] = name
	return id
}

// AddLinkFrom registers an extra link owned by a torus node (e.g. a
// bridge node's 11th link). Node-failure injection (FailNode) fails the
// owner's extra links along with its torus links.
func (n *Network) AddLinkFrom(name string, from torus.NodeID, capacity float64) int {
	id := n.AddLink(name, capacity)
	if n.extraFrom == nil {
		n.extraFrom = make(map[torus.NodeID][]int)
	}
	n.extraFrom[from] = append(n.extraFrom[from], id)
	return id
}

// Capacity returns the capacity of link id in bytes/second.
func (n *Network) Capacity(id int) float64 { return n.capacity[id] }

// Route returns the default deterministic route between two torus nodes,
// served from the network's route cache while the network is failure-free.
// The returned Route shares a cached Links slice; treat it as read-only.
func (n *Network) Route(src, dst torus.NodeID) routing.Route {
	return n.routes.Route(src, dst)
}

// RouteCache exposes the network's route cache for instrumentation.
func (n *Network) RouteCache() *routing.Cache { return n.routes }

// FailLink marks a link failed. Flows submitted over failed links are
// rejected (fail-stop): fault handling belongs to the planning layer,
// which routes around failures with routing.RouteAvoiding, and to the
// engine's abort machinery for flows already in flight (FailLinkAt). The
// route cache absorbs one invalidation per failure event (see DESIGN.md
// §8): every event purges the memoized routes and bumps the failure
// epoch, so no pre-failure entry survives, while post-failure lookups
// repopulate the cache — long campaigns keep the hot path.
func (n *Network) FailLink(id int) {
	if n.failed == nil {
		n.failed = make([]bool, len(n.capacity))
	}
	n.failed[id] = true
	n.routes.Invalidate()
}

// LinkFailed reports whether a link is marked failed.
func (n *Network) LinkFailed(id int) bool {
	return n.failed != nil && id < len(n.failed) && n.failed[id]
}

// NodeLinks returns every link touching a node: its outgoing and incoming
// directed torus links (the BG/Q's 10 links, both directions) plus any
// extra links registered from it with AddLinkFrom (a bridge's 11th link).
func (n *Network) NodeLinks(id torus.NodeID) []int {
	links := make([]int, 0, 4*n.t.Dims()+1)
	seen := make(map[int]struct{}, 4*n.t.Dims()+1)
	add := func(l int) {
		if _, dup := seen[l]; !dup {
			seen[l] = struct{}{}
			links = append(links, l)
		}
	}
	for dim := 0; dim < n.t.Dims(); dim++ {
		for _, dir := range []torus.Direction{torus.Plus, torus.Minus} {
			add(n.t.LinkID(id, dim, dir))
			// The incoming link along (dim, dir) leaves the neighbor on
			// the far side, headed back at us.
			add(n.t.LinkID(n.t.Neighbor(id, dim, dir), dim, -dir))
		}
	}
	for _, l := range n.extraFrom[id] {
		add(l)
	}
	return links
}

// FailNode marks a node failed: every torus link into or out of it fails,
// along with its registered extra links, so no route can traverse it. The
// route cache absorbs a single invalidation for the whole event.
func (n *Network) FailNode(id torus.NodeID) {
	if n.nodeFailed == nil {
		n.nodeFailed = make([]bool, n.t.Size())
	}
	n.nodeFailed[id] = true
	if n.failed == nil {
		n.failed = make([]bool, len(n.capacity))
	}
	for _, l := range n.NodeLinks(id) {
		n.failed[l] = true
	}
	n.routes.Invalidate()
}

// NodeFailed reports whether a node is marked failed.
func (n *Network) NodeFailed(id torus.NodeID) bool {
	return n.nodeFailed != nil && n.nodeFailed[id]
}

// HasFailures reports whether any link is failed.
func (n *Network) HasFailures() bool {
	for _, f := range n.failed {
		if f {
			return true
		}
	}
	return false
}

// FailedFunc returns a predicate suitable for routing.RouteAvoiding.
func (n *Network) FailedFunc() func(int) bool {
	return n.LinkFailed
}

// LinkName renders a link for diagnostics.
func (n *Network) LinkName(id int) string {
	if id < n.t.NumTorusLinks() {
		return n.t.LinkString(id)
	}
	if name, ok := n.names[id]; ok {
		return name
	}
	return fmt.Sprintf("extra-link-%d", id)
}
