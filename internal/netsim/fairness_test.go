package netsim

import (
	"math/rand"
	"testing"

	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// The max-min fairness invariants, audited at every reallocation sweep of
// randomized runs:
//
//  1. feasibility: on every link, the rates of the flows crossing it sum
//     to at most the link capacity;
//  2. bottleneck: every active flow either runs at its endpoint cap or
//     crosses at least one saturated link;
//  3. max-min: on some saturated link of its route, the flow's rate is
//     the maximum among the link's flows (nobody could give it more
//     without taking from an equal-or-slower flow).
func TestMaxMinInvariantsUnderRandomLoad(t *testing.T) {
	tor := torus.MustNew(torus.Shape{4, 4, 4, 4, 2})
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 997))
		p := DefaultParams()
		net := NewNetwork(tor, p.LinkBandwidth)
		e, err := NewEngine(net, p)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(150) + 30
		var ids []FlowID
		for i := 0; i < n; i++ {
			var deps []FlowID
			if len(ids) > 0 && rng.Intn(3) == 0 {
				deps = append(deps, ids[rng.Intn(len(ids))])
			}
			ids = append(ids, e.Submit(FlowSpec{
				Src:       torus.NodeID(rng.Intn(tor.Size())),
				Dst:       torus.NodeID(rng.Intn(tor.Size())),
				Bytes:     int64(rng.Intn(4<<20) + 1),
				DependsOn: deps,
			}))
		}

		const relEps = 1e-6
		audits := 0
		e.SetSweepObserver(func(now sim.Time) {
			audits++
			active := e.ActiveFlowIDs()
			// Per-link rate sums.
			linkSum := make(map[int]float64)
			linkMax := make(map[int]float64)
			for _, id := range active {
				r, ok := e.FlowRate(id)
				if !ok {
					t.Fatal("inactive flow listed active")
				}
				for _, l := range e.FlowRouteLinks(id) {
					linkSum[l] += r
					if r > linkMax[l] {
						linkMax[l] = r
					}
				}
			}
			for l, s := range linkSum {
				if cap := net.Capacity(l); s > cap*(1+relEps) {
					t.Fatalf("link %d oversubscribed: %g > %g", l, s, cap)
				}
			}
			for _, id := range active {
				r, _ := e.FlowRate(id)
				if r >= e.FlowRateCap(id)*(1-relEps) {
					continue // bottlenecked at the endpoint cap
				}
				links := e.FlowRouteLinks(id)
				if len(links) == 0 {
					t.Fatalf("linkless flow %d below its cap", id)
				}
				bottlenecked := false
				for _, l := range links {
					saturated := linkSum[l] >= net.Capacity(l)*(1-relEps)
					if saturated && r >= linkMax[l]*(1-relEps) {
						bottlenecked = true
						break
					}
				}
				if !bottlenecked {
					t.Fatalf("flow %d at rate %g has no bottleneck (cap %g)", id, r, e.FlowRateCap(id))
				}
			}
		})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if audits == 0 {
			t.Fatal("observer never ran")
		}
	}
}
