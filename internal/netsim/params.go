// Package netsim is a flow-level, event-driven network simulator for
// torus interconnects. It models the three effects the paper's results
// depend on:
//
//  1. deterministic routes over capacity-limited directed links,
//  2. max-min fair bandwidth sharing among flows that share links, and
//  3. per-message endpoint costs at the sender, receiver, and any
//     user-space forwarding (proxy) node — the t_s / t_t / t_r
//     decomposition of the paper's Section IV-C cost model.
//
// Flows may depend on other flows: a dependent flow is released when all
// of its dependencies complete, which is how the two-phase store-and-
// forward proxy transfers are expressed. Throughput numbers are obtained
// as bytes moved divided by the makespan of the flow DAG, matching how the
// paper reports GB/s.
package netsim

import "bgqflow/internal/sim"

// Params holds the calibrated machine constants. Defaults (DefaultParams)
// model the Blue Gene/Q numbers reported in the paper and its references;
// see DESIGN.md §5 for the calibration rationale.
type Params struct {
	// LinkBandwidth is the usable bandwidth of one torus link in one
	// direction, in bytes/second. The BG/Q link is 2 GB/s raw with up to
	// 90% available for user data.
	LinkBandwidth float64

	// IONLinkBandwidth is the usable bandwidth of the 11th link from a
	// bridge node to its I/O node, in bytes/second.
	IONLinkBandwidth float64

	// PerFlowBandwidth caps the rate of any single flow, modelling
	// packetization/protocol overheads of a single deterministic path
	// (a single MPI put peaks around 1.6 GB/s on the real machine even
	// though the link carries 1.8 GB/s of user data).
	PerFlowBandwidth float64

	// LocalCopyBandwidth is the rate of a node-local transfer (source
	// and destination on the same node), i.e. a memory copy.
	LocalCopyBandwidth float64

	// SenderOverhead is the fixed per-message cost to process, queue and
	// inject a message at the sender (the fixed part of t_s).
	SenderOverhead sim.Duration

	// ReceiverOverhead is the fixed per-message cost to process, queue
	// and store a message at the receiver (the fixed part of t_r).
	ReceiverOverhead sim.Duration

	// ProxyForwardOverhead is the extra per-piece cost of a user-space
	// forward at an intermediate node: receive completion detection plus
	// the buffer handoff before re-injection. Applied by the transfer
	// plans in package core to every second-leg flow.
	ProxyForwardOverhead sim.Duration

	// HopLatency is the per-hop wire plus router latency.
	HopLatency sim.Duration
}

// DefaultParams returns the BG/Q calibration. With these constants the
// Fig. 5 microbenchmark geometry reproduces the paper's direct-transfer
// plateau (≈1.6 GB/s), the 4-proxy plateau (≈2x), and a direct/proxy
// crossover near 256 KB.
func DefaultParams() Params {
	return Params{
		LinkBandwidth:        1.8e9,  // 90% of 2 GB/s
		IONLinkBandwidth:     1.8e9,  // the 11th link is a torus-class link
		PerFlowBandwidth:     1.65e9, // single deterministic-path peak
		LocalCopyBandwidth:   12e9,   // node-local memcpy
		SenderOverhead:       15e-6,
		ReceiverOverhead:     15e-6,
		ProxyForwardOverhead: 25e-6,
		HopLatency:           40e-9,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	check := func(name string, v float64) error {
		if v <= 0 {
			return &ParamError{Name: name, Value: v}
		}
		return nil
	}
	if err := check("LinkBandwidth", p.LinkBandwidth); err != nil {
		return err
	}
	if err := check("IONLinkBandwidth", p.IONLinkBandwidth); err != nil {
		return err
	}
	if err := check("PerFlowBandwidth", p.PerFlowBandwidth); err != nil {
		return err
	}
	if err := check("LocalCopyBandwidth", p.LocalCopyBandwidth); err != nil {
		return err
	}
	if p.SenderOverhead < 0 || p.ReceiverOverhead < 0 || p.ProxyForwardOverhead < 0 || p.HopLatency < 0 {
		return &ParamError{Name: "overheads", Value: -1}
	}
	return nil
}

// ParamError reports an invalid parameter.
type ParamError struct {
	Name  string
	Value float64
}

func (e *ParamError) Error() string {
	return "netsim: invalid parameter " + e.Name
}
