package netsim

import (
	"testing"

	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

// Regression for the duplicate-link corruption found by the check
// package's differential oracle (seed 9, archived under
// internal/check/testdata/divergences/seed9-duplicate-links.json): an
// explicit route listing a link twice put the flow into that link's
// linkFlows list twice, which halved the flow's waterfill share,
// double-charged the link's byte counter, and left a stale linkFlows
// entry behind when the flow ended (removeFromLink removes one
// instance). A route is a set of occupied links; duplicates must
// collapse.
func TestSubmitDedupsExplicitLinks(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{0, 0, 1, 0, 0})
	route := routing.DeterministicRoute(tor, src, dst).Links
	const bytes = 1 << 20

	run := func(links []int) (FlowResult, []float64) {
		e := newTestEngine(t, tor, p)
		id := e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: bytes, Links: links})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Result(id), append([]float64(nil), e.LinkBytes()...)
	}

	clean, cleanBytes := run(append([]int(nil), route...))
	dup := append(append([]int(nil), route...), route...) // every link twice
	got, gotBytes := run(dup)

	if got.Completed != clean.Completed || got.TransferEnd != clean.TransferEnd {
		t.Fatalf("duplicated route changed the timeline: completed %v vs %v", got.Completed, clean.Completed)
	}
	for l := range gotBytes {
		if gotBytes[l] != cleanBytes[l] {
			t.Fatalf("link %d carried %g bytes with duplicated route, %g with clean route", l, gotBytes[l], cleanBytes[l])
		}
	}
	for _, l := range route {
		if gotBytes[l] != bytes {
			t.Fatalf("link %d carried %g bytes, want %d", l, gotBytes[l], bytes)
		}
	}
}

// A flow over a duplicated link must not leave stale linkFlows state
// behind: a second flow submitted over the same link after the first
// completes must see the full link to itself.
func TestDedupNoStaleLinkStateAcrossFlows(t *testing.T) {
	tor := mira128()
	p := DefaultParams()
	src := tor.ID(torus.Coord{0, 0, 0, 0, 0})
	dst := tor.ID(torus.Coord{0, 0, 1, 0, 0})
	route := routing.DeterministicRoute(tor, src, dst).Links
	dup := append(append([]int(nil), route...), route[0])
	const bytes = 1 << 20

	e := newTestEngine(t, tor, p)
	first := e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: bytes, Links: dup})
	second := e.Submit(FlowSpec{Src: src, Dst: dst, Bytes: bytes, Links: append([]int(nil), route...),
		DependsOn: []FlowID{first}})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	r1, r2 := e.Result(first), e.Result(second)
	if !r1.Done || !r2.Done {
		t.Fatalf("flows not done: %+v, %+v", r1, r2)
	}
	// Both flows run alone on the route, so their transfer spans must be
	// identical.
	span1 := float64(r1.TransferEnd - r1.Activated)
	span2 := float64(r2.TransferEnd - r2.Activated)
	approx(t, "second flow transfer span", span2, span1, 1e-9)
}

func TestDedupLinksLeavesCleanRoutesAlone(t *testing.T) {
	clean := []int{3, 1, 4, 15, 9, 2, 6}
	if got := dedupLinks(clean); &got[0] != &clean[0] || len(got) != len(clean) {
		t.Fatalf("dedupLinks copied a duplicate-free route")
	}
	cases := []struct {
		in, want []int
	}{
		{[]int{5, 5}, []int{5}},
		{[]int{1, 2, 1, 3, 2, 4}, []int{1, 2, 3, 4}},
		{[]int{7, 7, 7, 7}, []int{7}},
		{[]int{0, 1, 2, 0}, []int{0, 1, 2}},
	}
	for _, c := range cases {
		got := dedupLinks(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("dedupLinks(%v) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("dedupLinks(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

// TestSameInstantDedupBatchMatchesGlobal crosses the duplicate-link
// regression with the same-instant batching contract: a batch of flows
// activating at one virtual instant — some over routes listing links
// multiple times — must trigger exactly one sweep in incremental mode,
// and that sweep's outcome must be bit-identical to the global engine's,
// with each duplicated link counted once in rate shares and byte
// charges.
func TestSameInstantDedupBatchMatchesGlobal(t *testing.T) {
	const (
		nDup   = 4
		nClean = 2
		bytes  = 1 << 20
	)
	p := DefaultParams()
	logs := map[SweepMode]*sweepLog{}
	inc, glb := twinRun(t, p, func(e *Engine) {
		sl := &sweepLog{}
		logs[e.SweepMode()] = sl
		e.SetSink(sl)
		for i := 0; i < nDup; i++ {
			e.Submit(FlowSpec{Src: 0, Dst: 1, Bytes: bytes, Links: []int{5, 5, 9, 9, 5}})
		}
		for i := 0; i < nClean; i++ {
			e.Submit(FlowSpec{Src: 2, Dst: 3, Bytes: bytes, Links: []int{9}})
		}
	})
	requireIdenticalRuns(t, inc, glb, true)

	// Link 9 carries all six flows (the batch's bottleneck), link 5 only
	// the four deduplicated routes; each flow's full size crosses each
	// route link exactly once.
	lb := inc.LinkBytes()
	if lb[5] != nDup*bytes || lb[9] != (nDup+nClean)*bytes {
		t.Fatalf("link bytes 5=%g 9=%g, want %d and %d", lb[5], lb[9], nDup*bytes, (nDup+nClean)*bytes)
	}
	r0 := inc.Result(FlowID(0))
	approx(t, "dup flow transfer span",
		float64(r0.TransferEnd-r0.Activated), float64(bytes)/(p.LinkBandwidth/(nDup+nClean)), 1e-9)

	activateAt := r0.Activated
	for mode, sl := range logs {
		atInstant := 0
		for _, at := range sl.times {
			if at == activateAt {
				atInstant++
			}
		}
		if atInstant != 1 {
			t.Fatalf("mode %d: %d sweeps at the activation instant, want exactly 1 (times %v)",
				mode, atInstant, sl.times)
		}
	}
	if il := logs[SweepIncremental]; il.flows[0] != nDup+nClean {
		t.Fatalf("batched sweep covered %d flows, want %d", il.flows[0], nDup+nClean)
	}
	if full, _ := inc.SweepStats(); full != 0 {
		t.Fatalf("incremental engine fell back to %d full sweeps", full)
	}
}
