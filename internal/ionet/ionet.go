// Package ionet models the Blue Gene/Q I/O subsystem on top of a netsim
// network: psets (groups of 128 compute nodes), bridge nodes (two per
// pset), and the 11th links from bridge nodes to I/O nodes.
//
// I/O traffic on the BG/Q is routed deterministically from a compute node
// to its statically assigned default bridge node over the torus, then over
// that bridge's 11th link to the I/O node. The paper's I/O benchmarks
// write to /dev/null, so the I/O path ends at the I/O node; all contention
// of interest is on the torus legs and the 11th links, which is what this
// package models.
package ionet

import (
	"fmt"

	"bgqflow/internal/netsim"
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

// Config sizes the I/O subsystem.
type Config struct {
	// PsetSize is the number of compute nodes per pset (BG/Q: 128).
	PsetSize int
	// BridgesPerPset is the number of bridge nodes per pset (BG/Q: 2).
	BridgesPerPset int
	// IONLinkBandwidth is the capacity of each 11th link, bytes/second.
	IONLinkBandwidth float64
}

// DefaultConfig returns the BG/Q values.
func DefaultConfig() Config {
	return Config{PsetSize: 128, BridgesPerPset: 2, IONLinkBandwidth: 1.8e9}
}

// Pset is one I/O grouping: a rectangular box of compute nodes, its bridge
// nodes, and the I/O node they uplink to.
type Pset struct {
	Index   int
	Box     torus.Box
	Bridges []torus.NodeID
	// uplinks[i] is the netsim link ID of Bridges[i]'s 11th link.
	uplinks []int
}

// ION identifies an I/O node; there is one per pset.
type ION int

// System is the built I/O topology for one partition.
type System struct {
	cfg        Config
	tor        *torus.Torus
	net        *netsim.Network
	psets      []Pset
	nodePset   []int          // node -> pset index
	nodeBridge []torus.NodeID // node -> default bridge node
	nodeUplink []int          // node -> default bridge's 11th-link ID
	nodeBrIdx  []int          // node -> default bridge index within pset
	bridgeDead [][]bool       // pset -> bridge index -> failed over
}

// Build carves the partition into psets, places bridge nodes, registers
// the 11th links on the network, and assigns every compute node its
// default bridge. The pset count must divide the partition into equal
// rectangular blocks (true for all BG/Q partition geometries).
func Build(net *netsim.Network, cfg Config) (*System, error) {
	tor := net.Torus()
	if tor == nil {
		return nil, fmt.Errorf("ionet: I/O forwarding requires a torus fabric, got %s", net.Topology().Kind())
	}
	if cfg.PsetSize < 1 || tor.Size()%cfg.PsetSize != 0 {
		return nil, fmt.Errorf("ionet: pset size %d does not divide partition size %d", cfg.PsetSize, tor.Size())
	}
	if cfg.BridgesPerPset < 1 || cfg.PsetSize%cfg.BridgesPerPset != 0 {
		return nil, fmt.Errorf("ionet: %d bridges per pset does not divide pset size %d", cfg.BridgesPerPset, cfg.PsetSize)
	}
	if cfg.IONLinkBandwidth <= 0 {
		return nil, fmt.Errorf("ionet: ION link bandwidth %g must be positive", cfg.IONLinkBandwidth)
	}
	nPsets := tor.Size() / cfg.PsetSize
	psetBoxes, err := torus.WholeBox(tor).Blocks(nPsets)
	if err != nil {
		return nil, fmt.Errorf("ionet: cannot carve %d psets from %v: %w", nPsets, tor.Shape(), err)
	}
	s := &System{
		cfg:        cfg,
		tor:        tor,
		net:        net,
		nodePset:   make([]int, tor.Size()),
		nodeBridge: make([]torus.NodeID, tor.Size()),
		nodeUplink: make([]int, tor.Size()),
		nodeBrIdx:  make([]int, tor.Size()),
	}
	for pi, box := range psetBoxes {
		ps := Pset{Index: pi, Box: box}
		bridgeBlocks, err := box.Blocks(cfg.BridgesPerPset)
		if err != nil {
			return nil, fmt.Errorf("ionet: cannot place %d bridges in pset %v: %w", cfg.BridgesPerPset, box, err)
		}
		for bi, bb := range bridgeBlocks {
			bridge := tor.ID(bb.Corner())
			// Register the 11th link as owned by the bridge so node-failure
			// injection (netsim.FailNode) takes the uplink down with it.
			uplink := net.AddLinkFrom(
				fmt.Sprintf("pset%d/bridge%d->ion%d", pi, bi, pi),
				bridge, cfg.IONLinkBandwidth)
			ps.Bridges = append(ps.Bridges, bridge)
			ps.uplinks = append(ps.uplinks, uplink)
			for _, n := range bb.Nodes(tor) {
				s.nodePset[n] = pi
				s.nodeBridge[n] = bridge
				s.nodeUplink[n] = uplink
				s.nodeBrIdx[n] = bi
			}
		}
		s.psets = append(s.psets, ps)
		s.bridgeDead = append(s.bridgeDead, make([]bool, cfg.BridgesPerPset))
	}
	return s, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// NumPsets returns the number of psets (equal to the number of I/O nodes).
func (s *System) NumPsets() int { return len(s.psets) }

// NumIONodes returns the number of I/O nodes available to the partition.
func (s *System) NumIONodes() int { return len(s.psets) }

// Pset returns pset i.
func (s *System) Pset(i int) *Pset { return &s.psets[i] }

// PsetOf returns the pset containing node n.
func (s *System) PsetOf(n torus.NodeID) *Pset { return &s.psets[s.nodePset[n]] }

// IONOf returns the I/O node that node n's default path leads to.
func (s *System) IONOf(n torus.NodeID) ION { return ION(s.nodePset[n]) }

// DefaultBridge returns node n's statically assigned bridge node.
func (s *System) DefaultBridge(n torus.NodeID) torus.NodeID { return s.nodeBridge[n] }

// DefaultPath returns node n's default pset index and bridge index — the
// (pi, bi) pair its unassisted writes travel through.
func (s *System) DefaultPath(n torus.NodeID) (pi, bi int) {
	return s.nodePset[n], s.nodeBrIdx[n]
}

// Uplink returns the 11th-link ID of bridge index bi within pset pi.
func (p *Pset) Uplink(bi int) int { return p.uplinks[bi] }

// BridgeDead reports whether bridge bi of pset pi has been failed over.
func (s *System) BridgeDead(pi, bi int) bool { return s.bridgeDead[pi][bi] }

// LiveBridge returns a live bridge index of pset pi, preferring the given
// index. It returns -1 when every bridge of the pset is dead.
func (s *System) LiveBridge(pi, prefer int) int {
	dead := s.bridgeDead[pi]
	if !dead[prefer] {
		return prefer
	}
	for off := 1; off < len(dead); off++ {
		if bi := (prefer + off) % len(dead); !dead[bi] {
			return bi
		}
	}
	return -1
}

// FailBridge records bridge bi of pset pi as dead and reassigns every
// compute node whose default path used it to the next surviving bridge of
// the pset (deterministically: the first live index after bi, wrapping).
// It is the I/O-level failover response; the physical failure itself is
// injected on the netsim side (FailNode / a fault campaign). It returns an
// error when the pset has no surviving bridge — that pset can no longer
// reach its I/O node.
func (s *System) FailBridge(pi, bi int) error {
	if s.bridgeDead[pi][bi] {
		return nil
	}
	s.bridgeDead[pi][bi] = true
	to := s.LiveBridge(pi, bi)
	if to < 0 {
		return fmt.Errorf("ionet: pset %d lost all %d bridges", pi, s.cfg.BridgesPerPset)
	}
	ps := &s.psets[pi]
	for _, n := range ps.Box.Nodes(s.tor) {
		if s.nodeBrIdx[n] == bi {
			s.nodeBrIdx[n] = to
			s.nodeBridge[n] = ps.Bridges[to]
			s.nodeUplink[n] = ps.uplinks[to]
		}
	}
	return nil
}

// HandleNodeFailure is the hook for netsim's failure observer: when the
// failed node is a bridge, its pset fails over to the surviving bridge.
// It reports whether a failover happened (false for non-bridge nodes).
func (s *System) HandleNodeFailure(n torus.NodeID) (bool, error) {
	pi := s.nodePset[n]
	for bi, b := range s.psets[pi].Bridges {
		if b == n {
			return true, s.FailBridge(pi, bi)
		}
	}
	return false, nil
}

// torusLeg routes the compute-fabric leg of a write. While the network has
// failures it prefers a fault-avoiding route; when none exists among the
// realizable dimension orders it falls back to the default route, and the
// engine's fail-stop check surfaces the gap at submit.
func (s *System) torusLeg(n, bridge torus.NodeID) []int {
	if s.net.HasFailures() {
		if r, err := routing.RouteAvoiding(s.tor, n, bridge, s.net.FailedFunc()); err == nil {
			return r.Links
		}
	}
	return s.net.Route(n, bridge).Links
}

// WriteRoute returns the full link path of a default-path write from node
// n to its I/O node: the torus route to n's default bridge (post-failover
// assignment, avoiding failed links when possible), then the bridge's
// 11th link. The returned destination is the bridge node (the flow's last
// compute-fabric endpoint).
func (s *System) WriteRoute(n torus.NodeID) (links []int, bridge torus.NodeID) {
	bridge = s.nodeBridge[n]
	leg := s.torusLeg(n, bridge)
	links = make([]int, 0, len(leg)+1)
	links = append(links, leg...)
	links = append(links, s.nodeUplink[n])
	return links, bridge
}

// WriteRouteVia returns the write path from node n through a specific
// bridge of a specific pset (used by aggregators that are assigned a
// bridge explicitly to balance the two 11th links of their pset). A dead
// bridge silently fails over to the pset's surviving one; it panics when
// the pset has no live bridge left.
func (s *System) WriteRouteVia(n torus.NodeID, pi, bi int) (links []int, bridge torus.NodeID) {
	ps := &s.psets[pi]
	if live := s.LiveBridge(pi, bi); live != bi {
		if live < 0 {
			panic(fmt.Sprintf("ionet: pset %d has no live bridge", pi))
		}
		bi = live
	}
	bridge = ps.Bridges[bi]
	leg := s.torusLeg(n, bridge)
	links = make([]int, 0, len(leg)+1)
	links = append(links, leg...)
	links = append(links, ps.uplinks[bi])
	return links, bridge
}

// PsetAggregateIOBandwidth returns the maximum I/O bandwidth of one pset
// (the sum of its 11th links), e.g. 3.6 GB/s usable on the BG/Q.
func (s *System) PsetAggregateIOBandwidth() float64 {
	return float64(s.cfg.BridgesPerPset) * s.cfg.IONLinkBandwidth
}
