package ionet

import (
	"testing"

	"bgqflow/internal/netsim"
	"bgqflow/internal/torus"
)

func build(t *testing.T, shape torus.Shape, cfg Config) (*System, *netsim.Network) {
	t.Helper()
	tor := torus.MustNew(shape)
	net := netsim.NewNetwork(tor, 1.8e9)
	s, err := Build(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, net
}

func TestBuildMira2K(t *testing.T) {
	s, _ := build(t, torus.Shape{4, 4, 4, 16, 2}, DefaultConfig())
	if s.NumPsets() != 16 {
		t.Fatalf("2048 nodes / 128 = 16 psets, got %d", s.NumPsets())
	}
	if s.NumIONodes() != 16 {
		t.Fatalf("NumIONodes = %d, want 16", s.NumIONodes())
	}
	for i := 0; i < s.NumPsets(); i++ {
		ps := s.Pset(i)
		if ps.Box.Size() != 128 {
			t.Fatalf("pset %d has %d nodes", i, ps.Box.Size())
		}
		if len(ps.Bridges) != 2 {
			t.Fatalf("pset %d has %d bridges", i, len(ps.Bridges))
		}
	}
}

func TestEveryNodeAssignedToItsOwnPset(t *testing.T) {
	s, _ := build(t, torus.Shape{4, 4, 4, 16, 2}, DefaultConfig())
	tor := torus.MustNew(torus.Shape{4, 4, 4, 16, 2})
	counts := make(map[int]int)
	for n := torus.NodeID(0); int(n) < tor.Size(); n++ {
		ps := s.PsetOf(n)
		if !ps.Box.Contains(tor.Coord(n)) {
			t.Fatalf("node %d assigned to pset %d whose box %v excludes it", n, ps.Index, ps.Box)
		}
		counts[ps.Index]++
		if ION(ps.Index) != s.IONOf(n) {
			t.Fatalf("node %d ION mismatch", n)
		}
	}
	for pi, c := range counts {
		if c != 128 {
			t.Fatalf("pset %d has %d assigned nodes", pi, c)
		}
	}
}

func TestBridgeIsInsideItsPset(t *testing.T) {
	s, _ := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	for i := 0; i < s.NumPsets(); i++ {
		ps := s.Pset(i)
		for _, b := range ps.Bridges {
			if !ps.Box.Contains(tor.Coord(b)) {
				t.Fatalf("bridge %d outside pset %d", b, i)
			}
		}
	}
}

func TestDefaultBridgeIsLocal(t *testing.T) {
	s, _ := build(t, torus.Shape{4, 4, 4, 16, 2}, DefaultConfig())
	tor := torus.MustNew(torus.Shape{4, 4, 4, 16, 2})
	for n := torus.NodeID(0); int(n) < tor.Size(); n += 7 {
		b := s.DefaultBridge(n)
		if s.PsetOf(b).Index != s.PsetOf(n).Index {
			t.Fatalf("node %d default bridge %d is in a different pset", n, b)
		}
		_ = tor
	}
}

func TestWriteRouteEndsOnUplink(t *testing.T) {
	s, net := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	tor := net.Torus()
	for n := torus.NodeID(0); int(n) < tor.Size(); n += 5 {
		links, bridge := s.WriteRoute(n)
		if len(links) == 0 {
			t.Fatalf("node %d write route empty", n)
		}
		last := links[len(links)-1]
		if last < net.NumTorusLinks() {
			t.Fatalf("node %d write route does not end on an 11th link", n)
		}
		if bridge != s.DefaultBridge(n) {
			t.Fatalf("node %d write route bridge mismatch", n)
		}
		// Torus prefix must be exactly the deterministic route to the bridge.
		if got, want := len(links)-1, tor.HopDistance(n, bridge); got != want {
			t.Fatalf("node %d torus prefix %d hops, want %d", n, got, want)
		}
	}
}

func TestWriteRouteViaSelectsBridge(t *testing.T) {
	s, net := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	ps := s.Pset(0)
	n := torus.NodeID(0)
	for bi := range ps.Bridges {
		links, bridge := s.WriteRouteVia(n, 0, bi)
		if bridge != ps.Bridges[bi] {
			t.Fatalf("WriteRouteVia bridge = %d, want %d", bridge, ps.Bridges[bi])
		}
		if links[len(links)-1] != ps.Uplink(bi) {
			t.Fatalf("WriteRouteVia does not end on uplink %d", ps.Uplink(bi))
		}
	}
	_ = net
}

func TestUplinksDistinct(t *testing.T) {
	s, _ := build(t, torus.Shape{4, 4, 4, 16, 2}, DefaultConfig())
	seen := map[int]bool{}
	for i := 0; i < s.NumPsets(); i++ {
		ps := s.Pset(i)
		for bi := range ps.Bridges {
			l := ps.Uplink(bi)
			if seen[l] {
				t.Fatalf("uplink %d reused", l)
			}
			seen[l] = true
		}
	}
	if len(seen) != s.NumPsets()*2 {
		t.Fatalf("%d uplinks, want %d", len(seen), s.NumPsets()*2)
	}
}

func TestPsetAggregateIOBandwidth(t *testing.T) {
	s, _ := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	if got := s.PsetAggregateIOBandwidth(); got != 2*1.8e9 {
		t.Fatalf("pset aggregate I/O bandwidth = %g, want 3.6e9", got)
	}
}

func TestBuildValidation(t *testing.T) {
	tor := torus.MustNew(torus.Shape{2, 2, 4, 4, 2})
	net := netsim.NewNetwork(tor, 1.8e9)
	if _, err := Build(net, Config{PsetSize: 100, BridgesPerPset: 2, IONLinkBandwidth: 1}); err == nil {
		t.Error("pset size not dividing partition accepted")
	}
	if _, err := Build(net, Config{PsetSize: 128, BridgesPerPset: 3, IONLinkBandwidth: 1}); err == nil {
		t.Error("bridges not dividing pset accepted")
	}
	if _, err := Build(net, Config{PsetSize: 128, BridgesPerPset: 2, IONLinkBandwidth: 0}); err == nil {
		t.Error("zero ION bandwidth accepted")
	}
}

func TestSmallPartitionSinglePset(t *testing.T) {
	s, _ := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	if s.NumPsets() != 1 {
		t.Fatalf("128-node partition should have 1 pset, got %d", s.NumPsets())
	}
}

func TestFailBridgeReassignsNodes(t *testing.T) {
	s, _ := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	ps := s.Pset(0)
	if err := s.FailBridge(0, 0); err != nil {
		t.Fatal(err)
	}
	if !s.BridgeDead(0, 0) || s.BridgeDead(0, 1) {
		t.Fatal("failover state wrong")
	}
	box := s.Pset(0).Box
	for _, n := range box.Nodes(s.net.Torus()) {
		if s.DefaultBridge(n) != ps.Bridges[1] {
			t.Fatalf("node %d still assigned to the dead bridge", n)
		}
		links, bridge := s.WriteRoute(n)
		if bridge != ps.Bridges[1] {
			t.Fatalf("node %d writes via %d, want surviving bridge %d", n, bridge, ps.Bridges[1])
		}
		if links[len(links)-1] != ps.Uplink(1) {
			t.Fatalf("node %d write route does not end on the surviving uplink", n)
		}
	}
	// FailBridge is idempotent.
	if err := s.FailBridge(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFailBridgeAllDeadErrors(t *testing.T) {
	s, _ := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	if err := s.FailBridge(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailBridge(0, 1); err == nil {
		t.Fatal("losing every bridge of a pset must error")
	}
}

func TestWriteRouteViaDeadBridgeFailsOver(t *testing.T) {
	s, _ := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	ps := s.Pset(0)
	if err := s.FailBridge(0, 0); err != nil {
		t.Fatal(err)
	}
	links, bridge := s.WriteRouteVia(torus.NodeID(3), 0, 0)
	if bridge != ps.Bridges[1] {
		t.Fatalf("WriteRouteVia dead bridge returned %d, want surviving %d", bridge, ps.Bridges[1])
	}
	if links[len(links)-1] != ps.Uplink(1) {
		t.Fatal("failover route does not end on the surviving uplink")
	}
}

// TestBridgeNodeFailureEndToEnd injects a physical bridge-node failure on
// the netsim side, fails over via HandleNodeFailure, and checks that
// post-failover write routes avoid every failed link — including the dead
// bridge's 11th link, which AddLinkFrom ties to its owner.
func TestBridgeNodeFailureEndToEnd(t *testing.T) {
	s, net := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	ps := s.Pset(0)
	dead := ps.Bridges[0]
	net.FailNode(dead)
	if !net.LinkFailed(ps.Uplink(0)) {
		t.Fatal("bridge node failure did not take its 11th link down")
	}
	wasBridge, err := s.HandleNodeFailure(dead)
	if err != nil || !wasBridge {
		t.Fatalf("HandleNodeFailure = (%v, %v), want bridge failover", wasBridge, err)
	}
	if was, err := s.HandleNodeFailure(torus.NodeID(3)); was || err != nil {
		t.Fatal("non-bridge node reported as bridge failover")
	}
	p := netsim.DefaultParams()
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	var writers int
	for n := torus.NodeID(0); int(n) < net.Torus().Size(); n += 11 {
		if n == dead {
			continue
		}
		links, bridge := s.WriteRoute(n)
		for _, l := range links {
			if net.LinkFailed(l) {
				t.Fatalf("node %d post-failover write route crosses a failed link", n)
			}
		}
		e.Submit(netsim.FlowSpec{Src: n, Dst: bridge, Bytes: 1 << 20, Links: links})
		writers++
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	done, aborted := e.Outcomes()
	if done != writers || aborted != 0 {
		t.Fatalf("degraded pset drained %d/%d writes (%d aborted)", done, writers, aborted)
	}
}

// End-to-end: two compute nodes writing through the same default bridge
// contend on the 11th link.
func TestWritesShareUplink(t *testing.T) {
	s, net := build(t, torus.Shape{2, 2, 4, 4, 2}, DefaultConfig())
	p := netsim.DefaultParams()
	p.SenderOverhead, p.ReceiverOverhead, p.HopLatency = 0, 0, 0
	p.PerFlowBandwidth = 100e9 // uplink is the constraint
	e, err := netsim.NewEngine(net, p)
	if err != nil {
		t.Fatal(err)
	}
	// Find two distinct nodes with the same default bridge and disjoint
	// torus routes to it (pick nodes adjacent to the bridge).
	bridge := s.Pset(0).Bridges[0]
	tor := net.Torus()
	var writers []torus.NodeID
	for n := torus.NodeID(0); int(n) < tor.Size() && len(writers) < 2; n++ {
		if s.DefaultBridge(n) == bridge && tor.HopDistance(n, bridge) == 1 {
			writers = append(writers, n)
		}
	}
	if len(writers) < 2 {
		t.Fatal("could not find two 1-hop writers")
	}
	const bytes = 32 << 20
	for _, w := range writers {
		links, br := s.WriteRoute(w)
		e.Submit(netsim.FlowSpec{Src: w, Dst: br, Bytes: bytes, Links: links})
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * float64(bytes) / 1.8e9
	if got := float64(mk); got < want*(1-1e-9) || got > want*(1+1e-9) {
		t.Fatalf("shared-uplink makespan %g, want %g", got, want)
	}
}
