package ionet

import (
	"bgqflow/internal/netsim"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// Sink abstracts where a write burst ends. The paper's benchmarks write
// to /dev/null on the I/O node (DevNull); the storage package provides a
// GPFS-like sink that continues over the InfiniBand fabric to file
// servers, reproducing the full Figure 1 path.
type Sink interface {
	// WriteFlows builds the flow path for one write of bytes at file
	// offset off, issued by node n through pset pi / bridge bi. It
	// returns the compute-fabric leg to the I/O node, plus any
	// continuation flows beyond the ION; every continuation is to be
	// submitted depending on the fabric leg (store-and-forward at the
	// I/O node) and continuations run in parallel with each other
	// (stripes to different servers). When continuations is empty the
	// fabric leg is the final delivery. ExtraDelay fields come
	// pre-filled with the sink's forwarding costs.
	WriteFlows(n torus.NodeID, pi, bi int, off, bytes int64) (fabric netsim.FlowSpec, continuations []netsim.FlowSpec)
}

// DevNull is the paper's evaluation sink: the write path ends at the I/O
// node (data is discarded there), so each write is a single flow over
// the torus route to the bridge plus the 11th link.
type DevNull struct {
	S *System
	// ForwardDelay is charged at the aggregator before the write leaves
	// (the user-space receive-then-write turnaround).
	ForwardDelay sim.Duration
}

// WriteFlows implements Sink.
func (d DevNull) WriteFlows(n torus.NodeID, pi, bi int, off, bytes int64) (netsim.FlowSpec, []netsim.FlowSpec) {
	links, bridge := d.S.WriteRouteVia(n, pi, bi)
	return netsim.FlowSpec{
		Src: n, Dst: bridge, Bytes: bytes, Links: links,
		ExtraDelay: d.ForwardDelay,
	}, nil
}
