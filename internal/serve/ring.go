package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"bgqflow/internal/cluster"
	"bgqflow/internal/obs"
	"bgqflow/internal/scenario"
)

// RingClient is the client side of the bgqd cluster (DESIGN.md §17): it
// routes every request to the replica owning its key on a
// consistent-hash ring, fails over down the successor ladder when a
// replica dies, and threads one shared min-vector through all
// per-replica clients so a fault acknowledged anywhere is reflected in
// every subsequent plan (read-your-writes across the fleet).
//
// Plans route by their cache key — the same couple always lands on the
// same replica, so the fleet's aggregate cache behaves like one big
// sharded cache. Transfer sessions route by session ID; on failover the
// idempotent re-POST re-arms the session on the successor without
// duplicating it. Fault posts rotate across replicas, exercising
// origination everywhere.
type RingClient struct {
	ring    *cluster.Ring
	reg     *obs.Registry
	retry   RetryPolicy
	tracer  *obs.WallRecorder
	clients map[string]*Client // by member ID

	mu       sync.Mutex
	minVec   cluster.Vector
	down     map[string]time.Time // member ID -> cooldown expiry
	faultRR  int
	cooldown time.Duration
}

// NewRingClient builds a ring client over the given members. Every
// member address must parse; the ring uses default vnodes so routing
// matches every other client built from the same member list.
func NewRingClient(members []cluster.Member) (*RingClient, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("serve: ring client needs at least one member")
	}
	rc := &RingClient{
		ring:     cluster.NewRing(0, members...),
		reg:      obs.NewRegistry(),
		retry:    DefaultRetryPolicy(),
		clients:  make(map[string]*Client, len(members)),
		minVec:   cluster.Vector{},
		down:     make(map[string]time.Time),
		cooldown: 2 * time.Second,
	}
	for _, m := range members {
		c, err := NewClient(m.Addr)
		if err != nil {
			return nil, fmt.Errorf("serve: ring member %s: %w", m.ID, err)
		}
		c.SetVectorHooks(rc.minVector, rc.mergeMinVector)
		c.SetMetrics(rc.reg)
		rc.clients[m.ID] = c
	}
	return rc, nil
}

// SetRetryPolicy sets the per-replica retry policy (429/503 responses
// retry against the SAME replica — a stale 503 resolves by waiting for
// gossip, not by moving). Transport errors always fail over to the next
// successor regardless of policy. Configure before use.
func (rc *RingClient) SetRetryPolicy(p RetryPolicy) {
	// RetryConn stays off per replica: a refused connection means the
	// replica is gone and the ladder handles it.
	p.RetryConn = false
	rc.retry = p
	for _, c := range rc.clients {
		c.SetRetryPolicy(p)
	}
}

// SetTracer attaches one wall recorder to every per-replica client.
// Configure before use.
func (rc *RingClient) SetTracer(t *obs.WallRecorder) {
	rc.tracer = t
	for _, c := range rc.clients {
		c.SetTracer(t)
	}
}

// Registry exposes the ring client's metrics: serve/ring/failovers,
// serve/ring/stale_served, serve/ring/all_down, plus the per-replica
// client anomaly counters.
func (rc *RingClient) Registry() *obs.Registry { return rc.reg }

// Members returns the ring membership sorted by ID.
func (rc *RingClient) Members() []cluster.Member { return rc.ring.Members() }

// Client returns the underlying per-replica client (nil for unknown
// IDs) — tests and per-replica probes use it directly.
func (rc *RingClient) Client(id string) *Client { return rc.clients[id] }

// MinVector returns the fault-epoch vector the ring client currently
// demands of every plan.
func (rc *RingClient) MinVector() string { return rc.minVector() }

// StaleServed reports how many responses arrived with a vector that did
// NOT dominate the demanded min vector — the chaos-soak gate; the
// server-side check makes this impossible, so any nonzero count is a
// staleness bug.
func (rc *RingClient) StaleServed() int64 {
	return rc.reg.Counter("serve/ring/stale_served").Value()
}

func (rc *RingClient) minVector() string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.minVec.String()
}

func (rc *RingClient) mergeMinVector(v string) {
	parsed, err := cluster.ParseVector(v)
	if err != nil {
		rc.reg.Counter("serve/client/bad_vector").Inc()
		return
	}
	rc.mu.Lock()
	rc.minVec.Merge(parsed)
	rc.mu.Unlock()
}

// markDown starts a cooldown for a member that failed at the transport
// level; ladder walks skip it until the cooldown expires.
func (rc *RingClient) markDown(id string) {
	rc.mu.Lock()
	rc.down[id] = time.Now().Add(rc.cooldown)
	rc.mu.Unlock()
}

func (rc *RingClient) isDown(id string) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	until, ok := rc.down[id]
	if !ok {
		return false
	}
	if time.Now().After(until) {
		delete(rc.down, id)
		return false
	}
	return true
}

// ladder returns the key's failover ladder with cooled-down members
// moved to the back (never dropped — if everyone is marked down the
// walk still tries them all).
func (rc *RingClient) ladder(key string) []cluster.Member {
	all := rc.ring.Successors(key, rc.ring.Len())
	up := make([]cluster.Member, 0, len(all))
	var cooled []cluster.Member
	for _, m := range all {
		if rc.isDown(m.ID) {
			cooled = append(cooled, m)
		} else {
			up = append(up, m)
		}
	}
	return append(up, cooled...)
}

// do walks the key's ladder: each rung gets the full per-replica retry
// policy (429 shed and 503 stale retry in place); a transport error
// marks the rung down and falls through to the successor. The response
// vector is checked against the min vector demanded at send time — a
// violation counts on serve/ring/stale_served.
func (rc *RingClient) do(ctx context.Context, key string, call func(*Client) (PlanResult, error)) (PlanResult, error) {
	demanded := rc.minVector()
	var lastErr error
	for i, m := range rc.ladder(key) {
		if err := ctx.Err(); err != nil {
			return PlanResult{}, err
		}
		if i > 0 {
			rc.reg.Counter("serve/ring/failovers").Inc()
		}
		res, err := call(rc.clients[m.ID])
		if err != nil {
			rc.markDown(m.ID)
			lastErr = err
			continue
		}
		if res.OK() && demanded != "" {
			rc.checkServedVector(res.Vector, demanded)
		}
		return res, nil
	}
	rc.reg.Counter("serve/ring/all_down").Inc()
	return PlanResult{}, fmt.Errorf("serve: all ring members failed for key: %w", lastErr)
}

// checkServedVector verifies a served plan's vector dominates what the
// client demanded. The server enforces this; the client re-checks so a
// staleness bug is caught at the oracle, not trusted.
func (rc *RingClient) checkServedVector(served, demanded string) {
	want, err := cluster.ParseVector(demanded)
	if err != nil {
		return
	}
	got, err := cluster.ParseVector(served)
	if err != nil || !got.Dominates(want) {
		rc.reg.Counter("serve/ring/stale_served").Inc()
	}
}

// PlanPair requests a point-to-point plan from the replica owning it.
func (rc *RingClient) PlanPair(ctx context.Context, req PairRequest) (PlanResult, error) {
	return rc.do(ctx, req.cacheKey(), func(c *Client) (PlanResult, error) {
		return c.PlanPair(ctx, req)
	})
}

// PlanGroup requests a group-coupling plan from the replica owning it.
func (rc *RingClient) PlanGroup(ctx context.Context, req GroupRequest) (PlanResult, error) {
	return rc.do(ctx, req.cacheKey(), func(c *Client) (PlanResult, error) {
		return c.PlanGroup(ctx, req)
	})
}

// PlanAgg requests an I/O aggregation plan from the replica owning it.
func (rc *RingClient) PlanAgg(ctx context.Context, req AggRequest) (PlanResult, error) {
	return rc.do(ctx, req.cacheKey(), func(c *Client) (PlanResult, error) {
		return c.PlanAgg(ctx, req)
	})
}

// Simulate runs a declarative scenario on the replica owning it.
func (rc *RingClient) Simulate(ctx context.Context, cfg scenario.Config) (PlanResult, error) {
	canon, err := json.Marshal(cfg)
	if err != nil {
		return PlanResult{}, err
	}
	return rc.do(ctx, simCacheKey(cfg, canon), func(c *Client) (PlanResult, error) {
		return c.Simulate(ctx, cfg)
	})
}

// Fault posts a fault event to one replica — rotating across the
// membership so origination (and therefore gossip dissemination) is
// exercised everywhere — and merges the acknowledged vector into the
// shared min vector. Returns the originating replica's new epoch.
func (rc *RingClient) Fault(ctx context.Context, ev FaultEvent) (uint64, error) {
	members := rc.ring.Members()
	rc.mu.Lock()
	start := rc.faultRR
	rc.faultRR++
	rc.mu.Unlock()
	var lastErr error
	for i := 0; i < len(members); i++ {
		m := members[(start+i)%len(members)]
		if rc.isDown(m.ID) && i < len(members)-1 {
			continue
		}
		epoch, err := rc.clients[m.ID].Fault(ctx, ev)
		if err == nil {
			return epoch, nil
		}
		if ctx.Err() != nil {
			return 0, err
		}
		rc.markDown(m.ID)
		lastErr = err
	}
	return 0, fmt.Errorf("serve: fault event failed on every replica: %w", lastErr)
}

// Transfer runs one resilient transfer session, routed by session ID.
// If the owning replica dies mid-session, the next successor gets a
// re-POST of the same idempotent ID — the session re-arms there exactly
// once; the dead replica's partial run never reported, so the caller
// still sees exactly one terminal report.
func (rc *RingClient) Transfer(ctx context.Context, req TransferRequest, opts TransferOpts) (TransferOutcome, error) {
	if req.ID == "" {
		req.ID = randomSessionID()
	}
	// Per-rung attempts must be bounded, or a dead owner would absorb
	// the whole budget before the ladder advances.
	if opts.Backoff == (RetryPolicy{}) {
		opts.Backoff = rc.retry
	}
	if opts.Backoff.MaxAttempts == 0 || opts.Backoff.MaxAttempts > 4 {
		opts.Backoff.MaxAttempts = 4
	}
	out := TransferOutcome{SessionID: req.ID}
	var lastErr error
	for i, m := range rc.ladder("session|" + req.ID) {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if i > 0 {
			rc.reg.Counter("serve/ring/session_reroutes").Inc()
		}
		o, err := rc.clients[m.ID].Transfer(ctx, req, opts)
		// Merge attempt bookkeeping across rungs; the terminal report (if
		// any) comes from exactly one replica.
		out.Frames = o.Frames
		out.Resumes += o.Resumes
		out.Restarts += o.Restarts
		if o.Trace != "" {
			out.Trace = o.Trace
		}
		if err == nil {
			out.Report, out.Err = o.Report, o.Err
			out.Faults, out.Pushed, out.Members = o.Faults, o.Pushed, o.Members
			return out, nil
		}
		rc.markDown(m.ID)
		lastErr = err
	}
	rc.reg.Counter("serve/ring/all_down").Inc()
	return out, fmt.Errorf("serve: transfer %s failed on every replica: %w", req.ID, lastErr)
}

// Health probes every member; it returns the IDs that answered.
func (rc *RingClient) Health(ctx context.Context) []string {
	var up []string
	for _, m := range rc.ring.Members() {
		if rc.clients[m.ID].Health(ctx) == nil {
			up = append(up, m.ID)
		}
	}
	return up
}

// MetricsAll fetches every live member's /metrics snapshot, keyed by
// replica ID (dead members are skipped).
func (rc *RingClient) MetricsAll(ctx context.Context) map[string]obs.MetricsSnapshot {
	out := make(map[string]obs.MetricsSnapshot)
	for _, m := range rc.ring.Members() {
		if snap, err := rc.clients[m.ID].Metrics(ctx); err == nil {
			out[m.ID] = snap
		}
	}
	return out
}

// ClusterStatusAll fetches every live member's GET /v1/cluster view,
// keyed by replica ID.
func (rc *RingClient) ClusterStatusAll(ctx context.Context) map[string]ClusterStatus {
	out := make(map[string]ClusterStatus)
	for _, m := range rc.ring.Members() {
		var st ClusterStatus
		if err := rc.getJSON(ctx, rc.clients[m.ID], "/v1/cluster", &st); err == nil {
			out[m.ID] = st
		}
	}
	return out
}

func (rc *RingClient) getJSON(ctx context.Context, c *Client, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: GET %s status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
