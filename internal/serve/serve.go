// Package serve turns the repo's planners into a long-running,
// concurrent planning service: the bgqd daemon answers PlanPair /
// PlanGroup / PlanAggregation / Simulate requests over HTTP/JSON on a
// TCP or Unix socket.
//
// Three mechanisms make it safe to put in front of heavy traffic
// (DESIGN.md §12):
//
//   - A worker-pool dispatcher with a bounded queue: each plan builds
//     and runs a private simulation engine, so admission control caps
//     both CPU and memory. When the queue is full the request is shed
//     with 429 + Retry-After instead of queueing without bound.
//   - A sharded plan cache keyed on (kind, shape, params-hash,
//     endpoints, bytes-bucket, canonical request) with singleflight
//     coalescing: N concurrent identical requests compute once. Sparse
//     request streams — a few hot (src, dst) couples dominating, the
//     Pattern-2 shape — hit the cache almost always.
//   - Epoch invalidation wired to fault events: a POST /v1/fault
//     mutates the fault set then bumps the epoch, making every cached
//     and in-flight plan invisible to later lookups (the routing.Cache
//     epoch discipline lifted to the service layer).
//
// Every request is instrumented through internal/obs; GET /metrics
// returns the registry snapshot as flat JSON.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"bgqflow/internal/cluster"
	"bgqflow/internal/obs"
	"bgqflow/internal/scenario"
)

// Config tunes the daemon.
type Config struct {
	// Workers is the plan-computation pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the dispatcher queue; admission beyond it sheds
	// with 429. 0 means 4x workers; the minimum is 1 (a zero-length
	// queue would make admission depend on worker scheduling).
	QueueDepth int
	// CacheShards is the plan-cache shard count; 0 means 16.
	CacheShards int
	// CacheEntriesPerShard bounds each shard; 0 means 4096.
	CacheEntriesPerShard int
	// RetryAfter is the backoff hint attached to shed responses; 0 means
	// 1s.
	RetryAfter time.Duration

	// MaxSessions caps concurrently running transfer sessions; past it
	// new sessions shed with 429. 0 means 4096.
	MaxSessions int
	// SessionIdle is the heartbeat deadline: a session with no subscriber
	// and no heartbeat for this long is canceled (running) or reaped
	// (done). 0 means 60s.
	SessionIdle time.Duration
	// ReplayEvents bounds each session's replay ring. 0 means 256.
	ReplayEvents int
	// BatchWindow, when positive, enables Träff-style message combining:
	// small same-pair transfer requests marked Batch that arrive within
	// one window coalesce into a single combined session. 0 disables.
	BatchWindow time.Duration
	// BatchMaxBytes is the per-request size ceiling for combining; larger
	// transfers always run alone. 0 means 256 KiB.
	BatchMaxBytes int64

	// TraceEvents, when positive, enables the wall-clock trace plane: a
	// bounded ring of that many spans/instants served by GET /v1/trace.
	// 0 disables tracing (the zero-cost default).
	TraceEvents int
	// StatsWindow sizes the rolling windows behind serve/window/* metrics
	// and SLO evaluation. 0 means 30s.
	StatsWindow time.Duration
	// SLOs are the objectives the daemon tracks (see obs.SLOSpec). Specs
	// must validate; New panics on a malformed spec (bgqd validates at
	// flag parse, so this only fires on programmer error).
	SLOs []obs.SLOSpec

	// ReplicaID, when non-empty, runs the daemon as one replica of a
	// bgqd cluster (DESIGN.md §17): fault events are stamped into a
	// gossiped epoch log instead of a private fault set, responses carry
	// X-Bgq-Replica / X-Bgq-Vector, and requests stamped with
	// X-Bgq-Min-Vector are rejected with 503 until this replica has
	// applied at least that vector. Empty means standalone (the legacy
	// single-daemon behavior, bit for bit).
	ReplicaID string
	// Peers are the other replicas' base addresses (same forms NewClient
	// accepts: "host:port", "http://...", "unix:///path").
	Peers []string
	// GossipInterval is the anti-entropy period between rounds. 0 means
	// 200ms.
	GossipInterval time.Duration
	// GossipSeed fixes gossip peer selection (deterministic tests).
	GossipSeed int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.CacheEntriesPerShard <= 0 {
		c.CacheEntriesPerShard = 4096
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.SessionIdle <= 0 {
		c.SessionIdle = 60 * time.Second
	}
	if c.ReplayEvents <= 0 {
		c.ReplayEvents = 256
	}
	if c.BatchMaxBytes <= 0 {
		c.BatchMaxBytes = 256 << 10
	}
	if c.StatsWindow <= 0 {
		c.StatsWindow = 30 * time.Second
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = 200 * time.Millisecond
	}
	return c
}

// FaultEvent is the body of POST /v1/fault: link failures to add to the
// daemon's fault set, or Clear to reset it (a repair). Either way the
// plan-cache epoch is bumped.
type FaultEvent struct {
	Links []scenario.FailLink `json:"links,omitempty"`
	Clear bool                `json:"clear,omitempty"`
}

// Server is the planning service. Create with New, mount Handler on any
// http.Server (TCP or Unix listener), Close when done.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	cache    *planCache
	disp     *dispatcher
	sessions *sessionMgr
	start    time.Time

	// Telemetry plane (telemetry.go). wall is nil when tracing is
	// disabled; every WallRecorder method is nil-safe, so call sites pay
	// one branch. The window metrics are pre-registered so the hot path
	// never takes the registry lock.
	wall         *obs.WallRecorder
	slo          *obs.SLOTracker
	sloStop      chan struct{}
	sloDone      chan struct{}
	wRequests    *obs.WindowCounter
	wShed        *obs.WindowCounter
	wResumeHit   *obs.WindowCounter
	wResumeTotal *obs.WindowCounter
	wLatency     *obs.WindowHistogram

	// clst is the cluster plane (cluster.go); nil on standalone daemons.
	clst *clusterPlane

	// mu guards faults and vec together: vec is the fault-epoch vector
	// the serve layer vouches for, and it must never run ahead of the
	// fault set published alongside it (the cross-replica staleness
	// check compares vec, then plans against faults).
	mu     sync.Mutex
	faults []scenario.FailLink
	vec    cluster.Vector
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   obs.NewRegistry(),
		cache: newPlanCache(cfg.CacheShards, cfg.CacheEntriesPerShard),
		disp:  newDispatcher(cfg.Workers, cfg.QueueDepth),
		start: time.Now(),
	}
	s.wRequests = s.reg.WindowCounter("serve/window/requests", cfg.StatsWindow)
	s.wShed = s.reg.WindowCounter("serve/window/shed", cfg.StatsWindow)
	s.wResumeHit = s.reg.WindowCounter("serve/window/resume_hits", cfg.StatsWindow)
	s.wResumeTotal = s.reg.WindowCounter("serve/window/resumes", cfg.StatsWindow)
	s.wLatency = s.reg.WindowHistogram("serve/window/plan_latency_ms", cfg.StatsWindow)
	if cfg.TraceEvents > 0 {
		s.wall = obs.NewWallRecorder(cfg.TraceEvents)
	}
	if len(cfg.SLOs) > 0 {
		tracker, err := obs.NewSLOTracker(s.reg, cfg.SLOs)
		if err != nil {
			panic(err)
		}
		s.slo = tracker
		s.sloStop = make(chan struct{})
		s.sloDone = make(chan struct{})
		interval := cfg.StatsWindow / 4
		if interval < 500*time.Millisecond {
			interval = 500 * time.Millisecond
		}
		go s.sloLoop(interval)
	}
	s.sessions = newSessionMgr(s)
	if cfg.ReplicaID != "" {
		s.clst = newClusterPlane(s)
	}
	return s
}

// Registry exposes the server's metrics registry (tests and embedders
// read counters from it directly).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Epoch returns the current plan-cache invalidation epoch.
func (s *Server) Epoch() uint64 { return s.cache.Epoch() }

// Close force-stops the session layer (graceful exits call Drain first)
// and drains the worker pool. In-flight HTTP requests must have
// completed (http.Server.Shutdown before Close).
func (s *Server) Close() {
	if s.clst != nil {
		s.clst.stopLoop()
	}
	if s.sloStop != nil {
		close(s.sloStop)
		<-s.sloDone
	}
	s.sessions.shutdown()
	s.disp.close()
}

// snapshot reads the epoch, then the fault set — in that order; see the
// planCache type comment for why the order matters.
func (s *Server) snapshot() (uint64, []scenario.FailLink) {
	epoch, faults, _ := s.snapshotCluster()
	return epoch, faults
}

// snapshotCluster additionally returns the fault-epoch vector, read in
// the same critical section as the fault set: if the vector dominates a
// client's minimum, the faults alongside it include every event that
// minimum names.
func (s *Server) snapshotCluster() (uint64, []scenario.FailLink, cluster.Vector) {
	epoch := s.cache.Epoch()
	s.mu.Lock()
	faults := append([]scenario.FailLink(nil), s.faults...)
	vec := s.vec.Clone()
	s.mu.Unlock()
	return epoch, faults, vec
}

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan/pair", s.handlePair)
	mux.HandleFunc("POST /v1/plan/group", s.handleGroup)
	mux.HandleFunc("POST /v1/plan/agg", s.handleAgg)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/fault", s.handleFault)
	mux.HandleFunc("POST /v1/transfer", s.handleTransfer)
	mux.HandleFunc("GET /v1/transfer/{id}", s.handleTransferStatus)
	mux.HandleFunc("GET /v1/transfer/{id}/events", s.handleTransferEvents)
	mux.HandleFunc("POST /v1/transfer/{id}/ack", s.handleTransferAck)
	mux.HandleFunc("POST /v1/transfer/{id}/heartbeat", s.handleTransferHeartbeat)
	mux.HandleFunc("POST /v1/gossip", s.handleGossip)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// planEnvelope wraps every plan response. Plan carries the cacheable
// payload; the remaining fields describe how THIS request was served and
// are deliberately outside Plan so that byte-identity of plans holds
// across cache hits, coalesced waits, and fresh computations.
type planEnvelope struct {
	Plan      json.RawMessage `json:"plan,omitempty"`
	Epoch     uint64          `json:"epoch"`
	Cached    bool            `json:"cached,omitempty"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Error     string          `json:"error,omitempty"`
	// Vector is the fault-epoch vector the response was served under
	// (clustered daemons only; see cluster.Vector.String for the form).
	Vector string `json:"vector,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// servePlan is the shared request path: admission, coalescing, caching,
// instrumentation. The request's trace (client-stamped or generated)
// tags the wall spans; queue and compute phase times go back to the
// client as X-Bgq-Queue-Ms / X-Bgq-Compute-Ms headers (0 unless this
// request computed the plan).
func (s *Server) servePlan(w http.ResponseWriter, r *http.Request, endpoint, key string,
	compute func(faults []scenario.FailLink) (any, error)) {
	t0 := time.Now()
	trace := s.traceID(r)
	span := s.wall.SpanBegin(trace, "bgqd/plan", endpoint)
	s.reg.Counter("serve/requests").Inc()
	s.reg.Counter("serve/requests/" + endpoint).Inc()
	s.wRequests.Inc()
	epoch, faults, vec := s.snapshotCluster()
	var vecStr string
	if s.clst != nil {
		vecStr = vec.String()
		w.Header().Set(HeaderReplica, s.cfg.ReplicaID)
		w.Header().Set(HeaderVector, vecStr)
		// Cross-replica staleness check: a client that saw a fault event
		// acknowledged at vector V demands we have applied V. If gossip
		// has not delivered those events yet, serving would hand out a
		// pre-fault plan — reject instead; no Retry-After, so the client
		// returns on its own short backoff, by which time the eager
		// broadcast or the next anti-entropy round has caught us up.
		if !s.checkMinVector(w, r, epoch, vec) {
			s.wall.SpanAbort(span)
			return
		}
	}
	// Phase timestamps, written by the worker goroutine; the channel
	// receive inside the singleflight closure orders them before our
	// reads. They stay zero on hit/coalesced/shed outcomes.
	var tQueueDone, tComputeDone time.Time
	val, err, outcome := s.cache.Do(key, epoch, func() ([]byte, error) {
		type result struct {
			b []byte
			e error
		}
		ch := make(chan result, 1)
		admitted := s.disp.trySubmit(func() {
			tQueueDone = time.Now()
			plan, cerr := compute(faults)
			tComputeDone = time.Now()
			if cerr != nil {
				ch <- result{nil, cerr}
				return
			}
			b, merr := json.Marshal(plan)
			ch <- result{b, merr}
		})
		s.reg.Gauge("serve/queue_depth").Set(float64(s.disp.queued()))
		if !admitted {
			return nil, ErrOverloaded
		}
		r := <-ch
		return r.b, r.e
	})
	var queueMS, computeMS float64
	if outcome == outcomeComputed && !tQueueDone.IsZero() {
		queueMS = float64(tQueueDone.Sub(t0)) / 1e6
		computeMS = float64(tComputeDone.Sub(tQueueDone)) / 1e6
		s.wall.Span(trace, "bgqd/queue", endpoint+" queue", t0, tQueueDone)
		s.wall.Span(trace, "bgqd/compute", endpoint+" compute", tQueueDone, tComputeDone)
	}
	setMSHeader(w.Header(), HeaderQueueMS, queueMS)
	setMSHeader(w.Header(), HeaderComputeMS, computeMS)
	if trace != "" {
		w.Header().Set(HeaderTraceID, trace)
	}
	switch outcome {
	case outcomeHit:
		s.reg.Counter("serve/cache_hits").Inc()
	case outcomeCoalesced:
		s.reg.Counter("serve/coalesced").Inc()
	case outcomeComputed:
		if err == nil {
			s.reg.Counter("serve/plans_computed").Inc()
		}
	}
	if err == ErrOverloaded {
		s.reg.Counter("serve/shed").Inc()
		s.wShed.Inc()
		s.wall.SpanAbort(span)
		secs := int(math.Ceil(s.cfg.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, planEnvelope{Epoch: epoch, Error: err.Error(), Vector: vecStr})
		return
	}
	if err != nil {
		s.reg.Counter("serve/errors").Inc()
		s.wall.SpanAbort(span)
		writeJSON(w, http.StatusBadRequest, planEnvelope{Epoch: epoch, Error: err.Error(), Vector: vecStr})
		return
	}
	latencyMS := float64(time.Since(t0)) / 1e6
	s.reg.Histogram("serve/latency_ms/" + endpoint).Observe(latencyMS)
	s.wLatency.Observe(latencyMS)
	s.wall.SpanEnd(span)
	writeJSON(w, http.StatusOK, planEnvelope{
		Plan:      val,
		Epoch:     epoch,
		Cached:    outcome == outcomeHit,
		Coalesced: outcome == outcomeCoalesced,
		Vector:    vecStr,
	})
}

func decodeBody(w http.ResponseWriter, r *http.Request, reg *obs.Registry, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		reg.Counter("serve/errors").Inc()
		writeJSON(w, http.StatusBadRequest, planEnvelope{Error: fmt.Sprintf("serve: bad request body: %v", err)})
		return false
	}
	return true
}

func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	var req PairRequest
	if !decodeBody(w, r, s.reg, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		s.reg.Counter("serve/errors").Inc()
		writeJSON(w, http.StatusBadRequest, planEnvelope{Error: err.Error()})
		return
	}
	s.servePlan(w, r, "pair", req.cacheKey(), func(faults []scenario.FailLink) (any, error) {
		return ComputePair(req, faults)
	})
}

func (s *Server) handleGroup(w http.ResponseWriter, r *http.Request) {
	var req GroupRequest
	if !decodeBody(w, r, s.reg, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		s.reg.Counter("serve/errors").Inc()
		writeJSON(w, http.StatusBadRequest, planEnvelope{Error: err.Error()})
		return
	}
	s.servePlan(w, r, "group", req.cacheKey(), func(faults []scenario.FailLink) (any, error) {
		return ComputeGroup(req, faults)
	})
}

func (s *Server) handleAgg(w http.ResponseWriter, r *http.Request) {
	var req AggRequest
	if !decodeBody(w, r, s.reg, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		s.reg.Counter("serve/errors").Inc()
		writeJSON(w, http.StatusBadRequest, planEnvelope{Error: err.Error()})
		return
	}
	s.servePlan(w, r, "agg", req.cacheKey(), func(faults []scenario.FailLink) (any, error) {
		return ComputeAgg(req, faults)
	})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var cfg scenario.Config
	if !decodeBody(w, r, s.reg, &cfg) {
		return
	}
	if err := cfg.Validate(); err != nil {
		s.reg.Counter("serve/errors").Inc()
		writeJSON(w, http.StatusBadRequest, planEnvelope{Error: err.Error()})
		return
	}
	// Canonicalize (Validate filled defaults) so equal scenarios hash
	// equal regardless of JSON field order or omitted defaults.
	canon, err := json.Marshal(cfg)
	if err != nil {
		s.reg.Counter("serve/errors").Inc()
		writeJSON(w, http.StatusBadRequest, planEnvelope{Error: err.Error()})
		return
	}
	s.servePlan(w, r, "sim", simCacheKey(cfg, canon), func(faults []scenario.FailLink) (any, error) {
		return ComputeSim(cfg, faults)
	})
}

// handleFault ingests a fault event: mutate the fault set FIRST, then
// bump the epoch (see planCache). Responds with the new epoch.
func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	var ev FaultEvent
	if !decodeBody(w, r, s.reg, &ev) {
		return
	}
	for _, fl := range ev.Links {
		if fl.Dir != 1 && fl.Dir != -1 {
			s.reg.Counter("serve/errors").Inc()
			writeJSON(w, http.StatusBadRequest, planEnvelope{Error: fmt.Sprintf("serve: fault dir %d must be +1 or -1", fl.Dir)})
			return
		}
		if fl.Node < 0 || fl.Dim < 0 {
			s.reg.Counter("serve/errors").Inc()
			writeJSON(w, http.StatusBadRequest, planEnvelope{Error: fmt.Sprintf("serve: bad fault link %+v", fl)})
			return
		}
	}
	if s.clst != nil {
		s.clst.handleFaultClustered(w, r, ev)
		return
	}
	s.mu.Lock()
	if ev.Clear {
		s.faults = nil
	}
	s.faults = append(s.faults, ev.Links...)
	n := len(s.faults)
	s.mu.Unlock()
	epoch := s.cache.Invalidate()
	s.reg.Counter("serve/fault_events").Inc()
	s.reg.Gauge("serve/fault_links").Set(float64(n))
	// Forward the event into running transfer sessions: each applies the
	// failure at its next safe point and streams a pushed-fault frame
	// (repairs — Clear — do not propagate; a session's engine cannot
	// un-fail a link mid-run).
	s.sessions.pushFaults(ev.Links, epoch)
	writeJSON(w, http.StatusOK, planEnvelope{Epoch: epoch})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Refresh the point-in-time gauges, then snapshot.
	s.reg.Gauge("serve/queue_depth").Set(float64(s.disp.queued()))
	s.reg.Gauge("serve/cache_entries").Set(float64(s.cache.Len()))
	s.reg.Gauge("serve/epoch").Set(float64(s.cache.Epoch()))
	s.reg.Gauge("serve/uptime_seconds").Set(time.Since(s.start).Seconds())
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		snap.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	snap.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
