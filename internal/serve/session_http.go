package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// HTTP surface of the session layer:
//
//	POST /v1/transfer                 start / attach / join / re-arm, then stream
//	GET  /v1/transfer/{id}            status snapshot
//	GET  /v1/transfer/{id}/events     resume the stream (?after=N)
//	POST /v1/transfer/{id}/ack        evict acknowledged frames ({"seq":N})
//	POST /v1/transfer/{id}/heartbeat  keep an unwatched session alive

var newline = []byte("\n")

func (s *Server) retryAfterSecs() int {
	secs := int(s.cfg.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleTransfer(w http.ResponseWriter, r *http.Request) {
	var req TransferRequest
	if !decodeBody(w, r, s.reg, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		s.reg.Counter("serve/errors").Inc()
		writeJSON(w, http.StatusBadRequest, planEnvelope{Error: err.Error()})
		return
	}
	sess, verdict, err := s.sessions.startOrAttach(req, s.traceID(r))
	switch {
	case errors.Is(err, errSessionMismatch):
		s.reg.Counter("serve/errors").Inc()
		writeJSON(w, http.StatusConflict, planEnvelope{Error: err.Error()})
		return
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		writeJSON(w, http.StatusServiceUnavailable, planEnvelope{Error: err.Error()})
		return
	case errors.Is(err, errSessionLimit):
		s.reg.Counter("serve/sessions_shed").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		writeJSON(w, http.StatusTooManyRequests, planEnvelope{Error: err.Error()})
		return
	case err != nil:
		s.reg.Counter("serve/errors").Inc()
		writeJSON(w, http.StatusInternalServerError, planEnvelope{Error: err.Error()})
		return
	}
	s.reg.Counter("serve/sessions_" + verdict).Inc()
	s.streamSession(w, r, sess, 0, verdict == "attached")
}

func (s *Server) sessionByID(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	s.sessions.mu.Lock()
	sess := s.sessions.sessions[id]
	s.sessions.mu.Unlock()
	if sess == nil {
		writeJSON(w, http.StatusNotFound, planEnvelope{Error: "serve: unknown session " + id})
	}
	return sess
}

// SessionStatus is the GET /v1/transfer/{id} body.
type SessionStatus struct {
	ID       string   `json:"id"`
	State    string   `json:"state"`
	FirstSeq uint64   `json:"firstSeq"`
	LastSeq  uint64   `json:"lastSeq"`
	Aborted  bool     `json:"aborted,omitempty"`
	Members  []string `json:"members,omitempty"`
	Epoch    uint64   `json:"epoch"`
}

func (s *Server) handleTransferStatus(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionByID(w, r)
	if sess == nil {
		return
	}
	// Status is a pure observation: it does NOT refresh the idle
	// deadline. Liveness signals are subscribing, acking, and heartbeats.
	sess.mu.Lock()
	st := SessionStatus{
		ID:       sess.id,
		State:    sess.state.String(),
		FirstSeq: sess.firstSeq,
		LastSeq:  sess.nextSeq - 1,
		Aborted:  sess.aborted,
		Members:  sess.members,
		Epoch:    sess.epoch,
	}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleTransferEvents(w http.ResponseWriter, r *http.Request) {
	// Resume hit ratio feeds the resume-success SLO: a 404 here (daemon
	// restarted or session reaped) is the miss case.
	s.wResumeTotal.Inc()
	sess := s.sessionByID(w, r)
	if sess == nil {
		return
	}
	s.wResumeHit.Inc()
	var after uint64
	if q := r.URL.Query().Get("after"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			s.reg.Counter("serve/errors").Inc()
			writeJSON(w, http.StatusBadRequest, planEnvelope{Error: "serve: bad after cursor: " + err.Error()})
			return
		}
		after = v
	}
	s.reg.Counter("serve/sessions_resumed").Inc()
	s.streamSession(w, r, sess, after, true)
}

// ackBody is the POST /v1/transfer/{id}/ack payload.
type ackBody struct {
	Seq uint64 `json:"seq"`
}

func (s *Server) handleTransferAck(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionByID(w, r)
	if sess == nil {
		return
	}
	var body ackBody
	if !decodeBody(w, r, s.reg, &body) {
		return
	}
	sess.ack(body.Seq)
	writeJSON(w, http.StatusOK, map[string]uint64{"acked": body.Seq})
}

func (s *Server) handleTransferHeartbeat(w http.ResponseWriter, r *http.Request) {
	sess := s.sessionByID(w, r)
	if sess == nil {
		return
	}
	sess.touch()
	s.reg.Counter("serve/session_heartbeats").Inc()
	writeJSON(w, http.StatusOK, map[string]string{"id": sess.id, "state": "ok"})
}

func (s *Server) pingInterval() time.Duration {
	d := s.cfg.SessionIdle / 3
	if d < 200*time.Millisecond {
		d = 200 * time.Millisecond
	}
	return d
}

// streamSession writes the ndjson stream: a per-connection hello frame
// (seq 0, carrying the session's fault-set snapshot for client-side
// verification), the replay window, then live frames until the terminal
// report, a drop, or client disconnect. Per-connection ping frames keep
// intermediaries from timing the stream out and let the client detect a
// dead daemon.
func (s *Server) streamSession(w http.ResponseWriter, r *http.Request, sess *session, after uint64, resumed bool) {
	hello, replay, ch := sess.subscribe(after)
	hello.Resumed = resumed
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Replay-From", strconv.FormatUint(hello.ReplayFrom, 10))
	if sess.trace != "" {
		w.Header().Set(HeaderTraceID, sess.trace)
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	enc.Encode(hello)
	for _, b := range replay {
		w.Write(b)
		w.Write(newline)
	}
	flush()
	if ch == nil {
		return
	}
	defer sess.unsubscribe(ch)
	ping := time.NewTicker(s.pingInterval())
	defer ping.Stop()
	for {
		select {
		case b, ok := <-ch:
			if !ok {
				// Session finished (the report frame was the last send) or
				// this subscriber fell behind and was dropped; either way the
				// client's next move is a resume from its cursor.
				return
			}
			if _, err := w.Write(b); err != nil {
				return
			}
			w.Write(newline)
			flush()
		case <-r.Context().Done():
			return
		case <-ping.C:
			if err := enc.Encode(SessionFrame{Type: "ping"}); err != nil {
				return
			}
			flush()
		}
	}
}

// DrainResult reports a graceful-shutdown drain: how many in-flight
// sessions finished under the deadline and how many had to be aborted.
type DrainResult struct {
	Drained   int     `json:"drained"`
	Aborted   int     `json:"aborted"`
	ElapsedMS float64 `json:"elapsedMS"`
}

// Drain moves the daemon into draining mode: new sessions (and re-arms)
// are refused with 503 + Retry-After, open batch windows fire
// immediately, and in-flight sessions run to completion until ctx
// expires — whatever is still running then is canceled at its next safe
// point and its clients receive an aborted report frame (their retry
// against the restarted daemon re-arms the session). Resumes, acks, and
// status reads keep working throughout. Safe to call at most once;
// plan-serving endpoints are unaffected.
func (s *Server) Drain(ctx context.Context) DrainResult {
	t0 := time.Now()
	m := s.sessions
	s.reg.Gauge("serve/draining").Set(1)
	m.mu.Lock()
	m.draining = true
	m.flushBatchesLocked()
	var waiting []*session
	seen := make(map[*session]struct{})
	for _, sess := range m.sessions {
		if _, dup := seen[sess]; dup {
			continue
		}
		seen[sess] = struct{}{}
		sess.mu.Lock()
		inFlight := sess.state != sessDone
		sess.mu.Unlock()
		if inFlight {
			waiting = append(waiting, sess)
		}
	}
	m.mu.Unlock()

	for _, sess := range waiting {
		select {
		case <-sess.done:
		case <-ctx.Done():
			// Deadline: abort at the next safe point. Safe points recur
			// every simulated clock step, so this wait is short.
			sess.cancel(errDrainAborted)
			<-sess.done
		}
	}
	res := DrainResult{ElapsedMS: float64(time.Since(t0)) / 1e6}
	for _, sess := range waiting {
		sess.mu.Lock()
		if sess.aborted {
			res.Aborted++
		} else {
			res.Drained++
		}
		sess.mu.Unlock()
	}
	s.reg.Histogram("serve/drain_ms").Observe(res.ElapsedMS)
	return res
}
