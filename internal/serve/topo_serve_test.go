package serve_test

// Topology-plane serve tests: a bgqd plan request can select a
// non-torus fabric end to end, and the served wire plan is
// byte-identical to a direct ComputePair call (the same differential
// discipline the torus plans get).

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"bgqflow/internal/serve"
)

func TestE2EPairTopologyByteIdentical(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{})
	ctx := context.Background()
	for _, req := range []serve.PairRequest{
		{Topology: "dragonfly:4x4x2", Src: 1, Dst: 9, Bytes: 4 << 20},
		{Topology: "fattree:8x4x1", Src: 0, Dst: 7, Bytes: 16 << 20},
		{Topology: "dragonfly:6x4x1", Src: 23, Dst: 0, Bytes: 1 << 20},
	} {
		res, err := client.PlanPair(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("%s: status %d: %s", req.Topology, res.Status, res.Err)
		}
		direct, err := serve.ComputePair(req, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(direct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Plan, want) {
			t.Errorf("%s: served plan differs from direct computation\nserved: %s\ndirect: %s",
				req.Topology, res.Plan, want)
		}
		var plan serve.PairPlan
		if err := json.Unmarshal(res.Plan, &plan); err != nil {
			t.Fatal(err)
		}
		if plan.Mode != "direct" || plan.Topology == "" || plan.GBps <= 0 || plan.MakespanMS <= 0 {
			t.Errorf("%s: degenerate topology plan: %+v", req.Topology, plan)
		}
		// The cached copy must be the same bytes, and must not collide
		// with any torus entry.
		res2, err := client.PlanPair(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !res2.Cached {
			t.Errorf("%s: second identical request not served from cache", req.Topology)
		}
		if !bytes.Equal(res2.Plan, res.Plan) {
			t.Errorf("%s: cached plan differs from computed plan", req.Topology)
		}
	}
}

// TestPairTopologyValidation pins the request-validation edges of the
// topology plane: bad specs and out-of-range endpoints are 400s, and
// proxy planning stays torus-only rather than silently downgrading.
func TestPairTopologyValidation(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{})
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		req  serve.PairRequest
		want string
	}{
		{"bad spec", serve.PairRequest{Topology: "dragonfly:1x1", Src: 0, Dst: 1, Bytes: 1 << 20}, "dragonfly"},
		{"unknown kind", serve.PairRequest{Topology: "hypercube:8", Src: 0, Dst: 1, Bytes: 1 << 20}, "unknown topology"},
		{"endpoint range", serve.PairRequest{Topology: "fattree:8x4", Src: 0, Dst: 8, Bytes: 1 << 20}, "outside fabric"},
		{"proxies", serve.PairRequest{Topology: "fattree:8x4", Src: 0, Dst: 7, Bytes: 1 << 20, Proxies: 2}, "torus-only"},
	} {
		res, err := client.PlanPair(ctx, tc.req)
		if err != nil {
			t.Fatalf("%s: transport error: %v", tc.name, err)
		}
		if res.OK() {
			t.Errorf("%s: accepted, want rejection", tc.name)
			continue
		}
		if !strings.Contains(res.Err, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, res.Err, tc.want)
		}
	}
}
