package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptrace"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bgqflow/internal/cluster"
	"bgqflow/internal/obs"
	"bgqflow/internal/scenario"
)

// Client talks to a bgqd daemon over TCP ("host:port" or
// "http://host:port") or a Unix socket ("unix:///path/to/bgqd.sock").
// It is safe for concurrent use; bgqload drives one Client from many
// goroutines.
type Client struct {
	base    string
	hc      *http.Client
	retry   RetryPolicy
	tracer  *obs.WallRecorder
	metrics *obs.Registry

	// Min-vector state for clustered daemons: the fault-epoch vector
	// this client demands every plan reflect (read-your-writes across
	// replicas). Fault responses merge into it; requests stamp it as
	// X-Bgq-Min-Vector. vecSrc/vecSink, when set (by RingClient),
	// redirect both to a shared store so all per-replica clients demand
	// the same vector.
	vecMu   sync.Mutex
	minVec  cluster.Vector
	vecSrc  func() string
	vecSink func(string)
}

// RetryPolicy governs how the client reacts to shed (429) and
// unavailable (503) responses — and, with RetryConn, transport errors
// while a daemon restarts. Waits honor the server's Retry-After hint,
// grow exponentially across consecutive failures, are capped at
// MaxBackoff, and carry ±Jitter so a shed herd does not return in
// lockstep.
type RetryPolicy struct {
	// MaxAttempts bounds consecutive attempts; 0 means unlimited (the
	// context deadline is the only bound).
	MaxAttempts int
	// BaseBackoff is the first wait; it doubles per consecutive failure.
	// 0 means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the wait, including server Retry-After hints. 0
	// means 2s.
	MaxBackoff time.Duration
	// Jitter spreads each wait by ±Jitter (e.g. 0.25 = ±25%).
	Jitter float64
	// RetryConn also retries transport-level errors (connection refused
	// while a daemon restarts), not just 429/503 responses.
	RetryConn bool
	// NoShedRetry surfaces 429 responses immediately while 503s still
	// back off and retry. Load generators driving a cluster use it:
	// against a clustered daemon a 503 means "replica behind the
	// demanded fault vector", which resolves by waiting out the gossip
	// window — not a shed — so retrying it keeps shed accounting exact
	// without turning staleness windows into spurious 5xx counts.
	NoShedRetry bool
}

// DefaultRetryPolicy is the interactive operating point: a handful of
// attempts with capped jittered exponential backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second, Jitter: 0.25}
}

// NoRetryPolicy disables client-side retries: every shed surfaces to the
// caller. Load generators use it so shed accounting stays exact.
func NoRetryPolicy() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

// backoff computes the wait before retry number attempt (0-based),
// honoring a server Retry-After hint when it is longer than the
// exponential schedule, capping at MaxBackoff, then jittering.
func (p RetryPolicy) backoff(attempt int, hint time.Duration) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < maxB; i++ {
		d *= 2
	}
	if hint > d {
		d = hint
	}
	if d > maxB {
		d = maxB
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*rand.Float64()-1)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// sleep waits the backoff for attempt, or returns early with the
// context's error.
func (p RetryPolicy) sleep(ctx context.Context, attempt int, hint time.Duration) error {
	t := time.NewTimer(p.backoff(attempt, hint))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// dialTarget resolves a daemon address — TCP ("host:port",
// "http://...") or unix socket ("unix:///path") — into a base URL and
// an http.Client that dials it. Shared by NewClient and the gossip
// transport so every layer speaks the same address forms.
func dialTarget(addr string) (string, *http.Client, error) {
	if addr == "" {
		return "", nil, fmt.Errorf("serve: empty address")
	}
	if path, ok := strings.CutPrefix(addr, "unix://"); ok {
		if path == "" {
			return "", nil, fmt.Errorf("serve: empty unix socket path")
		}
		tr := &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", path)
			},
		}
		// The host is a placeholder; the transport always dials the
		// socket.
		return "http://bgqd", &http.Client{Transport: tr}, nil
	}
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/"), &http.Client{}, nil
}

// NewClient builds a client for the given address with the default
// retry policy.
func NewClient(addr string) (*Client, error) {
	base, hc, err := dialTarget(addr)
	if err != nil {
		return nil, err
	}
	return &Client{base: base, hc: hc, retry: DefaultRetryPolicy()}, nil
}

// SetRetryPolicy replaces the client's retry policy. Not safe to call
// concurrently with requests; configure before use.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// SetTracer attaches a client-side wall recorder: every request is
// stamped with X-Bgq-Trace-Id/X-Bgq-Span-Id and recorded as a client
// span, so a merged trace shows the client attempt above the daemon's
// queue/compute spans under one trace ID. nil disables (the default).
// Configure before use.
func (c *Client) SetTracer(t *obs.WallRecorder) { c.tracer = t }

// Tracer returns the recorder installed by SetTracer (nil when tracing
// is off). Export it with WriteChromeTrace and merge with the daemon's
// TraceJSON via obs.MergeChromeTraces for the combined timeline.
func (c *Client) Tracer() *obs.WallRecorder { return c.tracer }

// SetMetrics attaches a metrics registry: protocol anomalies the client
// papers over (like malformed timing headers) are counted there instead
// of vanishing. nil disables (the default). Configure before use.
func (c *Client) SetMetrics(r *obs.Registry) { c.metrics = r }

// BaseURL reports the daemon base URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// MinVector returns the fault-epoch vector this client currently
// demands of every plan ("" until a Fault response establishes one).
func (c *Client) MinVector() string {
	if c.vecSrc != nil {
		return c.vecSrc()
	}
	c.vecMu.Lock()
	defer c.vecMu.Unlock()
	return c.minVec.String()
}

// MergeMinVector raises the client's demanded vector pointwise by v
// (canonical "origin:seq,..." form). Malformed input is ignored — the
// demand only ever grows from server-provided vectors.
func (c *Client) MergeMinVector(v string) {
	if v == "" {
		return
	}
	if c.vecSink != nil {
		c.vecSink(v)
		return
	}
	parsed, err := cluster.ParseVector(v)
	if err != nil {
		if c.metrics != nil {
			c.metrics.Counter("serve/client/bad_vector").Inc()
		}
		return
	}
	c.vecMu.Lock()
	if c.minVec == nil {
		c.minVec = cluster.Vector{}
	}
	c.minVec.Merge(parsed)
	c.vecMu.Unlock()
}

// SetVectorHooks redirects the client's min-vector reads and merges to
// an external store (RingClient shares one across its per-replica
// clients). Configure before use.
func (c *Client) SetVectorHooks(src func() string, sink func(string)) {
	c.vecSrc, c.vecSink = src, sink
}

// PlanResult is one plan response as the client saw it.
type PlanResult struct {
	// Status is the HTTP status code (200 = plan served, 429 = shed).
	Status int
	// Plan is the raw plan JSON (unmarshal into PairPlan / GroupPlan /
	// AggPlan / SimResult). Empty unless Status is 200.
	Plan json.RawMessage
	// Epoch is the fault epoch the plan was served under.
	Epoch uint64
	// Cached and Coalesced say how the server satisfied the request.
	Cached    bool
	Coalesced bool
	// RetryAfter is the server's backoff hint on shed (429) responses.
	RetryAfter time.Duration
	// Err is the server-side error message on non-200 responses.
	Err string
	// Retries counts client-side retry waits spent on this request.
	Retries int
	// Trace is the request's trace ID (client-stamped when a tracer is
	// set, else the server's echo when tracing is enabled there).
	Trace string
	// Replica is the serving replica's ID (X-Bgq-Replica; "" from a
	// standalone daemon).
	Replica string
	// Vector is the fault-epoch vector the response was served under
	// ("" from a standalone daemon).
	Vector string
	// Per-phase latency breakdown in milliseconds. ConnectMS is the TCP
	// dial time (0 on a pooled connection); QueueMS and ComputeMS are
	// the server-reported dispatcher and planner phases (0 unless this
	// request computed the plan); StreamMS is the response decode time.
	ConnectMS float64
	QueueMS   float64
	ComputeMS float64
	StreamMS  float64
}

// Shed reports whether the request was load-shed (429).
func (r PlanResult) Shed() bool { return r.Status == http.StatusTooManyRequests }

// OK reports whether a plan was served.
func (r PlanResult) OK() bool { return r.Status == http.StatusOK }

// post sends one JSON request through the retry policy: 429/503
// responses (and, with RetryConn, transport errors) back off and retry;
// when attempts run out the last shed response is returned as-is. A
// non-2xx status is NOT a Go error — load tests need to count shed and
// rejected requests without aborting; transport and decode failures are
// errors.
func (c *Client) post(ctx context.Context, path string, body any) (PlanResult, error) {
	pol := c.retry
	// One trace for the logical request; retries share it, so a traced
	// shed-then-served pair reads as one story in the merged trace.
	var trace string
	if c.tracer != nil {
		trace = obs.NewTraceID()
	}
	for attempt := 0; ; attempt++ {
		res, err := c.postOnce(ctx, path, body, trace)
		retryable := err == nil && (res.Status == http.StatusServiceUnavailable ||
			(res.Status == http.StatusTooManyRequests && !pol.NoShedRetry))
		if err != nil && pol.RetryConn && ctx.Err() == nil {
			retryable = true
		}
		if !retryable {
			res.Retries = attempt
			return res, err
		}
		if pol.MaxAttempts > 0 && attempt+1 >= pol.MaxAttempts {
			res.Retries = attempt
			return res, err
		}
		if serr := pol.sleep(ctx, attempt, res.RetryAfter); serr != nil {
			res.Retries = attempt
			return res, err
		}
	}
}

// msHeader parses a millisecond phase header. Absent reads as 0.
// Malformed, non-finite, or negative values also read as 0 — a phase
// duration cannot be negative, and NaN/Inf would poison every sum the
// breakdown feeds — but each one is counted on the
// serve/client/bad_ms_header metric so a misbehaving daemon or proxy is
// visible rather than silently folded into the timing.
func (c *Client) msHeader(h http.Header, key string) float64 {
	raw := h.Get(key)
	if raw == "" {
		return 0
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		if c.metrics != nil {
			c.metrics.Counter("serve/client/bad_ms_header").Inc()
		}
		return 0
	}
	return v
}

// retryAfterHint parses a Retry-After header value into a wait hint.
// Integer delay-seconds yield that duration, with negatives clamped to
// zero (retry immediately — a negative wait is meaningless). A valid
// HTTP-date form returns ok=false: converting it to a wait needs a
// clock, so callers fall back to their backoff schedule explicitly
// rather than misreading the date as delay-seconds. Anything else is
// malformed and also returns ok=false.
func retryAfterHint(ra string) (time.Duration, bool) {
	if ra == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs < 0 {
			return 0, true
		}
		return time.Duration(secs) * time.Second, true
	}
	if _, err := http.ParseTime(ra); err == nil {
		return 0, false
	}
	return 0, false
}

// postOnce is a single request/response cycle. trace, when non-empty,
// is stamped on the request (with a fresh per-attempt span ID) and the
// attempt is recorded as a client span.
func (c *Client) postOnce(ctx context.Context, path string, body any, trace string) (PlanResult, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return PlanResult{}, err
	}
	// Connect timing via httptrace: 0 on a pooled connection, the dial
	// cost on a fresh one — the "connect" phase of the breakdown. The
	// transport may run these hooks on a background dial goroutine (a
	// speculative pool dial can even outlive Do), so both fields are
	// atomics: nanosecond timestamps, read once after Do returns.
	var connStart, connDur atomic.Int64
	ct := &httptrace.ClientTrace{
		ConnectStart: func(string, string) { connStart.Store(time.Now().UnixNano()) },
		ConnectDone: func(_, _ string, _ error) {
			if s := connStart.Load(); s != 0 {
				connDur.Store(time.Now().UnixNano() - s)
			}
		},
	}
	req, err := http.NewRequestWithContext(httptrace.WithClientTrace(ctx, ct),
		http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return PlanResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(HeaderTraceID, trace)
		req.Header.Set(HeaderSpanID, obs.NewTraceID())
	}
	if mv := c.MinVector(); mv != "" {
		req.Header.Set(HeaderMinVector, mv)
	}
	t0 := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		return PlanResult{}, err
	}
	defer resp.Body.Close()
	tBody := time.Now()
	var env planEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return PlanResult{}, fmt.Errorf("serve: decode %s response (status %d): %w", path, resp.StatusCode, err)
	}
	out := PlanResult{
		Status:    resp.StatusCode,
		Plan:      env.Plan,
		Epoch:     env.Epoch,
		Cached:    env.Cached,
		Coalesced: env.Coalesced,
		Err:       env.Error,
		Trace:     trace,
		Replica:   resp.Header.Get(HeaderReplica),
		Vector:    env.Vector,
		ConnectMS: float64(connDur.Load()) / 1e6,
		QueueMS:   c.msHeader(resp.Header, HeaderQueueMS),
		ComputeMS: c.msHeader(resp.Header, HeaderComputeMS),
		StreamMS:  float64(time.Since(tBody)) / 1e6,
	}
	if out.Trace == "" {
		out.Trace = resp.Header.Get(HeaderTraceID)
	}
	if hint, ok := retryAfterHint(resp.Header.Get("Retry-After")); ok {
		out.RetryAfter = hint
	}
	c.tracer.Span(trace, "client/plan", path, t0, time.Now())
	return out, nil
}

// PlanPair requests a point-to-point plan.
func (c *Client) PlanPair(ctx context.Context, req PairRequest) (PlanResult, error) {
	return c.post(ctx, "/v1/plan/pair", req)
}

// PlanGroup requests a group-coupling plan.
func (c *Client) PlanGroup(ctx context.Context, req GroupRequest) (PlanResult, error) {
	return c.post(ctx, "/v1/plan/group", req)
}

// PlanAgg requests an I/O aggregation plan.
func (c *Client) PlanAgg(ctx context.Context, req AggRequest) (PlanResult, error) {
	return c.post(ctx, "/v1/plan/agg", req)
}

// Simulate runs a full declarative scenario.
func (c *Client) Simulate(ctx context.Context, cfg scenario.Config) (PlanResult, error) {
	return c.post(ctx, "/v1/simulate", cfg)
}

// Fault posts a fault event and returns the new epoch. Against a
// clustered daemon the acknowledged fault-epoch vector is merged into
// the client's min vector, so every subsequent request — to ANY replica
// — demands a fault set that includes this event (read-your-writes).
func (c *Client) Fault(ctx context.Context, ev FaultEvent) (uint64, error) {
	res, err := c.post(ctx, "/v1/fault", ev)
	if err != nil {
		return 0, err
	}
	if res.Status != http.StatusOK {
		return 0, fmt.Errorf("serve: fault event rejected (status %d): %s", res.Status, res.Err)
	}
	c.MergeMinVector(res.Vector)
	return res.Epoch, nil
}

// Metrics fetches the /metrics registry snapshot.
func (c *Client) Metrics(ctx context.Context) (obs.MetricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return obs.MetricsSnapshot{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return obs.MetricsSnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return obs.MetricsSnapshot{}, fmt.Errorf("serve: /metrics status %d: %s", resp.StatusCode, b)
	}
	return obs.ReadMetricsSnapshot(resp.Body)
}

// SLO fetches the daemon's current SLO verdicts (GET /v1/slo).
func (c *Client) SLO(ctx context.Context) (obs.SLOSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/slo", nil)
	if err != nil {
		return obs.SLOSnapshot{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return obs.SLOSnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return obs.SLOSnapshot{}, fmt.Errorf("serve: /v1/slo status %d: %s", resp.StatusCode, b)
	}
	return obs.ReadSLOSnapshot(resp.Body)
}

// TraceJSON fetches the daemon's Perfetto trace snapshot (GET
// /v1/trace) as raw bytes, ready for obs.MergeChromeTraces or a file.
func (c *Client) TraceJSON(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("serve: /v1/trace status %d: %s", resp.StatusCode, b)
	}
	return io.ReadAll(resp.Body)
}

// Health checks the daemon's /healthz endpoint.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: /healthz status %d", resp.StatusCode)
	}
	return nil
}
