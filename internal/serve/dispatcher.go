package serve

import (
	"errors"
	"sync"
)

// ErrOverloaded is returned when the dispatcher's bounded queue is full;
// the HTTP layer maps it to 429 + Retry-After. Overload degrades by
// refusing work at admission instead of queueing without bound.
var ErrOverloaded = errors.New("serve: queue full, request shed")

// dispatcher is a fixed worker pool with a bounded queue. Plan
// computations — each of which builds and runs a private simulation
// engine — are CPU-bound, so the pool both caps memory (at most
// workers+queue engines alive) and keeps latency predictable under
// load.
type dispatcher struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newDispatcher(workers, queue int) *dispatcher {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		// An unbuffered queue would make admission depend on whether a
		// worker happens to be parked in receive — racy shedding.
		queue = 1
	}
	d := &dispatcher{jobs: make(chan func(), queue)}
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker()
	}
	return d
}

func (d *dispatcher) worker() {
	defer d.wg.Done()
	for f := range d.jobs {
		f()
	}
}

// trySubmit enqueues f without blocking; false means the queue is full
// (admission refused — the caller sheds the request).
func (d *dispatcher) trySubmit(f func()) bool {
	select {
	case d.jobs <- f:
		return true
	default:
		return false
	}
}

// queued reports the current queue depth (jobs admitted, not yet picked
// up by a worker).
func (d *dispatcher) queued() int { return len(d.jobs) }

// close drains the queue and stops the workers. Submitting after close
// panics; the Server guarantees ordering.
func (d *dispatcher) close() {
	close(d.jobs)
	d.wg.Wait()
}
