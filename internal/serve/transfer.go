package serve

import (
	"encoding/json"
	"fmt"

	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/scenario"
	"bgqflow/internal/sim"
	"bgqflow/internal/torus"
)

// This file holds the wire types and the pure execution path behind
// transfer sessions (POST /v1/transfer). RunTransfer is to sessions what
// ComputePair is to plans: a deterministic function of (request, fault
// set, pushed-fault timeline) that both the daemon's session runner and
// a verifying client call — the session layer's differential oracle.
// A streamed TransferReport must be byte-identical to a direct
// RunTransfer with the same inputs.

// maxPaceUS caps the per-clock-step wall pacing a request may ask for;
// pacing exists to make sessions observable in real time, not to park
// worker goroutines indefinitely.
const maxPaceUS = 200_000

// TransferRequest asks the daemon to RUN a resilient transfer
// (core.MoveResilient) end to end, not just plan it. The ID makes the
// request idempotent: re-POSTing the same ID attaches to the existing
// session instead of starting a second transfer.
type TransferRequest struct {
	// ID names the session; it must be unique per logical transfer
	// (clients generate a random one). Re-POSTs with the same ID and the
	// same body attach; a different body under a known ID is rejected.
	ID string `json:"id"`
	// Shape is the partition geometry, e.g. "2x2x4x4x2".
	Shape string `json:"shape"`
	// Src and Dst are node IDs.
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Bytes is the transfer size.
	Bytes int64 `json:"bytes"`
	// MaxReplans: 0 uses the default ladder depth (8); -1 disables
	// recovery; >0 sets the bound.
	MaxReplans int `json:"maxReplans,omitempty"`
	// DetectFactor: 0 uses the default (1.5); otherwise must be >= 1.
	DetectFactor float64 `json:"detectFactor,omitempty"`
	// BackoffUS: first-replan backoff in microseconds of simulated time;
	// 0 uses the default (100).
	BackoffUS float64 `json:"backoffUS,omitempty"`
	// Campaign schedules a seeded fault campaign on the session's private
	// engine before the transfer starts (the client-controlled half of
	// chaos; the daemon-wide fault set and pushed fault events are the
	// other half).
	Campaign *scenario.FaultCampaignConfig `json:"campaign,omitempty"`
	// PaceUS sleeps this many wall-clock microseconds per virtual clock
	// step, so a session spans real time (observable progress, drainable
	// mid-flight). Capped at 200ms; pacing never changes virtual-time
	// outcomes, so the differential oracle ignores it.
	PaceUS int `json:"paceUS,omitempty"`
	// Batch marks the request eligible for message combining: small
	// same-pair transfers arriving within the daemon's batch window
	// coalesce into one combined session (Träff-style, behind the
	// BatchWindow config flag).
	Batch bool `json:"batch,omitempty"`
}

// Validate rejects malformed requests before they reach a session
// goroutine.
func (r TransferRequest) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("serve: transfer needs a session id")
	}
	if len(r.ID) > 128 {
		return fmt.Errorf("serve: session id longer than 128 bytes")
	}
	shape, err := torus.ParseShape(r.Shape)
	if err != nil {
		return err
	}
	tor, err := torus.New(shape)
	if err != nil {
		return err
	}
	if r.Src < 0 || r.Src >= tor.Size() || r.Dst < 0 || r.Dst >= tor.Size() {
		return fmt.Errorf("serve: transfer endpoints (%d,%d) outside torus of %d nodes", r.Src, r.Dst, tor.Size())
	}
	if r.Bytes < 1 {
		return fmt.Errorf("serve: transfer bytes %d must be >= 1", r.Bytes)
	}
	if r.MaxReplans < -1 {
		return fmt.Errorf("serve: maxReplans %d must be >= -1", r.MaxReplans)
	}
	if r.DetectFactor != 0 && r.DetectFactor < 1 {
		return fmt.Errorf("serve: detectFactor %g must be 0 (default) or >= 1", r.DetectFactor)
	}
	if r.BackoffUS < 0 {
		return fmt.Errorf("serve: negative backoffUS")
	}
	if r.PaceUS < 0 || r.PaceUS > maxPaceUS {
		return fmt.Errorf("serve: paceUS %d outside [0, %d]", r.PaceUS, maxPaceUS)
	}
	if r.Campaign != nil {
		if _, err := r.Campaign.Build(tor); err != nil {
			return err
		}
	}
	return nil
}

// canonical is the idempotency fingerprint: two POSTs of the same ID
// must carry the same canonical body to attach.
func (r TransferRequest) canonical() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// recoveryConfig resolves the request's knobs onto core defaults.
func (r TransferRequest) recoveryConfig() core.RecoveryConfig {
	rc := core.DefaultRecoveryConfig()
	switch {
	case r.MaxReplans < 0:
		rc.MaxReplans = 0
	case r.MaxReplans > 0:
		rc.MaxReplans = r.MaxReplans
	}
	if r.DetectFactor > 0 {
		rc.DetectFactor = r.DetectFactor
	}
	if r.BackoffUS > 0 {
		rc.Backoff = sim.Duration(r.BackoffUS * 1e-6)
	}
	return rc
}

// SessionFrame is one ndjson line of a transfer session stream. Seq is 0
// on per-connection frames (hello, ping) and monotone from 1 on buffered
// session events; clients track the last buffered seq they saw and
// resume with ?after=N.
//
// Frame types: "hello" (per-connection preamble), "ping" (liveness,
// per-connection), "wave"/"wavedone"/"loss"/"replan"/"degrade"/
// "complete" (core.TransferEvent progress), "fault" (a daemon fault
// event pushed into the running session), "report" (terminal frame, the
// marshaled core.TransferReport).
type SessionFrame struct {
	Seq  uint64 `json:"seq,omitempty"`
	Type string `json:"type"`
	ID   string `json:"id,omitempty"`

	// hello fields. Trace is the session's trace ID (stamped by the
	// client's X-Bgq-Trace-Id or generated at session creation); every
	// resume of the session carries the same value, so one trace follows
	// the transfer across disconnects. Per-connection only — never part
	// of the canonical request or the byte-verified report.
	State      string `json:"state,omitempty"`
	ReplayFrom uint64 `json:"replayFrom,omitempty"`
	Resumed    bool   `json:"resumed,omitempty"`
	Trace      string `json:"trace,omitempty"`

	// Progress fields (see core.TransferEvent).
	Wave    int    `json:"wave,omitempty"`
	Replans int    `json:"replans,omitempty"`
	Proxies int    `json:"proxies,omitempty"`
	Mode    string `json:"mode,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
	// VTime is the event's virtual time in float64 seconds. Seconds, not
	// integer microseconds: the oracle replays pushed faults at exactly
	// this instant, and Go's shortest-representation float encoding
	// round-trips the bits exactly where a µs conversion would not.
	VTime float64 `json:"vtime,omitempty"`
	// Pushed marks a replan that follows a pushed fault frame.
	Pushed bool `json:"pushed,omitempty"`

	// Fault fields: the daemon fault event in wire form plus the link IDs
	// it resolved to on this session's torus — what a verifying client
	// feeds to PushedInterject.
	Epoch   uint64              `json:"epoch,omitempty"`
	Links   []scenario.FailLink `json:"links,omitempty"`
	LinkIDs []int               `json:"linkIDs,omitempty"`

	// Report fields.
	Report  json.RawMessage `json:"report,omitempty"`
	Error   string          `json:"error,omitempty"`
	Aborted bool            `json:"aborted,omitempty"`
	// Members lists the session IDs combined into a batched session (the
	// leader first); Bytes on the report is the combined total.
	Members []string `json:"members,omitempty"`
}

// PushedFault is a fault event as it landed inside a running session: the
// resolved link IDs and the virtual instant the session applied them.
// Extracted from "fault" frames, it lets a client replay the exact
// timeline through RunTransfer.
type PushedFault struct {
	LinkIDs []int
	VTime   float64
}

// TransferHooks are the observation/injection points RunTransfer threads
// into core.MoveResilient.
type TransferHooks struct {
	// OnEvent receives the transfer's progress timeline (synchronous,
	// virtual-time order).
	OnEvent func(core.TransferEvent)
	// Interject runs at every safe point (pre-wave and pre-clock-step);
	// it may mutate the engine (inject faults, pace) or abort the
	// transfer by returning an error.
	Interject func(e *netsim.Engine) error
	// Recorder, when set, captures this run's sim-clock spans and
	// instants (sessions record into a private recorder and merge it
	// into the daemon trace plane when the run finishes). Track names
	// the span track; empty means core's default.
	Recorder *obs.Recorder
	Track    string
}

// PushedInterject builds an Interject hook that replays recorded pushed
// faults: each lands at the first safe point whose virtual time reaches
// its recorded instant — the same rule the live session used, so the
// replayed engine walks the identical trajectory.
func PushedInterject(pushed []PushedFault) func(e *netsim.Engine) error {
	i := 0
	return func(e *netsim.Engine) error {
		for i < len(pushed) && float64(e.Now()) >= pushed[i].VTime {
			for _, l := range pushed[i].LinkIDs {
				if !e.Network().LinkFailed(l) {
					e.FailLinkAt(l, e.Now())
				}
			}
			i++
		}
		return nil
	}
}

// RunTransfer executes one resilient transfer: fresh torus + network +
// interactive engine, the daemon fault set pre-failed, the request's
// campaign scheduled, then core.MoveResilient end to end. Deterministic
// given (request, fault set) and whatever the hooks inject — the session
// layer's correctness hinges on a served session's report being
// byte-identical to a direct call of this function.
func RunTransfer(req TransferRequest, faults []scenario.FailLink, hooks TransferHooks) (core.TransferReport, error) {
	if err := req.Validate(); err != nil {
		return core.TransferReport{}, err
	}
	shape, err := torus.ParseShape(req.Shape)
	if err != nil {
		return core.TransferReport{}, err
	}
	tor, err := torus.New(shape)
	if err != nil {
		return core.TransferReport{}, err
	}
	params := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, params.LinkBandwidth)
	failNetworkLinks(tor, net, applicableFaults(tor, faults))
	e, err := netsim.NewEngine(net, params)
	if err != nil {
		return core.TransferReport{}, err
	}
	e.BeginInteractive()
	if req.Campaign != nil {
		camp, err := req.Campaign.Build(tor)
		if err != nil {
			return core.TransferReport{}, err
		}
		if err := camp.Apply(e); err != nil {
			return core.TransferReport{}, err
		}
	}
	tr, err := core.NewTransport(tor, params, core.DefaultProxyConfig())
	if err != nil {
		return core.TransferReport{}, err
	}
	rc := req.recoveryConfig()
	rc.OnEvent = hooks.OnEvent
	rc.Interject = hooks.Interject
	rc.Recorder = hooks.Recorder
	rc.Track = hooks.Track
	return tr.MoveResilient(e, torus.NodeID(req.Src), torus.NodeID(req.Dst), req.Bytes, rc)
}

// progressFrame converts a core progress event to its wire form.
func progressFrame(ev core.TransferEvent) SessionFrame {
	f := SessionFrame{
		Type:  ev.Kind.String(),
		VTime: float64(ev.At),
	}
	switch ev.Kind {
	case core.EventWave:
		f.Wave = ev.Wave
		f.Proxies = ev.Proxies
		f.Mode = ev.Mode.String()
		f.Bytes = ev.Bytes
	case core.EventWaveDone:
		f.Wave = ev.Wave
	case core.EventLoss:
		f.Wave = ev.Wave
		f.Bytes = ev.Bytes
	case core.EventReplan:
		f.Replans = ev.Replans
		f.Proxies = ev.Proxies
		f.Bytes = ev.Bytes
	case core.EventDegrade:
		f.Proxies = ev.Proxies
	case core.EventComplete:
		f.Bytes = ev.Bytes
	}
	return f
}
