package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheComputeThenHit(t *testing.T) {
	c := newPlanCache(4, 16)
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("plan"), nil }

	v, err, out := c.Do("k", c.Epoch(), compute)
	if err != nil || string(v) != "plan" || out != outcomeComputed {
		t.Fatalf("first Do: %q %v %v", v, err, out)
	}
	v, err, out = c.Do("k", c.Epoch(), compute)
	if err != nil || string(v) != "plan" || out != outcomeHit {
		t.Fatalf("second Do: %q %v %v", v, err, out)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestCacheCoalescesConcurrentCallers(t *testing.T) {
	c := newPlanCache(1, 16)
	started := make(chan struct{})
	release := make(chan struct{})
	var computes atomic.Int64

	go c.Do("k", c.Epoch(), func() ([]byte, error) {
		computes.Add(1)
		close(started)
		<-release
		return []byte("plan"), nil
	})
	<-started

	const waiters = 8
	var wg sync.WaitGroup
	var coalesced atomic.Int64
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			defer wg.Done()
			v, err, out := c.Do("k", c.Epoch(), func() ([]byte, error) {
				computes.Add(1)
				return []byte("other"), nil
			})
			if err != nil || string(v) != "plan" {
				t.Errorf("waiter got %q, %v", v, err)
			}
			if out == outcomeCoalesced {
				coalesced.Add(1)
			}
		}()
	}
	// Give the waiters time to attach to the in-flight entry before the
	// computation finishes. The entry is inserted before compute runs, so
	// the computes==1 assertion holds regardless; the window only makes
	// the coalesced-outcome observation robust.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	if coalesced.Load() == 0 {
		t.Fatalf("no waiter was coalesced")
	}
}

func TestCacheInvalidateHidesOldEntries(t *testing.T) {
	c := newPlanCache(4, 16)
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte(fmt.Sprint(calls)), nil }

	c.Do("k", c.Epoch(), compute)
	c.Invalidate()
	v, _, out := c.Do("k", c.Epoch(), compute)
	if out != outcomeComputed || string(v) != "2" {
		t.Fatalf("post-invalidate Do: %q %v (calls %d)", v, out, calls)
	}
}

// TestCacheNoLostInvalidation pins the stamp-and-check discipline: a
// computation that began under the old epoch must be invisible to
// lookups after the bump, even though it finished after the bump.
func TestCacheNoLostInvalidation(t *testing.T) {
	c := newPlanCache(1, 16)
	preEpoch := c.Epoch()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do("k", preEpoch, func() ([]byte, error) {
			close(started)
			<-release
			return []byte("stale"), nil
		})
	}()
	<-started
	c.Invalidate() // fault event lands mid-computation
	close(release)
	<-done

	v, _, out := c.Do("k", c.Epoch(), func() ([]byte, error) { return []byte("fresh"), nil })
	if string(v) != "fresh" || out != outcomeComputed {
		t.Fatalf("stale entry served after invalidation: %q %v", v, out)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newPlanCache(4, 16)
	calls := 0
	c.Do("k", c.Epoch(), func() ([]byte, error) { calls++; return nil, fmt.Errorf("boom") })
	v, err, _ := c.Do("k", c.Epoch(), func() ([]byte, error) { calls++; return []byte("ok"), nil })
	if err != nil || string(v) != "ok" || calls != 2 {
		t.Fatalf("retry after error: %q %v calls=%d", v, err, calls)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (failed entry evicted)", c.Len())
	}
}

func TestCacheShardOverflowEvicts(t *testing.T) {
	c := newPlanCache(1, 4)
	for i := 0; i < 32; i++ {
		c.Do(fmt.Sprintf("k%d", i), c.Epoch(), func() ([]byte, error) { return []byte("x"), nil })
	}
	if n := c.Len(); n > 5 {
		t.Fatalf("shard grew to %d entries, cap 4 (+1 in flight)", n)
	}
}
