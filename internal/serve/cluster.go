package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"bgqflow/internal/cluster"
)

// Cluster plane (DESIGN.md §17): when Config.ReplicaID is set, the
// daemon is one replica of a bgqd cluster. Fault events stop mutating a
// private fault set and instead enter a gossiped, versioned epoch log
// (cluster.Log); the serve layer's fault set and epoch become a pure
// function of the applied event set, so every replica that has applied
// the same events plans against the same faults — the PR 5
// stamp-and-check discipline, now distributed. POST /v1/gossip is the
// peer wire, GET /v1/cluster the observability endpoint, and the
// X-Bgq-Min-Vector check in servePlan the staleness gate.

// clusterPlane glues a cluster.Node into a Server.
type clusterPlane struct {
	s    *Server
	node *cluster.Node
	stop chan struct{}
	done chan struct{}
	// pubVer is the highest log version published to the serve layer;
	// guarded by s.mu alongside s.faults and s.vec.
	pubVer uint64
}

func newClusterPlane(s *Server) *clusterPlane {
	cp := &clusterPlane{
		s:    s,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	cp.node = cluster.NewNode(cluster.NodeConfig{
		ID:        s.cfg.ReplicaID,
		Peers:     s.cfg.Peers,
		Transport: newHTTPGossipTransport(),
		Seed:      s.cfg.GossipSeed,
		OnApply:   cp.onApply,
	}, cluster.NewLog())
	go cp.loop(s.cfg.GossipInterval)
	return cp
}

// onApply runs after events are newly applied to the log (local
// originations and gossip deliveries alike). It republishes the serve
// layer's fault set and vector — together, under s.mu, guarded by the
// log version so a slow hook can never roll state backwards — and THEN
// bumps the cache epoch: the single-process no-lost-invalidation proof
// (see planCache) carries over unchanged.
func (cp *clusterPlane) onApply(evs []cluster.Event) {
	s := cp.s
	ver, vec, faults := cp.node.Log().Snapshot()
	s.mu.Lock()
	stale := cp.pubVer >= ver
	if !stale {
		s.faults = faults
		s.vec = vec
		cp.pubVer = ver
	}
	s.mu.Unlock()
	epoch := s.cache.Invalidate()
	s.reg.Counter("serve/fault_events").Add(int64(len(evs)))
	if !stale {
		s.reg.Gauge("serve/fault_links").Set(float64(len(faults)))
	}
	// Forward link failures into running transfer sessions (repairs —
	// Clear — do not propagate; a session's engine cannot un-fail a link
	// mid-run).
	for _, ev := range evs {
		if len(ev.Links) > 0 {
			s.sessions.pushFaults(ev.Links, epoch)
		}
	}
}

// loop runs anti-entropy rounds until stopLoop.
func (cp *clusterPlane) loop(interval time.Duration) {
	defer close(cp.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-cp.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), 4*interval)
			cp.node.Round(ctx)
			cancel()
		}
	}
}

func (cp *clusterPlane) stopLoop() {
	close(cp.stop)
	<-cp.done
}

// checkMinVector enforces a request's X-Bgq-Min-Vector demand against
// the vector snapshot the caller already holds. It writes the response
// and returns false when the request must not proceed: 400 on a
// malformed header, 503 when this replica has not yet applied the
// demanded events.
func (s *Server) checkMinVector(w http.ResponseWriter, r *http.Request, epoch uint64, vec cluster.Vector) bool {
	min := r.Header.Get(HeaderMinVector)
	if min == "" {
		return true
	}
	want, err := cluster.ParseVector(min)
	if err != nil {
		s.reg.Counter("serve/errors").Inc()
		writeJSON(w, http.StatusBadRequest, planEnvelope{Epoch: epoch, Error: err.Error(), Vector: vec.String()})
		return false
	}
	if !vec.Dominates(want) {
		s.reg.Counter("serve/stale_rejects").Inc()
		writeJSON(w, http.StatusServiceUnavailable, planEnvelope{
			Epoch:  epoch,
			Error:  fmt.Sprintf("serve: replica %s at vector %q behind requested %q", s.cfg.ReplicaID, vec.String(), min),
			Vector: vec.String(),
		})
		return false
	}
	return true
}

// handleFaultClustered is the clustered POST /v1/fault path: originate
// the event into the log (which applies it locally via onApply — fault
// set first, then epoch bump) and eagerly push it to every peer before
// answering, so the acknowledged vector is usually already applied
// everywhere. The response carries the new vector; a client that
// stamps it as X-Bgq-Min-Vector on its next request gets
// read-your-writes across the whole cluster.
func (cp *clusterPlane) handleFaultClustered(w http.ResponseWriter, r *http.Request, ev FaultEvent) {
	s := cp.s
	_, _, vec := s.snapshotCluster()
	w.Header().Set(HeaderReplica, s.cfg.ReplicaID)
	// Honoring min-vector here too gives sequential fault posts a
	// well-defined cluster-wide order: each originator has applied every
	// event the client saw acknowledged, so Lamport stamps increase.
	if !s.checkMinVector(w, r, s.cache.Epoch(), vec) {
		return
	}
	cp.node.OriginateFault(r.Context(), ev.Links, ev.Clear)
	epoch, _, vecNow := s.snapshotCluster()
	vs := vecNow.String()
	w.Header().Set(HeaderVector, vs)
	writeJSON(w, http.StatusOK, planEnvelope{Epoch: epoch, Vector: vs})
}

// handleGossip is the peer wire: POST /v1/gossip carries one push-pull
// exchange (cluster.Message in, cluster.Message out).
func (s *Server) handleGossip(w http.ResponseWriter, r *http.Request) {
	if s.clst == nil {
		writeJSON(w, http.StatusNotFound, planEnvelope{Error: "serve: not clustered (start bgqd with -replica-id)"})
		return
	}
	var msg cluster.Message
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	if err := dec.Decode(&msg); err != nil {
		s.reg.Counter("serve/errors").Inc()
		writeJSON(w, http.StatusBadRequest, planEnvelope{Error: fmt.Sprintf("serve: bad gossip body: %v", err)})
		return
	}
	writeJSON(w, http.StatusOK, s.clst.node.HandleMessage(msg))
}

// ClusterStatus is the GET /v1/cluster body: where this replica stands
// in the fault-epoch plane.
type ClusterStatus struct {
	Replica string   `json:"replica"`
	Peers   []string `json:"peers"`
	// Vector is the applied fault-epoch vector the serve layer vouches
	// for (canonical string form).
	Vector string `json:"vector"`
	// Events is the number of fault events applied; FaultLinks the size
	// of the effective fault set they replay to.
	Events     int    `json:"events_applied"`
	FaultLinks int    `json:"fault_links"`
	Epoch      uint64 `json:"epoch"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.clst == nil {
		writeJSON(w, http.StatusNotFound, planEnvelope{Error: "serve: not clustered (start bgqd with -replica-id)"})
		return
	}
	epoch, faults, vec := s.snapshotCluster()
	writeJSON(w, http.StatusOK, ClusterStatus{
		Replica:    s.cfg.ReplicaID,
		Peers:      s.clst.node.Peers(),
		Vector:     vec.String(),
		Events:     s.clst.node.Log().EventsApplied(),
		FaultLinks: len(faults),
		Epoch:      epoch,
	})
}

// httpGossipTransport carries gossip exchanges over POST /v1/gossip,
// reusing the client layer's address forms (TCP and unix sockets).
// Clients are built once per peer address and cached.
type httpGossipTransport struct {
	mu    sync.Mutex
	peers map[string]httpPeer
}

type httpPeer struct {
	base string
	hc   *http.Client
}

func newHTTPGossipTransport() *httpGossipTransport {
	return &httpGossipTransport{peers: make(map[string]httpPeer)}
}

func (t *httpGossipTransport) peer(addr string) (httpPeer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[addr]; ok {
		return p, nil
	}
	base, hc, err := dialTarget(addr)
	if err != nil {
		return httpPeer{}, err
	}
	// A bounded per-exchange timeout so one dead peer cannot stall a
	// broadcast behind TCP timeouts.
	hc.Timeout = 2 * time.Second
	p := httpPeer{base: base, hc: hc}
	t.peers[addr] = p
	return p, nil
}

func (t *httpGossipTransport) Exchange(ctx context.Context, peerAddr string, msg cluster.Message) (cluster.Message, error) {
	p, err := t.peer(peerAddr)
	if err != nil {
		return cluster.Message{}, err
	}
	raw, err := json.Marshal(msg)
	if err != nil {
		return cluster.Message{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+"/v1/gossip", bytes.NewReader(raw))
	if err != nil {
		return cluster.Message{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.hc.Do(req)
	if err != nil {
		return cluster.Message{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cluster.Message{}, fmt.Errorf("serve: gossip peer %s status %d", peerAddr, resp.StatusCode)
	}
	var out cluster.Message
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return cluster.Message{}, err
	}
	return out, nil
}
