package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bgqflow/internal/obs"
	"bgqflow/internal/scenario"
	"bgqflow/internal/serve"
)

// Telemetry-plane end-to-end tests: Prometheus exposition, phase
// headers, trace propagation (including across forced disconnects and
// resumes), and SLO verdicts — all over real HTTP.

func TestMetricsPromEndpoint(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		res, err := client.PlanPair(ctx, serve.PairRequest{Shape: testShape, Src: 0, Dst: 97, Bytes: 1 << 20})
		if err != nil || !res.OK() {
			t.Fatalf("plan %d: %v status %d", i, err, res.Status)
		}
	}

	// The JSON form still works and carries the window metrics...
	snap, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.WindowCounters["serve/window/requests"].Total != 5 {
		t.Fatalf("window requests = %+v", snap.WindowCounters["serve/window/requests"])
	}
	if snap.WindowHistograms["serve/window/plan_latency_ms"].N != 5 {
		t.Fatalf("window latency = %+v", snap.WindowHistograms["serve/window/plan_latency_ms"])
	}

	// ...and ?format=prom serves the same data as Prometheus text.
	resp, err := http.Get(clientBase(t, client) + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prom content type = %q", ct)
	}
	scrape, err := obs.ParsePrometheusText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := scrape.Value("serve_requests", ""); !ok || v != 5 {
		t.Fatalf("serve_requests = %g ok=%v", v, ok)
	}
	if v, ok := scrape.Value("serve_window_requests_window_total", `{window="30s"}`); !ok || v != 5 {
		t.Fatalf("windowed request total = %g ok=%v", v, ok)
	}
	// The windowed p99 — what a live dashboard reads.
	if v, ok := scrape.Value("serve_window_plan_latency_ms_window", `{quantile="0.99",window="30s"}`); !ok || v <= 0 {
		t.Fatalf("windowed p99 = %g ok=%v", v, ok)
	}
}

// clientBase recovers the daemon base URL from the test client via
// /healthz — the httptest URL is what NewClient was given.
func clientBase(t *testing.T, c *serve.Client) string {
	t.Helper()
	return c.BaseURL()
}

func TestPlanPhaseHeadersAndTrace(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{TraceEvents: 1024})
	client.SetTracer(obs.NewWallRecorder(1024))
	ctx := context.Background()

	req := serve.PairRequest{Shape: testShape, Src: 0, Dst: 97, Bytes: 1 << 20}
	first, err := client.PlanPair(ctx, req)
	if err != nil || !first.OK() {
		t.Fatalf("first: %v status %d", err, first.Status)
	}
	if first.Trace == "" {
		t.Fatal("traced client got no trace ID back")
	}
	if first.Cached || first.Coalesced {
		t.Fatalf("first request served from cache? %+v", first)
	}
	// A computed plan reports real queue and compute phases.
	if first.ComputeMS <= 0 {
		t.Fatalf("computed plan reports ComputeMS = %g, want > 0", first.ComputeMS)
	}
	if first.QueueMS < 0 {
		t.Fatalf("QueueMS = %g", first.QueueMS)
	}
	if first.StreamMS < 0 {
		t.Fatalf("StreamMS = %g", first.StreamMS)
	}

	second, err := client.PlanPair(ctx, req)
	if err != nil || !second.OK() {
		t.Fatalf("second: %v status %d", err, second.Status)
	}
	if !second.Cached {
		t.Fatalf("second identical request not cached: %+v", second)
	}
	if second.QueueMS != 0 || second.ComputeMS != 0 {
		t.Fatalf("cache hit reports phase times %g/%g, want 0/0", second.QueueMS, second.ComputeMS)
	}
	if second.Trace == first.Trace {
		t.Fatal("two logical requests share a trace ID")
	}

	// The daemon's trace snapshot carries the first request's spans —
	// request, queue, and compute — under the client's trace ID.
	raw, err := client.TraceJSON(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" && ev.Args["trace"] == first.Trace {
			found[ev.Name] = true
		}
	}
	for _, want := range []string{"pair", "pair queue", "pair compute"} {
		if !found[want] {
			t.Fatalf("server trace missing %q span for trace %s (saw %v)", want, first.Trace, found)
		}
	}
	if srv.WallRecorder().OpenSpans() != 0 {
		t.Fatalf("%d orphan open spans after requests completed", srv.WallRecorder().OpenSpans())
	}
}

func TestTraceEndpointDisabledIs404(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{}) // TraceEvents unset
	if _, err := client.TraceJSON(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "status 404") {
		t.Fatalf("disabled trace endpoint error = %v, want 404", err)
	}
}

func TestSLOEndpointVerdicts(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{
		StatsWindow: 10 * time.Second,
		SLOs: []obs.SLOSpec{
			{Name: "plan_p99", Kind: obs.SLOLatencyP99, Metric: "serve/window/plan_latency_ms", Threshold: 60_000},
			{Name: "shed_ratio", Kind: obs.SLORatioMax, Metric: "serve/window/shed",
				Denominator: "serve/window/requests", Threshold: 0.5},
			{Name: "tight_p99", Kind: obs.SLOLatencyP99, Metric: "serve/window/plan_latency_ms", Threshold: 1e-9},
		},
	})
	ctx := context.Background()

	// Before traffic: enabled, and every verdict vacuous.
	snap, err := client.SLO(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled || snap.WindowSec != 10 {
		t.Fatalf("snapshot = %+v", snap)
	}
	for _, v := range snap.Verdicts {
		if !v.Vacuous || v.Breached {
			t.Fatalf("pre-traffic verdict = %+v, want vacuous", v)
		}
	}

	for i := 0; i < 5; i++ {
		if res, err := client.PlanPair(ctx, serve.PairRequest{Shape: testShape, Src: 0, Dst: 97, Bytes: 1 << 20}); err != nil || !res.OK() {
			t.Fatalf("plan: %v", err)
		}
	}
	snap, err = client.SLO(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.SLOVerdict{}
	for _, v := range snap.Verdicts {
		byName[v.Name] = v
	}
	if v := byName["plan_p99"]; v.Breached || v.Vacuous || v.Value <= 0 {
		t.Fatalf("generous p99 objective = %+v", v)
	}
	if v := byName["shed_ratio"]; v.Breached || v.Vacuous || v.Value != 0 {
		t.Fatalf("shed objective = %+v", v)
	}
	// The impossible 1ns objective must breach — and its burn counter
	// must make the whole snapshot report Breached for soak gating.
	if v := byName["tight_p99"]; !v.Breached || v.Breaches == 0 {
		t.Fatalf("impossible objective did not breach: %+v", v)
	}
	if !snap.Breached() {
		t.Fatal("snapshot.Breached() = false with a breached objective")
	}
}

// TestSessionResumeTraceContinuity is the tracing acceptance scenario:
// a paced session whose client disconnects every few frames (forced
// DropEvery) while a daemon fault event lands mid-flight. One trace ID
// must cover the initial POST, every resume, the server session span,
// the pushed-fault instant, and the merged engine timeline — with no
// orphan open spans left behind.
func TestSessionResumeTraceContinuity(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{TraceEvents: 1 << 14})
	client.SetTracer(obs.NewWallRecorder(1 << 12))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Find a link the unfaulted route rides so the mid-flight fault
	// forces a replan.
	pre, err := client.PlanPair(ctx, serve.PairRequest{Shape: testShape, Src: 0, Dst: 97, Bytes: 1 << 20})
	if err != nil || !pre.OK() {
		t.Fatalf("warmup: %v", err)
	}
	var prePlan serve.PairPlan
	if err := json.Unmarshal(pre.Plan, &prePlan); err != nil {
		t.Fatal(err)
	}
	fl, ok := linkToFail(t, testShape, prePlan.Flows[0].Links[0])
	if !ok {
		t.Fatal("cannot invert plan link")
	}

	var helloTraces []string
	waveSeen := make(chan struct{})
	var closed bool
	go func() {
		<-waveSeen
		if _, ferr := client.Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}}); ferr != nil {
			t.Errorf("fault: %v", ferr)
		}
	}()
	out, err := client.Transfer(ctx, serve.TransferRequest{
		ID: "s-trace-1", Shape: testShape, Src: 0, Dst: 97, Bytes: 32 << 20,
		PaceUS: 2000,
	}, serve.TransferOpts{
		DropEvery: 3, // force a disconnect+resume every 3 frames
		OnFrame: func(f serve.SessionFrame) {
			switch f.Type {
			case "hello":
				helloTraces = append(helloTraces, f.Trace)
			case "wave":
				if !closed {
					closed = true
					close(waveSeen)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != "" {
		t.Fatalf("transfer failed server-side: %s", out.Err)
	}
	if out.Resumes == 0 {
		t.Fatal("DropEvery forced no resumes; the continuity path was not exercised")
	}
	if len(out.Pushed) == 0 {
		t.Fatal("the fault event did not land mid-flight")
	}
	if out.Trace == "" {
		t.Fatal("no trace ID on the outcome")
	}
	// Every connection — initial and resumes — reported the same trace.
	if len(helloTraces) < 2 {
		t.Fatalf("only %d hello frames; resumes should add more", len(helloTraces))
	}
	for i, tr := range helloTraces {
		if tr != out.Trace {
			t.Fatalf("hello %d carries trace %q, want %q (trace must survive resume)", i, tr, out.Trace)
		}
	}

	// The session goroutine closes its span just after publishing the
	// report the client returned on — give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for srv.WallRecorder().OpenSpans() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.WallRecorder().OpenSpans(); n != 0 {
		t.Fatalf("%d orphan open spans after session completed", n)
	}

	// Merge the client and server traces the way bgqload -trace-out does,
	// then assert the one-trace story: client attempt spans, the server
	// session span, the pushed-fault instant, and the merged sim-clock
	// engine timeline all tagged with out.Trace.
	serverRaw, err := client.TraceJSON(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var clientBuf, merged strings.Builder
	if err := client.Tracer().WriteChromeTrace(&clientBuf); err != nil {
		t.Fatal(err)
	}
	if err := obs.MergeChromeTraces(&merged, []byte(clientBuf.String()), serverRaw); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args,omitempty"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(merged.String()), &tr); err != nil {
		t.Fatal(err)
	}
	var clientAttempts, sessionSpans, engineSpans, faultInstants, openSpans int
	pids := map[int]bool{}
	for _, ev := range tr.TraceEvents {
		pids[ev.Pid] = true
		if ev.Args["open"] == true {
			openSpans++
		}
		if ev.Args["trace"] != out.Trace {
			continue
		}
		switch {
		case ev.Ph == "X" && strings.HasPrefix(ev.Name, "post "), ev.Ph == "X" && strings.HasPrefix(ev.Name, "resume "):
			clientAttempts++
		case ev.Ph == "X" && ev.Name == "session s-trace-1":
			sessionSpans++
		case ev.Ph == "X" && (strings.HasPrefix(ev.Name, "resilient ") || strings.HasPrefix(ev.Name, "replan ")):
			engineSpans++
		case ev.Ph == "i" && ev.Name == "fault pushed":
			faultInstants++
		}
	}
	if clientAttempts < 2 {
		t.Errorf("merged trace has %d client attempt spans under trace %s, want >= 2 (post + resumes)", clientAttempts, out.Trace)
	}
	if sessionSpans != 1 {
		t.Errorf("merged trace has %d server session spans, want 1", sessionSpans)
	}
	if faultInstants == 0 {
		t.Error("merged trace has no pushed-fault instant under the session trace")
	}
	if engineSpans == 0 {
		t.Error("merged trace has no sim-clock engine spans under the session trace")
	}
	if openSpans != 0 {
		t.Errorf("merged trace contains %d open (orphan) spans", openSpans)
	}
	if len(pids) < 3 {
		t.Errorf("merged trace spans %d pids, want >= 3 (client wall + server wall + engine sim)", len(pids))
	}
	t.Logf("trace continuity: %d resumes, %d client attempts, %d pushed instants, one trace %s",
		out.Resumes, clientAttempts, faultInstants, out.Trace)
}

// A daemon with tracing enabled assigns traces server-side for untraced
// clients, and the hello frame hands the ID back.
func TestServerAssignedSessionTrace(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{TraceEvents: 1024})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out, err := client.Transfer(ctx, serve.TransferRequest{
		ID: "s-trace-2", Shape: testShape, Src: 0, Dst: 5, Bytes: 1 << 20,
	}, serve.TransferOpts{})
	if err != nil || out.Err != "" {
		t.Fatalf("transfer: %v / %s", err, out.Err)
	}
	if out.Trace == "" {
		t.Fatal("server-side tracing enabled but hello carried no trace")
	}
}

// The disabled plane must stay free: no trace IDs minted, no headers
// beyond the zero phase stamps, no allocations in the obs calls.
func TestDisabledTracingNoTraceIDs(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{}) // tracing off, no client tracer
	res, err := client.PlanPair(context.Background(),
		serve.PairRequest{Shape: testShape, Src: 0, Dst: 97, Bytes: 1 << 20})
	if err != nil || !res.OK() {
		t.Fatalf("plan: %v", err)
	}
	if res.Trace != "" {
		t.Fatalf("untraced request came back with trace %q", res.Trace)
	}
	// Phase headers still work — queue/compute come from the server
	// regardless of tracing.
	if res.ComputeMS <= 0 {
		t.Fatalf("ComputeMS = %g, want > 0 on a computed plan", res.ComputeMS)
	}
}

func TestResumeWindowCounters(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out, err := client.Transfer(ctx, serve.TransferRequest{
		ID: "s-resume-counters", Shape: testShape, Src: 0, Dst: 97, Bytes: 16 << 20, PaceUS: 500,
	}, serve.TransferOpts{DropEvery: 2})
	if err != nil || out.Err != "" {
		t.Fatalf("transfer: %v / %s", err, out.Err)
	}
	if out.Resumes == 0 {
		t.Fatal("no resumes forced")
	}
	snap := srv.Registry().Snapshot()
	resumes := snap.WindowCounters["serve/window/resumes"].Total
	hits := snap.WindowCounters["serve/window/resume_hits"].Total
	if resumes < int64(out.Resumes) {
		t.Fatalf("window resumes = %d, client saw %d", resumes, out.Resumes)
	}
	if hits != resumes {
		t.Fatalf("resume hits %d != resumes %d (no daemon restart here — every resume must hit)", hits, resumes)
	}

	// An unknown session is the miss case.
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		clientBase(t, client)+"/v1/transfer/no-such-session/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session resume status = %d", resp.StatusCode)
	}
	snap = srv.Registry().Snapshot()
	if got := snap.WindowCounters["serve/window/resumes"].Total; got != resumes+1 {
		t.Fatalf("miss did not count: %d", got)
	}
	if got := snap.WindowCounters["serve/window/resume_hits"].Total; got != hits {
		t.Fatalf("miss counted as hit: %d", got)
	}
}
