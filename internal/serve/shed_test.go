package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bgqflow/internal/scenario"
)

// TestServePlanShedsUnderLoad drives the admission path deterministically:
// one worker pinned on a blocking computation, the single queue slot
// filled — the next distinct request must be shed with 429 and a
// Retry-After hint, never queued or blocked.
func TestServePlanShedsUnderLoad(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan *httptest.ResponseRecorder, 2)
	go func() {
		rec := httptest.NewRecorder()
		s.servePlan(rec, httptest.NewRequest("POST", "/v1/plan/pair", nil), "pair", "key-blocking", func([]scenario.FailLink) (any, error) {
			close(started)
			<-release
			return PairPlan{Mode: "direct"}, nil
		})
		done <- rec
	}()
	<-started // the worker is pinned
	go func() {
		rec := httptest.NewRecorder()
		s.servePlan(rec, httptest.NewRequest("POST", "/v1/plan/pair", nil), "pair", "key-fill", func([]scenario.FailLink) (any, error) {
			return PairPlan{Mode: "direct"}, nil
		})
		done <- rec
	}()
	// Wait for the filler to occupy the queue slot.
	for s.disp.queued() != 1 {
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	s.servePlan(rec, httptest.NewRequest("POST", "/v1/plan/pair", nil), "pair", "key-shed", func([]scenario.FailLink) (any, error) {
		t.Error("shed request must not compute")
		return nil, nil
	})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	var env planEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error == "" {
		t.Fatalf("shed envelope: %v (err %v)", env, err)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if r := <-done; r.Code != http.StatusOK {
			t.Fatalf("admitted request %d finished with %d, want 200", i, r.Code)
		}
	}
	if got := s.reg.Counter("serve/shed").Value(); got != 1 {
		t.Fatalf("serve/shed = %d, want 1", got)
	}
	// A retry of the shed key with a free worker must now succeed: failed
	// (shed) computations are not cached.
	rec = httptest.NewRecorder()
	s.servePlan(rec, httptest.NewRequest("POST", "/v1/plan/pair", nil), "pair", "key-shed", func([]scenario.FailLink) (any, error) {
		return PairPlan{Mode: "direct"}, nil
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("retry after shed: status %d, want 200", rec.Code)
	}
}
