package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bgqflow/internal/cluster"
	"bgqflow/internal/scenario"
	"bgqflow/internal/serve"
)

// testCluster is an in-process bgqd cluster: n clustered daemons on
// real TCP listeners (so peer URLs exist before serve.New runs), plus
// a ring client over them.
type testCluster struct {
	servers []*serve.Server
	https   []*httptest.Server
	members []cluster.Member
	ring    *serve.RingClient
}

// newTestCluster pre-binds n listeners, builds each daemon with the
// other n-1 as peers, and mounts the handlers.
func newTestCluster(t *testing.T, n int, mut func(i int, cfg *serve.Config)) *testCluster {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := serve.Config{
			ReplicaID:      fmt.Sprintf("r%d", i),
			Peers:          peers,
			GossipInterval: 25 * time.Millisecond,
			GossipSeed:     int64(i + 1),
		}
		if mut != nil {
			mut(i, &cfg)
		}
		srv := serve.New(cfg)
		hs := &httptest.Server{
			Listener: listeners[i],
			Config:   &http.Server{Handler: srv.Handler()},
		}
		hs.Start()
		tc.servers = append(tc.servers, srv)
		tc.https = append(tc.https, hs)
		tc.members = append(tc.members, cluster.Member{ID: cfg.ReplicaID, Addr: urls[i]})
	}
	t.Cleanup(func() {
		for i := range tc.https {
			tc.https[i].Close()
			tc.servers[i].Close()
		}
	})
	ring, err := serve.NewRingClient(tc.members)
	if err != nil {
		t.Fatal(err)
	}
	tc.ring = ring
	return tc
}

// kill stops replica i's HTTP server (the daemon object stays for
// Cleanup, but no longer answers — a crashed replica as clients see it).
func (tc *testCluster) kill(i int) {
	tc.https[i].CloseClientConnections()
	tc.https[i].Close()
}

// waitConverged polls every live replica's /v1/cluster until all report
// a vector dominating want.
func (tc *testCluster) waitConverged(t *testing.T, want string, timeout time.Duration) {
	t.Helper()
	wantV, err := cluster.ParseVector(want)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(timeout)
	for {
		sts := tc.ring.ClusterStatusAll(context.Background())
		ok := len(sts) > 0
		for _, st := range sts {
			got, perr := cluster.ParseVector(st.Vector)
			if perr != nil || !got.Dominates(wantV) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged to %q: %+v", want, sts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterDifferential200Seeds is the headline differential gate:
// 200 seeded requests, each routed to its hash-selected replica by the
// ring client and compared byte-for-byte against a direct
// single-threaded planner call — with fault events (including repairs)
// interleaved every 25th seed, posted round-robin across replicas. The
// min-vector discipline means every post-fault plan must reflect the
// fault no matter which replica serves it.
func TestClusterDifferential200Seeds(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	size := 2 * 2 * 4 * 4 * 2 // testShape node count

	var faults []scenario.FailLink // client-side mirror of the cluster fault set
	served := map[string]int{}
	for seed := 0; seed < 200; seed++ {
		if seed > 0 && seed%25 == 0 {
			if len(faults) >= 3 {
				// A repair: Clear resets the whole set (and must propagate
				// as an event, not as absence of one).
				if _, err := tc.ring.Fault(ctx, serve.FaultEvent{Clear: true}); err != nil {
					t.Fatalf("seed %d: clear: %v", seed, err)
				}
				faults = faults[:0]
			} else {
				fl := scenario.FailLink{Node: rng.Intn(size), Dim: rng.Intn(5), Dir: 1}
				if _, err := tc.ring.Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}}); err != nil {
					t.Fatalf("seed %d: fault: %v", seed, err)
				}
				faults = append(faults, fl)
			}
		}
		src := rng.Intn(size)
		dst := rng.Intn(size)
		if dst == src {
			dst = (src + 1) % size
		}
		req := serve.PairRequest{
			Shape: testShape,
			Src:   src,
			Dst:   dst,
			Bytes: int64(1+rng.Intn(16)) << 20,
		}
		res, err := tc.ring.PlanPair(ctx, req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.OK() {
			t.Fatalf("seed %d: status %d: %s", seed, res.Status, res.Err)
		}
		served[res.Replica]++
		wantWire, _ := directPairWire(t, req, faults)
		want, err := json.Marshal(wantWire)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Plan, want) {
			t.Fatalf("seed %d (replica %s, %d faults): ring-served plan differs from direct planner\nserved: %s\ndirect: %s",
				seed, res.Replica, len(faults), res.Plan, want)
		}
	}
	if tc.ring.StaleServed() != 0 {
		t.Fatalf("stale_served = %d, want 0", tc.ring.StaleServed())
	}
	// The ring must actually shard: every replica served some requests.
	if len(served) != 3 {
		t.Fatalf("only %d replicas served requests: %v", len(served), served)
	}
	t.Logf("per-replica served counts: %v", served)
}

// TestClusterGossipConvergence posts a fault to exactly ONE replica and
// asserts the others converge by gossip alone — then that a plan from a
// vector-agnostic client (no min-vector stamped) reflects the fault on
// every replica.
func TestClusterGossipConvergence(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	ctx := context.Background()

	req := serve.PairRequest{Shape: testShape, Src: 0, Dst: 97, Bytes: 4 << 20}
	res, err := tc.ring.Client("r0").PlanPair(ctx, req)
	if err != nil || !res.OK() {
		t.Fatalf("pre-fault plan: %v status %d", err, res.Status)
	}
	var pre serve.PairPlan
	if err := json.Unmarshal(res.Plan, &pre); err != nil {
		t.Fatal(err)
	}
	target := pre.Flows[0].Links[0]
	fl, ok := linkToFail(t, testShape, target)
	if !ok {
		t.Fatalf("cannot invert link id %d", target)
	}

	// Post to r1 only, via its direct client.
	if _, err := tc.ring.Client("r1").Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}}); err != nil {
		t.Fatal(err)
	}
	tc.waitConverged(t, "r1:1", 5*time.Second)

	wantWire, _ := directPairWire(t, req, []scenario.FailLink{fl})
	want, err := json.Marshal(wantWire)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"r0", "r1", "r2"} {
		// Fresh clients: no min-vector, so any stale replica would happily
		// serve a pre-fault plan — convergence itself is under test.
		c, err := serve.NewClient(tc.https[id[1]-'0'].URL)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.PlanPair(ctx, req)
		if err != nil || !res.OK() {
			t.Fatalf("%s: post-fault plan: %v status %d", id, err, res.Status)
		}
		if !bytes.Equal(res.Plan, want) {
			t.Errorf("%s: post-fault plan does not route around the gossiped fault", id)
		}
		if res.Replica != id {
			t.Errorf("served by %q, want %q", res.Replica, id)
		}
	}
}

// TestClusterStaleReject pins the staleness gate: a replica that has
// not applied a demanded vector refuses to serve (503), and a client
// with retries rides out the window when gossip is connected.
func TestClusterStaleReject(t *testing.T) {
	// Two isolated "clusters of one": r0 and r1 know no peers, so a
	// fault on r0 NEVER reaches r1.
	tc := newTestCluster(t, 2, func(i int, cfg *serve.Config) { cfg.Peers = nil })
	ctx := context.Background()

	c0 := tc.ring.Client("r0")
	fl := scenario.FailLink{Node: 1, Dim: 0, Dir: 1}
	if _, err := c0.Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}}); err != nil {
		t.Fatal(err)
	}
	if got := tc.ring.MinVector(); got != "r0:1" {
		t.Fatalf("ring min vector = %q, want r0:1 (fault ack must establish the demand)", got)
	}

	// A direct request to r1 demanding r0:1 must be refused, not served
	// stale.
	c1, err := serve.NewClient(tc.https[1].URL)
	if err != nil {
		t.Fatal(err)
	}
	c1.SetRetryPolicy(serve.NoRetryPolicy())
	c1.MergeMinVector("r0:1")
	req := serve.PairRequest{Shape: testShape, Src: 0, Dst: 97, Bytes: 4 << 20}
	res, err := c1.PlanPair(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable {
		t.Fatalf("stale replica answered status %d, want 503", res.Status)
	}
	if got := tc.servers[1].Registry().Counter("serve/stale_rejects").Value(); got == 0 {
		t.Fatal("serve/stale_rejects not counted")
	}
	// r0 itself HAS applied r0:1 and must serve.
	res, err = c0.PlanPair(ctx, req) // c0 demands r0:1 via its own merged vector
	if err != nil || !res.OK() {
		t.Fatalf("originating replica refused its own vector: %v status %d", err, res.Status)
	}

	// A malformed demand is a client bug: 400, not 503.
	c1.MergeMinVector("") // no-op; build raw request for the malformed case
	hreq, _ := http.NewRequestWithContext(ctx, http.MethodPost, tc.https[1].URL+"/v1/plan/pair",
		bytes.NewReader([]byte(`{"shape":"2x2x4x4x2","src":0,"dst":1,"bytes":1024}`)))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Bgq-Min-Vector", "not-a-vector")
	hres, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed min-vector: status %d, want 400", hres.StatusCode)
	}
}

// TestClusterStaleWindowRides verifies the happy path of the same gate:
// with gossip connected, a short retry budget is enough — the client
// never sees the 503s that may fire inside the propagation window.
func TestClusterStaleWindowRides(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	ctx := context.Background()
	req := serve.PairRequest{Shape: testShape, Src: 3, Dst: 64, Bytes: 8 << 20}
	for i := 0; i < 5; i++ {
		fl := scenario.FailLink{Node: 10 + i, Dim: i % 5, Dir: 1}
		if _, err := tc.ring.Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}}); err != nil {
			t.Fatal(err)
		}
		res, err := tc.ring.PlanPair(ctx, req)
		if err != nil || !res.OK() {
			t.Fatalf("round %d: %v status %d %s", i, err, res.Status, res.Err)
		}
	}
	if tc.ring.StaleServed() != 0 {
		t.Fatalf("stale_served = %d, want 0", tc.ring.StaleServed())
	}
}

// TestClusterSessionReroute pins satellite 3's session half: when the
// replica owning a session ID is dead, the ring client re-POSTs the
// same idempotent ID to the successor — the session runs exactly once,
// on exactly one live replica.
func TestClusterSessionReroute(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	req := serve.TransferRequest{ID: "s-reroute-test", Shape: testShape, Src: 0, Dst: 97, Bytes: 4 << 20}
	// Find and kill the owner BEFORE the transfer starts: the first POST
	// hits a dead socket and must fail over.
	owner := ""
	for i, m := range tc.members {
		if tc.ringOwner("session|"+req.ID) == m.ID {
			owner = m.ID
			tc.kill(i)
			break
		}
	}
	if owner == "" {
		t.Fatal("no owner found for session key")
	}

	out, err := tc.ring.Transfer(ctx, req, serve.TransferOpts{})
	if err != nil {
		t.Fatalf("rerouted transfer failed: %v", err)
	}
	if out.Err != "" || len(out.Report) == 0 {
		t.Fatalf("transfer did not complete: err=%q report=%dB", out.Err, len(out.Report))
	}

	// Exactly one live replica executed it; no duplicates anywhere.
	executed := int64(0)
	for i, srv := range tc.servers {
		if tc.members[i].ID == owner {
			continue // killed; its registry saw nothing
		}
		executed += srv.Registry().Counter("serve/sessions_executed").Value()
	}
	if executed != 1 {
		t.Fatalf("sessions_executed across live replicas = %d, want exactly 1", executed)
	}
	if got := tc.ring.Registry().Counter("serve/ring/session_reroutes").Value(); got == 0 {
		t.Fatal("reroute not counted — did the owner die before the POST?")
	}
}

// ringOwner resolves which member owns a key on a fresh ring built from
// the same membership (determinism is itself part of the contract).
func (tc *testCluster) ringOwner(key string) string {
	r := cluster.NewRing(0, tc.members...)
	m, _ := r.Lookup(key)
	return m.ID
}

// TestClusterKillReplicaDifferential is the chaos version of the
// differential gate: kill one replica partway through a seeded request
// stream (with interleaved faults) and keep comparing every served
// plan against the oracle. Failovers are allowed; stale or divergent
// plans are not.
func TestClusterKillReplicaDifferential(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	size := 2 * 2 * 4 * 4 * 2

	var faults []scenario.FailLink
	for seed := 0; seed < 60; seed++ {
		if seed == 20 {
			tc.kill(2) // r2 crashes mid-run
		}
		if seed%15 == 10 && len(faults) < 3 {
			fl := scenario.FailLink{Node: rng.Intn(size), Dim: rng.Intn(5), Dir: -1}
			if _, err := tc.ring.Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}}); err != nil {
				t.Fatalf("seed %d: fault: %v", seed, err)
			}
			faults = append(faults, fl)
		}
		src, dst := rng.Intn(size), rng.Intn(size)
		if dst == src {
			dst = (src + 1) % size
		}
		req := serve.PairRequest{Shape: testShape, Src: src, Dst: dst, Bytes: int64(1+rng.Intn(8)) << 20}
		res, err := tc.ring.PlanPair(ctx, req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.OK() {
			t.Fatalf("seed %d: status %d: %s", seed, res.Status, res.Err)
		}
		if seed >= 20 && res.Replica == "r2" {
			t.Fatalf("seed %d: served by killed replica", seed)
		}
		wantWire, _ := directPairWire(t, req, faults)
		want, _ := json.Marshal(wantWire)
		if !bytes.Equal(res.Plan, want) {
			t.Fatalf("seed %d (replica %s): plan diverged after replica kill", seed, res.Replica)
		}
	}
	if tc.ring.StaleServed() != 0 {
		t.Fatalf("stale_served = %d, want 0", tc.ring.StaleServed())
	}
}

// TestClusterConcurrentFaultPosts hammers concurrent fault posts on
// DIFFERENT replicas while plans stream through the ring (run under
// -race via the tier-1 serve race list). Afterwards every replica must
// converge to one fault set and serve the same oracle plan.
func TestClusterConcurrentFaultPosts(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	ctx := context.Background()

	var wg sync.WaitGroup
	var links [2][]scenario.FailLink
	for g := 0; g < 2; g++ {
		for p := 0; p < 4; p++ {
			links[g] = append(links[g], scenario.FailLink{Node: 32*g + p, Dim: p % 5, Dir: 1})
		}
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := tc.ring.Client(fmt.Sprintf("r%d", g))
			for _, fl := range links[g] {
				if _, err := c.Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}}); err != nil {
					t.Errorf("fault on r%d: %v", g, err)
					return
				}
			}
		}(g)
	}
	// Plan traffic racing the fault storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			req := serve.PairRequest{Shape: testShape, Src: i % 64, Dst: 96 + i%32, Bytes: 1 << 20}
			if _, err := tc.ring.PlanPair(ctx, req); err != nil {
				t.Errorf("plan %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	tc.waitConverged(t, "r0:4,r1:4", 5*time.Second)

	// All replicas now hold the same 8 links (order is canonical but
	// link-failure application commutes, so the oracle can use any
	// order).
	all := append(append([]scenario.FailLink(nil), links[0]...), links[1]...)
	req := serve.PairRequest{Shape: testShape, Src: 5, Dst: 120, Bytes: 4 << 20}
	wantWire, _ := directPairWire(t, req, all)
	want, _ := json.Marshal(wantWire)
	for i := range tc.servers {
		c, err := serve.NewClient(tc.https[i].URL)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.PlanPair(ctx, req)
		if err != nil || !res.OK() {
			t.Fatalf("r%d: %v status %d", i, err, res.Status)
		}
		if !bytes.Equal(res.Plan, want) {
			t.Errorf("r%d: converged plan differs from oracle over the union fault set", i)
		}
	}
}

// TestClusterStatusEndpoint sanity-checks GET /v1/cluster and the
// standalone daemon's 404 on it.
func TestClusterStatusEndpoint(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	ctx := context.Background()
	if _, err := tc.ring.Client("r0").Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{{Node: 3, Dim: 1, Dir: 1}}}); err != nil {
		t.Fatal(err)
	}
	sts := tc.ring.ClusterStatusAll(ctx)
	if len(sts) != 2 {
		t.Fatalf("cluster status from %d replicas, want 2", len(sts))
	}
	st := sts["r0"]
	if st.Replica != "r0" || st.Events == 0 || st.FaultLinks != 1 || st.Vector == "" {
		t.Fatalf("bad status: %+v", st)
	}
	if len(st.Peers) != 1 {
		t.Fatalf("peers = %v, want 1 entry", st.Peers)
	}

	// Standalone daemons 404 the cluster endpoints.
	srv := serve.New(serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer func() { hs.Close(); srv.Close() }()
	for _, path := range []string{"/v1/cluster"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("standalone %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}
