package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/obs"
	"bgqflow/internal/scenario"
	"bgqflow/internal/torus"
)

// Transfer sessions (DESIGN.md §14): POST /v1/transfer starts a
// server-side MoveResilient run and streams its progress as ndjson. The
// layer is built to survive the failure modes around it:
//
//   - Idempotent session IDs: a client that times out and re-POSTs the
//     same ID attaches to the running session instead of double-starting
//     the transfer. A different body under a known ID is a 409.
//   - Reconnect-and-resume: every session keeps a bounded replay buffer
//     of seq-numbered frames; a dropped client resumes with
//     GET /v1/transfer/{id}/events?after=N and replays what it missed.
//     Acks (POST .../ack) evict acknowledged frames; the terminal report
//     frame is never evicted.
//   - Pushed faults: a POST /v1/fault epoch bump is forwarded into every
//     running session. The session applies the failure on its own
//     goroutine at the next MoveResilient safe point and streams a
//     "fault" frame carrying the resolved link IDs and the exact virtual
//     instant — enough for a client to replay the identical timeline
//     through RunTransfer and check the report byte for byte.
//   - Heartbeats + reaping: sessions with no subscriber and no heartbeat
//     past the idle deadline are canceled (running) or dropped (done).
//   - Draining: Server.Drain refuses new sessions, flushes open batch
//     windows, waits for in-flight sessions under a deadline, and aborts
//     whatever is left, reporting the split.

var (
	errSessionMismatch = errors.New("serve: session id exists with a different request body")
	errDraining        = errors.New("serve: daemon draining, not accepting new sessions")
	errSessionLimit    = errors.New("serve: session limit reached")
	errSessionIdle     = errors.New("serve: session reaped: no client heartbeat within the idle deadline")
	errDrainAborted    = errors.New("serve: daemon draining: session aborted at the drain deadline")
)

type sessionState int

const (
	sessBatching sessionState = iota
	sessRunning
	sessDone
)

var sessionStateNames = [...]string{"batching", "running", "done"}

func (s sessionState) String() string { return sessionStateNames[s] }

// pushEvent is one daemon fault event queued for injection into a
// running session: the wire faults that apply to its torus and the link
// IDs they resolve to.
type pushEvent struct {
	epoch   uint64
	links   []scenario.FailLink
	linkIDs []int
}

// session is one long-lived transfer execution.
type session struct {
	id    string
	mgr   *sessionMgr
	tor   *torus.Torus
	pace  time.Duration
	done  chan struct{}
	epoch uint64 // fault epoch at session creation
	// trace is the session's trace ID: the client's X-Bgq-Trace-Id when
	// stamped, else generated at creation (tracing enabled only). A
	// re-arm inherits it, so a resumed session continues its original
	// trace. Immutable after creation.
	trace string

	mu        sync.Mutex
	req       TransferRequest     // Bytes grows while batching
	faults    []scenario.FailLink // daemon fault-set snapshot at creation
	state     sessionState
	events    [][]byte // replay ring; events[i] has seq firstSeq+i
	firstSeq  uint64
	nextSeq   uint64
	report    []byte // terminal frame, kept out of reach of eviction
	reportSeq uint64
	aborted   bool
	subs      map[chan []byte]struct{}
	lastTouch time.Time
	cancelErr error
	pushes    []pushEvent
	pushMark  bool     // a pushed fault landed; mark the next replan frame
	members   []string // batch member IDs (leader first); len 1 when solo batch
}

// sessionMgr owns the session table, the batching windows, and the
// reaper.
type sessionMgr struct {
	srv *Server

	mu       sync.Mutex
	sessions map[string]*session
	canon    map[string]string // id -> canonical request body
	batches  map[string]*session
	running  int
	draining bool

	reaperStop chan struct{}
	reaperDone chan struct{}
}

func newSessionMgr(srv *Server) *sessionMgr {
	m := &sessionMgr{
		srv:        srv,
		sessions:   make(map[string]*session),
		canon:      make(map[string]string),
		batches:    make(map[string]*session),
		reaperStop: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	go m.reaper()
	return m
}

// batchKey groups combinable requests: same geometry, endpoints, and
// recovery knobs (the combined session must behave like each member
// asked, just bigger).
func batchKey(r TransferRequest) string {
	return fmt.Sprintf("%s|%d|%d|%d|%g|%g|%d", r.Shape, r.Src, r.Dst, r.MaxReplans, r.DetectFactor, r.BackoffUS, r.PaceUS)
}

// startOrAttach resolves a POST /v1/transfer: create, join a batch
// window, attach to a live session, or re-arm an aborted one. The
// returned verdict feeds the per-outcome counters.
func (m *sessionMgr) startOrAttach(req TransferRequest, trace string) (*session, string, error) {
	canon := req.canonical()
	m.mu.Lock()
	defer m.mu.Unlock()

	if s, ok := m.sessions[req.ID]; ok {
		if m.canon[req.ID] != canon {
			return nil, "", errSessionMismatch
		}
		s.mu.Lock()
		rearm := s.state == sessDone && s.aborted
		s.mu.Unlock()
		if !rearm {
			return s, "attached", nil
		}
		// The previous run was aborted (drain or idle reap): re-arm the
		// same ID with a fresh run so the retry completes the transfer.
		// Re-arms run solo — no batch window on the retry path. The new
		// run continues the original trace.
		if m.draining {
			return nil, "", errDraining
		}
		if m.running >= m.srv.cfg.MaxSessions {
			return nil, "", errSessionLimit
		}
		ns := m.newSessionLocked(req, s.trace)
		m.sessions[req.ID] = ns
		m.canon[req.ID] = canon
		m.launchLocked(ns)
		return ns, "rearmed", nil
	}

	if m.draining {
		return nil, "", errDraining
	}

	cfg := m.srv.cfg
	if req.Batch && cfg.BatchWindow > 0 && req.Campaign == nil && req.Bytes <= cfg.BatchMaxBytes {
		key := batchKey(req)
		if leader, ok := m.batches[key]; ok {
			leader.mu.Lock()
			open := leader.state == sessBatching
			if open {
				leader.req.Bytes += req.Bytes
				leader.members = append(leader.members, req.ID)
			}
			leader.mu.Unlock()
			if open {
				m.sessions[req.ID] = leader
				m.canon[req.ID] = canon
				return leader, "joined", nil
			}
			delete(m.batches, key)
		}
		if m.running >= cfg.MaxSessions {
			return nil, "", errSessionLimit
		}
		s := m.newSessionLocked(req, trace)
		s.state = sessBatching
		s.members = []string{req.ID}
		m.sessions[req.ID] = s
		m.canon[req.ID] = canon
		m.batches[key] = s
		time.AfterFunc(cfg.BatchWindow, func() { m.launchBatch(key, s) })
		return s, "started", nil
	}

	if m.running >= cfg.MaxSessions {
		return nil, "", errSessionLimit
	}
	s := m.newSessionLocked(req, trace)
	m.sessions[req.ID] = s
	m.canon[req.ID] = canon
	m.launchLocked(s)
	return s, "started", nil
}

// newSessionLocked builds a session with the current fault-set snapshot.
// Caller holds m.mu.
func (m *sessionMgr) newSessionLocked(req TransferRequest, trace string) *session {
	epoch, faults := m.srv.snapshot()
	shape, _ := torus.ParseShape(req.Shape)
	tor, _ := torus.New(shape) // req was validated; cannot fail
	if trace == "" && m.srv.wall != nil {
		trace = obs.NewTraceID()
	}
	return &session{
		id:        req.ID,
		trace:     trace,
		mgr:       m,
		tor:       tor,
		pace:      time.Duration(req.PaceUS) * time.Microsecond,
		done:      make(chan struct{}),
		epoch:     epoch,
		req:       req,
		faults:    faults,
		state:     sessRunning,
		firstSeq:  1,
		nextSeq:   1,
		subs:      make(map[chan []byte]struct{}),
		lastTouch: time.Now(),
	}
}

// launchLocked starts the session goroutine. Caller holds m.mu.
func (m *sessionMgr) launchLocked(s *session) {
	m.running++
	m.srv.reg.Gauge("serve/sessions_active").Set(float64(m.running))
	go s.run()
}

// launchBatch closes a batch window and runs the combined session.
func (m *sessionMgr) launchBatch(key string, s *session) {
	m.mu.Lock()
	if m.batches[key] == s {
		delete(m.batches, key)
	}
	s.mu.Lock()
	launch := s.state == sessBatching
	if launch {
		s.state = sessRunning
		m.srv.reg.Counter("serve/sessions_combined").Add(int64(len(s.members)))
	}
	s.mu.Unlock()
	if launch {
		m.launchLocked(s)
	}
	m.mu.Unlock()
}

// flushBatchesLocked fires every open batch window immediately (drain
// must not wait out the timers). Caller holds m.mu.
func (m *sessionMgr) flushBatchesLocked() {
	for key, s := range m.batches {
		delete(m.batches, key)
		s.mu.Lock()
		launch := s.state == sessBatching
		if launch {
			s.state = sessRunning
			m.srv.reg.Counter("serve/sessions_combined").Add(int64(len(s.members)))
		}
		s.mu.Unlock()
		if launch {
			m.launchLocked(s)
		}
	}
}

// sessionDone is the run-goroutine's exit bookkeeping.
func (m *sessionMgr) sessionDone() {
	m.mu.Lock()
	m.running--
	m.srv.reg.Gauge("serve/sessions_active").Set(float64(m.running))
	m.mu.Unlock()
}

// pushFaults forwards a fault event into every running session.
func (m *sessionMgr) pushFaults(links []scenario.FailLink, epoch uint64) {
	if len(links) == 0 {
		return
	}
	m.mu.Lock()
	targets := make([]*session, 0, len(m.sessions))
	seen := make(map[*session]struct{}, len(m.sessions))
	for _, s := range m.sessions {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		targets = append(targets, s)
	}
	m.mu.Unlock()
	for _, s := range targets {
		s.push(links, epoch)
	}
}

// push queues the applicable subset of a fault event for injection at
// the session's next safe point.
func (s *session) push(links []scenario.FailLink, epoch uint64) {
	appl := applicableFaults(s.tor, links)
	if len(appl) == 0 {
		return
	}
	ids := make([]int, len(appl))
	for i, fl := range appl {
		dir := torus.Plus
		if fl.Dir == -1 {
			dir = torus.Minus
		}
		ids[i] = s.tor.LinkID(torus.NodeID(fl.Node), fl.Dim, dir)
	}
	s.mu.Lock()
	if s.state == sessRunning {
		s.pushes = append(s.pushes, pushEvent{epoch: epoch, links: appl, linkIDs: ids})
	}
	s.mu.Unlock()
}

// cancel asks the run goroutine to stop at its next safe point.
func (s *session) cancel(err error) {
	s.mu.Lock()
	if s.cancelErr == nil && s.state != sessDone {
		s.cancelErr = err
	}
	s.mu.Unlock()
}

// interject is the session's MoveResilient safe-point hook: honor a
// cancel, apply queued pushed faults at the current virtual instant
// (streaming a "fault" frame with the exact time for replay), then pace
// the virtual clock against the wall clock.
func (s *session) interject(e *netsim.Engine) error {
	s.mu.Lock()
	cancelErr := s.cancelErr
	pushes := s.pushes
	s.pushes = nil
	s.mu.Unlock()
	if cancelErr != nil {
		return cancelErr
	}
	for _, p := range pushes {
		var applied []int
		var fls []scenario.FailLink
		for i, l := range p.linkIDs {
			if !e.Network().LinkFailed(l) {
				e.FailLinkAt(l, e.Now())
				applied = append(applied, l)
				fls = append(fls, p.links[i])
			}
		}
		if len(applied) > 0 {
			s.mu.Lock()
			s.pushMark = true
			s.mu.Unlock()
			s.emit(SessionFrame{Type: "fault", Pushed: true, Epoch: p.epoch,
				Links: fls, LinkIDs: applied, VTime: float64(e.Now())})
			s.mgr.srv.reg.Counter("serve/faults_pushed").Inc()
			s.mgr.srv.wall.InstantV(s.trace, "bgqd/sessions", "fault pushed", float64(e.Now()))
		}
	}
	if s.pace > 0 {
		time.Sleep(s.pace)
	}
	return nil
}

// run executes the transfer and publishes the terminal report frame.
// With tracing enabled the run records a wall-clock session span, wall
// instants for replans/degrades/pushed faults, and a private sim-clock
// recorder merged into the daemon trace plane at the end — all under the
// session's one trace ID.
func (s *session) run() {
	defer s.mgr.sessionDone()
	reg := s.mgr.srv.reg
	wall := s.mgr.srv.wall
	reg.Counter("serve/sessions_executed").Inc()
	t0 := time.Now()

	s.mu.Lock()
	req := s.req
	faults := s.faults
	s.mu.Unlock()

	onEvent := func(ev core.TransferEvent) {
		f := progressFrame(ev)
		if ev.Kind == core.EventReplan {
			s.mu.Lock()
			if s.pushMark {
				s.pushMark = false
				f.Pushed = true
			}
			s.mu.Unlock()
			if f.Pushed {
				reg.Counter("serve/replans_pushed").Inc()
			}
		}
		if ev.Kind == core.EventReplan || ev.Kind == core.EventDegrade {
			wall.InstantV(s.trace, "bgqd/sessions", f.Type, float64(ev.At))
		}
		s.emit(f)
	}
	hooks := TransferHooks{OnEvent: onEvent, Interject: s.interject}
	var span obs.SpanID
	if wall != nil {
		hooks.Recorder = obs.NewRecorder()
		hooks.Track = "engine/" + s.id
		span = wall.SpanBegin(s.trace, "bgqd/sessions", "session "+s.id)
	}
	rep, err := RunTransfer(req, faults, hooks)
	s.finish(rep, err)
	if wall != nil {
		s.mu.Lock()
		aborted := s.aborted
		s.mu.Unlock()
		if aborted {
			wall.SpanAbort(span)
		} else {
			wall.SpanEnd(span)
		}
		wall.MergeSim(s.trace, hooks.Recorder)
	}
	reg.Histogram("serve/session_wall_ms").Observe(float64(time.Since(t0)) / 1e6)
}

// emit appends a frame to the replay ring and fans it out. A subscriber
// whose channel is full is dropped (it will resume from the ring).
func (s *session) emit(f SessionFrame) {
	s.mu.Lock()
	f.Seq = s.nextSeq
	s.nextSeq++
	b, _ := json.Marshal(f)
	s.events = append(s.events, b)
	if limit := s.mgr.srv.cfg.ReplayEvents; len(s.events) > limit {
		drop := len(s.events) - limit
		s.events = append([][]byte(nil), s.events[drop:]...)
		s.firstSeq += uint64(drop)
	}
	if len(s.subs) > 0 {
		s.lastTouch = time.Now()
	}
	for ch := range s.subs {
		select {
		case ch <- b:
		default:
			delete(s.subs, ch)
			close(ch)
		}
	}
	s.mu.Unlock()
	s.mgr.srv.reg.Counter("serve/session_events").Inc()
}

// finish publishes the terminal report frame and closes every
// subscriber.
func (s *session) finish(rep core.TransferReport, runErr error) {
	repJSON, _ := json.Marshal(rep)
	reg := s.mgr.srv.reg

	s.mu.Lock()
	f := SessionFrame{Type: "report", ID: s.id, Report: repJSON, Members: s.members}
	if runErr != nil {
		f.Error = runErr.Error()
	}
	f.Aborted = s.cancelErr != nil
	f.Seq = s.nextSeq
	s.nextSeq++
	b, _ := json.Marshal(f)
	s.events = append(s.events, b)
	s.report = b
	s.reportSeq = f.Seq
	s.state = sessDone
	s.aborted = f.Aborted
	for ch := range s.subs {
		select {
		case ch <- b:
		default:
		}
		delete(s.subs, ch)
		close(ch)
	}
	s.mu.Unlock()

	close(s.done)
	if f.Aborted {
		reg.Counter("serve/sessions_aborted").Inc()
	} else if runErr != nil {
		reg.Counter("serve/sessions_failed").Inc()
	} else {
		reg.Counter("serve/sessions_completed").Inc()
	}
	reg.Counter("serve/session_events").Inc()
}

// subscribe registers a stream: the hello preamble, the buffered frames
// after `after`, and (unless the session is done) a live channel.
func (s *session) subscribe(after uint64) (SessionFrame, [][]byte, chan []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := after + 1
	if start < s.firstSeq {
		start = s.firstSeq
	}
	var replay [][]byte
	if start < s.nextSeq {
		replay = append(replay, s.events[start-s.firstSeq:]...)
	}
	hello := SessionFrame{
		Type:       "hello",
		ID:         s.id,
		State:      s.state.String(),
		ReplayFrom: start,
		Epoch:      s.epoch,
		Links:      s.faults,
		Members:    s.members,
		Trace:      s.trace,
	}
	var ch chan []byte
	if s.state != sessDone {
		ch = make(chan []byte, 128)
		s.subs[ch] = struct{}{}
	}
	s.lastTouch = time.Now()
	return hello, replay, ch
}

func (s *session) unsubscribe(ch chan []byte) {
	s.mu.Lock()
	if _, ok := s.subs[ch]; ok {
		delete(s.subs, ch)
		close(ch)
	}
	s.lastTouch = time.Now()
	s.mu.Unlock()
}

// ack evicts acknowledged frames from the replay ring. The terminal
// report frame is never evicted: a late resume must always be able to
// fetch the outcome.
func (s *session) ack(seq uint64) {
	s.mu.Lock()
	upTo := seq
	if s.reportSeq > 0 && upTo >= s.reportSeq {
		upTo = s.reportSeq - 1
	}
	if upTo >= s.firstSeq {
		drop := int(upTo - s.firstSeq + 1)
		if drop > len(s.events) {
			drop = len(s.events)
		}
		s.events = append([][]byte(nil), s.events[drop:]...)
		s.firstSeq += uint64(drop)
	}
	s.lastTouch = time.Now()
	s.mu.Unlock()
}

func (s *session) touch() {
	s.mu.Lock()
	s.lastTouch = time.Now()
	s.mu.Unlock()
}

// reaper enforces the heartbeat deadline: a session nobody is watching
// (no subscriber, no heartbeat, no ack) past the idle window is canceled
// if running or dropped if done.
func (m *sessionMgr) reaper() {
	defer close(m.reaperDone)
	interval := m.srv.cfg.SessionIdle / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-m.reaperStop:
			return
		case <-tick.C:
		}
		idle := m.srv.cfg.SessionIdle
		m.mu.Lock()
		type victim struct {
			s   *session
			ids []string
		}
		byPtr := make(map[*session][]string)
		for id, s := range m.sessions {
			byPtr[s] = append(byPtr[s], id)
		}
		var cancels []*session
		var reaps []victim
		for s, ids := range byPtr {
			s.mu.Lock()
			stale := len(s.subs) == 0 && time.Since(s.lastTouch) > idle
			state := s.state
			s.mu.Unlock()
			if !stale {
				continue
			}
			switch state {
			case sessRunning:
				cancels = append(cancels, s)
			case sessDone:
				reaps = append(reaps, victim{s, ids})
			}
		}
		for _, v := range reaps {
			for _, id := range v.ids {
				delete(m.sessions, id)
				delete(m.canon, id)
			}
			m.srv.reg.Counter("serve/sessions_reaped").Inc()
		}
		m.mu.Unlock()
		for _, s := range cancels {
			s.cancel(errSessionIdle)
			m.srv.reg.Counter("serve/sessions_idle_canceled").Inc()
		}
	}
}

// shutdown stops the reaper and force-cancels whatever is still running
// (Server.Close path; graceful exits call Drain first).
func (m *sessionMgr) shutdown() {
	close(m.reaperStop)
	<-m.reaperDone
	m.mu.Lock()
	m.draining = true
	m.flushBatchesLocked()
	var waiting []*session
	seen := make(map[*session]struct{})
	for _, s := range m.sessions {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		waiting = append(waiting, s)
	}
	m.mu.Unlock()
	for _, s := range waiting {
		s.cancel(errDrainAborted)
	}
	deadline := time.After(5 * time.Second)
	for _, s := range waiting {
		s.mu.Lock()
		running := s.state != sessDone
		s.mu.Unlock()
		if !running {
			continue
		}
		select {
		case <-s.done:
		case <-deadline:
			return
		}
	}
}
