package serve_test

// Session-layer tests: byte-identity of streamed reports against a
// direct MoveResilient run (including with pushed mid-flight faults),
// idempotent attach, reconnect-and-resume from the replay buffer, ack
// eviction, idle reap + re-arm, drain (both paths), Träff-style
// message combining, and the shed-then-succeed retry policy.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"bgqflow/internal/core"
	"bgqflow/internal/scenario"
	"bgqflow/internal/serve"
)

// sessionReq is the canonical test transfer: a cross-machine pair on
// the 128-node midplane slice, big enough to trigger proxying.
func sessionReq(id string) serve.TransferRequest {
	return serve.TransferRequest{ID: id, Shape: testShape, Src: 0, Dst: 97, Bytes: 64 << 20}
}

// oracleReport replays a session's timeline with a direct RunTransfer —
// the faults snapshot from its hello frame plus the pushed-fault
// timeline — and returns the report exactly as the daemon serializes it.
func oracleReport(t *testing.T, req serve.TransferRequest, out serve.TransferOutcome) []byte {
	t.Helper()
	req.PaceUS = 0 // pacing is wall-clock only; virtual outcomes ignore it
	rep, err := serve.RunTransfer(req, out.Faults, serve.TransferHooks{
		Interject: serve.PushedInterject(out.Pushed),
	})
	if err != nil {
		t.Fatalf("oracle RunTransfer: %v", err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustTransfer(t *testing.T, client *serve.Client, req serve.TransferRequest, opts serve.TransferOpts) serve.TransferOutcome {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out, err := client.Transfer(ctx, req, opts)
	if err != nil {
		t.Fatalf("transfer %s: %v", req.ID, err)
	}
	if out.Err != "" {
		t.Fatalf("transfer %s: server-side error: %s", req.ID, out.Err)
	}
	return out
}

// TestSessionByteIdenticalToDirect pins the tentpole claim for the
// session layer: the report streamed by a concurrent daemon is
// byte-identical to a direct MoveResilient run — with and without a
// client-supplied fault campaign.
func TestSessionByteIdenticalToDirect(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{})
	for _, tc := range []struct {
		name     string
		campaign *scenario.FaultCampaignConfig
	}{
		{"clean", nil},
		{"campaign", &scenario.FaultCampaignConfig{Kind: "uniform", Count: 3, Seed: 7, WindowMS: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := sessionReq("s-direct-" + tc.name)
			req.Campaign = tc.campaign
			out := mustTransfer(t, client, req, serve.TransferOpts{})
			if out.Frames == 0 {
				t.Fatal("no buffered frames streamed")
			}
			want := oracleReport(t, req, out)
			if !bytes.Equal(out.Report, want) {
				t.Errorf("streamed report differs from direct run\nstreamed: %s\ndirect:   %s", out.Report, want)
			}
			var rep core.TransferReport
			if err := json.Unmarshal(out.Report, &rep); err != nil {
				t.Fatal(err)
			}
			if !rep.Complete || rep.Delivered != req.Bytes {
				t.Errorf("incomplete transfer: %+v", rep)
			}
		})
	}
}

// TestSessionIdempotentAttach: concurrent POSTs under one session ID run
// the transfer exactly once; every caller gets the same report. A
// different body under the same ID is refused.
func TestSessionIdempotentAttach(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{})
	req := sessionReq("s-idem")
	req.PaceUS = 2000 // slow the run so attaches land mid-flight

	const callers = 4
	outs := make([]serve.TransferOutcome, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			out, err := client.Transfer(ctx, req, serve.TransferOpts{})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if !bytes.Equal(outs[i].Report, outs[0].Report) {
			t.Errorf("caller %d report differs from caller 0", i)
		}
	}
	snap := srv.Registry().Snapshot()
	if got := snap.Counters["serve/sessions_executed"]; got != 1 {
		t.Errorf("sessions_executed = %d, want 1 (idempotent retry double-started the transfer)", got)
	}
	if snap.Counters["serve/sessions_attached"] == 0 {
		t.Error("sessions_attached = 0: no caller attached to the running session")
	}

	// Same ID, different body: 409, not a silent second transfer.
	mismatched := req
	mismatched.Bytes *= 2
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := client.Transfer(ctx, mismatched, serve.TransferOpts{})
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("mismatched body: got %v, want 409 rejection", err)
	}
}

// TestSessionResumeAfterDrop: a client that keeps dropping its stream
// resumes from the replay buffer and still assembles the byte-exact
// report.
func TestSessionResumeAfterDrop(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{})
	req := sessionReq("s-resume")
	req.Campaign = &scenario.FaultCampaignConfig{Kind: "uniform", Count: 2, Seed: 11, WindowMS: 2}
	req.PaceUS = 1000

	out := mustTransfer(t, client, req, serve.TransferOpts{
		DropEvery: 3,
		Backoff:   serve.RetryPolicy{MaxAttempts: 0, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond},
	})
	if out.Resumes == 0 {
		t.Fatal("DropEvery=3 produced zero resumes")
	}
	if want := oracleReport(t, req, out); !bytes.Equal(out.Report, want) {
		t.Errorf("report after %d resumes differs from direct run\nstreamed: %s\ndirect:   %s",
			out.Resumes, out.Report, want)
	}
	if got := srv.Registry().Snapshot().Counters["serve/sessions_resumed"]; got == 0 {
		t.Error("sessions_resumed = 0 despite client resumes")
	}
}

// TestSessionAckEviction: acked frames leave the replay ring (firstSeq
// advances) but the terminal report survives eviction — a late attach
// still fetches the outcome.
func TestSessionAckEviction(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{})
	req := sessionReq("s-ack")
	req.PaceUS = 500

	out := mustTransfer(t, client, req, serve.TransferOpts{AckEvery: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := client.TransferStatus(ctx, req.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.FirstSeq <= 1 {
		t.Errorf("firstSeq = %d after acks, want > 1 (nothing evicted)", st.FirstSeq)
	}
	if st.State != "done" {
		t.Errorf("state = %q, want done", st.State)
	}
	// A fresh attach replays from the ring; the report frame must still
	// be there even though everything before it was acked away.
	late := mustTransfer(t, client, req, serve.TransferOpts{})
	if !bytes.Equal(late.Report, out.Report) {
		t.Error("late attach report differs from the original stream")
	}
}

// TestSessionReap: a finished session nobody watches or heartbeats is
// reaped after the idle deadline; its ID becomes unknown.
func TestSessionReap(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{SessionIdle: 100 * time.Millisecond})
	req := sessionReq("s-reap")
	mustTransfer(t, client, req, serve.TransferOpts{})

	deadline := time.Now().Add(5 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err := client.TransferStatus(ctx, req.ID)
		cancel()
		if err != nil && strings.Contains(err.Error(), "404") {
			return // reaped
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not reaped after idle deadline (last status err: %v)", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSessionRearmAfterIdleAbort: a running session whose client
// vanishes is canceled by the reaper; the client's retry under the same
// ID re-arms a fresh run that completes, byte-exact.
func TestSessionRearmAfterIdleAbort(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{SessionIdle: 150 * time.Millisecond})
	req := sessionReq("s-rearm")
	req.PaceUS = 5000 // long enough for the reaper to catch it unwatched

	// First attempt: drop after a couple of frames and walk away past the
	// idle deadline — the reaper cancels the run at a safe point.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	frames := 0
	_, _ = client.Transfer(ctx, req, serve.TransferOpts{
		DropEvery: 2,
		OnFrame: func(serve.SessionFrame) {
			frames++
			if frames >= 2 {
				cancel() // abandon the session entirely
			}
		},
		Backoff: serve.RetryPolicy{MaxAttempts: 1},
	})
	cancel()
	waitFor(t, 5*time.Second, func() bool {
		return srv.Registry().Snapshot().Counters["serve/sessions_idle_canceled"] > 0
	}, "reaper never idle-canceled the abandoned session")
	// The cancel is latched; a heartbeat now only refreshes the idle
	// deadline so the aborted session is still there for the retry.
	hbCtx, hbCancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := client.Heartbeat(hbCtx, req.ID); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	hbCancel()

	// Retry under the same ID — the body must be byte-identical or the
	// daemon 409s — and the re-armed run completes.
	out := mustTransfer(t, client, req, serve.TransferOpts{
		Backoff: serve.RetryPolicy{MaxAttempts: 0, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, RetryConn: true},
	})
	if want := oracleReport(t, req, out); !bytes.Equal(out.Report, want) {
		t.Error("re-armed report differs from direct run")
	}
	snap := srv.Registry().Snapshot()
	if snap.Counters["serve/sessions_rearmed"] == 0 {
		t.Error("sessions_rearmed = 0: retry did not re-arm the aborted session")
	}
	if snap.Counters["serve/sessions_executed"] < 2 {
		t.Errorf("sessions_executed = %d, want >= 2 (abort + re-arm)", snap.Counters["serve/sessions_executed"])
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionDrainGraceful: Drain waits out in-flight sessions (zero
// aborts under a generous deadline) while refusing new starts with 503.
func TestSessionDrainGraceful(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{})
	req := sessionReq("s-drain-ok")
	req.PaceUS = 2000

	started := make(chan struct{})
	var out serve.TransferOutcome
	var terr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		once := sync.Once{}
		out, terr = client.Transfer(ctx, req, serve.TransferOpts{
			OnFrame: func(serve.SessionFrame) { once.Do(func() { close(started) }) },
		})
	}()
	<-started

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res := srv.Drain(drainCtx)
	if res.Aborted != 0 || res.Drained != 1 {
		t.Errorf("drain = %+v, want 1 drained / 0 aborted", res)
	}
	<-done
	if terr != nil || out.Err != "" {
		t.Fatalf("in-flight session failed under graceful drain: %v / %s", terr, out.Err)
	}
	if want := oracleReport(t, req, out); !bytes.Equal(out.Report, want) {
		t.Error("drained session report differs from direct run")
	}

	// Draining daemon refuses new sessions with 503 + Retry-After.
	ctx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	_, err := client.Transfer(ctx, sessionReq("s-after-drain"), serve.TransferOpts{
		Backoff: serve.NoRetryPolicy(),
	})
	if err == nil || !strings.Contains(err.Error(), "gave up") {
		t.Errorf("new session during drain: got %v, want refusal after retry budget", err)
	}
}

// TestSessionDrainAborted: an expired drain deadline aborts the session
// at its next safe point; the client sees the aborted report and its
// rearm attempt is refused while the daemon drains.
func TestSessionDrainAborted(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{})
	req := sessionReq("s-drain-abort")
	req.PaceUS = 5000

	started := make(chan struct{})
	done := make(chan struct{})
	var terr error
	var out serve.TransferOutcome
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		once := sync.Once{}
		out, terr = client.Transfer(ctx, req, serve.TransferOpts{
			OnFrame: func(serve.SessionFrame) { once.Do(func() { close(started) }) },
			Backoff: serve.RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
		})
	}()
	<-started

	expired, cancel := context.WithCancel(context.Background())
	cancel() // deadline already passed: abort immediately
	res := srv.Drain(expired)
	if res.Aborted != 1 {
		t.Fatalf("drain = %+v, want 1 aborted", res)
	}
	<-done
	// The aborted report triggered a re-POST, which the draining daemon
	// refused until the retry budget ran out.
	if terr == nil || !strings.Contains(terr.Error(), "gave up") {
		t.Errorf("client outcome after aborted drain: %v / %+v, want exhausted retries", terr, out)
	}
	if out.Restarts == 0 {
		t.Error("client never saw the aborted report (Restarts = 0)")
	}
	if got := srv.Registry().Snapshot().Counters["serve/sessions_aborted"]; got != 1 {
		t.Errorf("sessions_aborted = %d, want 1", got)
	}
}

// TestSessionBatching: N small same-pair transfers inside the combining
// window run as ONE session whose byte count is the sum — Träff-style
// message combining — and every member receives the identical combined
// report, which matches a direct run at the combined size.
func TestSessionBatching(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{BatchWindow: 150 * time.Millisecond})
	const members = 4
	const perBytes = 32 << 10

	outs := make([]serve.TransferOutcome, members)
	var wg sync.WaitGroup
	wg.Add(members)
	for i := 0; i < members; i++ {
		go func(i int) {
			defer wg.Done()
			req := serve.TransferRequest{
				ID: "s-batch-" + string(rune('a'+i)), Shape: testShape,
				Src: 0, Dst: 97, Bytes: perBytes, Batch: true,
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			out, err := client.Transfer(ctx, req, serve.TransferOpts{})
			if err != nil {
				t.Errorf("member %d: %v", i, err)
				return
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()

	for i := 1; i < members; i++ {
		if !bytes.Equal(outs[i].Report, outs[0].Report) {
			t.Errorf("member %d report differs from member 0", i)
		}
	}
	if len(outs[0].Members) != members {
		t.Errorf("combined members = %v, want %d ids", outs[0].Members, members)
	}
	var rep core.TransferReport
	if err := json.Unmarshal(outs[0].Report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Bytes != members*perBytes || !rep.Complete {
		t.Errorf("combined report moved %d bytes (complete=%v), want %d", rep.Bytes, rep.Complete, members*perBytes)
	}
	// The combined session matches a direct run at the combined size.
	combined := serve.TransferRequest{ID: "oracle", Shape: testShape, Src: 0, Dst: 97, Bytes: members * perBytes}
	if want := oracleReport(t, combined, outs[0]); !bytes.Equal(outs[0].Report, want) {
		t.Errorf("combined report differs from direct run at combined size\nstreamed: %s\ndirect:   %s", outs[0].Report, want)
	}
	snap := srv.Registry().Snapshot()
	if got := snap.Counters["serve/sessions_executed"]; got != 1 {
		t.Errorf("sessions_executed = %d, want 1 combined run", got)
	}
	if got := snap.Counters["serve/sessions_combined"]; got != members {
		t.Errorf("sessions_combined = %d, want %d", got, members)
	}
}

// TestSessionPushedFaultReplay: a POST /v1/fault landing mid-session is
// injected at a safe point, streamed with its exact virtual instant, and
// the client replays the identical timeline through PushedInterject.
func TestSessionPushedFaultReplay(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Find a link the unfaulted transfer actually rides, so the pushed
	// fault forces a replan.
	pre, err := client.PlanPair(ctx, serve.PairRequest{Shape: testShape, Src: 0, Dst: 97, Bytes: 64 << 20})
	if err != nil || !pre.OK() {
		t.Fatalf("warmup plan: %v status %d", err, pre.Status)
	}
	var prePlan serve.PairPlan
	if err := json.Unmarshal(pre.Plan, &prePlan); err != nil {
		t.Fatal(err)
	}
	fl, ok := linkToFail(t, testShape, prePlan.Flows[0].Links[0])
	if !ok {
		t.Fatal("cannot invert plan link")
	}

	req := sessionReq("s-pushed")
	req.PaceUS = 3000 // stretch the run so the fault lands mid-flight

	faulted := make(chan struct{})
	var once sync.Once
	out := mustTransfer(t, client, req, serve.TransferOpts{
		OnFrame: func(f serve.SessionFrame) {
			if f.Type == "wave" {
				once.Do(func() {
					go func() {
						defer close(faulted)
						if _, ferr := client.Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}}); ferr != nil {
							t.Errorf("fault: %v", ferr)
						}
					}()
				})
			}
		},
	})
	<-faulted
	if len(out.Pushed) == 0 {
		t.Fatal("no pushed-fault frame: the fault event never reached the running session")
	}
	if want := oracleReport(t, req, out); !bytes.Equal(out.Report, want) {
		t.Errorf("pushed-fault replay diverged\nstreamed: %s\nreplayed: %s", out.Report, want)
	}
	var rep core.TransferReport
	if err := json.Unmarshal(out.Report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Replans == 0 {
		t.Error("pushed fault on the active route forced no replan")
	}
	snap := srv.Registry().Snapshot()
	if snap.Counters["serve/faults_pushed"] == 0 {
		t.Error("faults_pushed = 0")
	}
	if snap.Counters["serve/replans_pushed"] == 0 {
		t.Error("replans_pushed = 0")
	}
}

// TestSessionLimitShedThenSucceed: past MaxSessions new starts shed with
// 429 + Retry-After; a client with the retry policy waits out the limit
// and completes.
func TestSessionLimitShedThenSucceed(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{MaxSessions: 1})
	first := sessionReq("s-limit-1")
	first.PaceUS = 2000

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		once := sync.Once{}
		if _, err := client.Transfer(ctx, first, serve.TransferOpts{
			OnFrame: func(serve.SessionFrame) { once.Do(func() { close(started) }) },
		}); err != nil {
			t.Errorf("first: %v", err)
		}
	}()
	<-started

	// Immediate second start sheds (no retries), proving the 429 path.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_, err := client.Transfer(ctx, sessionReq("s-limit-noretry"), serve.TransferOpts{Backoff: serve.NoRetryPolicy()})
	cancel()
	if err == nil || !strings.Contains(err.Error(), "gave up") {
		t.Errorf("second session without retries: got %v, want shed", err)
	}

	// With backoff the shed start eventually gets its slot.
	second := mustTransfer(t, client, sessionReq("s-limit-2"), serve.TransferOpts{
		Backoff: serve.RetryPolicy{MaxAttempts: 0, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Jitter: 0.25},
	})
	if want := oracleReport(t, sessionReq("s-limit-2"), second); !bytes.Equal(second.Report, want) {
		t.Error("shed-then-succeed report differs from direct run")
	}
	<-done
	if got := srv.Registry().Snapshot().Counters["serve/sessions_shed"]; got == 0 {
		t.Error("sessions_shed = 0: the limit never shed anything")
	}
}

// The shed-then-succeed retry test lives in client_retry_test.go
// (package serve): it pins the single worker with a blocking
// computation, which needs internal access.
