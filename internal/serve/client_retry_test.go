package serve

// Shed-then-succeed (satellite): a deliberately tiny 1-worker daemon is
// pinned with a blocking computation and its single queue slot filled —
// exactly the setup TestServePlanShedsUnderLoad proves sheds with 429 +
// Retry-After. Here a real client rides through it: without retries it
// surfaces the shed; with the jittered, Retry-After-honoring backoff it
// keeps knocking until the worker frees up and the plan lands.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bgqflow/internal/scenario"
)

func TestClientRetryAfterShed(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, RetryAfter: time.Second})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	client, err := NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Pin the worker and fill the queue slot with blocking computations.
	// The release closes are Once-wrapped and registered as cleanups so a
	// mid-test Fatal cannot leave the worker pinned and deadlock Close.
	started := make(chan struct{})
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseOnce)
	var pinned sync.WaitGroup
	pinned.Add(2)
	go func() {
		defer pinned.Done()
		rec := httptest.NewRecorder()
		s.servePlan(rec, httptest.NewRequest("POST", "/v1/plan/pair", nil), "pair", "key-pin", func([]scenario.FailLink) (any, error) {
			close(started)
			<-release
			return PairPlan{Mode: "direct"}, nil
		})
	}()
	<-started
	go func() {
		defer pinned.Done()
		rec := httptest.NewRecorder()
		s.servePlan(rec, httptest.NewRequest("POST", "/v1/plan/pair", nil), "pair", "key-fill", func([]scenario.FailLink) (any, error) {
			return PairPlan{Mode: "direct"}, nil
		})
	}()
	for s.disp.queued() != 1 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := PairRequest{Shape: "2x2x4x4x2", Src: 0, Dst: 97, Bytes: 4 << 20}

	// Without retries the shed surfaces, carrying the server's backoff
	// hint.
	client.SetRetryPolicy(NoRetryPolicy())
	res, err := client.PlanPair(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shed() {
		t.Fatalf("status %d against a pinned 1-worker daemon, want 429", res.Status)
	}
	if res.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s from the Retry-After header", res.RetryAfter)
	}
	if res.Retries != 0 {
		t.Fatalf("Retries = %d under NoRetryPolicy, want 0", res.Retries)
	}

	// With backoff: keep shedding while the worker is pinned, then free
	// it after the client has been turned away at least once — the same
	// request must ride the retry loop to a 200.
	client.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 0, // context-bounded
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Jitter:      0.25,
	})
	shedBefore := s.reg.Counter("serve/shed").Value()
	go func() {
		for s.reg.Counter("serve/shed").Value() == shedBefore {
			time.Sleep(time.Millisecond)
		}
		releaseOnce()
	}()
	res, err = client.PlanPair(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("final status %d after %d retries, want 200", res.Status, res.Retries)
	}
	if res.Retries == 0 {
		t.Fatal("Retries = 0: the client never backed off, so the shed path was not exercised")
	}
	pinned.Wait()
	if shed := s.reg.Counter("serve/shed").Value(); shed <= shedBefore {
		t.Fatalf("serve/shed = %d, want > %d", shed, shedBefore)
	}

	// MaxAttempts bounds the loop: with the worker pinned again a capped
	// policy gives up and returns the last shed response as-is. A fresh
	// pair — the successful plan above is cached, and a cache hit would
	// bypass admission entirely.
	req2 := PairRequest{Shape: "2x2x4x4x2", Src: 3, Dst: 64, Bytes: 8 << 20}
	release2 := make(chan struct{})
	release2Once := sync.OnceFunc(func() { close(release2) })
	t.Cleanup(release2Once)
	started2 := make(chan struct{})
	var repin sync.WaitGroup
	repin.Add(1)
	go func() {
		defer repin.Done()
		rec := httptest.NewRecorder()
		s.servePlan(rec, httptest.NewRequest("POST", "/v1/plan/pair", nil), "pair", "key-pin-2", func([]scenario.FailLink) (any, error) {
			close(started2)
			<-release2
			return PairPlan{Mode: "direct"}, nil
		})
	}()
	<-started2
	repin.Add(1)
	go func() {
		defer repin.Done()
		rec := httptest.NewRecorder()
		s.servePlan(rec, httptest.NewRequest("POST", "/v1/plan/pair", nil), "pair", "key-fill-2", func([]scenario.FailLink) (any, error) {
			return PairPlan{Mode: "direct"}, nil
		})
	}()
	for s.disp.queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	client.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	res, err = client.PlanPair(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusTooManyRequests {
		t.Fatalf("capped policy: status %d, want 429 surfaced after giving up", res.Status)
	}
	if res.Retries != 2 {
		t.Fatalf("capped policy: Retries = %d, want 2 (3 attempts)", res.Retries)
	}
	release2Once()
	repin.Wait()
}
