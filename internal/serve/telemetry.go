package serve

import (
	"net/http"
	"strconv"
	"time"

	"bgqflow/internal/obs"
)

// Telemetry plane (DESIGN.md §15): end-to-end request tracing plus
// windowed service metrics and SLO verdicts.
//
//   - Trace propagation: clients stamp X-Bgq-Trace-Id / X-Bgq-Span-Id on
//     every request; the daemon threads the trace through the dispatcher
//     queue, cache lookup, and session lifecycle, and echoes it back so
//     either side can start the correlation. A session stores its trace
//     at creation and every resume continues it.
//   - Wall/sim alignment: the daemon's obs.WallRecorder collects
//     wall-clock spans (pid 1) and each session merges its private
//     sim-clock engine recorder (pid 2) under the same trace ID.
//     GET /v1/trace snapshots the rings as one Perfetto file.
//   - Windowed metrics: serve/window/* rolling counters and histograms
//     back GET /metrics?format=prom and the SLO tracker.
//   - SLOs: named objectives evaluated on a timer; GET /v1/slo returns
//     verdicts with cumulative burn counters for soak gating.

// Trace and phase-timing headers. Requests carry the first two; plan
// responses carry all four (queue and compute are 0 unless this request
// computed the plan).
const (
	HeaderTraceID   = "X-Bgq-Trace-Id"
	HeaderSpanID    = "X-Bgq-Span-Id"
	HeaderQueueMS   = "X-Bgq-Queue-Ms"
	HeaderComputeMS = "X-Bgq-Compute-Ms"
)

// Cluster headers (DESIGN.md §17). Responses carry the replica ID that
// served the request and (on clustered daemons) the fault-epoch vector
// the response was computed under; requests may carry a minimum vector
// the serving replica must have applied — a replica that is behind
// rejects with 503 so the client's backoff rides out gossip
// propagation instead of reading a stale plan.
const (
	HeaderReplica   = "X-Bgq-Replica"
	HeaderVector    = "X-Bgq-Vector"
	HeaderMinVector = "X-Bgq-Min-Vector"
)

// traceID resolves a request's trace: the client's header if stamped,
// else a fresh ID — but only when tracing is enabled (the disabled path
// must not allocate).
func (s *Server) traceID(r *http.Request) string {
	if t := r.Header.Get(HeaderTraceID); t != "" {
		return t
	}
	if s.wall == nil {
		return ""
	}
	return obs.NewTraceID()
}

// setMSHeader formats a phase duration as a millisecond header value.
func setMSHeader(h http.Header, key string, ms float64) {
	h.Set(key, strconv.FormatFloat(ms, 'f', 3, 64))
}

// handleTrace serves the recent span rings as a Chrome/Perfetto trace
// file (GET /v1/trace).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.wall == nil {
		writeJSON(w, http.StatusNotFound,
			planEnvelope{Error: "serve: tracing disabled (start bgqd with -trace-events > 0)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	s.wall.WriteChromeTrace(w)
}

// handleSLO evaluates the configured objectives now (GET /v1/slo).
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.SLOSnapshot())
}

// SLOSnapshot evaluates the configured objectives; Enabled is false when
// the daemon runs without SLO specs.
func (s *Server) SLOSnapshot() obs.SLOSnapshot {
	if s.slo == nil {
		return obs.SLOSnapshot{}
	}
	return obs.SLOSnapshot{
		Enabled:   true,
		WindowSec: s.cfg.StatsWindow.Seconds(),
		Verdicts:  s.slo.Evaluate(),
	}
}

// WallRecorder exposes the daemon's trace plane (nil when disabled);
// embedders merge it with client-side traces.
func (s *Server) WallRecorder() *obs.WallRecorder { return s.wall }

// sloLoop evaluates the objectives on a timer so burn counters
// accumulate over the whole run, not just when someone polls /v1/slo.
func (s *Server) sloLoop(interval time.Duration) {
	defer close(s.sloDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.sloStop:
			return
		case <-tick.C:
			s.slo.Evaluate()
		}
	}
}
