package serve

import (
	"fmt"
	"hash/fnv"

	"bgqflow/internal/core"
	"bgqflow/internal/ionet"
	"bgqflow/internal/mpisim"
	"bgqflow/internal/netsim"
	"bgqflow/internal/scenario"
	"bgqflow/internal/sim"
	"bgqflow/internal/stats"
	"bgqflow/internal/topo"
	"bgqflow/internal/torus"
	"bgqflow/internal/trace"
	"bgqflow/internal/workload"
)

// This file holds the daemon's wire types and the pure plan
// computations behind them. Every Compute* function is a deterministic
// function of (request, fault set): it builds a fresh torus + network +
// engine, runs the same planner code path the one-shot CLIs use, and
// serializes the outcome. Purity is what makes the plan cache and
// request coalescing sound — and what the e2e differential test pins:
// plans served under concurrency must be byte-identical to a direct
// single-threaded planner call.

// PairRequest asks for an Algorithm 1 point-to-point plan.
type PairRequest struct {
	// Shape is the partition geometry, e.g. "2x2x4x4x2". Ignored when
	// Topology is set.
	Shape string `json:"shape,omitempty"`
	// Topology selects a non-torus fabric by topo.Parse spec (e.g.
	// "dragonfly:8x8x2"). Empty means the torus described by Shape — the
	// BG/Q-default compatibility rule, so every pre-topology client keeps
	// getting byte-identical plans. Non-torus plans are direct-only: the
	// paper's proxy placement and the daemon's torus-shaped fault events
	// are 5D-torus constructs.
	Topology string `json:"topology,omitempty"`
	// Src and Dst are node IDs.
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Bytes is the message size.
	Bytes int64 `json:"bytes"`
	// Proxies selects the mode: -1 forces direct, 0 uses the default
	// config (the paper's operating point), >0 forces up to that many
	// proxies (MinProxies 1, threshold 0) — the same convention as the
	// bgqsim scenario schema.
	Proxies int `json:"proxies"`
}

// Validate rejects malformed requests before they reach a worker.
func (r PairRequest) Validate() error {
	var size int
	if r.Topology != "" {
		tp, err := topo.Parse(r.Topology)
		if err != nil {
			return err
		}
		size = tp.NumNodes()
	} else {
		shape, err := torus.ParseShape(r.Shape)
		if err != nil {
			return err
		}
		size = 1
		for _, ext := range shape {
			size *= ext
		}
	}
	if r.Src < 0 || r.Src >= size || r.Dst < 0 || r.Dst >= size {
		return fmt.Errorf("serve: pair endpoints (%d,%d) outside fabric of %d nodes", r.Src, r.Dst, size)
	}
	if r.Bytes < 1 {
		return fmt.Errorf("serve: pair bytes %d must be >= 1", r.Bytes)
	}
	if r.Proxies < -1 {
		return fmt.Errorf("serve: proxies %d must be >= -1", r.Proxies)
	}
	return nil
}

// GroupRequest asks for a group-to-group coupling plan (Figs. 6-7).
type GroupRequest struct {
	Shape     string `json:"shape"`
	SrcOrigin []int  `json:"srcOrigin"`
	SrcExtent []int  `json:"srcExtent"`
	DstOrigin []int  `json:"dstOrigin"`
	DstExtent []int  `json:"dstExtent"`
	// Bytes is the per-pair message size.
	Bytes int64 `json:"bytes"`
	// Proxies: -1 direct, 0 auto-disjoint, >0 forced group count.
	Proxies int `json:"proxies"`
}

// Validate rejects malformed requests; box validity against the torus is
// checked at compute time (torus.NewBox).
func (r GroupRequest) Validate() error {
	if _, err := torus.ParseShape(r.Shape); err != nil {
		return err
	}
	if r.Bytes < 1 {
		return fmt.Errorf("serve: group bytes %d must be >= 1", r.Bytes)
	}
	if r.Proxies < -1 {
		return fmt.Errorf("serve: proxies %d must be >= -1", r.Proxies)
	}
	return nil
}

// AggRequest asks for an Algorithm 2 I/O aggregation plan for a seeded
// workload burst.
type AggRequest struct {
	Shape string `json:"shape"`
	// RanksPerNode defaults to 16.
	RanksPerNode int `json:"ranksPerNode"`
	// Mapping is the BG/Q rank map order (default ABCDET).
	Mapping string `json:"mapping"`
	// Workload is "pattern1", "pattern2", "dense", or "hacc".
	Workload string `json:"workload"`
	// MaxBytes is the per-rank maximum; defaults to 8 MB.
	MaxBytes int64 `json:"maxBytes"`
	// Seed makes the burst reproducible.
	Seed int64 `json:"seed"`
}

// Validate rejects malformed requests and fills defaults (the request is
// canonicalized so equal requests hash equal).
func (r *AggRequest) Validate() error {
	if _, err := torus.ParseShape(r.Shape); err != nil {
		return err
	}
	switch r.Workload {
	case "pattern1", "pattern2", "dense", "hacc":
	default:
		return fmt.Errorf("serve: unknown workload %q", r.Workload)
	}
	if r.RanksPerNode == 0 {
		r.RanksPerNode = 16
	}
	if r.RanksPerNode < 0 {
		return fmt.Errorf("serve: ranksPerNode %d", r.RanksPerNode)
	}
	if r.MaxBytes == 0 {
		r.MaxBytes = 8 << 20
	}
	if r.MaxBytes < 0 {
		return fmt.Errorf("serve: maxBytes %d", r.MaxBytes)
	}
	if r.Mapping == "" {
		r.Mapping = string(mpisim.DefaultMapOrder)
	}
	return nil
}

// FlowWire is one submitted flow: endpoints, size, and the resolved
// route (torus link IDs) — enough for a client to audit link-disjointness
// or fault avoidance.
type FlowWire struct {
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Bytes int64  `json:"bytes"`
	Links []int  `json:"links,omitempty"`
	Label string `json:"label,omitempty"`
}

// ProxyWire is one selected proxy with its two leg routes.
type ProxyWire struct {
	Proxy int   `json:"proxy"`
	Leg1  []int `json:"leg1"`
	Leg2  []int `json:"leg2"`
}

// PairPlan is the wire form of a served point-to-point plan.
type PairPlan struct {
	Mode string `json:"mode"`
	// Topology echoes the request's non-torus fabric spec; omitted for
	// torus plans (wire compatibility with pre-topology clients).
	Topology   string      `json:"topology,omitempty"`
	Proxies    []ProxyWire `json:"proxies,omitempty"`
	Bytes      int64       `json:"bytes"`
	Flows      []FlowWire  `json:"flows"`
	MakespanMS float64     `json:"makespanMS"`
	GBps       float64     `json:"gbps"`
}

// GroupPlan is the wire form of a served group-coupling plan.
type GroupPlan struct {
	Mode        string     `json:"mode"`
	Groups      []string   `json:"groups,omitempty"`
	PairCount   int        `json:"pairCount"`
	DirectPairs int        `json:"directPairs"`
	TotalBytes  int64      `json:"totalBytes"`
	Flows       int        `json:"flows"`
	MakespanMS  float64    `json:"makespanMS"`
	GBps        float64    `json:"gbps"`
	FlowSpecs   []FlowWire `json:"flowSpecs,omitempty"`
}

// AggWire is one selected aggregator.
type AggWire struct {
	Node   int `json:"node"`
	Pset   int `json:"pset"`
	Bridge int `json:"bridge"`
}

// AggPlan is the wire form of a served I/O aggregation plan.
type AggPlan struct {
	TotalBytes      int64     `json:"totalBytes"`
	AggPerPset      int       `json:"aggPerPset"`
	NumAggregators  int       `json:"numAggregators"`
	Senders         int       `json:"senders"`
	Aggregators     []AggWire `json:"aggregators,omitempty"`
	MetadataMS      float64   `json:"metadataMS"`
	MakespanMS      float64   `json:"makespanMS"`
	GBps            float64   `json:"gbps"`
	UplinkImbalance float64   `json:"uplinkImbalance"`
}

// SimResult is the wire form of a full scenario run (bgqsim's output,
// minus the trace, which is too large to cache and serve).
type SimResult struct {
	Mode            string   `json:"mode"`
	GBps            float64  `json:"gbps"`
	MakespanMS      float64  `json:"makespanMS"`
	UplinkImbalance float64  `json:"uplinkImbalance,omitempty"`
	Notes           []string `json:"notes,omitempty"`
}

// applicableFaults filters the daemon's fault set down to the entries
// that name a valid link of this torus; events recorded against other
// geometries do not apply.
func applicableFaults(tor *torus.Torus, faults []scenario.FailLink) []scenario.FailLink {
	var out []scenario.FailLink
	for _, fl := range faults {
		if fl.Node < 0 || fl.Node >= tor.Size() || fl.Dim < 0 || fl.Dim >= tor.Dims() {
			continue
		}
		if fl.Dir != 1 && fl.Dir != -1 {
			continue
		}
		out = append(out, fl)
	}
	return out
}

func failNetworkLinks(tor *torus.Torus, net *netsim.Network, faults []scenario.FailLink) {
	for _, fl := range faults {
		dir := torus.Plus
		if fl.Dir == -1 {
			dir = torus.Minus
		}
		net.FailLink(tor.LinkID(torus.NodeID(fl.Node), fl.Dim, dir))
	}
}

// flowWires serializes every flow submitted to the engine, in submission
// order, with its resolved route.
func flowWires(e *netsim.Engine) []FlowWire {
	out := make([]FlowWire, e.NumFlows())
	for id := 0; id < e.NumFlows(); id++ {
		spec := e.Spec(netsim.FlowID(id))
		out[id] = FlowWire{
			Src:   int(spec.Src),
			Dst:   int(spec.Dst),
			Bytes: spec.Bytes,
			Links: e.FlowRouteLinks(netsim.FlowID(id)),
			Label: spec.Label,
		}
	}
	return out
}

// pairConfig maps the request's Proxies knob onto a ProxyConfig, the
// same convention the bgqsim scenario schema uses.
func pairConfig(proxies int) core.ProxyConfig {
	cfg := core.DefaultProxyConfig()
	if proxies < 0 {
		cfg.Threshold = 1 << 62
	} else if proxies > 0 {
		cfg.MaxProxies = proxies
		cfg.MinProxies = 1
		cfg.Threshold = 0
	}
	return cfg
}

// ComputePair plans one point-to-point transfer and simulates it.
func ComputePair(req PairRequest, faults []scenario.FailLink) (PairPlan, error) {
	if err := req.Validate(); err != nil {
		return PairPlan{}, err
	}
	if req.Topology != "" {
		return computePairTopo(req)
	}
	shape, err := torus.ParseShape(req.Shape)
	if err != nil {
		return PairPlan{}, err
	}
	tor, err := torus.New(shape)
	if err != nil {
		return PairPlan{}, err
	}
	params := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, params.LinkBandwidth)
	faults = applicableFaults(tor, faults)
	failNetworkLinks(tor, net, faults)
	e, err := netsim.NewEngine(net, params)
	if err != nil {
		return PairPlan{}, err
	}
	pl, err := core.NewPairPlanner(tor, pairConfig(req.Proxies))
	if err != nil {
		return PairPlan{}, err
	}
	if net.HasFailures() {
		pl.SetFaults(net.FailedFunc())
	}
	plan, err := pl.PlanPair(e, torus.NodeID(req.Src), torus.NodeID(req.Dst), req.Bytes)
	if err != nil {
		return PairPlan{}, err
	}
	mk, err := e.Run()
	if err != nil {
		return PairPlan{}, err
	}
	return PairWireFromPlan(e, plan, float64(mk)), nil
}

// computePairTopo plans a direct transfer on a non-torus fabric. The
// daemon's fault events are torus link coordinates and do not apply; the
// proxy ladder is torus-specific, so the plan is always direct (a
// request forcing proxies is rejected rather than silently downgraded).
func computePairTopo(req PairRequest) (PairPlan, error) {
	if req.Proxies > 0 {
		return PairPlan{}, fmt.Errorf("serve: proxy planning is torus-only; topology %q serves direct plans", req.Topology)
	}
	tp, err := topo.Parse(req.Topology)
	if err != nil {
		return PairPlan{}, err
	}
	params := netsim.DefaultParams()
	net := netsim.NewNetworkTopo(tp, params.LinkBandwidth)
	e, err := netsim.NewEngine(net, params)
	if err != nil {
		return PairPlan{}, err
	}
	e.Submit(netsim.FlowSpec{
		Src:   torus.NodeID(req.Src),
		Dst:   torus.NodeID(req.Dst),
		Bytes: req.Bytes,
		Label: "direct",
	})
	mk, err := e.Run()
	if err != nil {
		return PairPlan{}, err
	}
	return PairPlan{
		Mode:       "direct",
		Topology:   tp.Spec(),
		Bytes:      req.Bytes,
		Flows:      flowWires(e),
		MakespanMS: float64(mk) * 1e3,
		GBps:       netsim.Throughput(req.Bytes, sim.Duration(mk)) / 1e9,
	}, nil
}

// PairWireFromPlan builds the wire form from a core plan plus the engine
// it was submitted to. Exported so differential tests can construct the
// expected bytes from a direct planner call.
func PairWireFromPlan(e *netsim.Engine, plan core.PairPlan, makespanSec float64) PairPlan {
	out := PairPlan{
		Mode:       plan.Mode.String(),
		Bytes:      plan.Bytes,
		Flows:      flowWires(e),
		MakespanMS: makespanSec * 1e3,
		GBps:       netsim.Throughput(plan.Bytes, sim.Duration(makespanSec)) / 1e9,
	}
	for _, pr := range plan.Proxies {
		out.Proxies = append(out.Proxies, ProxyWire{
			Proxy: int(pr.Proxy),
			Leg1:  append([]int(nil), pr.Leg1.Links...),
			Leg2:  append([]int(nil), pr.Leg2.Links...),
		})
	}
	return out
}

// ComputeGroup plans one group-to-group transfer and simulates it.
func ComputeGroup(req GroupRequest, faults []scenario.FailLink) (GroupPlan, error) {
	if err := req.Validate(); err != nil {
		return GroupPlan{}, err
	}
	shape, err := torus.ParseShape(req.Shape)
	if err != nil {
		return GroupPlan{}, err
	}
	tor, err := torus.New(shape)
	if err != nil {
		return GroupPlan{}, err
	}
	sBox, err := torus.NewBox(tor, req.SrcOrigin, req.SrcExtent)
	if err != nil {
		return GroupPlan{}, fmt.Errorf("serve: srcBox: %w", err)
	}
	dBox, err := torus.NewBox(tor, req.DstOrigin, req.DstExtent)
	if err != nil {
		return GroupPlan{}, fmt.Errorf("serve: dstBox: %w", err)
	}
	params := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, params.LinkBandwidth)
	failNetworkLinks(tor, net, applicableFaults(tor, faults))
	e, err := netsim.NewEngine(net, params)
	if err != nil {
		return GroupPlan{}, err
	}
	cfg := core.DefaultProxyConfig()
	if req.Proxies < 0 {
		cfg.Threshold = 1 << 62
	}
	gp, err := core.NewGroupPlanner(tor, cfg)
	if err != nil {
		return GroupPlan{}, err
	}
	if req.Proxies > 0 {
		gp.ForceGroups = req.Proxies
	}
	plan, err := gp.Plan(e, sBox, dBox, req.Bytes)
	if err != nil {
		return GroupPlan{}, err
	}
	mk, err := e.Run()
	if err != nil {
		return GroupPlan{}, err
	}
	return GroupWireFromPlan(e, plan, req.Bytes, float64(mk)), nil
}

// GroupWireFromPlan builds the wire form from a core group plan.
func GroupWireFromPlan(e *netsim.Engine, plan core.GroupPlan, bytesPerPair int64, makespanSec float64) GroupPlan {
	out := GroupPlan{
		Mode:        plan.Mode.String(),
		PairCount:   plan.PairCount,
		DirectPairs: plan.DirectPairs,
		TotalBytes:  plan.TotalBytes,
		Flows:       e.NumFlows(),
		MakespanMS:  makespanSec * 1e3,
		GBps:        netsim.Throughput(bytesPerPair, sim.Duration(makespanSec)) / 1e9,
		FlowSpecs:   flowWires(e),
	}
	for _, g := range plan.Groups {
		out.Groups = append(out.Groups, g.String())
	}
	return out
}

// ComputeAgg plans one seeded write burst under Algorithm 2 and
// simulates it.
func ComputeAgg(req AggRequest, faults []scenario.FailLink) (AggPlan, error) {
	if err := req.Validate(); err != nil {
		return AggPlan{}, err
	}
	shape, err := torus.ParseShape(req.Shape)
	if err != nil {
		return AggPlan{}, err
	}
	tor, err := torus.New(shape)
	if err != nil {
		return AggPlan{}, err
	}
	params := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, params.LinkBandwidth)
	ios, err := ionet.Build(net, ionet.DefaultConfig())
	if err != nil {
		return AggPlan{}, err
	}
	failNetworkLinks(tor, net, applicableFaults(tor, faults))
	job, err := mpisim.NewJobWithMapping(tor, req.RanksPerNode, mpisim.MapOrder(req.Mapping))
	if err != nil {
		return AggPlan{}, err
	}
	var data []int64
	switch req.Workload {
	case "pattern1":
		data = workload.Uniform(job.NumRanks(), req.MaxBytes, req.Seed)
	case "pattern2":
		data = workload.Pattern2(job.NumRanks(), req.MaxBytes, req.Seed)
	case "dense":
		data = workload.Dense(job.NumRanks(), req.MaxBytes)
	case "hacc":
		data = workload.HACC(job.NumRanks(), req.MaxBytes/workload.HACCRecordBytes)
	}
	e, err := netsim.NewEngine(net, params)
	if err != nil {
		return AggPlan{}, err
	}
	pl, err := core.NewAggPlanner(ios, job, params, core.DefaultAggConfig())
	if err != nil {
		return AggPlan{}, err
	}
	plan, err := pl.Plan(e, data)
	if err != nil {
		return AggPlan{}, err
	}
	mk, err := e.Run()
	if err != nil {
		return AggPlan{}, err
	}
	var aggs []core.Aggregator
	if plan.TotalBytes > 0 {
		// Re-derive the (deterministic) selection so the wire form can
		// carry it; mirror the planner's degraded-pset filtering.
		_, aggs = pl.AggregatorsFor(plan.TotalBytes)
		if net.HasFailures() {
			live := aggs[:0]
			for _, ag := range aggs {
				if !net.NodeFailed(ag.Node) {
					live = append(live, ag)
				}
			}
			aggs = live
		}
	}
	return AggWireFromPlan(e, ios, plan, aggs, float64(mk)), nil
}

// AggWireFromPlan builds the wire form from a core aggregation plan plus
// the (already fault-filtered) aggregator selection behind it.
func AggWireFromPlan(e *netsim.Engine, ios *ionet.System, plan core.AggPlan, aggs []core.Aggregator, makespanSec float64) AggPlan {
	out := AggPlan{
		TotalBytes:     plan.TotalBytes,
		AggPerPset:     plan.AggPerPset,
		NumAggregators: plan.NumAggregators,
		Senders:        plan.Senders,
		MetadataMS:     float64(plan.Metadata) * 1e3,
		MakespanMS:     (makespanSec + float64(plan.Metadata)) * 1e3,
	}
	denom := makespanSec + float64(plan.Metadata)
	if denom > 0 {
		out.GBps = float64(plan.TotalBytes) / denom / 1e9
	}
	out.UplinkImbalance = stats.ImbalanceRatio(trace.UplinkLoads(e, ios))
	for _, ag := range aggs {
		out.Aggregators = append(out.Aggregators, AggWire{Node: int(ag.Node), Pset: ag.Pset, Bridge: ag.Bridge})
	}
	return out
}

// ComputeSim runs a full declarative scenario (the bgqsim schema). The
// daemon's fault set is merged into the scenario's failLinks (entries
// valid for its shape only); trace collection is disabled — traces are
// per-request artifacts, not cacheable plans.
func ComputeSim(cfg scenario.Config, faults []scenario.FailLink) (SimResult, error) {
	cfg.CollectTrace = false
	if shape, err := torus.ParseShape(cfg.Shape); err == nil {
		if tor, terr := torus.New(shape); terr == nil {
			cfg.FailLinks = append(append([]scenario.FailLink(nil), cfg.FailLinks...),
				applicableFaults(tor, faults)...)
		}
	}
	res, err := scenario.Run(cfg)
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		Mode:            res.Mode,
		GBps:            res.GBps,
		MakespanMS:      res.MakespanMS,
		UplinkImbalance: res.UplinkImbalance,
		Notes:           res.Notes,
	}, nil
}

// paramsSignature folds the machine constants into the cache key so a
// future multi-params daemon can never serve a plan computed under
// different hardware assumptions.
func paramsSignature() uint64 {
	p := netsim.DefaultParams()
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", p)
	return h.Sum64()
}

// bytesBucket buckets a message size by power of two — the cache-key
// granularity axis from the issue: requests in the same bucket share a
// shard and sort near each other, while the exact size still
// distinguishes entries (plans must be byte-exact).
func bytesBucket(b int64) int {
	bucket := 0
	for b > 0 {
		b >>= 1
		bucket++
	}
	return bucket
}

// CacheKey builds the canonical cache key for a request: kind, shape,
// machine-params hash, endpoints, bytes bucket, and the full canonical
// request encoding. Identical requests — and only identical requests —
// produce identical keys.
func cacheKey(kind, shape string, src, dst int, bytes int64, canonical string) string {
	return fmt.Sprintf("%s|%s|%x|%d|%d|b%d|%s", kind, shape, paramsSignature(), src, dst, bytesBucket(bytes), canonical)
}

func (r PairRequest) cacheKey() string {
	// A topology spec takes the geometry slot; it always contains ':', so
	// it can never collide with a torus shape string.
	geom := r.Shape
	if r.Topology != "" {
		geom = r.Topology
	}
	return cacheKey("pair", geom, r.Src, r.Dst, r.Bytes,
		fmt.Sprintf("%d|%d", r.Bytes, r.Proxies))
}

func (r GroupRequest) cacheKey() string {
	return cacheKey("group", r.Shape, -1, -1, r.Bytes,
		fmt.Sprintf("%v|%v|%v|%v|%d|%d", r.SrcOrigin, r.SrcExtent, r.DstOrigin, r.DstExtent, r.Bytes, r.Proxies))
}

func (r AggRequest) cacheKey() string {
	return cacheKey("agg", r.Shape, -1, -1, r.MaxBytes,
		fmt.Sprintf("%d|%s|%s|%d|%d", r.RanksPerNode, r.Mapping, r.Workload, r.MaxBytes, r.Seed))
}

func simCacheKey(cfg scenario.Config, canonical []byte) string {
	h := fnv.New64a()
	h.Write(canonical)
	return cacheKey("sim", cfg.Shape, -1, -1, 0, fmt.Sprintf("%x", h.Sum64()))
}
