package serve_test

// The concurrency hammer: one daemon, 64 goroutines of mixed identical
// and distinct requests, with a fault event landing mid-storm. Run under
// -race (tier-1: go test -race ./internal/serve). Asserts:
//
//   - every request is answered 200 (queue sized to avoid shedding);
//   - coalescing/caching worked: plans computed < requests served, and
//     cache_hits + coalesced > 0 (the obs counters, not a guess);
//   - no lost invalidation: every response stamped with the post-fault
//     epoch avoids the failed link (responses that raced the event may
//     carry the old epoch and the old route — that is the serializable
//     "request before fault" outcome — but a post-epoch response built
//     from stale faults would be a correctness bug).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"bgqflow/internal/scenario"
	"bgqflow/internal/serve"
)

func TestConcurrentHammerCoalescingAndInvalidation(t *testing.T) {
	// Tracing on: the hammer doubles as the race check for the wall
	// recorder's span rings under concurrent plan traffic.
	srv, client := newTestDaemon(t, serve.Config{Workers: 4, QueueDepth: 4096, TraceEvents: 1 << 14})
	ctx := context.Background()

	// The hot request every goroutine repeats, and the link its unfaulted
	// plan rides — the fault event targets that link.
	hot := serve.PairRequest{Shape: testShape, Src: 0, Dst: 97, Bytes: 4 << 20}
	pre, err := client.PlanPair(ctx, hot)
	if err != nil || !pre.OK() {
		t.Fatalf("warmup: %v status %d", err, pre.Status)
	}
	var prePlan serve.PairPlan
	if err := json.Unmarshal(pre.Plan, &prePlan); err != nil {
		t.Fatal(err)
	}
	target := prePlan.Flows[0].Links[0]
	fl, ok := linkToFail(t, testShape, target)
	if !ok {
		t.Fatalf("cannot invert link %d", target)
	}

	const goroutines = 64
	const perG = 8
	type answer struct {
		epoch uint64
		plan  []byte
	}
	var (
		mu      sync.Mutex
		hotAns  []answer
		wg      sync.WaitGroup
		barrier = make(chan struct{})
	)
	var postEpoch uint64
	wg.Add(goroutines + 1)
	// The fault event races the request storm.
	go func() {
		defer wg.Done()
		<-barrier
		ep, ferr := client.Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}})
		if ferr != nil {
			t.Errorf("fault: %v", ferr)
			return
		}
		mu.Lock()
		postEpoch = ep
		mu.Unlock()
	}()
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			<-barrier
			for i := 0; i < perG; i++ {
				var res serve.PlanResult
				var rerr error
				if i%2 == 0 {
					// Identical hot request — the coalescing/caching target.
					res, rerr = client.PlanPair(ctx, hot)
				} else {
					// Distinct per (goroutine, iteration): genuine plan work.
					res, rerr = client.PlanPair(ctx, serve.PairRequest{
						Shape: testShape,
						Src:   g % 128,
						Dst:   (g*perG + i*37 + 5) % 128,
						Bytes: int64(1+i) << 20,
					})
				}
				if rerr != nil {
					t.Errorf("g%d/%d: %v", g, i, rerr)
					continue
				}
				if !res.OK() {
					// Self-pairs in the distinct mix are rejected 400; anything
					// else is a failure. No shedding: the queue is deep enough.
					if res.Status == 400 && i%2 == 1 {
						continue
					}
					t.Errorf("g%d/%d: status %d: %s", g, i, res.Status, res.Err)
					continue
				}
				if i%2 == 0 {
					mu.Lock()
					hotAns = append(hotAns, answer{res.Epoch, res.Plan})
					mu.Unlock()
				}
			}
		}(g)
	}
	close(barrier)
	wg.Wait()

	// Coalescing actually happened: the server computed strictly fewer
	// plans than it served, and says so in its own counters.
	snap := srv.Registry().Snapshot()
	requests := snap.Counters["serve/requests"]
	computed := snap.Counters["serve/plans_computed"]
	saved := snap.Counters["serve/cache_hits"] + snap.Counters["serve/coalesced"]
	if computed >= requests {
		t.Errorf("plans_computed %d >= requests %d: no coalescing/caching", computed, requests)
	}
	if saved == 0 {
		t.Error("cache_hits + coalesced = 0")
	}
	if shed := snap.Counters["serve/shed"]; shed != 0 {
		t.Errorf("%d requests shed despite deep queue", shed)
	}

	// No lost invalidation across the concurrent epoch bump.
	if postEpoch == 0 {
		t.Fatal("fault goroutine never ran")
	}
	postSeen := 0
	for _, a := range hotAns {
		if a.epoch < postEpoch {
			continue // raced the fault; pre-event plan is the correct answer
		}
		postSeen++
		var p serve.PairPlan
		if err := json.Unmarshal(a.plan, &p); err != nil {
			t.Fatal(err)
		}
		for _, f := range p.Flows {
			for _, l := range f.Links {
				if l == target {
					t.Fatalf("epoch-%d response uses link %d failed at epoch %d (lost invalidation)",
						a.epoch, target, postEpoch)
				}
			}
		}
	}
	// And the daemon's final answer must definitely avoid the link.
	res, err := client.PlanPair(ctx, hot)
	if err != nil || !res.OK() {
		t.Fatalf("final plan: %v status %d", err, res.Status)
	}
	if res.Epoch != postEpoch {
		t.Fatalf("final epoch %d, want %d", res.Epoch, postEpoch)
	}
	var p serve.PairPlan
	if err := json.Unmarshal(res.Plan, &p); err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Flows {
		for _, l := range f.Links {
			if l == target {
				t.Fatal("final post-fault plan still uses the failed link")
			}
		}
	}
	t.Logf("hammer: %d requests, %d computed, %d saved, %d post-epoch hot answers",
		requests, computed, saved, postSeen)
}

// TestConcurrentSessionsPushedFaultReplay is the session-layer arm of
// the hammer, run under -race: a pack of paced transfer sessions on one
// hot pair, a fault event landing mid-flight, and a client-side
// differential check per session — every streamed report must byte-match
// a direct MoveResilient replay of that session's recorded timeline
// (fault-set snapshot + pushed-fault instants through PushedInterject).
func TestConcurrentSessionsPushedFaultReplay(t *testing.T) {
	// Tracing on: session spans, pushed-fault instants, and the MergeSim
	// at finish all run under the race detector here.
	srv, client := newTestDaemon(t, serve.Config{TraceEvents: 1 << 14})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// The link the unfaulted hot-pair plan rides: failing it mid-session
	// forces replans in every session still in flight.
	hot := serve.PairRequest{Shape: testShape, Src: 0, Dst: 97, Bytes: 32 << 20}
	pre, err := client.PlanPair(ctx, hot)
	if err != nil || !pre.OK() {
		t.Fatalf("warmup: %v status %d", err, pre.Status)
	}
	var prePlan serve.PairPlan
	if err := json.Unmarshal(pre.Plan, &prePlan); err != nil {
		t.Fatal(err)
	}
	fl, ok := linkToFail(t, testShape, prePlan.Flows[0].Links[0])
	if !ok {
		t.Fatal("cannot invert plan link")
	}

	const sessions = 8
	outs := make([]serve.TransferOutcome, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	waveSeen := make(chan struct{})
	var waveOnce sync.Once
	wg.Add(sessions + 1)
	go func() {
		// The fault event waits for the first wave frame, then races the
		// in-flight pack.
		defer wg.Done()
		<-waveSeen
		if _, ferr := client.Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}}); ferr != nil {
			t.Errorf("fault: %v", ferr)
		}
	}()
	for i := 0; i < sessions; i++ {
		go func(i int) {
			defer wg.Done()
			req := serve.TransferRequest{
				ID:    fmt.Sprintf("s-hammer-%d", i),
				Shape: testShape, Src: 0, Dst: 97, Bytes: 32 << 20,
				PaceUS: 2000, // stretch wall-clock so the fault lands mid-flight
			}
			outs[i], errs[i] = client.Transfer(ctx, req, serve.TransferOpts{
				OnFrame: func(f serve.SessionFrame) {
					if f.Type == "wave" {
						waveOnce.Do(func() { close(waveSeen) })
					}
				},
			})
		}(i)
	}
	wg.Wait()

	pushedSessions := 0
	pushedFrames := 0
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if outs[i].Err != "" {
			t.Fatalf("session %d: server-side error: %s", i, outs[i].Err)
		}
		if len(outs[i].Pushed) > 0 {
			pushedSessions++
			pushedFrames += len(outs[i].Pushed)
		}
		req := serve.TransferRequest{
			ID:    fmt.Sprintf("s-hammer-%d", i),
			Shape: testShape, Src: 0, Dst: 97, Bytes: 32 << 20,
		}
		rep, derr := serve.RunTransfer(req, outs[i].Faults, serve.TransferHooks{
			Interject: serve.PushedInterject(outs[i].Pushed),
		})
		if derr != nil {
			t.Fatalf("session %d replay: %v", i, derr)
		}
		want, _ := json.Marshal(rep)
		if !bytes.Equal(outs[i].Report, want) {
			t.Errorf("session %d: streamed report diverges from replay\nstreamed: %s\nreplayed: %s",
				i, outs[i].Report, want)
		}
	}
	if pushedSessions == 0 {
		t.Fatal("the fault event reached no session mid-flight; the push path was not exercised")
	}
	snap := srv.Registry().Snapshot()
	if got := snap.Counters["serve/faults_pushed"]; got != int64(pushedFrames) {
		t.Errorf("faults_pushed = %d, want %d (one per streamed fault frame)", got, pushedFrames)
	}
	if snap.Counters["serve/replans_pushed"] == 0 {
		t.Error("replans_pushed = 0: no replan was attributed to the pushed fault")
	}
	t.Logf("session hammer: %d/%d sessions took the pushed fault (%d frames), replans_pushed=%d",
		pushedSessions, sessions, pushedFrames, snap.Counters["serve/replans_pushed"])
}
