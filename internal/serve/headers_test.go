package serve

// Regression tests for two client header-parsing bugs (satellites):
// msHeader swallowed its ParseFloat error so a malformed or negative
// X-Bgq-*-Ms header poisoned the latency breakdown, and Retry-After was
// parsed with a bare Atoi so a negative value became a negative wait
// hint and an HTTP-date form silently read as "no hint".

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bgqflow/internal/obs"
)

// TestMsHeaderRejectsGarbage pins the parse policy: absent is 0 and
// uncounted; malformed, non-finite, and negative values are 0 AND
// counted. Pre-fix, "-12.5" read as -12.5 and "NaN" as NaN.
func TestMsHeaderRejectsGarbage(t *testing.T) {
	for _, tc := range []struct {
		name  string
		value string
		set   bool
		want  float64
		bad   int64
	}{
		{"absent", "", false, 0, 0},
		{"valid", "12.5", true, 12.5, 0},
		{"zero", "0", true, 0, 0},
		{"malformed", "fast", true, 0, 1},
		{"negative", "-12.5", true, 0, 1},
		{"nan", "NaN", true, 0, 1},
		{"inf", "+Inf", true, 0, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			c := &Client{metrics: reg}
			h := http.Header{}
			if tc.set {
				h.Set(HeaderQueueMS, tc.value)
			}
			got := c.msHeader(h, HeaderQueueMS)
			if got != tc.want || math.Signbit(got) {
				t.Errorf("msHeader(%q) = %v, want %v", tc.value, got, tc.want)
			}
			if n := reg.Counter("serve/client/bad_ms_header").Value(); n != tc.bad {
				t.Errorf("bad_ms_header counter = %d, want %d", n, tc.bad)
			}
		})
	}
}

// TestMsHeaderWithoutMetricsRegistry: the counter is optional; a client
// without SetMetrics must still sanitize, not crash.
func TestMsHeaderWithoutMetricsRegistry(t *testing.T) {
	c := &Client{}
	h := http.Header{}
	h.Set(HeaderComputeMS, "NaN")
	if got := c.msHeader(h, HeaderComputeMS); got != 0 {
		t.Errorf("msHeader without registry = %v, want 0", got)
	}
}

// TestMsHeaderOnWire runs the full postOnce path against a daemon
// emitting a hostile timing header: the breakdown fields come back
// sanitized and the anomaly is counted.
func TestMsHeaderOnWire(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderQueueMS, "-3.5")
		w.Header().Set(HeaderComputeMS, "not-a-number")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(planEnvelope{Plan: json.RawMessage(`{}`)})
	}))
	t.Cleanup(hs.Close)
	client, err := NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	client.SetMetrics(reg)
	res, err := client.post(context.Background(), "/v1/plan/pair", PairRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueMS != 0 || res.ComputeMS != 0 {
		t.Errorf("breakdown not sanitized: queue=%v compute=%v", res.QueueMS, res.ComputeMS)
	}
	if n := reg.Counter("serve/client/bad_ms_header").Value(); n != 2 {
		t.Errorf("bad_ms_header counter = %d, want 2", n)
	}
}

// TestRetryAfterHint pins the shared parser both call sites use.
func TestRetryAfterHint(t *testing.T) {
	for _, tc := range []struct {
		value string
		want  time.Duration
		ok    bool
	}{
		{"", 0, false},
		{"3", 3 * time.Second, true},
		{"0", 0, true},
		{"-7", 0, true}, // negative delay-seconds clamps to retry-now
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0, false}, // HTTP-date: explicit backoff fallback
		{"soon", 0, false},
		{"1.5", 0, false},
	} {
		got, ok := retryAfterHint(tc.value)
		if got != tc.want || ok != tc.ok {
			t.Errorf("retryAfterHint(%q) = (%v, %v), want (%v, %v)", tc.value, got, ok, tc.want, tc.ok)
		}
	}
}

// TestRetryAfterNegativeClampedOnWire: pre-fix, a 429 carrying
// Retry-After: -3 surfaced RetryAfter = -3s to the caller and the
// backoff arithmetic. Now it clamps to zero at the parse.
func TestRetryAfterNegativeClampedOnWire(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "-3")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(planEnvelope{Error: "shed"})
	}))
	t.Cleanup(hs.Close)
	client, err := NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	client.SetRetryPolicy(NoRetryPolicy())
	res, err := client.post(context.Background(), "/v1/plan/pair", PairRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", res.Status)
	}
	if res.RetryAfter != 0 {
		t.Errorf("RetryAfter = %v, want 0 (negative header must clamp)", res.RetryAfter)
	}
}

// TestSessionRetryAfterCallSite drives the session client's shed-retry
// loop through the shared parser: the daemon sheds twice — once with a
// negative Retry-After, once with an HTTP-date — and the transfer must
// still ride through on the backoff schedule and complete.
func TestSessionRetryAfterCallSite(t *testing.T) {
	s := New(Config{})
	t.Cleanup(s.Close)
	var sheds atomic.Int64
	inner := s.Handler()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/transfer" {
			switch sheds.Add(1) {
			case 1:
				w.Header().Set("Retry-After", "-2")
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				json.NewEncoder(w).Encode(planEnvelope{Error: "shed"})
				return
			case 2:
				w.Header().Set("Retry-After", "Wed, 21 Oct 2015 07:28:00 GMT")
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(planEnvelope{Error: "draining"})
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)

	client, err := NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	client.SetRetryPolicy(RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := TransferRequest{ID: "s-retry-after", Shape: "2x2x4x4x2", Src: 0, Dst: 97, Bytes: 1 << 20}
	out, err := client.Transfer(ctx, req, TransferOpts{})
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if out.Err != "" {
		t.Fatalf("server-side error: %s", out.Err)
	}
	if got := sheds.Load(); got < 3 {
		t.Fatalf("transfer attached after %d attempts, want the 2 sheds ridden through", got)
	}
	if len(out.Report) == 0 {
		t.Fatal("no report streamed after retries")
	}
}
