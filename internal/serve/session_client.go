package serve

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"bgqflow/internal/obs"
	"bgqflow/internal/scenario"
)

// Session-aware client: Transfer drives one resilient transfer through
// a bgqd daemon end to end and survives everything the session layer is
// built for — shed starts (backoff + retry), mid-stream disconnects
// (resume from the replay buffer with ?after=cursor), and daemon
// restarts (the resume 404s, so the client re-POSTs the same idempotent
// ID and a fresh daemon re-arms the session from scratch).

// TransferOpts tunes Client.Transfer.
type TransferOpts struct {
	// OnFrame observes every frame as it arrives (after cursor
	// bookkeeping), including hello and ping frames.
	OnFrame func(SessionFrame)
	// Backoff overrides the client's retry policy for this transfer. The
	// zero value uses the client policy.
	Backoff RetryPolicy
	// DropEvery forces a client-side disconnect after every N buffered
	// frames — a test/chaos hook that exercises resume. 0 disables.
	DropEvery int
	// AckEvery sends an ack after every N buffered frames, evicting them
	// from the server's replay ring. 0 disables.
	AckEvery int
}

// TransferOutcome is the result of one session as the client saw it.
type TransferOutcome struct {
	SessionID string
	// Trace is the session's trace ID: the client-stamped one when the
	// client has a tracer, else the server-generated one echoed in the
	// hello frame ("" when tracing is off on both sides). Stable across
	// resumes and re-arms — the whole transfer is one trace.
	Trace string
	// Frames counts buffered (seq > 0) frames received, replays excluded.
	Frames int
	// Resumes counts reconnects served from the replay buffer.
	Resumes int
	// Restarts counts re-POSTs after an aborted report or a lost session
	// (daemon restart).
	Restarts int
	// Report is the terminal TransferReport exactly as serialized by the
	// daemon — compare byte-for-byte against a direct RunTransfer.
	Report json.RawMessage
	// Err is the server-side transfer error, if any ("" on success).
	Err string
	// Faults is the daemon fault-set snapshot the (final) run started
	// under, from its hello frame.
	Faults []scenario.FailLink
	// Pushed is the pushed-fault timeline of the final run, for replay
	// through PushedInterject.
	Pushed []PushedFault
	// Members is the combined-member list when the session was batched.
	Members []string
}

// randomSessionID generates a fresh idempotency token.
func randomSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("serve: crypto/rand unavailable: " + err.Error())
	}
	return "s-" + hex.EncodeToString(b[:])
}

// Transfer runs one resilient transfer session to completion. It
// returns once a non-aborted report frame arrives (out.Err carries any
// server-side transfer error) or when the context/attempt budget is
// exhausted.
func (c *Client) Transfer(ctx context.Context, req TransferRequest, opts TransferOpts) (TransferOutcome, error) {
	if req.ID == "" {
		req.ID = randomSessionID()
	}
	out := TransferOutcome{SessionID: req.ID}
	pol := opts.Backoff
	if pol == (RetryPolicy{}) {
		pol = c.retry
	}
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	// One trace for the whole session: stamped on the first POST and on
	// every resume/re-POST, so the daemon threads it through the original
	// run and every re-arm.
	var trace string
	if c.tracer != nil {
		trace = obs.NewTraceID()
		out.Trace = trace
	}

	var lastSeq uint64
	resume := false
	fails := 0 // consecutive failed attempts
	for {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("serve: transfer %s: %w", req.ID, err)
		}
		var (
			resp    *http.Response
			httpErr error
		)
		attempt := "post"
		tAttempt := time.Now()
		if resume {
			attempt = "resume"
			r, _ := http.NewRequestWithContext(ctx, http.MethodGet,
				c.base+"/v1/transfer/"+req.ID+"/events?after="+strconv.FormatUint(lastSeq, 10), nil)
			if trace != "" {
				r.Header.Set(HeaderTraceID, trace)
				r.Header.Set(HeaderSpanID, obs.NewTraceID())
			}
			resp, httpErr = c.hc.Do(r)
		} else {
			r, _ := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/transfer", bytes.NewReader(body))
			r.Header.Set("Content-Type", "application/json")
			if trace != "" {
				r.Header.Set(HeaderTraceID, trace)
				r.Header.Set(HeaderSpanID, obs.NewTraceID())
			}
			resp, httpErr = c.hc.Do(r)
		}

		// Each connection attempt (initial POST, resume, re-POST) is one
		// client span; a disconnect-heavy session reads as a row of
		// attempt spans over the daemon's single session span.
		endAttempt := func() {
			c.tracer.Span(trace, "client/sessions", attempt+" "+req.ID, tAttempt, time.Now())
		}

		retry := func(hint time.Duration) error {
			fails++
			if pol.MaxAttempts > 0 && fails >= pol.MaxAttempts {
				return fmt.Errorf("serve: transfer %s: gave up after %d attempts", req.ID, fails)
			}
			return pol.sleep(ctx, fails-1, hint)
		}

		if httpErr != nil {
			endAttempt()
			// Transport failure — the daemon may be restarting. Keep the
			// cursor: if the daemon survived, the resume replays; if it was
			// replaced, the next attempt 404s and falls through to re-POST.
			if ctx.Err() != nil {
				return out, fmt.Errorf("serve: transfer %s: %w", req.ID, ctx.Err())
			}
			if err := retry(0); err != nil {
				return out, err
			}
			if lastSeq > 0 {
				resume = true
			}
			continue
		}

		switch resp.StatusCode {
		case http.StatusOK:
			// Stream below.
		case http.StatusNotFound:
			endAttempt()
			// The daemon does not know the session: it restarted (or
			// reaped it). Start over under the same idempotent ID.
			resp.Body.Close()
			resume = false
			lastSeq = 0
			out.Pushed = nil
			out.Restarts++
			if err := retry(0); err != nil {
				return out, err
			}
			continue
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			endAttempt()
			hint, _ := retryAfterHint(resp.Header.Get("Retry-After"))
			resp.Body.Close()
			if err := retry(hint); err != nil {
				return out, err
			}
			continue
		default:
			endAttempt()
			var env planEnvelope
			json.NewDecoder(resp.Body).Decode(&env)
			resp.Body.Close()
			return out, fmt.Errorf("serve: transfer %s rejected (status %d): %s", req.ID, resp.StatusCode, env.Error)
		}

		done, rearm, serr := c.consumeStream(resp, opts, &out, &lastSeq)
		endAttempt()
		if done {
			return out, nil
		}
		if serr != nil && ctx.Err() != nil {
			return out, fmt.Errorf("serve: transfer %s: %w", req.ID, ctx.Err())
		}
		fails = 0 // the connection worked; reconnect with a fresh budget
		if rearm {
			// Aborted report (drain or idle reap): re-POST the same ID so
			// the daemon re-arms a fresh run.
			resume = false
			lastSeq = 0
			out.Pushed = nil
			out.Restarts++
			if err := pol.sleep(ctx, 0, 0); err != nil {
				return out, fmt.Errorf("serve: transfer %s: %w", req.ID, err)
			}
			continue
		}
		// Stream ended without a report (disconnect, dropped subscriber,
		// or a forced DropEvery): resume from the cursor.
		resume = true
		out.Resumes++
	}
}

// consumeStream reads ndjson frames until the terminal report, a forced
// drop, or a connection error. done=true means a final (non-aborted)
// report landed; rearm=true means an aborted report asks for a re-POST.
func (c *Client) consumeStream(resp *http.Response, opts TransferOpts, out *TransferOutcome, lastSeq *uint64) (done, rearm bool, err error) {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	sinceDrop := 0
	sinceAck := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var f SessionFrame
		if uerr := json.Unmarshal(line, &f); uerr != nil {
			return false, false, fmt.Errorf("serve: bad session frame: %w", uerr)
		}
		if f.Seq > 0 {
			if f.Seq <= *lastSeq {
				continue // duplicate from an overlapping replay
			}
			*lastSeq = f.Seq
			out.Frames++
			sinceDrop++
			sinceAck++
		}
		switch f.Type {
		case "hello":
			out.Faults = f.Links
			if f.Trace != "" {
				out.Trace = f.Trace
			}
			if len(f.Members) > 0 {
				out.Members = f.Members
			}
		case "fault":
			if f.Pushed {
				out.Pushed = append(out.Pushed, PushedFault{LinkIDs: f.LinkIDs, VTime: f.VTime})
			}
		case "report":
			if len(f.Members) > 0 {
				out.Members = f.Members
			}
			if opts.OnFrame != nil {
				opts.OnFrame(f)
			}
			if f.Aborted {
				return false, true, nil
			}
			out.Report = f.Report
			out.Err = f.Error
			return true, false, nil
		}
		if opts.OnFrame != nil && f.Type != "report" {
			opts.OnFrame(f)
		}
		if opts.AckEvery > 0 && sinceAck >= opts.AckEvery {
			sinceAck = 0
			c.ackSession(resp.Request.Context(), out.SessionID, *lastSeq)
		}
		if opts.DropEvery > 0 && sinceDrop >= opts.DropEvery {
			// Forced client-side disconnect (chaos hook).
			return false, false, nil
		}
	}
	return false, false, sc.Err()
}

// ackSession acknowledges frames up to seq (best effort).
func (c *Client) ackSession(ctx context.Context, id string, seq uint64) {
	b, _ := json.Marshal(ackBody{Seq: seq})
	r, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/transfer/"+id+"/ack", bytes.NewReader(b))
	if err != nil {
		return
	}
	r.Header.Set("Content-Type", "application/json")
	if resp, err := c.hc.Do(r); err == nil {
		resp.Body.Close()
	}
}

// Heartbeat keeps an unwatched session alive past the idle deadline.
func (c *Client) Heartbeat(ctx context.Context, id string) error {
	r, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/transfer/"+id+"/heartbeat", bytes.NewReader([]byte("{}")))
	if err != nil {
		return err
	}
	r.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(r)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: heartbeat %s: status %d", id, resp.StatusCode)
	}
	return nil
}

// TransferStatus fetches GET /v1/transfer/{id}.
func (c *Client) TransferStatus(ctx context.Context, id string) (SessionStatus, error) {
	r, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/transfer/"+id, nil)
	if err != nil {
		return SessionStatus{}, err
	}
	resp, err := c.hc.Do(r)
	if err != nil {
		return SessionStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return SessionStatus{}, fmt.Errorf("serve: session %s: status %d", id, resp.StatusCode)
	}
	var st SessionStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return SessionStatus{}, err
	}
	return st, nil
}
