package serve

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// planCache is a sharded, epoch-invalidated plan cache with
// singleflight-style request coalescing.
//
// Concurrency discipline (the same stamp-and-check epoch rule as
// routing.Cache.Invalidate, see DESIGN.md §8/§12):
//
//   - A computing request reads the epoch FIRST, then snapshots the
//     fault set, then computes; the entry is stamped with that pre-read
//     epoch.
//   - A fault event mutates the fault set FIRST, then bumps the epoch.
//   - A lookup only accepts an entry whose stamp equals the CURRENT
//     epoch.
//
// Together these guarantee no lost invalidation: any plan computed from
// a pre-event fault snapshot carries a pre-event stamp, and the bump
// makes every such entry invisible to post-event lookups. A request that
// raced the event may still receive the pre-event plan it asked for —
// that is the serializable outcome "request before fault" — but nothing
// computed against stale faults can be served after the bump.
type planCache struct {
	epoch    atomic.Uint64
	maxShard int
	shards   []cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

// cacheEntry is one cached (or in-flight) plan computation. ready is
// closed once val/err are final; waiters that find an unready entry are
// coalesced onto it instead of recomputing.
type cacheEntry struct {
	epoch uint64
	ready chan struct{}
	val   []byte
	err   error
}

// cacheOutcome says how a Do call was satisfied.
type cacheOutcome int

const (
	// outcomeComputed: this caller ran the computation.
	outcomeComputed cacheOutcome = iota
	// outcomeHit: a completed, epoch-valid entry was served.
	outcomeHit
	// outcomeCoalesced: the caller attached to an in-flight computation.
	outcomeCoalesced
)

func newPlanCache(shards, entriesPerShard int) *planCache {
	if shards < 1 {
		shards = 1
	}
	if entriesPerShard < 1 {
		entriesPerShard = 1
	}
	c := &planCache{maxShard: entriesPerShard, shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheEntry)
	}
	return c
}

// Epoch returns the current invalidation epoch.
func (c *planCache) Epoch() uint64 { return c.epoch.Load() }

// Invalidate bumps the epoch, atomically making every cached and
// in-flight entry invisible to subsequent lookups, and returns the new
// epoch. Entries are evicted lazily (on collision or shard overflow)
// rather than swept, so Invalidate is O(1) — the property that lets a
// fault event fire on the request path.
func (c *planCache) Invalidate() uint64 { return c.epoch.Add(1) }

func (c *planCache) shardFor(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[int(h.Sum32())%len(c.shards)]
}

// Do returns the plan for key, computing it at most once per epoch
// across concurrent callers. epoch must be the caller's pre-snapshot
// epoch read (see the type comment). Failed computations are not cached.
func (c *planCache) Do(key string, epoch uint64, compute func() ([]byte, error)) ([]byte, error, cacheOutcome) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok && e.epoch == c.epoch.Load() {
		sh.mu.Unlock()
		select {
		case <-e.ready:
			return e.val, e.err, outcomeHit
		default:
		}
		<-e.ready
		return e.val, e.err, outcomeCoalesced
	}
	e := &cacheEntry{epoch: epoch, ready: make(chan struct{})}
	if len(sh.m) >= c.maxShard {
		// Shard full: drop one entry, stale-epoch entries first. Eviction
		// never blocks waiters — they hold the entry pointer, not the map
		// slot.
		evicted := false
		cur := c.epoch.Load()
		for k, old := range sh.m {
			if old.epoch != cur {
				delete(sh.m, k)
				evicted = true
				break
			}
		}
		if !evicted {
			for k := range sh.m {
				delete(sh.m, k)
				break
			}
		}
	}
	sh.m[key] = e
	sh.mu.Unlock()

	e.val, e.err = compute()
	close(e.ready)
	if e.err != nil {
		// Do not cache failures (including load-shed computations): the
		// next request must be free to retry. Only remove the slot if it
		// is still ours — a newer epoch's entry may have replaced it.
		sh.mu.Lock()
		if sh.m[key] == e {
			delete(sh.m, key)
		}
		sh.mu.Unlock()
	}
	return e.val, e.err, outcomeComputed
}

// Len reports the number of resident entries across all shards (stale
// entries included until lazily evicted).
func (c *planCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}
