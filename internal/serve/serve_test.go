package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bgqflow/internal/check"
	"bgqflow/internal/core"
	"bgqflow/internal/netsim"
	"bgqflow/internal/scenario"
	"bgqflow/internal/serve"
	"bgqflow/internal/torus"
)

const testShape = "2x2x4x4x2" // the paper's 128-node midplane slice

// newTestDaemon runs an in-process daemon and returns a client for it.
func newTestDaemon(t *testing.T, cfg serve.Config) (*serve.Server, *serve.Client) {
	t.Helper()
	srv := serve.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	client, err := serve.NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	return srv, client
}

// directPairWire replicates the daemon's pair planning with a direct,
// single-threaded core planner call — the differential oracle for
// byte-identity.
func directPairWire(t *testing.T, req serve.PairRequest, faults []scenario.FailLink) (serve.PairPlan, core.PairPlan) {
	t.Helper()
	shape, err := torus.ParseShape(req.Shape)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := torus.New(shape)
	if err != nil {
		t.Fatal(err)
	}
	params := netsim.DefaultParams()
	net := netsim.NewNetwork(tor, params.LinkBandwidth)
	for _, fl := range faults {
		dir := torus.Plus
		if fl.Dir == -1 {
			dir = torus.Minus
		}
		net.FailLink(tor.LinkID(torus.NodeID(fl.Node), fl.Dim, dir))
	}
	e, err := netsim.NewEngine(net, params)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultProxyConfig()
	switch {
	case req.Proxies < 0:
		cfg.Threshold = 1 << 62
	case req.Proxies > 0:
		cfg.MaxProxies = req.Proxies
		cfg.MinProxies = 1
		cfg.Threshold = 0
	}
	pl, err := core.NewPairPlanner(tor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if net.HasFailures() {
		pl.SetFaults(net.FailedFunc())
	}
	plan, err := pl.PlanPair(e, torus.NodeID(req.Src), torus.NodeID(req.Dst), req.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return serve.PairWireFromPlan(e, plan, float64(mk)), plan
}

// TestE2EPairByteIdentical pins the tentpole determinism claim: the plan
// a concurrent daemon serves is byte-identical to a direct
// single-threaded planner call, across direct, default, and
// forced-proxy modes — and again when served from the cache.
func TestE2EPairByteIdentical(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{})
	ctx := context.Background()
	for _, req := range []serve.PairRequest{
		{Shape: testShape, Src: 0, Dst: 97, Bytes: 4 << 20, Proxies: 0},
		{Shape: testShape, Src: 0, Dst: 97, Bytes: 4 << 20, Proxies: -1},
		{Shape: testShape, Src: 3, Dst: 64, Bytes: 8 << 20, Proxies: 3},
	} {
		res, err := client.PlanPair(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("proxies=%d: status %d: %s", req.Proxies, res.Status, res.Err)
		}
		wantWire, corePlan := directPairWire(t, req, nil)
		want, err := json.Marshal(wantWire)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Plan, want) {
			t.Errorf("proxies=%d: served plan differs from direct planner call\nserved: %s\ndirect: %s",
				req.Proxies, res.Plan, want)
		}
		// Oracle: forced multi-proxy plans must use link-disjoint legs.
		if len(corePlan.Proxies) > 1 {
			if viols := check.CheckProxyDisjoint(corePlan.Proxies); len(viols) > 0 {
				t.Errorf("proxies=%d: %v", req.Proxies, viols)
			}
		}
		// The cached copy must be the same bytes.
		res2, err := client.PlanPair(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !res2.Cached {
			t.Errorf("proxies=%d: second identical request not served from cache", req.Proxies)
		}
		if !bytes.Equal(res2.Plan, res.Plan) {
			t.Errorf("proxies=%d: cached plan differs from computed plan", req.Proxies)
		}
	}
}

func TestE2EGroupByteIdentical(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{})
	req := serve.GroupRequest{
		Shape:     testShape,
		SrcOrigin: []int{0, 0, 0, 0, 0}, SrcExtent: []int{2, 2, 2, 1, 1},
		DstOrigin: []int{0, 0, 2, 2, 1}, DstExtent: []int{2, 2, 2, 1, 1},
		Bytes: 2 << 20,
	}
	res, err := client.PlanGroup(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("status %d: %s", res.Status, res.Err)
	}
	direct, err := serve.ComputeGroup(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)
	if !bytes.Equal(res.Plan, want) {
		t.Errorf("served group plan differs from direct computation\nserved: %s\ndirect: %s", res.Plan, want)
	}
	var gp serve.GroupPlan
	if err := json.Unmarshal(res.Plan, &gp); err != nil {
		t.Fatal(err)
	}
	if gp.PairCount == 0 || gp.Flows == 0 || gp.GBps <= 0 {
		t.Errorf("degenerate group plan: %+v", gp)
	}
}

func TestE2EAggByteIdenticalAndInterleaved(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{})
	req := serve.AggRequest{Shape: testShape, Workload: "pattern2", Seed: 7}
	res, err := client.PlanAgg(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("status %d: %s", res.Status, res.Err)
	}
	direct, err := serve.ComputeAgg(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)
	if !bytes.Equal(res.Plan, want) {
		t.Errorf("served agg plan differs from direct computation\nserved: %s\ndirect: %s", res.Plan, want)
	}
	var ap serve.AggPlan
	if err := json.Unmarshal(res.Plan, &ap); err != nil {
		t.Fatal(err)
	}
	if ap.TotalBytes <= 0 || ap.NumAggregators <= 0 || ap.GBps <= 0 {
		t.Fatalf("degenerate agg plan: %+v", ap)
	}
	// Oracle: the served aggregator list must satisfy the interleave
	// invariant (PR 4's CheckAggInterleave) — psets cycle, bridges
	// alternate.
	aggs := make([]core.Aggregator, len(ap.Aggregators))
	for i, w := range ap.Aggregators {
		aggs[i] = core.Aggregator{Node: torus.NodeID(w.Node), Pset: w.Pset, Bridge: w.Bridge}
	}
	numPsets := 1 // 128-node shape: one 128-node pset
	if viols := check.CheckAggInterleave(aggs, numPsets, 2); len(viols) > 0 {
		t.Errorf("served aggregators violate interleave: %v", viols)
	}
}

func TestE2ESimulateMatchesScenarioRun(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{})
	cfg := scenario.Config{
		Shape:    testShape,
		Transfer: &scenario.TransferConfig{Kind: "pair", Src: 0, Dst: 97, Bytes: 4 << 20},
	}
	res, err := client.Simulate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("status %d: %s", res.Status, res.Err)
	}
	var sr serve.SimResult
	if err := json.Unmarshal(res.Plan, &sr); err != nil {
		t.Fatal(err)
	}
	direct, err := scenario.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sr.GBps != direct.GBps || sr.MakespanMS != direct.MakespanMS || sr.Mode != direct.Mode {
		t.Errorf("served %+v != direct scenario.Run {gbps %v makespan %v mode %q}",
			sr, direct.GBps, direct.MakespanMS, direct.Mode)
	}
}

// TestE2EFaultInvalidation fails a link that the unfaulted plan uses and
// asserts the daemon's next answer routes around it under a new epoch.
func TestE2EFaultInvalidation(t *testing.T) {
	srv, client := newTestDaemon(t, serve.Config{})
	ctx := context.Background()
	req := serve.PairRequest{Shape: testShape, Src: 0, Dst: 97, Bytes: 4 << 20}

	res, err := client.PlanPair(ctx, req)
	if err != nil || !res.OK() {
		t.Fatalf("pre-fault plan: %v status %d", err, res.Status)
	}
	var pre serve.PairPlan
	if err := json.Unmarshal(res.Plan, &pre); err != nil {
		t.Fatal(err)
	}
	if len(pre.Flows) == 0 || len(pre.Flows[0].Links) == 0 {
		t.Fatalf("pre-fault plan has no routed flows: %+v", pre)
	}
	target := pre.Flows[0].Links[0]
	fl, ok := linkToFail(t, testShape, target)
	if !ok {
		t.Fatalf("cannot invert link id %d", target)
	}

	epoch, err := client.Fault(ctx, serve.FaultEvent{Links: []scenario.FailLink{fl}})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != srv.Epoch() || epoch == res.Epoch {
		t.Fatalf("fault epoch %d (server %d, pre-fault %d)", epoch, srv.Epoch(), res.Epoch)
	}

	res2, err := client.PlanPair(ctx, req)
	if err != nil || !res2.OK() {
		t.Fatalf("post-fault plan: %v status %d", err, res2.Status)
	}
	if res2.Cached || res2.Coalesced {
		t.Fatal("post-fault plan served from pre-fault cache")
	}
	if res2.Epoch != epoch {
		t.Fatalf("post-fault plan epoch %d, want %d", res2.Epoch, epoch)
	}
	var post serve.PairPlan
	if err := json.Unmarshal(res2.Plan, &post); err != nil {
		t.Fatal(err)
	}
	for _, f := range post.Flows {
		for _, l := range f.Links {
			if l == target {
				t.Fatalf("post-fault plan still uses failed link %d: %+v", target, post)
			}
		}
	}
	// Differential: the daemon's fault-aware plan equals a direct planner
	// call with the same fault set.
	wantWire, _ := directPairWire(t, req, []scenario.FailLink{fl})
	want, _ := json.Marshal(wantWire)
	if !bytes.Equal(res2.Plan, want) {
		t.Errorf("post-fault served plan differs from direct faulted planner call\nserved: %s\ndirect: %s", res2.Plan, want)
	}

	// Clear the fault: epoch bumps again, the original plan comes back.
	epoch2, err := client.Fault(ctx, serve.FaultEvent{Clear: true})
	if err != nil || epoch2 != epoch+1 {
		t.Fatalf("clear: %v epoch %d want %d", err, epoch2, epoch+1)
	}
	res3, err := client.PlanPair(ctx, req)
	if err != nil || !res3.OK() {
		t.Fatalf("post-clear plan: %v status %d", err, res3.Status)
	}
	if !bytes.Equal(res3.Plan, res.Plan) {
		t.Error("post-clear plan differs from the original unfaulted plan")
	}
}

// linkToFail inverts a netsim link ID into the (node, dim, dir) triple
// the fault API speaks, by scanning the torus.
func linkToFail(t *testing.T, shapeStr string, linkID int) (scenario.FailLink, bool) {
	t.Helper()
	shape, err := torus.ParseShape(shapeStr)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := torus.New(shape)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < tor.Size(); n++ {
		for d := 0; d < tor.Dims(); d++ {
			if tor.LinkID(torus.NodeID(n), d, torus.Plus) == linkID {
				return scenario.FailLink{Node: n, Dim: d, Dir: 1}, true
			}
			if tor.LinkID(torus.NodeID(n), d, torus.Minus) == linkID {
				return scenario.FailLink{Node: n, Dim: d, Dir: -1}, true
			}
		}
	}
	return scenario.FailLink{}, false
}

func TestE2EBadRequests(t *testing.T) {
	srv := serve.New(serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	post := func(path, body string) *http.Response {
		resp, err := http.Post(hs.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"bad shape", "/v1/plan/pair", `{"shape":"bogus","src":0,"dst":1,"bytes":1024}`, 400},
		{"src out of range", "/v1/plan/pair", `{"shape":"2x2x4x4x2","src":1000,"dst":1,"bytes":1024}`, 400},
		{"zero bytes", "/v1/plan/pair", `{"shape":"2x2x4x4x2","src":0,"dst":1,"bytes":0}`, 400},
		{"unknown field", "/v1/plan/pair", `{"shape":"2x2x4x4x2","src":0,"dst":1,"bytes":1,"nope":1}`, 400},
		{"malformed json", "/v1/plan/group", `{`, 400},
		{"bad workload", "/v1/plan/agg", `{"shape":"2x2x4x4x2","workload":"nope"}`, 400},
		{"bad box", "/v1/plan/group", `{"shape":"2x2x4x4x2","srcOrigin":[0],"srcExtent":[99],"dstOrigin":[0],"dstExtent":[1],"bytes":1}`, 400},
		{"bad fault dir", "/v1/fault", `{"links":[{"node":0,"dim":0,"dir":7}]}`, 400},
	}
	for _, c := range cases {
		if resp := post(c.path, c.body); resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	// Method mismatch: Go 1.22 mux pattern gives 405.
	resp, err := http.Get(hs.URL + "/v1/plan/pair")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET plan: status %d, want 405", resp.StatusCode)
	}
	// Errors must be 4xx, never 5xx — the soak's zero-5xx gate depends on
	// it — and each one must land in the error counter.
	if got := srv.Registry().Counter("serve/errors").Value(); got != int64(len(cases)) {
		t.Errorf("serve/errors = %d, want %d", got, len(cases))
	}
}

func TestE2EMetricsAndHealth(t *testing.T) {
	_, client := newTestDaemon(t, serve.Config{})
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		t.Fatal(err)
	}
	req := serve.PairRequest{Shape: testShape, Src: 0, Dst: 5, Bytes: 1 << 20}
	for i := 0; i < 3; i++ {
		if res, err := client.PlanPair(ctx, req); err != nil || !res.OK() {
			t.Fatalf("req %d: %v status %d", i, err, res.Status)
		}
	}
	snap, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["serve/requests"]; got != 3 {
		t.Errorf("serve/requests = %d, want 3", got)
	}
	if got := snap.Counters["serve/plans_computed"]; got != 1 {
		t.Errorf("serve/plans_computed = %d, want 1", got)
	}
	if got := snap.Counters["serve/cache_hits"]; got != 2 {
		t.Errorf("serve/cache_hits = %d, want 2", got)
	}
	if _, ok := snap.Histograms["serve/latency_ms/pair"]; !ok {
		t.Error("missing pair latency histogram")
	}
	if _, ok := snap.Gauges["serve/uptime_seconds"]; !ok {
		t.Error("missing uptime gauge")
	}
}

// TestE2EUnixSocket exercises the unix:// client path end to end.
func TestE2EUnixSocket(t *testing.T) {
	srv := serve.New(serve.Config{})
	defer srv.Close()
	sock := t.TempDir() + "/bgqd.sock"
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	client, err := serve.NewClient("unix://" + sock)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := client.PlanPair(context.Background(), serve.PairRequest{Shape: testShape, Src: 0, Dst: 1, Bytes: 1 << 20})
	if err != nil || !res.OK() {
		t.Fatalf("plan over unix socket: %v status %d", err, res.Status)
	}
}
