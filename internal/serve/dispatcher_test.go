package serve

import (
	"sync/atomic"
	"testing"
)

func TestDispatcherRunsJobs(t *testing.T) {
	d := newDispatcher(2, 8)
	var ran atomic.Int64
	done := make(chan struct{}, 16)
	for i := 0; i < 16; i++ {
		if !d.trySubmit(func() { ran.Add(1); done <- struct{}{} }) {
			// Queue momentarily full; that's the shed path, tested below.
			done <- struct{}{}
		}
	}
	for i := 0; i < 16; i++ {
		<-done
	}
	d.close()
	if ran.Load() == 0 {
		t.Fatal("no job ran")
	}
}

func TestDispatcherShedsWhenFull(t *testing.T) {
	d := newDispatcher(1, 1)
	defer d.close()
	started := make(chan struct{})
	release := make(chan struct{})
	if !d.trySubmit(func() { close(started); <-release }) {
		t.Fatal("first job refused")
	}
	<-started // worker is now pinned on the first job
	if !d.trySubmit(func() {}) {
		t.Fatal("second job refused with an empty queue slot")
	}
	// Worker busy, queue full: admission must refuse, not block.
	if d.trySubmit(func() {}) {
		t.Fatal("third job admitted with worker busy and queue full")
	}
	close(release)
}

func TestDispatcherCloseDrains(t *testing.T) {
	d := newDispatcher(1, 8)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		d.trySubmit(func() { ran.Add(1) })
	}
	d.close() // must wait for queued jobs
	if got := ran.Load(); got != 8 {
		t.Fatalf("close drained %d jobs, want 8", got)
	}
}
