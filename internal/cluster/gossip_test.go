package cluster

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"bgqflow/internal/scenario"
)

// buildMesh wires n in-process gossip nodes over one MemTransport.
func buildMesh(t testing.TB, n int, seed int64, loss float64) ([]*Node, *MemTransport) {
	t.Helper()
	tr := NewMemTransport(seed)
	tr.LossRate = loss
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("mem://%d", i)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		nodes[i] = NewNode(NodeConfig{
			ID:        fmt.Sprintf("r%d", i),
			Peers:     peers,
			Transport: tr,
			Seed:      seed + int64(i),
		}, NewLog())
		tr.Register(addrs[i], nodes[i])
	}
	return nodes, tr
}

func converged(nodes []*Node) bool {
	ref := nodes[0].Log().Digest()
	refFaults := nodes[0].Log().FaultSet()
	for _, n := range nodes[1:] {
		if !n.Log().Digest().Equal(ref) {
			return false
		}
		if !reflect.DeepEqual(n.Log().FaultSet(), refFaults) {
			return false
		}
	}
	return true
}

// TestGossipConvergenceLossy is the satellite-2 headline: 5 in-process
// replicas, seeded message loss AND in-flight event reorder, events
// originated at different replicas — every replica must reach the same
// fault-epoch vector (and identical fault set) within a bounded number
// of anti-entropy rounds.
func TestGossipConvergenceLossy(t *testing.T) {
	const (
		replicas  = 5
		maxRounds = 30
	)
	for _, seed := range []int64{1, 2, 3, 7, 1234} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			nodes, _ := buildMesh(t, replicas, seed, 0.4)
			ctx := context.Background()
			// Originate at three different replicas, including a clear in the
			// middle; the eager broadcast itself is lossy, so anti-entropy
			// rounds must repair.
			nodes[0].OriginateFault(ctx, []scenario.FailLink{fl(1)}, false)
			nodes[2].OriginateFault(ctx, []scenario.FailLink{fl(2), fl(3)}, false)
			nodes[4].OriginateFault(ctx, nil, true)
			nodes[1].OriginateFault(ctx, []scenario.FailLink{fl(4)}, false)

			rounds := 0
			for ; rounds < maxRounds && !converged(nodes); rounds++ {
				for _, n := range nodes {
					n.Round(ctx)
				}
			}
			if !converged(nodes) {
				for i, n := range nodes {
					t.Logf("node %d digest=%v faults=%v", i, n.Log().Digest(), n.Log().FaultSet())
				}
				t.Fatalf("no convergence after %d rounds at 40%% loss", maxRounds)
			}
			t.Logf("converged in %d rounds (digest %v)", rounds, nodes[0].Log().Digest())
			// All four origins visible.
			want := Vector{"r0": 1, "r2": 1, "r4": 1, "r1": 1}
			if got := nodes[3].Log().Digest(); !got.Equal(want) {
				t.Fatalf("digest = %v, want %v", got, want)
			}
		})
	}
}

// TestGossipBroadcastReliable: with a lossless transport, one
// OriginateFault reaches every peer synchronously — no rounds needed.
func TestGossipBroadcastReliable(t *testing.T) {
	nodes, _ := buildMesh(t, 5, 99, 0)
	nodes[2].OriginateFault(context.Background(), []scenario.FailLink{fl(5)}, false)
	if !converged(nodes) {
		t.Fatal("lossless broadcast did not reach all peers synchronously")
	}
}

// TestGossipPullRepairsLateJoiner: a node that missed everything (all
// its inbound messages lost) catches up by pulling — its own Round
// carries its stale digest out, and the push-pull reply returns the
// delta.
func TestGossipPullRepairsLateJoiner(t *testing.T) {
	nodes, tr := buildMesh(t, 3, 5, 0)
	ctx := context.Background()
	// Cut node 2 off during origination.
	tr.LossRate = 1.0
	nodes[0].OriginateFault(ctx, []scenario.FailLink{fl(1)}, false)
	nodes[1].OriginateFault(ctx, []scenario.FailLink{fl(2)}, false)
	if nodes[2].Log().EventsApplied() != 0 {
		t.Fatal("test setup: node 2 should have missed everything")
	}
	// Heal the network; node 2's own rounds must repair it. Node 0 and 1
	// also repair each other (their cross-broadcasts were lost too).
	tr.LossRate = 0
	for r := 0; r < 10 && !converged(nodes); r++ {
		for _, n := range nodes {
			n.Round(ctx)
		}
	}
	if !converged(nodes) {
		t.Fatalf("late joiner never caught up: digest=%v", nodes[2].Log().Digest())
	}
}

// TestGossipOnApplyOrderAndCount: OnApply fires exactly once per newly
// applied event, outside the log lock, in apply order — the serve layer
// relies on this for its faults-then-epoch-bump discipline.
func TestGossipOnApplyOrderAndCount(t *testing.T) {
	tr := NewMemTransport(1)
	var mu sync.Mutex
	var seen []string
	mk := func(id string, peers ...string) *Node {
		n := NewNode(NodeConfig{
			ID: id, Peers: peers, Transport: tr, Seed: 1,
			OnApply: func(evs []Event) {
				mu.Lock()
				defer mu.Unlock()
				for _, ev := range evs {
					seen = append(seen, fmt.Sprintf("%s:%s:%d", id, ev.Origin, ev.Seq))
				}
			},
		}, NewLog())
		tr.Register("mem://"+id, n)
		return n
	}
	a := mk("a", "mem://b")
	_ = mk("b", "mem://a")

	ctx := context.Background()
	a.OriginateFault(ctx, []scenario.FailLink{fl(1)}, false)
	a.OriginateFault(ctx, []scenario.FailLink{fl(2)}, false)
	a.Round(ctx)
	a.Round(ctx)

	mu.Lock()
	defer mu.Unlock()
	want := []string{"a:a:1", "b:a:1", "a:a:2", "b:a:2"}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("OnApply calls = %v, want %v (once per node per event, in order)", seen, want)
	}
}

// TestGossipConcurrentOriginateRace is the -race hammer: concurrent
// fault posts on different replicas, interleaved with anti-entropy
// rounds, over a lossy transport. Run with -race; the assertion is that
// after a quiesce phase every node converges and every per-origin
// sequence is gapless.
func TestGossipConcurrentOriginateRace(t *testing.T) {
	const (
		replicas = 5
		posts    = 20
	)
	nodes, tr := buildMesh(t, replicas, 77, 0.3)
	ctx := context.Background()

	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			for p := 0; p < posts; p++ {
				n.OriginateFault(ctx, []scenario.FailLink{fl(i*1000 + p)}, false)
				if p%5 == 4 {
					n.Round(ctx)
				}
			}
		}(i, n)
	}
	wg.Wait()

	// Quiesce: lossless rounds until converged.
	tr.LossRate = 0
	for r := 0; r < 50 && !converged(nodes); r++ {
		for _, n := range nodes {
			n.Round(ctx)
		}
	}
	if !converged(nodes) {
		t.Fatal("no convergence after concurrent originate storm")
	}
	want := Vector{}
	for i := 0; i < replicas; i++ {
		want[fmt.Sprintf("r%d", i)] = posts
	}
	if got := nodes[0].Log().Digest(); !got.Equal(want) {
		t.Fatalf("digest = %v, want %v (gapless %d posts per origin)", got, want, posts)
	}
	if got := len(nodes[0].Log().FaultSet()); got != replicas*posts {
		t.Fatalf("fault set has %d links, want %d", got, replicas*posts)
	}
}
