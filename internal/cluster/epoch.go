package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"bgqflow/internal/scenario"
)

// Event is one fault event as it travels the cluster: the replica that
// ingested it (Origin), that replica's per-origin sequence number (Seq,
// 1-based and gapless), a Lamport stamp assigned at origination (LT),
// and the payload — link failures to add, or Clear to reset the fault
// set (a repair).
//
// The triple (LT, Origin, Seq) is the canonical total order every
// replica replays events in. Because a replica only originates after
// applying everything it has seen, LT of a new event exceeds the LT of
// every event its originator knew about — so causally ordered events
// replay in causal order, and concurrent events tie-break on Origin
// deterministically.
type Event struct {
	Origin string              `json:"origin"`
	Seq    uint64              `json:"seq"`
	LT     uint64              `json:"lt"`
	Links  []scenario.FailLink `json:"links,omitempty"`
	Clear  bool                `json:"clear,omitempty"`
}

// Vector is a fault-epoch vector: for each origin, the highest gapless
// sequence number applied. Vector comparison is the cluster's staleness
// test — a replica may serve a request demanding vector V only if its
// own applied vector dominates V.
type Vector map[string]uint64

// Dominates reports whether v has applied at least everything o has.
func (v Vector) Dominates(o Vector) bool {
	for origin, seq := range o {
		if v[origin] < seq {
			return false
		}
	}
	return true
}

// Equal reports whether the vectors are identical (zero entries count
// as absent).
func (v Vector) Equal(o Vector) bool { return v.Dominates(o) && o.Dominates(v) }

// Merge raises v pointwise to max(v, o).
func (v Vector) Merge(o Vector) {
	for origin, seq := range o {
		if v[origin] < seq {
			v[origin] = seq
		}
	}
}

// Clone copies the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for k, s := range v {
		out[k] = s
	}
	return out
}

// String renders the vector in its canonical wire form:
// "origin:seq,origin:seq" sorted by origin, "" for the empty vector.
// The form rides in X-Bgq-Vector / X-Bgq-Min-Vector headers.
func (v Vector) String() string {
	if len(v) == 0 {
		return ""
	}
	origins := make([]string, 0, len(v))
	for o, s := range v {
		if s > 0 {
			origins = append(origins, o)
		}
	}
	sort.Strings(origins)
	var b strings.Builder
	for i, o := range origins {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(o)
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(v[o], 10))
	}
	return b.String()
}

// ParseVector parses the String form. "" is the empty vector.
func ParseVector(s string) (Vector, error) {
	v := Vector{}
	if s == "" {
		return v, nil
	}
	for _, part := range strings.Split(s, ",") {
		origin, seqStr, ok := strings.Cut(part, ":")
		if !ok || origin == "" {
			return nil, fmt.Errorf("cluster: bad vector entry %q", part)
		}
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad vector entry %q: %v", part, err)
		}
		if seq > v[origin] {
			v[origin] = seq
		}
	}
	return v, nil
}

// Log is a replica's fault-event store: the set of events it has
// applied, the vector summarizing them, and the effective fault set
// obtained by replaying the applied events in canonical (LT, Origin,
// Seq) order. Out-of-order arrivals (seq gaps) are buffered and applied
// once the gap fills, so the vector always describes a gapless prefix
// per origin. Safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	applied Vector
	pending map[string]map[uint64]Event
	events  []Event
	lt      uint64
	version uint64
	faults  []scenario.FailLink
}

// NewLog builds an empty log.
func NewLog() *Log {
	return &Log{applied: Vector{}, pending: make(map[string]map[uint64]Event)}
}

// Originate creates, stamps, and locally applies a new event at this
// replica. origin must be this replica's ID; the caller broadcasts the
// returned event to peers (gossip repairs any loss).
func (l *Log) Originate(origin string, links []scenario.FailLink, clear bool) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lt++
	ev := Event{
		Origin: origin,
		Seq:    l.applied[origin] + 1,
		LT:     l.lt,
		Links:  append([]scenario.FailLink(nil), links...),
		Clear:  clear,
	}
	l.applyLocked(ev)
	return ev
}

// Apply ingests remote events, returning the events newly applied (in
// apply order; buffered gap events resolve later). Duplicates and
// already-applied events are ignored, so Apply is idempotent.
func (l *Log) Apply(evs ...Event) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	before := len(l.events)
	for _, ev := range evs {
		if ev.Origin == "" || ev.Seq == 0 {
			continue
		}
		if ev.LT > l.lt {
			l.lt = ev.LT
		}
		if ev.Seq <= l.applied[ev.Origin] {
			continue
		}
		if l.pending[ev.Origin] == nil {
			l.pending[ev.Origin] = make(map[uint64]Event)
		}
		l.pending[ev.Origin][ev.Seq] = ev
		// Drain the gapless prefix.
		for {
			next, ok := l.pending[ev.Origin][l.applied[ev.Origin]+1]
			if !ok {
				break
			}
			delete(l.pending[ev.Origin], next.Seq)
			l.applyLocked(next)
		}
	}
	return append([]Event(nil), l.events[before:]...)
}

// applyLocked appends one gapless event and recomputes the fault set.
func (l *Log) applyLocked(ev Event) {
	l.applied[ev.Origin] = ev.Seq
	l.events = append(l.events, ev)
	l.version++
	l.replayLocked()
}

// replayLocked rebuilds the effective fault set by replaying every
// applied event in canonical order. Faults are rare and logs are short,
// so an O(events log events) rebuild per apply is far cheaper than the
// plan computations it gates.
func (l *Log) replayLocked() {
	ordered := append([]Event(nil), l.events...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.LT != b.LT {
			return a.LT < b.LT
		}
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		return a.Seq < b.Seq
	})
	var faults []scenario.FailLink
	for _, ev := range ordered {
		if ev.Clear {
			faults = faults[:0]
		}
		faults = append(faults, ev.Links...)
	}
	l.faults = faults
}

// Digest snapshots the applied vector.
func (l *Log) Digest() Vector {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.applied.Clone()
}

// Delta returns the applied events a peer holding vector `since` is
// missing, in this log's apply order.
func (l *Log) Delta(since Vector) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, ev := range l.events {
		if ev.Seq > since[ev.Origin] {
			out = append(out, ev)
		}
	}
	return out
}

// Snapshot returns (version, digest, fault set) read atomically — the
// serve layer uses it so its published vector never runs ahead of the
// fault set it vouches for.
func (l *Log) Snapshot() (uint64, Vector, []scenario.FailLink) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.version, l.applied.Clone(), append([]scenario.FailLink(nil), l.faults...)
}

// FaultSet returns the effective fault set (canonical replay order).
func (l *Log) FaultSet() []scenario.FailLink {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]scenario.FailLink(nil), l.faults...)
}

// Version is a local monotone counter bumped once per applied event —
// the hook a plan cache's epoch rides on.
func (l *Log) Version() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.version
}

// EventsApplied reports how many events this log has applied.
func (l *Log) EventsApplied() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}
