// Package cluster holds the machinery that turns N independent bgqd
// replicas into one plan-serving fleet (DESIGN.md §17):
//
//   - a consistent-hash Ring that assigns request keys to replicas with
//     bounded reshuffle on membership change (~K/N keys move when one of
//     N replicas joins or leaves, everything else stays put);
//   - a versioned fault-epoch Log: every fault event is stamped
//     (origin, seq, lamport) at the replica that ingests it, and every
//     replica replays the events it has applied in one canonical total
//     order, so two replicas holding the same event set hold the same
//     fault set — regardless of delivery order;
//   - a push-pull gossip Node that disseminates fault events
//     epidemically, with an in-memory transport for deterministic
//     loss/reorder testing and an HTTP transport provided by the serve
//     layer.
//
// The package deliberately knows nothing about HTTP or planning: serve
// owns the wire, cluster owns the membership and convergence math.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Member is one replica in the ring: a stable ID (the replica name
// request routing and reporting speak) and the address clients dial.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Ring is a consistent-hash ring over replica members. Each member owns
// Vnodes points on a 64-bit hash circle; a key is served by the member
// owning the first point at or clockwise of the key's hash. Safe for
// concurrent use: lookups take a read lock, membership changes a write
// lock.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	members map[string]Member
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

// DefaultVnodes is the per-member virtual-node count: enough points
// that a 3-replica ring splits keys within a few percent of evenly.
const DefaultVnodes = 64

// NewRing builds a ring with the given virtual-node count (0 means
// DefaultVnodes) and initial members.
func NewRing(vnodes int, members ...Member) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{vnodes: vnodes, members: make(map[string]Member)}
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	// fnv64a alone clusters for short, similar keys ("r3#0".."r3#63");
	// a splitmix64 finalizer spreads the points over the full circle.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts (or re-addresses) a member. Adding an existing ID only
// updates its address — the hash points are a function of the ID alone,
// so re-adding never moves keys.
func (r *Ring) Add(m Member) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[m.ID]; ok {
		r.members[m.ID] = m
		return
	}
	r.members[m.ID] = m
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hashKey(fmt.Sprintf("%s#%d", m.ID, v)), m.ID})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its points. Removing an unknown ID is a
// no-op.
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the membership sorted by ID.
func (r *Ring) Members() []Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the member owning key, or ok=false on an empty ring.
func (r *Ring) Lookup(key string) (Member, bool) {
	ms := r.Successors(key, 1)
	if len(ms) == 0 {
		return Member{}, false
	}
	return ms[0], true
}

// Successors returns up to n distinct members in ring order starting at
// the owner of key — the failover ladder: if the owner is down, the
// next distinct member clockwise takes the key, and so on.
func (r *Ring) Successors(key string, n int) []Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]Member, 0, n)
	seen := make(map[string]bool, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if seen[p.id] {
			continue
		}
		seen[p.id] = true
		out = append(out, r.members[p.id])
	}
	return out
}
