package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bgqflow/internal/scenario"
)

func fl(id int) scenario.FailLink {
	return scenario.FailLink{Node: id, Dim: id % 5, Dir: 1}
}

func TestVectorStringRoundTrip(t *testing.T) {
	cases := []Vector{
		{},
		{"a": 1},
		{"b": 2, "a": 7, "z": 1},
	}
	for _, v := range cases {
		s := v.String()
		back, err := ParseVector(s)
		if err != nil {
			t.Fatalf("ParseVector(%q): %v", s, err)
		}
		if !back.Equal(v) {
			t.Fatalf("round trip %v -> %q -> %v", v, s, back)
		}
	}
	if s := (Vector{"b": 2, "a": 7}).String(); s != "a:7,b:2" {
		t.Fatalf("canonical form = %q, want sorted by origin", s)
	}
	if _, err := ParseVector("nocolon"); err == nil {
		t.Fatal("ParseVector accepted a malformed entry")
	}
	if _, err := ParseVector("a:xyz"); err == nil {
		t.Fatal("ParseVector accepted a non-numeric seq")
	}
}

func TestVectorDominatesMerge(t *testing.T) {
	a := Vector{"x": 3, "y": 1}
	b := Vector{"x": 2}
	if !a.Dominates(b) {
		t.Fatal("a should dominate b")
	}
	if b.Dominates(a) {
		t.Fatal("b should not dominate a")
	}
	c := Vector{"x": 1, "z": 5}
	if a.Dominates(c) || c.Dominates(a) {
		t.Fatal("a and c are concurrent, neither should dominate")
	}
	b.Merge(a)
	b.Merge(c)
	want := Vector{"x": 3, "y": 1, "z": 5}
	if !b.Equal(want) {
		t.Fatalf("merge = %v, want %v", b, want)
	}
	if !(Vector{}).Dominates(Vector{}) {
		t.Fatal("empty must dominate empty")
	}
}

func TestLogOriginateAndApplyIdempotent(t *testing.T) {
	l := NewLog()
	ev1 := l.Originate("a", []scenario.FailLink{fl(1)}, false)
	ev2 := l.Originate("a", []scenario.FailLink{fl(2)}, false)
	if ev1.Seq != 1 || ev2.Seq != 2 {
		t.Fatalf("seqs = %d,%d want 1,2", ev1.Seq, ev2.Seq)
	}
	if ev2.LT <= ev1.LT {
		t.Fatalf("LT not monotone: %d then %d", ev1.LT, ev2.LT)
	}
	if got := l.Digest(); !got.Equal(Vector{"a": 2}) {
		t.Fatalf("digest = %v", got)
	}
	// Re-applying our own events changes nothing.
	if newly := l.Apply(ev1, ev2); len(newly) != 0 {
		t.Fatalf("idempotent apply returned %d new events", len(newly))
	}
	if l.EventsApplied() != 2 || l.Version() != 2 {
		t.Fatalf("events=%d version=%d", l.EventsApplied(), l.Version())
	}
	want := []scenario.FailLink{fl(1), fl(2)}
	if got := l.FaultSet(); !reflect.DeepEqual(got, want) {
		t.Fatalf("fault set = %v, want %v", got, want)
	}
}

func TestLogGapBuffering(t *testing.T) {
	src := NewLog()
	var evs []Event
	for i := 1; i <= 4; i++ {
		evs = append(evs, src.Originate("a", []scenario.FailLink{fl(i)}, false))
	}
	dst := NewLog()
	// Deliver seq 3 first: nothing applies (gap at 1..2).
	if newly := dst.Apply(evs[2]); len(newly) != 0 {
		t.Fatalf("gap event applied early: %v", newly)
	}
	if dst.EventsApplied() != 0 {
		t.Fatal("log applied past a gap")
	}
	// Deliver 1: applies 1 only.
	if newly := dst.Apply(evs[0]); len(newly) != 1 || newly[0].Seq != 1 {
		t.Fatalf("apply(1) = %v", newly)
	}
	// Deliver 2: drains the buffered 3 as well.
	newly := dst.Apply(evs[1])
	if len(newly) != 2 || newly[0].Seq != 2 || newly[1].Seq != 3 {
		t.Fatalf("apply(2) should drain 2,3; got %v", newly)
	}
	if newly := dst.Apply(evs[3]); len(newly) != 1 {
		t.Fatalf("apply(4) = %v", newly)
	}
	if !dst.Digest().Equal(src.Digest()) {
		t.Fatalf("digest %v != %v", dst.Digest(), src.Digest())
	}
	if !reflect.DeepEqual(dst.FaultSet(), src.FaultSet()) {
		t.Fatal("fault sets diverge after gap-buffered delivery")
	}
}

// TestLogConvergenceUnderPermutedDelivery is the heart of the epoch
// design: any two replicas that apply the same event set hold the same
// fault set, no matter the delivery order — including Clear events,
// where replay order would otherwise matter enormously.
func TestLogConvergenceUnderPermutedDelivery(t *testing.T) {
	// Three origins, interleaved adds and a clear, stamped via real logs
	// gossiping so LTs are causally meaningful.
	a, b, c := NewLog(), NewLog(), NewLog()
	var all []Event
	step := func(l *Log, links []scenario.FailLink, clear bool, origin string) {
		// Simulate "applied everything so far" before originating, as a
		// replica that honors min-vector ordering would.
		l.Apply(all...)
		all = append(all, l.Originate(origin, links, clear))
	}
	step(a, []scenario.FailLink{fl(1)}, false, "a")
	step(b, []scenario.FailLink{fl(2), fl(3)}, false, "b")
	step(c, nil, true, "c") // clear
	step(a, []scenario.FailLink{fl(4)}, false, "a")
	step(b, []scenario.FailLink{fl(5)}, false, "b")

	ref := NewLog()
	ref.Apply(all...)
	want := ref.FaultSet()
	if len(want) == 0 {
		t.Fatal("reference fault set empty; test is vacuous")
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(all))
		l := NewLog()
		for _, i := range perm {
			l.Apply(all[i])
		}
		if !l.Digest().Equal(ref.Digest()) {
			t.Fatalf("trial %d: digest %v != %v", trial, l.Digest(), ref.Digest())
		}
		if got := l.FaultSet(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (perm %v): fault set %v != %v", trial, perm, got, want)
		}
	}
}

func TestLogDelta(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 3; i++ {
		l.Originate("a", []scenario.FailLink{fl(i)}, false)
	}
	l.Apply(Event{Origin: "b", Seq: 1, LT: 9, Links: []scenario.FailLink{fl(9)}})

	d := l.Delta(Vector{"a": 2})
	// Missing: a:3 and b:1.
	if len(d) != 2 {
		t.Fatalf("delta = %v, want 2 events", d)
	}
	for _, ev := range d {
		if ev.Origin == "a" && ev.Seq != 3 {
			t.Fatalf("delta included already-held a:%d", ev.Seq)
		}
	}
	if d := l.Delta(l.Digest()); len(d) != 0 {
		t.Fatalf("delta vs own digest = %v, want empty", d)
	}
}

func TestLogClearResetsFaults(t *testing.T) {
	l := NewLog()
	l.Originate("a", []scenario.FailLink{fl(1), fl(2)}, false)
	l.Originate("a", nil, true)
	if got := l.FaultSet(); len(got) != 0 {
		t.Fatalf("fault set after clear = %v, want empty", got)
	}
	l.Originate("a", []scenario.FailLink{fl(7)}, false)
	if got := l.FaultSet(); len(got) != 1 || got[0] != fl(7) {
		t.Fatalf("fault set after clear+add = %v", got)
	}
}

func TestLogApplyRejectsMalformed(t *testing.T) {
	l := NewLog()
	if newly := l.Apply(Event{Origin: "", Seq: 1}, Event{Origin: "a", Seq: 0}); len(newly) != 0 {
		t.Fatalf("malformed events applied: %v", newly)
	}
	if l.EventsApplied() != 0 {
		t.Fatal("malformed events counted")
	}
}

func BenchmarkLogApply(b *testing.B) {
	src := NewLog()
	evs := make([]Event, 64)
	for i := range evs {
		evs[i] = src.Originate("a", []scenario.FailLink{fl(i)}, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := NewLog()
		l.Apply(evs...)
	}
}

func ExampleVector_String() {
	v := Vector{"replica-b": 2, "replica-a": 7}
	fmt.Println(v.String())
	// Output: replica-a:7,replica-b:2
}
