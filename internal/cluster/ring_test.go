package cluster

import (
	"fmt"
	"testing"
)

func testMembers(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{ID: fmt.Sprintf("r%d", i), Addr: fmt.Sprintf("addr-%d", i)}
	}
	return out
}

func assignments(r *Ring, keys int) map[string]string {
	out := make(map[string]string, keys)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		m, ok := r.Lookup(key)
		if !ok {
			panic("empty ring")
		}
		out[key] = m.ID
	}
	return out
}

// TestRingBalance: with vnodes, a 3-member ring splits keys roughly
// evenly — no member owns more than half or less than a sixth of the
// keyspace (generous bounds; fnv with 64 vnodes lands near 1/3 each).
func TestRingBalance(t *testing.T) {
	r := NewRing(0, testMembers(3)...)
	counts := map[string]int{}
	const keys = 3000
	for k, id := range assignments(r, keys) {
		_ = k
		counts[id]++
	}
	for id, c := range counts {
		share := float64(c) / keys
		if share < 1.0/6 || share > 0.5 {
			t.Errorf("member %s owns %.1f%% of keys (want roughly a third)", id, share*100)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d members own keys", len(counts))
	}
}

// TestRingReshuffleOnJoin pins the consistent-hash contract: adding a
// 4th member to a 3-member ring moves roughly K/N keys — every moved
// key moves TO the new member, and no key moves between old members.
func TestRingReshuffleOnJoin(t *testing.T) {
	r := NewRing(0, testMembers(3)...)
	const keys = 2000
	before := assignments(r, keys)
	r.Add(Member{ID: "r3", Addr: "addr-3"})
	after := assignments(r, keys)

	moved := 0
	for key, old := range before {
		now := after[key]
		if now == old {
			continue
		}
		moved++
		if now != "r3" {
			t.Fatalf("key %s moved %s -> %s, but only the new member r3 may gain keys on join", key, old, now)
		}
	}
	// Expect ~1/4 of keys to move; allow [10%, 45%].
	share := float64(moved) / keys
	if share < 0.10 || share > 0.45 {
		t.Errorf("join moved %.1f%% of keys, want ~25%%", share*100)
	}
}

// TestRingReshuffleOnLeave: removing a member moves exactly that
// member's keys, distributed over the survivors; every other key keeps
// its assignment.
func TestRingReshuffleOnLeave(t *testing.T) {
	r := NewRing(0, testMembers(3)...)
	const keys = 2000
	before := assignments(r, keys)
	r.Remove("r1")
	after := assignments(r, keys)

	for key, old := range before {
		now := after[key]
		if old == "r1" {
			if now == "r1" {
				t.Fatalf("key %s still assigned to removed member", key)
			}
			continue
		}
		if now != old {
			t.Fatalf("key %s moved %s -> %s although its owner never left", key, old, now)
		}
	}
}

// TestRingRejoinRestoresAssignment: a leave followed by a re-join of
// the same ID restores the original assignment exactly — hash points
// are a function of the ID alone.
func TestRingRejoinRestoresAssignment(t *testing.T) {
	r := NewRing(0, testMembers(3)...)
	const keys = 500
	before := assignments(r, keys)
	r.Remove("r2")
	r.Add(Member{ID: "r2", Addr: "addr-2b"})
	after := assignments(r, keys)
	for key, old := range before {
		if after[key] != old {
			t.Fatalf("key %s: %s -> %s after leave+rejoin", key, old, after[key])
		}
	}
}

// TestRingSuccessors: the failover ladder starts at the owner, yields
// distinct members, and never exceeds the membership.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(0, testMembers(3)...)
	for k := 0; k < 100; k++ {
		key := fmt.Sprintf("s-%d", k)
		owner, _ := r.Lookup(key)
		succ := r.Successors(key, 5)
		if len(succ) != 3 {
			t.Fatalf("key %s: %d successors, want 3", key, len(succ))
		}
		if succ[0].ID != owner.ID {
			t.Fatalf("key %s: ladder starts at %s, owner is %s", key, succ[0].ID, owner.ID)
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m.ID] {
				t.Fatalf("key %s: duplicate member %s in ladder", key, m.ID)
			}
			seen[m.ID] = true
		}
	}
	if got := NewRing(0).Successors("x", 2); got != nil {
		t.Fatalf("empty ring returned successors %v", got)
	}
}

// TestRingDeterministic: two rings built from the same members agree on
// every key (routing must be identical on every client).
func TestRingDeterministic(t *testing.T) {
	a := NewRing(0, testMembers(4)...)
	b := NewRing(0, testMembers(4)...)
	for k := 0; k < 500; k++ {
		key := fmt.Sprintf("d-%d", k)
		ma, _ := a.Lookup(key)
		mb, _ := b.Lookup(key)
		if ma.ID != mb.ID {
			t.Fatalf("key %s: ring A says %s, ring B says %s", key, ma.ID, mb.ID)
		}
	}
}
