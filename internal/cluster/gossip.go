package cluster

import (
	"context"
	"math/rand"
	"sync"

	"bgqflow/internal/scenario"
)

// Message is one gossip exchange payload: the sender's applied vector
// plus any events it believes the receiver is missing. The receiver
// applies the events and answers with its own vector and the events the
// sender's digest shows IT is missing — one request/response is a full
// push-pull.
type Message struct {
	From   string  `json:"from"`
	Digest Vector  `json:"digest"`
	Events []Event `json:"events,omitempty"`
}

// Transport carries one gossip exchange to a peer address and returns
// the peer's response. Implementations: the serve layer's HTTP
// transport (POST /v1/gossip) and the in-memory MemTransport below.
type Transport interface {
	Exchange(ctx context.Context, peerAddr string, msg Message) (Message, error)
}

// NodeConfig configures a gossip node.
type NodeConfig struct {
	// ID is this replica's origin ID.
	ID string
	// Peers are the other replicas' transport addresses.
	Peers []string
	// Fanout is how many peers each Round contacts; 0 means min(2, len).
	Fanout int
	// Transport carries exchanges; required.
	Transport Transport
	// Seed fixes peer selection, making test rounds deterministic.
	Seed int64
	// OnApply, when set, runs after events are newly applied (outside the
	// log lock), in apply order — the serve layer's hook for fault-set
	// rebuild, cache-epoch bump, and session fault push.
	OnApply func(evs []Event)
}

// Node ties a Log to a Transport: it answers inbound exchanges
// (HandleMessage), runs periodic anti-entropy rounds (Round), and
// eagerly pushes newly originated events (Originate). Safe for
// concurrent use.
type Node struct {
	cfg NodeConfig
	log *Log

	mu  sync.Mutex
	rng *rand.Rand
}

// NewNode builds a gossip node over the given log.
func NewNode(cfg NodeConfig, log *Log) *Node {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
		if len(cfg.Peers) < 2 {
			cfg.Fanout = len(cfg.Peers)
		}
	}
	return &Node{cfg: cfg, log: log, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// ID returns the node's origin ID.
func (n *Node) ID() string { return n.cfg.ID }

// Log returns the node's fault-event log.
func (n *Node) Log() *Log { return n.log }

// Peers returns the configured peer addresses.
func (n *Node) Peers() []string { return append([]string(nil), n.cfg.Peers...) }

// apply ingests events and fires OnApply for any that were new.
func (n *Node) apply(evs []Event) {
	if len(evs) == 0 {
		return
	}
	newly := n.log.Apply(evs...)
	if len(newly) > 0 && n.cfg.OnApply != nil {
		n.cfg.OnApply(newly)
	}
}

// HandleMessage is the receiver half of an exchange: apply what the
// sender pushed, then answer with our vector and whatever the sender's
// digest says it lacks.
func (n *Node) HandleMessage(msg Message) Message {
	n.apply(msg.Events)
	return Message{
		From:   n.cfg.ID,
		Digest: n.log.Digest(),
		Events: n.log.Delta(msg.Digest),
	}
}

// OriginateFault stamps and applies a new local fault event, fires
// OnApply for it, then eagerly pushes it to every peer (best effort —
// gossip rounds repair losses). The push is synchronous so a client
// that POSTs a fault and then plans against another replica usually
// finds the event already there; the vector staleness check covers the
// window where it is not.
func (n *Node) OriginateFault(ctx context.Context, links []scenario.FailLink, clear bool) Event {
	ev := n.log.Originate(n.cfg.ID, links, clear)
	if n.cfg.OnApply != nil {
		n.cfg.OnApply([]Event{ev})
	}
	n.Broadcast(ctx, []Event{ev})
	return ev
}

// exchange runs one push-pull with a peer and applies whatever comes
// back. Errors are dropped — a dead peer is simply not gossiped with
// this round.
func (n *Node) exchange(ctx context.Context, peer string, events []Event) {
	msg := Message{From: n.cfg.ID, Digest: n.log.Digest(), Events: events}
	resp, err := n.cfg.Transport.Exchange(ctx, peer, msg)
	if err != nil {
		return
	}
	n.apply(resp.Events)
	// If the peer is behind us beyond what we pushed, send the rest.
	if delta := n.log.Delta(resp.Digest); len(delta) > 0 {
		push := Message{From: n.cfg.ID, Digest: n.log.Digest(), Events: delta}
		if resp2, err := n.cfg.Transport.Exchange(ctx, peer, push); err == nil {
			n.apply(resp2.Events)
		}
	}
}

// Broadcast pushes events to every peer (used right after Originate).
func (n *Node) Broadcast(ctx context.Context, events []Event) {
	for _, peer := range n.cfg.Peers {
		n.exchange(ctx, peer, events)
	}
}

// Round runs one anti-entropy round: push-pull with Fanout peers chosen
// by the seeded rng.
func (n *Node) Round(ctx context.Context) {
	peers := n.pickPeers()
	for _, peer := range peers {
		n.exchange(ctx, peer, nil)
	}
}

func (n *Node) pickPeers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := n.cfg.Fanout
	if k > len(n.cfg.Peers) {
		k = len(n.cfg.Peers)
	}
	if k == 0 {
		return nil
	}
	idx := n.rng.Perm(len(n.cfg.Peers))[:k]
	out := make([]string, k)
	for i, j := range idx {
		out[i] = n.cfg.Peers[j]
	}
	return out
}

// MemTransport is an in-process transport for deterministic gossip
// tests: it routes exchanges straight to registered nodes, drops
// messages with seeded probability LossRate (request and response
// independently), and shuffles event slices in flight (seeded reorder —
// harmless to a correct log, fatal to one that assumes ordered
// delivery). Safe for concurrent use.
type MemTransport struct {
	mu       sync.Mutex
	nodes    map[string]*Node
	rng      *rand.Rand
	LossRate float64
}

// NewMemTransport builds a transport with the given seed.
func NewMemTransport(seed int64) *MemTransport {
	return &MemTransport{nodes: make(map[string]*Node), rng: rand.New(rand.NewSource(seed))}
}

// Register attaches a node at an address.
func (t *MemTransport) Register(addr string, n *Node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[addr] = n
}

// errLost is returned for dropped messages.
type errLost struct{}

func (errLost) Error() string { return "cluster: message lost" }

// mangle applies seeded loss/reorder to a message in flight.
func (t *MemTransport) mangle(msg Message) (Message, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.LossRate > 0 && t.rng.Float64() < t.LossRate {
		return Message{}, false
	}
	if len(msg.Events) > 1 {
		evs := append([]Event(nil), msg.Events...)
		t.rng.Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
		msg.Events = evs
	}
	return msg, true
}

// Exchange implements Transport.
func (t *MemTransport) Exchange(_ context.Context, peerAddr string, msg Message) (Message, error) {
	t.mu.Lock()
	peer := t.nodes[peerAddr]
	t.mu.Unlock()
	if peer == nil {
		return Message{}, errLost{}
	}
	req, ok := t.mangle(msg)
	if !ok {
		return Message{}, errLost{}
	}
	resp := peer.HandleMessage(req)
	out, ok := t.mangle(resp)
	if !ok {
		return Message{}, errLost{}
	}
	return out, nil
}
