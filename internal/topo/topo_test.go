package topo

import (
	"strings"
	"testing"

	"bgqflow/internal/torus"
)

// testTopologies builds one instance of every family for the generic
// suites.
func testTopologies(t *testing.T) []Topology {
	t.Helper()
	specs := []string{
		"torus:2x2x4",
		"torus:2x3x2x2",
		"dragonfly:4x4",
		"dragonfly:6x4x2",
		"fattree:8x4",
		"fattree:16x4x2",
	}
	tops := make([]Topology, 0, len(specs))
	for _, s := range specs {
		tp, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if tp.Spec() != canonical(s) {
			t.Fatalf("Parse(%q).Spec() = %q, want %q", s, tp.Spec(), canonical(s))
		}
		tops = append(tops, tp)
	}
	return tops
}

// canonical expands the optional rails suffix.
func canonical(spec string) string {
	switch spec {
	case "dragonfly:4x4":
		return "dragonfly:4x4x1"
	case "fattree:8x4":
		return "fattree:8x4x1"
	}
	return spec
}

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"", "torus", "2x2x4", "torus:", "torus:0x2", "torus:2xhi",
		"dragonfly:4", "dragonfly:1x4", "dragonfly:4x1", "dragonfly:4x4x0",
		"dragonfly:4x4x2x2", "fattree:4", "fattree:1x2", "fattree:4x0",
		"fattree:4x4x0", "mesh:2x2",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) must fail", s)
		}
	}
}

// Every topology's links must be densely numbered, positively
// capacitated, and printable.
func TestLinkSpaceDense(t *testing.T) {
	for _, tp := range testTopologies(t) {
		if tp.NumNodes() < 2 || tp.NumLinks() < 1 {
			t.Fatalf("%s: degenerate sizes %d/%d", tp.Spec(), tp.NumNodes(), tp.NumLinks())
		}
		for l := 0; l < tp.NumLinks(); l++ {
			if c := tp.LinkCapacity(l); c < 1 {
				t.Fatalf("%s: link %d capacity %g < 1", tp.Spec(), l, c)
			}
			if tp.LinkString(l) == "" {
				t.Fatalf("%s: link %d has no diagnostic name", tp.Spec(), l)
			}
		}
	}
}

// Routes must be deterministic, stay inside the link ID space, visit no
// link twice, and be empty exactly for self-routes.
func TestRoutesWellFormed(t *testing.T) {
	for _, tp := range testTopologies(t) {
		n := tp.NumNodes()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				r := tp.Route(torus.NodeID(src), torus.NodeID(dst))
				if src == dst {
					if len(r) != 0 {
						t.Fatalf("%s: self-route %d has %d links", tp.Spec(), src, len(r))
					}
					continue
				}
				if len(r) == 0 {
					t.Fatalf("%s: route %d->%d is empty", tp.Spec(), src, dst)
				}
				seen := make(map[int]bool, len(r))
				for _, l := range r {
					if l < 0 || l >= tp.NumLinks() {
						t.Fatalf("%s: route %d->%d uses link %d outside [0,%d)", tp.Spec(), src, dst, l, tp.NumLinks())
					}
					if seen[l] {
						t.Fatalf("%s: route %d->%d repeats link %d", tp.Spec(), src, dst, l)
					}
					seen[l] = true
				}
				again := tp.Route(torus.NodeID(src), torus.NodeID(dst))
				if len(again) != len(r) {
					t.Fatalf("%s: route %d->%d not deterministic", tp.Spec(), src, dst)
				}
				for i := range r {
					if again[i] != r[i] {
						t.Fatalf("%s: route %d->%d not deterministic at hop %d", tp.Spec(), src, dst, i)
					}
				}
			}
		}
	}
}

// Route continuity, checked with per-family structural knowledge: each
// consecutive link pair must chain through a shared switch/router.
func TestDragonflyRouteContinuity(t *testing.T) {
	d, err := NewDragonfly(6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Decode a link into (fromNode, toNode) in router coordinates; for
	// globals those are the gateway routers.
	ends := func(id int) (from, to int) {
		if id < d.localN {
			g := id / (d.size * (d.size - 1))
			rem := id % (d.size * (d.size - 1))
			i := rem / (d.size - 1)
			j := rem % (d.size - 1)
			if j >= i {
				j++
			}
			return g*d.size + i, g*d.size + j
		}
		rem := id - d.localN
		gi := rem / (d.groups - 1)
		gj := rem % (d.groups - 1)
		if gj >= gi {
			gj++
		}
		return gi*d.size + d.gatewayOut(gi, gj), gj*d.size + d.gatewayIn(gi, gj)
	}
	for src := 0; src < d.NumNodes(); src++ {
		for dst := 0; dst < d.NumNodes(); dst++ {
			r := d.Route(torus.NodeID(src), torus.NodeID(dst))
			if src == dst {
				continue
			}
			if len(r) > 3 {
				t.Fatalf("dragonfly route %d->%d has %d hops, want <= 3", src, dst, len(r))
			}
			cur := src
			for _, l := range r {
				from, to := ends(l)
				if from != cur {
					t.Fatalf("dragonfly route %d->%d: link %s starts at %d, want %d", src, dst, d.LinkString(l), from, cur)
				}
				cur = to
			}
			if cur != dst {
				t.Fatalf("dragonfly route %d->%d ends at %d", src, dst, cur)
			}
		}
	}
}

func TestFatTreeRouteContinuity(t *testing.T) {
	ft, err := NewFatTree(16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < ft.NumNodes(); src++ {
		for dst := 0; dst < ft.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			r := ft.Route(torus.NodeID(src), torus.NodeID(dst))
			if len(r) != 2 {
				t.Fatalf("fattree route %d->%d has %d hops, want 2", src, dst, len(r))
			}
			upLeaf, upSpine := r[0]/ft.spines, r[0]%ft.spines
			downSpine := (r[1] - ft.leaves*ft.spines) / ft.leaves
			downLeaf := (r[1] - ft.leaves*ft.spines) % ft.leaves
			if upLeaf != src || downLeaf != dst || upSpine != downSpine {
				t.Fatalf("fattree route %d->%d chains %d^%d then %d_v%d", src, dst, upLeaf, upSpine, downSpine, downLeaf)
			}
		}
	}
}

// The torus adapter must agree with the raw torus/routing primitives:
// identical link space and identical deterministic routes.
func TestTorusAdapterMatchesTorus(t *testing.T) {
	tor, err := torus.New([]int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	tt := NewTorus(tor)
	if tt.NumNodes() != tor.Size() || tt.NumLinks() != tor.NumTorusLinks() {
		t.Fatalf("adapter sizes %d/%d, want %d/%d", tt.NumNodes(), tt.NumLinks(), tor.Size(), tor.NumTorusLinks())
	}
	if tt.Spec() != "torus:2x3x4" {
		t.Fatalf("Spec = %q", tt.Spec())
	}
	for l := 0; l < tt.NumLinks(); l++ {
		if tt.LinkString(l) != tor.LinkString(l) {
			t.Fatalf("link %d renders %q, want %q", l, tt.LinkString(l), tor.LinkString(l))
		}
	}
}

// NodeLinks must cover exactly the links whose removal isolates the node:
// every route in or out of n must traverse at least one of them, and each
// listed link must be unique and in range.
func TestNodeLinksCoverRoutes(t *testing.T) {
	for _, tp := range testTopologies(t) {
		n := tp.NumNodes()
		for node := 0; node < n; node++ {
			nl := tp.NodeLinks(torus.NodeID(node))
			if len(nl) == 0 {
				t.Fatalf("%s: node %d has no links", tp.Spec(), node)
			}
			owned := make(map[int]bool, len(nl))
			for _, l := range nl {
				if l < 0 || l >= tp.NumLinks() {
					t.Fatalf("%s: node %d link %d out of range", tp.Spec(), node, l)
				}
				if owned[l] {
					t.Fatalf("%s: node %d lists link %d twice", tp.Spec(), node, l)
				}
				owned[l] = true
			}
			for other := 0; other < n; other++ {
				if other == node {
					continue
				}
				for _, r := range [][]int{
					tp.Route(torus.NodeID(node), torus.NodeID(other)),
					tp.Route(torus.NodeID(other), torus.NodeID(node)),
				} {
					hit := false
					for _, l := range r {
						if owned[l] {
							hit = true
							break
						}
					}
					if !hit {
						t.Fatalf("%s: route touching node %d avoids all its NodeLinks", tp.Spec(), node)
					}
				}
			}
		}
	}
}

func TestMultiRailCapacity(t *testing.T) {
	d, err := NewDragonfly(6, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c := d.LinkCapacity(0); c != 1 {
		t.Fatalf("dragonfly local rail count = %g, want 1", c)
	}
	if c := d.LinkCapacity(d.localN); c != 2 {
		t.Fatalf("dragonfly global rail count = %g, want 2", c)
	}
	ft, err := NewFatTree(8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{0, ft.NumLinks() - 1} {
		if c := ft.LinkCapacity(l); c != 3 {
			t.Fatalf("fattree link %d rail count = %g, want 3", l, c)
		}
	}
}

func TestCostModels(t *testing.T) {
	base := Uniform{PerFlow: 100, LocalCopy: 1000, Sender: 1e-6, Receiver: 2e-6, Forward: 3e-6, Hop: 4e-9}

	cm, err := ParseCostModel("", base)
	if err != nil || cm.Name() != "uniform" {
		t.Fatalf("empty spec: %v %v", cm, err)
	}
	if cm.PerFlowRate(0, 1) != 100 || cm.SenderOverhead(3) != 1e-6 || cm.HopLatency() != 4e-9 {
		t.Fatalf("uniform model does not pass through base constants")
	}

	cm, err = ParseCostModel("hetero:4", base)
	if err != nil {
		t.Fatal(err)
	}
	h := cm.(Hetero)
	if !h.GPU(0) || !h.GPU(4) || h.GPU(1) {
		t.Fatalf("tier assignment wrong: %v %v %v", h.GPU(0), h.GPU(4), h.GPU(1))
	}
	// GPU->GPU runs at the scaled rate; mixed pairs fall to the CPU rate.
	if got := cm.PerFlowRate(0, 4); got != 100*heteroRateScale {
		t.Fatalf("GPU->GPU rate = %g", got)
	}
	if got := cm.PerFlowRate(0, 1); got != 100 {
		t.Fatalf("GPU->CPU rate = %g, want CPU-bound 100", got)
	}
	if got := cm.SenderOverhead(4); got != 1e-6*heteroOverheadScale {
		t.Fatalf("GPU sender overhead = %g", got)
	}
	if got := cm.ReceiverOverhead(1); got != 2e-6 {
		t.Fatalf("CPU receiver overhead = %g", got)
	}
	if cm.Spec() != "hetero:4" {
		t.Fatalf("Spec = %q", cm.Spec())
	}

	for _, bad := range []string{"hetero:", "hetero:0", "hetero:x", "gpu:2"} {
		if _, err := ParseCostModel(bad, base); err == nil {
			t.Errorf("ParseCostModel(%q) must fail", bad)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, tp := range testTopologies(t) {
		again, err := Parse(tp.Spec())
		if err != nil {
			t.Fatalf("Parse(%q): %v", tp.Spec(), err)
		}
		if again.Spec() != tp.Spec() || again.NumNodes() != tp.NumNodes() || again.NumLinks() != tp.NumLinks() {
			t.Fatalf("round trip of %q changed the topology", tp.Spec())
		}
		if !strings.HasPrefix(tp.Spec(), tp.Kind()+":") {
			t.Fatalf("Spec %q does not start with kind %q", tp.Spec(), tp.Kind())
		}
	}
}
