package topo

import (
	"bgqflow/internal/routing"
	"bgqflow/internal/torus"
)

// TorusTopo adapts a *torus.Torus (the BG/Q 5D fabric) to the Topology
// interface. Link IDs, routes, and node-link enumeration order are
// exactly those of torus.LinkID / routing.DeterministicRoute /
// netsim.Network.NodeLinks, so a torus-backed engine behaves
// byte-identically whether it is built from the torus or the adapter.
type TorusTopo struct {
	t *torus.Torus
}

// NewTorus wraps t.
func NewTorus(t *torus.Torus) *TorusTopo { return &TorusTopo{t: t} }

// Torus exposes the wrapped torus for callers that need the full
// torus-specific API (planners, fault campaigns, zone routing).
func (tt *TorusTopo) Torus() *torus.Torus { return tt.t }

// Kind returns "torus".
func (tt *TorusTopo) Kind() string { return "torus" }

// Spec renders "torus:2x2x4x4x2".
func (tt *TorusTopo) Spec() string { return "torus:" + tt.t.Shape().String() }

// NumNodes reports the partition size.
func (tt *TorusTopo) NumNodes() int { return tt.t.Size() }

// NumLinks reports the number of directed torus links.
func (tt *TorusTopo) NumLinks() int { return tt.t.NumTorusLinks() }

// LinkCapacity is 1.0 for every torus link: the BG/Q torus is single-rail
// at the fabric's base bandwidth.
func (tt *TorusTopo) LinkCapacity(id int) float64 { return 1.0 }

// Route is the BG/Q default deterministic route: dimension-ordered,
// longest extent first, minimal way around each ring.
func (tt *TorusTopo) Route(src, dst torus.NodeID) []int {
	return routing.DeterministicRoute(tt.t, src, dst).Links
}

// NodeLinks enumerates the node's outgoing and incoming directed links in
// the same order as netsim.Network.NodeLinks (dim-major, Plus then Minus,
// out then in, first occurrence wins).
func (tt *TorusTopo) NodeLinks(n torus.NodeID) []int {
	links := make([]int, 0, 4*tt.t.Dims())
	seen := make(map[int]struct{}, 4*tt.t.Dims())
	add := func(l int) {
		if _, dup := seen[l]; !dup {
			seen[l] = struct{}{}
			links = append(links, l)
		}
	}
	for dim := 0; dim < tt.t.Dims(); dim++ {
		for _, dir := range []torus.Direction{torus.Plus, torus.Minus} {
			add(tt.t.LinkID(n, dim, dir))
			add(tt.t.LinkID(tt.t.Neighbor(n, dim, dir), dim, -dir))
		}
	}
	return links
}

// LinkString renders the link in torus notation.
func (tt *TorusTopo) LinkString(id int) string { return tt.t.LinkString(id) }
