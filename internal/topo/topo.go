// Package topo abstracts the machine fabric behind the simulators: which
// nodes exist, which directed links connect them, how a message routes
// deterministically between two endpoints, and how fast each endpoint can
// inject or drain data. The BG/Q 5D torus with the paper's Eq. 1–5
// endpoint constants is one instance; dragonfly and fat-tree fabrics and
// a heterogeneous (CPU/GPU-tiered) endpoint model are others. Every
// planner, oracle, fault campaign, and the bgqd daemon consume these
// interfaces so a new machine is one constructor away (DESIGN.md §16).
package topo

import (
	"fmt"
	"strconv"
	"strings"

	"bgqflow/internal/torus"
)

// Topology describes a fabric: a dense node ID space [0, NumNodes), a
// dense directed-link ID space [0, NumLinks), and a deterministic route
// oracle. Routes are pure functions of (src, dst) — like the BG/Q's
// deterministic zone-2 routing they do NOT reroute around failures; a
// disabled link aborts the flows crossing it (the §8/§9 fault model),
// which is exactly what makes proxy placement and replanning meaningful.
type Topology interface {
	// Kind names the topology family ("torus", "dragonfly", "fattree").
	Kind() string
	// Spec renders the canonical parse spec, e.g. "torus:2x2x4". Two
	// topologies with equal Spec are interchangeable.
	Spec() string
	// NumNodes reports the number of addressable endpoints.
	NumNodes() int
	// NumLinks reports the number of base-fabric directed links. IDs
	// [0, NumLinks) are dense; engines may append extra links above.
	NumLinks() int
	// LinkCapacity returns the relative capacity multiplier of a base
	// link (1.0 = one rail at the fabric's base bandwidth; a multi-rail
	// link reports its rail count).
	LinkCapacity(id int) float64
	// Route returns the deterministic directed-link path from src to
	// dst, nil when src == dst. The slice is freshly allocated (or
	// immutable); callers may retain it.
	Route(src, dst torus.NodeID) []int
	// NodeLinks returns every base link that dies with node n — all
	// links whose traffic necessarily traverses n's network interface —
	// in a deterministic order. Used by the fault model's node-failure
	// semantics.
	NodeLinks(n torus.NodeID) []int
	// LinkString renders a base link for diagnostics.
	LinkString(id int) string
}

// Parse builds a topology from a spec string:
//
//	torus:2x2x4x4x2     — torus with the given extents (the BG/Q default)
//	dragonfly:GxA       — G groups of A routers, single-rail global links
//	dragonfly:GxAxR     — as above with R rails per global link
//	fattree:LxS         — L leaves fully connected to S spines
//	fattree:LxSxR       — as above with R rails per leaf-spine cable
func Parse(spec string) (Topology, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("topo: spec %q: want kind:dims, e.g. torus:2x2x4", spec)
	}
	dims, err := parseDims(rest)
	if err != nil {
		return nil, fmt.Errorf("topo: spec %q: %v", spec, err)
	}
	switch kind {
	case "torus":
		t, err := torus.New(dims)
		if err != nil {
			return nil, fmt.Errorf("topo: spec %q: %v", spec, err)
		}
		return NewTorus(t), nil
	case "dragonfly":
		rails := 1
		switch len(dims) {
		case 3:
			rails = dims[2]
			fallthrough
		case 2:
			return NewDragonfly(dims[0], dims[1], rails)
		default:
			return nil, fmt.Errorf("topo: spec %q: dragonfly wants GxA or GxAxR", spec)
		}
	case "fattree":
		rails := 1
		switch len(dims) {
		case 3:
			rails = dims[2]
			fallthrough
		case 2:
			return NewFatTree(dims[0], dims[1], rails)
		default:
			return nil, fmt.Errorf("topo: spec %q: fattree wants LxS or LxSxR", spec)
		}
	default:
		return nil, fmt.Errorf("topo: unknown topology kind %q (want torus, dragonfly, or fattree)", kind)
	}
}

// parseDims parses "2x2x4" into [2 2 4].
func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad extent %q", p)
		}
		dims = append(dims, v)
	}
	return dims, nil
}
