package topo

import (
	"fmt"

	"bgqflow/internal/torus"
)

// Dragonfly models a single-rank dragonfly: G groups of A routers each
// (one endpoint per router, so NumNodes = G*A). Within a group the
// routers form a complete graph of directed local links; each ordered
// group pair (gi, gj) is joined by one directed global link with `rails`
// parallel rails (LinkCapacity = rails), attached deterministically:
// the global (gi -> gj) leaves gi's router gj%A and lands on gj's router
// gi%A, spreading gateway duty across the group.
//
// Link ID layout (dense, locals first):
//
//	local (g, i -> j):   g*A*(A-1) + i*(A-1) + (j, skipping i)
//	global (gi -> gj):   G*A*(A-1) + gi*(G-1) + (gj, skipping gi)
//
// Routes are minimal deterministic paths: 1 local hop within a group,
// and local-to-gateway + global + gateway-to-dst (at most 3 hops) across
// groups, with the gateway hops omitted when the endpoint already is the
// gateway.
type Dragonfly struct {
	groups  int
	size    int // routers (= endpoints) per group
	rails   int
	localN  int // G*A*(A-1), total local links
	globalN int // G*(G-1)
}

// NewDragonfly builds a dragonfly with G groups of A routers and `rails`
// rails per global link.
func NewDragonfly(groups, size, rails int) (*Dragonfly, error) {
	if groups < 2 || size < 2 {
		return nil, fmt.Errorf("topo: dragonfly wants >= 2 groups of >= 2 routers, got %dx%d", groups, size)
	}
	if rails < 1 {
		return nil, fmt.Errorf("topo: dragonfly rails must be >= 1, got %d", rails)
	}
	return &Dragonfly{
		groups:  groups,
		size:    size,
		rails:   rails,
		localN:  groups * size * (size - 1),
		globalN: groups * (groups - 1),
	}, nil
}

// Kind returns "dragonfly".
func (d *Dragonfly) Kind() string { return "dragonfly" }

// Spec renders "dragonfly:GxAxR".
func (d *Dragonfly) Spec() string {
	return fmt.Sprintf("dragonfly:%dx%dx%d", d.groups, d.size, d.rails)
}

// NumNodes reports G*A endpoints.
func (d *Dragonfly) NumNodes() int { return d.groups * d.size }

// NumLinks reports all local plus global directed links.
func (d *Dragonfly) NumLinks() int { return d.localN + d.globalN }

// LinkCapacity is 1.0 for local links and the rail count for globals.
func (d *Dragonfly) LinkCapacity(id int) float64 {
	if id >= d.localN {
		return float64(d.rails)
	}
	return 1.0
}

// localID returns the directed local link router i -> j within group g.
func (d *Dragonfly) localID(g, i, j int) int {
	k := j
	if j > i {
		k--
	}
	return g*d.size*(d.size-1) + i*(d.size-1) + k
}

// globalID returns the directed global link group gi -> gj.
func (d *Dragonfly) globalID(gi, gj int) int {
	k := gj
	if gj > gi {
		k--
	}
	return d.localN + gi*(d.groups-1) + k
}

// gatewayOut is the router in gi that owns the global link toward gj.
func (d *Dragonfly) gatewayOut(gi, gj int) int { return gj % d.size }

// gatewayIn is the router in gj where the global link from gi lands.
func (d *Dragonfly) gatewayIn(gi, gj int) int { return gi % d.size }

// node returns the NodeID of router a in group g.
func (d *Dragonfly) node(g, a int) torus.NodeID { return torus.NodeID(g*d.size + a) }

// split decomposes a node into (group, router).
func (d *Dragonfly) split(n torus.NodeID) (g, a int) { return int(n) / d.size, int(n) % d.size }

// Route returns the minimal deterministic path src -> dst.
func (d *Dragonfly) Route(src, dst torus.NodeID) []int {
	if src == dst {
		return nil
	}
	gs, as := d.split(src)
	gd, ad := d.split(dst)
	if gs == gd {
		return []int{d.localID(gs, as, ad)}
	}
	links := make([]int, 0, 3)
	gw := d.gatewayOut(gs, gd)
	if as != gw {
		links = append(links, d.localID(gs, as, gw))
	}
	links = append(links, d.globalID(gs, gd))
	if land := d.gatewayIn(gs, gd); land != ad {
		links = append(links, d.localID(gd, land, ad))
	}
	return links
}

// NodeLinks enumerates the links that die with router (g, a): its
// outgoing and incoming local links, then every global link it gateways
// (out toward groups gj with gj%A == a, in from groups gi with gi%A == a).
func (d *Dragonfly) NodeLinks(n torus.NodeID) []int {
	g, a := d.split(n)
	links := make([]int, 0, 2*(d.size-1)+2*(d.groups/d.size+1))
	for j := 0; j < d.size; j++ {
		if j == a {
			continue
		}
		links = append(links, d.localID(g, a, j), d.localID(g, j, a))
	}
	for go2 := 0; go2 < d.groups; go2++ {
		if go2 == g {
			continue
		}
		if d.gatewayOut(g, go2) == a {
			links = append(links, d.globalID(g, go2))
		}
		if d.gatewayIn(go2, g) == a {
			links = append(links, d.globalID(go2, g))
		}
	}
	return links
}

// LinkString renders the link for diagnostics.
func (d *Dragonfly) LinkString(id int) string {
	if id < d.localN {
		g := id / (d.size * (d.size - 1))
		rem := id % (d.size * (d.size - 1))
		i := rem / (d.size - 1)
		j := rem % (d.size - 1)
		if j >= i {
			j++
		}
		return fmt.Sprintf("df g%d.r%d->r%d", g, i, j)
	}
	rem := id - d.localN
	gi := rem / (d.groups - 1)
	gj := rem % (d.groups - 1)
	if gj >= gi {
		gj++
	}
	return fmt.Sprintf("df g%d=>g%d (x%d)", gi, gj, d.rails)
}
