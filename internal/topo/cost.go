package topo

import (
	"fmt"
	"strconv"
	"strings"

	"bgqflow/internal/torus"
)

// CostModel describes the endpoint side of the paper's Eq. 1–5 cost
// decomposition, generalized to per-node values so heterogeneous
// machines (CPU/GPU-tiered nodes per Bienz et al., PAPERS.md) fit the
// same interface. Rates are bytes/second, overheads and latency are
// seconds. The uniform BG/Q calibration is the identity instance: every
// node reports the same constants, so a uniform-model engine behaves
// byte-identically to one using the raw netsim.Params arithmetic.
type CostModel interface {
	// Name identifies the model family ("uniform", "hetero").
	Name() string
	// Spec renders the canonical parse spec ("uniform", "hetero:4").
	Spec() string
	// PerFlowRate caps the rate of a single flow between src and dst
	// (the min of what either endpoint can sustain).
	PerFlowRate(src, dst torus.NodeID) float64
	// LocalCopyRate is the node-local memcpy rate at n.
	LocalCopyRate(n torus.NodeID) float64
	// SenderOverhead is the fixed per-message injection cost at n (t_s).
	SenderOverhead(n torus.NodeID) float64
	// ReceiverOverhead is the fixed per-message drain cost at n (t_r).
	ReceiverOverhead(n torus.NodeID) float64
	// ForwardOverhead is the extra user-space forwarding cost at n (the
	// per-piece proxy handoff of Eq. 4).
	ForwardOverhead(n torus.NodeID) float64
	// HopLatency is the per-hop wire+router latency of the fabric.
	HopLatency() float64
}

// Uniform is the homogeneous cost model: every node shares one set of
// constants (the BG/Q calibration when built from netsim.DefaultParams).
type Uniform struct {
	PerFlow   float64 // bytes/s, single-flow cap
	LocalCopy float64 // bytes/s, node-local memcpy
	Sender    float64 // s, fixed t_s
	Receiver  float64 // s, fixed t_r
	Forward   float64 // s, per-piece proxy handoff
	Hop       float64 // s, per-hop latency
}

// Name returns "uniform".
func (u Uniform) Name() string { return "uniform" }

// Spec returns "uniform".
func (u Uniform) Spec() string { return "uniform" }

// PerFlowRate is the shared single-flow cap.
func (u Uniform) PerFlowRate(src, dst torus.NodeID) float64 { return u.PerFlow }

// LocalCopyRate is the shared memcpy rate.
func (u Uniform) LocalCopyRate(n torus.NodeID) float64 { return u.LocalCopy }

// SenderOverhead is the shared t_s.
func (u Uniform) SenderOverhead(n torus.NodeID) float64 { return u.Sender }

// ReceiverOverhead is the shared t_r.
func (u Uniform) ReceiverOverhead(n torus.NodeID) float64 { return u.Receiver }

// ForwardOverhead is the shared forwarding cost.
func (u Uniform) ForwardOverhead(n torus.NodeID) float64 { return u.Forward }

// HopLatency is the shared per-hop latency.
func (u Uniform) HopLatency() float64 { return u.Hop }

// Hetero tiers the nodes of a fabric: every gpuEvery-th node is a
// GPU-tier endpoint that injects and drains faster (RateScale > 1) but
// pays more per-message overhead (OverheadScale > 1) — the max-rate
// asymmetry of Bienz et al.'s heterogeneous model. A flow's rate cap is
// bounded by its slower endpoint, so CPU->GPU and GPU->CPU flows run at
// the CPU rate while GPU->GPU flows get the full scaled rate.
type Hetero struct {
	Base          Uniform
	GPUEvery      int     // every GPUEvery-th node is GPU-tier (>= 1)
	RateScale     float64 // GPU rate multiplier (> 0)
	OverheadScale float64 // GPU per-message overhead multiplier (> 0)
}

// heteroRateScale and heteroOverheadScale are the fixed tier constants
// the "hetero:<every>" spec implies: GPU endpoints move bytes 2x faster
// but pay 1.5x the per-message overhead.
const (
	heteroRateScale     = 2.0
	heteroOverheadScale = 1.5
)

// NewHetero tiers base with the canonical scales; every gpuEvery-th node
// is GPU-tier.
func NewHetero(base Uniform, gpuEvery int) (Hetero, error) {
	if gpuEvery < 1 {
		return Hetero{}, fmt.Errorf("topo: hetero tier period must be >= 1, got %d", gpuEvery)
	}
	return Hetero{Base: base, GPUEvery: gpuEvery, RateScale: heteroRateScale, OverheadScale: heteroOverheadScale}, nil
}

// GPU reports whether n is a GPU-tier node.
func (h Hetero) GPU(n torus.NodeID) bool { return h.GPUEvery > 0 && int(n)%h.GPUEvery == 0 }

func (h Hetero) rateScale(n torus.NodeID) float64 {
	if h.GPU(n) {
		return h.RateScale
	}
	return 1.0
}

func (h Hetero) overheadScale(n torus.NodeID) float64 {
	if h.GPU(n) {
		return h.OverheadScale
	}
	return 1.0
}

// Name returns "hetero".
func (h Hetero) Name() string { return "hetero" }

// Spec renders "hetero:<every>".
func (h Hetero) Spec() string { return "hetero:" + strconv.Itoa(h.GPUEvery) }

// PerFlowRate is the base cap scaled by the slower endpoint's tier.
func (h Hetero) PerFlowRate(src, dst torus.NodeID) float64 {
	s := h.rateScale(src)
	if d := h.rateScale(dst); d < s {
		s = d
	}
	return h.Base.PerFlow * s
}

// LocalCopyRate is the base memcpy rate scaled by the node's tier.
func (h Hetero) LocalCopyRate(n torus.NodeID) float64 {
	return h.Base.LocalCopy * h.rateScale(n)
}

// SenderOverhead is the base t_s scaled by the node's tier.
func (h Hetero) SenderOverhead(n torus.NodeID) float64 {
	return h.Base.Sender * h.overheadScale(n)
}

// ReceiverOverhead is the base t_r scaled by the node's tier.
func (h Hetero) ReceiverOverhead(n torus.NodeID) float64 {
	return h.Base.Receiver * h.overheadScale(n)
}

// ForwardOverhead is the base forwarding cost scaled by the node's tier.
func (h Hetero) ForwardOverhead(n torus.NodeID) float64 {
	return h.Base.Forward * h.overheadScale(n)
}

// HopLatency is the fabric latency, tier-independent.
func (h Hetero) HopLatency() float64 { return h.Base.Hop }

// ParseCostModel builds a cost model from a spec string over the given
// uniform base constants: "" and "uniform" return the base unchanged,
// "hetero:<every>" tiers it.
func ParseCostModel(spec string, base Uniform) (CostModel, error) {
	switch {
	case spec == "" || spec == "uniform":
		return base, nil
	case strings.HasPrefix(spec, "hetero:"):
		every, err := strconv.Atoi(strings.TrimPrefix(spec, "hetero:"))
		if err != nil {
			return nil, fmt.Errorf("topo: cost model %q: bad tier period", spec)
		}
		h, err := NewHetero(base, every)
		if err != nil {
			return nil, err
		}
		return h, nil
	default:
		return nil, fmt.Errorf("topo: unknown cost model %q (want uniform or hetero:<every>)", spec)
	}
}
