package topo

import (
	"fmt"

	"bgqflow/internal/torus"
)

// FatTree models a two-level folded Clos: L leaf endpoints fully
// connected to S internal spine switches, every leaf-spine cable carrying
// `rails` rails in each direction (LinkCapacity = rails on every link).
// Only the leaves are addressable nodes — spines exist solely as link
// endpoints, which is why the Topology interface identifies links by ID
// rather than by (from, to) node pairs.
//
// Link ID layout (dense, uplinks first):
//
//	up   (leaf l -> spine s): l*S + s
//	down (spine s -> leaf l): L*S + s*L + l
//
// Routes are the deterministic 2-hop up/down path through spine
// (src+dst) mod S, which spreads pairs across spines while keeping the
// path a pure function of the endpoints (no adaptive rerouting), matching
// the fault model's fail-stop semantics.
type FatTree struct {
	leaves int
	spines int
	rails  int
}

// NewFatTree builds a fat-tree with L leaves, S spines, and `rails` rails
// per cable.
func NewFatTree(leaves, spines, rails int) (*FatTree, error) {
	if leaves < 2 || spines < 1 {
		return nil, fmt.Errorf("topo: fattree wants >= 2 leaves and >= 1 spine, got %dx%d", leaves, spines)
	}
	if rails < 1 {
		return nil, fmt.Errorf("topo: fattree rails must be >= 1, got %d", rails)
	}
	return &FatTree{leaves: leaves, spines: spines, rails: rails}, nil
}

// Kind returns "fattree".
func (ft *FatTree) Kind() string { return "fattree" }

// Spec renders "fattree:LxSxR".
func (ft *FatTree) Spec() string {
	return fmt.Sprintf("fattree:%dx%dx%d", ft.leaves, ft.spines, ft.rails)
}

// NumNodes reports the leaf count (spines are internal).
func (ft *FatTree) NumNodes() int { return ft.leaves }

// NumLinks reports 2*L*S directed links.
func (ft *FatTree) NumLinks() int { return 2 * ft.leaves * ft.spines }

// LinkCapacity is the rail count on every leaf-spine cable.
func (ft *FatTree) LinkCapacity(id int) float64 { return float64(ft.rails) }

// up returns the uplink leaf l -> spine s.
func (ft *FatTree) up(l, s int) int { return l*ft.spines + s }

// down returns the downlink spine s -> leaf l.
func (ft *FatTree) down(s, l int) int { return ft.leaves*ft.spines + s*ft.leaves + l }

// Route returns the 2-hop up/down path through spine (src+dst) mod S.
func (ft *FatTree) Route(src, dst torus.NodeID) []int {
	if src == dst {
		return nil
	}
	s := (int(src) + int(dst)) % ft.spines
	return []int{ft.up(int(src), s), ft.down(s, int(dst))}
}

// NodeLinks enumerates a leaf's uplinks then downlinks across all spines
// — a leaf failure severs its entire access.
func (ft *FatTree) NodeLinks(n torus.NodeID) []int {
	l := int(n)
	links := make([]int, 0, 2*ft.spines)
	for s := 0; s < ft.spines; s++ {
		links = append(links, ft.up(l, s))
	}
	for s := 0; s < ft.spines; s++ {
		links = append(links, ft.down(s, l))
	}
	return links
}

// LinkString renders the link for diagnostics.
func (ft *FatTree) LinkString(id int) string {
	if id < ft.leaves*ft.spines {
		return fmt.Sprintf("ft leaf%d^spine%d (x%d)", id/ft.spines, id%ft.spines, ft.rails)
	}
	rem := id - ft.leaves*ft.spines
	return fmt.Sprintf("ft spine%d_vleaf%d (x%d)", rem/ft.leaves, rem%ft.leaves, ft.rails)
}
